// Multi-insert (Algorithm 1): batch inserts must be equivalent to the
// same sequence of single inserts, under every batch shape the draining
// path produces (sorted runs, tight neighborhoods, duplicates, overlaps
// with existing content).

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "flodb/common/key_codec.h"
#include "flodb/common/random.h"
#include "flodb/mem/skiplist.h"

namespace flodb {
namespace {

using BatchEntry = ConcurrentSkipList::BatchEntry;

class MultiInsertTest : public ::testing::Test {
 protected:
  // Builds a sorted batch from (key, value, seq) triples.
  std::vector<BatchEntry> MakeBatch(
      std::vector<std::tuple<uint64_t, std::string, uint64_t>> items) {
    keys_.clear();
    values_.clear();
    std::sort(items.begin(), items.end());
    std::vector<BatchEntry> batch;
    for (auto& [k, v, seq] : items) {
      keys_.push_back(EncodeKey(k));
      values_.push_back(v);
      batch.push_back(BatchEntry{Slice(keys_.back()), Slice(values_.back()), ValueType::kValue,
                                 seq});
    }
    return batch;
  }

  void VerifyAgainstModel(const std::map<std::string, std::pair<std::string, uint64_t>>& model) {
    EXPECT_EQ(list_.Count(), model.size());
    ConcurrentSkipList::Iterator iter(&list_);
    auto expected = model.begin();
    for (iter.SeekToFirst(); iter.Valid(); iter.Next(), ++expected) {
      ASSERT_NE(expected, model.end());
      EXPECT_EQ(iter.key().ToString(), expected->first);
      EXPECT_EQ(iter.value().ToString(), expected->second.first);
      EXPECT_EQ(iter.seq(), expected->second.second);
    }
    EXPECT_EQ(expected, model.end());
  }

  ConcurrentArena arena_;
  ConcurrentSkipList list_{&arena_};
  std::deque<std::string> keys_;
  std::deque<std::string> values_;
};

TEST_F(MultiInsertTest, EmptyBatchIsNoop) {
  EXPECT_EQ(list_.MultiInsert({}), 0u);
  EXPECT_EQ(list_.Count(), 0u);
}

TEST_F(MultiInsertTest, SingleElementBatch) {
  auto batch = MakeBatch({{42, "v42", 1}});
  EXPECT_EQ(list_.MultiInsert(batch), 1u);
  std::string value;
  ASSERT_TRUE(list_.Get(Slice(EncodeKey(42)), &value, nullptr, nullptr));
  EXPECT_EQ(value, "v42");
}

TEST_F(MultiInsertTest, SortedBatchIntoEmptyList) {
  std::vector<std::tuple<uint64_t, std::string, uint64_t>> items;
  for (uint64_t k = 0; k < 100; ++k) {
    items.emplace_back(k * 3, "v" + std::to_string(k), k + 1);
  }
  auto batch = MakeBatch(items);
  EXPECT_EQ(list_.MultiInsert(batch), 100u);
  EXPECT_EQ(list_.Count(), 100u);
}

TEST_F(MultiInsertTest, TightNeighborhoodBatch) {
  // Pre-populate a spread-out list, then multi-insert a dense cluster —
  // the drain-from-one-partition shape that maximizes path reuse.
  for (uint64_t k = 0; k < 10'000; k += 100) {
    list_.Insert(Slice(EncodeKey(k)), Slice("base"), 1, ValueType::kValue);
  }
  std::vector<std::tuple<uint64_t, std::string, uint64_t>> items;
  for (uint64_t k = 5000; k < 5050; ++k) {
    items.emplace_back(k, "cluster", k);
  }
  auto batch = MakeBatch(items);
  // 5000 exists already (updated in place), 49 new.
  EXPECT_EQ(list_.MultiInsert(batch), 49u);
  std::string value;
  ASSERT_TRUE(list_.Get(Slice(EncodeKey(5000)), &value, nullptr, nullptr));
  EXPECT_EQ(value, "cluster");
  ASSERT_TRUE(list_.Get(Slice(EncodeKey(5049)), &value, nullptr, nullptr));
  EXPECT_EQ(value, "cluster");
}

TEST_F(MultiInsertTest, BatchOverlappingExistingKeysUpdates) {
  for (uint64_t k = 0; k < 50; ++k) {
    list_.Insert(Slice(EncodeKey(k)), Slice("old"), k + 1, ValueType::kValue);
  }
  std::vector<std::tuple<uint64_t, std::string, uint64_t>> items;
  for (uint64_t k = 0; k < 50; ++k) {
    items.emplace_back(k, "new", 100 + k);
  }
  auto batch = MakeBatch(items);
  EXPECT_EQ(list_.MultiInsert(batch), 0u);  // all updates
  EXPECT_EQ(list_.Count(), 50u);
  std::string value;
  for (uint64_t k = 0; k < 50; ++k) {
    ASSERT_TRUE(list_.Get(Slice(EncodeKey(k)), &value, nullptr, nullptr));
    EXPECT_EQ(value, "new");
  }
}

TEST_F(MultiInsertTest, EquivalentToSingleInserts) {
  // Property: multi-insert(batch) == for e in batch: insert(e).
  Random64 rng(11);
  std::map<std::string, std::pair<std::string, uint64_t>> model;

  ConcurrentArena arena2;
  ConcurrentSkipList reference(&arena2);

  uint64_t seq = 1;
  for (int round = 0; round < 20; ++round) {
    std::vector<std::tuple<uint64_t, std::string, uint64_t>> items;
    for (int i = 0; i < 64; ++i) {
      const uint64_t k = rng.Uniform(500);
      items.emplace_back(k, "r" + std::to_string(round) + "i" + std::to_string(i), seq++);
    }
    // Deduplicate keys inside the batch, keeping the highest seq (the
    // Membuffer guarantees per-key uniqueness in real drains).
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end(),
                            [](const auto& a, const auto& b) {
                              return std::get<0>(a) == std::get<0>(b);
                            }),
                items.end());

    auto batch = MakeBatch(items);
    list_.MultiInsert(batch);
    for (const BatchEntry& e : batch) {
      reference.Insert(e.key, e.value, e.seq, e.type);
      auto& slot = model[e.key.ToString()];
      if (e.seq >= slot.second) {
        slot = {e.value.ToString(), e.seq};
      }
    }
  }
  VerifyAgainstModel(model);
  EXPECT_EQ(list_.Count(), reference.Count());
}

TEST_F(MultiInsertTest, InterleavedSingleAndMultiInserts) {
  std::map<std::string, std::pair<std::string, uint64_t>> model;
  uint64_t seq = 1;
  Random64 rng(17);
  for (int round = 0; round < 10; ++round) {
    // Some singles.
    for (int i = 0; i < 20; ++i) {
      const uint64_t k = rng.Uniform(300);
      std::string key = EncodeKey(k);
      std::string value = "s" + std::to_string(seq);
      list_.Insert(Slice(key), Slice(value), seq, ValueType::kValue);
      auto& slot = model[key];
      if (seq >= slot.second) {
        slot = {value, seq};
      }
      ++seq;
    }
    // One batch.
    std::vector<std::tuple<uint64_t, std::string, uint64_t>> items;
    for (int i = 0; i < 30; ++i) {
      items.emplace_back(rng.Uniform(300), "m" + std::to_string(seq), seq);
      ++seq;
    }
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end(),
                            [](const auto& a, const auto& b) {
                              return std::get<0>(a) == std::get<0>(b);
                            }),
                items.end());
    auto batch = MakeBatch(items);
    list_.MultiInsert(batch);
    for (const BatchEntry& e : batch) {
      auto& slot = model[e.key.ToString()];
      if (e.seq >= slot.second) {
        slot = {e.value.ToString(), e.seq};
      }
    }
  }
  VerifyAgainstModel(model);
}

TEST_F(MultiInsertTest, BatchWithTombstones) {
  auto batch = MakeBatch({{1, "a", 1}, {2, "b", 2}});
  list_.MultiInsert(batch);
  std::vector<BatchEntry> tombs;
  std::string key = EncodeKey(1);
  tombs.push_back(BatchEntry{Slice(key), Slice(), ValueType::kTombstone, 3});
  list_.MultiInsert(tombs);
  ValueType type;
  ASSERT_TRUE(list_.Get(Slice(EncodeKey(1)), nullptr, nullptr, &type));
  EXPECT_EQ(type, ValueType::kTombstone);
  ASSERT_TRUE(list_.Get(Slice(EncodeKey(2)), nullptr, nullptr, &type));
  EXPECT_EQ(type, ValueType::kValue);
}

// Parameterized sweep: batch sizes x key ranges, list stays equivalent to
// a std::map model.
class MultiInsertSweep : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(MultiInsertSweep, ModelEquivalence) {
  const int batch_size = std::get<0>(GetParam());
  const uint64_t key_range = std::get<1>(GetParam());

  ConcurrentArena arena;
  ConcurrentSkipList list(&arena);
  std::map<std::string, std::string> model;
  Random64 rng(static_cast<uint64_t>(batch_size) * 31 + key_range);

  uint64_t seq = 1;
  std::deque<std::string> storage;
  for (int round = 0; round < 15; ++round) {
    std::vector<std::pair<std::string, std::string>> items;
    for (int i = 0; i < batch_size; ++i) {
      items.emplace_back(EncodeKey(rng.Uniform(key_range)), "v" + std::to_string(seq + i));
    }
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end(),
                            [](const auto& a, const auto& b) { return a.first == b.first; }),
                items.end());
    std::vector<ConcurrentSkipList::BatchEntry> batch;
    for (auto& [k, v] : items) {
      storage.push_back(k);
      const std::string& key_ref = storage.back();
      storage.push_back(v);
      const std::string& value_ref = storage.back();
      batch.push_back(ConcurrentSkipList::BatchEntry{Slice(key_ref), Slice(value_ref),
                                                     ValueType::kValue, seq++});
      model[key_ref] = value_ref;
    }
    list.MultiInsert(batch);
  }

  ASSERT_EQ(list.Count(), model.size());
  ConcurrentSkipList::Iterator iter(&list);
  auto expected = model.begin();
  for (iter.SeekToFirst(); iter.Valid(); iter.Next(), ++expected) {
    ASSERT_EQ(iter.key().ToString(), expected->first);
    ASSERT_EQ(iter.value().ToString(), expected->second);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, MultiInsertSweep,
                         ::testing::Combine(::testing::Values(1, 5, 64, 256),
                                            ::testing::Values(uint64_t{10}, uint64_t{1000},
                                                              uint64_t{1} << 40)));

}  // namespace
}  // namespace flodb
