// Tests for the capability-annotated synchronization wrappers
// (common/synchronization.h). The *static* half of the contract — that
// misuse fails to compile under -Wthread-safety — is covered by the
// negative-compile harness (tests/negative_compile/); this file covers
// the runtime half: the wrappers actually lock, the condition variable
// actually waits on its external mutex, shared holds actually share,
// and the debug AssertHeld backstop actually aborts on misuse.

#include "flodb/common/synchronization.h"

#include <chrono>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace flodb {
namespace {

TEST(MutexTest, MutexLockExcludesSecondHolder) {
  Mutex mu;
  int counter = 0;
  // Contended increments from many threads: if MutexLock did not provide
  // mutual exclusion the final count would (almost surely) fall short.
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(MutexTest, TryLockFailsWhileHeld) {
  Mutex mu;
  mu.lock();
  // try_lock from another thread must fail while this thread holds the
  // lock (same-thread try_lock on a held std::mutex is undefined).
  bool acquired = true;
  std::thread probe([&] { acquired = mu.try_lock(); });
  probe.join();
  EXPECT_FALSE(acquired);
  mu.unlock();
  std::thread probe2([&] {
    acquired = mu.try_lock();
    if (acquired) {
      mu.unlock();
    }
  });
  probe2.join();
  EXPECT_TRUE(acquired);
}

TEST(SpinLockTest, TryLockFailsWhileHeld) {
  SpinLock lock;
  ASSERT_TRUE(lock.try_lock());
  bool acquired = true;
  std::thread probe([&] { acquired = lock.try_lock(); });
  probe.join();
  EXPECT_FALSE(acquired);
  lock.unlock();
}

TEST(SharedMutexTest, ReadersShareWritersExclude) {
  SharedMutex mu;
  // Two reader threads must be able to hold the lock simultaneously:
  // each waits for the other to arrive while still holding its shared
  // hold, which deadlocks (and times the test out) if shared holds were
  // exclusive.
  std::atomic<int> readers_in{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      ReaderMutexLock lock(mu);
      readers_in.fetch_add(1);
      while (readers_in.load() < 2) {
        std::this_thread::yield();
      }
    });
  }
  for (auto& th : readers) {
    th.join();
  }
  EXPECT_EQ(readers_in.load(), 2);

  // A writer excludes readers: with the exclusive hold pinned, a reader
  // thread must not get in until it is released.
  std::atomic<bool> reader_done{false};
  mu.lock();
  std::thread late_reader([&] {
    ReaderMutexLock lock(mu);
    reader_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(reader_done.load());
  mu.unlock();
  late_reader.join();
  EXPECT_TRUE(reader_done.load());
}

TEST(CondVarTest, AwaitSeesPredicateFlippedUnderLock) {
  Mutex mu;
  CondVar cv;
  bool ready = false;  // guarded by mu (locally scoped test state)
  bool observed = false;
  std::thread waiter([&] {
    MutexLock lock(mu);
    cv.Await(mu, [&] { return ready; });
    observed = ready;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.SignalAll();
  waiter.join();
  EXPECT_TRUE(observed);
}

TEST(CondVarTest, AwaitForReportsTimeoutAndSuccess) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  {
    // Nobody will ever set the predicate: AwaitFor must come back false
    // once the (short) deadline passes.
    MutexLock lock(mu);
    EXPECT_FALSE(cv.AwaitFor(mu, std::chrono::milliseconds(30), [&] { return ready; }));
  }
  std::thread setter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    {
      MutexLock lock(mu);
      ready = true;
    }
    cv.SignalAll();
  });
  {
    MutexLock lock(mu);
    EXPECT_TRUE(cv.AwaitFor(mu, std::chrono::seconds(30), [&] { return ready; }));
  }
  setter.join();
}

TEST(CondVarTest, WaitForTimesOutWithoutSignal) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  // No notifier: WaitFor must return false (timeout), and must have
  // reacquired the mutex (the unlock in ~MutexLock would abort the debug
  // holder check otherwise).
  EXPECT_FALSE(cv.WaitFor(mu, std::chrono::milliseconds(30)));
}

// The runtime backstop only exists in debug builds; in NDEBUG builds
// AssertHeld is the static annotation alone, so there is nothing to
// death-test.
#ifdef FLODB_SYNC_DEBUG_HOLDER
using SynchronizationDeathTest = ::testing::Test;

TEST(SynchronizationDeathTest, MutexAssertHeldAbortsWhenNotHeld) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex mu;
  EXPECT_DEATH(mu.AssertHeld(), "does not hold the lock");
}

TEST(SynchronizationDeathTest, MutexAssertHeldAbortsForNonHolderThread) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex mu;
  mu.lock();
  // Held, but by THIS thread — a different thread's AssertHeld must
  // still abort: the backstop checks the holder identity, not just
  // "somebody locked it".
  EXPECT_DEATH(
      [&] {
        std::thread other([&] { mu.AssertHeld(); });
        other.join();
      }(),
      "does not hold the lock");
  mu.unlock();
}

TEST(SynchronizationDeathTest, SpinLockAssertHeldAbortsWhenNotHeld) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SpinLock lock;
  EXPECT_DEATH(lock.AssertHeld(), "does not hold the lock");
}

TEST(SynchronizationDeathTest, SharedMutexAssertHeldPassesForHolder) {
  SharedMutex mu;
  mu.lock();
  mu.AssertHeld();  // must NOT abort
  mu.unlock();
  mu.lock_shared();
  mu.AssertReaderHeld();  // must NOT abort
  mu.unlock_shared();
}
#endif  // FLODB_SYNC_DEBUG_HOLDER

}  // namespace
}  // namespace flodb
