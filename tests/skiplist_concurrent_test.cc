// Concurrency tests for ConcurrentSkipList: parallel inserts, parallel
// multi-inserts, readers during writes, and the max-seq update rule under
// contention. (Single-core hosts still exercise interleavings through
// preemption; counts and invariants must hold regardless.)

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "flodb/common/key_codec.h"
#include "flodb/common/random.h"
#include "flodb/mem/skiplist.h"

namespace flodb {
namespace {

TEST(SkipListConcurrentTest, ParallelDisjointInserts) {
  ConcurrentArena arena;
  ConcurrentSkipList list(&arena);
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 4000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      KeyBuf buf;
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const uint64_t key = static_cast<uint64_t>(t) * kPerThread + i;
        list.Insert(buf.Set(key), Slice("v"), key + 1, ValueType::kValue);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(list.Count(), kThreads * kPerThread);

  // Full order check.
  ConcurrentSkipList::Iterator iter(&list);
  uint64_t expected = 0;
  for (iter.SeekToFirst(); iter.Valid(); iter.Next()) {
    ASSERT_EQ(DecodeKey(iter.key()), expected++);
  }
  EXPECT_EQ(expected, kThreads * kPerThread);
}

TEST(SkipListConcurrentTest, ParallelInsertsOfSameKeysConverge) {
  ConcurrentArena arena;
  ConcurrentSkipList list(&arena);
  constexpr int kThreads = 4;
  constexpr uint64_t kKeys = 500;
  std::atomic<uint64_t> seq{1};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      KeyBuf buf;
      Random64 rng(static_cast<uint64_t>(
          std::hash<std::thread::id>{}(std::this_thread::get_id())));
      for (int i = 0; i < 3000; ++i) {
        const uint64_t key = rng.Uniform(kKeys);
        const uint64_t s = seq.fetch_add(1);
        const std::string value = std::to_string(s);
        list.Insert(buf.Set(key), Slice(value), s, ValueType::kValue);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  // No duplicate nodes despite racing inserts of equal keys.
  EXPECT_LE(list.Count(), kKeys);

  ConcurrentSkipList::Iterator iter(&list);
  std::set<std::string> seen;
  for (iter.SeekToFirst(); iter.Valid(); iter.Next()) {
    ASSERT_TRUE(seen.insert(iter.key().ToString()).second) << "duplicate key node";
    // Value must equal its own seq (written atomically as a cell).
    EXPECT_EQ(iter.value().ToString(), std::to_string(iter.seq()));
  }
}

TEST(SkipListConcurrentTest, MaxSeqWinsUnderContention) {
  ConcurrentArena arena;
  ConcurrentSkipList list(&arena);
  constexpr int kThreads = 4;
  constexpr int kUpdatesPerThread = 5000;
  std::atomic<uint64_t> seq{1};
  std::atomic<uint64_t> max_issued{0};

  KeyBuf init;
  list.Insert(init.Set(7), Slice("0"), 0, ValueType::kValue);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      KeyBuf buf;
      for (int i = 0; i < kUpdatesPerThread; ++i) {
        const uint64_t s = seq.fetch_add(1);
        list.Insert(buf.Set(7), Slice(std::to_string(s)), s, ValueType::kValue);
        uint64_t cur = max_issued.load();
        while (cur < s && !max_issued.compare_exchange_weak(cur, s)) {
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  std::string value;
  uint64_t final_seq;
  KeyBuf buf;
  ASSERT_TRUE(list.Get(buf.Set(7), &value, &final_seq, nullptr));
  EXPECT_EQ(final_seq, max_issued.load());
  EXPECT_EQ(value, std::to_string(final_seq));
  EXPECT_EQ(list.Count(), 1u);
}

TEST(SkipListConcurrentTest, ConcurrentMultiInserts) {
  ConcurrentArena arena;
  ConcurrentSkipList list(&arena);
  constexpr int kThreads = 4;
  constexpr int kBatches = 40;
  constexpr int kBatchSize = 50;
  std::atomic<uint64_t> seq{1};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int b = 0; b < kBatches; ++b) {
        std::vector<std::string> keys;
        std::vector<ConcurrentSkipList::BatchEntry> batch;
        keys.reserve(kBatchSize);
        // Disjoint ascending key ranges per (thread, batch).
        const uint64_t base =
            (static_cast<uint64_t>(t) * kBatches + static_cast<uint64_t>(b)) * kBatchSize;
        for (int i = 0; i < kBatchSize; ++i) {
          keys.push_back(EncodeKey(base + static_cast<uint64_t>(i)));
        }
        for (int i = 0; i < kBatchSize; ++i) {
          batch.push_back(ConcurrentSkipList::BatchEntry{
              Slice(keys[static_cast<size_t>(i)]), Slice("mv"), ValueType::kValue,
              seq.fetch_add(1)});
        }
        list.MultiInsert(batch);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(list.Count(), static_cast<size_t>(kThreads) * kBatches * kBatchSize);

  ConcurrentSkipList::Iterator iter(&list);
  uint64_t count = 0;
  std::string prev;
  for (iter.SeekToFirst(); iter.Valid(); iter.Next()) {
    const std::string cur = iter.key().ToString();
    if (count > 0) {
      ASSERT_LT(prev, cur) << "order violated at " << count;
    }
    prev = cur;
    ++count;
  }
  EXPECT_EQ(count, static_cast<uint64_t>(kThreads) * kBatches * kBatchSize);
}

TEST(SkipListConcurrentTest, OverlappingMultiInsertsConverge) {
  ConcurrentArena arena;
  ConcurrentSkipList list(&arena);
  constexpr int kThreads = 4;
  constexpr uint64_t kKeys = 200;
  std::atomic<uint64_t> seq{1};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int b = 0; b < 30; ++b) {
        std::vector<std::string> keys;
        std::vector<ConcurrentSkipList::BatchEntry> batch;
        for (uint64_t k = 0; k < kKeys; k += 3) {
          keys.push_back(EncodeKey(k));
        }
        for (const std::string& k : keys) {
          const uint64_t s = seq.fetch_add(1);
          batch.push_back(ConcurrentSkipList::BatchEntry{Slice(k), Slice("x"),
                                                         ValueType::kValue, s});
        }
        list.MultiInsert(batch);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(list.Count(), (kKeys + 2) / 3);
}

TEST(SkipListConcurrentTest, ReadersDuringWritesSeeSaneState) {
  ConcurrentArena arena;
  ConcurrentSkipList list(&arena);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> inserted_upto{0};

  std::thread writer([&] {
    KeyBuf buf;
    for (uint64_t k = 0; k < 20'000; ++k) {
      list.Insert(buf.Set(k), Slice("v"), k + 1, ValueType::kValue);
      inserted_upto.store(k, std::memory_order_release);
    }
    stop.store(true);
  });

  std::thread reader([&] {
    KeyBuf buf;
    Random64 rng(3);
    while (!stop.load(std::memory_order_acquire)) {
      const uint64_t upto = inserted_upto.load(std::memory_order_acquire);
      if (upto == 0) {
        continue;
      }
      // Any key <= published watermark must be visible.
      const uint64_t k = rng.Uniform(upto + 1);
      ASSERT_TRUE(list.Get(buf.Set(k), nullptr, nullptr, nullptr)) << k << " of " << upto;
    }
  });

  writer.join();
  reader.join();
  EXPECT_EQ(list.Count(), 20'000u);
}

TEST(SkipListConcurrentTest, IteratorDuringConcurrentInsertsStaysSorted) {
  ConcurrentArena arena;
  ConcurrentSkipList list(&arena);
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    KeyBuf buf;
    Random64 rng(77);
    while (!stop.load()) {
      list.Insert(buf.Set(rng.Uniform(100'000)), Slice("v"), rng.Next(), ValueType::kValue);
    }
  });

  for (int pass = 0; pass < 30; ++pass) {
    ConcurrentSkipList::Iterator iter(&list);
    std::string prev;
    bool first = true;
    for (iter.SeekToFirst(); iter.Valid(); iter.Next()) {
      const std::string cur = iter.key().ToString();
      if (!first) {
        ASSERT_LT(prev, cur);
      }
      prev = cur;
      first = false;
    }
  }
  stop.store(true);
  writer.join();
}

}  // namespace
}  // namespace flodb
