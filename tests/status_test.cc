#include "flodb/common/status.h"

#include <gtest/gtest.h>

namespace flodb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, NotFound) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: missing key");
}

TEST(StatusTest, NotFoundWithoutMessage) {
  Status s = Status::NotFound();
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound");
}

TEST(StatusTest, EachCodePredicates) {
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Busy("x").IsBusy());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::Corruption("bad block");
  Status t = s;
  EXPECT_TRUE(t.IsCorruption());
  EXPECT_EQ(t.ToString(), "Corruption: bad block");
  EXPECT_TRUE(s.IsCorruption());  // source unaffected
}

TEST(StatusTest, OkCopyStaysOk) {
  Status s = Status::OK();
  Status t = s;
  EXPECT_TRUE(t.ok());
}

TEST(StatusTest, CodeAccessor) {
  EXPECT_EQ(Status().code(), Status::Code::kOk);
  EXPECT_EQ(Status::IOError("x").code(), Status::Code::kIOError);
}

}  // namespace
}  // namespace flodb
