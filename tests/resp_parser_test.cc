// RespParser: incremental multibulk + inline parsing, partial-frame
// tolerance (byte-at-a-time feeding), oversized-frame rejection, and the
// reply encoders' exact wire bytes.

#include "flodb/net/resp.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace flodb {
namespace {

// Runs the parser over `wire` and returns every parsed command as a
// vector of argument strings, asserting no protocol error occurs.
std::vector<std::vector<std::string>> ParseAll(const std::string& wire,
                                               const RespLimits& limits = RespLimits()) {
  RespParser parser(limits);
  std::vector<std::vector<std::string>> commands;
  size_t pos = 0;
  for (;;) {
    RespCommand cmd;
    size_t consumed = 0;
    std::string error;
    const RespParse r =
        parser.Next(wire.data() + pos, wire.size() - pos, &cmd, &consumed, &error);
    EXPECT_NE(r, RespParse::kError) << error;
    if (r == RespParse::kError) {
      break;
    }
    pos += consumed;
    if (r == RespParse::kNeedMore) {
      if (consumed == 0) {
        break;
      }
      continue;
    }
    std::vector<std::string> args;
    for (const Slice& arg : cmd.args) {
      args.push_back(arg.ToString());
    }
    commands.push_back(std::move(args));
  }
  return commands;
}

TEST(RespParserTest, MultibulkBasic) {
  const auto cmds = ParseAll("*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$5\r\nvalue\r\n");
  ASSERT_EQ(cmds.size(), 1u);
  EXPECT_EQ(cmds[0], (std::vector<std::string>{"SET", "k", "value"}));
}

TEST(RespParserTest, MultibulkBackToBack) {
  const auto cmds =
      ParseAll("*1\r\n$4\r\nPING\r\n*2\r\n$3\r\nGET\r\n$1\r\nx\r\n*1\r\n$4\r\nINFO\r\n");
  ASSERT_EQ(cmds.size(), 3u);
  EXPECT_EQ(cmds[0][0], "PING");
  EXPECT_EQ(cmds[1], (std::vector<std::string>{"GET", "x"}));
  EXPECT_EQ(cmds[2][0], "INFO");
}

TEST(RespParserTest, BinaryPayloadWithEmbeddedCrlf) {
  const std::string value = "a\r\nb\0c";
  std::string wire = "*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$";
  wire += std::to_string(value.size()) + "\r\n";
  wire.append(value.data(), value.size());
  wire += "\r\n";
  const auto cmds = ParseAll(wire);
  ASSERT_EQ(cmds.size(), 1u);
  EXPECT_EQ(cmds[0][2], std::string(value.data(), value.size()));
}

TEST(RespParserTest, EmptyBulkArgument) {
  const auto cmds = ParseAll("*2\r\n$3\r\nGET\r\n$0\r\n\r\n");
  ASSERT_EQ(cmds.size(), 1u);
  EXPECT_EQ(cmds[0][1], "");
}

TEST(RespParserTest, ZeroArgArrayYieldsEmptyCommand) {
  RespParser parser;
  RespCommand cmd;
  size_t consumed = 0;
  std::string error;
  const std::string wire = "*0\r\n";
  EXPECT_EQ(parser.Next(wire.data(), wire.size(), &cmd, &consumed, &error),
            RespParse::kCommand);
  EXPECT_TRUE(cmd.args.empty());
  EXPECT_EQ(consumed, wire.size());
}

// The partial-read tolerance that matters in production: a frame arriving
// one byte at a time must parse to kNeedMore (consuming nothing) at every
// cut point, then parse whole once the last byte lands.
TEST(RespParserTest, PartialFramesByteAtATime) {
  const std::string wire = "*3\r\n$3\r\nSET\r\n$3\r\nkey\r\n$5\r\nhello\r\n";
  RespParser parser;
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    RespCommand cmd;
    size_t consumed = 0;
    std::string error;
    const RespParse r = parser.Next(wire.data(), cut, &cmd, &consumed, &error);
    ASSERT_EQ(r, RespParse::kNeedMore) << "cut at " << cut;
    ASSERT_EQ(consumed, 0u) << "cut at " << cut;
  }
  RespCommand cmd;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(parser.Next(wire.data(), wire.size(), &cmd, &consumed, &error), RespParse::kCommand);
  EXPECT_EQ(consumed, wire.size());
  ASSERT_EQ(cmd.args.size(), 3u);
  EXPECT_EQ(cmd.args[2].ToString(), "hello");
}

TEST(RespParserTest, LargeBulkArrivingInChunksUsesTheSizeHint) {
  const std::string payload(100000, 'x');
  std::string wire = "*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$" + std::to_string(payload.size()) + "\r\n" +
                     payload + "\r\n";
  RespParser parser;
  RespCommand cmd;
  size_t consumed = 0;
  std::string error;
  // Half the payload present: incomplete.
  EXPECT_EQ(parser.Next(wire.data(), wire.size() / 2, &cmd, &consumed, &error),
            RespParse::kNeedMore);
  // Still short of the promised frame size: the parser's byte hint makes
  // this a cheap rejection, and it must still be kNeedMore.
  EXPECT_EQ(parser.Next(wire.data(), wire.size() - 1, &cmd, &consumed, &error),
            RespParse::kNeedMore);
  ASSERT_EQ(parser.Next(wire.data(), wire.size(), &cmd, &consumed, &error), RespParse::kCommand);
  EXPECT_EQ(cmd.args[2].size(), payload.size());
}

TEST(RespParserTest, InlineCommand) {
  const auto cmds = ParseAll("PING\r\n");
  ASSERT_EQ(cmds.size(), 1u);
  EXPECT_EQ(cmds[0], (std::vector<std::string>{"PING"}));
}

TEST(RespParserTest, InlineSplitsOnWhitespace) {
  const auto cmds = ParseAll("SET  key\t\tvalue \r\n");
  ASSERT_EQ(cmds.size(), 1u);
  EXPECT_EQ(cmds[0], (std::vector<std::string>{"SET", "key", "value"}));
}

TEST(RespParserTest, InlineToleratesBareLf) {
  const auto cmds = ParseAll("GET k\n");
  ASSERT_EQ(cmds.size(), 1u);
  EXPECT_EQ(cmds[0], (std::vector<std::string>{"GET", "k"}));
}

TEST(RespParserTest, BlankLinesAreSkipped) {
  const auto cmds = ParseAll("\r\n\r\nPING\r\n\r\nGET k\r\n");
  ASSERT_EQ(cmds.size(), 2u);
  EXPECT_EQ(cmds[0][0], "PING");
  EXPECT_EQ(cmds[1][0], "GET");
}

TEST(RespParserTest, InlineThenMultibulkMix) {
  const auto cmds = ParseAll("PING\r\n*2\r\n$3\r\nGET\r\n$1\r\nk\r\nSET a b\r\n");
  ASSERT_EQ(cmds.size(), 3u);
  EXPECT_EQ(cmds[0][0], "PING");
  EXPECT_EQ(cmds[1][0], "GET");
  EXPECT_EQ(cmds[2], (std::vector<std::string>{"SET", "a", "b"}));
}

// ---- rejection paths ----

void ExpectError(const std::string& wire, const RespLimits& limits = RespLimits()) {
  RespParser parser(limits);
  RespCommand cmd;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(parser.Next(wire.data(), wire.size(), &cmd, &consumed, &error), RespParse::kError)
      << wire;
  EXPECT_FALSE(error.empty());
}

TEST(RespParserTest, RejectsOversizedBulk) {
  RespLimits limits;
  limits.max_bulk_bytes = 1024;
  ExpectError("*2\r\n$3\r\nGET\r\n$2048\r\n", limits);
}

TEST(RespParserTest, RejectsOversizedArgCount) {
  RespLimits limits;
  limits.max_args = 16;
  ExpectError("*1000\r\n", limits);
}

TEST(RespParserTest, RejectsOversizedInlineLine) {
  RespLimits limits;
  limits.max_inline_bytes = 32;
  // No newline in sight and already past the cap: reject rather than
  // buffering without bound.
  ExpectError(std::string(64, 'a'), limits);
}

TEST(RespParserTest, RejectsMalformedArrayHeader) {
  ExpectError("*abc\r\n");
  ExpectError("*1x\r\n");
  ExpectError("*-1\r\n");
}

TEST(RespParserTest, RejectsMalformedBulkHeader) {
  ExpectError("*1\r\n$xyz\r\n");
  ExpectError("*1\r\n$-5\r\n");
  ExpectError("*1\r\nX3\r\nfoo\r\n");  // '$' expected
}

TEST(RespParserTest, RejectsBulkPayloadWithoutCrlf) {
  ExpectError("*1\r\n$3\r\nfooXY");
}

TEST(RespParserTest, RejectsAbsurdIntegerHeader) {
  ExpectError("*184467440737095516150000\r\n");
}

// ---- reply encoders: exact wire bytes ----

TEST(RespEncodeTest, WireFormats) {
  std::string out;
  RespAppendSimple(&out, "OK");
  EXPECT_EQ(out, "+OK\r\n");
  out.clear();
  RespAppendError(&out, "ERR boom");
  EXPECT_EQ(out, "-ERR boom\r\n");
  out.clear();
  RespAppendInteger(&out, -42);
  EXPECT_EQ(out, ":-42\r\n");
  out.clear();
  RespAppendBulk(&out, "hi");
  EXPECT_EQ(out, "$2\r\nhi\r\n");
  out.clear();
  RespAppendBulk(&out, "");
  EXPECT_EQ(out, "$0\r\n\r\n");
  out.clear();
  RespAppendNil(&out);
  EXPECT_EQ(out, "$-1\r\n");
  out.clear();
  RespAppendArrayHeader(&out, 3);
  EXPECT_EQ(out, "*3\r\n");
}

}  // namespace
}  // namespace flodb
