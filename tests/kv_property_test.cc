// Cross-store property tests: EVERY store (FloDB + all four baselines)
// must behave like a std::map reference model under randomized
// put/get/delete/scan sequences, including across flushes. This is the
// strongest single correctness check in the suite: one code path per
// store, one oracle.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "flodb/baselines/baseline_store.h"
#include "flodb/bench_util/workload.h"
#include "flodb/common/key_codec.h"
#include "flodb/common/random.h"
#include "flodb/core/flodb.h"
#include "flodb/disk/mem_env.h"

namespace flodb {
namespace {

using bench::SpreadKey;

enum class StoreKind { kFloDB, kFloDBNoBuffer, kLevelDB, kHyper, kRocksDB, kCLSM };

const char* KindName(StoreKind kind) {
  switch (kind) {
    case StoreKind::kFloDB:
      return "FloDB";
    case StoreKind::kFloDBNoBuffer:
      return "FloDBNoBuffer";
    case StoreKind::kLevelDB:
      return "LevelDB";
    case StoreKind::kHyper:
      return "Hyper";
    case StoreKind::kRocksDB:
      return "RocksDB";
    case StoreKind::kCLSM:
      return "CLSM";
  }
  return "?";
}

std::unique_ptr<KVStore> OpenStore(StoreKind kind, MemEnv* env) {
  if (kind == StoreKind::kFloDB || kind == StoreKind::kFloDBNoBuffer) {
    FloDbOptions options;
    options.memory_budget_bytes = 256 << 10;
    options.enable_membuffer = kind == StoreKind::kFloDB;
    options.disk.env = env;
    options.disk.path = "/db";
    options.disk.sstable_target_bytes = 16 << 10;
    options.disk.block_bytes = 512;
    options.disk.l0_compaction_trigger = 3;
    options.disk.l1_max_bytes = 32 << 10;
    std::unique_ptr<FloDB> db;
    EXPECT_TRUE(FloDB::Open(options, &db).ok());
    return db;
  }
  BaselineOptions options;
  options.memtable_bytes = 64 << 10;
  options.disk.env = env;
  options.disk.path = "/db";
  options.disk.sstable_target_bytes = 16 << 10;
  options.disk.block_bytes = 512;
  options.disk.l0_compaction_trigger = 3;
  options.disk.l1_max_bytes = 32 << 10;
  switch (kind) {
    case StoreKind::kLevelDB:
      options.concurrency = BaselineOptions::Concurrency::kLevelDB;
      break;
    case StoreKind::kHyper:
      options.concurrency = BaselineOptions::Concurrency::kHyperLevelDB;
      break;
    case StoreKind::kRocksDB:
      options.concurrency = BaselineOptions::Concurrency::kRocksDB;
      break;
    case StoreKind::kCLSM:
      options.concurrency = BaselineOptions::Concurrency::kCLSM;
      break;
    default:
      break;
  }
  std::unique_ptr<BaselineStore> store;
  EXPECT_TRUE(BaselineStore::Open(options, &store).ok());
  return store;
}

class KVPropertyTest : public ::testing::TestWithParam<StoreKind> {};

constexpr uint64_t kSpace = 512;

std::string K(uint64_t i) { return EncodeKey(SpreadKey(i, kSpace)); }

TEST_P(KVPropertyTest, RandomOpsMatchReferenceModel) {
  MemEnv env;
  std::unique_ptr<KVStore> store = OpenStore(GetParam(), &env);
  ASSERT_NE(store, nullptr);

  std::map<std::string, std::string> model;
  Random64 rng(2024);

  for (int op = 0; op < 8000; ++op) {
    const uint64_t key_id = rng.Uniform(kSpace);
    const std::string key = K(key_id);
    const uint64_t dice = rng.Uniform(100);
    if (dice < 45) {  // put
      const std::string value = "v" + std::to_string(op);
      ASSERT_TRUE(store->Put(Slice(key), Slice(value)).ok());
      model[key] = value;
    } else if (dice < 60) {  // delete
      ASSERT_TRUE(store->Delete(Slice(key)).ok());
      model.erase(key);
    } else if (dice < 90) {  // get
      std::string value;
      Status s = store->Get(Slice(key), &value);
      auto it = model.find(key);
      if (it == model.end()) {
        ASSERT_TRUE(s.IsNotFound()) << KindName(GetParam()) << " op " << op << ": expected miss,"
                                    << " got " << s.ToString() << " value=" << value;
      } else {
        ASSERT_TRUE(s.ok()) << KindName(GetParam()) << " op " << op << ": " << s.ToString();
        ASSERT_EQ(value, it->second) << KindName(GetParam()) << " op " << op;
      }
    } else {  // scan of up to 20 keys
      const uint64_t lo = rng.Uniform(kSpace);
      const uint64_t hi = lo + rng.Uniform(40);
      std::vector<std::pair<std::string, std::string>> out;
      ASSERT_TRUE(store->Scan(Slice(K(lo)), Slice(K(hi)), 0, &out).ok());
      auto model_it = model.lower_bound(K(lo));
      size_t i = 0;
      for (; model_it != model.end() && model_it->first < K(hi); ++model_it, ++i) {
        ASSERT_LT(i, out.size()) << KindName(GetParam()) << " scan missed "
                                 << DecodeKey(Slice(model_it->first)) << " at op " << op;
        ASSERT_EQ(out[i].first, model_it->first) << KindName(GetParam()) << " op " << op;
        ASSERT_EQ(out[i].second, model_it->second) << KindName(GetParam()) << " op " << op;
      }
      ASSERT_EQ(i, out.size()) << KindName(GetParam()) << " scan returned extras at op " << op;
    }

    // Periodically force the full flush/compaction machinery.
    if (op % 2500 == 2499) {
      ASSERT_TRUE(store->FlushAll().ok());
    }
  }

  // Final sweep: the full store content equals the model.
  std::vector<std::pair<std::string, std::string>> all;
  ASSERT_TRUE(store->Scan(Slice(), Slice(), 0, &all).ok());
  ASSERT_EQ(all.size(), model.size());
  auto expected = model.begin();
  for (size_t i = 0; i < all.size(); ++i, ++expected) {
    EXPECT_EQ(all[i].first, expected->first);
    EXPECT_EQ(all[i].second, expected->second);
  }
}

TEST_P(KVPropertyTest, ValueSizesVaryWildly) {
  MemEnv env;
  std::unique_ptr<KVStore> store = OpenStore(GetParam(), &env);
  std::map<std::string, std::string> model;
  Random64 rng(7);
  for (int op = 0; op < 800; ++op) {
    const std::string key = K(rng.Uniform(64));
    const size_t value_size = static_cast<size_t>(rng.Uniform(5000));
    std::string value(value_size, static_cast<char>('a' + (op % 26)));
    ASSERT_TRUE(store->Put(Slice(key), Slice(value)).ok());
    model[key] = value;
  }
  ASSERT_TRUE(store->FlushAll().ok());
  for (const auto& [key, expected] : model) {
    std::string value;
    ASSERT_TRUE(store->Get(Slice(key), &value).ok());
    EXPECT_EQ(value, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(AllStores, KVPropertyTest,
                         ::testing::Values(StoreKind::kFloDB, StoreKind::kFloDBNoBuffer,
                                           StoreKind::kLevelDB, StoreKind::kHyper,
                                           StoreKind::kRocksDB, StoreKind::kCLSM),
                         [](const ::testing::TestParamInfo<StoreKind>& info) {
                           return KindName(info.param);
                         });

}  // namespace
}  // namespace flodb
