#include "flodb/mem/memtable.h"

#include <gtest/gtest.h>

#include <vector>

#include "flodb/common/key_codec.h"
#include "flodb/core/memtable_iterator.h"

namespace flodb {
namespace {

TEST(MemTableTest, AddGetRoundTrip) {
  MemTable table(1 << 20);
  table.Add(Slice(EncodeKey(1)), Slice("v1"), 1, ValueType::kValue);
  std::string value;
  uint64_t seq;
  ValueType type;
  ASSERT_TRUE(table.Get(Slice(EncodeKey(1)), &value, &seq, &type));
  EXPECT_EQ(value, "v1");
  EXPECT_EQ(seq, 1u);
}

TEST(MemTableTest, OverTargetTracksArena) {
  MemTable table(4096);
  EXPECT_FALSE(table.OverTarget());
  for (uint64_t k = 0; k < 100; ++k) {
    table.Add(Slice(EncodeKey(k)), Slice(std::string(100, 'x')), k + 1, ValueType::kValue);
  }
  EXPECT_TRUE(table.OverTarget());
  EXPECT_GE(table.ApproximateBytes(), 100u * 100u);
}

TEST(MemTableTest, MultiAddBatch) {
  MemTable table(1 << 20);
  std::vector<std::string> keys;
  std::vector<ConcurrentSkipList::BatchEntry> batch;
  for (uint64_t k = 0; k < 10; ++k) {
    keys.push_back(EncodeKey(k));
  }
  for (uint64_t k = 0; k < 10; ++k) {
    batch.push_back(ConcurrentSkipList::BatchEntry{Slice(keys[k]), Slice("mv"),
                                                   ValueType::kValue, k + 1});
  }
  table.MultiAdd(batch);
  EXPECT_EQ(table.Count(), 10u);
}

TEST(MemTableTest, IteratorAdapterExposesEntries) {
  MemTable table(1 << 20);
  table.Add(Slice(EncodeKey(2)), Slice("b"), 2, ValueType::kValue);
  table.Add(Slice(EncodeKey(1)), Slice("a"), 1, ValueType::kValue);
  table.Add(Slice(EncodeKey(3)), Slice(), 3, ValueType::kTombstone);

  MemTableIterator iter(&table);
  iter.SeekToFirst();
  ASSERT_TRUE(iter.Valid());
  EXPECT_EQ(DecodeKey(iter.key()), 1u);
  EXPECT_EQ(iter.value().ToString(), "a");
  EXPECT_EQ(iter.seq(), 1u);
  iter.Next();
  EXPECT_EQ(DecodeKey(iter.key()), 2u);
  iter.Next();
  EXPECT_EQ(iter.type(), ValueType::kTombstone);
  iter.Next();
  EXPECT_FALSE(iter.Valid());

  iter.Seek(Slice(EncodeKey(2)));
  ASSERT_TRUE(iter.Valid());
  EXPECT_EQ(DecodeKey(iter.key()), 2u);
}

}  // namespace
}  // namespace flodb
