// ShardedLruCache under contention: readers racing insertions,
// capacity-pressure evictions and explicit erases. The invariants under
// test: a pinned value is never freed or corrupted while its handle is
// held; every value is freed exactly once; charge accounting converges
// to zero once the cache drains. Run under TSan in CI (concurrent
// label) and looped by the stress-concurrent job.

#include "flodb/common/cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "flodb/common/random.h"

namespace flodb {
namespace {

std::atomic<int> g_live{0};

// Values encode their key index so readers can detect cross-key mixups.
void CountingDeleter(const Slice& /*key*/, void* value) {
  delete static_cast<uint64_t*>(value);
  g_live.fetch_sub(1, std::memory_order_relaxed);
}

uint64_t* NewValue(uint64_t i) {
  g_live.fetch_add(1, std::memory_order_relaxed);
  return new uint64_t(i * 31 + 7);
}

std::string KeyOf(uint64_t i) { return "key-" + std::to_string(i); }

TEST(CacheConcurrentTest, ReadersInsertionsEvictions) {
  g_live.store(0);
  // Capacity far below the key range so evictions run constantly.
  ShardedLruCache cache(64);
  constexpr uint64_t kKeys = 512;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Random64 rng(static_cast<uint64_t>(t) * 977 + 13);
      for (int op = 0; op < kOpsPerThread; ++op) {
        const uint64_t i = rng.Uniform(kKeys);
        const std::string key = KeyOf(i);
        ShardedLruCache::Handle* handle = cache.Lookup(Slice(key));
        if (handle == nullptr) {
          handle = cache.Insert(Slice(key), NewValue(i), 1, &CountingDeleter);
        }
        // The pinned value must match its key even while eviction and
        // replacement churn around us.
        EXPECT_EQ(*static_cast<uint64_t*>(cache.Value(handle)), i * 31 + 7);
        cache.Release(handle);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }

  const ShardedLruCache::Stats stats = cache.GetStats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.pinned_charge, 0u);
  // Everything freed except what is still resident.
  EXPECT_EQ(static_cast<size_t>(g_live.load()), stats.entries);
  EXPECT_LE(stats.charge, 64u + ShardedLruCache::kNumShards);
}

TEST(CacheConcurrentTest, EraseRacesLookups) {
  g_live.store(0);
  ShardedLruCache cache(1 << 16);
  constexpr uint64_t kKeys = 256;
  constexpr int kOpsPerThread = 20000;
  std::atomic<bool> stop{false};

  // Writers insert, erasers tear down, readers verify pinned stability.
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      Random64 rng(static_cast<uint64_t>(t) * 61 + 5);
      for (int op = 0; op < kOpsPerThread; ++op) {
        const uint64_t i = rng.Uniform(kKeys);
        cache.Release(cache.Insert(Slice(KeyOf(i)), NewValue(i), 1, &CountingDeleter));
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      Random64 rng(static_cast<uint64_t>(t) * 127 + 3);
      while (!stop.load(std::memory_order_relaxed)) {
        cache.Erase(Slice(KeyOf(rng.Uniform(kKeys))));
      }
    });
  }
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      Random64 rng(static_cast<uint64_t>(t) * 193 + 11);
      for (int op = 0; op < kOpsPerThread; ++op) {
        const uint64_t i = rng.Uniform(kKeys);
        if (ShardedLruCache::Handle* handle = cache.Lookup(Slice(KeyOf(i)))) {
          // An Erase may race us right here; the handle must keep the
          // value alive and intact regardless.
          EXPECT_EQ(*static_cast<uint64_t*>(cache.Value(handle)), i * 31 + 7);
          cache.Release(handle);
        }
      }
    });
  }
  // Join the bounded threads first, then stop the erasers.
  for (size_t t = 0; t < threads.size(); ++t) {
    if (t == 3 || t == 4) {
      continue;
    }
    threads[t].join();
  }
  stop.store(true, std::memory_order_relaxed);
  threads[3].join();
  threads[4].join();

  const ShardedLruCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.pinned_charge, 0u);
  EXPECT_EQ(static_cast<size_t>(g_live.load()), stats.entries);
}

TEST(CacheConcurrentTest, PinnedEntriesSurviveEvictionStorm) {
  g_live.store(0);
  ShardedLruCache cache(32);
  constexpr uint64_t kPinned = 64;  // far over capacity

  // Pin a population of entries, then storm the cache with inserts that
  // would evict them if refcounts were broken.
  std::vector<ShardedLruCache::Handle*> pinned;
  for (uint64_t i = 0; i < kPinned; ++i) {
    pinned.push_back(cache.Insert(Slice("pin-" + std::to_string(i)), NewValue(i), 1,
                                  &CountingDeleter));
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Random64 rng(static_cast<uint64_t>(t) + 1);
      for (int op = 0; op < 10000; ++op) {
        const uint64_t i = rng.Uniform(4096);
        cache.Release(
            cache.Insert(Slice("storm-" + std::to_string(i)), NewValue(i), 1, &CountingDeleter));
      }
    });
  }
  std::thread checker([&] {
    for (int round = 0; round < 200; ++round) {
      for (uint64_t i = 0; i < kPinned; ++i) {
        EXPECT_EQ(*static_cast<uint64_t*>(cache.Value(pinned[i])), i * 31 + 7);
      }
    }
  });
  for (auto& thread : threads) {
    thread.join();
  }
  checker.join();

  for (ShardedLruCache::Handle* handle : pinned) {
    cache.Release(handle);
  }
  const ShardedLruCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.pinned_charge, 0u);
  EXPECT_EQ(static_cast<size_t>(g_live.load()), stats.entries);
}

TEST(CacheConcurrentTest, AllFreedOnDestruction) {
  g_live.store(0);
  {
    ShardedLruCache cache(128);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        Random64 rng(static_cast<uint64_t>(t) * 7 + 1);
        for (int op = 0; op < 5000; ++op) {
          const uint64_t i = rng.Uniform(1024);
          cache.Release(cache.Insert(Slice(KeyOf(i)), NewValue(i), 1, &CountingDeleter));
        }
      });
    }
    for (auto& thread : threads) {
      thread.join();
    }
  }
  EXPECT_EQ(g_live.load(), 0);
}

}  // namespace
}  // namespace flodb
