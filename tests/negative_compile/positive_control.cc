// MUST COMPILE CLEANLY under -Wthread-safety -Wthread-safety-beta
// -Werror: a correctly annotated use of the whole wrapper surface
// (scoped holds, REQUIRES helpers, external-mutex CondVar waits, shared
// holds, manual lock()/unlock() pairing). If this snippet fails, the
// harness itself is broken and the must-fail results above are
// meaningless.

#include "flodb/common/synchronization.h"

namespace {

class Correct {
 public:
  void Add() {
    flodb::MutexLock lock(mu_);
    AddLocked();
    while (value_ > kLimit) {
      cv_.Wait(mu_);
    }
  }

  // Manual pairing: release mid-scope around slow work, per-branch.
  void AddSlow() {
    mu_.lock();
    if (value_ > kLimit) {
      mu_.unlock();
      return;
    }
    ++value_;
    mu_.unlock();
  }

  int Snapshot() const {
    flodb::ReaderMutexLock lock(rw_);
    return cached_;
  }

  void Publish(int v) {
    flodb::WriterMutexLock lock(rw_);
    cached_ = v;
  }

 private:
  static constexpr int kLimit = 100;

  void AddLocked() REQUIRES(mu_) { ++value_; }

  flodb::Mutex mu_;
  flodb::CondVar cv_;
  int value_ GUARDED_BY(mu_) = 0;

  mutable flodb::SharedMutex rw_;
  int cached_ GUARDED_BY(rw_) = 0;
};

int Use() {
  Correct c;
  c.Add();
  c.AddSlow();
  c.Publish(1);
  return c.Snapshot();
}

}  // namespace
