// MUST NOT COMPILE under -Wthread-safety -Werror: value_ is GUARDED_BY
// the mutex, and Increment touches it with the lock not held.

#include "flodb/common/synchronization.h"

namespace {

class Counter {
 public:
  void Increment() {
    ++value_;  // BUG: writing a guarded field without holding mu_
  }

  int Get() {
    return value_;  // BUG: reading a guarded field without holding mu_
  }

 private:
  flodb::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

int Use() {
  Counter c;
  c.Increment();
  return c.Get();
}

}  // namespace
