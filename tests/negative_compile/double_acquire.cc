// MUST NOT COMPILE under -Wthread-safety -Werror: the scope acquires a
// capability it already holds — a guaranteed self-deadlock on the
// non-reentrant Mutex.

#include "flodb/common/synchronization.h"

namespace {

flodb::Mutex mu;
int value GUARDED_BY(mu) = 0;

void DoubleAcquire() {
  flodb::MutexLock lock(mu);
  flodb::MutexLock again(mu);  // BUG: mu is already held by this scope
  ++value;
}

}  // namespace
