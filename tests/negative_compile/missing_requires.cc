// MUST NOT COMPILE under -Wthread-safety -Werror: InsertLocked names its
// precondition with REQUIRES(mu_), and Insert calls it without holding
// the lock — the "helper silently assumes a caller-held lock" defect the
// annotations exist to catch.

#include "flodb/common/synchronization.h"

namespace {

class Registry {
 public:
  void Insert() {
    InsertLocked();  // BUG: calling a REQUIRES(mu_) helper lock-free
  }

 private:
  void InsertLocked() REQUIRES(mu_) { ++size_; }

  flodb::Mutex mu_;
  int size_ GUARDED_BY(mu_) = 0;
};

void Use() {
  Registry r;
  r.Insert();
}

}  // namespace
