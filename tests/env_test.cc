// Env implementations: MemEnv, PosixEnv, ThrottledEnv (token bucket).

#include "flodb/disk/env.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "flodb/common/clock.h"
#include "flodb/disk/mem_env.h"
#include "flodb/disk/throttled_env.h"

namespace flodb {
namespace {

class EnvTest : public ::testing::TestWithParam<bool /*use_posix*/> {
 protected:
  void SetUp() override {
    if (GetParam()) {
      env_ = GetPosixEnv();
      dir_ = ::testing::TempDir() + "flodb_env_test_" +
             std::to_string(reinterpret_cast<uintptr_t>(this));
      env_->CreateDir(dir_);
    } else {
      owned_ = std::make_unique<MemEnv>();
      env_ = owned_.get();
      dir_ = "/memdir";
      env_->CreateDir(dir_);
    }
  }

  void TearDown() override {
    std::vector<std::string> children;
    if (env_->GetChildren(dir_, &children).ok()) {
      for (const std::string& c : children) {
        env_->RemoveFile(dir_ + "/" + c);
      }
    }
  }

  std::string Path(const std::string& name) { return dir_ + "/" + name; }

  std::unique_ptr<MemEnv> owned_;
  Env* env_ = nullptr;
  std::string dir_;
};

TEST_P(EnvTest, WriteReadRoundTrip) {
  ASSERT_TRUE(WriteStringToFile(env_, Slice("hello world"), Path("f1"), true).ok());
  std::string data;
  ASSERT_TRUE(ReadFileToString(env_, Path("f1"), &data).ok());
  EXPECT_EQ(data, "hello world");
}

TEST_P(EnvTest, FileExistsAndRemove) {
  EXPECT_FALSE(env_->FileExists(Path("nope")));
  ASSERT_TRUE(WriteStringToFile(env_, Slice("x"), Path("f2"), false).ok());
  EXPECT_TRUE(env_->FileExists(Path("f2")));
  ASSERT_TRUE(env_->RemoveFile(Path("f2")).ok());
  EXPECT_FALSE(env_->FileExists(Path("f2")));
}

TEST_P(EnvTest, RemoveMissingFileIsError) {
  EXPECT_FALSE(env_->RemoveFile(Path("missing")).ok());
}

TEST_P(EnvTest, GetFileSize) {
  ASSERT_TRUE(WriteStringToFile(env_, Slice(std::string(12345, 'z')), Path("f3"), false).ok());
  uint64_t size = 0;
  ASSERT_TRUE(env_->GetFileSize(Path("f3"), &size).ok());
  EXPECT_EQ(size, 12345u);
}

TEST_P(EnvTest, RenameFile) {
  ASSERT_TRUE(WriteStringToFile(env_, Slice("content"), Path("src"), false).ok());
  ASSERT_TRUE(env_->RenameFile(Path("src"), Path("dst")).ok());
  EXPECT_FALSE(env_->FileExists(Path("src")));
  std::string data;
  ASSERT_TRUE(ReadFileToString(env_, Path("dst"), &data).ok());
  EXPECT_EQ(data, "content");
}

TEST_P(EnvTest, GetChildrenListsFiles) {
  ASSERT_TRUE(WriteStringToFile(env_, Slice("1"), Path("a.sst"), false).ok());
  ASSERT_TRUE(WriteStringToFile(env_, Slice("2"), Path("b.sst"), false).ok());
  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren(dir_, &children).ok());
  EXPECT_GE(children.size(), 2u);
}

TEST_P(EnvTest, RandomAccessReads) {
  ASSERT_TRUE(WriteStringToFile(env_, Slice("0123456789"), Path("ra"), false).ok());
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env_->NewRandomAccessFile(Path("ra"), &file).ok());
  char scratch[16];
  Slice result;
  ASSERT_TRUE(file->Read(3, 4, &result, scratch).ok());
  EXPECT_EQ(result.ToString(), "3456");
  // Read past EOF truncates.
  ASSERT_TRUE(file->Read(8, 10, &result, scratch).ok());
  EXPECT_EQ(result.ToString(), "89");
  // Read at/after EOF returns empty.
  ASSERT_TRUE(file->Read(100, 4, &result, scratch).ok());
  EXPECT_TRUE(result.empty());
}

TEST_P(EnvTest, SequentialReadAndSkip) {
  ASSERT_TRUE(WriteStringToFile(env_, Slice("abcdefghij"), Path("seq"), false).ok());
  std::unique_ptr<SequentialFile> file;
  ASSERT_TRUE(env_->NewSequentialFile(Path("seq"), &file).ok());
  char scratch[8];
  Slice result;
  ASSERT_TRUE(file->Read(3, &result, scratch).ok());
  EXPECT_EQ(result.ToString(), "abc");
  ASSERT_TRUE(file->Skip(2).ok());
  ASSERT_TRUE(file->Read(3, &result, scratch).ok());
  EXPECT_EQ(result.ToString(), "fgh");
}

TEST_P(EnvTest, OpenMissingFileFails) {
  std::unique_ptr<RandomAccessFile> file;
  EXPECT_FALSE(env_->NewRandomAccessFile(Path("ghost"), &file).ok());
}

TEST_P(EnvTest, OverwriteTruncates) {
  ASSERT_TRUE(WriteStringToFile(env_, Slice("long old content"), Path("ow"), false).ok());
  ASSERT_TRUE(WriteStringToFile(env_, Slice("new"), Path("ow"), false).ok());
  std::string data;
  ASSERT_TRUE(ReadFileToString(env_, Path("ow"), &data).ok());
  EXPECT_EQ(data, "new");
}

INSTANTIATE_TEST_SUITE_P(MemAndPosix, EnvTest, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Posix" : "Mem";
                         });

TEST(ThrottledEnvTest, CapsWriteBandwidth) {
  MemEnv base;
  // 1 MB/s budget; writing 300KB beyond the burst allowance must take
  // a measurable fraction of a second.
  ThrottledEnv env(&base, 1u << 20);
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env.NewWritableFile("/f", &file).ok());
  const std::string chunk(64 << 10, 'x');
  const uint64_t start = NowNanos();
  for (int i = 0; i < 8; ++i) {  // 512 KB total
    ASSERT_TRUE(file->Append(Slice(chunk)).ok());
  }
  const double elapsed = SecondsSince(start);
  // Burst allowance is ~100ms worth (≈100KB); remaining ~400KB at 1MB/s
  // needs >= ~0.3s. Be lenient for CI noise.
  EXPECT_GT(elapsed, 0.2);
  EXPECT_EQ(env.TotalBytesWritten(), 8u * (64u << 10));
}

TEST(ThrottledEnvTest, ZeroRateMeansUnlimited) {
  MemEnv base;
  ThrottledEnv env(&base, 0);
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env.NewWritableFile("/f", &file).ok());
  const uint64_t start = NowNanos();
  const std::string chunk(1 << 20, 'x');
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(file->Append(Slice(chunk)).ok());
  }
  EXPECT_LT(SecondsSince(start), 2.0);
  EXPECT_EQ(env.TotalBytesWritten(), 16u << 20);
}

TEST(ThrottledEnvTest, PassesThroughReadsUnthrottled) {
  MemEnv base;
  ASSERT_TRUE(WriteStringToFile(&base, Slice("data"), "/f", false).ok());
  ThrottledEnv env(&base, 1);
  std::string out;
  ASSERT_TRUE(ReadFileToString(&env, "/f", &out).ok());
  EXPECT_EQ(out, "data");
}

TEST(MemEnvTest, TotalBytes) {
  MemEnv env;
  ASSERT_TRUE(WriteStringToFile(&env, Slice(std::string(100, 'a')), "/a", false).ok());
  ASSERT_TRUE(WriteStringToFile(&env, Slice(std::string(50, 'b')), "/b", false).ok());
  EXPECT_EQ(env.TotalBytes(), 150u);
}

TEST(MemEnvTest, RemovedFileStaysReadableThroughOpenHandle) {
  // POSIX unlink semantics: required by disk-component GC while scans
  // hold old versions.
  MemEnv env;
  ASSERT_TRUE(WriteStringToFile(&env, Slice("persistent"), "/f", false).ok());
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env.NewRandomAccessFile("/f", &file).ok());
  ASSERT_TRUE(env.RemoveFile("/f").ok());
  char scratch[16];
  Slice result;
  ASSERT_TRUE(file->Read(0, 10, &result, scratch).ok());
  EXPECT_EQ(result.ToString(), "persistent");
}

}  // namespace
}  // namespace flodb
