#include "flodb/common/coding.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

namespace flodb {
namespace {

TEST(CodingTest, Fixed32RoundTrip) {
  std::string s;
  for (uint32_t v : {0u, 1u, 255u, 256u, 0xdeadbeefu, std::numeric_limits<uint32_t>::max()}) {
    s.clear();
    PutFixed32(&s, v);
    ASSERT_EQ(s.size(), 4u);
    EXPECT_EQ(DecodeFixed32(s.data()), v);
  }
}

TEST(CodingTest, Fixed64RoundTrip) {
  std::string s;
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{1} << 32, uint64_t{0xdeadbeefcafebabe},
                     std::numeric_limits<uint64_t>::max()}) {
    s.clear();
    PutFixed64(&s, v);
    ASSERT_EQ(s.size(), 8u);
    EXPECT_EQ(DecodeFixed64(s.data()), v);
  }
}

TEST(CodingTest, Varint32RoundTripExhaustiveBoundaries) {
  std::vector<uint32_t> values;
  for (uint32_t shift = 0; shift < 32; ++shift) {
    const uint32_t power = 1u << shift;
    values.push_back(power - 1);
    values.push_back(power);
    values.push_back(power + 1);
  }
  values.push_back(std::numeric_limits<uint32_t>::max());
  std::string s;
  for (uint32_t v : values) {
    PutVarint32(&s, v);
  }
  Slice in(s);
  for (uint32_t v : values) {
    uint32_t parsed;
    ASSERT_TRUE(GetVarint32(&in, &parsed));
    EXPECT_EQ(parsed, v);
  }
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, Varint64RoundTripBoundaries) {
  std::vector<uint64_t> values;
  for (uint32_t shift = 0; shift < 64; ++shift) {
    const uint64_t power = uint64_t{1} << shift;
    values.push_back(power - 1);
    values.push_back(power);
    values.push_back(power + 1);
  }
  values.push_back(std::numeric_limits<uint64_t>::max());
  std::string s;
  for (uint64_t v : values) {
    PutVarint64(&s, v);
  }
  Slice in(s);
  for (uint64_t v : values) {
    uint64_t parsed;
    ASSERT_TRUE(GetVarint64(&in, &parsed));
    EXPECT_EQ(parsed, v);
  }
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, VarintLengthMatchesEncoding) {
  for (uint64_t v : {uint64_t{0}, uint64_t{127}, uint64_t{128}, uint64_t{16383},
                     uint64_t{16384}, uint64_t{1} << 40, std::numeric_limits<uint64_t>::max()}) {
    std::string s;
    PutVarint64(&s, v);
    EXPECT_EQ(static_cast<int>(s.size()), VarintLength(v)) << v;
  }
}

TEST(CodingTest, Varint32TruncatedInputFails) {
  std::string s;
  PutVarint32(&s, 1u << 30);  // 5-byte encoding
  for (size_t cut = 0; cut + 1 < s.size(); ++cut) {
    uint32_t v;
    EXPECT_EQ(GetVarint32Ptr(s.data(), s.data() + cut, &v), nullptr);
  }
}

TEST(CodingTest, Varint64TruncatedInputFails) {
  std::string s;
  PutVarint64(&s, std::numeric_limits<uint64_t>::max());  // 10 bytes
  for (size_t cut = 0; cut + 1 < s.size(); ++cut) {
    uint64_t v;
    EXPECT_EQ(GetVarint64Ptr(s.data(), s.data() + cut, &v), nullptr);
  }
}

TEST(CodingTest, LengthPrefixedSliceRoundTrip) {
  std::string s;
  PutLengthPrefixedSlice(&s, Slice("hello"));
  PutLengthPrefixedSlice(&s, Slice(""));
  PutLengthPrefixedSlice(&s, Slice(std::string(1000, 'x')));
  Slice in(s);
  Slice a, b, c;
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &a));
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &b));
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &c));
  EXPECT_EQ(a.ToString(), "hello");
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(c.size(), 1000u);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, LengthPrefixedSliceTruncatedBodyFails) {
  std::string s;
  PutLengthPrefixedSlice(&s, Slice("hello"));
  s.resize(s.size() - 2);
  Slice in(s);
  Slice out;
  EXPECT_FALSE(GetLengthPrefixedSlice(&in, &out));
}

TEST(CodingTest, MixedStreamDecodes) {
  std::string s;
  PutFixed32(&s, 7);
  PutVarint64(&s, 1'000'000);
  PutLengthPrefixedSlice(&s, Slice("k"));
  Slice in(s);
  EXPECT_EQ(DecodeFixed32(in.data()), 7u);
  in.remove_prefix(4);
  uint64_t v;
  ASSERT_TRUE(GetVarint64(&in, &v));
  EXPECT_EQ(v, 1'000'000u);
  Slice k;
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &k));
  EXPECT_EQ(k.ToString(), "k");
}

}  // namespace
}  // namespace flodb
