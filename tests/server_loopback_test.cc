// Server: RESP command round-trips over real loopback sockets, pipelined
// bursts folding into grouped WriteBatch commits, protocol-error
// handling, concurrent connections, and the drain-on-shutdown durability
// guarantee (acked sync writes survive a reopen).

#include "flodb/net/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "flodb/core/flodb.h"
#include "flodb/disk/mem_env.h"
#include "flodb/net/resp_client.h"

namespace flodb {
namespace {

struct TestServer {
  std::unique_ptr<MemEnv> env;
  std::unique_ptr<FloDB> store;
  std::unique_ptr<Server> server;

  RespClient NewClient() const {
    RespClient client;
    EXPECT_TRUE(client.Connect("127.0.0.1", server->port()).ok());
    return client;
  }
};

TestServer StartTestServer(bool sync_writes = false,
                           const RespLimits& limits = RespLimits()) {
  TestServer ts;
  ts.env = std::make_unique<MemEnv>();
  FloDbOptions options;
  options.memory_budget_bytes = 4u << 20;
  options.enable_wal = true;
  options.disk.env = ts.env.get();
  options.disk.path = "/db";
  EXPECT_TRUE(FloDB::Open(options, &ts.store).ok());

  ServerOptions server_options;
  server_options.port = 0;  // ephemeral
  server_options.workers = 2;
  server_options.sync_writes = sync_writes;
  server_options.limits = limits;
  EXPECT_TRUE(Server::Start(server_options, ts.store.get(), &ts.server).ok());
  EXPECT_GT(ts.server->port(), 0);
  return ts;
}

TEST(ServerLoopbackTest, CoreCommandRoundTrips) {
  TestServer ts = StartTestServer();
  RespClient client = ts.NewClient();
  RespReply reply;

  ASSERT_TRUE(client.Command({"PING"}, &reply).ok());
  EXPECT_EQ(reply.type, RespReply::Type::kSimple);
  EXPECT_EQ(reply.str, "PONG");

  ASSERT_TRUE(client.Command({"SET", "user:1", "alice"}, &reply).ok());
  EXPECT_TRUE(reply.IsOk());

  ASSERT_TRUE(client.Command({"GET", "user:1"}, &reply).ok());
  EXPECT_EQ(reply.type, RespReply::Type::kBulk);
  EXPECT_EQ(reply.str, "alice");

  ASSERT_TRUE(client.Command({"GET", "missing"}, &reply).ok());
  EXPECT_EQ(reply.type, RespReply::Type::kNil);

  ASSERT_TRUE(client.Command({"MSET", "a", "1", "b", "2"}, &reply).ok());
  EXPECT_TRUE(reply.IsOk());

  ASSERT_TRUE(client.Command({"MGET", "a", "b", "nope"}, &reply).ok());
  ASSERT_EQ(reply.type, RespReply::Type::kArray);
  ASSERT_EQ(reply.elements.size(), 3u);
  EXPECT_EQ(reply.elements[0].str, "1");
  EXPECT_EQ(reply.elements[1].str, "2");
  EXPECT_EQ(reply.elements[2].type, RespReply::Type::kNil);

  // DEL replies with how many of the keys existed.
  ASSERT_TRUE(client.Command({"DEL", "a", "nope"}, &reply).ok());
  EXPECT_EQ(reply.type, RespReply::Type::kInteger);
  EXPECT_EQ(reply.integer, 1);
  ASSERT_TRUE(client.Command({"GET", "a"}, &reply).ok());
  EXPECT_EQ(reply.type, RespReply::Type::kNil);

  ASSERT_TRUE(client.Command({"ECHO", "hello"}, &reply).ok());
  EXPECT_EQ(reply.str, "hello");
}

TEST(ServerLoopbackTest, ScanRangeIsOrderedAndHighExclusive) {
  TestServer ts = StartTestServer();
  RespClient client = ts.NewClient();
  RespReply reply;
  for (const char* key : {"k3", "k1", "k4", "k2", "x9"}) {
    ASSERT_TRUE(client.Command({"SET", key, std::string("v-") + key}, &reply).ok());
  }
  ASSERT_TRUE(client.Command({"SCAN", "k1", "k4"}, &reply).ok());
  ASSERT_EQ(reply.type, RespReply::Type::kArray);
  ASSERT_EQ(reply.elements.size(), 6u);  // k1,k2,k3 as key,value pairs
  EXPECT_EQ(reply.elements[0].str, "k1");
  EXPECT_EQ(reply.elements[2].str, "k2");
  EXPECT_EQ(reply.elements[4].str, "k3");
  EXPECT_EQ(reply.elements[5].str, "v-k3");

  // COUNT clamps the result; empty high bound = unbounded above.
  ASSERT_TRUE(client.Command({"SCAN", "k1", "", "COUNT", "2"}, &reply).ok());
  ASSERT_EQ(reply.elements.size(), 4u);
}

TEST(ServerLoopbackTest, PipelinedBurstFoldsIntoFewerBatches) {
  TestServer ts = StartTestServer();
  RespClient client = ts.NewClient();
  const ServerStats before = ts.server->GetStats();

  constexpr int kCommands = 64;
  for (int i = 0; i < kCommands; ++i) {
    client.QueueCommand({"SET", "p:" + std::to_string(i), "v" + std::to_string(i)});
  }
  ASSERT_TRUE(client.Flush().ok());
  RespReply reply;
  for (int i = 0; i < kCommands; ++i) {
    ASSERT_TRUE(client.ReadReply(&reply).ok());
    EXPECT_TRUE(reply.IsOk()) << "command " << i;
  }

  // The acceptance bar: pipelined writes land as grouped commits, so the
  // server must have issued strictly fewer WriteBatch commits than it
  // processed write commands (loopback delivers a 2KB burst in one or two
  // reads, so typically 1-2 batches — but only the strict inequality is
  // guaranteed).
  const ServerStats after = ts.server->GetStats();
  const uint64_t batches = after.pipelined_batches - before.pipelined_batches;
  const uint64_t folded = after.batched_write_commands - before.batched_write_commands;
  EXPECT_EQ(folded, static_cast<uint64_t>(kCommands));
  EXPECT_GE(batches, 1u);
  EXPECT_LT(batches, static_cast<uint64_t>(kCommands));

  // And the data actually landed.
  RespClient verify = ts.NewClient();
  ASSERT_TRUE(verify.Command({"GET", "p:63"}, &reply).ok());
  EXPECT_EQ(reply.str, "v63");
}

TEST(ServerLoopbackTest, ReadsInsidePipelineSeeEarlierWritesOfTheSameBurst) {
  TestServer ts = StartTestServer();
  RespClient client = ts.NewClient();
  client.QueueCommand({"SET", "x", "1"});
  client.QueueCommand({"GET", "x"});
  client.QueueCommand({"SET", "x", "2"});
  client.QueueCommand({"GET", "x"});
  client.QueueCommand({"DEL", "x"});
  client.QueueCommand({"GET", "x"});
  ASSERT_TRUE(client.Flush().ok());

  RespReply reply;
  ASSERT_TRUE(client.ReadReply(&reply).ok());
  EXPECT_TRUE(reply.IsOk());
  ASSERT_TRUE(client.ReadReply(&reply).ok());
  EXPECT_EQ(reply.str, "1");
  ASSERT_TRUE(client.ReadReply(&reply).ok());
  EXPECT_TRUE(reply.IsOk());
  ASSERT_TRUE(client.ReadReply(&reply).ok());
  EXPECT_EQ(reply.str, "2");
  ASSERT_TRUE(client.ReadReply(&reply).ok());
  EXPECT_EQ(reply.integer, 1);  // x existed (within this very burst)
  ASSERT_TRUE(client.ReadReply(&reply).ok());
  EXPECT_EQ(reply.type, RespReply::Type::kNil);
}

TEST(ServerLoopbackTest, DelExistenceSeesUncommittedBurstWrites) {
  TestServer ts = StartTestServer();
  RespClient client = ts.NewClient();
  // SET then DEL of a brand-new key inside one burst: the DEL must count
  // the uncommitted SET (burst-local overlay), not consult stale state.
  client.QueueCommand({"SET", "fresh", "v"});
  client.QueueCommand({"DEL", "fresh"});
  client.QueueCommand({"DEL", "fresh"});
  ASSERT_TRUE(client.Flush().ok());
  RespReply reply;
  ASSERT_TRUE(client.ReadReply(&reply).ok());
  EXPECT_TRUE(reply.IsOk());
  ASSERT_TRUE(client.ReadReply(&reply).ok());
  EXPECT_EQ(reply.integer, 1);
  ASSERT_TRUE(client.ReadReply(&reply).ok());
  EXPECT_EQ(reply.integer, 0);  // already deleted within the burst
}

TEST(ServerLoopbackTest, GarbageCommandGetsErrorWithoutCorruptingConnection) {
  TestServer ts = StartTestServer();
  RespClient client = ts.NewClient();
  // Inline garbage is a well-formed (if meaningless) command: the server
  // must reply -ERR and keep the connection fully usable.
  client.QueueCommand({"DEFINITELYNOTACOMMAND", "x", "y"});
  ASSERT_TRUE(client.Flush().ok());
  RespReply reply;
  ASSERT_TRUE(client.ReadReply(&reply).ok());
  EXPECT_EQ(reply.type, RespReply::Type::kError);

  ASSERT_TRUE(client.Command({"PING"}, &reply).ok());
  EXPECT_EQ(reply.str, "PONG");

  ASSERT_TRUE(client.Command({"SET"}, &reply).ok());  // wrong arity
  EXPECT_EQ(reply.type, RespReply::Type::kError);
  ASSERT_TRUE(client.Command({"PING"}, &reply).ok());
  EXPECT_EQ(reply.str, "PONG");
}

TEST(ServerLoopbackTest, OversizedFrameIsRejectedAndCloses) {
  RespLimits limits;
  limits.max_bulk_bytes = 1024;
  TestServer ts = StartTestServer(/*sync_writes=*/false, limits);
  RespClient client = ts.NewClient();
  client.QueueCommand({"SET", "k", std::string(4096, 'x')});
  ASSERT_TRUE(client.Flush().ok());
  RespReply reply;
  ASSERT_TRUE(client.ReadReply(&reply).ok());
  EXPECT_EQ(reply.type, RespReply::Type::kError);
  // The stream is unrecoverable after a framing violation: the server
  // closes after flushing the error.
  EXPECT_FALSE(client.ReadReply(&reply).ok());
}

TEST(ServerLoopbackTest, InfoReportsServerAndStoreCounters) {
  TestServer ts = StartTestServer();
  RespClient client = ts.NewClient();
  RespReply reply;
  ASSERT_TRUE(client.Command({"SET", "k", "v"}, &reply).ok());
  ASSERT_TRUE(client.Command({"GET", "k"}, &reply).ok());
  ASSERT_TRUE(client.Command({"INFO"}, &reply).ok());
  ASSERT_EQ(reply.type, RespReply::Type::kBulk);
  for (const char* field :
       {"connections_accepted:", "commands_processed:", "pipelined_batches:", "bytes_in:",
        "bytes_out:", "puts:", "gets:", "batch_writes:", "store_name:FloDB"}) {
    EXPECT_NE(reply.str.find(field), std::string::npos) << "INFO missing " << field;
  }
}

TEST(ServerLoopbackTest, ConcurrentConnectionsDontInterfere) {
  TestServer ts = StartTestServer();
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ts, &failures, t] {
      RespClient client;
      if (!client.Connect("127.0.0.1", ts.server->port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      RespReply reply;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string key = "t" + std::to_string(t) + ":" + std::to_string(i);
        if (!client.Command({"SET", key, key}, &reply).ok() || !reply.IsOk()) {
          failures.fetch_add(1);
          return;
        }
        if (!client.Command({"GET", key}, &reply).ok() || reply.str != key) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  const ServerStats stats = ts.server->GetStats();
  EXPECT_GE(stats.connections_accepted, static_cast<uint64_t>(kThreads));
  EXPECT_GE(stats.commands_processed, static_cast<uint64_t>(kThreads * kOpsPerThread * 2));
}

// The drain guarantee (ISSUE acceptance): every write acknowledged before
// a SIGTERM-style Shutdown survives closing and reopening the store.
// sync_writes=true makes each ack fsync-durable; the clean close then
// guarantees recovery sees them all.
TEST(ServerLoopbackTest, DrainOnShutdownLosesNoAckedSyncWrites) {
  TestServer ts = StartTestServer(/*sync_writes=*/true);
  RespClient client = ts.NewClient();

  constexpr int kKeys = 100;
  for (int i = 0; i < kKeys; ++i) {
    client.QueueCommand({"SET", "durable:" + std::to_string(i), "v" + std::to_string(i)});
  }
  ASSERT_TRUE(client.Flush().ok());
  RespReply reply;
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(client.ReadReply(&reply).ok());
    ASSERT_TRUE(reply.IsOk());  // every one of these is now ACKED
  }

  // SIGTERM path: drain the server, then close the store cleanly.
  ts.server->Shutdown();
  ts.server.reset();
  FloDbOptions options = ts.store->options();
  ts.store.reset();

  // Reopen from the same (in-memory) filesystem: all acked writes present.
  std::unique_ptr<FloDB> reopened;
  ASSERT_TRUE(FloDB::Open(options, &reopened).ok());
  for (int i = 0; i < kKeys; ++i) {
    std::string value;
    ASSERT_TRUE(reopened->Get("durable:" + std::to_string(i), &value).ok()) << "key " << i;
    EXPECT_EQ(value, "v" + std::to_string(i));
  }
}

TEST(ServerLoopbackTest, ShutdownFlushesInFlightRepliesBeforeClosing) {
  TestServer ts = StartTestServer();
  RespClient client = ts.NewClient();
  RespReply reply;
  ASSERT_TRUE(client.Command({"SET", "k", "v"}, &reply).ok());

  ts.server->Shutdown();
  // Post-shutdown: the connection is closed (reads fail), and new
  // connections are refused.
  client.QueueCommand({"PING"});
  if (client.Flush().ok()) {
    EXPECT_FALSE(client.ReadReply(&reply).ok());
  }
  RespClient late;
  EXPECT_FALSE(late.Connect("127.0.0.1", ts.server->port()).ok());
}

TEST(ServerLoopbackTest, ShutdownIsIdempotent) {
  TestServer ts = StartTestServer();
  ts.server->Shutdown();
  ts.server->Shutdown();
  const ServerStats stats = ts.server->GetStats();
  EXPECT_EQ(stats.ConnectionsActive(), 0u);
}

}  // namespace
}  // namespace flodb
