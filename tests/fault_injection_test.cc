// Durability under injected storage faults (FaultInjectionEnv): the
// crash-recovery matrix of DESIGN.md §10. The invariant every test
// enforces: an acknowledged sync=true write is NEVER lost — across
// dropped unsynced data, torn WAL tails, failed WAL rotations, failed
// fsyncs and failed Memtable persists. sync=false writes may lose their
// unsynced tail (and one test shows they do).
//
// The second half is the CROSS-SHARD crash matrix: two-phase commit over
// ShardedKVStore must make every acknowledged straddling batch
// all-or-nothing across every kill point — between prepares and the
// commit marker, after the marker before the apply, and mid-prepare with
// a torn tail — while legacy mode (cross_shard_atomic = off) visibly
// tears, which is exactly the bug the mode exists to demonstrate.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "flodb/bench_util/workload.h"
#include "flodb/common/key_codec.h"
#include "flodb/core/flodb.h"
#include "flodb/core/sharded_store.h"
#include "flodb/disk/fault_env.h"
#include "flodb/disk/mem_env.h"

namespace flodb {
namespace {

using bench::SpreadKey;

std::string K(uint64_t i) { return EncodeKey(SpreadKey(i, 1 << 20)); }

FloDbOptions FaultOptions(Env* env) {
  FloDbOptions options;
  options.memory_budget_bytes = 512 << 10;
  options.enable_wal = true;
  options.disk.env = env;
  options.disk.path = "/db";
  options.disk.sstable_target_bytes = 32 << 10;
  return options;
}

int CountWalFiles(Env* env) {
  std::vector<std::string> children;
  env->GetChildren("/db", &children);
  int count = 0;
  for (const std::string& name : children) {
    if (name.rfind("wal-", 0) == 0) {
      ++count;
    }
  }
  return count;
}

// Simulates power loss: the destructor's courtesy fsync must not rescue
// unsynced data, so syncs are failed before teardown, then everything
// past the last REAL sync is dropped. Works for a plain FloDB and for a
// ShardedKVStore (whose teardown also tries to fsync the txn log).
template <typename Store>
void CrashAndDrop(std::unique_ptr<Store>* db, FaultInjectionEnv* fault) {
  fault->FailSyncs(true);
  db->reset();
  fault->FailSyncs(false);
  ASSERT_TRUE(fault->DropUnsyncedFileData().ok());
}

// Both sync_coalesce settings must provide the identical durability
// contract; the pipeline differs, the promise must not.
class FaultInjectionTest : public ::testing::TestWithParam<bool> {};

TEST_P(FaultInjectionTest, SyncedWriteSurvivesCrashUnsyncedTailMayNot) {
  MemEnv base;
  FaultInjectionEnv fault(&base);
  FloDbOptions options = FaultOptions(&fault);
  options.sync_coalesce = GetParam();
  {
    std::unique_ptr<FloDB> db;
    ASSERT_TRUE(FloDB::Open(options, &db).ok());
    WriteOptions synced;
    synced.sync = true;
    for (uint64_t i = 0; i < 50; ++i) {
      ASSERT_TRUE(db->Put(synced, Slice(K(i)), Slice("durable")).ok());
    }
    // Unsynced tail: acknowledged, but sync=false promises nothing.
    for (uint64_t i = 100; i < 150; ++i) {
      ASSERT_TRUE(db->Put(Slice(K(i)), Slice("volatile")).ok());
    }
    CrashAndDrop(&db, &fault);
  }
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok());
  std::string value;
  for (uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(db->Get(Slice(K(i)), &value).ok()) << "lost acknowledged sync write " << i;
    EXPECT_EQ(value, "durable");
  }
  // The unsynced tail was written after the last fsync, so the power cut
  // took it — exactly what sync=false allows.
  for (uint64_t i = 100; i < 150; ++i) {
    EXPECT_TRUE(db->Get(Slice(K(i)), &value).IsNotFound()) << i;
  }
}

TEST_P(FaultInjectionTest, TornBatchTailRecoversWholeEarlierPrefix) {
  MemEnv base;
  FaultInjectionEnv fault(&base);
  FloDbOptions options = FaultOptions(&fault);
  options.sync_coalesce = GetParam();
  {
    std::unique_ptr<FloDB> db;
    ASSERT_TRUE(FloDB::Open(options, &db).ok());
    WriteOptions synced;
    synced.sync = true;
    for (uint64_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(db->Put(synced, Slice(K(i)), Slice("pre")).ok());
    }
    // The next WAL append dies mid-record — half the batch record lands.
    fault.FailAppendAfter(0, /*torn=*/true);
    WriteBatch batch;
    for (uint64_t i = 1000; i < 1050; ++i) {
      batch.Put(Slice(K(i)), Slice("torn"));
    }
    Status s = db->Write(synced, &batch);
    EXPECT_FALSE(s.ok()) << "a torn append must not be acknowledged";
    fault.ClearFaults();
    db.reset();
  }
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok()) << "a torn tail is a normal crash, not corruption";
  std::string value;
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(db->Get(Slice(K(i)), &value).ok()) << i;
    EXPECT_EQ(value, "pre");
  }
  // The torn batch record must drop WHOLE: no entry of it replays.
  for (uint64_t i = 1000; i < 1050; ++i) {
    EXPECT_TRUE(db->Get(Slice(K(i)), &value).IsNotFound())
        << "entry " << i << " of a torn batch surfaced after recovery";
  }
}

TEST_P(FaultInjectionTest, FailedRotationFailsWritesThenHeals) {
  MemEnv base;
  FaultInjectionEnv fault(&base);
  FloDbOptions options = FaultOptions(&fault);
  options.sync_coalesce = GetParam();
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok());
  WriteOptions synced;
  synced.sync = true;
  for (uint64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(db->Put(synced, Slice(K(i)), Slice("pre")).ok());
  }

  // Force a persist cycle whose WAL rotation cannot open the next log.
  fault.FailNewWritableFiles(true, "wal-");
  ASSERT_TRUE(db->FlushAll().ok());

  // The WAL is broken: every write — sync or not — must now fail rather
  // than append to a closed (or absent) log file.
  EXPECT_FALSE(db->Put(synced, Slice(K(500)), Slice("rejected")).ok());
  EXPECT_FALSE(db->Put(Slice(K(501)), Slice("rejected")).ok());

  // Heal the device; the next drain cycle repairs the log and writes
  // resume. Poll briefly — repair is asynchronous.
  fault.FailNewWritableFiles(false);
  Status resumed;
  for (int attempt = 0; attempt < 2000; ++attempt) {
    resumed = db->Put(synced, Slice(K(600)), Slice("post-heal"));
    if (resumed.ok()) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(resumed.ok()) << "WAL never repaired: " << resumed.ToString();

  db.reset();
  ASSERT_TRUE(FloDB::Open(options, &db).ok());
  std::string value;
  for (uint64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(db->Get(Slice(K(i)), &value).ok()) << i;
  }
  ASSERT_TRUE(db->Get(Slice(K(600)), &value).ok());
  EXPECT_EQ(value, "post-heal");
  // Writes rejected while broken must not resurface.
  EXPECT_TRUE(db->Get(Slice(K(500)), &value).IsNotFound());
  EXPECT_TRUE(db->Get(Slice(K(501)), &value).IsNotFound());
}

TEST_P(FaultInjectionTest, FailedSyncBreaksWalThenHeals) {
  MemEnv base;
  FaultInjectionEnv fault(&base);
  FloDbOptions options = FaultOptions(&fault);
  options.sync_coalesce = GetParam();
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok());
  WriteOptions synced;
  synced.sync = true;
  ASSERT_TRUE(db->Put(synced, Slice(K(1)), Slice("pre")).ok());

  // While fsyncs fail, EVERY sync=true write must fail — whether it
  // attempted the fsync itself or failed fast on the broken log (the
  // repair path is backoff-throttled, so most retries do the latter). A
  // sync acknowledgement requires a successful fsync, full stop.
  fault.FailSyncs(true);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(db->Put(synced, Slice(K(100 + static_cast<uint64_t>(i))), Slice("unacked")).ok())
        << "a failed fsync must fail the sync writer (attempt " << i << ")";
  }
  EXPECT_GE(db->GetStats().wal_syncs, 1u) << "the first sync write must attempt the fsync";

  fault.FailSyncs(false);
  Status resumed;
  for (int attempt = 0; attempt < 2000; ++attempt) {
    resumed = db->Put(synced, Slice(K(4)), Slice("post-heal"));
    if (resumed.ok()) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(resumed.ok()) << resumed.ToString();

  // Crash: only acknowledged sync writes are promised to survive.
  CrashAndDrop(&db, &fault);
  ASSERT_TRUE(FloDB::Open(options, &db).ok());
  std::string value;
  ASSERT_TRUE(db->Get(Slice(K(1)), &value).ok());
  ASSERT_TRUE(db->Get(Slice(K(4)), &value).ok());
  EXPECT_EQ(value, "post-heal");
}

TEST_P(FaultInjectionTest, FailedPersistRetainsWalAndRetries) {
  MemEnv base;
  FaultInjectionEnv fault(&base);
  FloDbOptions options = FaultOptions(&fault);
  options.sync_coalesce = GetParam();
  options.memory_budget_bytes = 128 << 10;  // small: persists trigger fast
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok());

  // SSTable writes fail; the WAL keeps working.
  fault.FailNewWritableFiles(true, ".sst");
  WriteOptions synced;
  synced.sync = true;
  const std::string value_blob(256, 'p');
  for (uint64_t i = 0; i < 400; ++i) {
    ASSERT_TRUE(db->Put(synced, Slice(K(i)), Slice(value_blob)).ok()) << i;
  }
  // The overfilled Memtable forces persist attempts, which keep failing.
  uint64_t failures = 0;
  for (int attempt = 0; attempt < 2000; ++attempt) {
    failures = db->GetStats().persist_failures;
    if (failures > 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GT(failures, 0u) << "persist never attempted";
  // Satellite fix #2: the retired log must outlive the failed persist.
  EXPECT_GE(CountWalFiles(&fault), 2)
      << "failed persist deleted the WAL holding the unpersisted data";

  // Heal; the retry loop lands the run and FlushAll converges.
  fault.ClearFaults();
  ASSERT_TRUE(db->FlushAll().ok());
  EXPECT_GT(db->GetStats().disk.flushes, 0u);

  db.reset();
  ASSERT_TRUE(FloDB::Open(options, &db).ok());
  std::string value;
  for (uint64_t i = 0; i < 400; i += 29) {
    ASSERT_TRUE(db->Get(Slice(K(i)), &value).ok()) << i;
    EXPECT_EQ(value, value_blob);
  }
}

TEST_P(FaultInjectionTest, CrashDuringFailedPersistRecoversFromRetainedWal) {
  MemEnv base;
  FaultInjectionEnv fault(&base);
  FloDbOptions options = FaultOptions(&fault);
  options.sync_coalesce = GetParam();
  options.memory_budget_bytes = 128 << 10;
  {
    std::unique_ptr<FloDB> db;
    ASSERT_TRUE(FloDB::Open(options, &db).ok());
    fault.FailNewWritableFiles(true, ".sst");
    WriteOptions synced;
    synced.sync = true;
    const std::string value_blob(256, 'q');
    for (uint64_t i = 0; i < 400; ++i) {
      ASSERT_TRUE(db->Put(synced, Slice(K(i)), Slice(value_blob)).ok()) << i;
    }
    uint64_t failures = 0;
    for (int attempt = 0; attempt < 2000; ++attempt) {
      failures = db->GetStats().persist_failures;
      if (failures > 0) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_GT(failures, 0u);
    // Crash while the disk is still refusing runs.
    CrashAndDrop(&db, &fault);
  }
  // The disk heals; recovery must rebuild every acknowledged sync write
  // from the retained logs.
  fault.ClearFaults();
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok());
  std::string value;
  for (uint64_t i = 0; i < 400; ++i) {
    ASSERT_TRUE(db->Get(Slice(K(i)), &value).ok())
        << "acknowledged sync write " << i << " lost across failed-persist crash";
  }
}

TEST_P(FaultInjectionTest, MembufferResidentAckedWritesSurviveLoadDrivenPersist) {
  // Regression for the Membuffer escape hatch: an acked sync write's
  // entry can still be Membuffer-resident when a LOAD-DRIVEN persist
  // cycle runs (FlushAll drains the buffer first, so only natural cycles
  // hit this). The cycle retires and eventually deletes the write's WAL;
  // unless the persist pre-drains the Membuffer, the only durable copy
  // of the entry dies with the log. Crash right after the last ack —
  // while late entries are still draining — and demand everything back.
  MemEnv base;
  FaultInjectionEnv fault(&base);
  FloDbOptions options = FaultOptions(&fault);
  options.sync_coalesce = GetParam();
  options.memory_budget_bytes = 128 << 10;  // several natural persist cycles
  {
    std::unique_ptr<FloDB> db;
    ASSERT_TRUE(FloDB::Open(options, &db).ok());
    WriteOptions synced;
    synced.sync = true;
    const std::string value_blob(256, 'm');
    for (uint64_t i = 0; i < 1000; ++i) {
      ASSERT_TRUE(db->Put(synced, Slice(K(i)), Slice(value_blob)).ok()) << i;
    }
    uint64_t flushes = 0;
    for (int attempt = 0; attempt < 2000 && flushes == 0; ++attempt) {
      flushes = db->GetStats().disk.flushes;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_GT(flushes, 0u) << "test needs load-driven persist cycles";
    CrashAndDrop(&db, &fault);
  }
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok());
  std::string value;
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(db->Get(Slice(K(i)), &value).ok())
        << "acked sync write " << i << " lost to a load-driven persist's WAL deletion";
  }
}

TEST_P(FaultInjectionTest, ConcurrentSyncWritersAllSurviveCrash) {
  MemEnv base;
  FaultInjectionEnv fault(&base);
  fault.SetSyncDelayMicros(100);  // realistic fsync cost: groups form
  FloDbOptions options = FaultOptions(&fault);
  options.sync_coalesce = GetParam();
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 40;
  {
    std::unique_ptr<FloDB> db;
    ASSERT_TRUE(FloDB::Open(options, &db).ok());
    std::vector<std::thread> threads;
    std::atomic<bool> failed{false};
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        WriteOptions synced;
        synced.sync = true;
        for (uint64_t i = 0; i < kPerThread; ++i) {
          const uint64_t key = static_cast<uint64_t>(t) * 1000 + i;
          if (!db->Put(synced, Slice(K(key)), Slice("acked")).ok()) {
            failed.store(true);
            return;
          }
        }
      });
    }
    for (auto& th : threads) {
      th.join();
    }
    ASSERT_FALSE(failed.load());
    const StoreStats stats = db->GetStats();
    EXPECT_EQ(stats.group_commit_writers, kThreads * kPerThread);
    EXPECT_GE(stats.group_commit_writers, stats.group_commit_groups);
    CrashAndDrop(&db, &fault);
  }
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok());
  std::string value;
  for (int t = 0; t < kThreads; ++t) {
    for (uint64_t i = 0; i < kPerThread; ++i) {
      const uint64_t key = static_cast<uint64_t>(t) * 1000 + i;
      ASSERT_TRUE(db->Get(Slice(K(key)), &value).ok())
          << "acked group-commit write lost: thread " << t << " op " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(CoalesceOnOff, FaultInjectionTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Coalesced" : "PerWriterFsync";
                         });

// ---------------------------------------------------------------------------
// Cross-shard crash matrix (DESIGN.md §8): two-phase commit vs legacy
// ---------------------------------------------------------------------------

// With 4 shards the router takes the top 2 bits of the first 8 key
// bytes, so quarter q of the keyspace is exactly shard q.
std::string QK(int shard, uint64_t i) {
  return EncodeKey(static_cast<uint64_t>(shard) * (uint64_t{1} << 62) + i);
}

FloDbOptions ShardedFaultOptions(Env* env, bool atomic) {
  FloDbOptions options;
  options.memory_budget_bytes = 2u << 20;
  options.enable_wal = true;
  options.shards = 4;
  options.cross_shard_atomic = atomic;
  options.disk.env = env;
  options.disk.path = "/db";
  options.disk.sstable_target_bytes = 32 << 10;
  return options;
}

// Parameter: cross_shard_atomic. Tests that hold in BOTH modes are
// parameterized; the discriminating tests assert opposite outcomes per
// mode, because legacy mode tearing is the documented (and now surfaced)
// behavior the knob preserves.
class CrossShardFaultTest : public ::testing::TestWithParam<bool> {};

// Kill point "after the marker, before/during the apply" collapses to
// "crash right after the ack" (the ack follows the marker): every
// acknowledged sync batch must recover WHOLE from prepares + markers
// alone, since nothing applied has persisted yet.
TEST_P(CrossShardFaultTest, AckedSyncBatchesSurviveCrashWhole) {
  MemEnv base;
  FaultInjectionEnv fault(&base);
  FloDbOptions options = ShardedFaultOptions(&fault, GetParam());
  constexpr uint64_t kBatches = 25;
  {
    std::unique_ptr<ShardedKVStore> store;
    ASSERT_TRUE(ShardedKVStore::Open(options, &store).ok());
    WriteOptions synced;
    synced.sync = true;
    for (uint64_t b = 0; b < kBatches; ++b) {
      WriteBatch batch;
      for (int q = 0; q < 4; ++q) {
        batch.Put(Slice(QK(q, b)), Slice("txn-" + std::to_string(b)));
      }
      ASSERT_TRUE(store->Write(synced, &batch).ok()) << b;
    }
    const StoreStats stats = store->GetStats();
    if (GetParam()) {
      EXPECT_EQ(stats.txn_commits, kBatches);
      EXPECT_EQ(stats.txn_prepares, kBatches * 4) << "one prepare per touched shard";
      EXPECT_EQ(stats.txn_aborts, 0u);
    } else {
      EXPECT_EQ(stats.txn_commits, 0u) << "legacy mode must not run 2PC";
    }
    CrashAndDrop(&store, &fault);
  }
  std::unique_ptr<ShardedKVStore> store;
  ASSERT_TRUE(ShardedKVStore::Open(options, &store).ok());
  std::string value;
  for (uint64_t b = 0; b < kBatches; ++b) {
    for (int q = 0; q < 4; ++q) {
      ASSERT_TRUE(store->Get(Slice(QK(q, b)), &value).ok())
          << "acked cross-shard batch " << b << " lost its shard-" << q << " slice";
      EXPECT_EQ(value, "txn-" + std::to_string(b));
    }
  }
  EXPECT_EQ(store->GetStats().orphaned_prepares, 0u);
}

// The discriminator: a sync=false straddling batch, then one shard's WAL
// gets fsynced by an unrelated sync write, then power loss. Legacy mode
// recovers the synced shard's slice and loses the other — a torn batch.
// Atomic mode's marker never became durable, so BOTH durable prepares
// are orphans and the batch vanishes whole.
TEST_P(CrossShardFaultTest, CrashWithOneShardSyncedTearsOnlyInLegacyMode) {
  MemEnv base;
  FaultInjectionEnv fault(&base);
  FloDbOptions options = ShardedFaultOptions(&fault, GetParam());
  {
    std::unique_ptr<ShardedKVStore> store;
    ASSERT_TRUE(ShardedKVStore::Open(options, &store).ok());
    WriteBatch batch;
    batch.Put(Slice(QK(0, 7)), Slice("torn?"));
    batch.Put(Slice(QK(3, 7)), Slice("torn?"));
    ASSERT_TRUE(store->Write(WriteOptions(), &batch).ok());  // sync=false
    // An unrelated sync write to shard 0 fsyncs its WAL — which covers
    // the earlier batch record (legacy) or prepare (atomic) sitting in it.
    WriteOptions synced;
    synced.sync = true;
    ASSERT_TRUE(store->Put(synced, Slice(QK(0, 999)), Slice("anchor")).ok());
    CrashAndDrop(&store, &fault);
  }
  std::unique_ptr<ShardedKVStore> store;
  ASSERT_TRUE(ShardedKVStore::Open(options, &store).ok());
  std::string value;
  ASSERT_TRUE(store->Get(Slice(QK(0, 999)), &value).ok()) << "acked sync write lost";
  const Status shard0 = store->Get(Slice(QK(0, 7)), &value);
  const Status shard3 = store->Get(Slice(QK(3, 7)), &value);
  EXPECT_TRUE(shard3.IsNotFound()) << "shard 3's WAL was never synced";
  if (GetParam()) {
    EXPECT_TRUE(shard0.IsNotFound()) << "a prepare without a marker must not replay";
    EXPECT_GE(store->GetStats().orphaned_prepares, 1u);
  } else {
    EXPECT_TRUE(shard0.ok()) << "legacy mode replays the synced slice — the torn batch";
  }
}

// Mid-prepare torn tail: the prepare record for the LAST shard dies half
// written. Atomic mode aborts with nothing visible (now or after a
// crash); legacy mode commits the earlier shards and says so.
TEST_P(CrossShardFaultTest, TornShardWalTailDuringStraddlingWrite) {
  MemEnv base;
  FaultInjectionEnv fault(&base);
  FloDbOptions options = ShardedFaultOptions(&fault, GetParam());
  {
    std::unique_ptr<ShardedKVStore> store;
    ASSERT_TRUE(ShardedKVStore::Open(options, &store).ok());
    fault.FailAppendAfter(0, /*torn=*/true, "shard-003");
    WriteOptions synced;
    synced.sync = true;
    WriteBatch batch;
    for (int q = 0; q < 4; ++q) {
      batch.Put(Slice(QK(q, 1)), Slice("v"));
    }
    Status s = store->Write(synced, &batch);
    ASSERT_FALSE(s.ok());
    std::string value;
    if (GetParam()) {
      EXPECT_NE(s.ToString().find("aborted, nothing committed"), std::string::npos)
          << s.ToString();
      EXPECT_EQ(store->GetStats().txn_aborts, 1u);
      for (int q = 0; q < 4; ++q) {
        EXPECT_TRUE(store->Get(Slice(QK(q, 1)), &value).IsNotFound())
            << "aborted transaction leaked shard " << q;
      }
    } else {
      EXPECT_NE(s.ToString().find("partially committed"), std::string::npos) << s.ToString();
      EXPECT_NE(s.ToString().find("shards 0,1,2"), std::string::npos)
          << "the status must name the committed shards: " << s.ToString();
      EXPECT_EQ(store->GetStats().partial_batch_writes, 1u);
      for (int q = 0; q < 3; ++q) {
        EXPECT_TRUE(store->Get(Slice(QK(q, 1)), &value).ok()) << q;
      }
      EXPECT_TRUE(store->Get(Slice(QK(3, 1)), &value).IsNotFound());
    }
    fault.ClearFaults();
    CrashAndDrop(&store, &fault);
  }
  // The crash outcome matches the runtime report: all-or-nothing for
  // atomic (the three durable prepares are discarded as orphans), the
  // same partial subset for legacy (those commits were sync'd).
  std::unique_ptr<ShardedKVStore> store;
  ASSERT_TRUE(ShardedKVStore::Open(options, &store).ok());
  std::string value;
  if (GetParam()) {
    for (int q = 0; q < 4; ++q) {
      EXPECT_TRUE(store->Get(Slice(QK(q, 1)), &value).IsNotFound())
          << "orphaned prepare for shard " << q << " replayed without a marker";
    }
    EXPECT_EQ(store->GetStats().orphaned_prepares, 3u);
  } else {
    for (int q = 0; q < 3; ++q) {
      EXPECT_TRUE(store->Get(Slice(QK(q, 1)), &value).ok()) << q;
    }
    EXPECT_TRUE(store->Get(Slice(QK(3, 1)), &value).IsNotFound());
  }
}

// Kill point "between the prepares and the marker": the marker append
// itself fails. Every prepare is durable, the ack never happens, and
// recovery must discard all four prepares.
TEST(CrossShardTxnLogFaultTest, MarkerFailureAbortsAndOrphansEveryPrepare) {
  MemEnv base;
  FaultInjectionEnv fault(&base);
  FloDbOptions options = ShardedFaultOptions(&fault, /*atomic=*/true);
  {
    std::unique_ptr<ShardedKVStore> store;
    ASSERT_TRUE(ShardedKVStore::Open(options, &store).ok());
    fault.FailAppendAfter(0, /*torn=*/false, "txn.log");
    WriteOptions synced;
    synced.sync = true;
    WriteBatch batch;
    for (int q = 0; q < 4; ++q) {
      batch.Put(Slice(QK(q, 2)), Slice("unacked"));
    }
    Status s = store->Write(synced, &batch);
    ASSERT_FALSE(s.ok());
    EXPECT_NE(s.ToString().find("aborted, nothing committed"), std::string::npos) << s.ToString();
    EXPECT_EQ(store->GetStats().txn_aborts, 1u);
    std::string value;
    for (int q = 0; q < 4; ++q) {
      EXPECT_TRUE(store->Get(Slice(QK(q, 2)), &value).IsNotFound()) << q;
    }
    fault.ClearFaults();
    // A broken marker log latches: atomic writes keep failing until the
    // next Open rebuilds it — but the single-shard fast path (no marker)
    // must keep working.
    WriteBatch retry;
    retry.Put(Slice(QK(0, 3)), Slice("v"));
    retry.Put(Slice(QK(3, 3)), Slice("v"));
    EXPECT_FALSE(store->Write(synced, &retry).ok()) << "marker log must latch broken";
    EXPECT_TRUE(store->Put(synced, Slice(QK(1, 4)), Slice("single")).ok());
    CrashAndDrop(&store, &fault);
  }
  std::unique_ptr<ShardedKVStore> store;
  ASSERT_TRUE(ShardedKVStore::Open(options, &store).ok());
  std::string value;
  for (int q = 0; q < 4; ++q) {
    EXPECT_TRUE(store->Get(Slice(QK(q, 2)), &value).IsNotFound())
        << "unacked transaction leaked shard " << q << " across recovery";
  }
  ASSERT_TRUE(store->Get(Slice(QK(1, 4)), &value).ok());
  EXPECT_EQ(value, "single");
  EXPECT_GE(store->GetStats().orphaned_prepares, 4u);
  // Recovery seeds the id counter past every orphaned prepare's id, and
  // the rebuilt marker log accepts transactions again.
  EXPECT_GT(store->NextTxnId(), 1u);
  WriteOptions synced;
  synced.sync = true;
  WriteBatch healed;
  healed.Put(Slice(QK(0, 5)), Slice("healed"));
  healed.Put(Slice(QK(3, 5)), Slice("healed"));
  ASSERT_TRUE(store->Write(synced, &healed).ok());
  EXPECT_EQ(store->GetStats().txn_commits, 1u);
}

INSTANTIATE_TEST_SUITE_P(AtomicOnOff, CrossShardFaultTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Atomic" : "Legacy";
                         });

}  // namespace
}  // namespace flodb
