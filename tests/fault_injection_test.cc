// Durability under injected storage faults (FaultInjectionEnv): the
// crash-recovery matrix of DESIGN.md §10. The invariant every test
// enforces: an acknowledged sync=true write is NEVER lost — across
// dropped unsynced data, torn WAL tails, failed WAL rotations, failed
// fsyncs and failed Memtable persists. sync=false writes may lose their
// unsynced tail (and one test shows they do).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "flodb/bench_util/workload.h"
#include "flodb/common/key_codec.h"
#include "flodb/core/flodb.h"
#include "flodb/disk/fault_env.h"
#include "flodb/disk/mem_env.h"

namespace flodb {
namespace {

using bench::SpreadKey;

std::string K(uint64_t i) { return EncodeKey(SpreadKey(i, 1 << 20)); }

FloDbOptions FaultOptions(Env* env) {
  FloDbOptions options;
  options.memory_budget_bytes = 512 << 10;
  options.enable_wal = true;
  options.disk.env = env;
  options.disk.path = "/db";
  options.disk.sstable_target_bytes = 32 << 10;
  return options;
}

int CountWalFiles(Env* env) {
  std::vector<std::string> children;
  env->GetChildren("/db", &children);
  int count = 0;
  for (const std::string& name : children) {
    if (name.rfind("wal-", 0) == 0) {
      ++count;
    }
  }
  return count;
}

// Simulates power loss: the destructor's courtesy fsync must not rescue
// unsynced data, so syncs are failed before teardown, then everything
// past the last REAL sync is dropped.
void CrashAndDrop(std::unique_ptr<FloDB>* db, FaultInjectionEnv* fault) {
  fault->FailSyncs(true);
  db->reset();
  fault->FailSyncs(false);
  ASSERT_TRUE(fault->DropUnsyncedFileData().ok());
}

// Both sync_coalesce settings must provide the identical durability
// contract; the pipeline differs, the promise must not.
class FaultInjectionTest : public ::testing::TestWithParam<bool> {};

TEST_P(FaultInjectionTest, SyncedWriteSurvivesCrashUnsyncedTailMayNot) {
  MemEnv base;
  FaultInjectionEnv fault(&base);
  FloDbOptions options = FaultOptions(&fault);
  options.sync_coalesce = GetParam();
  {
    std::unique_ptr<FloDB> db;
    ASSERT_TRUE(FloDB::Open(options, &db).ok());
    WriteOptions synced;
    synced.sync = true;
    for (uint64_t i = 0; i < 50; ++i) {
      ASSERT_TRUE(db->Put(synced, Slice(K(i)), Slice("durable")).ok());
    }
    // Unsynced tail: acknowledged, but sync=false promises nothing.
    for (uint64_t i = 100; i < 150; ++i) {
      ASSERT_TRUE(db->Put(Slice(K(i)), Slice("volatile")).ok());
    }
    CrashAndDrop(&db, &fault);
  }
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok());
  std::string value;
  for (uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(db->Get(Slice(K(i)), &value).ok()) << "lost acknowledged sync write " << i;
    EXPECT_EQ(value, "durable");
  }
  // The unsynced tail was written after the last fsync, so the power cut
  // took it — exactly what sync=false allows.
  for (uint64_t i = 100; i < 150; ++i) {
    EXPECT_TRUE(db->Get(Slice(K(i)), &value).IsNotFound()) << i;
  }
}

TEST_P(FaultInjectionTest, TornBatchTailRecoversWholeEarlierPrefix) {
  MemEnv base;
  FaultInjectionEnv fault(&base);
  FloDbOptions options = FaultOptions(&fault);
  options.sync_coalesce = GetParam();
  {
    std::unique_ptr<FloDB> db;
    ASSERT_TRUE(FloDB::Open(options, &db).ok());
    WriteOptions synced;
    synced.sync = true;
    for (uint64_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(db->Put(synced, Slice(K(i)), Slice("pre")).ok());
    }
    // The next WAL append dies mid-record — half the batch record lands.
    fault.FailAppendAfter(0, /*torn=*/true);
    WriteBatch batch;
    for (uint64_t i = 1000; i < 1050; ++i) {
      batch.Put(Slice(K(i)), Slice("torn"));
    }
    Status s = db->Write(synced, &batch);
    EXPECT_FALSE(s.ok()) << "a torn append must not be acknowledged";
    fault.ClearFaults();
    db.reset();
  }
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok()) << "a torn tail is a normal crash, not corruption";
  std::string value;
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(db->Get(Slice(K(i)), &value).ok()) << i;
    EXPECT_EQ(value, "pre");
  }
  // The torn batch record must drop WHOLE: no entry of it replays.
  for (uint64_t i = 1000; i < 1050; ++i) {
    EXPECT_TRUE(db->Get(Slice(K(i)), &value).IsNotFound())
        << "entry " << i << " of a torn batch surfaced after recovery";
  }
}

TEST_P(FaultInjectionTest, FailedRotationFailsWritesThenHeals) {
  MemEnv base;
  FaultInjectionEnv fault(&base);
  FloDbOptions options = FaultOptions(&fault);
  options.sync_coalesce = GetParam();
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok());
  WriteOptions synced;
  synced.sync = true;
  for (uint64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(db->Put(synced, Slice(K(i)), Slice("pre")).ok());
  }

  // Force a persist cycle whose WAL rotation cannot open the next log.
  fault.FailNewWritableFiles(true, "wal-");
  ASSERT_TRUE(db->FlushAll().ok());

  // The WAL is broken: every write — sync or not — must now fail rather
  // than append to a closed (or absent) log file.
  EXPECT_FALSE(db->Put(synced, Slice(K(500)), Slice("rejected")).ok());
  EXPECT_FALSE(db->Put(Slice(K(501)), Slice("rejected")).ok());

  // Heal the device; the next drain cycle repairs the log and writes
  // resume. Poll briefly — repair is asynchronous.
  fault.FailNewWritableFiles(false);
  Status resumed;
  for (int attempt = 0; attempt < 2000; ++attempt) {
    resumed = db->Put(synced, Slice(K(600)), Slice("post-heal"));
    if (resumed.ok()) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(resumed.ok()) << "WAL never repaired: " << resumed.ToString();

  db.reset();
  ASSERT_TRUE(FloDB::Open(options, &db).ok());
  std::string value;
  for (uint64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(db->Get(Slice(K(i)), &value).ok()) << i;
  }
  ASSERT_TRUE(db->Get(Slice(K(600)), &value).ok());
  EXPECT_EQ(value, "post-heal");
  // Writes rejected while broken must not resurface.
  EXPECT_TRUE(db->Get(Slice(K(500)), &value).IsNotFound());
  EXPECT_TRUE(db->Get(Slice(K(501)), &value).IsNotFound());
}

TEST_P(FaultInjectionTest, FailedSyncBreaksWalThenHeals) {
  MemEnv base;
  FaultInjectionEnv fault(&base);
  FloDbOptions options = FaultOptions(&fault);
  options.sync_coalesce = GetParam();
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok());
  WriteOptions synced;
  synced.sync = true;
  ASSERT_TRUE(db->Put(synced, Slice(K(1)), Slice("pre")).ok());

  // While fsyncs fail, EVERY sync=true write must fail — whether it
  // attempted the fsync itself or failed fast on the broken log (the
  // repair path is backoff-throttled, so most retries do the latter). A
  // sync acknowledgement requires a successful fsync, full stop.
  fault.FailSyncs(true);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(db->Put(synced, Slice(K(100 + static_cast<uint64_t>(i))), Slice("unacked")).ok())
        << "a failed fsync must fail the sync writer (attempt " << i << ")";
  }
  EXPECT_GE(db->GetStats().wal_syncs, 1u) << "the first sync write must attempt the fsync";

  fault.FailSyncs(false);
  Status resumed;
  for (int attempt = 0; attempt < 2000; ++attempt) {
    resumed = db->Put(synced, Slice(K(4)), Slice("post-heal"));
    if (resumed.ok()) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(resumed.ok()) << resumed.ToString();

  // Crash: only acknowledged sync writes are promised to survive.
  CrashAndDrop(&db, &fault);
  ASSERT_TRUE(FloDB::Open(options, &db).ok());
  std::string value;
  ASSERT_TRUE(db->Get(Slice(K(1)), &value).ok());
  ASSERT_TRUE(db->Get(Slice(K(4)), &value).ok());
  EXPECT_EQ(value, "post-heal");
}

TEST_P(FaultInjectionTest, FailedPersistRetainsWalAndRetries) {
  MemEnv base;
  FaultInjectionEnv fault(&base);
  FloDbOptions options = FaultOptions(&fault);
  options.sync_coalesce = GetParam();
  options.memory_budget_bytes = 128 << 10;  // small: persists trigger fast
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok());

  // SSTable writes fail; the WAL keeps working.
  fault.FailNewWritableFiles(true, ".sst");
  WriteOptions synced;
  synced.sync = true;
  const std::string value_blob(256, 'p');
  for (uint64_t i = 0; i < 400; ++i) {
    ASSERT_TRUE(db->Put(synced, Slice(K(i)), Slice(value_blob)).ok()) << i;
  }
  // The overfilled Memtable forces persist attempts, which keep failing.
  uint64_t failures = 0;
  for (int attempt = 0; attempt < 2000; ++attempt) {
    failures = db->GetStats().persist_failures;
    if (failures > 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GT(failures, 0u) << "persist never attempted";
  // Satellite fix #2: the retired log must outlive the failed persist.
  EXPECT_GE(CountWalFiles(&fault), 2)
      << "failed persist deleted the WAL holding the unpersisted data";

  // Heal; the retry loop lands the run and FlushAll converges.
  fault.ClearFaults();
  ASSERT_TRUE(db->FlushAll().ok());
  EXPECT_GT(db->GetStats().disk.flushes, 0u);

  db.reset();
  ASSERT_TRUE(FloDB::Open(options, &db).ok());
  std::string value;
  for (uint64_t i = 0; i < 400; i += 29) {
    ASSERT_TRUE(db->Get(Slice(K(i)), &value).ok()) << i;
    EXPECT_EQ(value, value_blob);
  }
}

TEST_P(FaultInjectionTest, CrashDuringFailedPersistRecoversFromRetainedWal) {
  MemEnv base;
  FaultInjectionEnv fault(&base);
  FloDbOptions options = FaultOptions(&fault);
  options.sync_coalesce = GetParam();
  options.memory_budget_bytes = 128 << 10;
  {
    std::unique_ptr<FloDB> db;
    ASSERT_TRUE(FloDB::Open(options, &db).ok());
    fault.FailNewWritableFiles(true, ".sst");
    WriteOptions synced;
    synced.sync = true;
    const std::string value_blob(256, 'q');
    for (uint64_t i = 0; i < 400; ++i) {
      ASSERT_TRUE(db->Put(synced, Slice(K(i)), Slice(value_blob)).ok()) << i;
    }
    uint64_t failures = 0;
    for (int attempt = 0; attempt < 2000; ++attempt) {
      failures = db->GetStats().persist_failures;
      if (failures > 0) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_GT(failures, 0u);
    // Crash while the disk is still refusing runs.
    CrashAndDrop(&db, &fault);
  }
  // The disk heals; recovery must rebuild every acknowledged sync write
  // from the retained logs.
  fault.ClearFaults();
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok());
  std::string value;
  for (uint64_t i = 0; i < 400; ++i) {
    ASSERT_TRUE(db->Get(Slice(K(i)), &value).ok())
        << "acknowledged sync write " << i << " lost across failed-persist crash";
  }
}

TEST_P(FaultInjectionTest, MembufferResidentAckedWritesSurviveLoadDrivenPersist) {
  // Regression for the Membuffer escape hatch: an acked sync write's
  // entry can still be Membuffer-resident when a LOAD-DRIVEN persist
  // cycle runs (FlushAll drains the buffer first, so only natural cycles
  // hit this). The cycle retires and eventually deletes the write's WAL;
  // unless the persist pre-drains the Membuffer, the only durable copy
  // of the entry dies with the log. Crash right after the last ack —
  // while late entries are still draining — and demand everything back.
  MemEnv base;
  FaultInjectionEnv fault(&base);
  FloDbOptions options = FaultOptions(&fault);
  options.sync_coalesce = GetParam();
  options.memory_budget_bytes = 128 << 10;  // several natural persist cycles
  {
    std::unique_ptr<FloDB> db;
    ASSERT_TRUE(FloDB::Open(options, &db).ok());
    WriteOptions synced;
    synced.sync = true;
    const std::string value_blob(256, 'm');
    for (uint64_t i = 0; i < 1000; ++i) {
      ASSERT_TRUE(db->Put(synced, Slice(K(i)), Slice(value_blob)).ok()) << i;
    }
    uint64_t flushes = 0;
    for (int attempt = 0; attempt < 2000 && flushes == 0; ++attempt) {
      flushes = db->GetStats().disk.flushes;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_GT(flushes, 0u) << "test needs load-driven persist cycles";
    CrashAndDrop(&db, &fault);
  }
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok());
  std::string value;
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(db->Get(Slice(K(i)), &value).ok())
        << "acked sync write " << i << " lost to a load-driven persist's WAL deletion";
  }
}

TEST_P(FaultInjectionTest, ConcurrentSyncWritersAllSurviveCrash) {
  MemEnv base;
  FaultInjectionEnv fault(&base);
  fault.SetSyncDelayMicros(100);  // realistic fsync cost: groups form
  FloDbOptions options = FaultOptions(&fault);
  options.sync_coalesce = GetParam();
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 40;
  {
    std::unique_ptr<FloDB> db;
    ASSERT_TRUE(FloDB::Open(options, &db).ok());
    std::vector<std::thread> threads;
    std::atomic<bool> failed{false};
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        WriteOptions synced;
        synced.sync = true;
        for (uint64_t i = 0; i < kPerThread; ++i) {
          const uint64_t key = static_cast<uint64_t>(t) * 1000 + i;
          if (!db->Put(synced, Slice(K(key)), Slice("acked")).ok()) {
            failed.store(true);
            return;
          }
        }
      });
    }
    for (auto& th : threads) {
      th.join();
    }
    ASSERT_FALSE(failed.load());
    const StoreStats stats = db->GetStats();
    EXPECT_EQ(stats.group_commit_writers, kThreads * kPerThread);
    EXPECT_GE(stats.group_commit_writers, stats.group_commit_groups);
    CrashAndDrop(&db, &fault);
  }
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok());
  std::string value;
  for (int t = 0; t < kThreads; ++t) {
    for (uint64_t i = 0; i < kPerThread; ++i) {
      const uint64_t key = static_cast<uint64_t>(t) * 1000 + i;
      ASSERT_TRUE(db->Get(Slice(K(key)), &value).ok())
          << "acked group-commit write lost: thread " << t << " op " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(CoalesceOnOff, FaultInjectionTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Coalesced" : "PerWriterFsync";
                         });

}  // namespace
}  // namespace flodb
