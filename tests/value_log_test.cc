// Value separation (WiscKey-style, DESIGN.md §13): pointer codec, vlog
// record framing + torn-tail CRC detection, separation through every
// tier of FloDB, the threshold=0 legacy-format guarantee, the
// FaultInjectionEnv crash matrix for the vlog (acked sync writes
// survive, unsynced writes die cleanly, dangling WAL pointers are
// dropped at replay, GC + crash leaves no orphans), and garbage-ratio
// vlog GC end to end via CompactRange + CompactValueLogGarbage.

#include "flodb/disk/value_log.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "flodb/common/key_codec.h"
#include "flodb/core/flodb.h"
#include "flodb/core/memtable_iterator.h"
#include "flodb/core/sharded_store.h"
#include "flodb/disk/disk_component.h"
#include "flodb/disk/fault_env.h"
#include "flodb/disk/mem_env.h"
#include "flodb/mem/memtable.h"

namespace flodb {
namespace {

std::string K(uint64_t i) { return EncodeKey(i); }

// Big enough to separate under the test threshold (128), tagged by
// generation so overwrites are distinguishable.
std::string BigValue(uint64_t i, int generation = 0) {
  return "g" + std::to_string(generation) + "-k" + std::to_string(i) + "-" +
         std::string(400, 'v');
}

FloDbOptions VlogOptions(Env* env) {
  FloDbOptions options;
  options.memory_budget_bytes = 512 << 10;
  options.disk.env = env;
  options.disk.path = "/db";
  options.disk.sstable_target_bytes = 32 << 10;
  options.disk.value_separation_threshold = 128;
  options.disk.vlog_file_target_bytes = 8 << 10;
  options.disk.vlog_gc_garbage_ratio = 0.3;
  return options;
}

int CountVlogFiles(Env* env, const std::string& dir = "/db") {
  std::vector<std::string> children;
  env->GetChildren(dir, &children);
  int count = 0;
  for (const std::string& name : children) {
    if (name.size() > 5 && name.rfind(".vlog") == name.size() - 5) {
      ++count;
    }
  }
  return count;
}

// Power loss: fail the teardown's courtesy fsyncs, then drop everything
// past the last real sync (same idiom as fault_injection_test.cc).
void CrashAndDrop(std::unique_ptr<FloDB>* db, FaultInjectionEnv* fault) {
  fault->FailSyncs(true);
  db->reset();
  fault->FailSyncs(false);
  ASSERT_TRUE(fault->DropUnsyncedFileData().ok());
}

// ---------------------------------------------------------------------------
// Pointer codec and raw record framing
// ---------------------------------------------------------------------------

TEST(ValuePointerCodecTest, RoundtripAndMalformedRejected) {
  ValuePointer ptr;
  ptr.file_number = 42;
  ptr.offset = 123456789;
  ptr.length = 4096;
  std::string encoded;
  EncodeValuePointer(&encoded, ptr);

  ValuePointer decoded;
  ASSERT_TRUE(DecodeValuePointer(Slice(encoded), &decoded));
  EXPECT_EQ(decoded.file_number, ptr.file_number);
  EXPECT_EQ(decoded.offset, ptr.offset);
  EXPECT_EQ(decoded.length, ptr.length);

  // Truncation and trailing bytes both fail the decode.
  EXPECT_FALSE(DecodeValuePointer(Slice(encoded.data(), encoded.size() - 1), &decoded));
  std::string padded = encoded + "x";
  EXPECT_FALSE(DecodeValuePointer(Slice(padded), &decoded));
  EXPECT_FALSE(DecodeValuePointer(Slice(), &decoded));
}

class ValueLogFileTest : public ::testing::Test {
 protected:
  void SetUp() override { env_.CreateDir("/db"); }

  std::unique_ptr<ValueLog> NewLog(uint64_t target_bytes) {
    return std::make_unique<ValueLog>(
        &env_, "/db", target_bytes, [this] { return next_number_++; },
        [](uint64_t) { return Status::OK(); });
  }

  std::string ReadWholeFile(const std::string& fname) {
    uint64_t size = 0;
    EXPECT_TRUE(env_.GetFileSize(fname, &size).ok());
    std::unique_ptr<RandomAccessFile> file;
    EXPECT_TRUE(env_.NewRandomAccessFile(fname, &file).ok());
    std::string scratch(size, '\0');
    Slice result;
    EXPECT_TRUE(file->Read(0, size, &result, scratch.data()).ok());
    return std::string(result.data(), result.size());
  }

  void WriteWholeFile(const std::string& fname, const std::string& bytes) {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_.NewWritableFile(fname, &file).ok());
    ASSERT_TRUE(file->Append(Slice(bytes)).ok());
    ASSERT_TRUE(file->Close().ok());
  }

  MemEnv env_;
  uint64_t next_number_ = 1;
};

TEST_F(ValueLogFileTest, AppendReadAcrossRotation) {
  // A tiny target forces a rotation per append; sealed files must stay
  // readable through their recorded pointers.
  auto vlog = NewLog(/*target_bytes=*/1);
  std::vector<ValuePointer> ptrs(3);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        vlog->Append(Slice(K(i)), Slice("value-" + std::to_string(i)), &ptrs[i], false).ok());
  }
  EXPECT_NE(ptrs[0].file_number, ptrs[2].file_number);
  for (int i = 0; i < 3; ++i) {
    std::string value;
    ASSERT_TRUE(vlog->Read(ptrs[i], &value).ok());
    EXPECT_EQ(value, "value-" + std::to_string(i));
  }
  EXPECT_EQ(vlog->RecordsAppended(), 3u);
  EXPECT_EQ(vlog->RecordsRead(), 3u);
}

TEST_F(ValueLogFileTest, ScanFileStopsCleanlyAtTornOrCorruptTail) {
  auto vlog = NewLog(/*target_bytes=*/1 << 20);
  std::vector<ValuePointer> ptrs(3);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        vlog->Append(Slice(K(i)), Slice("value-" + std::to_string(i)), &ptrs[i], false).ok());
  }
  ASSERT_TRUE(vlog->Sync().ok());
  const std::string fname = VlogFileName("/db", ptrs[0].file_number);
  const std::string bytes = ReadWholeFile(fname);

  auto scan_count = [&](const std::string& path) {
    int count = 0;
    Status s = ValueLog::ScanFile(&env_, path, 9, [&](const Slice& key, const Slice& value,
                                                      const ValuePointer& ptr) {
      EXPECT_EQ(key, Slice(K(count)));
      EXPECT_EQ(value, Slice("value-" + std::to_string(count)));
      EXPECT_EQ(ptr.offset, ptrs[count].offset);
      EXPECT_EQ(ptr.length, ptrs[count].length);
      ++count;
    });
    EXPECT_TRUE(s.ok()) << s.ToString();
    return count;
  };

  // Intact file: all three records.
  EXPECT_EQ(scan_count(fname), 3);

  // Torn tail: the third record cut mid-payload is framed out cleanly.
  WriteWholeFile("/db/torn.vlog", bytes.substr(0, bytes.size() - ptrs[2].length + 3));
  EXPECT_EQ(scan_count("/db/torn.vlog"), 2);

  // Bit flip in the second record's payload: CRC stops the scan there.
  std::string corrupt = bytes;
  corrupt[ptrs[1].offset + 10] ^= 0x40;
  WriteWholeFile("/db/corrupt.vlog", corrupt);
  EXPECT_EQ(scan_count("/db/corrupt.vlog"), 1);
}

// ---------------------------------------------------------------------------
// Separation through the full FloDB stack
// ---------------------------------------------------------------------------

TEST(ValueSeparationTest, RoundtripThroughEveryTier) {
  MemEnv env;
  FloDbOptions options = VlogOptions(&env);
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok());

  // Mixed batch: values under the threshold stay inline.
  for (uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(db->Put(Slice(K(i)), Slice(BigValue(i))).ok());
    ASSERT_TRUE(db->Put(Slice(K(1000 + i)), Slice("small-" + std::to_string(i))).ok());
  }

  auto check_all = [&] {
    for (uint64_t i = 0; i < 50; ++i) {
      std::string value;
      ASSERT_TRUE(db->Get(Slice(K(i)), &value).ok());
      EXPECT_EQ(value, BigValue(i));
      ASSERT_TRUE(db->Get(Slice(K(1000 + i)), &value).ok());
      EXPECT_EQ(value, "small-" + std::to_string(i));
    }
  };
  // Memory-resident pointers resolve...
  check_all();
  // ...and disk-resident ones after the flush.
  ASSERT_TRUE(db->FlushAll().ok());
  check_all();

  // Scans resolve inside the pass.
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(db->Scan(Slice(K(0)), Slice(K(50)), 0, &out).ok());
  ASSERT_EQ(out.size(), 50u);
  for (uint64_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].second, BigValue(i));
  }
  // Streaming iterator too.
  ReadOptions ro;
  ro.scan_chunk_size = 7;
  auto it = db->NewScanIterator(ro, Slice(K(0)), Slice(K(50)));
  size_t seen = 0;
  for (; it->Valid(); it->Next()) {
    EXPECT_EQ(it->value(), Slice(BigValue(seen)));
    ++seen;
  }
  ASSERT_TRUE(it->status().ok());
  EXPECT_EQ(seen, 50u);

  StoreStats stats = db->GetStats();
  EXPECT_EQ(stats.disk.vlog_writes, 50u);
  EXPECT_GE(stats.disk.vlog_files, 1u);
  EXPECT_GT(stats.disk.vlog_reads, 0u);
  EXPECT_GT(CountVlogFiles(&env), 0);
}

TEST(ValueSeparationTest, ThresholdIsInclusiveLowerBound) {
  MemEnv env;
  FloDbOptions options = VlogOptions(&env);
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok());
  ASSERT_TRUE(db->Put(Slice(K(1)), Slice(std::string(127, 'a'))).ok());  // below: inline
  ASSERT_TRUE(db->Put(Slice(K(2)), Slice(std::string(128, 'b'))).ok());  // at: separated
  EXPECT_EQ(db->GetStats().disk.vlog_writes, 1u);
  std::string value;
  ASSERT_TRUE(db->Get(Slice(K(1)), &value).ok());
  EXPECT_EQ(value, std::string(127, 'a'));
  ASSERT_TRUE(db->Get(Slice(K(2)), &value).ok());
  EXPECT_EQ(value, std::string(128, 'b'));
}

TEST(ValueSeparationTest, ThresholdZeroKeepsLegacyFormat) {
  // Separation off must leave the on-disk layout exactly as before the
  // feature: no vlog files, no vlog MANIFEST extension (the reopen
  // parses the snapshot to its end), zeroed vlog stats.
  MemEnv env;
  FloDbOptions options = VlogOptions(&env);
  options.disk.value_separation_threshold = 0;
  {
    std::unique_ptr<FloDB> db;
    ASSERT_TRUE(FloDB::Open(options, &db).ok());
    for (uint64_t i = 0; i < 64; ++i) {
      ASSERT_TRUE(db->Put(Slice(K(i)), Slice(BigValue(i))).ok());
    }
    ASSERT_TRUE(db->FlushAll().ok());
    StoreStats stats = db->GetStats();
    EXPECT_EQ(stats.disk.vlog_files, 0u);
    EXPECT_EQ(stats.disk.vlog_bytes_written, 0u);
    EXPECT_EQ(stats.disk.vlog_writes, 0u);
  }
  EXPECT_EQ(CountVlogFiles(&env), 0);
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok());
  for (uint64_t i = 0; i < 64; ++i) {
    std::string value;
    ASSERT_TRUE(db->Get(Slice(K(i)), &value).ok());
    EXPECT_EQ(value, BigValue(i));
  }
}

// ---------------------------------------------------------------------------
// Crash matrix (FaultInjectionEnv)
// ---------------------------------------------------------------------------

TEST(ValueSeparationCrashTest, AckedSyncWriteSurvivesUnsyncedDies) {
  MemEnv base;
  FaultInjectionEnv fault(&base);
  FloDbOptions options = VlogOptions(&fault);
  options.enable_wal = true;
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok());

  WriteOptions synced;
  synced.sync = true;
  ASSERT_TRUE(db->Put(synced, Slice(K(1)), Slice(BigValue(1))).ok());
  // Unsynced tail after the acked write: allowed to be lost.
  ASSERT_TRUE(db->Put(Slice(K(2)), Slice(BigValue(2))).ok());
  CrashAndDrop(&db, &fault);

  ASSERT_TRUE(FloDB::Open(options, &db).ok());
  std::string value;
  // The sync=true write referenced vlog bytes fsync'd BEFORE the WAL
  // record (the leader's vlog-before-WAL order); nothing acked is lost.
  ASSERT_TRUE(db->Get(Slice(K(1)), &value).ok());
  EXPECT_EQ(value, BigValue(1));
  // The unsynced write either fully survives (OS got to it) or fully
  // disappears; under DropUnsyncedFileData it disappears. Either way the
  // read must not error out on a dangling pointer.
  Status s = db->Get(Slice(K(2)), &value);
  EXPECT_TRUE(s.ok() || s.IsNotFound()) << s.ToString();
}

TEST(ValueSeparationCrashTest, DanglingWalPointerDroppedAtReplay) {
  // Simulates WAL writeback outrunning vlog writeback for an unacked
  // write: the WAL record survives, its vlog target does not. Replay
  // must drop the stray pointer (the write was never durably acked)
  // instead of installing an entry whose Get fails forever.
  MemEnv env;
  FloDbOptions options = VlogOptions(&env);
  options.enable_wal = true;
  {
    std::unique_ptr<FloDB> db;
    ASSERT_TRUE(FloDB::Open(options, &db).ok());
    ASSERT_TRUE(db->Put(Slice(K(1)), Slice(BigValue(1))).ok());
    ASSERT_TRUE(db->Put(Slice(K(2)), Slice("small-inline-value")).ok());
    // Close without flushing: both entries live only in the WAL (+vlog).
  }
  std::vector<std::string> children;
  env.GetChildren("/db", &children);
  int removed = 0;
  for (const std::string& name : children) {
    if (name.size() > 5 && name.rfind(".vlog") == name.size() - 5) {
      ASSERT_TRUE(env.RemoveFile("/db/" + name).ok());
      ++removed;
    }
  }
  ASSERT_GT(removed, 0);

  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok());
  std::string value;
  // The pointer entry was dropped; the inline entry replayed.
  EXPECT_TRUE(db->Get(Slice(K(1)), &value).IsNotFound());
  ASSERT_TRUE(db->Get(Slice(K(2)), &value).ok());
  EXPECT_EQ(value, "small-inline-value");
}

TEST(ValueSeparationCrashTest, VlogAppendFailureFailsWriteAtomicallyAndRotates) {
  // A failed vlog append must (a) fail the whole Write — never commit a
  // batch silently truncated at the failed entry — and (b) retire the
  // active vlog file, whose physical length is unknown after a possibly
  // torn partial append: appending more to it would hand out pointers
  // whose offsets disagree with the real file contents.
  MemEnv base;
  FaultInjectionEnv fault(&base);
  FloDbOptions options = VlogOptions(&fault);
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok());

  for (uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(db->Put(Slice(K(i)), Slice(BigValue(i))).ok());
  }

  // Next vlog append fails after writing a torn prefix (the worst case:
  // the file's real length ran ahead of the in-memory cursor).
  fault.FailAppendAfter(0, /*torn=*/true, ".vlog");
  WriteBatch batch;
  batch.Put(Slice(K(100)), Slice("small-before"));
  batch.Put(Slice(K(101)), Slice(BigValue(101)));
  batch.Put(Slice(K(102)), Slice("small-after"));
  ASSERT_FALSE(db->Write(WriteOptions(), &batch).ok())
      << "a write whose vlog append failed must not be acked";
  std::string value;
  EXPECT_TRUE(db->Get(Slice(K(100)), &value).IsNotFound())
      << "no prefix of the failed batch may commit";
  EXPECT_TRUE(db->Get(Slice(K(101)), &value).IsNotFound());
  EXPECT_TRUE(db->Get(Slice(K(102)), &value).IsNotFound());
  EXPECT_FALSE(db->Put(Slice(K(103)), Slice(BigValue(103))).ok());

  // Back to a healthy device: new separated writes must land at offsets
  // that read back correctly (i.e. NOT in the file with the torn tail),
  // and the records written before the fault stay readable.
  fault.ClearFaults();
  for (uint64_t i = 100; i < 110; ++i) {
    ASSERT_TRUE(db->Put(Slice(K(i)), Slice(BigValue(i))).ok());
  }
  for (uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(db->Get(Slice(K(i)), &value).ok()) << i;
    EXPECT_EQ(value, BigValue(i));
  }
  for (uint64_t i = 100; i < 110; ++i) {
    ASSERT_TRUE(db->Get(Slice(K(i)), &value).ok()) << i;
    EXPECT_EQ(value, BigValue(i));
  }
  ASSERT_TRUE(db->FlushAll().ok());
  for (uint64_t i = 100; i < 110; ++i) {
    ASSERT_TRUE(db->Get(Slice(K(i)), &value).ok()) << i;
    EXPECT_EQ(value, BigValue(i));
  }
}

// ---------------------------------------------------------------------------
// Garbage-ratio GC
// ---------------------------------------------------------------------------

TEST(ValueSeparationGcTest, GcRewritesLiveRecordsAndReclaimsGarbage) {
  MemEnv env;
  FloDbOptions options = VlogOptions(&env);
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok());

  constexpr uint64_t kKeys = 100;
  for (uint64_t i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(db->Put(Slice(K(i)), Slice(BigValue(i, 0))).ok());
  }
  ASSERT_TRUE(db->FlushAll().ok());
  // Overwrite half: early vlog files now hold ~50% garbage each.
  for (uint64_t i = 0; i < kKeys / 2; ++i) {
    ASSERT_TRUE(db->Put(Slice(K(i)), Slice(BigValue(i, 1))).ok());
  }
  // CompactRange drops the shadowed pointer versions, which is what
  // accounts their bytes as vlog garbage (the GC trigger's input).
  ASSERT_TRUE(db->CompactRange(Slice(), Slice()).ok());

  const uint64_t garbage_before = db->GetStats().disk.vlog_garbage_bytes;

  // Drain every victim. The background GC thread races us to the same end
  // state — it may even have collected everything CompactRange accounted
  // before garbage_before was read — so "charged, then reclaimed" is
  // asserted through the collection evidence below, not a garbage delta.
  for (int round = 0; round < 50; ++round) {
    bool performed = false;
    ASSERT_TRUE(db->CompactValueLogGarbage(&performed).ok());
    if (!performed) {
      break;
    }
  }

  StoreStats stats = db->GetStats();
  EXPECT_GT(stats.disk.vlog_gc_rewrites, 0u);  // live records were moved
  EXPECT_LT(stats.disk.vlog_bytes, stats.disk.vlog_bytes_written)
      << "at least one victim file must have been reclaimed";
  EXPECT_LE(stats.disk.vlog_garbage_bytes, garbage_before);
  for (uint64_t i = 0; i < kKeys; ++i) {
    std::string value;
    ASSERT_TRUE(db->Get(Slice(K(i)), &value).ok()) << i;
    EXPECT_EQ(value, BigValue(i, i < kKeys / 2 ? 1 : 0)) << i;
  }
}

TEST(ValueSeparationGcTest, CrashAfterGcLeavesDataReadableAndZeroOrphans) {
  MemEnv base;
  FaultInjectionEnv fault(&base);
  FloDbOptions options = VlogOptions(&fault);
  options.enable_wal = true;
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok());

  constexpr uint64_t kKeys = 60;
  for (uint64_t i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(db->Put(Slice(K(i)), Slice(BigValue(i, 0))).ok());
  }
  ASSERT_TRUE(db->FlushAll().ok());
  for (uint64_t i = 0; i < kKeys / 2; ++i) {
    ASSERT_TRUE(db->Put(Slice(K(i)), Slice(BigValue(i, 1))).ok());
  }
  ASSERT_TRUE(db->CompactRange(Slice(), Slice()).ok());
  for (int round = 0; round < 50; ++round) {
    bool performed = false;
    ASSERT_TRUE(db->CompactValueLogGarbage(&performed).ok());
    if (!performed) {
      break;
    }
  }
  // Power cut right after GC: everything GC rewrote was fsync'd before
  // the MANIFEST edit that retired the victims, so nothing flushed or
  // rewritten may be lost.
  CrashAndDrop(&db, &fault);

  ASSERT_TRUE(FloDB::Open(options, &db).ok());
  for (uint64_t i = 0; i < kKeys; ++i) {
    std::string value;
    ASSERT_TRUE(db->Get(Slice(K(i)), &value).ok()) << i;
    EXPECT_EQ(value, BigValue(i, i < kKeys / 2 ? 1 : 0)) << i;
  }
  // Zero orphans: every .vlog on disk is registered in the MANIFEST.
  EXPECT_EQ(static_cast<uint64_t>(CountVlogFiles(&fault)), db->GetStats().disk.vlog_files);
}

TEST(ValueSeparationGcTest, InMemoryOverwriteChargesGarbageExactlyOnce) {
  // Hot-key overwrites whose old version dies while still memory-resident
  // never reach a flush or compaction dedup — yet the dead vlog record is
  // just as dead. The accounting must see those deaths (else hot keys
  // accumulate invisible garbage), and see each exactly once (Membuffer
  // in-place replacement vs. Memtable displacement of the same version
  // must not both charge).
  MemEnv env;
  FloDbOptions options = VlogOptions(&env);
  // Ratio 1.0 + overwriting only every other key keeps every file's
  // garbage fraction at ~50%, so GC never fires: pure accounting test.
  options.disk.vlog_gc_garbage_ratio = 1.0;
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok());

  constexpr uint64_t kKeys = 50;
  constexpr uint64_t kOverwritten = kKeys / 2;
  for (uint64_t i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(db->Put(Slice(K(i)), Slice(BigValue(i, 0))).ok());
  }
  // Both generations are memory-resident here — no flush in between, no
  // CompactRange afterwards.
  for (uint64_t i = 0; i < kKeys; i += 2) {
    ASSERT_TRUE(db->Put(Slice(K(i)), Slice(BigValue(i, 1))).ok());
  }
  ASSERT_TRUE(db->FlushAll().ok());  // full drain: every displacement has fired

  // Each dead gen-0 record charges its full record length (~425 bytes:
  // header + key + ~408-byte value). Double-charging would at least
  // double the total; missing the in-memory deaths would leave it 0.
  const uint64_t garbage = db->GetStats().disk.vlog_garbage_bytes;
  EXPECT_GE(garbage, kOverwritten * 400);
  EXPECT_LE(garbage, kOverwritten * 560);

  for (uint64_t i = 0; i < kKeys; ++i) {
    std::string value;
    ASSERT_TRUE(db->Get(Slice(K(i)), &value).ok()) << i;
    EXPECT_EQ(value, BigValue(i, i % 2 == 0 ? 1 : 0)) << i;
  }
}

TEST(ValueSeparationGcTest, InMemoryOverwriteAloneTriggersReclaim) {
  // End to end: garbage charged purely by in-memory displacement (no
  // CompactRange) must drive the victim picker and get the dead files
  // reclaimed. Race-immune phrasing: whoever collects (this thread or the
  // background GC loop), the space must come back.
  MemEnv env;
  FloDbOptions options = VlogOptions(&env);
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok());

  constexpr uint64_t kKeys = 60;
  for (uint64_t i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(db->Put(Slice(K(i)), Slice(BigValue(i, 0))).ok());
  }
  for (uint64_t i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(db->Put(Slice(K(i)), Slice(BigValue(i, 1))).ok());
  }
  ASSERT_TRUE(db->FlushAll().ok());
  for (int round = 0; round < 50; ++round) {
    bool performed = false;
    ASSERT_TRUE(db->CompactValueLogGarbage(&performed).ok());
    if (!performed) {
      break;
    }
  }

  StoreStats stats = db->GetStats();
  // At least one gen-0 file must have been picked and unlinked. (Not all:
  // a background GC round's own flush can push still-live gen-0 versions
  // to disk mid-test, deferring those deaths to compaction dedup. But the
  // first file crosses the ratio from in-memory charges alone.) Without
  // in-memory death accounting NO victim is ever picked here — there is
  // no CompactRange to account anything — and vlog_bytes stays equal to
  // vlog_bytes_written.
  EXPECT_LT(stats.disk.vlog_bytes, stats.disk.vlog_bytes_written);
  for (uint64_t i = 0; i < kKeys; ++i) {
    std::string value;
    ASSERT_TRUE(db->Get(Slice(K(i)), &value).ok()) << i;
    EXPECT_EQ(value, BigValue(i, 1)) << i;
  }
}

TEST(ValueSeparationGcTest, RepeatedGcFailureBacksOffAndQuarantines) {
  // A victim whose collection keeps failing must not be retried forever:
  // after a few consecutive failures the GC loop quarantines it (skipped
  // by the picker, surfaced in stats) and the store keeps serving.
  MemEnv base;
  FaultInjectionEnv fault(&base);
  FloDbOptions options = VlogOptions(&fault);
  // One big file so there is exactly one victim, sealed once the writes
  // below roll past it (~150 records of ~425 bytes).
  options.disk.vlog_file_target_bytes = 64 << 10;
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok());

  constexpr uint64_t kKeys = 160;
  constexpr uint64_t kOverwritten = 40;   // ~26% of the sealed file: below ratio
  constexpr uint64_t kDeletedEnd = 60;    // keys [40, 60) deleted later: ~39% total
  for (uint64_t i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(db->Put(Slice(K(i)), Slice(BigValue(i, 0))).ok());
  }
  // Stay safely below the 0.3 garbage ratio while vlog appends still
  // work, so the background GC provably has not touched the victim yet.
  for (uint64_t i = 0; i < kOverwritten; ++i) {
    ASSERT_TRUE(db->Put(Slice(K(i)), Slice(BigValue(i, 1))).ok());
  }
  // From here on every vlog append — i.e. the GC rewrites of the file's
  // surviving live records — fails.
  fault.FailAppendAfter(0, /*torn=*/false, ".vlog");
  // Tombstones need no vlog append; they push the sealed file's garbage
  // past the ratio with the fault already armed. Collection of the
  // (partially live) victim now fails every round.
  for (uint64_t i = kOverwritten; i < kDeletedEnd; ++i) {
    ASSERT_TRUE(db->Delete(Slice(K(i))).ok());
  }

  // The background loop: fail -> back off -> fail -> ... -> quarantine.
  StoreStats stats;
  for (int waited_ms = 0; waited_ms < 30'000; waited_ms += 10) {
    stats = db->GetStats();
    if (stats.vlog_gc_quarantined > 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(stats.vlog_gc_quarantined, 1u);
  EXPECT_GE(stats.vlog_gc_failures, 3u) << "quarantine requires repeated failures";

  // Healthy again: the quarantined victim stays skipped (no victim left
  // above the ratio => no work), and every surviving key still reads.
  fault.ClearFaults();
  bool performed = true;
  for (int round = 0; round < 50 && performed; ++round) {
    ASSERT_TRUE(db->CompactValueLogGarbage(&performed).ok());
  }
  EXPECT_FALSE(performed);
  for (uint64_t i = 0; i < kKeys; ++i) {
    std::string value;
    Status s = db->Get(Slice(K(i)), &value);
    if (i >= kOverwritten && i < kDeletedEnd) {
      EXPECT_TRUE(s.IsNotFound()) << i;
      continue;
    }
    ASSERT_TRUE(s.ok()) << i << ": " << s.ToString();
    EXPECT_EQ(value, BigValue(i, i < kOverwritten ? 1 : 0)) << i;
  }
  EXPECT_GE(db->GetStats().vlog_gc_quarantined, 1u);
}

TEST(ValueSeparationGcTest, ConcurrentWritersReadersAndGc) {
  MemEnv env;
  FloDbOptions options = VlogOptions(&env);
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok());

  constexpr uint64_t kKeys = 64;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 60 && !failed.load(); ++round) {
        for (uint64_t i = static_cast<uint64_t>(t); i < kKeys; i += 2) {
          if (!db->Put(Slice(K(i)), Slice(BigValue(i, round))).ok()) {
            failed.store(true);
          }
        }
      }
    });
  }
  threads.emplace_back([&] {
    for (int round = 0; round < 200 && !failed.load(); ++round) {
      std::string value;
      Status s = db->Get(Slice(K(static_cast<uint64_t>(round) % kKeys)), &value);
      if (!s.ok() && !s.IsNotFound()) {
        failed.store(true);
      }
      if (s.ok() && value.compare(0, 1, "g") != 0) {
        failed.store(true);
      }
    }
  });
  for (int round = 0; round < 10; ++round) {
    bool performed = false;
    if (!db->CompactValueLogGarbage(&performed).ok()) {
      failed.store(true);
    }
  }
  for (std::thread& t : threads) {
    t.join();
  }
  ASSERT_FALSE(failed.load());
  ASSERT_TRUE(db->FlushAll().ok());
  for (uint64_t i = 0; i < kKeys; ++i) {
    std::string value;
    ASSERT_TRUE(db->Get(Slice(K(i)), &value).ok()) << i;
    EXPECT_EQ(value.compare(0, 1, "g"), 0) << i;
  }
}

// ---------------------------------------------------------------------------
// KVStore::CompactRange surface
// ---------------------------------------------------------------------------

TEST(CompactRangeApiTest, ShardedFanOutCompactsEveryShard) {
  MemEnv env;
  FloDbOptions options = VlogOptions(&env);
  options.shards = 4;
  std::unique_ptr<ShardedKVStore> store;
  ASSERT_TRUE(ShardedKVStore::Open(options, &store).ok());
  for (uint64_t i = 0; i < 256; ++i) {
    ASSERT_TRUE(store->Put(Slice(K(i * 1315423911u)), Slice(BigValue(i))).ok());
  }
  ASSERT_TRUE(store->CompactRange(Slice(), Slice()).ok());
  for (int shard = 0; shard < store->NumShards(); ++shard) {
    // Post-compaction every shard's L0 is empty (its data sits deeper).
    EXPECT_EQ(store->ShardStats(shard).disk.files_per_level[0], 0);
  }
  for (uint64_t i = 0; i < 256; ++i) {
    std::string value;
    ASSERT_TRUE(store->Get(Slice(K(i * 1315423911u)), &value).ok());
    EXPECT_EQ(value, BigValue(i));
  }
}

// ---------------------------------------------------------------------------
// Batched GC: one round reclaims every eligible victim
// ---------------------------------------------------------------------------

TEST(ValueLogBatchGcTest, SingleRoundReclaimsAllEligibleVictims) {
  // A table's values are scattered across many vlog files, so per-victim
  // GC rounds would rewrite the same table once per victim. The batching
  // contract: PickVlogGcVictims returns every file over the ratio and one
  // CompactVlogFiles pass deregisters them all.
  MemEnv env;
  DiskOptions options;
  options.env = &env;
  options.path = "/db";
  options.value_separation_threshold = 128;
  options.vlog_file_target_bytes = 2 << 10;  // ~5 records of ~425B per file
  std::unique_ptr<DiskComponent> disk;
  ASSERT_TRUE(DiskComponent::Open(options, &disk).ok());

  // ~4 vlog files' worth of records, then one table referencing them all.
  const int kKeys = 20;
  std::vector<std::string> pointers(kKeys);
  std::vector<uint64_t> record_file(kKeys);
  for (int i = 0; i < kKeys; ++i) {
    const std::string value = BigValue(i);
    ASSERT_TRUE(
        disk->AppendToValueLog(Slice(K(i)), Slice(value), &pointers[i], &record_file[i]).ok());
    disk->UnpinVlogFile(record_file[i]);
  }
  ASSERT_TRUE(disk->SyncValueLog().ok());
  MemTable table(1 << 20);
  for (int i = 0; i < kKeys; ++i) {
    table.Add(Slice(K(i)), Slice(pointers[i]), static_cast<uint64_t>(i + 1),
              ValueType::kValuePointer);
  }
  MemTableIterator iter(&table);
  ASSERT_TRUE(disk->AddRun(&iter).ok());

  // Kill 4 of every 5 records in the SEALED files (80% > the 0.5 default
  // ratio), keeping one live record per file so the round must rewrite.
  // The active file keeps all its records live so it stays ineligible
  // even after GC re-appends seal it.
  const uint64_t active_file = record_file[kKeys - 1];
  std::vector<int> live;
  for (int i = 0; i < kKeys; ++i) {
    if (record_file[i] == active_file || i % 5 == 0) {
      live.push_back(i);
    } else {
      disk->ReportVlogGarbage(Slice(pointers[i]));
    }
  }

  std::set<uint64_t> sealed(record_file.begin(), record_file.end());
  sealed.erase(active_file);
  ASSERT_GE(sealed.size(), 2u) << "workload must spread records over several sealed files";

  std::vector<uint64_t> victims;
  ASSERT_TRUE(disk->PickVlogGcVictims(&victims));
  EXPECT_EQ(std::set<uint64_t>(victims.begin(), victims.end()), sealed)
      << "every sealed file over the ratio must be picked in one batch";

  uint64_t rewrites = 0;
  ASSERT_TRUE(disk->CompactVlogFiles(victims, &rewrites).ok());
  EXPECT_GT(rewrites, 0u);

  // One round deregistered every victim, and the survivors resolve
  // through their relocated pointers.
  const auto& vlogs = disk->CurrentVersion()->VlogFiles();
  for (uint64_t victim : victims) {
    EXPECT_EQ(vlogs.count(victim), 0u);
  }
  for (int i : live) {
    std::string pointer;
    ValueType type;
    ASSERT_TRUE(disk->Get(Slice(K(i)), &pointer, nullptr, &type).ok());
    ASSERT_EQ(type, ValueType::kValuePointer);
    std::string value;
    ASSERT_TRUE(disk->ResolveValuePointer(Slice(pointer), &value).ok());
    EXPECT_EQ(value, BigValue(i));
  }
  EXPECT_FALSE(disk->PickVlogGcVictims(&victims)) << "nothing eligible may remain";
}

}  // namespace
}  // namespace flodb
