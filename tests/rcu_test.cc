#include "flodb/sync/rcu.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace flodb {
namespace {

TEST(RcuTest, SynchronizeWithNoReadersReturns) {
  Rcu rcu;
  rcu.Synchronize();
  rcu.Synchronize();
}

TEST(RcuTest, ReadLockUnlockNested) {
  Rcu rcu;
  EXPECT_FALSE(rcu.InReadSection());
  rcu.ReadLock();
  EXPECT_TRUE(rcu.InReadSection());
  rcu.ReadLock();
  EXPECT_TRUE(rcu.InReadSection());
  rcu.ReadUnlock();
  EXPECT_TRUE(rcu.InReadSection());
  rcu.ReadUnlock();
  EXPECT_FALSE(rcu.InReadSection());
}

TEST(RcuTest, SynchronizeWaitsForActiveReader) {
  Rcu rcu;
  std::atomic<bool> reader_in{false};
  std::atomic<bool> reader_release{false};
  std::atomic<bool> sync_done{false};

  std::thread reader([&] {
    rcu.ReadLock();
    reader_in.store(true);
    while (!reader_release.load()) {
      std::this_thread::yield();
    }
    rcu.ReadUnlock();
  });

  while (!reader_in.load()) {
    std::this_thread::yield();
  }
  std::thread syncer([&] {
    rcu.Synchronize();
    sync_done.store(true);
  });

  // Synchronize must NOT complete while the reader is inside.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(sync_done.load());

  reader_release.store(true);
  syncer.join();
  EXPECT_TRUE(sync_done.load());
  reader.join();
}

TEST(RcuTest, SynchronizeDoesNotWaitForLaterReaders) {
  Rcu rcu;
  // A reader that enters after Synchronize starts must not be waited on
  // indefinitely: here we just check that back-to-back sync+read patterns
  // never wedge.
  for (int i = 0; i < 100; ++i) {
    std::thread reader([&] {
      RcuReadGuard guard(rcu);
      std::this_thread::yield();
    });
    rcu.Synchronize();
    reader.join();
  }
}

TEST(RcuTest, PointerReclamationPattern) {
  // The canonical usage: swap a pointer, synchronize, free the old value.
  // Readers must never observe freed memory (checked via a live flag).
  struct Node {
    std::atomic<bool> alive{true};
    int value = 0;
  };
  Rcu rcu;
  std::atomic<Node*> ptr{new Node{}};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        RcuReadGuard guard(rcu);
        Node* n = ptr.load(std::memory_order_seq_cst);
        ASSERT_TRUE(n->alive.load(std::memory_order_relaxed));
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Keep swapping until readers have observably run (single-core hosts
  // may not schedule them immediately), bounded to stay finite.
  for (int i = 0; i < 200 || (reads.load() == 0 && i < 2'000'000); ++i) {
    Node* fresh = new Node{};
    fresh->value = i;
    Node* old = ptr.exchange(fresh, std::memory_order_seq_cst);
    rcu.Synchronize();
    old->alive.store(false, std::memory_order_relaxed);
    delete old;
    if ((i & 0xf) == 0) {
      std::this_thread::yield();
    }
  }
  stop.store(true);
  for (auto& t : readers) {
    t.join();
  }
  delete ptr.load();
  EXPECT_GT(reads.load(), 0u);
}

TEST(RcuTest, ManyShortLivedThreadsRecycleSlots) {
  Rcu rcu;
  // More threads over time than kMaxThreads — slot recycling must work.
  for (int round = 0; round < 8; ++round) {
    std::vector<std::thread> threads;
    for (int t = 0; t < 32; ++t) {
      threads.emplace_back([&] {
        RcuReadGuard guard(rcu);
      });
    }
    for (auto& th : threads) {
      th.join();
    }
  }
  rcu.Synchronize();
}

TEST(RcuTest, TwoIndependentDomains) {
  Rcu a, b;
  a.ReadLock();
  // A reader in domain A must not block domain B's grace period.
  b.Synchronize();
  a.ReadUnlock();
  a.Synchronize();
}

TEST(RcuTest, ConcurrentSynchronizersDoNotDeadlock) {
  Rcu rcu;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        RcuReadGuard guard(rcu);
      }
      for (int i = 0; i < 50; ++i) {
        rcu.Synchronize();
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
}

}  // namespace
}  // namespace flodb
