// WriteBatch semantics across the v2 surface: container behavior,
// atomic commit through FloDB (one WAL record, one contiguous seq range,
// last-write-wins inside a batch) and through every baseline.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "flodb/baselines/hyperleveldb_like.h"
#include "flodb/baselines/leveldb_like.h"
#include "flodb/baselines/rocksdb_like.h"
#include "flodb/bench_util/workload.h"
#include "flodb/common/key_codec.h"
#include "flodb/core/flodb.h"
#include "flodb/core/write_batch.h"
#include "flodb/disk/mem_env.h"
#include "flodb/disk/wal.h"

namespace flodb {
namespace {

using bench::SpreadKey;

std::string K(uint64_t i) { return EncodeKey(SpreadKey(i, 1 << 20)); }

FloDbOptions SmallOptions(MemEnv* env) {
  FloDbOptions options;
  options.memory_budget_bytes = 1 << 20;
  options.disk.env = env;
  options.disk.path = "/db";
  options.disk.sstable_target_bytes = 32 << 10;
  return options;
}

// ---- container ----

TEST(WriteBatchTest, ContainerBasics) {
  WriteBatch batch;
  EXPECT_TRUE(batch.Empty());
  EXPECT_EQ(batch.Count(), 0u);

  batch.Put(Slice("a"), Slice("1"));
  batch.Delete(Slice("b"));
  batch.Put(Slice("c"), Slice("3"));
  EXPECT_EQ(batch.Count(), 3u);
  EXPECT_GT(batch.ApproximateBytes(), 0u);

  std::vector<std::string> seen;
  ASSERT_TRUE(batch
                  .ForEach([&](const Slice& key, const Slice& value, ValueType type) {
                    seen.push_back(key.ToString() + "=" + value.ToString() +
                                   (type == ValueType::kTombstone ? "[del]" : ""));
                  })
                  .ok());
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], "a=1");
  EXPECT_EQ(seen[1], "b=[del]");
  EXPECT_EQ(seen[2], "c=3");

  batch.Clear();
  EXPECT_TRUE(batch.Empty());
  EXPECT_EQ(batch.ApproximateBytes(), 0u);
}

TEST(WriteBatchTest, AppendConcatenatesInOrder) {
  WriteBatch a, b;
  a.Put(Slice("k1"), Slice("v1"));
  b.Put(Slice("k1"), Slice("v2"));
  b.Delete(Slice("k2"));
  a.Append(b);
  EXPECT_EQ(a.Count(), 3u);

  std::vector<std::string> keys;
  ASSERT_TRUE(a.ForEach([&](const Slice& key, const Slice&, ValueType) {
                 keys.push_back(key.ToString());
               }).ok());
  EXPECT_EQ(keys, (std::vector<std::string>{"k1", "k1", "k2"}));
}

TEST(WriteBatchTest, MalformedRepIsRejected) {
  EXPECT_TRUE(WriteBatch::IterateRep(Slice("\x07" "garbage"), 1,
                                     [](const Slice&, const Slice&, ValueType) {})
                  .IsCorruption());
  // Truncated length prefix.
  EXPECT_TRUE(WriteBatch::IterateRep(Slice("\x00\x05" "ab", 4), 1,
                                     [](const Slice&, const Slice&, ValueType) {})
                  .IsCorruption());
}

// ---- FloDB commit semantics ----

TEST(WriteBatchTest, EmptyBatchIsANoOp) {
  MemEnv env;
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(SmallOptions(&env), &db).ok());
  WriteBatch batch;
  ASSERT_TRUE(db->Write(WriteOptions(), &batch).ok());
  const StoreStats stats = db->GetStats();
  EXPECT_EQ(stats.batch_writes, 0u);
  EXPECT_EQ(stats.batch_entries, 0u);
  EXPECT_EQ(db->Write(WriteOptions(), nullptr).IsInvalidArgument(), true);
}

TEST(WriteBatchTest, BatchAppliesAllEntries) {
  MemEnv env;
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(SmallOptions(&env), &db).ok());

  WriteBatch batch;
  for (uint64_t i = 0; i < 200; ++i) {
    batch.Put(Slice(K(i)), Slice("batched" + std::to_string(i)));
  }
  ASSERT_TRUE(db->Write(WriteOptions(), &batch).ok());

  std::string value;
  for (uint64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(db->Get(Slice(K(i)), &value).ok()) << i;
    EXPECT_EQ(value, "batched" + std::to_string(i));
  }
  const StoreStats stats = db->GetStats();
  EXPECT_EQ(stats.batch_writes, 1u);
  EXPECT_EQ(stats.batch_entries, 200u);
  EXPECT_EQ(stats.puts, 200u);
}

TEST(WriteBatchTest, LastWriteWinsInsideOneBatch) {
  MemEnv env;
  // Run both memory-component shapes: Membuffer absorbs duplicates via
  // in-place updates; without it the contiguous-seq MultiAdd path must
  // keep batch order for duplicate keys.
  for (const bool enable_membuffer : {true, false}) {
    FloDbOptions options = SmallOptions(&env);
    options.enable_membuffer = enable_membuffer;
    options.disk.path = enable_membuffer ? "/db_mbf" : "/db_plain";
    std::unique_ptr<FloDB> db;
    ASSERT_TRUE(FloDB::Open(options, &db).ok());

    WriteBatch batch;
    batch.Put(Slice(K(1)), Slice("first"));
    batch.Put(Slice(K(1)), Slice("second"));
    batch.Delete(Slice(K(2)));
    batch.Put(Slice(K(2)), Slice("alive"));
    batch.Put(Slice(K(3)), Slice("doomed"));
    batch.Delete(Slice(K(3)));
    ASSERT_TRUE(db->Write(WriteOptions(), &batch).ok());

    std::string value;
    ASSERT_TRUE(db->Get(Slice(K(1)), &value).ok());
    EXPECT_EQ(value, "second") << "membuffer=" << enable_membuffer;
    ASSERT_TRUE(db->Get(Slice(K(2)), &value).ok());
    EXPECT_EQ(value, "alive") << "membuffer=" << enable_membuffer;
    EXPECT_TRUE(db->Get(Slice(K(3)), &value).IsNotFound()) << "membuffer=" << enable_membuffer;
  }
}

TEST(WriteBatchTest, BatchCommitsOneContiguousSeqRange) {
  MemEnv env;
  // Without the Membuffer every entry receives a Memtable seq at commit:
  // the whole batch must claim exactly one contiguous block.
  FloDbOptions options = SmallOptions(&env);
  options.enable_membuffer = false;
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok());

  const uint64_t before = db->CurrentSeq();
  WriteBatch batch;
  for (uint64_t i = 0; i < 100; ++i) {
    batch.Put(Slice(K(i)), Slice("v"));
  }
  ASSERT_TRUE(db->Write(WriteOptions(), &batch).ok());
  EXPECT_EQ(db->CurrentSeq(), before + 100)
      << "a batch of N memtable entries must consume exactly N sequence numbers";
}

TEST(WriteBatchTest, MembufferAbsorbsBatchWithoutSeqs) {
  MemEnv env;
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(SmallOptions(&env), &db).ok());

  WriteBatch batch;
  for (uint64_t i = 0; i < 50; ++i) {
    batch.Put(Slice(K(i)), Slice("v"));
  }
  ASSERT_TRUE(db->Write(WriteOptions(), &batch).ok());
  // The batch is absorbed entirely by the Membuffer: nothing spilled to
  // the Memtable at commit time (seqs are assigned later, on drain).
  const StoreStats stats = db->GetStats();
  EXPECT_EQ(stats.membuffer_adds, 50u);
  EXPECT_EQ(stats.memtable_direct_adds, 0u);
}

TEST(WriteBatchTest, OneWalRecordPerBatch) {
  MemEnv env;
  FloDbOptions options = SmallOptions(&env);
  options.enable_wal = true;
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok());

  WriteBatch batch;
  for (uint64_t i = 0; i < 64; ++i) {
    batch.Put(Slice(K(i)), Slice("wal"));
  }
  ASSERT_TRUE(db->Write(WriteOptions(), &batch).ok());
  // The one-entry wrappers are batches of 1 — still one record each.
  ASSERT_TRUE(db->Put(Slice(K(100)), Slice("single")).ok());
  ASSERT_TRUE(db->Delete(Slice(K(100))).ok());

  EXPECT_EQ(db->GetStats().wal_batch_records, 3u);

  // Count the physical records in the live WAL.
  std::vector<std::string> children;
  ASSERT_TRUE(env.GetChildren("/db", &children).ok());
  int records = 0;
  for (const std::string& name : children) {
    if (name.rfind("wal-", 0) != 0) {
      continue;
    }
    std::unique_ptr<SequentialFile> file;
    ASSERT_TRUE(env.NewSequentialFile("/db/" + name, &file).ok());
    WalReader reader(std::move(file));
    std::string payload;
    while (reader.ReadRecord(&payload)) {
      ++records;
    }
    ASSERT_TRUE(reader.status().ok());
  }
  EXPECT_EQ(records, 3) << "64 batched entries + 2 single-entry wrappers = 3 WAL records";
}

TEST(WriteBatchTest, SyncWriteOptionIsAccepted) {
  MemEnv env;
  FloDbOptions options = SmallOptions(&env);
  options.enable_wal = true;
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok());
  WriteOptions sync_options;
  sync_options.sync = true;
  WriteBatch batch;
  batch.Put(Slice(K(1)), Slice("durable"));
  ASSERT_TRUE(db->Write(sync_options, &batch).ok());
  std::string value;
  ASSERT_TRUE(db->Get(Slice(K(1)), &value).ok());
  EXPECT_EQ(value, "durable");
}

TEST(WriteBatchTest, FillStatsOffSkipsCounters) {
  MemEnv env;
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(SmallOptions(&env), &db).ok());
  WriteOptions quiet;
  quiet.fill_stats = false;
  WriteBatch batch;
  batch.Put(Slice(K(1)), Slice("v"));
  ASSERT_TRUE(db->Write(quiet, &batch).ok());
  const StoreStats stats = db->GetStats();
  EXPECT_EQ(stats.batch_writes, 0u);
  EXPECT_EQ(stats.puts, 0u);
  std::string value;
  ASSERT_TRUE(db->Get(Slice(K(1)), &value).ok());  // the write still happened
}

TEST(WriteBatchTest, BatchVisibleToScan) {
  MemEnv env;
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(SmallOptions(&env), &db).ok());
  WriteBatch batch;
  for (uint64_t i = 0; i < 30; ++i) {
    batch.Put(Slice(K(i)), Slice("s" + std::to_string(i)));
  }
  batch.Delete(Slice(K(10)));
  ASSERT_TRUE(db->Write(WriteOptions(), &batch).ok());
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(db->Scan(Slice(K(0)), Slice(K(30)), 0, &out).ok());
  EXPECT_EQ(out.size(), 29u);
  for (const auto& [key, value] : out) {
    EXPECT_NE(key, K(10));
  }
}

// ---- baselines ----

TEST(WriteBatchTest, BaselinesApplyBatches) {
  MemEnv env;
  DiskOptions disk;
  disk.env = &env;

  std::vector<std::unique_ptr<KVStore>> stores;
  {
    std::unique_ptr<KVStore> store;
    disk.path = "/ldb";
    ASSERT_TRUE(OpenLevelDBLike(1 << 20, disk, &store).ok());
    stores.push_back(std::move(store));
    disk.path = "/hldb";
    ASSERT_TRUE(OpenHyperLevelDBLike(1 << 20, disk, &store).ok());
    stores.push_back(std::move(store));
    disk.path = "/rdb";
    RocksDBLikeConfig rocks;
    rocks.memtable_bytes = 1 << 20;
    ASSERT_TRUE(OpenRocksDBLike(rocks, disk, &store).ok());
    stores.push_back(std::move(store));
    disk.path = "/clsm";
    rocks.clsm_mode = true;
    ASSERT_TRUE(OpenRocksDBLike(rocks, disk, &store).ok());
    stores.push_back(std::move(store));
  }

  for (const auto& store : stores) {
    WriteBatch batch;
    batch.Put(Slice(K(1)), Slice("one"));
    batch.Put(Slice(K(1)), Slice("two"));
    batch.Put(Slice(K(5)), Slice("five"));
    batch.Delete(Slice(K(5)));
    ASSERT_TRUE(store->Write(WriteOptions(), &batch).ok()) << store->Name();

    std::string value;
    ASSERT_TRUE(store->Get(Slice(K(1)), &value).ok()) << store->Name();
    EXPECT_EQ(value, "two") << store->Name();
    EXPECT_TRUE(store->Get(Slice(K(5)), &value).IsNotFound()) << store->Name();

    const StoreStats stats = store->GetStats();
    EXPECT_EQ(stats.batch_writes, 1u) << store->Name();
    EXPECT_EQ(stats.batch_entries, 4u) << store->Name();
  }
}

}  // namespace
}  // namespace flodb
