// ShardedLruCache semantics: LRU eviction order, charge accounting,
// pinned handles surviving eviction/erase, shard distribution,
// zero-capacity pass-through — plus the disk-component contract that a
// compaction-deleted table's blocks leave the block cache with it.

#include "flodb/common/cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "flodb/common/key_codec.h"
#include "flodb/core/memtable_iterator.h"
#include "flodb/disk/disk_component.h"
#include "flodb/disk/mem_env.h"
#include "flodb/mem/memtable.h"

namespace flodb {
namespace {

// Values are heap ints; the deleter counts invocations so tests can pin
// down exactly when entries die.
int g_deleted = 0;

void CountingDeleter(const Slice& /*key*/, void* value) {
  delete static_cast<int*>(value);
  ++g_deleted;
}

class CacheTest : public ::testing::Test {
 protected:
  void SetUp() override { g_deleted = 0; }

  // Inserts key -> heap int(v) with `charge` and releases the handle.
  void Insert(ShardedLruCache& cache, const std::string& key, int v, size_t charge = 1) {
    cache.Release(cache.Insert(Slice(key), new int(v), charge, &CountingDeleter));
  }

  // Looks up key; returns the value or -1 on miss. Releases the handle.
  int Get(ShardedLruCache& cache, const std::string& key) {
    ShardedLruCache::Handle* handle = cache.Lookup(Slice(key));
    if (handle == nullptr) {
      return -1;
    }
    const int v = *static_cast<int*>(cache.Value(handle));
    cache.Release(handle);
    return v;
  }
};

TEST_F(CacheTest, InsertLookupRoundTrip) {
  ShardedLruCache cache(1024);
  Insert(cache, "a", 1);
  Insert(cache, "b", 2);
  EXPECT_EQ(Get(cache, "a"), 1);
  EXPECT_EQ(Get(cache, "b"), 2);
  EXPECT_EQ(Get(cache, "missing"), -1);
  EXPECT_EQ(cache.TotalEntries(), 2u);
}

TEST_F(CacheTest, InsertReplacesExistingKey) {
  ShardedLruCache cache(1024);
  Insert(cache, "a", 1);
  Insert(cache, "a", 2);
  EXPECT_EQ(Get(cache, "a"), 2);
  EXPECT_EQ(cache.TotalEntries(), 1u);
  EXPECT_EQ(g_deleted, 1);  // the replaced value died
}

TEST_F(CacheTest, EraseRemovesEntry) {
  ShardedLruCache cache(1024);
  Insert(cache, "a", 1);
  cache.Erase(Slice("a"));
  EXPECT_EQ(Get(cache, "a"), -1);
  EXPECT_EQ(g_deleted, 1);
  cache.Erase(Slice("a"));  // absent key: no-op
  EXPECT_EQ(g_deleted, 1);
}

TEST_F(CacheTest, ChargeAccounting) {
  ShardedLruCache cache(1 << 20);
  Insert(cache, "small", 1, 100);
  Insert(cache, "large", 2, 5000);
  EXPECT_EQ(cache.TotalCharge(), 5100u);
  cache.Erase(Slice("small"));
  EXPECT_EQ(cache.TotalCharge(), 5000u);
  cache.Erase(Slice("large"));
  EXPECT_EQ(cache.TotalCharge(), 0u);
}

TEST_F(CacheTest, LruEvictionOrder) {
  // All keys in one shard so per-shard capacity applies deterministically:
  // probe keys until four land in shard 0, then cap that shard tightly.
  // Per-shard capacity = ceil(48/16) = 3 entries of charge 1.
  ShardedLruCache cache(48);
  std::vector<std::string> keys;
  for (int i = 0; keys.size() < 4 && i < 10000; ++i) {
    std::string candidate = "k" + std::to_string(i);
    if (cache.ShardOf(Slice(candidate)) == 0) {
      keys.push_back(candidate);
    }
  }
  ASSERT_EQ(keys.size(), 4u);
  Insert(cache, keys[0], 0);
  Insert(cache, keys[1], 1);
  Insert(cache, keys[2], 2);
  // Touch keys[0]: keys[1] becomes the LRU victim.
  EXPECT_EQ(Get(cache, keys[0]), 0);
  Insert(cache, keys[3], 3);
  EXPECT_EQ(Get(cache, keys[1]), -1);  // evicted
  EXPECT_EQ(Get(cache, keys[0]), 0);
  EXPECT_EQ(Get(cache, keys[2]), 2);
  EXPECT_EQ(Get(cache, keys[3]), 3);
  EXPECT_EQ(cache.GetStats().evictions, 1u);
}

TEST_F(CacheTest, PinnedHandleSurvivesEviction) {
  // One shard again for deterministic capacity pressure.
  ShardedLruCache cache(16);  // per-shard capacity: 1 entry of charge 1
  std::vector<std::string> keys;
  for (int i = 0; keys.size() < 5 && i < 10000; ++i) {
    std::string candidate = "p" + std::to_string(i);
    if (cache.ShardOf(Slice(candidate)) == 0) {
      keys.push_back(candidate);
    }
  }
  ASSERT_EQ(keys.size(), 5u);
  ShardedLruCache::Handle* pinned =
      cache.Insert(Slice(keys[0]), new int(42), 1, &CountingDeleter);

  // Push several more entries through the same shard: keys[0] cannot be
  // freed while pinned, even though it is far over capacity and later
  // inserts would love its slot.
  for (int i = 1; i < 5; ++i) {
    Insert(cache, keys[static_cast<size_t>(i)], i);
  }
  EXPECT_EQ(*static_cast<int*>(cache.Value(pinned)), 42);

  // Explicit erase while pinned: still alive through the handle.
  cache.Erase(Slice(keys[0]));
  EXPECT_EQ(*static_cast<int*>(cache.Value(pinned)), 42);
  const int deleted_before_release = g_deleted;

  cache.Release(pinned);
  EXPECT_EQ(g_deleted, deleted_before_release + 1);  // freed exactly now
  EXPECT_EQ(Get(cache, keys[0]), -1);                // and unreachable
}

TEST_F(CacheTest, PinnedChargeTracked) {
  ShardedLruCache cache(1 << 20);
  ShardedLruCache::Handle* pinned =
      cache.Insert(Slice("a"), new int(1), 500, &CountingDeleter);
  EXPECT_EQ(cache.GetStats().pinned_charge, 500u);
  cache.Release(pinned);
  EXPECT_EQ(cache.GetStats().pinned_charge, 0u);
  EXPECT_EQ(cache.TotalCharge(), 500u);  // still resident, just unpinned
}

TEST_F(CacheTest, ZeroCapacityPassThrough) {
  ShardedLruCache cache(0);
  ShardedLruCache::Handle* handle =
      cache.Insert(Slice("a"), new int(7), 100, &CountingDeleter);
  // The caller's handle works...
  EXPECT_EQ(*static_cast<int*>(cache.Value(handle)), 7);
  EXPECT_EQ(cache.GetStats().pinned_charge, 100u);
  // ...but nothing is retained.
  EXPECT_EQ(cache.TotalEntries(), 0u);
  EXPECT_EQ(cache.TotalCharge(), 0u);
  EXPECT_EQ(Get(cache, "a"), -1);
  cache.Release(handle);
  EXPECT_EQ(g_deleted, 1);
  EXPECT_EQ(cache.GetStats().pinned_charge, 0u);
}

TEST_F(CacheTest, ShardDistribution) {
  ShardedLruCache cache(1 << 20);
  for (int i = 0; i < 2000; ++i) {
    Insert(cache, "key-" + std::to_string(i), i);
  }
  // Every shard should hold a meaningful slice (expected 125 each); a
  // degenerate hash would pile everything into a few shards.
  for (int shard = 0; shard < ShardedLruCache::kNumShards; ++shard) {
    EXPECT_GT(cache.ShardCharge(static_cast<size_t>(shard)), 50u) << "shard " << shard;
  }
}

TEST_F(CacheTest, HitMissStats) {
  ShardedLruCache cache(1024);
  Insert(cache, "a", 1);
  EXPECT_EQ(Get(cache, "a"), 1);
  EXPECT_EQ(Get(cache, "a"), 1);
  EXPECT_EQ(Get(cache, "nope"), -1);
  const ShardedLruCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST_F(CacheTest, DestructorFreesResidentEntries) {
  {
    ShardedLruCache cache(1 << 20);
    for (int i = 0; i < 100; ++i) {
      Insert(cache, "d" + std::to_string(i), i);
    }
  }
  EXPECT_EQ(g_deleted, 100);
}

// ---------------------------------------------------------------------------
// DiskComponent integration: table deletion purges cached blocks.
// ---------------------------------------------------------------------------

class DiskCachePurgeTest : public ::testing::Test {
 protected:
  DiskOptions SmallDisk() {
    DiskOptions options;
    options.env = &env_;
    options.path = "/db";
    options.sstable_target_bytes = 64 << 10;
    options.block_bytes = 1024;
    options.l0_compaction_trigger = 4;
    options.block_cache_bytes = 1 << 20;
    options.compaction_threads = 1;
    return options;
  }

  void FlushRange(uint64_t lo, uint64_t hi, uint64_t seq_base, const std::string& tag) {
    MemTable table(1 << 20);
    for (uint64_t k = lo; k < hi; ++k) {
      table.Add(Slice(EncodeKey(k)), Slice(tag + std::to_string(k)), seq_base + (k - lo),
                ValueType::kValue);
    }
    MemTableIterator iter(&table);
    ASSERT_TRUE(disk_->AddRun(&iter).ok());
  }

  MemEnv env_;
  std::unique_ptr<DiskComponent> disk_;
};

TEST_F(DiskCachePurgeTest, CompactionDeletedTablesBlocksArePurged) {
  ASSERT_TRUE(DiskComponent::Open(SmallDisk(), &disk_).ok());

  // Three overlapping L0 runs; read every key so their blocks populate
  // the cache.
  FlushRange(0, 500, 1, "a");
  FlushRange(0, 500, 1000, "b");
  FlushRange(0, 500, 2000, "c");
  std::string value;
  for (uint64_t k = 0; k < 500; ++k) {
    ASSERT_TRUE(disk_->Get(Slice(EncodeKey(k)), &value, nullptr, nullptr).ok());
    EXPECT_EQ(value, "c" + std::to_string(k));
  }
  ASSERT_GT(disk_->block_cache()->TotalCharge(), 0u);

  // A fourth run trips the L0 trigger; the compaction merges all four
  // into L1 and deletes the inputs — whose blocks must leave the cache
  // with them. No reads happen after the compaction, so every surviving
  // cached block would belong to a deleted file.
  FlushRange(0, 500, 3000, "d");
  disk_->WaitForCompactions();

  EXPECT_EQ(disk_->block_cache()->TotalCharge(), 0u)
      << "blocks of compaction-deleted tables must be purged";
  EXPECT_EQ(disk_->block_cache()->TotalEntries(), 0u);

  // The data itself survived the purge, now served from the new L1 file.
  ASSERT_TRUE(disk_->Get(Slice(EncodeKey(123)), &value, nullptr, nullptr).ok());
  EXPECT_EQ(value, "d123");
  EXPECT_GT(disk_->block_cache()->TotalCharge(), 0u);
}

TEST_F(DiskCachePurgeTest, BoundedTableCacheEvictsAndReopens) {
  DiskOptions options = SmallDisk();
  options.table_cache_entries = 2;
  options.l0_compaction_trigger = 100;  // keep every run in L0
  options.compaction_threads = 0;
  ASSERT_TRUE(DiskComponent::Open(options, &disk_).ok());

  // Six disjoint runs -> six tables, but only two may be open at once.
  for (uint64_t i = 0; i < 6; ++i) {
    FlushRange(i * 100, (i + 1) * 100, 1 + i * 1000, "v");
  }
  // Two passes: the second revisits tables the first pass evicted, so
  // transparent reopens show up as misses beyond the initial six opens.
  std::string value;
  for (int round = 0; round < 2; ++round) {
    for (uint64_t k = 0; k < 600; ++k) {
      ASSERT_TRUE(disk_->Get(Slice(EncodeKey(k)), &value, nullptr, nullptr).ok());
      EXPECT_EQ(value, "v" + std::to_string(k));
    }
  }
  const DiskComponent::Stats stats = disk_->GetStats();
  EXPECT_LE(stats.table_cache_entries, 2u);
  EXPECT_GT(stats.table_cache_evictions, 0u);
  EXPECT_GT(stats.table_cache_misses, 6u);
}

TEST_F(DiskCachePurgeTest, BlockCacheDisabledServesReads) {
  DiskOptions options = SmallDisk();
  options.block_cache_bytes = 0;
  ASSERT_TRUE(DiskComponent::Open(options, &disk_).ok());
  EXPECT_EQ(disk_->block_cache(), nullptr);

  FlushRange(0, 200, 1, "x");
  std::string value;
  for (uint64_t k = 0; k < 200; ++k) {
    ASSERT_TRUE(disk_->Get(Slice(EncodeKey(k)), &value, nullptr, nullptr).ok());
    EXPECT_EQ(value, "x" + std::to_string(k));
  }
  const DiskComponent::Stats stats = disk_->GetStats();
  EXPECT_EQ(stats.block_cache_hits, 0u);
  EXPECT_EQ(stats.block_cache_misses, 0u);
}

TEST_F(DiskCachePurgeTest, RepeatedReadsHitBlockCache) {
  ASSERT_TRUE(DiskComponent::Open(SmallDisk(), &disk_).ok());
  FlushRange(0, 200, 1, "y");
  std::string value;
  for (int round = 0; round < 3; ++round) {
    for (uint64_t k = 0; k < 200; ++k) {
      ASSERT_TRUE(disk_->Get(Slice(EncodeKey(k)), &value, nullptr, nullptr).ok());
    }
  }
  const DiskComponent::Stats stats = disk_->GetStats();
  EXPECT_GT(stats.block_cache_hits, stats.block_cache_misses);
  EXPECT_GT(stats.BlockCacheHitRate(), 0.5);
}

}  // namespace
}  // namespace flodb
