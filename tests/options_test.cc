// FloDbOptions validation edge cases: FloDB::Open must reject nonsense
// configurations with InvalidArgument instead of crashing or silently
// misbehaving later.

#include "flodb/core/options.h"

#include <gtest/gtest.h>

#include <memory>

#include "flodb/core/flodb.h"
#include "flodb/core/sharded_store.h"
#include "flodb/disk/mem_env.h"

namespace flodb {
namespace {

class OptionsTest : public ::testing::Test {
 protected:
  FloDbOptions ValidOptions() {
    FloDbOptions options;
    options.memory_budget_bytes = 1 << 20;
    options.membuffer_fraction = 0.25;
    options.drain_threads = 1;
    options.disk.env = &env_;
    options.disk.path = "/db";
    return options;
  }

  Status Open(const FloDbOptions& options) {
    std::unique_ptr<FloDB> db;
    return FloDB::Open(options, &db);
  }

  MemEnv env_;
};

TEST_F(OptionsTest, ValidOptionsOpen) { EXPECT_TRUE(Open(ValidOptions()).ok()); }

TEST_F(OptionsTest, ZeroMemoryBudgetRejected) {
  FloDbOptions options = ValidOptions();
  options.memory_budget_bytes = 0;
  EXPECT_TRUE(Open(options).IsInvalidArgument());
}

TEST_F(OptionsTest, MembufferFractionZeroRejected) {
  FloDbOptions options = ValidOptions();
  options.membuffer_fraction = 0.0;
  EXPECT_TRUE(Open(options).IsInvalidArgument());
}

TEST_F(OptionsTest, MembufferFractionNegativeRejected) {
  FloDbOptions options = ValidOptions();
  options.membuffer_fraction = -0.5;
  EXPECT_TRUE(Open(options).IsInvalidArgument());
}

TEST_F(OptionsTest, MembufferFractionOneRejected) {
  FloDbOptions options = ValidOptions();
  options.membuffer_fraction = 1.0;
  EXPECT_TRUE(Open(options).IsInvalidArgument());
}

TEST_F(OptionsTest, MembufferFractionAboveOneRejected) {
  FloDbOptions options = ValidOptions();
  options.membuffer_fraction = 1.5;
  EXPECT_TRUE(Open(options).IsInvalidArgument());
}

TEST_F(OptionsTest, MembufferFractionJustInsideRangeAccepted) {
  FloDbOptions options = ValidOptions();
  options.membuffer_fraction = 0.01;
  EXPECT_TRUE(Open(options).ok());
  options.membuffer_fraction = 0.99;
  EXPECT_TRUE(Open(options).ok());
}

TEST_F(OptionsTest, ZeroDrainThreadsClampedToOne) {
  // The seed contract (relied on by flodb_ablation_test): 0 means "let
  // StartBackgroundThreads clamp to one thread", and draining still works.
  FloDbOptions options = ValidOptions();
  options.drain_threads = 0;
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok());
  ASSERT_TRUE(db->Put(Slice("key"), Slice("value")).ok());
  db->WaitUntilDrained();
  std::string value;
  ASSERT_TRUE(db->Get(Slice("key"), &value).ok());
  EXPECT_EQ(value, "value");
}

TEST_F(OptionsTest, NegativeDrainThreadsRejected) {
  FloDbOptions options = ValidOptions();
  options.drain_threads = -2;
  EXPECT_TRUE(Open(options).IsInvalidArgument());
}

TEST_F(OptionsTest, PersistenceWithoutEnvRejected) {
  FloDbOptions options = ValidOptions();
  options.disk.env = nullptr;
  EXPECT_TRUE(Open(options).IsInvalidArgument());
}

TEST_F(OptionsTest, PersistenceWithoutPathRejected) {
  FloDbOptions options = ValidOptions();
  options.disk.path.clear();
  EXPECT_TRUE(Open(options).IsInvalidArgument());
}

TEST_F(OptionsTest, WalRequiresPersistence) {
  FloDbOptions options = ValidOptions();
  options.enable_persistence = false;
  options.enable_wal = true;
  EXPECT_TRUE(Open(options).IsInvalidArgument());
}

TEST_F(OptionsTest, NoPersistenceNeedsNoDiskConfig) {
  FloDbOptions options;
  options.memory_budget_bytes = 1 << 20;
  options.enable_persistence = false;
  EXPECT_TRUE(Open(options).ok());
}

TEST_F(OptionsTest, ShardCountBelowOneRejected) {
  FloDbOptions options = ValidOptions();
  options.shards = 0;
  EXPECT_TRUE(Open(options).IsInvalidArgument());
  options.shards = -4;
  EXPECT_TRUE(Open(options).IsInvalidArgument());
  std::unique_ptr<ShardedKVStore> sharded;
  options.shards = 0;
  EXPECT_TRUE(ShardedKVStore::Open(options, &sharded).IsInvalidArgument());
}

TEST_F(OptionsTest, PlainOpenRejectsMultiShardConfigs) {
  // One FloDB is one shard; asking it for more must fail loudly instead of
  // silently serving a single instance (ShardedKVStore::Open is the facade).
  FloDbOptions options = ValidOptions();
  options.shards = 4;
  EXPECT_TRUE(Open(options).IsInvalidArgument());
}

TEST_F(OptionsTest, NonPowerOfTwoShardsRoundUp) {
  // The documented rounding rule: requested parallelism is a floor —
  // non-power-of-two counts round UP to the next power of two.
  FloDbOptions options = ValidOptions();
  options.shards = 6;
  std::unique_ptr<ShardedKVStore> sharded;
  ASSERT_TRUE(ShardedKVStore::Open(options, &sharded).ok());
  EXPECT_EQ(sharded->NumShards(), 8);
  options.shards = 8;
  ASSERT_TRUE(ShardedKVStore::Open(options, &sharded).ok());
  EXPECT_EQ(sharded->NumShards(), 8);
}

TEST_F(OptionsTest, ShardCountAboveCapRejected) {
  FloDbOptions options = ValidOptions();
  options.shards = ShardedKVStore::kMaxShards + 1;
  std::unique_ptr<ShardedKVStore> sharded;
  EXPECT_TRUE(ShardedKVStore::Open(options, &sharded).IsInvalidArgument());
}

TEST_F(OptionsTest, ZeroTableCacheEntriesRejected) {
  // Without open-table reuse every Get would reopen its file; the
  // degenerate config is a misconfiguration, not a mode.
  FloDbOptions options = ValidOptions();
  options.disk.table_cache_entries = 0;
  EXPECT_TRUE(Open(options).IsInvalidArgument());
  std::unique_ptr<ShardedKVStore> sharded;
  options.shards = 2;
  EXPECT_TRUE(ShardedKVStore::Open(options, &sharded).IsInvalidArgument());
}

TEST_F(OptionsTest, ZeroBloomBitsPerLevelEntryRejected) {
  // A zero entry would silently disable the filter for one level; the
  // way to spend fewer bits on cold levels is a small positive value.
  FloDbOptions options = ValidOptions();
  options.disk.bloom_bits_per_level = {12, 10, 0};
  EXPECT_TRUE(Open(options).IsInvalidArgument());
  options.shards = 2;
  std::unique_ptr<ShardedKVStore> sharded;
  EXPECT_TRUE(ShardedKVStore::Open(options, &sharded).IsInvalidArgument());
}

TEST_F(OptionsTest, PerLevelBloomBitsAccepted) {
  // Shorter-than-num_levels vectors are fine: deeper levels reuse the
  // last entry (see BloomBitsForLevel).
  FloDbOptions options = ValidOptions();
  options.disk.bloom_bits_per_level = {14, 12, 8};
  EXPECT_TRUE(Open(options).ok());
}

TEST_F(OptionsTest, ShardedOpenInstallsSharedCompactionLimiter) {
  FloDbOptions options = ValidOptions();
  options.memory_budget_bytes = 8u << 20;
  options.shards = 4;
  options.disk.compaction_threads = 2;
  std::unique_ptr<ShardedKVStore> sharded;
  ASSERT_TRUE(ShardedKVStore::Open(options, &sharded).ok());
  const std::shared_ptr<CompactionThreadLimiter> limiter =
      sharded->shard(0)->options().disk.compaction_limiter;
  ASSERT_NE(limiter, nullptr);
  EXPECT_EQ(limiter->max_concurrent(), 2);
  for (int i = 1; i < sharded->NumShards(); ++i) {
    // One limiter shared by every shard — not one per shard.
    EXPECT_EQ(sharded->shard(i)->options().disk.compaction_limiter, limiter) << i;
  }
}

TEST_F(OptionsTest, ZeroBlockCacheBytesDisablesCaching) {
  // 0 is a valid mode (block caching off), not an error.
  FloDbOptions options = ValidOptions();
  options.disk.block_cache_bytes = 0;
  EXPECT_TRUE(Open(options).ok());
}

TEST_F(OptionsTest, ShardedOpenSplitsCacheBudgets) {
  FloDbOptions options = ValidOptions();
  options.memory_budget_bytes = 8u << 20;
  options.shards = 4;
  options.disk.block_cache_bytes = 4u << 20;
  options.disk.table_cache_entries = 32;
  std::unique_ptr<ShardedKVStore> sharded;
  ASSERT_TRUE(ShardedKVStore::Open(options, &sharded).ok());
  for (int i = 0; i < sharded->NumShards(); ++i) {
    const DiskOptions& disk = sharded->shard(i)->options().disk;
    EXPECT_EQ(disk.block_cache_bytes, (4u << 20) / 4);
    EXPECT_EQ(disk.table_cache_entries, 8u);
  }
}

TEST_F(OptionsTest, ShardedCacheSplitRespectsFloors) {
  // A high shard count must not flip caching off (64KB floor) or strand
  // a shard without table handles (1-entry floor); an explicit 0 keeps
  // meaning "disabled" on every shard.
  FloDbOptions options = ValidOptions();
  options.memory_budget_bytes = 32u << 20;
  options.shards = 16;
  options.disk.block_cache_bytes = 256u << 10;  // 16KB per shard pre-floor
  options.disk.table_cache_entries = 4;         // 0 per shard pre-floor
  std::unique_ptr<ShardedKVStore> sharded;
  ASSERT_TRUE(ShardedKVStore::Open(options, &sharded).ok());
  for (int i = 0; i < sharded->NumShards(); ++i) {
    const DiskOptions& disk = sharded->shard(i)->options().disk;
    EXPECT_EQ(disk.block_cache_bytes, 64u << 10);
    EXPECT_EQ(disk.table_cache_entries, 1u);
  }

  options.disk.block_cache_bytes = 0;
  options.disk.path = "/db-nocache";  // fresh dir: topology manifest differs per config
  ASSERT_TRUE(ShardedKVStore::Open(options, &sharded).ok());
  for (int i = 0; i < sharded->NumShards(); ++i) {
    EXPECT_EQ(sharded->shard(i)->options().disk.block_cache_bytes, 0u);
  }
}

TEST_F(OptionsTest, NegativeValueSeparationThresholdRejected) {
  FloDbOptions options = ValidOptions();
  options.disk.value_separation_threshold = -1;
  EXPECT_TRUE(Open(options).IsInvalidArgument());
}

TEST_F(OptionsTest, ValueSeparationRequiresPersistence) {
  FloDbOptions options = ValidOptions();
  options.enable_persistence = false;
  options.disk.env = nullptr;
  options.disk.path.clear();
  options.disk.value_separation_threshold = 256;
  EXPECT_TRUE(Open(options).IsInvalidArgument());
}

TEST_F(OptionsTest, VlogGcGarbageRatioOutOfRangeRejected) {
  for (double ratio : {0.0, -0.5, 1.5}) {
    FloDbOptions options = ValidOptions();
    options.disk.value_separation_threshold = 256;
    options.disk.vlog_gc_garbage_ratio = ratio;
    EXPECT_TRUE(Open(options).IsInvalidArgument()) << "ratio " << ratio;
  }
}

TEST_F(OptionsTest, VlogGcGarbageRatioOneAccepted) {
  FloDbOptions options = ValidOptions();
  options.disk.path = "/db-vlog-ratio-one";
  options.disk.value_separation_threshold = 256;
  options.disk.vlog_gc_garbage_ratio = 1.0;
  EXPECT_TRUE(Open(options).ok());
}

}  // namespace
}  // namespace flodb
