#include "flodb/disk/merging_iterator.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "flodb/common/key_codec.h"
#include "flodb/mem/memtable.h"
#include "flodb/core/memtable_iterator.h"

namespace flodb {
namespace {

std::unique_ptr<MemTable> MakeTable(
    const std::vector<std::tuple<uint64_t, std::string, uint64_t>>& entries) {
  auto table = std::make_unique<MemTable>(1 << 20);
  for (const auto& [key, value, seq] : entries) {
    table->Add(Slice(EncodeKey(key)), Slice(value), seq, ValueType::kValue);
  }
  return table;
}

TEST(MergingIteratorTest, EmptyChildren) {
  std::vector<std::unique_ptr<Iterator>> children;
  auto merged = NewMergingIterator(std::move(children));
  merged->SeekToFirst();
  EXPECT_FALSE(merged->Valid());
}

TEST(MergingIteratorTest, SingleChildPassThrough) {
  auto t = MakeTable({{1, "a", 1}, {2, "b", 2}});
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(NewMemTableIterator(t.get()));
  auto merged = NewMergingIterator(std::move(children));
  merged->SeekToFirst();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(DecodeKey(merged->key()), 1u);
  merged->Next();
  EXPECT_EQ(DecodeKey(merged->key()), 2u);
  merged->Next();
  EXPECT_FALSE(merged->Valid());
}

TEST(MergingIteratorTest, InterleavedKeysMergeSorted) {
  auto t1 = MakeTable({{1, "a", 1}, {3, "c", 3}, {5, "e", 5}});
  auto t2 = MakeTable({{2, "b", 2}, {4, "d", 4}, {6, "f", 6}});
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(NewMemTableIterator(t1.get()));
  children.push_back(NewMemTableIterator(t2.get()));
  auto merged = NewMergingIterator(std::move(children));
  uint64_t expected = 1;
  for (merged->SeekToFirst(); merged->Valid(); merged->Next()) {
    EXPECT_EQ(DecodeKey(merged->key()), expected++);
  }
  EXPECT_EQ(expected, 7u);
}

TEST(MergingIteratorTest, DuplicateKeysHighestSeqFirst) {
  auto older = MakeTable({{1, "old", 5}});
  auto newer = MakeTable({{1, "new", 9}});
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(NewMemTableIterator(older.get()));
  children.push_back(NewMemTableIterator(newer.get()));
  auto merged = NewMergingIterator(std::move(children));
  merged->SeekToFirst();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(merged->value().ToString(), "new");
  EXPECT_EQ(merged->seq(), 9u);
  merged->Next();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(merged->value().ToString(), "old");
  merged->Next();
  EXPECT_FALSE(merged->Valid());
}

TEST(MergingIteratorTest, SeekAcrossChildren) {
  auto t1 = MakeTable({{10, "a", 1}, {30, "c", 3}});
  auto t2 = MakeTable({{20, "b", 2}, {40, "d", 4}});
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(NewMemTableIterator(t1.get()));
  children.push_back(NewMemTableIterator(t2.get()));
  auto merged = NewMergingIterator(std::move(children));
  merged->Seek(Slice(EncodeKey(25)));
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(DecodeKey(merged->key()), 30u);
  merged->Next();
  EXPECT_EQ(DecodeKey(merged->key()), 40u);
}

TEST(MergingIteratorTest, SkipEntriesWithKeyHelper) {
  auto t1 = MakeTable({{1, "v1", 1}, {2, "x", 2}});
  auto t2 = MakeTable({{1, "v2", 9}});
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(NewMemTableIterator(t1.get()));
  children.push_back(NewMemTableIterator(t2.get()));
  auto merged = NewMergingIterator(std::move(children));
  merged->SeekToFirst();
  ASSERT_TRUE(merged->Valid());
  // Pass the iterator's own key slice — the helper must pin it safely.
  SkipEntriesWithKey(merged.get(), merged->key());
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(DecodeKey(merged->key()), 2u);
}

TEST(MergingIteratorTest, ManyChildrenStress) {
  std::vector<std::unique_ptr<MemTable>> tables;
  std::vector<std::unique_ptr<Iterator>> children;
  constexpr int kTables = 16;
  constexpr uint64_t kPerTable = 100;
  for (int t = 0; t < kTables; ++t) {
    std::vector<std::tuple<uint64_t, std::string, uint64_t>> entries;
    for (uint64_t i = 0; i < kPerTable; ++i) {
      const uint64_t key = i * kTables + static_cast<uint64_t>(t);
      entries.emplace_back(key, "v", key + 1);
    }
    tables.push_back(MakeTable(entries));
    children.push_back(NewMemTableIterator(tables.back().get()));
  }
  auto merged = NewMergingIterator(std::move(children));
  uint64_t expected = 0;
  for (merged->SeekToFirst(); merged->Valid(); merged->Next()) {
    ASSERT_EQ(DecodeKey(merged->key()), expected++);
  }
  EXPECT_EQ(expected, kTables * kPerTable);
}

}  // namespace
}  // namespace flodb
