#include "flodb/disk/crc32c.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace flodb {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // Standard CRC32C check value: "123456789" -> 0xE3069283.
  EXPECT_EQ(crc32c::Value("123456789", 9), 0xE3069283u);

  // 32 zero bytes -> 0x8A9136AA (iSCSI test vector).
  char zeros[32] = {};
  EXPECT_EQ(crc32c::Value(zeros, sizeof(zeros)), 0x8A9136AAu);

  // 32 0xFF bytes -> 0x62A8AB43.
  char ffs[32];
  memset(ffs, 0xff, sizeof(ffs));
  EXPECT_EQ(crc32c::Value(ffs, sizeof(ffs)), 0x62A8AB43u);
}

TEST(Crc32cTest, ExtendComposesLikeConcatenation) {
  const std::string a = "hello ";
  const std::string b = "world";
  const uint32_t whole = crc32c::Value((a + b).data(), a.size() + b.size());
  const uint32_t chained = crc32c::Extend(crc32c::Value(a.data(), a.size()), b.data(), b.size());
  EXPECT_EQ(whole, chained);
}

TEST(Crc32cTest, DifferentInputsDiffer) {
  EXPECT_NE(crc32c::Value("a", 1), crc32c::Value("b", 1));
  EXPECT_NE(crc32c::Value("ab", 2), crc32c::Value("ba", 2));
}

TEST(Crc32cTest, MaskUnmaskRoundTrip) {
  for (uint32_t crc : {0u, 1u, 0xdeadbeefu, 0xffffffffu}) {
    EXPECT_EQ(crc32c::Unmask(crc32c::Mask(crc)), crc);
  }
}

TEST(Crc32cTest, MaskChangesValue) {
  const uint32_t crc = crc32c::Value("data", 4);
  EXPECT_NE(crc32c::Mask(crc), crc);
}

TEST(Crc32cTest, EmptyInput) {
  EXPECT_EQ(crc32c::Value("", 0), 0u);
}

}  // namespace
}  // namespace flodb
