// Crash recovery: WAL replay, manifest recovery, WAL rotation GC, and
// reopening after clean shutdowns.

#include <gtest/gtest.h>

#include <memory>

#include "flodb/bench_util/workload.h"
#include "flodb/common/key_codec.h"
#include "flodb/core/flodb.h"
#include "flodb/disk/mem_env.h"

namespace flodb {
namespace {

using bench::SpreadKey;

std::string K(uint64_t i) { return EncodeKey(SpreadKey(i, 1 << 20)); }

FloDbOptions WalOptions(MemEnv* env) {
  FloDbOptions options;
  options.memory_budget_bytes = 512 << 10;
  options.enable_wal = true;
  options.disk.env = env;
  options.disk.path = "/db";
  options.disk.sstable_target_bytes = 32 << 10;
  return options;
}

TEST(FloDBRecoveryTest, WalReplayRestoresAcknowledgedWrites) {
  MemEnv env;
  {
    std::unique_ptr<FloDB> db;
    ASSERT_TRUE(FloDB::Open(WalOptions(&env), &db).ok());
    for (uint64_t i = 0; i < 500; ++i) {
      ASSERT_TRUE(db->Put(Slice(K(i)), Slice("durable" + std::to_string(i))).ok());
    }
    // "Crash": destroy without FlushAll. The WAL file survives in env.
  }
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(WalOptions(&env), &db).ok());
  std::string value;
  for (uint64_t i = 0; i < 500; i += 23) {
    ASSERT_TRUE(db->Get(Slice(K(i)), &value).ok()) << i;
    EXPECT_EQ(value, "durable" + std::to_string(i));
  }
}

TEST(FloDBRecoveryTest, WalReplayLastWriteWins) {
  MemEnv env;
  {
    std::unique_ptr<FloDB> db;
    ASSERT_TRUE(FloDB::Open(WalOptions(&env), &db).ok());
    ASSERT_TRUE(db->Put(Slice(K(1)), Slice("first")).ok());
    ASSERT_TRUE(db->Put(Slice(K(1)), Slice("second")).ok());
    ASSERT_TRUE(db->Delete(Slice(K(2))).ok());
    ASSERT_TRUE(db->Put(Slice(K(2)), Slice("alive")).ok());
    ASSERT_TRUE(db->Put(Slice(K(3)), Slice("doomed")).ok());
    ASSERT_TRUE(db->Delete(Slice(K(3))).ok());
  }
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(WalOptions(&env), &db).ok());
  std::string value;
  ASSERT_TRUE(db->Get(Slice(K(1)), &value).ok());
  EXPECT_EQ(value, "second");
  ASSERT_TRUE(db->Get(Slice(K(2)), &value).ok());
  EXPECT_EQ(value, "alive");
  EXPECT_TRUE(db->Get(Slice(K(3)), &value).IsNotFound());
}

TEST(FloDBRecoveryTest, TruncatedWalTailIsTolerated) {
  MemEnv env;
  {
    std::unique_ptr<FloDB> db;
    ASSERT_TRUE(FloDB::Open(WalOptions(&env), &db).ok());
    for (uint64_t i = 0; i < 100; ++i) {
      ASSERT_TRUE(db->Put(Slice(K(i)), Slice("v")).ok());
    }
  }
  // Chop bytes off the live WAL (simulates a crash mid-append).
  std::vector<std::string> children;
  ASSERT_TRUE(env.GetChildren("/db", &children).ok());
  for (const std::string& name : children) {
    if (name.rfind("wal-", 0) == 0) {
      std::string data;
      ASSERT_TRUE(ReadFileToString(&env, "/db/" + name, &data).ok());
      data.resize(data.size() - 5);
      ASSERT_TRUE(WriteStringToFile(&env, Slice(data), "/db/" + name, false).ok());
    }
  }
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(WalOptions(&env), &db).ok());
  // All but (at most) the last record must be recovered.
  std::string value;
  for (uint64_t i = 0; i < 99; ++i) {
    EXPECT_TRUE(db->Get(Slice(K(i)), &value).ok()) << i;
  }
}

TEST(FloDBRecoveryTest, PersistedDataSurvivesWithoutWal) {
  MemEnv env;
  FloDbOptions options = WalOptions(&env);
  options.enable_wal = false;
  {
    std::unique_ptr<FloDB> db;
    ASSERT_TRUE(FloDB::Open(options, &db).ok());
    for (uint64_t i = 0; i < 2000; ++i) {
      ASSERT_TRUE(db->Put(Slice(K(i)), Slice(std::string(100, 'd'))).ok());
    }
    ASSERT_TRUE(db->FlushAll().ok());
  }
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok());
  std::string value;
  for (uint64_t i = 0; i < 2000; i += 113) {
    ASSERT_TRUE(db->Get(Slice(K(i)), &value).ok()) << i;
  }
}

TEST(FloDBRecoveryTest, SequenceCounterSeededPastPersistedData) {
  MemEnv env;
  FloDbOptions options = WalOptions(&env);
  options.enable_wal = false;
  uint64_t seq_before;
  {
    std::unique_ptr<FloDB> db;
    ASSERT_TRUE(FloDB::Open(options, &db).ok());
    for (uint64_t i = 0; i < 100; ++i) {
      ASSERT_TRUE(db->Put(Slice(K(i)), Slice("v")).ok());
    }
    ASSERT_TRUE(db->FlushAll().ok());
    seq_before = db->CurrentSeq();
  }
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok());
  EXPECT_GE(db->CurrentSeq(), seq_before)
      << "a reopened store must not reissue old sequence numbers";
  // New writes must shadow recovered ones.
  ASSERT_TRUE(db->Put(Slice(K(1)), Slice("after-reopen")).ok());
  std::string value;
  ASSERT_TRUE(db->Get(Slice(K(1)), &value).ok());
  EXPECT_EQ(value, "after-reopen");
}

TEST(FloDBRecoveryTest, OldWalFilesAreGarbageCollected) {
  MemEnv env;
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(WalOptions(&env), &db).ok());
  // Enough writes for several memtable swaps (and thus WAL rotations).
  for (uint64_t i = 0; i < 20'000; ++i) {
    ASSERT_TRUE(db->Put(Slice(K(i % 5000)), Slice(std::string(100, 'w'))).ok());
  }
  ASSERT_TRUE(db->FlushAll().ok());
  std::vector<std::string> children;
  ASSERT_TRUE(env.GetChildren("/db", &children).ok());
  int wal_files = 0;
  for (const std::string& name : children) {
    if (name.rfind("wal-", 0) == 0) {
      ++wal_files;
    }
  }
  EXPECT_LE(wal_files, 2) << "retired WALs must be deleted after their memtable persists";
}

TEST(FloDBRecoveryTest, RepeatedReopenCycles) {
  MemEnv env;
  FloDbOptions options = WalOptions(&env);
  for (int cycle = 0; cycle < 5; ++cycle) {
    std::unique_ptr<FloDB> db;
    ASSERT_TRUE(FloDB::Open(options, &db).ok());
    for (uint64_t i = 0; i < 100; ++i) {
      ASSERT_TRUE(db->Put(Slice(K(static_cast<uint64_t>(cycle) * 100 + i)),
                          Slice("c" + std::to_string(cycle)))
                      .ok());
    }
    // Check all previous cycles' data is still there.
    std::string value;
    for (int prev = 0; prev <= cycle; ++prev) {
      for (uint64_t i = 0; i < 100; i += 31) {
        ASSERT_TRUE(db->Get(Slice(K(static_cast<uint64_t>(prev) * 100 + i)), &value).ok())
            << "cycle " << cycle << " lost data from cycle " << prev;
        EXPECT_EQ(value, "c" + std::to_string(prev));
      }
    }
  }
}

}  // namespace
}  // namespace flodb
