// Crash recovery: WAL replay, manifest recovery, WAL rotation GC, and
// reopening after clean shutdowns.

#include <gtest/gtest.h>

#include <memory>

#include "flodb/bench_util/workload.h"
#include "flodb/common/key_codec.h"
#include "flodb/core/flodb.h"
#include "flodb/disk/mem_env.h"

namespace flodb {
namespace {

using bench::SpreadKey;

std::string K(uint64_t i) { return EncodeKey(SpreadKey(i, 1 << 20)); }

FloDbOptions WalOptions(MemEnv* env) {
  FloDbOptions options;
  options.memory_budget_bytes = 512 << 10;
  options.enable_wal = true;
  options.disk.env = env;
  options.disk.path = "/db";
  options.disk.sstable_target_bytes = 32 << 10;
  return options;
}

TEST(FloDBRecoveryTest, WalReplayRestoresAcknowledgedWrites) {
  MemEnv env;
  {
    std::unique_ptr<FloDB> db;
    ASSERT_TRUE(FloDB::Open(WalOptions(&env), &db).ok());
    for (uint64_t i = 0; i < 500; ++i) {
      ASSERT_TRUE(db->Put(Slice(K(i)), Slice("durable" + std::to_string(i))).ok());
    }
    // "Crash": destroy without FlushAll. The WAL file survives in env.
  }
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(WalOptions(&env), &db).ok());
  std::string value;
  for (uint64_t i = 0; i < 500; i += 23) {
    ASSERT_TRUE(db->Get(Slice(K(i)), &value).ok()) << i;
    EXPECT_EQ(value, "durable" + std::to_string(i));
  }
}

TEST(FloDBRecoveryTest, WalReplayLastWriteWins) {
  MemEnv env;
  {
    std::unique_ptr<FloDB> db;
    ASSERT_TRUE(FloDB::Open(WalOptions(&env), &db).ok());
    ASSERT_TRUE(db->Put(Slice(K(1)), Slice("first")).ok());
    ASSERT_TRUE(db->Put(Slice(K(1)), Slice("second")).ok());
    ASSERT_TRUE(db->Delete(Slice(K(2))).ok());
    ASSERT_TRUE(db->Put(Slice(K(2)), Slice("alive")).ok());
    ASSERT_TRUE(db->Put(Slice(K(3)), Slice("doomed")).ok());
    ASSERT_TRUE(db->Delete(Slice(K(3))).ok());
  }
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(WalOptions(&env), &db).ok());
  std::string value;
  ASSERT_TRUE(db->Get(Slice(K(1)), &value).ok());
  EXPECT_EQ(value, "second");
  ASSERT_TRUE(db->Get(Slice(K(2)), &value).ok());
  EXPECT_EQ(value, "alive");
  EXPECT_TRUE(db->Get(Slice(K(3)), &value).IsNotFound());
}

TEST(FloDBRecoveryTest, TruncatedWalTailIsTolerated) {
  MemEnv env;
  {
    std::unique_ptr<FloDB> db;
    ASSERT_TRUE(FloDB::Open(WalOptions(&env), &db).ok());
    for (uint64_t i = 0; i < 100; ++i) {
      ASSERT_TRUE(db->Put(Slice(K(i)), Slice("v")).ok());
    }
  }
  // Chop bytes off the live WAL (simulates a crash mid-append).
  std::vector<std::string> children;
  ASSERT_TRUE(env.GetChildren("/db", &children).ok());
  for (const std::string& name : children) {
    if (name.rfind("wal-", 0) == 0) {
      std::string data;
      ASSERT_TRUE(ReadFileToString(&env, "/db/" + name, &data).ok());
      data.resize(data.size() - 5);
      ASSERT_TRUE(WriteStringToFile(&env, Slice(data), "/db/" + name, false).ok());
    }
  }
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(WalOptions(&env), &db).ok());
  // All but (at most) the last record must be recovered.
  std::string value;
  for (uint64_t i = 0; i < 99; ++i) {
    EXPECT_TRUE(db->Get(Slice(K(i)), &value).ok()) << i;
  }
}

TEST(FloDBRecoveryTest, PersistedDataSurvivesWithoutWal) {
  MemEnv env;
  FloDbOptions options = WalOptions(&env);
  options.enable_wal = false;
  {
    std::unique_ptr<FloDB> db;
    ASSERT_TRUE(FloDB::Open(options, &db).ok());
    for (uint64_t i = 0; i < 2000; ++i) {
      ASSERT_TRUE(db->Put(Slice(K(i)), Slice(std::string(100, 'd'))).ok());
    }
    ASSERT_TRUE(db->FlushAll().ok());
  }
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok());
  std::string value;
  for (uint64_t i = 0; i < 2000; i += 113) {
    ASSERT_TRUE(db->Get(Slice(K(i)), &value).ok()) << i;
  }
}

TEST(FloDBRecoveryTest, SequenceCounterSeededPastPersistedData) {
  MemEnv env;
  FloDbOptions options = WalOptions(&env);
  options.enable_wal = false;
  uint64_t seq_before;
  {
    std::unique_ptr<FloDB> db;
    ASSERT_TRUE(FloDB::Open(options, &db).ok());
    for (uint64_t i = 0; i < 100; ++i) {
      ASSERT_TRUE(db->Put(Slice(K(i)), Slice("v")).ok());
    }
    ASSERT_TRUE(db->FlushAll().ok());
    seq_before = db->CurrentSeq();
  }
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok());
  EXPECT_GE(db->CurrentSeq(), seq_before)
      << "a reopened store must not reissue old sequence numbers";
  // New writes must shadow recovered ones.
  ASSERT_TRUE(db->Put(Slice(K(1)), Slice("after-reopen")).ok());
  std::string value;
  ASSERT_TRUE(db->Get(Slice(K(1)), &value).ok());
  EXPECT_EQ(value, "after-reopen");
}

TEST(FloDBRecoveryTest, OldWalFilesAreGarbageCollected) {
  MemEnv env;
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(WalOptions(&env), &db).ok());
  // Enough writes for several memtable swaps (and thus WAL rotations).
  for (uint64_t i = 0; i < 20'000; ++i) {
    ASSERT_TRUE(db->Put(Slice(K(i % 5000)), Slice(std::string(100, 'w'))).ok());
  }
  ASSERT_TRUE(db->FlushAll().ok());
  std::vector<std::string> children;
  ASSERT_TRUE(env.GetChildren("/db", &children).ok());
  int wal_files = 0;
  for (const std::string& name : children) {
    if (name.rfind("wal-", 0) == 0) {
      ++wal_files;
    }
  }
  EXPECT_LE(wal_files, 2) << "retired WALs must be deleted after their memtable persists";
}

TEST(FloDBRecoveryTest, BatchReplaysAtomicallyAcrossCrash) {
  // A WriteBatch is one CRC-framed WAL record: chopping the log anywhere
  // inside that record must drop the WHOLE batch on recovery, while every
  // earlier record stays intact. Each cut point replays the identical
  // write sequence into a fresh env, then truncates the live WAL.
  //
  // The batch record's physical size: 8-byte frame header + 1 tag byte +
  // 1 varint count byte (50 < 128) + rep bytes.
  WriteBatch reference;
  for (uint64_t i = 0; i < 50; ++i) {
    reference.Put(Slice(K(1000 + i)), Slice("batched"));
  }
  const size_t batch_record_bytes = 8 + 1 + 1 + reference.rep().size();

  // Cut 0 bytes (control), 1 byte (CRC framing kills the record), half
  // the record, and all but one byte of it.
  for (const size_t cut : {size_t{0}, size_t{1}, batch_record_bytes / 2,
                           batch_record_bytes - 1}) {
    MemEnv env;
    {
      std::unique_ptr<FloDB> db;
      ASSERT_TRUE(FloDB::Open(WalOptions(&env), &db).ok());
      for (uint64_t i = 0; i < 10; ++i) {
        ASSERT_TRUE(db->Put(Slice(K(i)), Slice("pre")).ok());
      }
      WriteBatch batch;
      for (uint64_t i = 0; i < 50; ++i) {
        batch.Put(Slice(K(1000 + i)), Slice("batched"));
      }
      ASSERT_TRUE(db->Write(WriteOptions(), &batch).ok());
      // "Crash": destroy without FlushAll; the WAL survives in env.
    }
    std::vector<std::string> children;
    ASSERT_TRUE(env.GetChildren("/db", &children).ok());
    for (const std::string& name : children) {
      if (name.rfind("wal-", 0) == 0 && cut > 0) {
        std::string data;
        ASSERT_TRUE(ReadFileToString(&env, "/db/" + name, &data).ok());
        ASSERT_GT(data.size(), cut);
        data.resize(data.size() - cut);
        ASSERT_TRUE(WriteStringToFile(&env, Slice(data), "/db/" + name, false).ok());
      }
    }

    std::unique_ptr<FloDB> db;
    ASSERT_TRUE(FloDB::Open(WalOptions(&env), &db).ok()) << "cut=" << cut;
    std::string value;
    // Every pre-batch single write must always survive.
    for (uint64_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(db->Get(Slice(K(i)), &value).ok()) << "cut=" << cut << " key=" << i;
      EXPECT_EQ(value, "pre");
    }
    // The batch is all-or-nothing: complete when untouched, absent
    // entirely for any cut inside its record.
    size_t batch_hits = 0;
    for (uint64_t i = 0; i < 50; ++i) {
      if (db->Get(Slice(K(1000 + i)), &value).ok()) {
        ++batch_hits;
      }
    }
    EXPECT_EQ(batch_hits, cut == 0 ? 50u : 0u)
        << "cut=" << cut << ": a torn batch record must never partially replay";
  }
}

TEST(FloDBRecoveryTest, MixedLegacyAndBatchRecordsReplayInOrder) {
  // Logs written before the batch record type existed (single-update
  // records) must still recover, interleaved with batch records in log
  // order — last write wins across record kinds.
  MemEnv env;
  env.CreateDir("/db");
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env.NewWritableFile("/db/wal-000001.log", &file).ok());
    WalWriter writer(std::move(file));
    ASSERT_TRUE(writer.AddUpdate(Slice(K(1)), Slice("legacy"), ValueType::kValue).ok());
    WriteBatch batch;
    batch.Put(Slice(K(1)), Slice("from-batch"));
    batch.Put(Slice(K(2)), Slice("batch-only"));
    batch.Delete(Slice(K(3)));
    ASSERT_TRUE(
        writer.AddBatch(static_cast<uint32_t>(batch.Count()), Slice(batch.rep())).ok());
    ASSERT_TRUE(writer.AddUpdate(Slice(K(2)), Slice("legacy-wins"), ValueType::kValue).ok());
    ASSERT_TRUE(writer.Close().ok());
  }

  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(WalOptions(&env), &db).ok());
  std::string value;
  ASSERT_TRUE(db->Get(Slice(K(1)), &value).ok());
  EXPECT_EQ(value, "from-batch") << "batch record must shadow the earlier legacy record";
  ASSERT_TRUE(db->Get(Slice(K(2)), &value).ok());
  EXPECT_EQ(value, "legacy-wins") << "later legacy record must shadow the batch entry";
  EXPECT_TRUE(db->Get(Slice(K(3)), &value).IsNotFound());
}

TEST(FloDBRecoveryTest, SyncedBatchSurvivesCrash) {
  MemEnv env;
  {
    std::unique_ptr<FloDB> db;
    ASSERT_TRUE(FloDB::Open(WalOptions(&env), &db).ok());
    WriteOptions sync_options;
    sync_options.sync = true;
    WriteBatch batch;
    for (uint64_t i = 0; i < 20; ++i) {
      batch.Put(Slice(K(i)), Slice("synced"));
    }
    ASSERT_TRUE(db->Write(sync_options, &batch).ok());
  }
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(WalOptions(&env), &db).ok());
  std::string value;
  for (uint64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(db->Get(Slice(K(i)), &value).ok()) << i;
    EXPECT_EQ(value, "synced");
  }
}

TEST(FloDBRecoveryTest, RepeatedReopenCycles) {
  MemEnv env;
  FloDbOptions options = WalOptions(&env);
  for (int cycle = 0; cycle < 5; ++cycle) {
    std::unique_ptr<FloDB> db;
    ASSERT_TRUE(FloDB::Open(options, &db).ok());
    for (uint64_t i = 0; i < 100; ++i) {
      ASSERT_TRUE(db->Put(Slice(K(static_cast<uint64_t>(cycle) * 100 + i)),
                          Slice("c" + std::to_string(cycle)))
                      .ok());
    }
    // Check all previous cycles' data is still there.
    std::string value;
    for (int prev = 0; prev <= cycle; ++prev) {
      for (uint64_t i = 0; i < 100; i += 31) {
        ASSERT_TRUE(db->Get(Slice(K(static_cast<uint64_t>(prev) * 100 + i)), &value).ok())
            << "cycle " << cycle << " lost data from cycle " << prev;
        EXPECT_EQ(value, "c" + std::to_string(prev));
      }
    }
  }
}

}  // namespace
}  // namespace flodb
