// SSTable builder/reader: round-trips, block boundaries, seeks, bloom
// integration, corruption detection.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "flodb/common/key_codec.h"
#include "flodb/disk/mem_env.h"
#include "flodb/disk/table_builder.h"
#include "flodb/disk/table_format.h"
#include "flodb/disk/table_reader.h"

namespace flodb {
namespace {

class TableTest : public ::testing::Test {
 protected:
  // Builds a table from model entries (key -> (value, seq, type)).
  void Build(const std::map<std::string, std::tuple<std::string, uint64_t, ValueType>>& entries,
             size_t block_bytes = 4096) {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_.NewWritableFile("/table", &file).ok());
    TableBuilder::Options options;
    options.block_bytes = block_bytes;
    TableBuilder builder(options, file.get());
    for (const auto& [key, rest] : entries) {
      const auto& [value, seq, type] = rest;
      builder.Add(Slice(key), seq, type, Slice(value));
    }
    ASSERT_TRUE(builder.Finish().ok());
    ASSERT_TRUE(file->Close().ok());
    file_size_ = builder.FileSize();
    entry_count_ = builder.NumEntries();
  }

  std::unique_ptr<TableReader> OpenTable(const std::string& name = "/table") {
    std::unique_ptr<RandomAccessFile> file;
    EXPECT_TRUE(env_.NewRandomAccessFile(name, &file).ok());
    uint64_t size;
    EXPECT_TRUE(env_.GetFileSize(name, &size).ok());
    std::unique_ptr<TableReader> reader;
    EXPECT_TRUE(TableReader::Open(std::move(file), size, &reader).ok());
    return reader;
  }

  MemEnv env_;
  uint64_t file_size_ = 0;
  uint64_t entry_count_ = 0;
};

std::map<std::string, std::tuple<std::string, uint64_t, ValueType>> MakeEntries(int n) {
  std::map<std::string, std::tuple<std::string, uint64_t, ValueType>> entries;
  for (int i = 0; i < n; ++i) {
    const uint64_t k = static_cast<uint64_t>(i) * 3;
    entries[EncodeKey(k)] = {"value" + std::to_string(k), static_cast<uint64_t>(i + 1),
                             ValueType::kValue};
  }
  return entries;
}

TEST_F(TableTest, RoundTripSmall) {
  auto entries = MakeEntries(10);
  Build(entries);
  auto reader = OpenTable();
  ASSERT_NE(reader, nullptr);
  EXPECT_EQ(reader->NumEntries(), 10u);

  for (const auto& [key, rest] : entries) {
    std::string value;
    uint64_t seq;
    ValueType type;
    ASSERT_TRUE(reader->Get(Slice(key), &value, &seq, &type).ok()) << DecodeKey(Slice(key));
    EXPECT_EQ(value, std::get<0>(rest));
    EXPECT_EQ(seq, std::get<1>(rest));
  }
}

TEST_F(TableTest, MissingKeysReturnNotFound) {
  Build(MakeEntries(100));
  auto reader = OpenTable();
  // Keys between the stride, below smallest, above largest.
  EXPECT_TRUE(reader->Get(Slice(EncodeKey(1)), nullptr, nullptr, nullptr).IsNotFound());
  EXPECT_TRUE(reader->Get(Slice(EncodeKey(1'000'000)), nullptr, nullptr, nullptr).IsNotFound());
}

TEST_F(TableTest, MultiBlockTable) {
  auto entries = MakeEntries(5000);
  Build(entries, /*block_bytes=*/512);  // forces many blocks
  auto reader = OpenTable();
  EXPECT_EQ(reader->NumEntries(), 5000u);
  std::string value;
  for (int i = 0; i < 5000; i += 113) {
    const std::string key = EncodeKey(static_cast<uint64_t>(i) * 3);
    ASSERT_TRUE(reader->Get(Slice(key), &value, nullptr, nullptr).ok()) << i;
    EXPECT_EQ(value, std::get<0>(entries[key]));
  }
}

TEST_F(TableTest, IteratorFullWalk) {
  auto entries = MakeEntries(2000);
  Build(entries, 1024);
  auto reader = OpenTable();
  auto iter = reader->NewIterator();
  auto expected = entries.begin();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++expected) {
    ASSERT_NE(expected, entries.end());
    EXPECT_EQ(iter->key().ToString(), expected->first);
    EXPECT_EQ(iter->value().ToString(), std::get<0>(expected->second));
    EXPECT_EQ(iter->seq(), std::get<1>(expected->second));
  }
  EXPECT_EQ(expected, entries.end());
  EXPECT_TRUE(iter->status().ok());
}

TEST_F(TableTest, IteratorSeek) {
  Build(MakeEntries(1000), 512);
  auto reader = OpenTable();
  auto iter = reader->NewIterator();

  // Exact hit.
  iter->Seek(Slice(EncodeKey(300)));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(DecodeKey(iter->key()), 300u);

  // Between keys: next greater (stride 3 => 301 -> 303).
  iter->Seek(Slice(EncodeKey(301)));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(DecodeKey(iter->key()), 303u);

  // Before first.
  iter->Seek(Slice(EncodeKey(0)));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(DecodeKey(iter->key()), 0u);

  // After last.
  iter->Seek(Slice(EncodeKey(999'999)));
  EXPECT_FALSE(iter->Valid());
}

TEST_F(TableTest, TombstonesRoundTrip) {
  std::map<std::string, std::tuple<std::string, uint64_t, ValueType>> entries;
  entries[EncodeKey(1)] = {"", 1, ValueType::kTombstone};
  entries[EncodeKey(2)] = {"live", 2, ValueType::kValue};
  Build(entries);
  auto reader = OpenTable();
  ValueType type;
  ASSERT_TRUE(reader->Get(Slice(EncodeKey(1)), nullptr, nullptr, &type).ok());
  EXPECT_EQ(type, ValueType::kTombstone);
  ASSERT_TRUE(reader->Get(Slice(EncodeKey(2)), nullptr, nullptr, &type).ok());
  EXPECT_EQ(type, ValueType::kValue);
}

TEST_F(TableTest, BuilderTracksMetadata) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_.NewWritableFile("/t2", &file).ok());
  TableBuilder builder(TableBuilder::Options{}, file.get());
  builder.Add(Slice(EncodeKey(10)), 5, ValueType::kValue, Slice("a"));
  builder.Add(Slice(EncodeKey(20)), 9, ValueType::kValue, Slice("b"));
  builder.Add(Slice(EncodeKey(30)), 2, ValueType::kValue, Slice("c"));
  ASSERT_TRUE(builder.Finish().ok());
  EXPECT_EQ(builder.smallest_key().ToString(), EncodeKey(10));
  EXPECT_EQ(builder.largest_key().ToString(), EncodeKey(30));
  EXPECT_EQ(builder.smallest_seq(), 2u);
  EXPECT_EQ(builder.largest_seq(), 9u);
  EXPECT_EQ(builder.NumEntries(), 3u);
  EXPECT_GT(builder.FileSize(), 0u);
}

TEST_F(TableTest, CorruptDataBlockDetected) {
  Build(MakeEntries(100));
  std::string data;
  ASSERT_TRUE(ReadFileToString(&env_, "/table", &data).ok());
  data[10] = static_cast<char>(data[10] ^ 0x1);  // flip a bit in block 0
  ASSERT_TRUE(WriteStringToFile(&env_, Slice(data), "/corrupt", false).ok());

  auto reader = OpenTable("/corrupt");
  ASSERT_NE(reader, nullptr);  // footer/index intact
  Status s = reader->Get(Slice(EncodeKey(0)), nullptr, nullptr, nullptr);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST_F(TableTest, BadMagicRejected) {
  Build(MakeEntries(10));
  std::string data;
  ASSERT_TRUE(ReadFileToString(&env_, "/table", &data).ok());
  data[data.size() - 1] = static_cast<char>(data[data.size() - 1] ^ 0xff);
  ASSERT_TRUE(WriteStringToFile(&env_, Slice(data), "/badmagic", false).ok());

  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env_.NewRandomAccessFile("/badmagic", &file).ok());
  std::unique_ptr<TableReader> reader;
  Status s = TableReader::Open(std::move(file), data.size(), &reader);
  EXPECT_TRUE(s.IsCorruption());
}

TEST_F(TableTest, TooSmallFileRejected) {
  ASSERT_TRUE(WriteStringToFile(&env_, Slice("tiny"), "/tiny", false).ok());
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env_.NewRandomAccessFile("/tiny", &file).ok());
  std::unique_ptr<TableReader> reader;
  EXPECT_TRUE(TableReader::Open(std::move(file), 4, &reader).IsCorruption());
}

TEST_F(TableTest, EmptyValueAndLargeValue) {
  std::map<std::string, std::tuple<std::string, uint64_t, ValueType>> entries;
  entries[EncodeKey(1)] = {"", 1, ValueType::kValue};
  entries[EncodeKey(2)] = {std::string(100'000, 'L'), 2, ValueType::kValue};
  Build(entries);
  auto reader = OpenTable();
  std::string value;
  ASSERT_TRUE(reader->Get(Slice(EncodeKey(1)), &value, nullptr, nullptr).ok());
  EXPECT_TRUE(value.empty());
  ASSERT_TRUE(reader->Get(Slice(EncodeKey(2)), &value, nullptr, nullptr).ok());
  EXPECT_EQ(value.size(), 100'000u);
}

// Parameterized block-size sweep: the format must round-trip at any block
// granularity.
class TableBlockSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(TableBlockSweep, RoundTrip) {
  MemEnv env;
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env.NewWritableFile("/t", &file).ok());
  TableBuilder::Options options;
  options.block_bytes = GetParam();
  TableBuilder builder(options, file.get());
  constexpr int kN = 777;
  for (int i = 0; i < kN; ++i) {
    builder.Add(Slice(EncodeKey(static_cast<uint64_t>(i))), static_cast<uint64_t>(i + 1),
                ValueType::kValue, Slice("v" + std::to_string(i)));
  }
  ASSERT_TRUE(builder.Finish().ok());
  ASSERT_TRUE(file->Close().ok());

  std::unique_ptr<RandomAccessFile> raf;
  ASSERT_TRUE(env.NewRandomAccessFile("/t", &raf).ok());
  std::unique_ptr<TableReader> reader;
  ASSERT_TRUE(TableReader::Open(std::move(raf), builder.FileSize(), &reader).ok());
  std::string value;
  for (int i = 0; i < kN; i += 31) {
    ASSERT_TRUE(
        reader->Get(Slice(EncodeKey(static_cast<uint64_t>(i))), &value, nullptr, nullptr).ok());
    EXPECT_EQ(value, "v" + std::to_string(i));
  }
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, TableBlockSweep,
                         ::testing::Values(64, 256, 1024, 4096, 65536));

}  // namespace
}  // namespace flodb
