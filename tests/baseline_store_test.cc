// BaselineStore conformance across all four concurrency designs
// (LevelDB, HyperLevelDB, RocksDB, cLSM) and both memtable kinds:
// the same KVStore semantics must hold regardless of synchronization.

#include "flodb/baselines/baseline_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "flodb/baselines/hyperleveldb_like.h"
#include "flodb/baselines/leveldb_like.h"
#include "flodb/baselines/rocksdb_like.h"
#include "flodb/bench_util/workload.h"
#include "flodb/common/key_codec.h"
#include "flodb/disk/mem_env.h"

namespace flodb {
namespace {

using bench::SpreadKey;
using Concurrency = BaselineOptions::Concurrency;

std::string K(uint64_t i) { return EncodeKey(SpreadKey(i, 1 << 20)); }

struct StoreParam {
  Concurrency concurrency;
  BaselineMemTable::Kind kind;
  const char* name;
};

class BaselineStoreTest : public ::testing::TestWithParam<StoreParam> {
 protected:
  void Open() {
    BaselineOptions options;
    options.name = GetParam().name;
    options.concurrency = GetParam().concurrency;
    options.memtable_kind = GetParam().kind;
    options.memtable_bytes = 256 << 10;
    options.disk.env = &env_;
    options.disk.path = "/db";
    options.disk.sstable_target_bytes = 32 << 10;
    options.disk.block_bytes = 1024;
    ASSERT_TRUE(BaselineStore::Open(options, &store_).ok());
  }

  MemEnv env_;
  std::unique_ptr<BaselineStore> store_;
};

TEST_P(BaselineStoreTest, PutGetDelete) {
  Open();
  ASSERT_TRUE(store_->Put(Slice(K(1)), Slice("v1")).ok());
  std::string value;
  ASSERT_TRUE(store_->Get(Slice(K(1)), &value).ok());
  EXPECT_EQ(value, "v1");
  ASSERT_TRUE(store_->Delete(Slice(K(1))).ok());
  EXPECT_TRUE(store_->Get(Slice(K(1)), &value).IsNotFound());
}

TEST_P(BaselineStoreTest, VariableLengthKeysScanInUserKeyOrder) {
  // Regression for the internal-key comparator (DESIGN.md §10 era fix):
  // a key and a NUL-extension of it ("x" vs "x\0y") must order by user
  // key across Get, Scan and the streaming iterator — through the
  // memtable AND after a flush to disk.
  Open();
  const std::string k_short("x");
  const std::string k_nul_ext(std::string("x") + '\0' + 'y');
  const std::string k_ext("xa");
  ASSERT_TRUE(store_->Put(Slice(k_ext), Slice("v-ext")).ok());
  ASSERT_TRUE(store_->Put(Slice(k_short), Slice("v-short")).ok());
  ASSERT_TRUE(store_->Put(Slice(k_nul_ext), Slice("v-nul")).ok());
  ASSERT_TRUE(store_->Put(Slice(k_short), Slice("v-short2")).ok());

  for (const bool flushed : {false, true}) {
    if (flushed) {
      ASSERT_TRUE(store_->FlushAll().ok());
    }
    std::string value;
    ASSERT_TRUE(store_->Get(Slice(k_short), &value).ok()) << "flushed=" << flushed;
    EXPECT_EQ(value, "v-short2");
    ASSERT_TRUE(store_->Get(Slice(k_nul_ext), &value).ok()) << "flushed=" << flushed;
    EXPECT_EQ(value, "v-nul");

    std::vector<std::pair<std::string, std::string>> out;
    ASSERT_TRUE(store_->Scan(Slice("w"), Slice("y"), 0, &out).ok());
    ASSERT_EQ(out.size(), 3u) << "flushed=" << flushed;
    EXPECT_EQ(out[0].first, k_short);
    EXPECT_EQ(out[0].second, "v-short2");
    EXPECT_EQ(out[1].first, k_nul_ext);
    EXPECT_EQ(out[2].first, k_ext);

    auto iter = store_->NewScanIterator(ReadOptions(), Slice("w"), Slice("y"));
    std::vector<std::string> streamed;
    for (; iter->Valid(); iter->Next()) {
      streamed.push_back(iter->key().ToString());
    }
    ASSERT_TRUE(iter->status().ok());
    EXPECT_EQ(streamed, (std::vector<std::string>{k_short, k_nul_ext, k_ext}))
        << "flushed=" << flushed;
  }
}

TEST_P(BaselineStoreTest, OverwriteKeepsLatest) {
  Open();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store_->Put(Slice(K(5)), Slice("v" + std::to_string(i))).ok());
  }
  std::string value;
  ASSERT_TRUE(store_->Get(Slice(K(5)), &value).ok());
  EXPECT_EQ(value, "v99");
}

TEST_P(BaselineStoreTest, DataSurvivesFlushToDisk) {
  Open();
  const std::string payload(300, 'p');
  for (uint64_t i = 0; i < 3000; ++i) {
    ASSERT_TRUE(store_->Put(Slice(K(i)), Slice(payload)).ok());
  }
  ASSERT_TRUE(store_->FlushAll().ok());
  EXPECT_GT(store_->GetStats().disk.flushes, 0u);
  std::string value;
  for (uint64_t i = 0; i < 3000; i += 111) {
    ASSERT_TRUE(store_->Get(Slice(K(i)), &value).ok()) << i;
    EXPECT_EQ(value, payload);
  }
}

TEST_P(BaselineStoreTest, ScanReturnsSortedRange) {
  Open();
  for (uint64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(store_->Put(Slice(K(i)), Slice("s" + std::to_string(i))).ok());
  }
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(store_->Scan(Slice(K(50)), Slice(K(150)), 0, &out).ok());
  ASSERT_EQ(out.size(), 100u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].first, K(50 + i));
    EXPECT_EQ(out[i].second, "s" + std::to_string(50 + i));
  }
}

TEST_P(BaselineStoreTest, ScanElidesTombstonesAndOldVersions) {
  Open();
  for (uint64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(store_->Put(Slice(K(i)), Slice("old")).ok());
  }
  for (uint64_t i = 0; i < 20; i += 2) {
    ASSERT_TRUE(store_->Put(Slice(K(i)), Slice("new")).ok());
  }
  ASSERT_TRUE(store_->Delete(Slice(K(5))).ok());
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(store_->Scan(Slice(K(0)), Slice(K(20)), 0, &out).ok());
  EXPECT_EQ(out.size(), 19u);
  for (const auto& [key, value] : out) {
    const uint64_t logical = DecodeKey(Slice(key)) / ((~uint64_t{0}) / (1 << 20));
    EXPECT_NE(logical, 5u);
    EXPECT_EQ(value, logical % 2 == 0 ? "new" : "old");
  }
}

TEST_P(BaselineStoreTest, ScanWithLimit) {
  Open();
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(store_->Put(Slice(K(i)), Slice("v")).ok());
  }
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(store_->Scan(Slice(K(0)), Slice(), 7, &out).ok());
  EXPECT_EQ(out.size(), 7u);
}

TEST_P(BaselineStoreTest, ConcurrentWritersAllWritesSurvive) {
  Open();
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 1500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      KeyBuf buf;
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const uint64_t key = static_cast<uint64_t>(t) * kPerThread + i;
        ASSERT_TRUE(store_->Put(Slice(K(key)), Slice("t" + std::to_string(t))).ok());
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  std::string value;
  for (int t = 0; t < kThreads; ++t) {
    for (uint64_t i = 0; i < kPerThread; i += 97) {
      const uint64_t key = static_cast<uint64_t>(t) * kPerThread + i;
      ASSERT_TRUE(store_->Get(Slice(K(key)), &value).ok()) << key;
      EXPECT_EQ(value, "t" + std::to_string(t));
    }
  }
}

TEST_P(BaselineStoreTest, ReadersDuringWritesNeverError) {
  Open();
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::thread writer([&] {
    Random64 rng(1);
    while (!stop.load()) {
      store_->Put(Slice(K(rng.Uniform(500))), Slice("w"));
    }
  });
  std::thread reader([&] {
    Random64 rng(2);
    std::string value;
    while (!stop.load()) {
      Status s = store_->Get(Slice(K(rng.Uniform(500))), &value);
      if (!s.ok() && !s.IsNotFound()) {
        failed.store(true);
      }
    }
  });
  std::this_thread::sleep_for(std::chrono::seconds(1));
  stop.store(true);
  writer.join();
  reader.join();
  EXPECT_FALSE(failed.load());
}

TEST_P(BaselineStoreTest, ScansDuringWritesAreSnapshots) {
  Open();
  for (uint64_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(store_->Put(Slice(K(i)), Slice("11111111")).ok());
  }
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Random64 rng(3);
    int i = 0;
    while (!stop.load()) {
      const char digit = static_cast<char>('2' + (i++ % 8));
      store_->Put(Slice(K(rng.Uniform(300))), Slice(std::string(8, digit)));
    }
  });
  for (int round = 0; round < 10; ++round) {
    std::vector<std::pair<std::string, std::string>> out;
    ASSERT_TRUE(store_->Scan(Slice(K(0)), Slice(K(300)), 0, &out).ok());
    EXPECT_EQ(out.size(), 300u);
    for (const auto& [key, value] : out) {
      for (char c : value) {
        ASSERT_EQ(c, value[0]) << "torn value: multi-versioned scan must be consistent";
      }
    }
  }
  stop.store(true);
  writer.join();
}

TEST_P(BaselineStoreTest, ChunkedIteratorMatchesScan) {
  Open();
  for (uint64_t i = 0; i < 400; ++i) {
    ASSERT_TRUE(store_->Put(Slice(K(i)), Slice("v" + std::to_string(i))).ok());
  }
  for (uint64_t i = 0; i < 400; i += 5) {
    ASSERT_TRUE(store_->Delete(Slice(K(i))).ok());
  }

  std::vector<std::pair<std::string, std::string>> expected;
  ASSERT_TRUE(store_->Scan(Slice(), Slice(), 0, &expected).ok());

  ReadOptions ropts;
  ropts.scan_chunk_size = 32;  // force many resume boundaries
  auto it = store_->NewScanIterator(ropts, Slice(), Slice());
  std::vector<std::pair<std::string, std::string>> streamed;
  for (; it->Valid(); it->Next()) {
    streamed.emplace_back(it->key().ToString(), it->value().ToString());
  }
  ASSERT_TRUE(it->status().ok());
  // chunk size + the one-entry resume overlap of the generic iterator
  EXPECT_LE(it->MaxBufferedEntries(), 33u);
  EXPECT_EQ(streamed, expected);
  EXPECT_EQ(store_->GetStats().iterator_scans, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, BaselineStoreTest,
    ::testing::Values(
        StoreParam{Concurrency::kLevelDB, BaselineMemTable::Kind::kSkipList, "LevelDB"},
        StoreParam{Concurrency::kHyperLevelDB, BaselineMemTable::Kind::kSkipList, "Hyper"},
        StoreParam{Concurrency::kRocksDB, BaselineMemTable::Kind::kSkipList, "RocksDB"},
        StoreParam{Concurrency::kRocksDB, BaselineMemTable::Kind::kHashTable, "RocksDBHash"},
        StoreParam{Concurrency::kCLSM, BaselineMemTable::Kind::kSkipList, "CLSM"}),
    [](const ::testing::TestParamInfo<StoreParam>& info) { return info.param.name; });

TEST(BaselineFactoriesTest, OpenAllFactories) {
  MemEnv env;
  DiskOptions disk;
  disk.env = &env;

  disk.path = "/ldb";
  std::unique_ptr<KVStore> ldb;
  ASSERT_TRUE(OpenLevelDBLike(1 << 20, disk, &ldb).ok());
  EXPECT_EQ(ldb->Name(), "LevelDB-like");

  disk.path = "/hld";
  std::unique_ptr<KVStore> hld;
  ASSERT_TRUE(OpenHyperLevelDBLike(1 << 20, disk, &hld).ok());
  EXPECT_EQ(hld->Name(), "HyperLevelDB-like");

  disk.path = "/rdb";
  std::unique_ptr<KVStore> rdb;
  RocksDBLikeConfig config;
  ASSERT_TRUE(OpenRocksDBLike(config, disk, &rdb).ok());
  EXPECT_EQ(rdb->Name(), "RocksDB-like");

  disk.path = "/clsm";
  config.clsm_mode = true;
  std::unique_ptr<KVStore> clsm;
  ASSERT_TRUE(OpenRocksDBLike(config, disk, &clsm).ok());
  EXPECT_EQ(clsm->Name(), "RocksDB/cLSM-like");

  // Smoke-test each through the interface.
  for (KVStore* store : {ldb.get(), hld.get(), rdb.get(), clsm.get()}) {
    ASSERT_TRUE(store->Put(Slice(K(1)), Slice("v")).ok()) << store->Name();
    std::string value;
    ASSERT_TRUE(store->Get(Slice(K(1)), &value).ok()) << store->Name();
    EXPECT_EQ(value, "v");
  }
}

}  // namespace
}  // namespace flodb
