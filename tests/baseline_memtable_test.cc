// BaselineMemTable: multi-versioned semantics for both kinds (skiplist,
// hash table), internal-key encoding, snapshot reads, sorted iteration.

#include "flodb/baselines/baseline_memtable.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "flodb/common/key_codec.h"

namespace flodb {
namespace {

TEST(InternalKeyTest, EncodingOrdersSeqDescending) {
  std::string a, b;
  AppendInternalKey(&a, Slice("key"), 10);
  AppendInternalKey(&b, Slice("key"), 5);
  EXPECT_LT(Slice(a).compare(Slice(b)), 0) << "higher seq must sort first";
  EXPECT_EQ(ExtractUserKey(Slice(a)).ToString(), "key");
  EXPECT_EQ(ExtractSeq(Slice(a)), 10u);
  EXPECT_EQ(ExtractSeq(Slice(b)), 5u);
}

TEST(InternalKeyTest, DifferentUserKeysOrderByKey) {
  std::string a, b;
  AppendInternalKey(&a, Slice(EncodeKey(1)), 1);
  AppendInternalKey(&b, Slice(EncodeKey(2)), 100);
  EXPECT_LT(Slice(a).compare(Slice(b)), 0);
}

class BaselineMemTableTest : public ::testing::TestWithParam<BaselineMemTable::Kind> {
 protected:
  BaselineMemTable::Kind kind() const { return GetParam(); }
};

TEST_P(BaselineMemTableTest, AddGetNewestVersion) {
  BaselineMemTable table(kind(), 1 << 20);
  table.Add(Slice(EncodeKey(1)), Slice("v1"), 1, ValueType::kValue);
  table.Add(Slice(EncodeKey(1)), Slice("v2"), 2, ValueType::kValue);
  std::string value;
  uint64_t seq;
  ValueType type;
  ASSERT_TRUE(table.Get(Slice(EncodeKey(1)), UINT64_MAX, &value, &seq, &type));
  EXPECT_EQ(value, "v2");
  EXPECT_EQ(seq, 2u);
}

TEST_P(BaselineMemTableTest, SnapshotReadsSeeOldVersions) {
  BaselineMemTable table(kind(), 1 << 20);
  table.Add(Slice(EncodeKey(1)), Slice("v1"), 10, ValueType::kValue);
  table.Add(Slice(EncodeKey(1)), Slice("v2"), 20, ValueType::kValue);
  table.Add(Slice(EncodeKey(1)), Slice("v3"), 30, ValueType::kValue);
  std::string value;
  ASSERT_TRUE(table.Get(Slice(EncodeKey(1)), 25, &value, nullptr, nullptr));
  EXPECT_EQ(value, "v2");
  ASSERT_TRUE(table.Get(Slice(EncodeKey(1)), 10, &value, nullptr, nullptr));
  EXPECT_EQ(value, "v1");
  EXPECT_FALSE(table.Get(Slice(EncodeKey(1)), 5, &value, nullptr, nullptr));
}

TEST_P(BaselineMemTableTest, MultiVersioningGrowsMemory) {
  // The paper's point (§3.2): repeated updates of one key fill the
  // baseline memory component.
  BaselineMemTable table(kind(), 1 << 20);
  const size_t before = table.ApproximateBytes();
  for (uint64_t i = 0; i < 1000; ++i) {
    table.Add(Slice(EncodeKey(7)), Slice(std::string(64, 'x')), i + 1, ValueType::kValue);
  }
  EXPECT_EQ(table.Count(), 1000u) << "every version is kept";
  EXPECT_GE(table.ApproximateBytes(), before + 1000 * 64);
}

TEST_P(BaselineMemTableTest, MissingKey) {
  BaselineMemTable table(kind(), 1 << 20);
  table.Add(Slice(EncodeKey(1)), Slice("v"), 1, ValueType::kValue);
  EXPECT_FALSE(table.Get(Slice(EncodeKey(2)), UINT64_MAX, nullptr, nullptr, nullptr));
}

TEST_P(BaselineMemTableTest, TombstonesAreVersions) {
  BaselineMemTable table(kind(), 1 << 20);
  table.Add(Slice(EncodeKey(1)), Slice("v"), 1, ValueType::kValue);
  table.Add(Slice(EncodeKey(1)), Slice(), 2, ValueType::kTombstone);
  ValueType type;
  ASSERT_TRUE(table.Get(Slice(EncodeKey(1)), UINT64_MAX, nullptr, nullptr, &type));
  EXPECT_EQ(type, ValueType::kTombstone);
  // Older snapshot still sees the live value.
  std::string value;
  ASSERT_TRUE(table.Get(Slice(EncodeKey(1)), 1, &value, nullptr, &type));
  EXPECT_EQ(type, ValueType::kValue);
}

TEST_P(BaselineMemTableTest, SortedIteratorIsKeyAscSeqDesc) {
  BaselineMemTable table(kind(), 1 << 20);
  table.Add(Slice(EncodeKey(2)), Slice("b1"), 1, ValueType::kValue);
  table.Add(Slice(EncodeKey(1)), Slice("a2"), 4, ValueType::kValue);
  table.Add(Slice(EncodeKey(1)), Slice("a1"), 2, ValueType::kValue);
  table.Add(Slice(EncodeKey(2)), Slice("b2"), 3, ValueType::kValue);

  auto iter = table.NewSortedIterator();
  iter->SeekToFirst();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(DecodeKey(iter->key()), 1u);
  EXPECT_EQ(iter->seq(), 4u);
  iter->Next();
  EXPECT_EQ(DecodeKey(iter->key()), 1u);
  EXPECT_EQ(iter->seq(), 2u);
  iter->Next();
  EXPECT_EQ(DecodeKey(iter->key()), 2u);
  EXPECT_EQ(iter->seq(), 3u);
  iter->Next();
  EXPECT_EQ(DecodeKey(iter->key()), 2u);
  EXPECT_EQ(iter->seq(), 1u);
  iter->Next();
  EXPECT_FALSE(iter->Valid());
}

TEST_P(BaselineMemTableTest, SortedIteratorSeek) {
  BaselineMemTable table(kind(), 1 << 20);
  for (uint64_t k = 0; k < 100; ++k) {
    table.Add(Slice(EncodeKey(k * 2)), Slice("v"), k + 1, ValueType::kValue);
  }
  auto iter = table.NewSortedIterator();
  iter->Seek(Slice(EncodeKey(51)));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(DecodeKey(iter->key()), 52u);
}

TEST_P(BaselineMemTableTest, ConcurrentAddsKeepAllVersions) {
  BaselineMemTable table(kind(), 16 << 20);
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 2000;
  std::atomic<uint64_t> seq{1};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      KeyBuf buf;
      Random64 rng(static_cast<uint64_t>(
          std::hash<std::thread::id>{}(std::this_thread::get_id())));
      for (uint64_t i = 0; i < kPerThread; ++i) {
        table.Add(buf.Set(rng.Uniform(100)), Slice("cv"), seq.fetch_add(1), ValueType::kValue);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(table.Count(), kThreads * kPerThread);

  // Sorted iterator yields exactly that many entries, ordered.
  auto iter = table.NewSortedIterator();
  uint64_t n = 0;
  std::string prev_key;
  uint64_t prev_seq = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    const std::string k = iter->key().ToString();
    if (n > 0) {
      if (k == prev_key) {
        ASSERT_LT(iter->seq(), prev_seq) << "same key must be seq-desc";
      } else {
        ASSERT_GT(k, prev_key);
      }
    }
    prev_key = k;
    prev_seq = iter->seq();
    ++n;
  }
  EXPECT_EQ(n, kThreads * kPerThread);
}

TEST_P(BaselineMemTableTest, VariableLengthKeysOrderCorrectly) {
  // The historical bug: internal keys (user_key ++ ~seq) compared as raw
  // bytes let the ~seq suffix of "x" collide with the tail of "x\0y",
  // inverting their order. The two-part comparator must order user keys
  // first, regardless of length or embedded NULs.
  BaselineMemTable table(kind(), 1 << 20);
  const std::string k_short("x");
  const std::string k_nul_ext(std::string("x") + '\0' + 'y');
  const std::string k_ext("xa");
  const std::string k_empty;
  table.Add(Slice(k_ext), Slice("v-ext"), 1, ValueType::kValue);
  table.Add(Slice(k_short), Slice("v-short"), 2, ValueType::kValue);
  table.Add(Slice(k_nul_ext), Slice("v-nul"), 3, ValueType::kValue);
  table.Add(Slice(k_empty), Slice("v-empty"), 4, ValueType::kValue);
  // A newer version of the short key: must shadow, not interleave.
  table.Add(Slice(k_short), Slice("v-short2"), 5, ValueType::kValue);

  std::string value;
  uint64_t seq;
  ValueType type;
  ASSERT_TRUE(table.Get(Slice(k_short), 100, &value, &seq, &type));
  EXPECT_EQ(value, "v-short2");
  ASSERT_TRUE(table.Get(Slice(k_nul_ext), 100, &value, &seq, &type));
  EXPECT_EQ(value, "v-nul");
  ASSERT_TRUE(table.Get(Slice(k_empty), 100, &value, &seq, &type));
  EXPECT_EQ(value, "v-empty");
  // Snapshot below the newer version still sees the old one.
  ASSERT_TRUE(table.Get(Slice(k_short), 2, &value, &seq, &type));
  EXPECT_EQ(value, "v-short");

  // Full iteration: user keys ascending ("" < "x" < "x\0y" < "xa"),
  // versions of one key seq-descending.
  auto iter = table.NewSortedIterator();
  std::vector<std::pair<std::string, uint64_t>> got;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    got.emplace_back(iter->key().ToString(), iter->seq());
  }
  const std::vector<std::pair<std::string, uint64_t>> want = {
      {k_empty, 4}, {k_short, 5}, {k_short, 2}, {k_nul_ext, 3}, {k_ext, 1}};
  EXPECT_EQ(got, want);

  // Seek lands on the first version of the first user key >= target.
  iter->Seek(Slice(k_short));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key().ToString(), k_short);
  EXPECT_EQ(iter->seq(), 5u);
}

TEST_P(BaselineMemTableTest, OverTargetSignalsFull) {
  BaselineMemTable table(kind(), 8 << 10);
  EXPECT_FALSE(table.OverTarget());
  for (uint64_t i = 0; i < 200; ++i) {
    table.Add(Slice(EncodeKey(i)), Slice(std::string(100, 'f')), i + 1, ValueType::kValue);
  }
  EXPECT_TRUE(table.OverTarget());
}

INSTANTIATE_TEST_SUITE_P(Kinds, BaselineMemTableTest,
                         ::testing::Values(BaselineMemTable::Kind::kSkipList,
                                           BaselineMemTable::Kind::kHashTable),
                         [](const ::testing::TestParamInfo<BaselineMemTable::Kind>& info) {
                           return info.param == BaselineMemTable::Kind::kSkipList ? "SkipList"
                                                                                  : "HashTable";
                         });

}  // namespace
}  // namespace flodb
