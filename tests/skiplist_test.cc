// Single-threaded semantics of ConcurrentSkipList: insert, in-place
// update with the max-seq rule, lookups, iteration, seeks.

#include "flodb/mem/skiplist.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "flodb/common/key_codec.h"
#include "flodb/common/random.h"

namespace flodb {
namespace {

class SkipListTest : public ::testing::Test {
 protected:
  ConcurrentArena arena_;
  ConcurrentSkipList list_{&arena_};
};

TEST_F(SkipListTest, EmptyListLookupMisses) {
  EXPECT_FALSE(list_.Get(Slice("absent"), nullptr, nullptr, nullptr));
  EXPECT_EQ(list_.Count(), 0u);
}

TEST_F(SkipListTest, InsertThenGet) {
  EXPECT_TRUE(list_.Insert(Slice("key1"), Slice("value1"), 1, ValueType::kValue));
  std::string value;
  uint64_t seq;
  ValueType type;
  ASSERT_TRUE(list_.Get(Slice("key1"), &value, &seq, &type));
  EXPECT_EQ(value, "value1");
  EXPECT_EQ(seq, 1u);
  EXPECT_EQ(type, ValueType::kValue);
  EXPECT_EQ(list_.Count(), 1u);
}

TEST_F(SkipListTest, InsertExistingKeyUpdatesInPlace) {
  list_.Insert(Slice("k"), Slice("v1"), 1, ValueType::kValue);
  EXPECT_FALSE(list_.Insert(Slice("k"), Slice("v2"), 2, ValueType::kValue));
  std::string value;
  uint64_t seq;
  ASSERT_TRUE(list_.Get(Slice("k"), &value, &seq, nullptr));
  EXPECT_EQ(value, "v2");
  EXPECT_EQ(seq, 2u);
  EXPECT_EQ(list_.Count(), 1u) << "in-place update must not add nodes";
}

TEST_F(SkipListTest, LowerSeqUpdateIsIgnored) {
  // The max-seq rule: a late-arriving older value (e.g. a stale drained
  // copy) must never overwrite a newer one.
  list_.Insert(Slice("k"), Slice("new"), 10, ValueType::kValue);
  list_.Insert(Slice("k"), Slice("old"), 5, ValueType::kValue);
  std::string value;
  uint64_t seq;
  ASSERT_TRUE(list_.Get(Slice("k"), &value, &seq, nullptr));
  EXPECT_EQ(value, "new");
  EXPECT_EQ(seq, 10u);
}

TEST(SkipListDeadPointerTest, SupersededPointerVersionsAreReported) {
  // Whenever a kValuePointer cell loses the max-seq race — displaced by a
  // newer version, or arriving stale — its vlog record just became
  // unreachable from memory; the dead-pointer hook must see it so the
  // bytes count toward vlog GC (in-memory deaths never reach a flush or
  // compaction dedup).
  std::vector<std::string> reported;
  ConcurrentArena arena;
  ConcurrentSkipList list(&arena, 0x5eed, nullptr,
                          [&](const Slice& v) { reported.emplace_back(v.data(), v.size()); });

  // Newer pointer displaces older pointer: the old one is dead.
  list.Insert(Slice("k"), Slice("ptr-a"), 1, ValueType::kValuePointer);
  list.Insert(Slice("k"), Slice("ptr-b"), 2, ValueType::kValuePointer);
  ASSERT_EQ(reported.size(), 1u);
  EXPECT_EQ(reported[0], "ptr-a");

  // A stale lower-seq pointer arrival loses the race: the LOSER is dead.
  list.Insert(Slice("k"), Slice("ptr-stale"), 1, ValueType::kValuePointer);
  ASSERT_EQ(reported.size(), 2u);
  EXPECT_EQ(reported[1], "ptr-stale");

  // An inline value displacing a pointer kills the pointer...
  list.Insert(Slice("k"), Slice("inline"), 3, ValueType::kValue);
  ASSERT_EQ(reported.size(), 3u);
  EXPECT_EQ(reported[2], "ptr-b");

  // ...but a displaced inline value reports nothing.
  list.Insert(Slice("k"), Slice("ptr-c"), 4, ValueType::kValuePointer);
  EXPECT_EQ(reported.size(), 3u);

  // Deletes kill pointers too.
  list.Insert(Slice("k"), Slice(), 5, ValueType::kTombstone);
  ASSERT_EQ(reported.size(), 4u);
  EXPECT_EQ(reported[3], "ptr-c");
}

TEST_F(SkipListTest, TombstoneStoredAndReadable) {
  list_.Insert(Slice("k"), Slice(), 1, ValueType::kTombstone);
  ValueType type;
  ASSERT_TRUE(list_.Get(Slice("k"), nullptr, nullptr, &type));
  EXPECT_EQ(type, ValueType::kTombstone);
}

TEST_F(SkipListTest, IterationIsSorted) {
  Random64 rng(5);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t k = rng.Uniform(10'000);
    std::string key = EncodeKey(k);
    std::string value = "v" + std::to_string(k);
    list_.Insert(Slice(key), Slice(value), static_cast<uint64_t>(i + 1), ValueType::kValue);
    model[key] = value;
  }
  EXPECT_EQ(list_.Count(), model.size());

  ConcurrentSkipList::Iterator iter(&list_);
  auto expected = model.begin();
  for (iter.SeekToFirst(); iter.Valid(); iter.Next(), ++expected) {
    ASSERT_NE(expected, model.end());
    EXPECT_EQ(iter.key().ToString(), expected->first);
    EXPECT_EQ(iter.value().ToString(), expected->second);
  }
  EXPECT_EQ(expected, model.end());
}

TEST_F(SkipListTest, SeekFindsFirstKeyNotLess) {
  for (uint64_t k : {10u, 20u, 30u}) {
    std::string key = EncodeKey(k);
    list_.Insert(Slice(key), Slice("v"), k, ValueType::kValue);
  }
  ConcurrentSkipList::Iterator iter(&list_);

  iter.Seek(Slice(EncodeKey(15)));
  ASSERT_TRUE(iter.Valid());
  EXPECT_EQ(DecodeKey(iter.key()), 20u);

  iter.Seek(Slice(EncodeKey(20)));
  ASSERT_TRUE(iter.Valid());
  EXPECT_EQ(DecodeKey(iter.key()), 20u);

  iter.Seek(Slice(EncodeKey(31)));
  EXPECT_FALSE(iter.Valid());

  iter.Seek(Slice(EncodeKey(0)));
  ASSERT_TRUE(iter.Valid());
  EXPECT_EQ(DecodeKey(iter.key()), 10u);
}

TEST_F(SkipListTest, SeekOnEmptyListIsInvalid) {
  ConcurrentSkipList::Iterator iter(&list_);
  iter.SeekToFirst();
  EXPECT_FALSE(iter.Valid());
  iter.Seek(Slice("x"));
  EXPECT_FALSE(iter.Valid());
}

TEST_F(SkipListTest, IteratorSeesCellConsistently) {
  std::string key = EncodeKey(1);
  list_.Insert(Slice(key), Slice("first"), 1, ValueType::kValue);
  ConcurrentSkipList::Iterator iter(&list_);
  iter.SeekToFirst();
  ASSERT_TRUE(iter.Valid());
  // Update the node; the iterator holds the old cell until repositioned —
  // (value, seq) must stay mutually consistent.
  list_.Insert(Slice(key), Slice("second"), 2, ValueType::kValue);
  if (iter.seq() == 1) {
    EXPECT_EQ(iter.value().ToString(), "first");
  } else {
    EXPECT_EQ(iter.value().ToString(), "second");
  }
}

TEST_F(SkipListTest, ApproximateBytesGrows) {
  const size_t before = list_.ApproximateBytes();
  list_.Insert(Slice("key"), Slice(std::string(1000, 'x')), 1, ValueType::kValue);
  EXPECT_GE(list_.ApproximateBytes(), before + 1000);
}

TEST_F(SkipListTest, ManySequentialInserts) {
  for (uint64_t k = 0; k < 5000; ++k) {
    list_.Insert(Slice(EncodeKey(k)), Slice("v"), k + 1, ValueType::kValue);
  }
  EXPECT_EQ(list_.Count(), 5000u);
  std::string value;
  for (uint64_t k = 0; k < 5000; k += 97) {
    EXPECT_TRUE(list_.Get(Slice(EncodeKey(k)), &value, nullptr, nullptr));
  }
  EXPECT_FALSE(list_.Get(Slice(EncodeKey(5000)), nullptr, nullptr, nullptr));
}

TEST_F(SkipListTest, ReverseOrderInserts) {
  for (uint64_t k = 1000; k-- > 0;) {
    list_.Insert(Slice(EncodeKey(k)), Slice("v"), 1000 - k, ValueType::kValue);
  }
  EXPECT_EQ(list_.Count(), 1000u);
  ConcurrentSkipList::Iterator iter(&list_);
  iter.SeekToFirst();
  uint64_t expected = 0;
  for (; iter.Valid(); iter.Next()) {
    EXPECT_EQ(DecodeKey(iter.key()), expected++);
  }
  EXPECT_EQ(expected, 1000u);
}

TEST_F(SkipListTest, EmptyValueRoundTrips) {
  list_.Insert(Slice("k"), Slice(), 1, ValueType::kValue);
  std::string value = "sentinel";
  ASSERT_TRUE(list_.Get(Slice("k"), &value, nullptr, nullptr));
  EXPECT_TRUE(value.empty());
}

TEST_F(SkipListTest, LargeValuesSurvive) {
  const std::string big(1 << 20, 'B');
  list_.Insert(Slice("big"), Slice(big), 1, ValueType::kValue);
  std::string value;
  ASSERT_TRUE(list_.Get(Slice("big"), &value, nullptr, nullptr));
  EXPECT_EQ(value, big);
}

}  // namespace
}  // namespace flodb
