// FloDB end-to-end basics: put/get/delete through all five levels
// (Membuffer, immutable Membuffer, Memtable, immutable Memtable, disk),
// spill behaviour, freshest-wins ordering, flush, and configuration
// validation.

#include "flodb/core/flodb.h"

#include <gtest/gtest.h>

#include <memory>

#include "flodb/bench_util/workload.h"
#include "flodb/common/key_codec.h"
#include "flodb/disk/mem_env.h"

namespace flodb {
namespace {

using bench::SpreadKey;

class FloDBTest : public ::testing::Test {
 protected:
  FloDbOptions SmallOptions() {
    FloDbOptions options;
    options.memory_budget_bytes = 1 << 20;
    options.membuffer_fraction = 0.25;
    options.drain_threads = 1;
    options.disk.env = &env_;
    options.disk.path = "/db";
    options.disk.l1_max_bytes = 64 << 10;
    options.disk.sstable_target_bytes = 32 << 10;
    options.disk.block_bytes = 1024;
    return options;
  }

  void Open(const FloDbOptions& options) { ASSERT_TRUE(FloDB::Open(options, &db_).ok()); }

  // Keys spread across the 64-bit domain so Membuffer partitions engage.
  static std::string K(uint64_t i) { return EncodeKey(SpreadKey(i, 1 << 20)); }

  MemEnv env_;
  std::unique_ptr<FloDB> db_;
};

TEST_F(FloDBTest, PutGetRoundTrip) {
  Open(SmallOptions());
  ASSERT_TRUE(db_->Put(Slice(K(1)), Slice("value1")).ok());
  std::string value;
  ASSERT_TRUE(db_->Get(Slice(K(1)), &value).ok());
  EXPECT_EQ(value, "value1");
}

TEST_F(FloDBTest, GetMissingKey) {
  Open(SmallOptions());
  std::string value;
  EXPECT_TRUE(db_->Get(Slice(K(404)), &value).IsNotFound());
}

TEST_F(FloDBTest, OverwriteReturnsLatest) {
  Open(SmallOptions());
  ASSERT_TRUE(db_->Put(Slice(K(1)), Slice("old")).ok());
  ASSERT_TRUE(db_->Put(Slice(K(1)), Slice("new")).ok());
  std::string value;
  ASSERT_TRUE(db_->Get(Slice(K(1)), &value).ok());
  EXPECT_EQ(value, "new");
}

TEST_F(FloDBTest, DeleteHidesKey) {
  Open(SmallOptions());
  ASSERT_TRUE(db_->Put(Slice(K(1)), Slice("v")).ok());
  ASSERT_TRUE(db_->Delete(Slice(K(1))).ok());
  std::string value;
  EXPECT_TRUE(db_->Get(Slice(K(1)), &value).IsNotFound());
}

TEST_F(FloDBTest, DeleteOfMissingKeyIsOk) {
  Open(SmallOptions());
  EXPECT_TRUE(db_->Delete(Slice(K(999))).ok());
  std::string value;
  EXPECT_TRUE(db_->Get(Slice(K(999)), &value).IsNotFound());
}

TEST_F(FloDBTest, PutAfterDeleteResurrects) {
  Open(SmallOptions());
  ASSERT_TRUE(db_->Put(Slice(K(1)), Slice("v1")).ok());
  ASSERT_TRUE(db_->Delete(Slice(K(1))).ok());
  ASSERT_TRUE(db_->Put(Slice(K(1)), Slice("v2")).ok());
  std::string value;
  ASSERT_TRUE(db_->Get(Slice(K(1)), &value).ok());
  EXPECT_EQ(value, "v2");
}

TEST_F(FloDBTest, MostWritesCompleteInMembuffer) {
  Open(SmallOptions());
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(db_->Put(Slice(K(i)), Slice("v")).ok());
  }
  const StoreStats stats = db_->GetStats();
  EXPECT_EQ(stats.puts, 1000u);
  EXPECT_GT(stats.membuffer_adds, stats.memtable_direct_adds)
      << "with a working drain, the Membuffer absorbs the bulk of writes";
}

TEST_F(FloDBTest, DataSurvivesDrainToMemtable) {
  Open(SmallOptions());
  for (uint64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(db_->Put(Slice(K(i)), Slice("v" + std::to_string(i))).ok());
  }
  db_->WaitUntilDrained();
  EXPECT_EQ(db_->MembufferLiveEntries(), 0u);
  std::string value;
  for (uint64_t i = 0; i < 500; i += 17) {
    ASSERT_TRUE(db_->Get(Slice(K(i)), &value).ok()) << i;
    EXPECT_EQ(value, "v" + std::to_string(i));
  }
}

TEST_F(FloDBTest, DataSurvivesPersistenceToDisk) {
  Open(SmallOptions());
  const std::string value_300(300, 'x');
  // Write enough to overflow the memtable target several times.
  for (uint64_t i = 0; i < 10'000; ++i) {
    ASSERT_TRUE(db_->Put(Slice(K(i)), Slice(value_300)).ok());
  }
  ASSERT_TRUE(db_->FlushAll().ok());
  const StoreStats stats = db_->GetStats();
  EXPECT_GT(stats.disk.flushes, 0u) << "memtables must have been persisted";
  std::string value;
  for (uint64_t i = 0; i < 10'000; i += 333) {
    ASSERT_TRUE(db_->Get(Slice(K(i)), &value).ok()) << i;
    EXPECT_EQ(value, value_300);
  }
}

TEST_F(FloDBTest, FreshestWinsAcrossAllLevels) {
  Open(SmallOptions());
  // Old version forced all the way to disk...
  ASSERT_TRUE(db_->Put(Slice(K(7)), Slice("disk-version")).ok());
  ASSERT_TRUE(db_->FlushAll().ok());
  // ...newer version in the memtable...
  ASSERT_TRUE(db_->Put(Slice(K(7)), Slice("mem-version")).ok());
  db_->WaitUntilDrained();
  std::string value;
  ASSERT_TRUE(db_->Get(Slice(K(7)), &value).ok());
  EXPECT_EQ(value, "mem-version");
  // ...newest version still in the membuffer.
  ASSERT_TRUE(db_->Put(Slice(K(7)), Slice("buffer-version")).ok());
  ASSERT_TRUE(db_->Get(Slice(K(7)), &value).ok());
  EXPECT_EQ(value, "buffer-version");
}

TEST_F(FloDBTest, TombstoneShadowsDiskValue) {
  Open(SmallOptions());
  ASSERT_TRUE(db_->Put(Slice(K(5)), Slice("persisted")).ok());
  ASSERT_TRUE(db_->FlushAll().ok());
  ASSERT_TRUE(db_->Delete(Slice(K(5))).ok());
  std::string value;
  EXPECT_TRUE(db_->Get(Slice(K(5)), &value).IsNotFound());
  // And after the tombstone itself reaches disk:
  ASSERT_TRUE(db_->FlushAll().ok());
  EXPECT_TRUE(db_->Get(Slice(K(5)), &value).IsNotFound());
}

TEST_F(FloDBTest, InPlaceUpdatesDoNotGrowMembuffer) {
  Open(SmallOptions());
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_TRUE(db_->Put(Slice(K(42)), Slice("same-size-" + std::to_string(i % 10))).ok());
  }
  EXPECT_LE(db_->MembufferLiveEntries(), 1u);
}

TEST_F(FloDBTest, NoMembufferModeWorks) {
  FloDbOptions options = SmallOptions();
  options.enable_membuffer = false;  // classic single-level memory (Fig 17)
  Open(options);
  for (uint64_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(db_->Put(Slice(K(i)), Slice("v")).ok());
  }
  const StoreStats stats = db_->GetStats();
  EXPECT_EQ(stats.membuffer_adds, 0u);
  EXPECT_EQ(stats.memtable_direct_adds, 300u);
  std::string value;
  ASSERT_TRUE(db_->Get(Slice(K(5)), &value).ok());
}

TEST_F(FloDBTest, SimpleInsertDrainModeWorks) {
  FloDbOptions options = SmallOptions();
  options.use_multi_insert = false;  // Fig 17 middle variant
  Open(options);
  for (uint64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(db_->Put(Slice(K(i)), Slice("v" + std::to_string(i))).ok());
  }
  db_->WaitUntilDrained();
  std::string value;
  ASSERT_TRUE(db_->Get(Slice(K(123)), &value).ok());
  EXPECT_EQ(value, "v123");
}

TEST_F(FloDBTest, NoPersistenceModeDropsToDiskNothing) {
  FloDbOptions options = SmallOptions();
  options.enable_persistence = false;  // Fig 17 memory-component-only mode
  Open(options);
  for (uint64_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(db_->Put(Slice(K(i)), Slice(std::string(200, 'x'))).ok());
  }
  const StoreStats stats = db_->GetStats();
  EXPECT_EQ(stats.disk.flushes, 0u);
}

TEST_F(FloDBTest, MultipleDrainThreads) {
  FloDbOptions options = SmallOptions();
  options.drain_threads = 3;
  Open(options);
  for (uint64_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(db_->Put(Slice(K(i)), Slice("v" + std::to_string(i))).ok());
  }
  db_->WaitUntilDrained();
  std::string value;
  for (uint64_t i = 0; i < 2000; i += 97) {
    ASSERT_TRUE(db_->Get(Slice(K(i)), &value).ok()) << i;
    EXPECT_EQ(value, "v" + std::to_string(i));
  }
}

TEST_F(FloDBTest, StatsAreCounted) {
  Open(SmallOptions());
  db_->Put(Slice(K(1)), Slice("v"));
  db_->Put(Slice(K(2)), Slice("v"));
  db_->Delete(Slice(K(1)));
  std::string value;
  db_->Get(Slice(K(2)), &value);
  std::vector<std::pair<std::string, std::string>> out;
  db_->Scan(Slice(K(0)), Slice(), 10, &out);
  const StoreStats stats = db_->GetStats();
  EXPECT_EQ(stats.puts, 2u);
  EXPECT_EQ(stats.deletes, 1u);
  EXPECT_EQ(stats.gets, 1u);
  EXPECT_EQ(stats.scans, 1u);
}

TEST_F(FloDBTest, InvalidOptionsRejected) {
  std::unique_ptr<FloDB> db;
  FloDbOptions options;  // persistence on, but no env/path
  EXPECT_TRUE(FloDB::Open(options, &db).IsInvalidArgument());

  FloDbOptions bad_fraction = SmallOptions();
  bad_fraction.membuffer_fraction = 1.5;
  EXPECT_TRUE(FloDB::Open(bad_fraction, &db).IsInvalidArgument());

  FloDbOptions wal_without_persist = SmallOptions();
  wal_without_persist.enable_persistence = false;
  wal_without_persist.enable_wal = true;
  EXPECT_TRUE(FloDB::Open(wal_without_persist, &db).IsInvalidArgument());
}

TEST_F(FloDBTest, EmptyAndLargeValues) {
  Open(SmallOptions());
  ASSERT_TRUE(db_->Put(Slice(K(1)), Slice()).ok());
  std::string value = "sentinel";
  ASSERT_TRUE(db_->Get(Slice(K(1)), &value).ok());
  EXPECT_TRUE(value.empty());

  const std::string big(1 << 18, 'B');
  ASSERT_TRUE(db_->Put(Slice(K(2)), Slice(big)).ok());
  ASSERT_TRUE(db_->Get(Slice(K(2)), &value).ok());
  EXPECT_EQ(value, big);
  ASSERT_TRUE(db_->FlushAll().ok());
  ASSERT_TRUE(db_->Get(Slice(K(2)), &value).ok());
  EXPECT_EQ(value, big);
}

TEST_F(FloDBTest, NameIsFloDB) {
  Open(SmallOptions());
  EXPECT_EQ(db_->Name(), "FloDB");
}

}  // namespace
}  // namespace flodb
