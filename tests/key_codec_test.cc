#include "flodb/common/key_codec.h"

#include <gtest/gtest.h>

#include <limits>

namespace flodb {
namespace {

TEST(KeyCodecTest, RoundTrip) {
  for (uint64_t k : {uint64_t{0}, uint64_t{1}, uint64_t{255}, uint64_t{256},
                     uint64_t{1} << 40, std::numeric_limits<uint64_t>::max()}) {
    EXPECT_EQ(DecodeKey(Slice(EncodeKey(k))), k);
  }
}

TEST(KeyCodecTest, EncodingPreservesNumericOrder) {
  // Lexicographic byte order == numeric order: the property the Membuffer
  // partitioning and scans rely on.
  uint64_t prev_val = 0;
  std::string prev = EncodeKey(prev_val);
  for (uint64_t k = 1; k < (1u << 16); k += 37) {
    std::string cur = EncodeKey(k);
    EXPECT_LT(Slice(prev).compare(Slice(cur)), 0) << prev_val << " vs " << k;
    prev = cur;
    prev_val = k;
  }
  EXPECT_LT(Slice(EncodeKey(1ull << 40)).compare(Slice(EncodeKey((1ull << 40) + 1))), 0);
  EXPECT_LT(Slice(EncodeKey(1ull << 40)).compare(
                Slice(EncodeKey(std::numeric_limits<uint64_t>::max()))),
            0);
}

TEST(KeyCodecTest, KeyBufMatchesEncodeKey) {
  KeyBuf buf;
  for (uint64_t k : {uint64_t{7}, uint64_t{1} << 33}) {
    Slice s = buf.Set(k);
    EXPECT_EQ(s.ToString(), EncodeKey(k));
  }
}

TEST(KeyCodecTest, EncodedSizeIsFixed) {
  EXPECT_EQ(EncodeKey(0).size(), kEncodedKeyBytes);
  EXPECT_EQ(EncodeKey(std::numeric_limits<uint64_t>::max()).size(), kEncodedKeyBytes);
}

TEST(KeyCodecTest, DecodeShortSliceUsesAvailableBytes) {
  // Robustness: shorter slices decode their prefix (documented behaviour).
  const char two[] = {0x01, 0x02};
  EXPECT_EQ(DecodeKey(Slice(two, 2)), 0x0102u);
}

}  // namespace
}  // namespace flodb
