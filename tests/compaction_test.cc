// Leveled compaction: score-based picking, per-level bloom sizing, the
// cross-shard thread limiter, level invariants under churn, bounded
// space-amp, the FaultInjectionEnv crash matrix (torn compaction output,
// failed MANIFEST append, torn CURRENT update, manifest numbering across
// reopen), and reopen equivalence.

#include "flodb/disk/compaction.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "flodb/common/key_codec.h"
#include "flodb/core/memtable_iterator.h"
#include "flodb/core/sharded_store.h"
#include "flodb/disk/disk_component.h"
#include "flodb/disk/fault_env.h"
#include "flodb/disk/mem_env.h"
#include "flodb/mem/memtable.h"

namespace flodb {
namespace {

// ---------------------------------------------------------------------------
// Picker units (versions fabricated through a VersionSet on MemEnv)
// ---------------------------------------------------------------------------

FileMetaData MakeFile(uint64_t number, uint64_t size, const std::string& smallest,
                      const std::string& largest) {
  FileMetaData f;
  f.number = number;
  f.file_size = size;
  f.entries = 1;
  f.smallest = smallest;
  f.largest = largest;
  f.smallest_seq = number;
  f.largest_seq = number;
  return f;
}

CompactionConfig SmallConfig() {
  CompactionConfig config;
  config.num_levels = 4;
  config.l0_compaction_trigger = 4;
  config.l1_max_bytes = 1000;
  config.level_size_multiplier = 10;
  return config;
}

class PickerTest : public ::testing::Test {
 protected:
  PickerTest() : versions_(&env_, "/db", SmallConfig().num_levels) {
    EXPECT_TRUE(versions_.Recover().ok());
  }

  void AddFiles(const std::vector<std::pair<int, FileMetaData>>& files) {
    VersionEdit edit;
    edit.added = files;
    ASSERT_TRUE(versions_.LogAndApply(edit).ok());
  }

  MemEnv env_;
  VersionSet versions_;
  std::vector<bool> no_busy_ = std::vector<bool>(SmallConfig().num_levels, false);
};

TEST_F(PickerTest, MaxBytesForLevelFollowsRatio) {
  CompactionPicker picker(SmallConfig());
  EXPECT_EQ(picker.MaxBytesForLevel(1), 1000u);
  EXPECT_EQ(picker.MaxBytesForLevel(2), 10000u);
  EXPECT_EQ(picker.MaxBytesForLevel(3), 100000u);
}

TEST_F(PickerTest, EmptyVersionNeedsNoCompaction) {
  CompactionPicker picker(SmallConfig());
  CompactionJob job;
  EXPECT_FALSE(picker.NeedsCompaction(*versions_.Current()));
  EXPECT_FALSE(picker.Pick(*versions_.Current(), no_busy_, &job));
}

TEST_F(PickerTest, HighestScoreWins) {
  // L0 at exactly the trigger (score 1.0) vs L1 at 3x target (score 3.0):
  // the deeper, further-over-target level compacts first.
  AddFiles({{0, MakeFile(1, 100, "a", "b")},
            {0, MakeFile(2, 100, "a", "b")},
            {0, MakeFile(3, 100, "a", "b")},
            {0, MakeFile(4, 100, "a", "b")},
            {1, MakeFile(5, 3000, "c", "d")}});
  CompactionPicker picker(SmallConfig());
  CompactionJob job;
  ASSERT_TRUE(picker.Pick(*versions_.Current(), no_busy_, &job));
  EXPECT_EQ(job.level, 1);
  ASSERT_EQ(job.inputs_lo.size(), 1u);
  EXPECT_EQ(job.inputs_lo[0].number, 5u);
}

TEST_F(PickerTest, L0PickTakesEveryL0File) {
  AddFiles({{0, MakeFile(1, 100, "a", "m")},
            {0, MakeFile(2, 100, "b", "n")},
            {0, MakeFile(3, 100, "c", "o")},
            {0, MakeFile(4, 100, "d", "p")},
            {1, MakeFile(5, 10, "k", "z")}});
  CompactionPicker picker(SmallConfig());
  CompactionJob job;
  ASSERT_TRUE(picker.Pick(*versions_.Current(), no_busy_, &job));
  EXPECT_EQ(job.level, 0);
  EXPECT_EQ(job.inputs_lo.size(), 4u);  // overlapping: partial picks reorder history
  ASSERT_EQ(job.inputs_hi.size(), 1u);
  EXPECT_EQ(job.inputs_hi[0].number, 5u);
}

TEST_F(PickerTest, BusyLevelsAreSkipped) {
  AddFiles({{0, MakeFile(1, 100, "a", "b")},
            {0, MakeFile(2, 100, "a", "b")},
            {0, MakeFile(3, 100, "a", "b")},
            {0, MakeFile(4, 100, "a", "b")},
            {1, MakeFile(5, 3000, "c", "d")}});
  CompactionPicker picker(SmallConfig());
  CompactionJob job;
  std::vector<bool> busy = no_busy_;
  busy[2] = true;  // L1's output level is owned: the L1 job is ineligible
  ASSERT_TRUE(picker.Pick(*versions_.Current(), busy, &job));
  EXPECT_EQ(job.level, 0);
  busy[1] = true;  // now L0's output level is owned too: nothing to do
  EXPECT_FALSE(picker.Pick(*versions_.Current(), busy, &job));
}

TEST_F(PickerTest, TombstonesDropOnlyWhenOutputIsBottommost) {
  // A file at L2 overlapping the compaction range: tombstones written
  // into L1 must survive to shadow it.
  AddFiles({{0, MakeFile(1, 100, "a", "b")},
            {0, MakeFile(2, 100, "a", "b")},
            {0, MakeFile(3, 100, "a", "b")},
            {0, MakeFile(4, 100, "a", "b")},
            {2, MakeFile(5, 10, "a", "z")}});
  CompactionPicker picker(SmallConfig());
  CompactionJob job;
  ASSERT_TRUE(picker.Pick(*versions_.Current(), no_busy_, &job));
  EXPECT_EQ(job.level, 0);
  EXPECT_FALSE(job.drop_tombstones);

  VersionEdit drop;
  drop.deleted.emplace_back(2, 5);
  ASSERT_TRUE(versions_.LogAndApply(drop).ok());
  CompactionPicker fresh(SmallConfig());
  ASSERT_TRUE(fresh.Pick(*versions_.Current(), no_busy_, &job));
  EXPECT_EQ(job.level, 0);
  EXPECT_TRUE(job.drop_tombstones);
}

TEST(BloomBitsTest, DerivedLadderAndExplicitVector) {
  // Empty vector: ladder derived from the default.
  EXPECT_EQ(BloomBitsForLevel({}, 10, 0), 12);
  EXPECT_EQ(BloomBitsForLevel({}, 10, 1), 12);
  EXPECT_EQ(BloomBitsForLevel({}, 10, 2), 10);
  EXPECT_EQ(BloomBitsForLevel({}, 10, 3), 10);
  EXPECT_EQ(BloomBitsForLevel({}, 10, 4), 6);
  EXPECT_EQ(BloomBitsForLevel({}, 6, 6), 5);  // floor at 5
  // Explicit vector is authoritative; levels past its end reuse the last.
  const std::vector<int> per_level = {14, 12, 8};
  EXPECT_EQ(BloomBitsForLevel(per_level, 10, 0), 14);
  EXPECT_EQ(BloomBitsForLevel(per_level, 10, 2), 8);
  EXPECT_EQ(BloomBitsForLevel(per_level, 10, 6), 8);
}

TEST(CompactionThreadLimiterTest, BoundsConcurrency) {
  CompactionThreadLimiter limiter(2);
  std::atomic<int> running{0};
  std::atomic<int> max_seen{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        limiter.Acquire();
        const int now = running.fetch_add(1) + 1;
        int prev = max_seen.load();
        while (now > prev && !max_seen.compare_exchange_weak(prev, now)) {
        }
        std::this_thread::yield();
        running.fetch_sub(1);
        limiter.Release();
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_LE(max_seen.load(), 2);
  EXPECT_GE(max_seen.load(), 1);
  EXPECT_EQ(limiter.InUse(), 0);
}

// ---------------------------------------------------------------------------
// End-to-end over a real DiskComponent
// ---------------------------------------------------------------------------

class CompactionTest : public ::testing::Test {
 protected:
  DiskOptions SmallDisk(Env* env) {
    DiskOptions options;
    options.env = env;
    options.path = "/db";
    options.sstable_target_bytes = 8 << 10;
    options.block_bytes = 1024;
    options.num_levels = 5;
    options.l0_compaction_trigger = 4;
    options.l1_max_bytes = 16 << 10;
    options.level_size_multiplier = 4;
    options.compaction_threads = 0;  // tests drive CompactOnce themselves
    return options;
  }

  void OpenDisk(DiskOptions options) {
    disk_.reset();
    ASSERT_TRUE(DiskComponent::Open(options, &disk_).ok());
  }

  void FlushRange(uint64_t lo, uint64_t hi, uint64_t seq_base, const std::string& tag,
                  ValueType type = ValueType::kValue) {
    MemTable table(1 << 20);
    for (uint64_t k = lo; k < hi; ++k) {
      table.Add(Slice(EncodeKey(k)), Slice(tag + std::to_string(k)), seq_base + (k - lo), type);
    }
    MemTableIterator iter(&table);
    ASSERT_TRUE(disk_->AddRun(&iter).ok());
  }

  Status FlushRangeStatus(uint64_t lo, uint64_t hi, uint64_t seq_base, const std::string& tag) {
    MemTable table(1 << 20);
    for (uint64_t k = lo; k < hi; ++k) {
      table.Add(Slice(EncodeKey(k)), Slice(tag + std::to_string(k)), seq_base + (k - lo),
                ValueType::kValue);
    }
    MemTableIterator iter(&table);
    return disk_->AddRun(&iter);
  }

  // Drains all pending compaction work synchronously.
  void CompactFully() {
    bool did_work = true;
    while (did_work) {
      ASSERT_TRUE(disk_->CompactOnce(&did_work).ok());
    }
  }

  using Entry = std::tuple<std::string, uint64_t, ValueType, std::string>;

  // Freshest version of every key currently visible through the iterator.
  std::vector<Entry> DumpContents() {
    std::vector<Entry> entries;
    std::unique_ptr<Iterator> iter = disk_->NewIterator();
    std::string last_key;
    bool has_last = false;
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
      if (has_last && iter->key() == Slice(last_key)) {
        continue;  // shadowed older version
      }
      last_key.assign(iter->key().data(), iter->key().size());
      has_last = true;
      entries.emplace_back(last_key, iter->seq(), iter->type(), iter->value().ToString());
    }
    EXPECT_TRUE(iter->status().ok());
    return entries;
  }

  void CheckLevelInvariants() {
    std::shared_ptr<const Version> v = disk_->CurrentVersion();
    for (int level = 1; level < v->NumLevels(); ++level) {
      const auto& files = v->LevelFiles(level);
      for (size_t i = 0; i < files.size(); ++i) {
        EXPECT_LE(Slice(files[i].smallest).compare(Slice(files[i].largest)), 0)
            << "level " << level << " file " << files[i].number;
        if (i + 1 < files.size()) {
          EXPECT_LT(Slice(files[i].largest).compare(Slice(files[i + 1].smallest)), 0)
              << "level " << level << " files " << files[i].number << "/"
              << files[i + 1].number << " overlap";
        }
      }
    }
  }

  std::unique_ptr<DiskComponent> disk_;
};

TEST_F(CompactionTest, LevelsStayDisjointUnderChurn) {
  MemEnv env;
  OpenDisk(SmallDisk(&env));
  uint64_t seq = 1;
  for (int round = 0; round < 12; ++round) {
    // Growing ranges: every flush overwrites [0, 400) and adds a fresh
    // 400-key tail, so runs overlap AND the key space outgrows L1.
    const uint64_t hi = 400 * static_cast<uint64_t>(round + 1);
    FlushRange(0, hi, seq, "r" + std::to_string(round));
    seq += hi;
    bool did_work = false;
    ASSERT_TRUE(disk_->CompactOnce(&did_work).ok());
    CheckLevelInvariants();
  }
  CompactFully();
  CheckLevelInvariants();
  // Deep levels actually populated: this exercised more than L0 -> L1.
  std::shared_ptr<const Version> v = disk_->CurrentVersion();
  int deepest = 0;
  for (int level = 0; level < v->NumLevels(); ++level) {
    if (!v->LevelFiles(level).empty()) {
      deepest = level;
    }
  }
  EXPECT_GE(deepest, 2);
  // Newest round wins on the overwritten prefix.
  std::string value;
  ASSERT_TRUE(disk_->Get(Slice(EncodeKey(123)), &value, nullptr, nullptr).ok());
  EXPECT_EQ(value, "r11123");
}

TEST_F(CompactionTest, OverwriteChurnConvergesToBoundedSpaceAmp) {
  MemEnv env;
  OpenDisk(SmallDisk(&env));
  const uint64_t kKeys = 1500;
  uint64_t seq = 1;
  for (int round = 0; round < 10; ++round) {
    FlushRange(0, kKeys, seq, "round" + std::to_string(round) + "-");
    seq += kKeys;
    bool did_work = false;
    ASSERT_TRUE(disk_->CompactOnce(&did_work).ok());
  }
  CompactFully();
  const DiskComponent::Stats stats = disk_->GetStats();
  uint64_t total_bytes = 0;
  for (const uint64_t b : stats.bytes_per_level) {
    total_bytes += b;
  }
  // Live data: kKeys * (8-byte key + ~11-byte value). Steady state holds
  // one fresh copy plus at most one shadowed copy per deeper level and
  // table metadata (index + bloom), so bound space-amp at 6x — without
  // compaction the 10 overwrite rounds would retain ~10x.
  const uint64_t live_estimate = kKeys * 19;
  EXPECT_LT(total_bytes, 6 * live_estimate)
      << "space-amp unbounded: " << total_bytes << " bytes for ~" << live_estimate << " live";
  EXPECT_LT(total_bytes, stats.bytes_flushed / 2)
      << "churn did not collapse: " << total_bytes << " of " << stats.bytes_flushed
      << " flushed bytes retained";
}

TEST_F(CompactionTest, TombstonesRetireAtBottomLevel) {
  MemEnv env;
  OpenDisk(SmallDisk(&env));
  FlushRange(0, 300, 1, "v");
  FlushRange(0, 300, 1000, "d", ValueType::kTombstone);
  FlushRange(300, 302, 2000, "pad");
  FlushRange(302, 304, 3000, "pad");
  CompactFully();
  // Everything merged to one bottom run: tombstones must be gone from the
  // iterator view, not just masked.
  for (const auto& entry : DumpContents()) {
    EXPECT_NE(std::get<2>(entry), ValueType::kTombstone)
        << "tombstone survived full compaction";
  }
  EXPECT_TRUE(disk_->Get(Slice(EncodeKey(5)), nullptr, nullptr, nullptr).IsNotFound());
}

TEST_F(CompactionTest, CompactRangeCollapsesRangeToBottom) {
  MemEnv env;
  OpenDisk(SmallDisk(&env));
  for (int round = 0; round < 4; ++round) {
    FlushRange(0, 400, 1 + 400 * static_cast<uint64_t>(round), "r" + std::to_string(round));
  }
  // Full-range manual compaction: empty Slices are open ends.
  ASSERT_TRUE(disk_->CompactRange(Slice(), Slice()).ok());
  CheckLevelInvariants();
  EXPECT_TRUE(disk_->CurrentVersion()->LevelFiles(0).empty());
  // Shadowed versions are physically gone: the raw iterator sees each key
  // exactly once, carrying the freshest round.
  {
    std::unique_ptr<Iterator> iter = disk_->NewIterator();
    size_t entries = 0;
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
      EXPECT_EQ(iter->value().ToString(), "r3" + std::to_string(DecodeKey(iter->key())));
      ++entries;
    }
    ASSERT_TRUE(iter->status().ok());
    EXPECT_EQ(entries, 400u);
  }
  // Deletions compacted to the bottommost level retire outright.
  FlushRange(0, 100, 2001, "d", ValueType::kTombstone);
  ASSERT_TRUE(disk_->CompactRange(Slice(), Slice()).ok());
  {
    std::unique_ptr<Iterator> iter = disk_->NewIterator();
    size_t entries = 0;
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
      EXPECT_NE(iter->type(), ValueType::kTombstone);
      EXPECT_GE(DecodeKey(iter->key()), 100u);
      ++entries;
    }
    ASSERT_TRUE(iter->status().ok());
    EXPECT_EQ(entries, 300u);
  }
  // A bounded range with fresh L0 on top: L0 inputs expand to the key-span
  // fixpoint, so the narrow request still drains every overlapping L0 run
  // (L0 runs span the whole keyspace here).
  FlushRange(0, 400, 3001, "r4");
  ASSERT_TRUE(disk_->CompactRange(Slice(EncodeKey(50)), Slice(EncodeKey(60))).ok());
  CheckLevelInvariants();
  EXPECT_TRUE(disk_->CurrentVersion()->LevelFiles(0).empty());
  std::string value;
  ASSERT_TRUE(disk_->Get(Slice(EncodeKey(55)), &value, nullptr, nullptr).ok());
  EXPECT_EQ(value, "r455");
}

TEST_F(CompactionTest, ReopenEquivalence) {
  MemEnv env;
  DiskOptions options = SmallDisk(&env);
  OpenDisk(options);
  uint64_t seq = 1;
  for (int round = 0; round < 8; ++round) {
    FlushRange(0, 500, seq, "r" + std::to_string(round));
    seq += 500;
  }
  CompactFully();
  const std::vector<Entry> before = DumpContents();
  ASSERT_FALSE(before.empty());
  OpenDisk(options);  // close + reopen on the same env
  EXPECT_EQ(before, DumpContents());
  CheckLevelInvariants();
}

TEST_F(CompactionTest, PerLevelBloomBitsValidatedAndApplied) {
  MemEnv env;
  DiskOptions options = SmallDisk(&env);
  options.bloom_bits_per_level = {12, 0};
  std::unique_ptr<DiskComponent> rejected;
  EXPECT_FALSE(DiskComponent::Open(options, &rejected).ok());

  options.bloom_bits_per_level = {14, 12, 8};
  OpenDisk(options);
  FlushRange(0, 200, 1, "v");
  FlushRange(200, 400, 300, "v");
  FlushRange(400, 600, 600, "v");
  FlushRange(600, 800, 900, "v");
  CompactFully();
  std::string value;
  ASSERT_TRUE(disk_->Get(Slice(EncodeKey(700)), &value, nullptr, nullptr).ok());
  EXPECT_EQ(value, "v700");
}

// ---------------------------------------------------------------------------
// Crash matrix (FaultInjectionEnv)
// ---------------------------------------------------------------------------

TEST_F(CompactionTest, PowerCutMidCompactionRecoversOldVersion) {
  MemEnv mem;
  FaultInjectionEnv env(&mem);
  DiskOptions options = SmallDisk(&env);
  OpenDisk(options);
  for (int round = 0; round < 4; ++round) {
    FlushRange(0, 300, 1 + 300 * static_cast<uint64_t>(round), "r" + std::to_string(round));
  }
  const std::vector<Entry> before = DumpContents();

  // Torn write into the compaction output, then power cut: the half-
  // written .sst must not survive into any version.
  env.FailAppendAfter(5, /*torn=*/true, ".sst");
  bool did_work = false;
  EXPECT_FALSE(disk_->CompactOnce(&did_work).ok());
  disk_.reset();
  env.ClearFaults();
  ASSERT_TRUE(env.DropUnsyncedFileData().ok());

  OpenDisk(options);
  EXPECT_EQ(before, DumpContents());
  // Open-time GC: every .sst on disk is referenced by the live version.
  std::set<uint64_t> live;
  std::shared_ptr<const Version> v = disk_->CurrentVersion();
  for (int level = 0; level < v->NumLevels(); ++level) {
    for (const FileMetaData& f : v->LevelFiles(level)) {
      live.insert(f.number);
    }
  }
  std::vector<std::string> children;
  ASSERT_TRUE(env.GetChildren("/db", &children).ok());
  for (const std::string& name : children) {
    if (name.size() >= 5 && name.substr(name.size() - 4) == ".sst") {
      const uint64_t number = static_cast<uint64_t>(strtoull(name.c_str(), nullptr, 10));
      EXPECT_TRUE(live.count(number) != 0) << "orphan " << name << " survived open-time GC";
    }
  }
  // And the converse: no live file was deleted by the sweep.
  for (const uint64_t number : live) {
    char buf[32];
    snprintf(buf, sizeof(buf), "/db/%06llu.sst", static_cast<unsigned long long>(number));
    EXPECT_TRUE(env.FileExists(buf)) << "live file " << number << " deleted";
  }
}

TEST_F(CompactionTest, FailedManifestAppendKeepsOldVersionAndHeals) {
  MemEnv mem;
  FaultInjectionEnv env(&mem);
  DiskOptions options = SmallDisk(&env);
  OpenDisk(options);
  for (int round = 0; round < 4; ++round) {
    FlushRange(0, 300, 1 + 300 * static_cast<uint64_t>(round), "r" + std::to_string(round));
  }
  const std::vector<Entry> before = DumpContents();

  env.FailAppendAfter(0, /*torn=*/false, "MANIFEST");
  bool did_work = false;
  EXPECT_FALSE(disk_->CompactOnce(&did_work).ok());
  // The in-memory version is unchanged: reads keep working.
  EXPECT_EQ(before, DumpContents());

  // Fault cleared, the same job retries and succeeds.
  env.ClearFaults();
  ASSERT_TRUE(disk_->CompactOnce(&did_work).ok());
  EXPECT_TRUE(did_work);
  EXPECT_EQ(before, DumpContents());
  EXPECT_TRUE(disk_->CurrentVersion()->LevelFiles(0).empty());

  // Crash-consistent too: reopen lands on the new version.
  disk_.reset();
  ASSERT_TRUE(env.DropUnsyncedFileData().ok());
  OpenDisk(options);
  EXPECT_EQ(before, DumpContents());
}

TEST_F(CompactionTest, ManifestNumberingResumesAcrossReopen) {
  // Regression: manifest numbering used to restart at zero after reopen,
  // so the next snapshot reused the LIVE manifest's number — and a failed
  // write then deleted the only manifest on disk.
  MemEnv mem;
  FaultInjectionEnv env(&mem);
  DiskOptions options = SmallDisk(&env);
  OpenDisk(options);  // fresh DB: CURRENT -> MANIFEST-000001
  disk_.reset();

  OpenDisk(options);
  env.FailAppendAfter(0, /*torn=*/false, "MANIFEST");
  EXPECT_FALSE(FlushRangeStatus(0, 10, 1, "v").ok());
  env.ClearFaults();
  disk_.reset();

  // The live manifest must have been untouched by the failed attempt.
  OpenDisk(options);
  EXPECT_TRUE(disk_->Get(Slice(EncodeKey(1)), nullptr, nullptr, nullptr).IsNotFound());
  FlushRange(0, 10, 1, "v");
  std::string value;
  ASSERT_TRUE(disk_->Get(Slice(EncodeKey(1)), &value, nullptr, nullptr).ok());
  EXPECT_EQ(value, "v1");
}

TEST_F(CompactionTest, TornCurrentUpdateKeepsOldManifest) {
  // CURRENT is repointed via temp file + rename; a torn write hits only
  // the temp, never the live pointer.
  MemEnv mem;
  FaultInjectionEnv env(&mem);
  DiskOptions options = SmallDisk(&env);
  OpenDisk(options);
  FlushRange(0, 100, 1, "keep");

  env.FailAppendAfter(0, /*torn=*/true, "CURRENT");
  EXPECT_FALSE(FlushRangeStatus(100, 200, 500, "lost").ok());
  env.ClearFaults();
  disk_.reset();
  ASSERT_TRUE(env.DropUnsyncedFileData().ok());

  OpenDisk(options);
  std::string value;
  ASSERT_TRUE(disk_->Get(Slice(EncodeKey(50)), &value, nullptr, nullptr).ok());
  EXPECT_EQ(value, "keep50");
  EXPECT_TRUE(disk_->Get(Slice(EncodeKey(150)), nullptr, nullptr, nullptr).IsNotFound());
}

TEST_F(CompactionTest, StaleManifestsSweptAtOpen) {
  MemEnv mem;
  FaultInjectionEnv env(&mem);
  DiskOptions options = SmallDisk(&env);
  OpenDisk(options);
  for (int round = 0; round < 6; ++round) {
    FlushRange(0, 50, 1 + 50 * static_cast<uint64_t>(round), "r");
  }
  disk_.reset();
  // Plant strays a crashed snapshot write could leave behind.
  ASSERT_TRUE(WriteStringToFile(&env, Slice("junk"), "/db/MANIFEST-000002", false).ok());
  ASSERT_TRUE(WriteStringToFile(&env, Slice("junk"), "/db/CURRENT.tmp", false).ok());
  OpenDisk(options);
  std::vector<std::string> children;
  ASSERT_TRUE(env.GetChildren("/db", &children).ok());
  int manifests = 0;
  for (const std::string& name : children) {
    EXPECT_NE(name, "CURRENT.tmp");
    if (name.rfind("MANIFEST-", 0) == 0) {
      ++manifests;
    }
  }
  EXPECT_EQ(manifests, 1) << "stale manifests not swept";
  std::string value;
  ASSERT_TRUE(disk_->Get(Slice(EncodeKey(10)), &value, nullptr, nullptr).ok());
  EXPECT_EQ(value, "r10");
}

// ---------------------------------------------------------------------------
// Cross-shard compaction bound
// ---------------------------------------------------------------------------

TEST(ShardedCompactionTest, SharedLimiterBoundsCompactionsAcrossShards) {
  MemEnv env;
  FloDbOptions options;
  options.memory_budget_bytes = 4u << 20;
  options.shards = 4;
  options.disk.env = &env;
  options.disk.path = "/db";
  options.disk.sstable_target_bytes = 16 << 10;
  options.disk.l0_compaction_trigger = 2;
  options.disk.l1_max_bytes = 32 << 10;
  // Budget of 2 for 4 shards: each shard keeps a worker (floor of one),
  // the shared limiter keeps concurrent merges at <= 2. The observable
  // contract here: heavy churn completes without deadlock and every
  // write survives the compactions.
  options.disk.compaction_threads = 2;
  std::unique_ptr<ShardedKVStore> store;
  ASSERT_TRUE(ShardedKVStore::Open(options, &store).ok());
  const uint64_t quarter = uint64_t{1} << 62;
  for (int round = 0; round < 4; ++round) {
    for (uint64_t i = 0; i < 2000; ++i) {
      // Spread across all 4 shards via the top key bits.
      const uint64_t key = (i % 4) * quarter + i;
      ASSERT_TRUE(
          store->Put(Slice(EncodeKey(key)), Slice("r" + std::to_string(round))).ok());
    }
  }
  ASSERT_TRUE(store->FlushAll().ok());
  std::string value;
  ASSERT_TRUE(store->Get(Slice(EncodeKey(3 * quarter + 7)), &value).ok());
  EXPECT_EQ(value, "r3");
}

}  // namespace
}  // namespace flodb
