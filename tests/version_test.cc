#include "flodb/disk/version.h"

#include <gtest/gtest.h>

#include "flodb/common/key_codec.h"
#include "flodb/disk/mem_env.h"

namespace flodb {
namespace {

FileMetaData MakeFile(uint64_t number, uint64_t lo, uint64_t hi, uint64_t max_seq = 1) {
  FileMetaData f;
  f.number = number;
  f.file_size = 1000;
  f.entries = 10;
  f.smallest = EncodeKey(lo);
  f.largest = EncodeKey(hi);
  f.smallest_seq = 1;
  f.largest_seq = max_seq;
  return f;
}

TEST(FileMetaDataTest, OverlapChecks) {
  FileMetaData f = MakeFile(1, 100, 200);
  EXPECT_TRUE(f.OverlapsRange(Slice(EncodeKey(150)), Slice(EncodeKey(160))));
  EXPECT_TRUE(f.OverlapsRange(Slice(EncodeKey(50)), Slice(EncodeKey(100))));
  EXPECT_TRUE(f.OverlapsRange(Slice(EncodeKey(200)), Slice(EncodeKey(300))));
  EXPECT_FALSE(f.OverlapsRange(Slice(EncodeKey(201)), Slice(EncodeKey(300))));
  EXPECT_FALSE(f.OverlapsRange(Slice(EncodeKey(0)), Slice(EncodeKey(99))));
  // Open-ended ranges.
  EXPECT_TRUE(f.OverlapsRange(Slice(), Slice(EncodeKey(300))));
  EXPECT_TRUE(f.OverlapsRange(Slice(EncodeKey(150)), Slice()));
  EXPECT_TRUE(f.OverlapsRange(Slice(), Slice()));

  EXPECT_TRUE(f.ContainsKey(Slice(EncodeKey(100))));
  EXPECT_TRUE(f.ContainsKey(Slice(EncodeKey(200))));
  EXPECT_FALSE(f.ContainsKey(Slice(EncodeKey(99))));
  EXPECT_FALSE(f.ContainsKey(Slice(EncodeKey(201))));
}

class VersionSetTest : public ::testing::Test {
 protected:
  VersionSetTest() : versions_(&env_, "/db", 7) {}

  MemEnv env_;
  VersionSet versions_;
};

TEST_F(VersionSetTest, FreshRecoverStartsEmpty) {
  ASSERT_TRUE(versions_.Recover().ok());
  auto v = versions_.Current();
  EXPECT_EQ(v->NumFiles(), 0);
  EXPECT_EQ(v->NumLevels(), 7);
}

TEST_F(VersionSetTest, AddAndDeleteFiles) {
  ASSERT_TRUE(versions_.Recover().ok());
  VersionEdit edit;
  edit.added.emplace_back(0, MakeFile(1, 0, 100));
  edit.added.emplace_back(0, MakeFile(2, 50, 150));
  edit.added.emplace_back(1, MakeFile(3, 0, 60));
  ASSERT_TRUE(versions_.LogAndApply(edit).ok());

  auto v = versions_.Current();
  EXPECT_EQ(v->LevelFiles(0).size(), 2u);
  EXPECT_EQ(v->LevelFiles(1).size(), 1u);

  VersionEdit edit2;
  edit2.deleted.emplace_back(0, 1);
  ASSERT_TRUE(versions_.LogAndApply(edit2).ok());
  v = versions_.Current();
  EXPECT_EQ(v->LevelFiles(0).size(), 1u);
  EXPECT_EQ(v->LevelFiles(0)[0].number, 2u);
}

TEST_F(VersionSetTest, OldVersionsRemainValid) {
  ASSERT_TRUE(versions_.Recover().ok());
  VersionEdit edit;
  edit.added.emplace_back(0, MakeFile(1, 0, 100));
  ASSERT_TRUE(versions_.LogAndApply(edit).ok());

  auto pinned = versions_.Current();
  VersionEdit edit2;
  edit2.deleted.emplace_back(0, 1);
  ASSERT_TRUE(versions_.LogAndApply(edit2).ok());

  EXPECT_EQ(pinned->LevelFiles(0).size(), 1u) << "pinned version must be immutable";
  EXPECT_EQ(versions_.Current()->LevelFiles(0).size(), 0u);

  // GC must still see file 1 as live while pinned...
  EXPECT_EQ(versions_.AllLiveFileNumbers().count(1), 1u);
  // ...but not the current-only view.
  EXPECT_EQ(versions_.LiveFileNumbers().count(1), 0u);
  pinned.reset();
  EXPECT_EQ(versions_.AllLiveFileNumbers().count(1), 0u);
}

TEST_F(VersionSetTest, PersistAndRecover) {
  ASSERT_TRUE(versions_.Recover().ok());
  VersionEdit edit;
  edit.added.emplace_back(0, MakeFile(7, 10, 20, 99));
  edit.added.emplace_back(2, MakeFile(8, 30, 40, 50));
  ASSERT_TRUE(versions_.LogAndApply(edit).ok());
  const uint64_t next = versions_.NewFileNumber();

  VersionSet recovered(&env_, "/db", 7);
  ASSERT_TRUE(recovered.Recover().ok());
  auto v = recovered.Current();
  ASSERT_EQ(v->LevelFiles(0).size(), 1u);
  EXPECT_EQ(v->LevelFiles(0)[0].number, 7u);
  EXPECT_EQ(v->LevelFiles(0)[0].largest_seq, 99u);
  EXPECT_EQ(v->LevelFiles(0)[0].smallest, EncodeKey(10));
  ASSERT_EQ(v->LevelFiles(2).size(), 1u);
  EXPECT_EQ(v->LevelFiles(2)[0].number, 8u);
  EXPECT_GT(recovered.NewFileNumber(), next - 1) << "file counter must not regress";
  EXPECT_EQ(recovered.MaxPersistedSeq(), 99u);
}

TEST_F(VersionSetTest, CorruptManifestRejected) {
  ASSERT_TRUE(versions_.Recover().ok());
  VersionEdit edit;
  edit.added.emplace_back(0, MakeFile(1, 0, 10));
  ASSERT_TRUE(versions_.LogAndApply(edit).ok());

  // Corrupt the manifest in place.
  std::string current;
  ASSERT_TRUE(ReadFileToString(&env_, "/db/CURRENT", &current).ok());
  while (!current.empty() && current.back() == '\n') {
    current.pop_back();
  }
  const std::string manifest = "/db/" + current;
  std::string data;
  ASSERT_TRUE(ReadFileToString(&env_, manifest, &data).ok());
  data[5] = static_cast<char>(data[5] ^ 0xff);
  ASSERT_TRUE(WriteStringToFile(&env_, Slice(data), manifest, false).ok());

  VersionSet recovered(&env_, "/db", 7);
  EXPECT_TRUE(recovered.Recover().IsCorruption());
}

TEST_F(VersionSetTest, LevelsStayKeySorted) {
  ASSERT_TRUE(versions_.Recover().ok());
  VersionEdit edit;
  edit.added.emplace_back(1, MakeFile(3, 200, 300));
  edit.added.emplace_back(1, MakeFile(4, 0, 100));
  edit.added.emplace_back(1, MakeFile(5, 400, 500));
  ASSERT_TRUE(versions_.LogAndApply(edit).ok());
  auto v = versions_.Current();
  const auto& files = v->LevelFiles(1);
  ASSERT_EQ(files.size(), 3u);
  EXPECT_EQ(files[0].number, 4u);
  EXPECT_EQ(files[1].number, 3u);
  EXPECT_EQ(files[2].number, 5u);
}

TEST_F(VersionSetTest, OverlappingFilesQuery) {
  ASSERT_TRUE(versions_.Recover().ok());
  VersionEdit edit;
  edit.added.emplace_back(1, MakeFile(1, 0, 100));
  edit.added.emplace_back(1, MakeFile(2, 101, 200));
  edit.added.emplace_back(1, MakeFile(3, 201, 300));
  ASSERT_TRUE(versions_.LogAndApply(edit).ok());
  auto v = versions_.Current();
  EXPECT_EQ(v->OverlappingFiles(1, Slice(EncodeKey(150)), Slice(EncodeKey(250))).size(), 2u);
  EXPECT_EQ(v->OverlappingFiles(1, Slice(EncodeKey(301)), Slice()).size(), 0u);
  EXPECT_EQ(v->OverlappingFiles(1, Slice(), Slice()).size(), 3u);
}

TEST_F(VersionSetTest, IsBottommostForRange) {
  ASSERT_TRUE(versions_.Recover().ok());
  VersionEdit edit;
  edit.added.emplace_back(2, MakeFile(1, 100, 200));
  ASSERT_TRUE(versions_.LogAndApply(edit).ok());
  auto v = versions_.Current();
  EXPECT_FALSE(v->IsBottommostForRange(1, Slice(EncodeKey(150)), Slice(EncodeKey(160))));
  EXPECT_TRUE(v->IsBottommostForRange(2, Slice(EncodeKey(150)), Slice(EncodeKey(160))));
  EXPECT_TRUE(v->IsBottommostForRange(1, Slice(EncodeKey(300)), Slice(EncodeKey(400))));
}

}  // namespace
}  // namespace flodb
