#include "flodb/disk/wal.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "flodb/common/coding.h"
#include "flodb/core/write_batch.h"
#include "flodb/disk/mem_env.h"

namespace flodb {
namespace {

class WalTest : public ::testing::Test {
 protected:
  std::unique_ptr<WalWriter> NewWriter(const std::string& name) {
    std::unique_ptr<WritableFile> file;
    EXPECT_TRUE(env_.NewWritableFile(name, &file).ok());
    return std::make_unique<WalWriter>(std::move(file));
  }

  std::unique_ptr<WalReader> NewReader(const std::string& name) {
    std::unique_ptr<SequentialFile> file;
    EXPECT_TRUE(env_.NewSequentialFile(name, &file).ok());
    return std::make_unique<WalReader>(std::move(file));
  }

  MemEnv env_;
};

TEST_F(WalTest, RecordRoundTrip) {
  auto writer = NewWriter("/wal");
  ASSERT_TRUE(writer->AddRecord(Slice("record one")).ok());
  ASSERT_TRUE(writer->AddRecord(Slice("record two")).ok());
  ASSERT_TRUE(writer->Close().ok());

  auto reader = NewReader("/wal");
  std::string payload;
  ASSERT_TRUE(reader->ReadRecord(&payload));
  EXPECT_EQ(payload, "record one");
  ASSERT_TRUE(reader->ReadRecord(&payload));
  EXPECT_EQ(payload, "record two");
  EXPECT_FALSE(reader->ReadRecord(&payload));
  EXPECT_TRUE(reader->status().ok());
}

TEST_F(WalTest, EmptyLogReadsNothing) {
  auto writer = NewWriter("/wal");
  ASSERT_TRUE(writer->Close().ok());
  auto reader = NewReader("/wal");
  std::string payload;
  EXPECT_FALSE(reader->ReadRecord(&payload));
  EXPECT_TRUE(reader->status().ok());
}

TEST_F(WalTest, UpdateRecordsReplay) {
  auto writer = NewWriter("/wal");
  ASSERT_TRUE(writer->AddUpdate(Slice("k1"), Slice("v1"), ValueType::kValue).ok());
  ASSERT_TRUE(writer->AddUpdate(Slice("k2"), Slice(), ValueType::kTombstone).ok());
  ASSERT_TRUE(writer->AddUpdate(Slice("k1"), Slice("v2"), ValueType::kValue).ok());
  ASSERT_TRUE(writer->Close().ok());

  auto reader = NewReader("/wal");
  std::vector<std::tuple<std::string, std::string, ValueType>> replayed;
  ASSERT_TRUE(reader
                  ->ReplayUpdates([&](const Slice& key, const Slice& value, ValueType type) {
                    replayed.emplace_back(key.ToString(), value.ToString(), type);
                  })
                  .ok());
  ASSERT_EQ(replayed.size(), 3u);
  EXPECT_EQ(std::get<0>(replayed[0]), "k1");
  EXPECT_EQ(std::get<1>(replayed[0]), "v1");
  EXPECT_EQ(std::get<2>(replayed[1]), ValueType::kTombstone);
  EXPECT_EQ(std::get<1>(replayed[2]), "v2");
}

TEST_F(WalTest, TruncatedTailStopsCleanly) {
  auto writer = NewWriter("/wal");
  ASSERT_TRUE(writer->AddUpdate(Slice("k1"), Slice("v1"), ValueType::kValue).ok());
  ASSERT_TRUE(writer->AddUpdate(Slice("k2"), Slice("v2"), ValueType::kValue).ok());
  ASSERT_TRUE(writer->Close().ok());

  // Simulate a crash mid-append: drop the last few bytes.
  std::string data;
  ASSERT_TRUE(ReadFileToString(&env_, "/wal", &data).ok());
  data.resize(data.size() - 3);
  ASSERT_TRUE(WriteStringToFile(&env_, Slice(data), "/wal2", false).ok());

  auto reader = NewReader("/wal2");
  int count = 0;
  Status s = reader->ReplayUpdates(
      [&](const Slice&, const Slice&, ValueType) { ++count; });
  EXPECT_TRUE(s.ok()) << "truncated tail is a clean end, not corruption: " << s.ToString();
  EXPECT_EQ(count, 1);
}

TEST_F(WalTest, CorruptPayloadIsDetected) {
  auto writer = NewWriter("/wal");
  ASSERT_TRUE(writer->AddUpdate(Slice("key"), Slice("value"), ValueType::kValue).ok());
  ASSERT_TRUE(writer->Close().ok());

  std::string data;
  ASSERT_TRUE(ReadFileToString(&env_, "/wal", &data).ok());
  data[10] = static_cast<char>(data[10] ^ 0xff);  // flip a payload byte
  ASSERT_TRUE(WriteStringToFile(&env_, Slice(data), "/bad", false).ok());

  auto reader = NewReader("/bad");
  Status s = reader->ReplayUpdates([&](const Slice&, const Slice&, ValueType) {});
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST_F(WalTest, LargeRecords) {
  auto writer = NewWriter("/wal");
  const std::string big(1 << 20, 'W');
  ASSERT_TRUE(writer->AddUpdate(Slice("bigkey"), Slice(big), ValueType::kValue).ok());
  ASSERT_TRUE(writer->Close().ok());

  auto reader = NewReader("/wal");
  std::string key, value;
  ASSERT_TRUE(reader
                  ->ReplayUpdates([&](const Slice& k, const Slice& v, ValueType) {
                    key = k.ToString();
                    value = v.ToString();
                  })
                  .ok());
  EXPECT_EQ(key, "bigkey");
  EXPECT_EQ(value, big);
}

// Prepare records (two-phase commit, DESIGN.md §8): the txn header round-
// trips, and the embedded entries replay ONLY when the prepare callback
// vouches for a commit marker — an unvouched prepare is skipped whole and
// later records still replay.
TEST_F(WalTest, PrepareRecordsReplayOnlyWhenVouchedFor) {
  WriteBatch committed_batch;
  committed_batch.Put(Slice("ka"), Slice("va"));
  committed_batch.Delete(Slice("kb"));
  WriteBatch orphaned_batch;
  orphaned_batch.Put(Slice("kx"), Slice("never"));
  std::string participants;  // shard set {1, 3}
  PutVarint32(&participants, 2);
  PutVarint32(&participants, 1);
  PutVarint32(&participants, 3);

  auto writer = NewWriter("/wal");
  ASSERT_TRUE(writer
                  ->AddPrepare(7, Slice(participants),
                               static_cast<uint32_t>(committed_batch.Count()),
                               Slice(committed_batch.rep()))
                  .ok());
  ASSERT_TRUE(writer
                  ->AddPrepare(9, Slice(participants),
                               static_cast<uint32_t>(orphaned_batch.Count()),
                               Slice(orphaned_batch.rep()))
                  .ok());
  ASSERT_TRUE(writer->AddUpdate(Slice("after"), Slice("v"), ValueType::kValue).ok());
  ASSERT_TRUE(writer->Close().ok());

  auto reader = NewReader("/wal");
  std::vector<std::tuple<std::string, std::string, ValueType>> replayed;
  std::vector<uint64_t> seen_txns;
  std::vector<std::vector<uint32_t>> seen_participants;
  ASSERT_TRUE(reader
                  ->ReplayUpdates(
                      [&](const Slice& key, const Slice& value, ValueType type) {
                        replayed.emplace_back(key.ToString(), value.ToString(), type);
                      },
                      [&](uint64_t txn_id, const std::vector<uint32_t>& shards, uint32_t count,
                          const Slice&) {
                        seen_txns.push_back(txn_id);
                        seen_participants.push_back(shards);
                        EXPECT_GT(count, 0u);
                        return txn_id == 7;  // only txn 7 has a marker
                      })
                  .ok());
  ASSERT_EQ(seen_txns, (std::vector<uint64_t>{7, 9}));
  ASSERT_EQ(seen_participants[0], (std::vector<uint32_t>{1, 3}));
  // Txn 7's two entries replay in order; txn 9 is skipped whole; the
  // trailing plain update still replays.
  ASSERT_EQ(replayed.size(), 3u);
  EXPECT_EQ(std::get<0>(replayed[0]), "ka");
  EXPECT_EQ(std::get<1>(replayed[0]), "va");
  EXPECT_EQ(std::get<0>(replayed[1]), "kb");
  EXPECT_EQ(std::get<2>(replayed[1]), ValueType::kTombstone);
  EXPECT_EQ(std::get<0>(replayed[2]), "after");
}

// Without a prepare callback the replayer must skip prepares entirely
// (a reader that predates 2PC state never resurrects uncommitted data).
TEST_F(WalTest, PrepareRecordsSkippedWithoutCallback) {
  WriteBatch batch;
  batch.Put(Slice("k"), Slice("v"));
  std::string participants;
  PutVarint32(&participants, 1);
  PutVarint32(&participants, 0);
  auto writer = NewWriter("/wal");
  ASSERT_TRUE(
      writer->AddPrepare(3, Slice(participants), 1, Slice(batch.rep())).ok());
  ASSERT_TRUE(writer->Close().ok());
  auto reader = NewReader("/wal");
  int count = 0;
  ASSERT_TRUE(
      reader->ReplayUpdates([&](const Slice&, const Slice&, ValueType) { ++count; }).ok());
  EXPECT_EQ(count, 0);
}

TEST_F(WalTest, ManyRecords) {
  auto writer = NewWriter("/wal");
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(writer
                    ->AddUpdate(Slice("key" + std::to_string(i)),
                                Slice("value" + std::to_string(i)), ValueType::kValue)
                    .ok());
  }
  ASSERT_TRUE(writer->Close().ok());
  auto reader = NewReader("/wal");
  int i = 0;
  ASSERT_TRUE(reader
                  ->ReplayUpdates([&](const Slice& k, const Slice& v, ValueType) {
                    ASSERT_EQ(k.ToString(), "key" + std::to_string(i));
                    ASSERT_EQ(v.ToString(), "value" + std::to_string(i));
                    ++i;
                  })
                  .ok());
  EXPECT_EQ(i, 5000);
}

}  // namespace
}  // namespace flodb
