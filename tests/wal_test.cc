#include "flodb/disk/wal.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "flodb/disk/mem_env.h"

namespace flodb {
namespace {

class WalTest : public ::testing::Test {
 protected:
  std::unique_ptr<WalWriter> NewWriter(const std::string& name) {
    std::unique_ptr<WritableFile> file;
    EXPECT_TRUE(env_.NewWritableFile(name, &file).ok());
    return std::make_unique<WalWriter>(std::move(file));
  }

  std::unique_ptr<WalReader> NewReader(const std::string& name) {
    std::unique_ptr<SequentialFile> file;
    EXPECT_TRUE(env_.NewSequentialFile(name, &file).ok());
    return std::make_unique<WalReader>(std::move(file));
  }

  MemEnv env_;
};

TEST_F(WalTest, RecordRoundTrip) {
  auto writer = NewWriter("/wal");
  ASSERT_TRUE(writer->AddRecord(Slice("record one")).ok());
  ASSERT_TRUE(writer->AddRecord(Slice("record two")).ok());
  ASSERT_TRUE(writer->Close().ok());

  auto reader = NewReader("/wal");
  std::string payload;
  ASSERT_TRUE(reader->ReadRecord(&payload));
  EXPECT_EQ(payload, "record one");
  ASSERT_TRUE(reader->ReadRecord(&payload));
  EXPECT_EQ(payload, "record two");
  EXPECT_FALSE(reader->ReadRecord(&payload));
  EXPECT_TRUE(reader->status().ok());
}

TEST_F(WalTest, EmptyLogReadsNothing) {
  auto writer = NewWriter("/wal");
  ASSERT_TRUE(writer->Close().ok());
  auto reader = NewReader("/wal");
  std::string payload;
  EXPECT_FALSE(reader->ReadRecord(&payload));
  EXPECT_TRUE(reader->status().ok());
}

TEST_F(WalTest, UpdateRecordsReplay) {
  auto writer = NewWriter("/wal");
  ASSERT_TRUE(writer->AddUpdate(Slice("k1"), Slice("v1"), ValueType::kValue).ok());
  ASSERT_TRUE(writer->AddUpdate(Slice("k2"), Slice(), ValueType::kTombstone).ok());
  ASSERT_TRUE(writer->AddUpdate(Slice("k1"), Slice("v2"), ValueType::kValue).ok());
  ASSERT_TRUE(writer->Close().ok());

  auto reader = NewReader("/wal");
  std::vector<std::tuple<std::string, std::string, ValueType>> replayed;
  ASSERT_TRUE(reader
                  ->ReplayUpdates([&](const Slice& key, const Slice& value, ValueType type) {
                    replayed.emplace_back(key.ToString(), value.ToString(), type);
                  })
                  .ok());
  ASSERT_EQ(replayed.size(), 3u);
  EXPECT_EQ(std::get<0>(replayed[0]), "k1");
  EXPECT_EQ(std::get<1>(replayed[0]), "v1");
  EXPECT_EQ(std::get<2>(replayed[1]), ValueType::kTombstone);
  EXPECT_EQ(std::get<1>(replayed[2]), "v2");
}

TEST_F(WalTest, TruncatedTailStopsCleanly) {
  auto writer = NewWriter("/wal");
  ASSERT_TRUE(writer->AddUpdate(Slice("k1"), Slice("v1"), ValueType::kValue).ok());
  ASSERT_TRUE(writer->AddUpdate(Slice("k2"), Slice("v2"), ValueType::kValue).ok());
  ASSERT_TRUE(writer->Close().ok());

  // Simulate a crash mid-append: drop the last few bytes.
  std::string data;
  ASSERT_TRUE(ReadFileToString(&env_, "/wal", &data).ok());
  data.resize(data.size() - 3);
  ASSERT_TRUE(WriteStringToFile(&env_, Slice(data), "/wal2", false).ok());

  auto reader = NewReader("/wal2");
  int count = 0;
  Status s = reader->ReplayUpdates(
      [&](const Slice&, const Slice&, ValueType) { ++count; });
  EXPECT_TRUE(s.ok()) << "truncated tail is a clean end, not corruption: " << s.ToString();
  EXPECT_EQ(count, 1);
}

TEST_F(WalTest, CorruptPayloadIsDetected) {
  auto writer = NewWriter("/wal");
  ASSERT_TRUE(writer->AddUpdate(Slice("key"), Slice("value"), ValueType::kValue).ok());
  ASSERT_TRUE(writer->Close().ok());

  std::string data;
  ASSERT_TRUE(ReadFileToString(&env_, "/wal", &data).ok());
  data[10] = static_cast<char>(data[10] ^ 0xff);  // flip a payload byte
  ASSERT_TRUE(WriteStringToFile(&env_, Slice(data), "/bad", false).ok());

  auto reader = NewReader("/bad");
  Status s = reader->ReplayUpdates([&](const Slice&, const Slice&, ValueType) {});
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST_F(WalTest, LargeRecords) {
  auto writer = NewWriter("/wal");
  const std::string big(1 << 20, 'W');
  ASSERT_TRUE(writer->AddUpdate(Slice("bigkey"), Slice(big), ValueType::kValue).ok());
  ASSERT_TRUE(writer->Close().ok());

  auto reader = NewReader("/wal");
  std::string key, value;
  ASSERT_TRUE(reader
                  ->ReplayUpdates([&](const Slice& k, const Slice& v, ValueType) {
                    key = k.ToString();
                    value = v.ToString();
                  })
                  .ok());
  EXPECT_EQ(key, "bigkey");
  EXPECT_EQ(value, big);
}

TEST_F(WalTest, ManyRecords) {
  auto writer = NewWriter("/wal");
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(writer
                    ->AddUpdate(Slice("key" + std::to_string(i)),
                                Slice("value" + std::to_string(i)), ValueType::kValue)
                    .ok());
  }
  ASSERT_TRUE(writer->Close().ok());
  auto reader = NewReader("/wal");
  int i = 0;
  ASSERT_TRUE(reader
                  ->ReplayUpdates([&](const Slice& k, const Slice& v, ValueType) {
                    ASSERT_EQ(k.ToString(), "key" + std::to_string(i));
                    ASSERT_EQ(v.ToString(), "value" + std::to_string(i));
                    ++i;
                  })
                  .ok());
  EXPECT_EQ(i, 5000);
}

}  // namespace
}  // namespace flodb
