// FloDB concurrency stress: mixed readers/writers/scanners racing with
// draining, persisting and compaction. Invariants checked:
//  * a Get never returns a value that was never written for that key;
//  * per-key monotonicity: once a writer-thread's own write completes,
//    that thread never reads an older version of the key it wrote;
//  * scans never return torn values and never miss committed prefixes.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "flodb/bench_util/workload.h"
#include "flodb/common/key_codec.h"
#include "flodb/core/flodb.h"
#include "flodb/disk/fault_env.h"
#include "flodb/disk/mem_env.h"

namespace flodb {
namespace {

using bench::SpreadKey;

constexpr uint64_t kSpace = 1 << 20;
std::string K(uint64_t i) { return EncodeKey(SpreadKey(i, kSpace)); }

FloDbOptions StressOptions(Env* env) {
  FloDbOptions options;
  options.memory_budget_bytes = 512 << 10;  // small: forces constant persists
  options.drain_threads = 1;
  options.disk.env = env;
  options.disk.path = "/db";
  options.disk.sstable_target_bytes = 16 << 10;
  options.disk.block_bytes = 1024;
  options.disk.l0_compaction_trigger = 3;
  options.disk.l1_max_bytes = 64 << 10;
  return options;
}

TEST(FloDBConcurrentTest, WriterOwnKeyMonotonicity) {
  MemEnv env;
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(StressOptions(&env), &db).ok());

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 4000;
  std::atomic<bool> failed{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread owns a disjoint key set; after writing version i it
      // must never read a version < i.
      std::string value;
      for (int i = 0; i < kOpsPerThread && !failed.load(); ++i) {
        const uint64_t key = static_cast<uint64_t>(t) * 100 + static_cast<uint64_t>(i % 100);
        const std::string written = std::to_string(i);
        if (!db->Put(Slice(K(key)), Slice(written)).ok()) {
          failed.store(true);
          break;
        }
        if (!db->Get(Slice(K(key)), &value).ok()) {
          ADD_FAILURE() << "own write lost: key " << key;
          failed.store(true);
          break;
        }
        // Value must be from this thread (same key partition) and >= i.
        if (std::stoi(value) < i) {
          ADD_FAILURE() << "stale read-own-write: wrote " << written << " read " << value;
          failed.store(true);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_FALSE(failed.load());
}

TEST(FloDBConcurrentTest, MixedWorkloadNoPhantomValues) {
  MemEnv env;
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(StressOptions(&env), &db).ok());

  constexpr uint64_t kKeys = 300;
  // Values have the shape "<key>:<counter>" — a get must only ever see a
  // value whose embedded key matches.
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};

  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&, t] {
      Random64 rng(static_cast<uint64_t>(t) * 13 + 1);
      int counter = 0;
      while (!stop.load()) {
        const uint64_t key = rng.Uniform(kKeys);
        db->Put(Slice(K(key)), Slice(std::to_string(key) + ":" + std::to_string(counter++)));
      }
    });
  }
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      Random64 rng(static_cast<uint64_t>(t) * 17 + 5);
      std::string value;
      while (!stop.load()) {
        const uint64_t key = rng.Uniform(kKeys);
        Status s = db->Get(Slice(K(key)), &value);
        if (s.ok()) {
          const size_t colon = value.find(':');
          if (colon == std::string::npos ||
              value.substr(0, colon) != std::to_string(key)) {
            ADD_FAILURE() << "phantom value for key " << key << ": " << value;
            failed.store(true);
          }
        } else if (!s.IsNotFound()) {
          ADD_FAILURE() << "get error: " << s.ToString();
          failed.store(true);
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::seconds(2));
  stop.store(true);
  for (auto& w : writers) {
    w.join();
  }
  for (auto& r : readers) {
    r.join();
  }
  EXPECT_FALSE(failed.load());
}

TEST(FloDBConcurrentTest, ScannersWritersReadersTogether) {
  MemEnv env;
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(StressOptions(&env), &db).ok());

  constexpr uint64_t kKeys = 400;
  for (uint64_t i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(db->Put(Slice(K(i)), Slice("init")).ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};

  std::thread writer([&] {
    Random64 rng(3);
    while (!stop.load()) {
      db->Put(Slice(K(rng.Uniform(kKeys))), Slice("update"));
    }
  });
  std::thread reader([&] {
    Random64 rng(5);
    std::string value;
    while (!stop.load()) {
      Status s = db->Get(Slice(K(rng.Uniform(kKeys))), &value);
      if (!s.ok() && !s.IsNotFound()) {
        failed.store(true);
      }
    }
  });
  std::thread scanner([&] {
    std::vector<std::pair<std::string, std::string>> out;
    while (!stop.load()) {
      Status s = db->Scan(Slice(K(100)), Slice(K(200)), 0, &out);
      if (!s.ok()) {
        failed.store(true);
        continue;
      }
      // All initial keys exist and are never deleted: a consistent scan
      // must return exactly the 100 keys in range.
      if (out.size() != 100) {
        ADD_FAILURE() << "scan returned " << out.size() << " of 100";
        failed.store(true);
      }
    }
  });

  std::this_thread::sleep_for(std::chrono::seconds(2));
  stop.store(true);
  writer.join();
  reader.join();
  scanner.join();
  EXPECT_FALSE(failed.load());
}

TEST(FloDBConcurrentTest, DeletesRacingWritesConverge) {
  MemEnv env;
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(StressOptions(&env), &db).ok());

  constexpr uint64_t kKeys = 100;
  std::atomic<bool> stop{false};
  std::thread putter([&] {
    Random64 rng(1);
    while (!stop.load()) {
      db->Put(Slice(K(rng.Uniform(kKeys))), Slice("live"));
    }
  });
  std::thread deleter([&] {
    Random64 rng(2);
    while (!stop.load()) {
      db->Delete(Slice(K(rng.Uniform(kKeys))));
    }
  });
  std::thread reader([&] {
    Random64 rng(3);
    std::string value;
    while (!stop.load()) {
      Status s = db->Get(Slice(K(rng.Uniform(kKeys))), &value);
      if (s.ok()) {
        ASSERT_EQ(value, "live");
      } else {
        ASSERT_TRUE(s.IsNotFound()) << s.ToString();
      }
    }
  });
  std::this_thread::sleep_for(std::chrono::seconds(1));
  stop.store(true);
  putter.join();
  deleter.join();
  reader.join();

  // Quiesce: final state must be readable and flushable without errors.
  ASSERT_TRUE(db->FlushAll().ok());
}

TEST(FloDBConcurrentTest, ScanDrainsNeverLoseSpillingWrites) {
  // Regression: helpers draining the immutable Membuffer must not start
  // before the post-swap grace period — a writer that resolved the old
  // buffer pre-swap can still be completing an Add into a bucket a helper
  // already collected, and the write would vanish with the buffer.
  // Trigger: common-prefix keys collapse into ONE partition, so buckets
  // fill and writers spill (and help) constantly while scans swap buffers.
  MemEnv env;
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(StressOptions(&env), &db).ok());

  auto string_key = [](uint64_t id) {
    char buf[32];
    snprintf(buf, sizeof(buf), "queue:msg:%012llu", static_cast<unsigned long long>(id));
    return std::string(buf);
  };

  constexpr uint64_t kTotal = 30'000;
  std::atomic<uint64_t> next_id{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> producers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&] {
      while (true) {
        const uint64_t id = next_id.fetch_add(1);
        if (id >= kTotal) {
          return;
        }
        ASSERT_TRUE(db->Put(Slice(string_key(id)), Slice("payload")).ok());
      }
    });
  }
  std::thread scanner([&] {
    std::vector<std::pair<std::string, std::string>> out;
    while (!done.load()) {
      db->Scan(Slice(string_key(0)), Slice(), 500, &out);
    }
  });
  for (auto& t : producers) {
    t.join();
  }
  done.store(true);
  scanner.join();

  std::string value;
  uint64_t missing = 0;
  for (uint64_t id = 0; id < kTotal; ++id) {
    if (!db->Get(Slice(string_key(id)), &value).ok()) {
      ++missing;
    }
  }
  EXPECT_EQ(missing, 0u) << "acknowledged writes vanished during scan drains";
}

TEST(FloDBConcurrentTest, SustainedOverloadKeepsAllAcknowledgedWrites) {
  MemEnv env;
  FloDbOptions options = StressOptions(&env);
  options.memory_budget_bytes = 256 << 10;  // very small => constant persist churn
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok());

  constexpr int kThreads = 3;
  constexpr uint64_t kPerThread = 3000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string payload(200, static_cast<char>('a' + t));
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const uint64_t key = static_cast<uint64_t>(t) * kPerThread + i;
        ASSERT_TRUE(db->Put(Slice(K(key)), Slice(payload)).ok());
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  ASSERT_TRUE(db->FlushAll().ok());

  std::string value;
  for (int t = 0; t < kThreads; ++t) {
    for (uint64_t i = 0; i < kPerThread; i += 211) {
      const uint64_t key = static_cast<uint64_t>(t) * kPerThread + i;
      ASSERT_TRUE(db->Get(Slice(K(key)), &value).ok()) << "lost write " << key;
      EXPECT_EQ(value[0], static_cast<char>('a' + t));
    }
  }
}

TEST(FloDBConcurrentTest, GroupCommitCoalescesConcurrentSyncWriters) {
  // N sync=true writers race through the WAL writer queue (DESIGN.md
  // §10). With a realistic fsync latency, writers pile up behind the
  // leader's Sync and commit in groups — the whole point of group
  // commit: far fewer fsyncs than writes, with every write still
  // readable afterwards. Runs under TSan via the `concurrent` label.
  MemEnv base;
  FaultInjectionEnv fault(&base);
  fault.SetSyncDelayMicros(500);
  FloDbOptions options = StressOptions(&fault);
  options.memory_budget_bytes = 4 << 20;  // roomy: no persist churn mid-test
  options.enable_wal = true;
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok());

  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      WriteOptions synced;
      synced.sync = true;
      for (uint64_t i = 0; i < kPerThread && !failed.load(); ++i) {
        const uint64_t key = 500'000 + static_cast<uint64_t>(t) * 1000 + i;
        if (!db->Put(synced, Slice(K(key)), Slice(std::to_string(i))).ok()) {
          failed.store(true);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  ASSERT_FALSE(failed.load());

  const StoreStats stats = db->GetStats();
  const uint64_t writes = kThreads * kPerThread;
  EXPECT_EQ(stats.group_commit_writers, writes);
  EXPECT_GE(stats.group_commit_writers, stats.group_commit_groups);
  EXPECT_GE(stats.wal_syncs, 1u);
  EXPECT_LE(stats.wal_syncs, writes / 2)
      << "concurrent sync writers must share fsyncs, not issue one each";

  std::string value;
  for (int t = 0; t < kThreads; ++t) {
    for (uint64_t i = 0; i < kPerThread; ++i) {
      const uint64_t key = 500'000 + static_cast<uint64_t>(t) * 1000 + i;
      ASSERT_TRUE(db->Get(Slice(K(key)), &value).ok()) << "thread " << t << " op " << i;
    }
  }
}

}  // namespace
}  // namespace flodb
