#include "flodb/common/synchronization.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace flodb {
namespace {

TEST(SpinLockTest, LockUnlock) {
  SpinLock lock;
  lock.lock();
  lock.unlock();
  lock.lock();
  lock.unlock();
}

TEST(SpinLockTest, TryLockFailsWhenHeld) {
  SpinLock lock;
  lock.lock();
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(SpinLockTest, MutualExclusionCounter) {
  SpinLock lock;
  int counter = 0;  // deliberately non-atomic: the lock must protect it
  constexpr int kThreads = 4;
  constexpr int kIters = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        SpinLockHolder guard(lock);
        ++counter;
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(BackoffTest, PauseProgressesWithoutBlocking) {
  Backoff backoff;
  for (int i = 0; i < 100; ++i) {
    backoff.Pause();
  }
  backoff.Reset();
  backoff.Pause();
}

}  // namespace
}  // namespace flodb
