// ShardedKVStore: routing at shard boundaries, cross-shard WriteBatch
// splitting, merged-scan equivalence against a single instance, per-shard
// WAL recovery, and shards=1 stat parity with plain FloDB.

#include "flodb/core/sharded_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "flodb/bench_util/workload.h"
#include "flodb/common/key_codec.h"
#include "flodb/core/shard_router.h"
#include "flodb/disk/mem_env.h"

namespace flodb {
namespace {

using bench::SpreadKey;

constexpr uint64_t kKeySpace = 1 << 20;

std::string K(uint64_t i) { return EncodeKey(SpreadKey(i, kKeySpace)); }

FloDbOptions BaseOptions(MemEnv* env, int shards) {
  FloDbOptions options;
  options.memory_budget_bytes = 4u << 20;
  options.shards = shards;
  options.disk.env = env;
  options.disk.path = "/db";
  options.disk.sstable_target_bytes = 64 << 10;
  return options;
}

Status OpenSharded(const FloDbOptions& options, std::unique_ptr<ShardedKVStore>* out) {
  return ShardedKVStore::Open(options, out);
}

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

TEST(ShardRouterTest, SingleShardAlwaysRoutesToZero) {
  ShardRouter router(1, 0);
  EXPECT_EQ(router.ShardOf(Slice("")), 0);
  EXPECT_EQ(router.ShardOf(Slice("anything")), 0);
  EXPECT_EQ(router.ShardOf(Slice(EncodeKey(~uint64_t{0}))), 0);
}

TEST(ShardRouterTest, BoundariesSplitTheTopBits) {
  // 4 shards: shard = top 2 bits of the first 8 key bytes.
  ShardRouter router(4, 0);
  const uint64_t quarter = uint64_t{1} << 62;
  for (int q = 0; q < 4; ++q) {
    const uint64_t lo = quarter * static_cast<uint64_t>(q);
    EXPECT_EQ(router.ShardOf(Slice(EncodeKey(lo))), q) << "first key of shard " << q;
    EXPECT_EQ(router.ShardOf(Slice(EncodeKey(lo + quarter - 1))), q) << "last key of shard " << q;
  }
  // One past each boundary belongs to the next shard.
  EXPECT_EQ(router.ShardOf(Slice(EncodeKey(quarter))), 1);
  EXPECT_EQ(router.ShardOf(Slice(EncodeKey(2 * quarter))), 2);
  EXPECT_EQ(router.ShardOf(Slice(EncodeKey(3 * quarter))), 3);
}

TEST(ShardRouterTest, ShortKeysZeroPadAndPreserveOrder) {
  ShardRouter router(4, 0);
  // A short key routes like its zero-padded extension, so byte order and
  // shard order agree ("a" < "a\0..." and both land in the same shard).
  EXPECT_EQ(router.ShardOf(Slice("a")), router.ShardOf(Slice(std::string("a\0\0\0\0\0\0\0", 8))));
  EXPECT_EQ(router.ShardOf(Slice("")), 0);
  // 0x61 top bits = 01 -> shard 1 of 4.
  EXPECT_EQ(router.ShardOf(Slice("a")), 1);
  EXPECT_EQ(router.ShardOf(Slice("\xff")), 3);
}

TEST(ShardRouterTest, PrefixSkipRoutesOnTheSuffix) {
  ShardRouter skipped(4, 8);
  // Same 8-byte prefix, different suffixes: routing must differ.
  const std::string a = std::string("session:") + EncodeKey(0);
  const std::string b = std::string("session:") + EncodeKey(~uint64_t{0});
  EXPECT_EQ(skipped.ShardOf(Slice(a)), 0);
  EXPECT_EQ(skipped.ShardOf(Slice(b)), 3);
  EXPECT_FALSE(skipped.order_preserving());
  // Without the skip everything collapses onto the prefix's shard.
  ShardRouter plain(4, 0);
  EXPECT_EQ(plain.ShardOf(Slice(a)), plain.ShardOf(Slice(b)));
}

TEST(ShardRouterTest, ScanPruningCoversTheBounds) {
  ShardRouter router(8, 0);
  int first = -1;
  int last = -1;
  router.ShardRange(Slice(EncodeKey(uint64_t{1} << 61)), Slice(EncodeKey(uint64_t{3} << 61)),
                    &first, &last);
  EXPECT_EQ(first, 1);
  EXPECT_EQ(last, 3);
  router.ShardRange(Slice(), Slice(), &first, &last);
  EXPECT_EQ(first, 0);
  EXPECT_EQ(last, 7);
  // A non-order-preserving router must consult every shard.
  ShardRouter skipped(8, 4);
  skipped.ShardRange(Slice(EncodeKey(0)), Slice(EncodeKey(1)), &first, &last);
  EXPECT_EQ(first, 0);
  EXPECT_EQ(last, 7);
}

// ---------------------------------------------------------------------------
// Open validation and rounding
// ---------------------------------------------------------------------------

TEST(ShardedStoreTest, RejectsNonPositiveShardCounts) {
  MemEnv env;
  std::unique_ptr<ShardedKVStore> store;
  FloDbOptions options = BaseOptions(&env, 0);
  EXPECT_TRUE(OpenSharded(options, &store).IsInvalidArgument());
  options.shards = -3;
  EXPECT_TRUE(OpenSharded(options, &store).IsInvalidArgument());
}

TEST(ShardedStoreTest, PlainFloDbOpenRejectsShardCounts) {
  MemEnv env;
  std::unique_ptr<FloDB> db;
  FloDbOptions options = BaseOptions(&env, 0);
  EXPECT_TRUE(FloDB::Open(options, &db).IsInvalidArgument());
  options.shards = 4;  // a single FloDB is one shard; the facade handles >1
  EXPECT_TRUE(FloDB::Open(options, &db).IsInvalidArgument());
}

TEST(ShardedStoreTest, NonPowerOfTwoRoundsUp) {
  for (const auto& [requested, effective] : {std::pair{3, 4}, {5, 8}, {6, 8}, {9, 16}}) {
    // Fresh env per count: a directory remembers its topology (SHARDING
    // manifest), so differently-sharded stores need different homes.
    MemEnv env;
    std::unique_ptr<ShardedKVStore> store;
    ASSERT_TRUE(OpenSharded(BaseOptions(&env, requested), &store).ok()) << requested;
    EXPECT_EQ(store->NumShards(), effective) << requested;
  }
}

TEST(ShardedStoreTest, RejectsAbsurdShardCounts) {
  MemEnv env;
  std::unique_ptr<ShardedKVStore> store;
  EXPECT_TRUE(OpenSharded(BaseOptions(&env, 1000), &store).IsInvalidArgument());
  // A budget that would leave shards with zero bytes is caught up front.
  FloDbOptions options = BaseOptions(&env, 256);
  options.memory_budget_bytes = 100;
  EXPECT_TRUE(OpenSharded(options, &store).IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Routing correctness through the full store
// ---------------------------------------------------------------------------

TEST(ShardedStoreTest, BoundaryKeysRouteAndReadBack) {
  MemEnv env;
  std::unique_ptr<ShardedKVStore> store;
  ASSERT_TRUE(OpenSharded(BaseOptions(&env, 4), &store).ok());
  const uint64_t quarter = uint64_t{1} << 62;
  std::vector<uint64_t> probes;
  for (int q = 0; q < 4; ++q) {
    const uint64_t lo = quarter * static_cast<uint64_t>(q);
    probes.insert(probes.end(), {lo, lo + 1, lo + quarter - 1});
  }
  for (uint64_t p : probes) {
    ASSERT_TRUE(store->Put(Slice(EncodeKey(p)), Slice("v" + std::to_string(p))).ok());
  }
  std::string value;
  for (uint64_t p : probes) {
    ASSERT_TRUE(store->Get(Slice(EncodeKey(p)), &value).ok()) << p;
    EXPECT_EQ(value, "v" + std::to_string(p));
  }
  // Each quarter's probes landed on their own shard: all four shards saw
  // exactly 3 puts.
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(store->ShardStats(s).puts, 3u) << "shard " << s;
  }
}

TEST(ShardedStoreTest, DeletesRouteToTheOwningShard) {
  MemEnv env;
  std::unique_ptr<ShardedKVStore> store;
  ASSERT_TRUE(OpenSharded(BaseOptions(&env, 4), &store).ok());
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(store->Put(Slice(K(i)), Slice("v")).ok());
  }
  for (uint64_t i = 0; i < 1000; i += 2) {
    ASSERT_TRUE(store->Delete(Slice(K(i))).ok());
  }
  std::string value;
  for (uint64_t i = 0; i < 1000; ++i) {
    if (i % 2 == 0) {
      EXPECT_TRUE(store->Get(Slice(K(i)), &value).IsNotFound()) << i;
    } else {
      EXPECT_TRUE(store->Get(Slice(K(i)), &value).ok()) << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Cross-shard WriteBatch splitting
// ---------------------------------------------------------------------------

TEST(ShardedStoreTest, CrossShardBatchSplitsPerShard) {
  MemEnv env;
  std::unique_ptr<ShardedKVStore> store;
  ASSERT_TRUE(OpenSharded(BaseOptions(&env, 4), &store).ok());

  // 64 entries round-robining the shards, plus an in-batch overwrite that
  // must stay ordered after the split (same key -> same shard).
  WriteBatch batch;
  for (uint64_t i = 0; i < 64; ++i) {
    batch.Put(Slice(K(i * (kKeySpace / 64))), Slice("first" + std::to_string(i)));
  }
  batch.Put(Slice(K(0)), Slice("second"));
  ASSERT_TRUE(store->Write(WriteOptions(), &batch).ok());

  std::string value;
  ASSERT_TRUE(store->Get(Slice(K(0)), &value).ok());
  EXPECT_EQ(value, "second") << "last-write-wins must survive the split";
  for (uint64_t i = 1; i < 64; ++i) {
    ASSERT_TRUE(store->Get(Slice(K(i * (kKeySpace / 64))), &value).ok()) << i;
    EXPECT_EQ(value, "first" + std::to_string(i));
  }

  // Every shard committed exactly one split (one group commit per touched
  // shard), and the splits partition the 65 entries.
  uint64_t entries = 0;
  for (int s = 0; s < 4; ++s) {
    const StoreStats stats = store->ShardStats(s);
    EXPECT_EQ(stats.batch_writes, 1u) << "shard " << s;
    EXPECT_GT(stats.batch_entries, 0u) << "shard " << s;
    entries += stats.batch_entries;
  }
  EXPECT_EQ(entries, 65u);
}

TEST(ShardedStoreTest, SingleShardBatchSkipsTheSplit) {
  MemEnv env;
  std::unique_ptr<ShardedKVStore> store;
  ASSERT_TRUE(OpenSharded(BaseOptions(&env, 4), &store).ok());
  // All keys in the first quarter of the keyspace -> shard 0 only.
  WriteBatch batch;
  for (uint64_t i = 0; i < 32; ++i) {
    batch.Put(Slice(K(i)), Slice("v"));
  }
  ASSERT_TRUE(store->Write(WriteOptions(), &batch).ok());
  EXPECT_EQ(store->ShardStats(0).batch_writes, 1u);
  EXPECT_EQ(store->ShardStats(0).batch_entries, 32u);
  for (int s = 1; s < 4; ++s) {
    EXPECT_EQ(store->ShardStats(s).batch_writes, 0u) << "shard " << s;
  }
}

// ---------------------------------------------------------------------------
// Merged scans
// ---------------------------------------------------------------------------

TEST(ShardedStoreTest, MergedScanEquivalentToSingleShard) {
  MemEnv env_sharded;
  MemEnv env_single;
  std::unique_ptr<ShardedKVStore> sharded;
  std::unique_ptr<ShardedKVStore> single;
  ASSERT_TRUE(OpenSharded(BaseOptions(&env_sharded, 4), &sharded).ok());
  ASSERT_TRUE(OpenSharded(BaseOptions(&env_single, 1), &single).ok());

  // Same writes to both stores: interleaved puts, overwrites, deletes.
  for (uint64_t i = 0; i < 5000; ++i) {
    const std::string v = "v" + std::to_string(i % 97);
    ASSERT_TRUE(sharded->Put(Slice(K(i * 7919 % kKeySpace)), Slice(v)).ok());
    ASSERT_TRUE(single->Put(Slice(K(i * 7919 % kKeySpace)), Slice(v)).ok());
  }
  for (uint64_t i = 0; i < 5000; i += 5) {
    ASSERT_TRUE(sharded->Delete(Slice(K(i * 7919 % kKeySpace))).ok());
    ASSERT_TRUE(single->Delete(Slice(K(i * 7919 % kKeySpace))).ok());
  }

  // Full-range materializing scan.
  std::vector<std::pair<std::string, std::string>> got;
  std::vector<std::pair<std::string, std::string>> want;
  ASSERT_TRUE(sharded->Scan(Slice(), Slice(), 0, &got).ok());
  ASSERT_TRUE(single->Scan(Slice(), Slice(), 0, &want).ok());
  EXPECT_EQ(got, want);
  ASSERT_GT(want.size(), 100u) << "the dataset must be non-trivial";

  // Bounded sub-range through the streaming iterator, small chunks so the
  // merge crosses many chunk fetches.
  ReadOptions read_options;
  read_options.scan_chunk_size = 64;
  const std::string low = K(kKeySpace / 5);
  const std::string high = K(4 * kKeySpace / 5);
  auto it_sharded = sharded->NewScanIterator(read_options, Slice(low), Slice(high));
  auto it_single = single->NewScanIterator(read_options, Slice(low), Slice(high));
  size_t count = 0;
  std::string prev;
  while (it_sharded->Valid() && it_single->Valid()) {
    EXPECT_EQ(it_sharded->key().ToString(), it_single->key().ToString()) << count;
    EXPECT_EQ(it_sharded->value().ToString(), it_single->value().ToString()) << count;
    // Global order across shard boundaries must be strictly ascending.
    EXPECT_LT(prev, it_sharded->key().ToString());
    prev = it_sharded->key().ToString();
    it_sharded->Next();
    it_single->Next();
    ++count;
  }
  EXPECT_FALSE(it_sharded->Valid());
  EXPECT_FALSE(it_single->Valid());
  EXPECT_TRUE(it_sharded->status().ok());
  ASSERT_GT(count, 100u);
  // The merged cursor's buffering stays bounded by shards x chunk size.
  EXPECT_LE(it_sharded->MaxBufferedEntries(), 4 * (read_options.scan_chunk_size + 1));
}

TEST(ShardedStoreTest, InvertedScanBoundsYieldEmptyNotCrash) {
  MemEnv env;
  std::unique_ptr<ShardedKVStore> store;
  ASSERT_TRUE(OpenSharded(BaseOptions(&env, 4), &store).ok());
  ASSERT_TRUE(store->Put(Slice(K(kKeySpace / 2)), Slice("v")).ok());
  // low > high routes first > last through the pruner — must behave like
  // plain FloDB's immediately-exhausted scan, not blow up.
  std::vector<std::pair<std::string, std::string>> out = {{"stale", "stale"}};
  ASSERT_TRUE(store->Scan(Slice(K(kKeySpace - 1)), Slice(K(1)), 0, &out).ok());
  EXPECT_TRUE(out.empty());
  auto it = store->NewScanIterator(ReadOptions(), Slice(K(kKeySpace - 1)), Slice(K(1)));
  EXPECT_FALSE(it->Valid());
  EXPECT_TRUE(it->status().ok());
}

TEST(ShardedStoreTest, ScanLimitStopsAcrossShardBoundaries) {
  MemEnv env;
  std::unique_ptr<ShardedKVStore> store;
  ASSERT_TRUE(OpenSharded(BaseOptions(&env, 4), &store).ok());
  for (uint64_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(store->Put(Slice(K(i * (kKeySpace / 2000))), Slice("v")).ok());
  }
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(store->Scan(Slice(), Slice(), 700, &out).ok());
  EXPECT_EQ(out.size(), 700u);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LT(out[i - 1].first, out[i].first);
  }
}

// ---------------------------------------------------------------------------
// Per-shard recovery
// ---------------------------------------------------------------------------

TEST(ShardedStoreTest, PerShardWalRecoveryAfterTornTail) {
  MemEnv env;
  FloDbOptions options = BaseOptions(&env, 4);
  options.enable_wal = true;
  {
    std::unique_ptr<ShardedKVStore> store;
    ASSERT_TRUE(OpenSharded(options, &store).ok());
    for (uint64_t i = 0; i < 800; ++i) {
      ASSERT_TRUE(store->Put(Slice(K(i * (kKeySpace / 800))), Slice("durable")).ok());
    }
    // "Crash": no FlushAll; each shard's WAL survives in its subdirectory.
  }

  // Tear the tail of ONE shard's WAL (shard 2). The other shards' logs
  // stay intact, so their recovery must be unaffected.
  const std::string torn_dir = ShardedKVStore::ShardPath("/db", 2);
  std::vector<std::string> children;
  ASSERT_TRUE(env.GetChildren(torn_dir, &children).ok());
  bool tore = false;
  for (const std::string& name : children) {
    if (name.rfind("wal-", 0) == 0) {
      std::string data;
      ASSERT_TRUE(ReadFileToString(&env, torn_dir + "/" + name, &data).ok());
      ASSERT_GT(data.size(), 5u);
      data.resize(data.size() - 5);
      ASSERT_TRUE(WriteStringToFile(&env, Slice(data), torn_dir + "/" + name, false).ok());
      tore = true;
    }
  }
  ASSERT_TRUE(tore) << "shard 2 must have written a WAL";

  std::unique_ptr<ShardedKVStore> store;
  ASSERT_TRUE(OpenSharded(options, &store).ok());
  std::string value;
  uint64_t missing = 0;
  for (uint64_t i = 0; i < 800; ++i) {
    const std::string key = K(i * (kKeySpace / 800));
    const Status s = store->Get(Slice(key), &value);
    if (s.IsNotFound()) {
      ++missing;
      // A torn tail may only lose writes from the shard whose log was cut.
      EXPECT_EQ(store->ShardOf(Slice(key)), 2) << i;
    } else {
      ASSERT_TRUE(s.ok()) << i;
      EXPECT_EQ(value, "durable");
    }
  }
  // At most the one torn record is gone; everything else recovered.
  EXPECT_LE(missing, 1u);
}

TEST(ShardedStoreTest, CleanReopenRecoversEveryShard) {
  MemEnv env;
  FloDbOptions options = BaseOptions(&env, 4);
  options.enable_wal = true;
  {
    std::unique_ptr<ShardedKVStore> store;
    ASSERT_TRUE(OpenSharded(options, &store).ok());
    for (uint64_t i = 0; i < 2000; ++i) {
      ASSERT_TRUE(store->Put(Slice(K(i * 449 % kKeySpace)), Slice("v" + std::to_string(i))).ok());
    }
    ASSERT_TRUE(store->FlushAll().ok());
  }
  std::unique_ptr<ShardedKVStore> store;
  ASSERT_TRUE(OpenSharded(options, &store).ok());
  // 449 is coprime with the keyspace, so every i wrote a distinct key.
  std::string value;
  for (uint64_t i = 0; i < 2000; i += 97) {
    ASSERT_TRUE(store->Get(Slice(K(i * 449 % kKeySpace)), &value).ok()) << i;
    EXPECT_EQ(value, "v" + std::to_string(i));
  }
}

TEST(ShardedStoreTest, ReopenWithDifferentTopologyRefused) {
  MemEnv env;
  {
    std::unique_ptr<ShardedKVStore> store;
    ASSERT_TRUE(OpenSharded(BaseOptions(&env, 2), &store).ok());
    ASSERT_TRUE(store->Put(Slice(K(kKeySpace - 1)), Slice("stranded?")).ok());
    ASSERT_TRUE(store->FlushAll().ok());
  }
  // A different shard count would re-route existing keys into shards that
  // never held them — refuse instead of silently hiding durable data.
  std::unique_ptr<ShardedKVStore> store;
  EXPECT_TRUE(OpenSharded(BaseOptions(&env, 4), &store).IsInvalidArgument());
  // Same count but different routing (prefix skip) is just as wrong.
  FloDbOptions skipped = BaseOptions(&env, 2);
  skipped.shard_key_prefix_skip = 4;
  EXPECT_TRUE(OpenSharded(skipped, &store).IsInvalidArgument());
  // The matching topology reopens and still sees the data.
  ASSERT_TRUE(OpenSharded(BaseOptions(&env, 2), &store).ok());
  std::string value;
  ASSERT_TRUE(store->Get(Slice(K(kKeySpace - 1)), &value).ok());
  EXPECT_EQ(value, "stranded?");
}

TEST(ShardedStoreTest, TopologyManifestRecordsTheRoundedCount) {
  MemEnv env;
  {
    std::unique_ptr<ShardedKVStore> store;
    ASSERT_TRUE(OpenSharded(BaseOptions(&env, 3), &store).ok());  // rounds to 4
  }
  // Reopening with any request that rounds to the same effective count
  // matches the manifest.
  std::unique_ptr<ShardedKVStore> store;
  ASSERT_TRUE(OpenSharded(BaseOptions(&env, 4), &store).ok());
  EXPECT_EQ(store->NumShards(), 4);
}

TEST(ShardedStoreTest, CrossShardWriteCounterTracksStraddlingBatches) {
  MemEnv env;
  std::unique_ptr<ShardedKVStore> store;
  ASSERT_TRUE(OpenSharded(BaseOptions(&env, 4), &store).ok());
  ASSERT_TRUE(store->Put(Slice(K(0)), Slice("v")).ok());  // single shard: no split
  EXPECT_EQ(store->CrossShardWrites(), 0u);
  WriteBatch straddling;
  straddling.Put(Slice(K(0)), Slice("v"));
  straddling.Put(Slice(K(kKeySpace - 1)), Slice("v"));
  ASSERT_TRUE(store->Write(WriteOptions(), &straddling).ok());
  EXPECT_EQ(store->CrossShardWrites(), 1u);
}

// ---------------------------------------------------------------------------
// shards=1 parity
// ---------------------------------------------------------------------------

TEST(ShardedStoreTest, SingleShardStatParityWithPlainFloDB) {
  MemEnv env_plain;
  MemEnv env_sharded;
  FloDbOptions plain_options = BaseOptions(&env_plain, 1);
  std::unique_ptr<FloDB> plain;
  ASSERT_TRUE(FloDB::Open(plain_options, &plain).ok());
  std::unique_ptr<ShardedKVStore> sharded;
  ASSERT_TRUE(OpenSharded(BaseOptions(&env_sharded, 1), &sharded).ok());
  EXPECT_EQ(sharded->Name(), plain->Name()) << "shards=1 is a pass-through";

  const auto drive = [](KVStore* store) {
    for (uint64_t i = 0; i < 3000; ++i) {
      ASSERT_TRUE(store->Put(Slice(K(i)), Slice("value-" + std::to_string(i))).ok());
    }
    WriteBatch batch;
    for (uint64_t i = 0; i < 100; ++i) {
      batch.Put(Slice(K(10'000 + i)), Slice("batched"));
    }
    ASSERT_TRUE(store->Write(WriteOptions(), &batch).ok());
    std::string value;
    for (uint64_t i = 0; i < 3000; i += 7) {
      store->Get(Slice(K(i)), &value);
    }
    for (uint64_t i = 0; i < 200; i += 2) {
      ASSERT_TRUE(store->Delete(Slice(K(i))).ok());
    }
    std::vector<std::pair<std::string, std::string>> out;
    ASSERT_TRUE(store->Scan(Slice(K(0)), Slice(K(500)), 0, &out).ok());
    auto it = store->NewScanIterator(ReadOptions(), Slice(K(0)), Slice(K(500)));
    while (it->Valid()) {
      it->Next();
    }
    ASSERT_TRUE(store->FlushAll().ok());
  };
  drive(plain.get());
  drive(sharded.get());

  const StoreStats a = plain->GetStats();
  const StoreStats b = sharded->GetStats();
  EXPECT_EQ(a.puts, b.puts);
  EXPECT_EQ(a.gets, b.gets);
  EXPECT_EQ(a.deletes, b.deletes);
  EXPECT_EQ(a.scans, b.scans);
  EXPECT_EQ(a.batch_writes, b.batch_writes);
  EXPECT_EQ(a.batch_entries, b.batch_entries);
  EXPECT_EQ(a.wal_batch_records, b.wal_batch_records);
  EXPECT_EQ(a.iterator_scans, b.iterator_scans);
  EXPECT_EQ(a.master_scans, b.master_scans);
  // Data-movement counters (drains, spills, rotations) depend on thread
  // timing, so parity there is not byte-for-byte deterministic; the
  // op-count surface above is.
  EXPECT_EQ(a.membuffer_adds + a.memtable_direct_adds,
            b.membuffer_adds + b.memtable_direct_adds);
}

// ---------------------------------------------------------------------------
// Cross-shard atomicity and snapshot consistency (DESIGN.md §8)
// ---------------------------------------------------------------------------

// Quarter q of the keyspace is exactly shard q of 4.
std::string QK(int shard, uint64_t i) {
  return EncodeKey(static_cast<uint64_t>(shard) * (uint64_t{1} << 62) + i);
}

// The merged iterator must expose each entry's REAL sequence number
// (regression: the shard adapter used to hardcode seq()=0, which made
// every merged entry look like it predated the beginning of time).
TEST(ShardedStoreTest, MergedIteratorThreadsRealSequenceNumbers) {
  MemEnv env;
  std::unique_ptr<ShardedKVStore> store;
  ASSERT_TRUE(OpenSharded(BaseOptions(&env, 4), &store).ok());
  for (int q = 0; q < 4; ++q) {
    ASSERT_TRUE(store->Put(Slice(QK(q, 1)), Slice("first")).ok());
  }
  std::vector<uint64_t> first_seqs;
  {
    auto it = store->NewScanIterator(ReadOptions(), Slice(), Slice());
    for (; it->Valid(); it->Next()) {
      EXPECT_GE(it->seq(), 1u) << "hardcoded seq resurfaced";
      first_seqs.push_back(it->seq());
    }
    ASSERT_EQ(first_seqs.size(), 4u);
  }
  for (int q = 0; q < 4; ++q) {
    ASSERT_TRUE(store->Put(Slice(QK(q, 1)), Slice("second")).ok());
  }
  auto it = store->NewScanIterator(ReadOptions(), Slice(), Slice());
  size_t i = 0;
  for (; it->Valid(); it->Next(), ++i) {
    EXPECT_EQ(it->value().ToString(), "second");
    EXPECT_GT(it->seq(), first_seqs[i]) << "the overwrite must carry a newer seq";
  }
  EXPECT_EQ(i, 4u);
}

// Merged scans vs racing cross-shard writers: each transaction writes
// the SAME round value to one key per shard, so any snapshot that mixes
// rounds is a torn read. The write fence must make every scan see one
// round across all four shards. (Each shard stream's first chunk holds
// the shard's single key, so the whole snapshot materializes under the
// fence — the documented single-chunk consistency case.)
TEST(ShardedStoreTest, MergedScanNeverObservesHalfACrossShardBatch) {
  MemEnv env;
  std::unique_ptr<ShardedKVStore> store;
  ASSERT_TRUE(OpenSharded(BaseOptions(&env, 4), &store).ok());
  ASSERT_TRUE(store->AtomicMode());
  constexpr uint64_t kScans = 300;
  {
    WriteBatch seed;
    for (int q = 0; q < 4; ++q) {
      seed.Put(Slice(QK(q, 0)), Slice("0"));
    }
    ASSERT_TRUE(store->Write(WriteOptions(), &seed).ok());
  }
  // The scanner paces the test: the writer keeps committing rounds until
  // every scan has run, so each scan genuinely races a write.
  std::atomic<bool> stop{false};
  std::atomic<bool> writer_failed{false};
  std::atomic<uint64_t> rounds{0};
  std::thread writer([&] {
    for (uint64_t r = 1; !stop.load(); ++r) {
      WriteBatch batch;
      const std::string v = std::to_string(r);
      for (int q = 0; q < 4; ++q) {
        batch.Put(Slice(QK(q, 0)), Slice(v));
      }
      if (!store->Write(WriteOptions(), &batch).ok()) {
        writer_failed.store(true);
        break;
      }
      rounds.store(r);
    }
  });
  for (uint64_t scan = 0; scan < kScans; ++scan) {
    auto it = store->NewScanIterator(ReadOptions(), Slice(), Slice());
    std::vector<std::string> values;
    for (; it->Valid(); it->Next()) {
      values.push_back(it->value().ToString());
    }
    ASSERT_EQ(values.size(), 4u);
    for (size_t i = 1; i < values.size(); ++i) {
      ASSERT_EQ(values[i], values[0])
          << "torn snapshot: shard 0 at round " << values[0] << ", shard " << i << " at round "
          << values[i];
    }
  }
  stop.store(true);
  writer.join();
  ASSERT_FALSE(writer_failed.load());
  EXPECT_GT(rounds.load(), 0u);
  EXPECT_EQ(store->GetStats().txn_commits, rounds.load() + 1);
}

// An explicit piggyback snapshot opts out of the fence: it must still
// work (weaker per-shard consistency), just without the cross-shard
// guarantee.
TEST(ShardedStoreTest, PiggybackSnapshotOptsOutOfTheFence) {
  MemEnv env;
  std::unique_ptr<ShardedKVStore> store;
  ASSERT_TRUE(OpenSharded(BaseOptions(&env, 4), &store).ok());
  WriteBatch batch;
  for (int q = 0; q < 4; ++q) {
    batch.Put(Slice(QK(q, 0)), Slice("v"));
  }
  ASSERT_TRUE(store->Write(WriteOptions(), &batch).ok());
  ReadOptions piggyback;
  piggyback.snapshot_mode = SnapshotMode::kPiggyback;
  auto it = store->NewScanIterator(piggyback, Slice(), Slice());
  size_t count = 0;
  for (; it->Valid(); it->Next()) {
    ++count;
  }
  EXPECT_EQ(count, 4u);
  EXPECT_TRUE(it->status().ok());
}

// Balance sanity: a uniform keyspace spreads across every shard.
TEST(ShardedStoreTest, UniformLoadTouchesEveryShard) {
  MemEnv env;
  std::unique_ptr<ShardedKVStore> store;
  ASSERT_TRUE(OpenSharded(BaseOptions(&env, 8), &store).ok());
  for (uint64_t i = 0; i < 4096; ++i) {
    ASSERT_TRUE(store->Put(Slice(K(i * (kKeySpace / 4096))), Slice("v")).ok());
  }
  for (int s = 0; s < store->NumShards(); ++s) {
    EXPECT_GT(store->ShardStats(s).puts, 4096u / 16) << "shard " << s << " underloaded";
  }
}

}  // namespace
}  // namespace flodb
