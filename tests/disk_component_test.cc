// DiskComponent: flush (AddRun), multi-level Get, compaction correctness
// (dedup, tombstone retirement at the bottom level), iterator views,
// recovery from MANIFEST, and file garbage collection.

#include "flodb/disk/disk_component.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "flodb/common/key_codec.h"
#include "flodb/core/memtable_iterator.h"
#include "flodb/disk/mem_env.h"
#include "flodb/mem/memtable.h"

namespace flodb {
namespace {

class DiskComponentTest : public ::testing::Test {
 protected:
  DiskOptions SmallDisk() {
    DiskOptions options;
    options.env = &env_;
    options.path = "/db";
    options.sstable_target_bytes = 8 << 10;
    options.block_bytes = 1024;
    options.l0_compaction_trigger = 4;
    options.l1_max_bytes = 32 << 10;
    options.level_size_multiplier = 4;
    options.compaction_threads = 1;
    return options;
  }

  void OpenDisk(DiskOptions options) {
    ASSERT_TRUE(DiskComponent::Open(options, &disk_).ok());
  }

  // Flushes entries [lo, hi) with seqs starting at seq_base as one run.
  void FlushRange(uint64_t lo, uint64_t hi, uint64_t seq_base, const std::string& tag,
                  ValueType type = ValueType::kValue) {
    MemTable table(1 << 20);
    for (uint64_t k = lo; k < hi; ++k) {
      table.Add(Slice(EncodeKey(k)), Slice(tag + std::to_string(k)), seq_base + (k - lo), type);
    }
    MemTableIterator iter(&table);
    ASSERT_TRUE(disk_->AddRun(&iter).ok());
  }

  MemEnv env_;
  std::unique_ptr<DiskComponent> disk_;
};

TEST_F(DiskComponentTest, EmptyComponentGetMisses) {
  OpenDisk(SmallDisk());
  EXPECT_TRUE(disk_->Get(Slice(EncodeKey(1)), nullptr, nullptr, nullptr).IsNotFound());
}

TEST_F(DiskComponentTest, FlushThenGet) {
  OpenDisk(SmallDisk());
  FlushRange(0, 100, 1, "v");
  std::string value;
  uint64_t seq;
  ValueType type;
  ASSERT_TRUE(disk_->Get(Slice(EncodeKey(42)), &value, &seq, &type).ok());
  EXPECT_EQ(value, "v42");
  EXPECT_TRUE(disk_->Get(Slice(EncodeKey(100)), nullptr, nullptr, nullptr).IsNotFound());
}

TEST_F(DiskComponentTest, NewerRunWinsOnOverlap) {
  OpenDisk(SmallDisk());
  FlushRange(0, 50, 1, "old");
  FlushRange(0, 50, 100, "new");
  std::string value;
  ASSERT_TRUE(disk_->Get(Slice(EncodeKey(10)), &value, nullptr, nullptr).ok());
  EXPECT_EQ(value, "new10");
}

TEST_F(DiskComponentTest, CompactionPreservesNewestVersions) {
  OpenDisk(SmallDisk());
  // Enough overlapping runs to trigger L0 compaction several times.
  for (int round = 0; round < 10; ++round) {
    FlushRange(0, 200, static_cast<uint64_t>(round) * 1000 + 1,
               "r" + std::to_string(round) + "_");
  }
  disk_->WaitForCompactions();
  std::string value;
  for (uint64_t k = 0; k < 200; k += 13) {
    ASSERT_TRUE(disk_->Get(Slice(EncodeKey(k)), &value, nullptr, nullptr).ok()) << k;
    EXPECT_EQ(value, "r9_" + std::to_string(k)) << "latest round must win";
  }
  // Compactions must have moved data past L0.
  auto stats = disk_->GetStats();
  EXPECT_GT(stats.compactions, 0u);
  int deeper_files = 0;
  for (size_t level = 1; level < stats.files_per_level.size(); ++level) {
    deeper_files += stats.files_per_level[level];
  }
  EXPECT_GT(deeper_files, 0);
}

TEST_F(DiskComponentTest, TombstonesShadowOlderValues) {
  OpenDisk(SmallDisk());
  FlushRange(0, 50, 1, "live");
  FlushRange(10, 20, 100, "", ValueType::kTombstone);
  ValueType type;
  std::string value;
  ASSERT_TRUE(disk_->Get(Slice(EncodeKey(15)), &value, nullptr, &type).ok());
  EXPECT_EQ(type, ValueType::kTombstone);
  ASSERT_TRUE(disk_->Get(Slice(EncodeKey(25)), &value, nullptr, &type).ok());
  EXPECT_EQ(type, ValueType::kValue);
}

TEST_F(DiskComponentTest, TombstonesRetireAtBottomLevel) {
  DiskOptions options = SmallDisk();
  options.l0_compaction_trigger = 2;
  OpenDisk(options);
  FlushRange(0, 100, 1, "v");
  FlushRange(0, 100, 1000, "", ValueType::kTombstone);
  // Force compactions until everything settles.
  FlushRange(200, 201, 2000, "x");
  FlushRange(202, 203, 2001, "x");
  disk_->WaitForCompactions();

  // After full compaction to the bottom-most populated level, tombstoned
  // keys disappear from iteration entirely.
  auto iter = disk_->NewIterator();
  int tombstones = 0;
  int live = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    if (iter->type() == ValueType::kTombstone) {
      ++tombstones;
    } else {
      ++live;
    }
  }
  // The tombstones either retired (compacted to bottom) or still shadow
  // the values; in both cases no live key 0..99 may surface first.
  std::string value;
  ValueType type;
  Status s = disk_->Get(Slice(EncodeKey(50)), &value, nullptr, &type);
  if (s.ok()) {
    EXPECT_EQ(type, ValueType::kTombstone);
  } else {
    EXPECT_TRUE(s.IsNotFound());
  }
  EXPECT_GE(live, 2);  // the two sentinel keys
}

TEST_F(DiskComponentTest, IteratorMergesAllLevels) {
  OpenDisk(SmallDisk());
  FlushRange(0, 50, 1, "a");
  FlushRange(50, 100, 100, "b");
  FlushRange(25, 75, 200, "c");  // overlaps both
  auto iter = disk_->NewIterator();
  std::map<uint64_t, std::string> seen;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    const uint64_t k = DecodeKey(iter->key());
    if (seen.count(k) == 0) {
      seen[k] = iter->value().ToString();  // freshest surfaces first
    }
  }
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(seen[30], "c30");
  EXPECT_EQ(seen[10], "a10");
  EXPECT_EQ(seen[90], "b90");
}

TEST_F(DiskComponentTest, RecoveryRestoresData) {
  OpenDisk(SmallDisk());
  FlushRange(0, 500, 1, "persist");
  disk_->WaitForCompactions();
  disk_.reset();  // close

  OpenDisk(SmallDisk());  // reopen from MANIFEST
  std::string value;
  for (uint64_t k = 0; k < 500; k += 37) {
    ASSERT_TRUE(disk_->Get(Slice(EncodeKey(k)), &value, nullptr, nullptr).ok()) << k;
    EXPECT_EQ(value, "persist" + std::to_string(k));
  }
}

TEST_F(DiskComponentTest, RecoverySeedsSequenceCounter) {
  OpenDisk(SmallDisk());
  FlushRange(0, 10, 12345, "v");
  disk_.reset();
  OpenDisk(SmallDisk());
  EXPECT_GE(disk_->MaxPersistedSeq(), 12345u + 9u);
}

TEST_F(DiskComponentTest, ObsoleteFilesAreRemoved) {
  DiskOptions options = SmallDisk();
  options.l0_compaction_trigger = 2;
  OpenDisk(options);
  for (int round = 0; round < 8; ++round) {
    FlushRange(0, 100, static_cast<uint64_t>(round) * 1000 + 1, "r");
  }
  disk_->WaitForCompactions();

  // Every .sst on disk must be referenced by the current version.
  std::vector<std::string> children;
  ASSERT_TRUE(env_.GetChildren("/db", &children).ok());
  int sst_files = 0;
  for (const std::string& name : children) {
    if (name.size() > 4 && name.substr(name.size() - 4) == ".sst") {
      ++sst_files;
    }
  }
  auto stats = disk_->GetStats();
  int referenced = 0;
  for (int n : stats.files_per_level) {
    referenced += n;
  }
  EXPECT_EQ(sst_files, referenced);
}

TEST_F(DiskComponentTest, IteratorPinsVersionAcrossCompaction) {
  DiskOptions options = SmallDisk();
  options.l0_compaction_trigger = 2;
  OpenDisk(options);
  FlushRange(0, 100, 1, "old");

  auto iter = disk_->NewIterator();
  iter->SeekToFirst();
  ASSERT_TRUE(iter->Valid());

  // Trigger compactions that obsolete the file the iterator reads.
  for (int round = 0; round < 6; ++round) {
    FlushRange(0, 100, static_cast<uint64_t>(round + 1) * 1000, "new");
  }
  disk_->WaitForCompactions();

  // The pinned iterator must still walk its snapshot safely.
  int count = 0;
  for (; iter->Valid(); iter->Next()) {
    ++count;
  }
  EXPECT_TRUE(iter->status().ok());
  EXPECT_EQ(count, 100);
}

TEST_F(DiskComponentTest, MultithreadedCompactionProducesSameResults) {
  DiskOptions options = SmallDisk();
  options.compaction_threads = 3;
  options.l0_compaction_trigger = 2;
  OpenDisk(options);
  for (int round = 0; round < 12; ++round) {
    FlushRange(0, 300, static_cast<uint64_t>(round) * 1000 + 1, "r" + std::to_string(round) + "_");
  }
  disk_->WaitForCompactions();
  std::string value;
  for (uint64_t k = 0; k < 300; k += 7) {
    ASSERT_TRUE(disk_->Get(Slice(EncodeKey(k)), &value, nullptr, nullptr).ok()) << k;
    EXPECT_EQ(value, "r11_" + std::to_string(k));
  }
}

TEST_F(DiskComponentTest, FlushStormWithBackgroundCompactionLosesNothing) {
  // Regression for the pending-outputs race: GC running inside a
  // background compaction must never unlink a file that a concurrent
  // flush has created but not yet installed.
  DiskOptions options = SmallDisk();
  options.l0_compaction_trigger = 2;
  options.compaction_threads = 2;
  OpenDisk(options);
  for (int round = 0; round < 40; ++round) {
    FlushRange(0, 400, static_cast<uint64_t>(round) * 10'000 + 1,
               "s" + std::to_string(round) + "_");
  }
  disk_->WaitForCompactions();
  std::string value;
  for (uint64_t k = 0; k < 400; k += 11) {
    ASSERT_TRUE(disk_->Get(Slice(EncodeKey(k)), &value, nullptr, nullptr).ok()) << k;
    EXPECT_EQ(value, "s39_" + std::to_string(k));
  }
  // No orphaned or missing files: every .sst on disk is referenced.
  std::vector<std::string> children;
  ASSERT_TRUE(env_.GetChildren("/db", &children).ok());
  int sst = 0;
  for (const std::string& name : children) {
    if (name.size() > 4 && name.substr(name.size() - 4) == ".sst") {
      ++sst;
    }
  }
  auto stats = disk_->GetStats();
  int referenced = 0;
  for (int n : stats.files_per_level) {
    referenced += n;
  }
  EXPECT_EQ(sst, referenced);
}

TEST_F(DiskComponentTest, EmptyRunIsNoop) {
  OpenDisk(SmallDisk());
  MemTable empty(1 << 20);
  MemTableIterator iter(&empty);
  ASSERT_TRUE(disk_->AddRun(&iter).ok());
  auto stats = disk_->GetStats();
  EXPECT_EQ(stats.flushes, 0u);
}

TEST_F(DiskComponentTest, StatsTrackWriteAmplification) {
  DiskOptions options = SmallDisk();
  options.l0_compaction_trigger = 2;
  OpenDisk(options);
  for (int round = 0; round < 6; ++round) {
    FlushRange(0, 200, static_cast<uint64_t>(round) * 500 + 1, "w");
  }
  disk_->WaitForCompactions();
  auto stats = disk_->GetStats();
  EXPECT_GT(stats.bytes_flushed, 0u);
  EXPECT_GT(stats.bytes_compacted_in, 0u);
  EXPECT_GT(stats.flushes, 0u);
}

TEST_F(DiskComponentTest, InvalidOptionsRejected) {
  DiskOptions options;  // no env/path
  std::unique_ptr<DiskComponent> disk;
  EXPECT_TRUE(DiskComponent::Open(options, &disk).IsInvalidArgument());
}

}  // namespace
}  // namespace flodb
