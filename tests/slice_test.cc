#include "flodb/common/slice.h"

#include <gtest/gtest.h>

namespace flodb {
namespace {

TEST(SliceTest, DefaultIsEmpty) {
  Slice s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
}

TEST(SliceTest, FromString) {
  std::string str = "hello";
  Slice s(str);
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s.ToString(), "hello");
  EXPECT_EQ(s[1], 'e');
}

TEST(SliceTest, FromCString) {
  Slice s("abc");
  EXPECT_EQ(s.size(), 3u);
}

TEST(SliceTest, EqualityIncludesLength) {
  EXPECT_EQ(Slice("abc"), Slice("abc"));
  EXPECT_NE(Slice("abc"), Slice("abd"));
  EXPECT_NE(Slice("abc"), Slice("ab"));
}

TEST(SliceTest, CompareIsLexicographic) {
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abd").compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
}

TEST(SliceTest, PrefixComparesSmaller) {
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);
  EXPECT_GT(Slice("abc").compare(Slice("ab")), 0);
}

TEST(SliceTest, EmbeddedNulBytesCompare) {
  const char a[] = {'a', '\0', 'b'};
  const char b[] = {'a', '\0', 'c'};
  EXPECT_LT(Slice(a, 3).compare(Slice(b, 3)), 0);
  EXPECT_EQ(Slice(a, 3), Slice(a, 3));
}

TEST(SliceTest, RemovePrefix) {
  Slice s("abcdef");
  s.remove_prefix(2);
  EXPECT_EQ(s.ToString(), "cdef");
  s.remove_prefix(4);
  EXPECT_TRUE(s.empty());
}

TEST(SliceTest, StartsWith) {
  EXPECT_TRUE(Slice("abcdef").starts_with(Slice("abc")));
  EXPECT_TRUE(Slice("abc").starts_with(Slice()));
  EXPECT_FALSE(Slice("ab").starts_with(Slice("abc")));
}

TEST(SliceTest, RelationalOperators) {
  EXPECT_TRUE(Slice("a") < Slice("b"));
  EXPECT_TRUE(Slice("b") > Slice("a"));
  EXPECT_TRUE(Slice("a") <= Slice("a"));
  EXPECT_TRUE(Slice("a") >= Slice("a"));
}

TEST(SliceTest, Clear) {
  Slice s("abc");
  s.clear();
  EXPECT_TRUE(s.empty());
}

}  // namespace
}  // namespace flodb
