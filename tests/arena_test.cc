#include "flodb/common/arena.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

namespace flodb {
namespace {

TEST(ArenaTest, BasicAllocationIsUsable) {
  ConcurrentArena arena;
  char* p = arena.Allocate(64);
  ASSERT_NE(p, nullptr);
  memset(p, 0xab, 64);
  EXPECT_EQ(static_cast<unsigned char>(p[63]), 0xab);
}

TEST(ArenaTest, AllocationsAreAligned) {
  ConcurrentArena arena;
  for (size_t n : {1u, 3u, 7u, 9u, 13u, 100u}) {
    char* p = arena.Allocate(n);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 8, 0u) << n;
  }
}

TEST(ArenaTest, AllocationsDoNotOverlap) {
  ConcurrentArena arena(4096);
  std::vector<std::pair<char*, size_t>> blocks;
  for (int i = 0; i < 1000; ++i) {
    const size_t n = static_cast<size_t>(i % 40) + 1;
    char* p = arena.Allocate(n);
    memset(p, i & 0xff, n);
    blocks.emplace_back(p, n);
  }
  // Verify every block still holds its fill pattern (no aliasing).
  for (int i = 0; i < 1000; ++i) {
    auto [p, n] = blocks[static_cast<size_t>(i)];
    for (size_t j = 0; j < n; ++j) {
      ASSERT_EQ(static_cast<unsigned char>(p[j]), static_cast<unsigned char>(i & 0xff));
    }
  }
}

TEST(ArenaTest, OversizedAllocationGetsDedicatedBlock) {
  ConcurrentArena arena(1024);
  char* big = arena.Allocate(10'000);
  ASSERT_NE(big, nullptr);
  memset(big, 1, 10'000);
  // Small allocations still work afterwards.
  char* small = arena.Allocate(16);
  memset(small, 2, 16);
  EXPECT_EQ(big[9999], 1);
}

TEST(ArenaTest, TracksAllocatedBytes) {
  ConcurrentArena arena;
  EXPECT_EQ(arena.AllocatedBytes(), 0u);
  arena.Allocate(100);
  EXPECT_GE(arena.AllocatedBytes(), 100u);
  EXPECT_GE(arena.ReservedBytes(), arena.AllocatedBytes());
}

TEST(ArenaTest, ConcurrentAllocationsNeverAlias) {
  ConcurrentArena arena(8192);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5'000;
  std::vector<std::thread> threads;
  std::vector<std::vector<char*>> ptrs(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        char* p = arena.Allocate(24);
        // Stamp with a thread-unique pattern.
        memset(p, t + 1, 24);
        ptrs[static_cast<size_t>(t)].push_back(p);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  // All pointers distinct and patterns intact.
  std::set<char*> unique;
  for (int t = 0; t < kThreads; ++t) {
    for (char* p : ptrs[static_cast<size_t>(t)]) {
      EXPECT_TRUE(unique.insert(p).second);
      for (int j = 0; j < 24; ++j) {
        ASSERT_EQ(p[j], t + 1);
      }
    }
  }
  EXPECT_EQ(unique.size(), static_cast<size_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace flodb
