#include "flodb/common/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "flodb/common/random.h"

namespace flodb {
namespace {

TEST(HashTest, DeterministicForSameInput) {
  const std::string data = "the quick brown fox";
  EXPECT_EQ(Hash64(Slice(data), 1), Hash64(Slice(data), 1));
  EXPECT_EQ(Hash32(Slice(data), 1), Hash32(Slice(data), 1));
}

TEST(HashTest, SeedChangesResult) {
  const std::string data = "payload";
  EXPECT_NE(Hash64(Slice(data), 1), Hash64(Slice(data), 2));
  EXPECT_NE(Hash32(Slice(data), 1), Hash32(Slice(data), 2));
}

TEST(HashTest, AllLengthsUpTo64AreDistinctish) {
  // Hashes of prefixes of a fixed buffer should (essentially) never
  // collide — exercises every tail-handling branch.
  std::string data(64, '\0');
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>(i * 37 + 11);
  }
  std::set<uint64_t> seen;
  for (size_t len = 0; len <= 64; ++len) {
    seen.insert(Hash64(data.data(), len, 0));
  }
  EXPECT_EQ(seen.size(), 65u);
}

TEST(HashTest, LongInputCoversBulkLoop) {
  std::string data(1024, 'z');
  const uint64_t h1 = Hash64(Slice(data), 0);
  data[1000] = 'y';
  const uint64_t h2 = Hash64(Slice(data), 0);
  EXPECT_NE(h1, h2);
}

TEST(HashTest, SingleBitFlipsAvalanche) {
  std::string a(32, 'q');
  std::string b = a;
  b[13] = static_cast<char>(b[13] ^ 1);
  const uint64_t ha = Hash64(Slice(a), 0);
  const uint64_t hb = Hash64(Slice(b), 0);
  // At least a quarter of the bits should differ for an avalanche mixer.
  EXPECT_GE(__builtin_popcountll(ha ^ hb), 16);
}

TEST(HashTest, MixU64NotIdentityAndInjectiveish) {
  std::set<uint64_t> outs;
  for (uint64_t i = 0; i < 1000; ++i) {
    outs.insert(MixU64(i));
  }
  EXPECT_EQ(outs.size(), 1000u);
  EXPECT_NE(MixU64(42), 42u);
}

TEST(Random64Test, UniformStaysInRange) {
  Random64 rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(Random64Test, NextDoubleInUnitInterval) {
  Random64 rng(9);
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Random64Test, DifferentSeedsDiverge) {
  Random64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(Random64Test, RoughUniformity) {
  Random64 rng(123);
  int buckets[10] = {};
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    buckets[rng.Uniform(10)]++;
  }
  for (int count : buckets) {
    EXPECT_GT(count, n / 10 - n / 50);
    EXPECT_LT(count, n / 10 + n / 50);
  }
}

}  // namespace
}  // namespace flodb
