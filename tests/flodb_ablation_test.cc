// Configuration-sweep (ablation) tests: every tuning knob DESIGN.md §4
// calls out must preserve correctness — the same randomized workload
// passes against a reference model under every configuration, and the
// mechanism-specific stats confirm the knob actually engaged.

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <thread>

#include "flodb/bench_util/workload.h"
#include "flodb/common/key_codec.h"
#include "flodb/common/random.h"
#include "flodb/core/flodb.h"
#include "flodb/disk/mem_env.h"

namespace flodb {
namespace {

using bench::SpreadKey;

constexpr uint64_t kSpace = 1 << 16;
std::string K(uint64_t i) { return EncodeKey(SpreadKey(i, kSpace)); }

struct AblationConfig {
  const char* name;
  double membuffer_fraction = 0.25;
  int partition_bits = 4;
  int drain_threads = 1;
  size_t drain_batch = 64;
  int restart_threshold = 3;
  int piggyback_limit = 8;
  int master_reuse = 0;
  bool multi_insert = true;
};

class FloDBAblationTest : public ::testing::TestWithParam<AblationConfig> {};

TEST_P(FloDBAblationTest, RandomizedWorkloadMatchesModel) {
  const AblationConfig& ablation = GetParam();
  MemEnv env;
  FloDbOptions options;
  options.memory_budget_bytes = 512 << 10;
  options.membuffer_fraction = ablation.membuffer_fraction;
  options.membuffer_partition_bits = ablation.partition_bits;
  options.drain_threads = ablation.drain_threads;
  options.drain_batch = ablation.drain_batch;
  options.scan_restart_threshold = ablation.restart_threshold;
  options.scan_piggyback_chain_limit = ablation.piggyback_limit;
  options.scan_master_reuse_limit = ablation.master_reuse;
  options.use_multi_insert = ablation.multi_insert;
  options.disk.env = &env;
  options.disk.path = "/db";
  options.disk.sstable_target_bytes = 16 << 10;
  options.disk.l0_compaction_trigger = 3;
  options.disk.l1_max_bytes = 64 << 10;

  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok()) << ablation.name;

  std::map<std::string, std::string> model;
  Random64 rng(99);
  for (int op = 0; op < 4000; ++op) {
    const std::string key = K(rng.Uniform(400));
    const uint64_t dice = rng.Uniform(10);
    if (dice < 5) {
      const std::string value = "v" + std::to_string(op);
      ASSERT_TRUE(db->Put(Slice(key), Slice(value)).ok());
      model[key] = value;
    } else if (dice < 7) {
      ASSERT_TRUE(db->Delete(Slice(key)).ok());
      model.erase(key);
    } else {
      std::string value;
      Status s = db->Get(Slice(key), &value);
      auto it = model.find(key);
      if (it == model.end()) {
        ASSERT_TRUE(s.IsNotFound()) << ablation.name << " op " << op;
      } else {
        ASSERT_TRUE(s.ok()) << ablation.name << " op " << op;
        ASSERT_EQ(value, it->second) << ablation.name << " op " << op;
      }
    }
    if (op % 1500 == 1499) {
      ASSERT_TRUE(db->FlushAll().ok());
    }
  }

  // Final full scan vs model. (Master-reuse configs are serializable; a
  // FlushAll drains everything so the final scan still sees the world.)
  ASSERT_TRUE(db->FlushAll().ok());
  std::vector<std::pair<std::string, std::string>> all;
  ASSERT_TRUE(db->Scan(Slice(), Slice(), 0, &all).ok());
  ASSERT_EQ(all.size(), model.size()) << ablation.name;
  auto expected = model.begin();
  for (size_t i = 0; i < all.size(); ++i, ++expected) {
    ASSERT_EQ(all[i].first, expected->first) << ablation.name;
    ASSERT_EQ(all[i].second, expected->second) << ablation.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Knobs, FloDBAblationTest,
    ::testing::Values(
        AblationConfig{.name = "Defaults"},
        AblationConfig{.name = "TinyMembuffer", .membuffer_fraction = 0.05},
        AblationConfig{.name = "HugeMembuffer", .membuffer_fraction = 0.75},
        AblationConfig{.name = "OnePartition", .partition_bits = 0},
        AblationConfig{.name = "ManyPartitions", .partition_bits = 8},
        AblationConfig{.name = "ThreeDrainers", .drain_threads = 3},
        AblationConfig{.name = "TinyBatches", .drain_batch = 4},
        AblationConfig{.name = "HugeBatches", .drain_batch = 1024},
        AblationConfig{.name = "HairTriggerFallback", .restart_threshold = 1},
        AblationConfig{.name = "NoPiggyback", .piggyback_limit = 0},
        AblationConfig{.name = "SeqReuse", .master_reuse = 8},
        AblationConfig{.name = "SimpleInsertDrain", .multi_insert = false}),
    [](const ::testing::TestParamInfo<AblationConfig>& info) { return info.param.name; });

TEST(FloDBPressureTest, VaryingValueSizesTriggerRotation) {
  // In-place updates with changing sizes orphan Membuffer records; the
  // drain thread must eventually rotate the buffer (arena pressure) and
  // nothing may be lost.
  MemEnv env;
  FloDbOptions options;
  options.memory_budget_bytes = 256 << 10;
  options.disk.env = &env;
  options.disk.path = "/db";
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok());

  Random64 rng(5);
  std::map<std::string, std::string> model;
  for (int op = 0; op < 30'000; ++op) {
    const std::string key = K(rng.Uniform(16));  // hot keys, wild sizes
    std::string value(static_cast<size_t>(rng.Uniform(2000)), static_cast<char>('a' + op % 26));
    ASSERT_TRUE(db->Put(Slice(key), Slice(value)).ok());
    model[key] = std::move(value);
  }
  for (const auto& [key, expected] : model) {
    std::string value;
    ASSERT_TRUE(db->Get(Slice(key), &value).ok());
    EXPECT_EQ(value, expected);
  }
  // Arena pressure persists until a rotation happens; on a loaded single
  // core the drain thread may not have run during the write burst yet, so
  // wait (bounded) for it to catch up.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (db->GetStats().membuffer_rotations == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_GT(db->GetStats().membuffer_rotations, 0u)
      << "arena pressure from orphaned records must trigger rotations";
}

TEST(FloDBMembufferSplitTest, FractionControlsSpillRate) {
  // A larger Membuffer fraction should absorb more writes directly.
  MemEnv env;
  auto run = [&env](double fraction) {
    FloDbOptions options;
    options.memory_budget_bytes = 1 << 20;
    options.membuffer_fraction = fraction;
    options.drain_threads = 0;  // clamped to 1 by StartBackgroundThreads
    options.disk.env = &env;
    options.disk.path = "/db" + std::to_string(fraction);
    std::unique_ptr<FloDB> db;
    EXPECT_TRUE(FloDB::Open(options, &db).ok());
    for (uint64_t i = 0; i < 3000; ++i) {
      db->Put(Slice(K(i)), Slice(std::string(64, 'x')));
    }
    const StoreStats stats = db->GetStats();
    return static_cast<double>(stats.membuffer_adds) /
           static_cast<double>(stats.membuffer_adds + stats.memtable_direct_adds);
  };
  const double small = run(0.05);
  const double large = run(0.60);
  EXPECT_GE(large, small) << "bigger Membuffer must not absorb fewer writes";
}

}  // namespace
}  // namespace flodb
