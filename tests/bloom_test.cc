#include "flodb/disk/bloom.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "flodb/common/key_codec.h"

namespace flodb {
namespace {

std::vector<std::string> MakeKeys(int n, uint64_t stride) {
  std::vector<std::string> keys;
  keys.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    keys.push_back(EncodeKey(static_cast<uint64_t>(i) * stride));
  }
  return keys;
}

TEST(BloomTest, NoFalseNegatives) {
  BloomFilter bloom(10);
  auto key_strings = MakeKeys(1000, 3);
  std::vector<Slice> keys(key_strings.begin(), key_strings.end());
  std::string filter;
  bloom.CreateFilter(keys, &filter);
  for (const Slice& key : keys) {
    EXPECT_TRUE(bloom.KeyMayMatch(key, Slice(filter)));
  }
}

TEST(BloomTest, FalsePositiveRateIsReasonable) {
  BloomFilter bloom(10);
  auto key_strings = MakeKeys(10'000, 2);  // even keys
  std::vector<Slice> keys(key_strings.begin(), key_strings.end());
  std::string filter;
  bloom.CreateFilter(keys, &filter);

  int false_positives = 0;
  int probes = 0;
  for (uint64_t k = 1; k < 20'000; k += 2) {  // odd keys: none present
    if (bloom.KeyMayMatch(Slice(EncodeKey(k)), Slice(filter))) {
      ++false_positives;
    }
    ++probes;
  }
  // 10 bits/key gives ~1% FP; allow generous headroom.
  EXPECT_LT(false_positives, probes / 20) << false_positives << "/" << probes;
}

TEST(BloomTest, EmptyKeySetMatchesNothingConfidently) {
  BloomFilter bloom(10);
  std::string filter;
  bloom.CreateFilter({}, &filter);
  // Empty filters may say no (never a false negative since no keys).
  int hits = 0;
  for (uint64_t k = 0; k < 100; ++k) {
    if (bloom.KeyMayMatch(Slice(EncodeKey(k)), Slice(filter))) {
      ++hits;
    }
  }
  EXPECT_LT(hits, 10);
}

TEST(BloomTest, EmptyFilterSliceIsConservativeMiss) {
  BloomFilter bloom(10);
  EXPECT_FALSE(bloom.KeyMayMatch(Slice("k"), Slice()));
}

TEST(BloomTest, FewerBitsMoreFalsePositivesButStillNoNegatives) {
  BloomFilter bloom(2);
  auto key_strings = MakeKeys(500, 7);
  std::vector<Slice> keys(key_strings.begin(), key_strings.end());
  std::string filter;
  bloom.CreateFilter(keys, &filter);
  for (const Slice& key : keys) {
    EXPECT_TRUE(bloom.KeyMayMatch(key, Slice(filter)));
  }
}

TEST(BloomTest, VariableLengthKeys) {
  BloomFilter bloom(10);
  std::vector<std::string> key_strings = {"", "a", "ab", "abc", std::string(1000, 'k')};
  std::vector<Slice> keys(key_strings.begin(), key_strings.end());
  std::string filter;
  bloom.CreateFilter(keys, &filter);
  for (const Slice& key : keys) {
    EXPECT_TRUE(bloom.KeyMayMatch(key, Slice(filter)));
  }
}

}  // namespace
}  // namespace flodb
