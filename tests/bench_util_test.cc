// Benchmark-harness utilities: workload generators (mixes, skew, spread
// mapping), loaders, latency recorder, and the throughput driver.

#include <gtest/gtest.h>

#include <memory>

#include "flodb/bench_util/driver.h"
#include "flodb/bench_util/latency.h"
#include "flodb/bench_util/report.h"
#include "flodb/bench_util/workload.h"
#include "flodb/common/key_codec.h"
#include "flodb/core/flodb.h"
#include "flodb/disk/mem_env.h"

namespace flodb::bench {
namespace {

TEST(WorkloadTest, OpMixMatchesFractions) {
  WorkloadSpec spec;
  spec.get_fraction = 0.5;
  spec.put_fraction = 0.3;
  spec.delete_fraction = 0.1;
  spec.scan_fraction = 0.1;
  WorkloadGenerator gen(spec, 0);
  int counts[4] = {};
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) {
    counts[static_cast<int>(gen.NextOp())]++;
  }
  EXPECT_NEAR(counts[0], kN * 0.5, kN * 0.02);
  EXPECT_NEAR(counts[1], kN * 0.3, kN * 0.02);
  EXPECT_NEAR(counts[2], kN * 0.1, kN * 0.01);
  EXPECT_NEAR(counts[3], kN * 0.1, kN * 0.01);
}

TEST(WorkloadTest, UniformKeysStayInRange) {
  WorkloadSpec spec;
  spec.key_space = 1000;
  WorkloadGenerator gen(spec, 1);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(gen.NextKey(), 1000u);
  }
}

TEST(WorkloadTest, SkewConcentratesOnHotKeys) {
  WorkloadSpec spec;
  spec.key_space = 10'000;
  spec.skewed = true;
  spec.hot_key_fraction = 0.02;
  spec.hot_access_fraction = 0.98;
  WorkloadGenerator gen(spec, 2);
  const uint64_t hot_limit = 200;  // 2% of 10k
  int hot = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) {
    if (gen.NextKey() < hot_limit) {
      ++hot;
    }
  }
  EXPECT_NEAR(hot, kN * 0.98, kN * 0.01);
}

TEST(WorkloadTest, SpreadKeyPreservesOrderAndSpansDomain) {
  constexpr uint64_t kSpace = 100'000;
  EXPECT_LT(SpreadKey(1, kSpace), SpreadKey(2, kSpace));
  EXPECT_LT(SpreadKey(0, kSpace), SpreadKey(kSpace - 1, kSpace));
  // The top key must land in the highest partition (top bits set).
  EXPECT_GT(SpreadKey(kSpace - 1, kSpace) >> 60, 14u);
}

TEST(WorkloadTest, ValueForKeyIsDeterministic) {
  EXPECT_EQ(ValueForKey(7, 64), ValueForKey(7, 64));
  EXPECT_NE(ValueForKey(7, 64), ValueForKey(8, 64));
  EXPECT_EQ(ValueForKey(7, 64).size(), 64u);
}

TEST(WorkloadTest, GeneratorValueHasRequestedSize) {
  WorkloadSpec spec;
  spec.value_bytes = 256;
  WorkloadGenerator gen(spec, 0);
  EXPECT_EQ(gen.NextValue().size(), 256u);
  EXPECT_EQ(gen.NextValue().size(), 256u);
}

TEST(LatencyTest, PercentilesOfKnownDistribution) {
  LatencyRecorder recorder;
  for (uint64_t i = 1; i <= 1000; ++i) {
    recorder.Record(i * 1000);  // 1..1000 microseconds
  }
  EXPECT_NEAR(static_cast<double>(recorder.PercentileNanos(50)), 500'000.0, 20'000.0);
  EXPECT_NEAR(static_cast<double>(recorder.PercentileNanos(99)), 990'000.0, 20'000.0);
  EXPECT_EQ(recorder.Count(), 1000u);
}

TEST(LatencyTest, MergeCombinesStreams) {
  LatencyRecorder a, b;
  for (uint64_t i = 0; i < 100; ++i) {
    a.Record(1000);
    b.Record(9000);
  }
  a.Merge(b);
  EXPECT_EQ(a.Count(), 200u);
  const uint64_t p50 = a.PercentileNanos(50);
  EXPECT_GE(p50, 1000u);
  EXPECT_LE(p50, 9000u);
}

TEST(LatencyTest, EmptyRecorderReturnsZero) {
  LatencyRecorder recorder;
  EXPECT_EQ(recorder.PercentileNanos(50), 0u);
}

TEST(ReportTest, EnvOverrides) {
  setenv("FLODB_TEST_ENV_D", "2.5", 1);
  setenv("FLODB_TEST_ENV_I", "42", 1);
  EXPECT_DOUBLE_EQ(EnvDouble("FLODB_TEST_ENV_D", 1.0), 2.5);
  EXPECT_EQ(EnvInt("FLODB_TEST_ENV_I", 7), 42);
  EXPECT_DOUBLE_EQ(EnvDouble("FLODB_TEST_ENV_MISSING", 1.25), 1.25);
  EXPECT_EQ(EnvInt("FLODB_TEST_ENV_MISSING", 9), 9);
}

TEST(DriverTest, RunsWorkloadAndCounts) {
  MemEnv env;
  FloDbOptions options;
  options.memory_budget_bytes = 1 << 20;
  options.disk.env = &env;
  options.disk.path = "/db";
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok());

  WorkloadSpec spec;
  spec.get_fraction = 0.5;
  spec.put_fraction = 0.5;
  spec.key_space = 10'000;
  spec.value_bytes = 64;

  DriverOptions driver;
  driver.threads = 2;
  driver.seconds = 0.3;
  driver.record_latency = true;

  const DriverResult result = RunWorkload(db.get(), spec, driver);
  EXPECT_GT(result.ops, 0u);
  EXPECT_EQ(result.ops, result.gets + result.puts + result.deletes + result.scans);
  EXPECT_GT(result.MopsPerSec(), 0.0);
  EXPECT_GT(result.elapsed_seconds, 0.2);
  EXPECT_GT(result.puts, 0u);
  EXPECT_GT(result.gets, 0u);
  EXPECT_GT(result.write_p50, 0u);
}

TEST(DriverTest, BatchPutMixCommitsGroups) {
  MemEnv env;
  FloDbOptions options;
  options.memory_budget_bytes = 1 << 20;
  options.disk.env = &env;
  options.disk.path = "/db";
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok());

  WorkloadSpec spec;
  spec.batch_put_fraction = 1.0;
  spec.batch_entries = 16;
  spec.key_space = 10'000;
  spec.value_bytes = 32;

  DriverOptions driver;
  driver.threads = 2;
  driver.ops_per_thread = 50;  // burst mode: exactly 100 batch commits

  const DriverResult result = RunWorkload(db.get(), spec, driver);
  EXPECT_EQ(result.batch_commits, 100u);
  EXPECT_EQ(result.puts, 100u * 16u);
  const StoreStats stats = db->GetStats();
  EXPECT_EQ(stats.batch_writes, 100u);
  EXPECT_EQ(stats.batch_entries, 100u * 16u);
  // Group-commit amortization is observable from the stats alone.
  EXPECT_EQ(stats.batch_entries / stats.batch_writes, 16u);
}

TEST(DriverTest, TwoRoleAssignsWriterThread) {
  MemEnv env;
  FloDbOptions options;
  options.memory_budget_bytes = 1 << 20;
  options.disk.env = &env;
  options.disk.path = "/db";
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok());

  WorkloadSpec readers;
  readers.get_fraction = 1.0;
  readers.key_space = 1000;
  WorkloadSpec writer;
  writer.put_fraction = 1.0;
  writer.key_space = 1000;
  writer.value_bytes = 32;

  DriverOptions driver;
  driver.threads = 3;
  driver.seconds = 0.2;
  driver.two_role = true;
  driver.writer_spec = writer;

  const DriverResult result = RunWorkload(db.get(), readers, driver);
  EXPECT_GT(result.puts, 0u) << "thread 0 must write";
  EXPECT_GT(result.gets, 0u) << "other threads must read";
  EXPECT_EQ(result.deletes, 0u);
}

TEST(LoaderTest, SequentialLoadIsReadable) {
  MemEnv env;
  FloDbOptions options;
  options.memory_budget_bytes = 1 << 20;
  options.disk.env = &env;
  options.disk.path = "/db";
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok());
  ASSERT_TRUE(LoadSequential(db.get(), 1000, 32).ok());
  KeyBuf buf;
  std::string value;
  for (uint64_t i = 0; i < 1000; i += 101) {
    const uint64_t key = SpreadKey(i, 1000);
    ASSERT_TRUE(db->Get(buf.Set(key), &value).ok()) << i;
    EXPECT_EQ(value, ValueForKey(key, 32));
  }
}

TEST(LoaderTest, RandomOrderLoadCoversRequestedCount) {
  MemEnv env;
  FloDbOptions options;
  options.memory_budget_bytes = 1 << 20;
  options.disk.env = &env;
  options.disk.path = "/db";
  std::unique_ptr<FloDB> db;
  ASSERT_TRUE(FloDB::Open(options, &db).ok());
  ASSERT_TRUE(LoadRandomOrder(db.get(), 500, 1000, 32).ok());
  ASSERT_TRUE(db->FlushAll().ok());
  std::vector<std::pair<std::string, std::string>> all;
  ASSERT_TRUE(db->Scan(Slice(), Slice(), 0, &all).ok());
  // The multiplicative permutation may collide on a handful of keys.
  EXPECT_GE(all.size(), 450u);
  EXPECT_LE(all.size(), 500u);
}

}  // namespace
}  // namespace flodb::bench
