// FloDB scan semantics (Algorithm 3): range correctness across all
// levels, tombstone elision, limits, linearizability of master scans
// (pre-scan updates always included), concurrent scans (piggybacking),
// restart/fallback machinery under heavy writes.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <thread>

#include "flodb/bench_util/workload.h"
#include "flodb/common/key_codec.h"
#include "flodb/core/flodb.h"
#include "flodb/disk/mem_env.h"

namespace flodb {
namespace {

using bench::SpreadKey;

constexpr uint64_t kSpace = 1 << 20;

std::string K(uint64_t i) { return EncodeKey(SpreadKey(i, kSpace)); }

class FloDBScanTest : public ::testing::Test {
 protected:
  FloDbOptions SmallOptions() {
    FloDbOptions options;
    options.memory_budget_bytes = 1 << 20;
    options.drain_threads = 1;
    options.disk.env = &env_;
    options.disk.path = "/db";
    options.disk.sstable_target_bytes = 32 << 10;
    options.disk.block_bytes = 1024;
    return options;
  }

  void Open(const FloDbOptions& options) { ASSERT_TRUE(FloDB::Open(options, &db_).ok()); }

  using ScanResult = std::vector<std::pair<std::string, std::string>>;

  MemEnv env_;
  std::unique_ptr<FloDB> db_;
};

TEST_F(FloDBScanTest, EmptyStoreScanIsEmpty) {
  Open(SmallOptions());
  ScanResult out;
  ASSERT_TRUE(db_->Scan(Slice(K(0)), Slice(K(100)), 0, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST_F(FloDBScanTest, ScanReturnsRangeInOrder) {
  Open(SmallOptions());
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(db_->Put(Slice(K(i)), Slice("v" + std::to_string(i))).ok());
  }
  ScanResult out;
  ASSERT_TRUE(db_->Scan(Slice(K(10)), Slice(K(20)), 0, &out).ok());
  ASSERT_EQ(out.size(), 10u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].first, K(10 + i));
    EXPECT_EQ(out[i].second, "v" + std::to_string(10 + i));
  }
}

TEST_F(FloDBScanTest, ScanSeesMembufferEntries) {
  // The pre-scan full drain must make buffer-resident writes visible.
  Open(SmallOptions());
  ASSERT_TRUE(db_->Put(Slice(K(5)), Slice("fresh")).ok());
  ScanResult out;
  ASSERT_TRUE(db_->Scan(Slice(K(0)), Slice(K(10)), 0, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].second, "fresh");
}

TEST_F(FloDBScanTest, ScanMergesMemoryAndDisk) {
  Open(SmallOptions());
  for (uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(db_->Put(Slice(K(i * 2)), Slice("disk")).ok());
  }
  ASSERT_TRUE(db_->FlushAll().ok());
  for (uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(db_->Put(Slice(K(i * 2 + 1)), Slice("mem")).ok());
  }
  ScanResult out;
  ASSERT_TRUE(db_->Scan(Slice(K(0)), Slice(K(100)), 0, &out).ok());
  EXPECT_EQ(out.size(), 100u);
  EXPECT_EQ(out[0].second, "disk");
  EXPECT_EQ(out[1].second, "mem");
}

TEST_F(FloDBScanTest, ScanPrefersNewestVersion) {
  Open(SmallOptions());
  ASSERT_TRUE(db_->Put(Slice(K(7)), Slice("old")).ok());
  ASSERT_TRUE(db_->FlushAll().ok());
  ASSERT_TRUE(db_->Put(Slice(K(7)), Slice("new")).ok());
  ScanResult out;
  ASSERT_TRUE(db_->Scan(Slice(K(0)), Slice(K(100)), 0, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].second, "new");
}

TEST_F(FloDBScanTest, DeletedKeysAreElided) {
  Open(SmallOptions());
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(db_->Put(Slice(K(i)), Slice("v")).ok());
  }
  ASSERT_TRUE(db_->Delete(Slice(K(3))).ok());
  ASSERT_TRUE(db_->Delete(Slice(K(7))).ok());
  ScanResult out;
  ASSERT_TRUE(db_->Scan(Slice(K(0)), Slice(K(10)), 0, &out).ok());
  EXPECT_EQ(out.size(), 8u);
  for (const auto& [key, value] : out) {
    EXPECT_NE(key, K(3));
    EXPECT_NE(key, K(7));
  }
}

TEST_F(FloDBScanTest, DeletedOnDiskStaysElided) {
  Open(SmallOptions());
  ASSERT_TRUE(db_->Put(Slice(K(1)), Slice("v")).ok());
  ASSERT_TRUE(db_->Put(Slice(K(2)), Slice("v")).ok());
  ASSERT_TRUE(db_->Delete(Slice(K(1))).ok());
  ASSERT_TRUE(db_->FlushAll().ok());
  ScanResult out;
  ASSERT_TRUE(db_->Scan(Slice(K(0)), Slice(K(10)), 0, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].first, K(2));
}

TEST_F(FloDBScanTest, LimitCapsResults) {
  Open(SmallOptions());
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(db_->Put(Slice(K(i)), Slice("v")).ok());
  }
  ScanResult out;
  ASSERT_TRUE(db_->Scan(Slice(K(0)), Slice(), 25, &out).ok());
  EXPECT_EQ(out.size(), 25u);
  EXPECT_EQ(out[0].first, K(0));
  EXPECT_EQ(out[24].first, K(24));
}

TEST_F(FloDBScanTest, LimitCountsOnlyLiveKeys) {
  Open(SmallOptions());
  for (uint64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(db_->Put(Slice(K(i)), Slice("v")).ok());
  }
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(db_->Delete(Slice(K(i * 2))).ok());  // delete evens
  }
  ScanResult out;
  ASSERT_TRUE(db_->Scan(Slice(K(0)), Slice(), 10, &out).ok());
  EXPECT_EQ(out.size(), 10u);  // the ten odd keys
  for (const auto& [key, value] : out) {
    const uint64_t logical = DecodeKey(Slice(key)) / ((~uint64_t{0}) / kSpace);
    EXPECT_EQ(logical % 2, 1u) << logical;
  }
}

TEST_F(FloDBScanTest, MasterScanIsLinearizable) {
  // Every update completed before the scan starts must be in the result.
  Open(SmallOptions());
  for (uint64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(db_->Put(Slice(K(i)), Slice("before")).ok());
  }
  ScanResult out;
  ASSERT_TRUE(db_->Scan(Slice(K(0)), Slice(K(200)), 0, &out).ok());
  EXPECT_EQ(out.size(), 200u);
  for (const auto& [key, value] : out) {
    EXPECT_EQ(value, "before");
  }
}

TEST_F(FloDBScanTest, ScansWithConcurrentWritersStayConsistent) {
  Open(SmallOptions());
  for (uint64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(db_->Put(Slice(K(i)), Slice("00000000")).ok());
  }
  std::atomic<bool> stop{false};
  // Writers continually rewrite the whole value of random keys with a
  // single repeated digit; a torn/mixed-snapshot result would show a
  // value containing different digits.
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&, t] {
      Random64 rng(static_cast<uint64_t>(t) + 1);
      int i = 0;
      while (!stop.load()) {
        const char digit = static_cast<char>('1' + (i++ % 9));
        db_->Put(Slice(K(rng.Uniform(500))), Slice(std::string(8, digit)));
      }
    });
  }

  for (int round = 0; round < 20; ++round) {
    ScanResult out;
    ASSERT_TRUE(db_->Scan(Slice(K(100)), Slice(K(200)), 0, &out).ok());
    EXPECT_EQ(out.size(), 100u);
    for (const auto& [key, value] : out) {
      ASSERT_EQ(value.size(), 8u);
      for (char c : value) {
        ASSERT_EQ(c, value[0]) << "torn value in scan result";
      }
    }
  }
  stop.store(true);
  for (auto& w : writers) {
    w.join();
  }
  const StoreStats stats = db_->GetStats();
  EXPECT_EQ(stats.scans, 20u);
  EXPECT_GT(stats.master_scans, 0u);
}

TEST_F(FloDBScanTest, ConcurrentScansPiggyback) {
  Open(SmallOptions());
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(db_->Put(Slice(K(i)), Slice("v")).ok());
  }
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Random64 rng(9);
    while (!stop.load()) {
      db_->Put(Slice(K(rng.Uniform(1000))), Slice("w"));
    }
  });

  std::vector<std::thread> scanners;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    scanners.emplace_back([&, t] {
      for (int round = 0; round < 10; ++round) {
        ScanResult out;
        Status s = db_->Scan(Slice(K(static_cast<uint64_t>(t) * 100)),
                             Slice(K(static_cast<uint64_t>(t) * 100 + 50)), 0, &out);
        if (!s.ok() || out.size() != 50) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& s : scanners) {
    s.join();
  }
  stop.store(true);
  writer.join();
  EXPECT_EQ(failures.load(), 0);
  const StoreStats stats = db_->GetStats();
  EXPECT_EQ(stats.scans, 40u);
  // Every scan was either a master or piggybacked onto one. (Whether any
  // piggybacking happened depends on actual overlap, which a single-core
  // scheduler may not produce — MasterSeqReuseSkipsDrains covers the
  // counter deterministically.)
  EXPECT_EQ(stats.master_scans + stats.piggyback_scans, 40u);
}

TEST_F(FloDBScanTest, FallbackScanKeepsLiveness) {
  // A hostile configuration (restart threshold 1) forces the fallback
  // path; scans must still return correct results.
  FloDbOptions options = SmallOptions();
  options.scan_restart_threshold = 1;
  Open(options);
  for (uint64_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(db_->Put(Slice(K(i)), Slice("x")).ok());
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&, t] {
      Random64 rng(static_cast<uint64_t>(t) + 77);
      while (!stop.load()) {
        db_->Put(Slice(K(rng.Uniform(300))), Slice("y"));
      }
    });
  }
  for (int round = 0; round < 15; ++round) {
    ScanResult out;
    ASSERT_TRUE(db_->Scan(Slice(K(50)), Slice(K(150)), 0, &out).ok());
    EXPECT_EQ(out.size(), 100u);
  }
  stop.store(true);
  for (auto& w : writers) {
    w.join();
  }
  // With threshold 1, restarts convert to fallbacks quickly; at least the
  // counters must be coherent.
  const StoreStats stats = db_->GetStats();
  EXPECT_EQ(stats.scans, 15u);
}

TEST_F(FloDBScanTest, MasterSeqReuseSkipsDrains) {
  // With the §4.4 low-concurrency optimization enabled, back-to-back
  // scans reuse the previous master's sequence number (and skip the full
  // drain): most scans count as piggybacked even without concurrency.
  FloDbOptions options = SmallOptions();
  options.scan_master_reuse_limit = 8;
  Open(options);
  for (uint64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(db_->Put(Slice(K(i)), Slice("v")).ok());
  }
  db_->WaitUntilDrained();
  ScanResult out;
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(db_->Scan(Slice(K(0)), Slice(K(200)), 0, &out).ok());
    // Data drained before the first scan: every scan sees all of it.
    EXPECT_EQ(out.size(), 200u);
  }
  const StoreStats stats = db_->GetStats();
  EXPECT_GT(stats.piggyback_scans, 0u) << "reused-seq scans count as piggybacked";
  EXPECT_LT(stats.master_scans, 9u);
}

TEST_F(FloDBScanTest, MasterSeqReuseIsSerializable) {
  // A reused-seq scan may miss updates still in the Membuffer, but it
  // must return a consistent older snapshot: a prefix-subset of the data,
  // never a mix of old and new for different keys... here: values are
  // either all from before or (after restarts force a fresh seq) the
  // updated ones. Eventually a fresh master sees everything.
  FloDbOptions options = SmallOptions();
  options.scan_master_reuse_limit = 2;
  Open(options);
  for (uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(db_->Put(Slice(K(i)), Slice("old")).ok());
  }
  ScanResult out;
  ASSERT_TRUE(db_->Scan(Slice(K(0)), Slice(K(50)), 0, &out).ok());  // publishes a seq
  ASSERT_EQ(out.size(), 50u);
  // New writes land in the fresh Membuffer.
  for (uint64_t i = 50; i < 60; ++i) {
    ASSERT_TRUE(db_->Put(Slice(K(i)), Slice("new")).ok());
  }
  // Reused-seq scans may or may not see keys 50..59 (drain timing), but
  // results must stay sorted, duplicate-free and within-range.
  for (int round = 0; round < 5; ++round) {
    ASSERT_TRUE(db_->Scan(Slice(K(0)), Slice(K(100)), 0, &out).ok());
    EXPECT_GE(out.size(), 50u);
    EXPECT_LE(out.size(), 60u);
    for (size_t i = 1; i < out.size(); ++i) {
      EXPECT_LT(out[i - 1].first, out[i].first);
    }
  }
  // After draining, a scan must see all 60 (entries are in the Memtable;
  // any reused seq older than their seqs forces a restart that refreshes).
  db_->WaitUntilDrained();
  ASSERT_TRUE(db_->Scan(Slice(K(0)), Slice(K(100)), 0, &out).ok());
  EXPECT_EQ(out.size(), 60u);
}

TEST_F(FloDBScanTest, UnboundedScanReturnsEverything) {
  Open(SmallOptions());
  for (uint64_t i = 0; i < 250; ++i) {
    ASSERT_TRUE(db_->Put(Slice(K(i * 4)), Slice("v")).ok());
  }
  ASSERT_TRUE(db_->FlushAll().ok());
  ScanResult out;
  ASSERT_TRUE(db_->Scan(Slice(), Slice(), 0, &out).ok());
  EXPECT_EQ(out.size(), 250u);
  // Sorted ascending.
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LT(out[i - 1].first, out[i].first);
  }
}

TEST_F(FloDBScanTest, ScanAfterManyFlushesSpansLevels) {
  FloDbOptions options = SmallOptions();
  options.disk.l0_compaction_trigger = 2;
  Open(options);
  const std::string payload(300, 'p');
  for (int round = 0; round < 6; ++round) {
    for (uint64_t i = 0; i < 300; ++i) {
      ASSERT_TRUE(
          db_->Put(Slice(K(i)), Slice("r" + std::to_string(round) + "_" + payload)).ok());
    }
    ASSERT_TRUE(db_->FlushAll().ok());
  }
  ScanResult out;
  ASSERT_TRUE(db_->Scan(Slice(K(0)), Slice(K(300)), 0, &out).ok());
  ASSERT_EQ(out.size(), 300u);
  for (const auto& [key, value] : out) {
    EXPECT_EQ(value.substr(0, 3), "r5_") << "newest round must win across levels";
  }
}

TEST_F(FloDBScanTest, ScanStatsTrackMachinery) {
  Open(SmallOptions());
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(db_->Put(Slice(K(i)), Slice("v")).ok());
  }
  ScanResult out;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(db_->Scan(Slice(K(0)), Slice(K(50)), 0, &out).ok());
  }
  const StoreStats stats = db_->GetStats();
  EXPECT_EQ(stats.scans, 5u);
  EXPECT_EQ(stats.master_scans + stats.piggyback_scans, 5u);
}

// ---- streaming ScanIterator (v2) ----

TEST_F(FloDBScanTest, IteratorMatchesVectorScan) {
  Open(SmallOptions());
  // Data spanning memory and disk, with deletions and overwrites.
  for (uint64_t i = 0; i < 3000; ++i) {
    ASSERT_TRUE(db_->Put(Slice(K(i)), Slice("old" + std::to_string(i))).ok());
  }
  ASSERT_TRUE(db_->FlushAll().ok());
  for (uint64_t i = 0; i < 3000; i += 3) {
    ASSERT_TRUE(db_->Put(Slice(K(i)), Slice("new" + std::to_string(i))).ok());
  }
  for (uint64_t i = 0; i < 3000; i += 7) {
    ASSERT_TRUE(db_->Delete(Slice(K(i))).ok());
  }

  ScanResult expected;
  ASSERT_TRUE(db_->Scan(Slice(), Slice(), 0, &expected).ok());

  ReadOptions ropts;
  ropts.scan_chunk_size = 128;  // force many chunk boundaries
  auto it = db_->NewScanIterator(ropts, Slice(), Slice());
  ScanResult streamed;
  for (; it->Valid(); it->Next()) {
    streamed.emplace_back(it->key().ToString(), it->value().ToString());
  }
  ASSERT_TRUE(it->status().ok());
  EXPECT_LE(it->MaxBufferedEntries(), 128u);
  ASSERT_EQ(streamed.size(), expected.size());
  for (size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i], expected[i]) << "divergence at index " << i;
  }
  EXPECT_EQ(db_->GetStats().iterator_scans, 1u);
}

TEST_F(FloDBScanTest, IteratorStreamsMillionKeysBounded) {
  // A 1M-key range must stream through a bounded buffer instead of
  // materializing: the observable ceiling is the chunk size.
  FloDbOptions options = SmallOptions();
  options.memory_budget_bytes = 4 << 20;
  options.disk.sstable_target_bytes = 4 << 20;  // keep the file count sane at 1M keys
  Open(options);
  constexpr uint64_t kKeys = 1'000'000;
  WriteBatch batch;
  KeyBuf key_buf;
  for (uint64_t i = 0; i < kKeys; ++i) {
    batch.Put(key_buf.Set(SpreadKey(i, kKeys)), Slice("v"));
    if (batch.Count() == 512) {
      ASSERT_TRUE(db_->Write(WriteOptions(), &batch).ok());
      batch.Clear();
    }
  }
  ASSERT_TRUE(db_->Write(WriteOptions(), &batch).ok());
  ASSERT_TRUE(db_->FlushAll().ok());

  ReadOptions ropts;
  ropts.scan_chunk_size = 512;
  auto it = db_->NewScanIterator(ropts, Slice(), Slice());
  uint64_t count = 0;
  std::string prev;
  for (; it->Valid(); it->Next()) {
    if (count > 0) {
      ASSERT_LT(prev, it->key().ToString()) << "stream must be sorted and duplicate-free";
    }
    prev.assign(it->key().data(), it->key().size());
    ++count;
  }
  ASSERT_TRUE(it->status().ok());
  EXPECT_EQ(count, kKeys);
  EXPECT_LE(it->MaxBufferedEntries(), 512u)
      << "the iterator must never materialize more than one chunk";
}

TEST_F(FloDBScanTest, IteratorConsistentUnderConcurrentWriters) {
  Open(SmallOptions());
  for (uint64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(db_->Put(Slice(K(i)), Slice("00000000")).ok());
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&, t] {
      Random64 rng(static_cast<uint64_t>(t) + 1);
      int i = 0;
      while (!stop.load()) {
        const char digit = static_cast<char>('1' + (i++ % 9));
        db_->Put(Slice(K(rng.Uniform(500))), Slice(std::string(8, digit)));
      }
    });
  }

  // Writers only overwrite the fixed key set, so every stream must see
  // exactly keys 0..499, sorted, each with an untorn value.
  for (int round = 0; round < 10; ++round) {
    ReadOptions ropts;
    ropts.scan_chunk_size = 64;
    auto it = db_->NewScanIterator(ropts, Slice(K(0)), Slice(K(500)));
    uint64_t expected_key = 0;
    for (; it->Valid(); it->Next(), ++expected_key) {
      ASSERT_EQ(it->key().ToString(), K(expected_key));
      const std::string value = it->value().ToString();
      ASSERT_EQ(value.size(), 8u);
      for (char c : value) {
        ASSERT_EQ(c, value[0]) << "torn value in streamed result";
      }
    }
    ASSERT_TRUE(it->status().ok());
    EXPECT_EQ(expected_key, 500u);
  }
  stop.store(true);
  for (auto& w : writers) {
    w.join();
  }
}

TEST_F(FloDBScanTest, IteratorSurvivesMembufferRotationMidIteration) {
  Open(SmallOptions());
  for (uint64_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(db_->Put(Slice(K(i)), Slice("stable")).ok());
  }
  ReadOptions ropts;
  ropts.scan_chunk_size = 50;
  auto it = db_->NewScanIterator(ropts, Slice(K(0)), Slice(K(300)));

  uint64_t seen = 0;
  for (; it->Valid() && seen < 100; it->Next()) {
    ASSERT_EQ(it->key().ToString(), K(seen));
    ++seen;
  }
  // Force a Membuffer swap + drain and a Memtable persist mid-iteration.
  for (uint64_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(db_->Put(Slice(K(1000 + i)), Slice("churn")).ok());
  }
  ASSERT_TRUE(db_->FlushAll().ok());

  for (; it->Valid(); it->Next()) {
    ASSERT_EQ(it->key().ToString(), K(seen));
    ++seen;
  }
  ASSERT_TRUE(it->status().ok());
  EXPECT_EQ(seen, 300u) << "rotation/persist must not lose or duplicate streamed keys";
}

TEST_F(FloDBScanTest, SnapshotModeHintsSteerElection) {
  FloDbOptions options = SmallOptions();
  options.scan_master_reuse_limit = 8;
  Open(options);
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(db_->Put(Slice(K(i)), Slice("v")).ok());
  }
  db_->WaitUntilDrained();

  ScanResult out;
  ASSERT_TRUE(db_->Scan(Slice(K(0)), Slice(K(100)), 0, &out).ok());  // publishes a seq
  const uint64_t masters_after_first = db_->GetStats().master_scans;
  ASSERT_GE(masters_after_first, 1u);

  // kPiggyback reuses the published seq without a new drain.
  ReadOptions piggyback;
  piggyback.snapshot_mode = SnapshotMode::kPiggyback;
  {
    auto it = db_->NewScanIterator(piggyback, Slice(K(0)), Slice(K(100)));
    size_t n = 0;
    for (; it->Valid(); it->Next()) {
      ++n;
    }
    EXPECT_EQ(n, 100u);
  }
  EXPECT_EQ(db_->GetStats().master_scans, masters_after_first);
  EXPECT_GT(db_->GetStats().piggyback_scans, 0u);

  // kMaster forces a fresh linearizable snapshot even though the reuse
  // budget has room.
  ReadOptions master;
  master.snapshot_mode = SnapshotMode::kMaster;
  {
    auto it = db_->NewScanIterator(master, Slice(K(0)), Slice(K(100)));
    size_t n = 0;
    for (; it->Valid(); it->Next()) {
      ++n;
    }
    EXPECT_EQ(n, 100u);
  }
  EXPECT_EQ(db_->GetStats().master_scans, masters_after_first + 1);
  EXPECT_EQ(db_->GetStats().iterator_scans, 2u);
}

TEST_F(FloDBScanTest, IteratorOnEmptyRange) {
  Open(SmallOptions());
  ASSERT_TRUE(db_->Put(Slice(K(500)), Slice("outside")).ok());
  auto it = db_->NewScanIterator(ReadOptions(), Slice(K(0)), Slice(K(100)));
  EXPECT_FALSE(it->Valid());
  EXPECT_TRUE(it->status().ok());
}

}  // namespace
}  // namespace flodb
