// MemBuffer tests: CLHT-style add/get/update semantics, bucket-full
// rejection (the paper's spill-to-Memtable trigger), partitioning, and
// the mark/collect/remove drain protocol including the concurrent-update
// version check.

#include "flodb/mem/membuffer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "flodb/common/key_codec.h"
#include "flodb/common/random.h"

namespace flodb {
namespace {

MemBuffer::Options SmallOptions() {
  MemBuffer::Options options;
  options.capacity_bytes = 256 << 10;
  options.partition_bits = 3;
  options.avg_entry_bytes_hint = 48;
  return options;
}

TEST(MemBufferTest, AddThenGet) {
  MemBuffer buffer(SmallOptions());
  EXPECT_EQ(buffer.Add(Slice(EncodeKey(1)), Slice("v1"), ValueType::kValue),
            MemBuffer::AddResult::kAdded);
  std::string value;
  ValueType type;
  ASSERT_TRUE(buffer.Get(Slice(EncodeKey(1)), &value, &type));
  EXPECT_EQ(value, "v1");
  EXPECT_EQ(type, ValueType::kValue);
  EXPECT_EQ(buffer.LiveEntries(), 1u);
}

TEST(MemBufferTest, MissingKeyGetFails) {
  MemBuffer buffer(SmallOptions());
  EXPECT_FALSE(buffer.Get(Slice(EncodeKey(404)), nullptr, nullptr));
}

TEST(MemBufferTest, UpdateInPlaceSameSize) {
  MemBuffer buffer(SmallOptions());
  buffer.Add(Slice(EncodeKey(1)), Slice("aaaa"), ValueType::kValue);
  EXPECT_EQ(buffer.Add(Slice(EncodeKey(1)), Slice("bbbb"), ValueType::kValue),
            MemBuffer::AddResult::kUpdated);
  std::string value;
  ASSERT_TRUE(buffer.Get(Slice(EncodeKey(1)), &value, nullptr));
  EXPECT_EQ(value, "bbbb");
  EXPECT_EQ(buffer.LiveEntries(), 1u) << "update must not duplicate the entry";
}

TEST(MemBufferTest, UpdateChangingSize) {
  MemBuffer buffer(SmallOptions());
  buffer.Add(Slice(EncodeKey(1)), Slice("short"), ValueType::kValue);
  EXPECT_EQ(buffer.Add(Slice(EncodeKey(1)), Slice(std::string(100, 'x')), ValueType::kValue),
            MemBuffer::AddResult::kUpdated);
  std::string value;
  ASSERT_TRUE(buffer.Get(Slice(EncodeKey(1)), &value, nullptr));
  EXPECT_EQ(value, std::string(100, 'x'));
}

TEST(MemBufferTest, TombstonesAreStored) {
  MemBuffer buffer(SmallOptions());
  buffer.Add(Slice(EncodeKey(1)), Slice(), ValueType::kTombstone);
  ValueType type;
  ASSERT_TRUE(buffer.Get(Slice(EncodeKey(1)), nullptr, &type));
  EXPECT_EQ(type, ValueType::kTombstone);
}

TEST(MemBufferTest, RepeatedUpdatesToOneKeyNeverFill) {
  // The in-place-update property (§3.2): hammering one key must not
  // consume capacity.
  MemBuffer buffer(SmallOptions());
  for (int i = 0; i < 100'000; ++i) {
    const MemBuffer::AddResult result =
        buffer.Add(Slice(EncodeKey(42)), Slice("valu" + std::to_string(i % 10)),
                   ValueType::kValue);
    ASSERT_NE(result, MemBuffer::AddResult::kFull) << i;
  }
  EXPECT_EQ(buffer.LiveEntries(), 1u);
}

TEST(MemBufferTest, BucketFullReturnsKFull) {
  // With > slots-per-bucket keys forced into one bucket, the overflowing
  // add must be rejected (spill to Memtable). Find colliding keys by
  // brute force: same partition + bucket.
  MemBuffer::Options options = SmallOptions();
  options.capacity_bytes = 1 << 20;
  MemBuffer buffer(options);

  int added = 0;
  bool saw_full = false;
  // Keys in a single partition (top bits fixed) eventually collide.
  for (uint64_t i = 0; i < 100'000; ++i) {
    const MemBuffer::AddResult result =
        buffer.Add(Slice(EncodeKey(i)), Slice("v"), ValueType::kValue);
    if (result == MemBuffer::AddResult::kFull) {
      saw_full = true;
      break;
    }
    ++added;
  }
  EXPECT_TRUE(saw_full) << "bounded buckets must eventually reject";
  EXPECT_GT(added, 0);
}

TEST(MemBufferTest, CapacityLimitRejects) {
  MemBuffer::Options options;
  options.capacity_bytes = 4096;  // tiny
  options.partition_bits = 1;
  MemBuffer buffer(options);
  bool saw_full = false;
  for (uint64_t i = 0; i < 10'000; ++i) {
    if (buffer.Add(Slice(EncodeKey(i)), Slice(std::string(64, 'v')), ValueType::kValue) ==
        MemBuffer::AddResult::kFull) {
      saw_full = true;
      break;
    }
  }
  EXPECT_TRUE(saw_full);
  EXPECT_LE(buffer.LiveBytes(), 2 * options.capacity_bytes);
}

TEST(MemBufferTest, ExistingKeyUpdatesNeverRejectedAtCapacity) {
  // Regression: rejecting an update of a buffered key would let the newer
  // value spill to the Memtable with an older sequence number than the
  // stale buffered copy gets at drain time (lost update). Existing keys
  // must update in place even when the buffer is at capacity.
  MemBuffer::Options options;
  options.capacity_bytes = 2048;
  options.partition_bits = 1;
  MemBuffer buffer(options);
  ASSERT_EQ(buffer.Add(Slice(EncodeKey(1)), Slice(std::string(64, 'a')), ValueType::kValue),
            MemBuffer::AddResult::kAdded);
  // Fill past capacity with other keys (some rejections are bucket-local;
  // keep going until the byte budget itself is exhausted).
  for (uint64_t i = 2; i < 10'000 && buffer.LiveBytes() < buffer.CapacityBytes(); ++i) {
    buffer.Add(Slice(EncodeKey(i * 0x0123456789abULL)), Slice(std::string(64, 'f')),
               ValueType::kValue);
  }
  ASSERT_GE(buffer.LiveBytes(), buffer.CapacityBytes());
  // New keys are rejected now...
  EXPECT_EQ(buffer.Add(Slice(EncodeKey(999'999)), Slice("x"), ValueType::kValue),
            MemBuffer::AddResult::kFull);
  // ...but the update of an existing key must succeed in place.
  EXPECT_EQ(buffer.Add(Slice(EncodeKey(1)), Slice(std::string(64, 'B')), ValueType::kValue),
            MemBuffer::AddResult::kUpdated);
  std::string value;
  ASSERT_TRUE(buffer.Get(Slice(EncodeKey(1)), &value, nullptr));
  EXPECT_EQ(value, std::string(64, 'B'));
}

TEST(MemBufferTest, CollectAndMarkThenFinishRemoves) {
  MemBuffer buffer(SmallOptions());
  for (uint64_t k = 0; k < 100; ++k) {
    buffer.Add(Slice(EncodeKey(k)), Slice("v"), ValueType::kValue);
  }
  ASSERT_EQ(buffer.LiveEntries(), 100u);

  std::vector<DrainedEntry> batch;
  size_t total = 0;
  for (uint64_t round = 0; round < 2 * buffer.NumPartitions() && total < 100; ++round) {
    batch.clear();
    const uint64_t partition = buffer.ClaimPartition();
    total += buffer.CollectAndMark(partition, 1000, &batch);
    buffer.FinishDrain(batch);
  }
  EXPECT_EQ(total, 100u);
  EXPECT_EQ(buffer.LiveEntries(), 0u);
  EXPECT_FALSE(buffer.Get(Slice(EncodeKey(1)), nullptr, nullptr));
}

TEST(MemBufferTest, MarkedEntriesAreNotRecollected) {
  MemBuffer buffer(SmallOptions());
  buffer.Add(Slice(EncodeKey(1)), Slice("v"), ValueType::kValue);

  std::vector<DrainedEntry> first, second;
  // Find the partition holding key 1 by trying them all.
  for (uint64_t p = 0; p < buffer.NumPartitions(); ++p) {
    buffer.CollectAndMark(p, 10, &first);
  }
  ASSERT_EQ(first.size(), 1u);
  for (uint64_t p = 0; p < buffer.NumPartitions(); ++p) {
    buffer.CollectAndMark(p, 10, &second);
  }
  EXPECT_TRUE(second.empty()) << "marked entry must not be drained twice";
  buffer.FinishDrain(first);
  EXPECT_EQ(buffer.LiveEntries(), 0u);
}

TEST(MemBufferTest, ConcurrentUpdateDuringDrainSurvives) {
  // The version-check rule: an entry updated between mark and remove must
  // STAY in the buffer (with the new value) — the drained copy is stale.
  MemBuffer buffer(SmallOptions());
  buffer.Add(Slice(EncodeKey(1)), Slice("old!"), ValueType::kValue);

  std::vector<DrainedEntry> batch;
  for (uint64_t p = 0; p < buffer.NumPartitions(); ++p) {
    buffer.CollectAndMark(p, 10, &batch);
  }
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].value, "old!");

  // Concurrent writer updates the marked slot.
  EXPECT_EQ(buffer.Add(Slice(EncodeKey(1)), Slice("new!"), ValueType::kValue),
            MemBuffer::AddResult::kUpdated);

  buffer.FinishDrain(batch);
  std::string value;
  ASSERT_TRUE(buffer.Get(Slice(EncodeKey(1)), &value, nullptr))
      << "updated entry must survive the drain removal";
  EXPECT_EQ(value, "new!");
  EXPECT_EQ(buffer.LiveEntries(), 1u);

  // The survivor is drainable again afterwards.
  std::vector<DrainedEntry> batch2;
  for (uint64_t p = 0; p < buffer.NumPartitions(); ++p) {
    buffer.CollectAndMark(p, 10, &batch2);
  }
  ASSERT_EQ(batch2.size(), 1u);
  EXPECT_EQ(batch2[0].value, "new!");
  buffer.FinishDrain(batch2);
  EXPECT_EQ(buffer.LiveEntries(), 0u);
}

TEST(MemBufferTest, DeadPointerFnFiresExactlyOncePerReplacedPointer) {
  // In-place replacement of a kValuePointer entry is the one moment its
  // old vlog record can die without ever reaching a flush or compaction
  // dedup; the dead_pointer_fn hook must observe it there exactly once.
  std::vector<std::string> reported;
  MemBuffer::Options options = SmallOptions();
  options.dead_pointer_fn = [&](const Slice& v) { reported.emplace_back(v.data(), v.size()); };
  MemBuffer buffer(options);

  // Plain overwrite of a pointer entry reports the replaced pointer.
  buffer.Add(Slice(EncodeKey(1)), Slice("ptr-0"), ValueType::kValuePointer);
  buffer.Add(Slice(EncodeKey(1)), Slice("ptr-1"), ValueType::kValuePointer);
  ASSERT_EQ(reported.size(), 1u);
  EXPECT_EQ(reported[0], "ptr-0");

  // Non-pointer overwrites never report.
  buffer.Add(Slice(EncodeKey(2)), Slice("v0"), ValueType::kValue);
  buffer.Add(Slice(EncodeKey(2)), Slice("v1"), ValueType::kValue);
  EXPECT_EQ(reported.size(), 1u);

  // Overwriting a marked slot whose drained copy is still in flight must
  // NOT report: that copy carries the liability and is charged when the
  // Memtable supersedes it (see skiplist.cc). A SECOND overwrite in the
  // same drain window must report — its predecessor exists nowhere else.
  std::vector<DrainedEntry> batch;
  for (uint64_t p = 0; p < buffer.NumPartitions(); ++p) {
    buffer.CollectAndMark(p, 10, &batch);
  }
  EXPECT_EQ(buffer.Add(Slice(EncodeKey(1)), Slice("ptr-2"), ValueType::kValuePointer),
            MemBuffer::AddResult::kUpdated);
  EXPECT_EQ(reported.size(), 1u) << "in-flight copy carries the ptr-1 liability";
  EXPECT_EQ(buffer.Add(Slice(EncodeKey(1)), Slice("ptr-3"), ValueType::kValuePointer),
            MemBuffer::AddResult::kUpdated);
  ASSERT_EQ(reported.size(), 2u);
  EXPECT_EQ(reported[1], "ptr-2");

  // Once the drain completes the slot is unmarked; overwrites report again.
  buffer.FinishDrain(batch);
  buffer.Add(Slice(EncodeKey(1)), Slice("ptr-4"), ValueType::kValuePointer);
  ASSERT_EQ(reported.size(), 3u);
  EXPECT_EQ(reported[2], "ptr-3");
}

TEST(MemBufferTest, FullDrainProtocol) {
  MemBuffer buffer(SmallOptions());
  // Small numeric keys cluster into partition 0 (top-bits partitioning),
  // so some bucket-full rejections are expected — count what landed.
  size_t accepted = 0;
  for (uint64_t k = 0; k < 500; ++k) {
    if (buffer.Add(Slice(EncodeKey(k * 1000)), Slice("v" + std::to_string(k)),
                   ValueType::kValue) != MemBuffer::AddResult::kFull) {
      ++accepted;
    }
  }
  ASSERT_GT(accepted, 250u);
  std::set<std::string> collected;
  uint64_t begin, end;
  while (buffer.ClaimBucketRange(16, &begin, &end)) {
    std::vector<DrainedEntry> chunk;
    buffer.CollectRange(begin, end, &chunk);
    for (const DrainedEntry& e : chunk) {
      EXPECT_TRUE(collected.insert(e.key).second) << "duplicate in full drain";
    }
    buffer.MarkBucketsDone(end - begin);
  }
  EXPECT_TRUE(buffer.FullyDrained());
  EXPECT_EQ(collected.size(), accepted);
}

TEST(MemBufferTest, FullDrainWithParallelHelpers) {
  MemBuffer buffer(SmallOptions());
  constexpr uint64_t kMaxEntries = 2000;
  uint64_t kEntries = 0;
  for (uint64_t k = 0; k < kMaxEntries; ++k) {
    if (buffer.Add(Slice(EncodeKey(k * 7)), Slice("v"), ValueType::kValue) !=
        MemBuffer::AddResult::kFull) {
      ++kEntries;
    }
  }
  ASSERT_GT(kEntries, kMaxEntries / 2);
  std::atomic<uint64_t> collected{0};
  std::vector<std::thread> helpers;
  for (int t = 0; t < 4; ++t) {
    helpers.emplace_back([&] {
      uint64_t begin, end;
      while (buffer.ClaimBucketRange(8, &begin, &end)) {
        std::vector<DrainedEntry> chunk;
        buffer.CollectRange(begin, end, &chunk);
        collected.fetch_add(chunk.size());
        buffer.MarkBucketsDone(end - begin);
      }
    });
  }
  for (auto& t : helpers) {
    t.join();
  }
  EXPECT_TRUE(buffer.FullyDrained());
  EXPECT_EQ(collected.load(), kEntries);
}

TEST(MemBufferTest, PartitionOfKeyIsStable) {
  MemBuffer buffer(SmallOptions());
  // Same key must always land in the same partition/bucket: add + drain
  // by partition must find it exactly once.
  buffer.Add(Slice(EncodeKey(0x123456789abcdef0)), Slice("v"), ValueType::kValue);
  size_t found = 0;
  for (uint64_t p = 0; p < buffer.NumPartitions(); ++p) {
    std::vector<DrainedEntry> batch;
    buffer.CollectAndMark(p, 10, &batch);
    found += batch.size();
    buffer.FinishDrain(batch);
  }
  EXPECT_EQ(found, 1u);
}

TEST(MemBufferTest, PartitionsCoverContiguousKeyRanges) {
  // Keys with the same top `l` bits go to the same partition — verified
  // indirectly: draining one partition yields keys from one contiguous
  // numeric range.
  MemBuffer::Options options = SmallOptions();
  options.partition_bits = 2;  // 4 partitions = 4 quarters of key space
  MemBuffer buffer(options);
  const uint64_t quarter = uint64_t{1} << 62;
  for (uint64_t p = 0; p < 4; ++p) {
    for (uint64_t i = 0; i < 50; ++i) {
      buffer.Add(Slice(EncodeKey(p * quarter + i * 1000)), Slice("v"), ValueType::kValue);
    }
  }
  for (uint64_t p = 0; p < 4; ++p) {
    std::vector<DrainedEntry> batch;
    buffer.CollectAndMark(p, 1000, &batch);
    EXPECT_EQ(batch.size(), 50u);
    for (const DrainedEntry& e : batch) {
      EXPECT_EQ(DecodeKey(Slice(e.key)) >> 62, p);
    }
    buffer.FinishDrain(batch);
  }
}

TEST(MemBufferTest, ConcurrentAddersAndDrainerConvergeToEmpty) {
  MemBuffer buffer(SmallOptions());
  std::atomic<bool> writers_done{false};
  std::atomic<uint64_t> added{0}, drained{0}, rejected{0};

  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&, t] {
      KeyBuf buf;
      Random64 rng(static_cast<uint64_t>(t) + 100);
      for (int i = 0; i < 20'000; ++i) {
        const MemBuffer::AddResult result =
            buffer.Add(buf.Set(rng.Uniform(100'000)), Slice("w"), ValueType::kValue);
        if (result == MemBuffer::AddResult::kAdded) {
          added.fetch_add(1);
        } else if (result == MemBuffer::AddResult::kFull) {
          rejected.fetch_add(1);
        }
      }
    });
  }
  std::thread drainer([&] {
    std::vector<DrainedEntry> batch;
    while (!writers_done.load() || buffer.LiveEntries() > 0) {
      batch.clear();
      const uint64_t partition = buffer.ClaimPartition();
      if (buffer.CollectAndMark(partition, 64, &batch) > 0) {
        buffer.FinishDrain(batch);
        // Entries removed iff version unchanged; count what actually left.
      }
      drained.fetch_add(batch.size());
    }
  });
  for (auto& w : writers) {
    w.join();
  }
  writers_done.store(true);
  drainer.join();
  EXPECT_EQ(buffer.LiveEntries(), 0u);
  EXPECT_GT(added.load(), 0u);
}

TEST(MemBufferTest, ForEachVisitsEveryEntry) {
  MemBuffer buffer(SmallOptions());
  std::set<uint64_t> keys;
  for (uint64_t k = 0; k < 300; ++k) {
    if (buffer.Add(Slice(EncodeKey(k * 13)), Slice("v"), ValueType::kValue) !=
        MemBuffer::AddResult::kFull) {
      keys.insert(k * 13);
    }
  }
  ASSERT_GT(keys.size(), 150u);
  std::set<uint64_t> seen;
  buffer.ForEach([&](const Slice& key, const Slice& value, ValueType type) {
    seen.insert(DecodeKey(key));
  });
  EXPECT_EQ(seen, keys);
}

}  // namespace
}  // namespace flodb
