// Monotonic time helpers shared by benchmarks and background threads.

#ifndef FLODB_COMMON_CLOCK_H_
#define FLODB_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace flodb {

inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

inline uint64_t NowMicros() { return NowNanos() / 1000; }

inline double SecondsSince(uint64_t start_nanos) {
  return static_cast<double>(NowNanos() - start_nanos) * 1e-9;
}

}  // namespace flodb

#endif  // FLODB_COMMON_CLOCK_H_
