#include "flodb/common/arena.h"

#include <cstdlib>
#include <cstdio>
#include <new>

namespace flodb {

namespace {

constexpr size_t kAlignment = 8;

inline size_t AlignUp(size_t n) { return (n + kAlignment - 1) & ~(kAlignment - 1); }

}  // namespace

ConcurrentArena::ConcurrentArena(size_t block_bytes) : block_bytes_(AlignUp(block_bytes)) {}

ConcurrentArena::~ConcurrentArena() {
  for (const Block& b : blocks_) {
    free(b.data);
  }
}

char* ConcurrentArena::Allocate(size_t n) {
  n = AlignUp(n);
  // Fast path: bump the offset of the current block. A generation counter
  // (stored in the low bit pattern of cur_size_ changes) is unnecessary:
  // we re-validate by reloading the block pointer after the bump; if a
  // switch raced with us we retry. A stale fetch_add can only waste bytes
  // of the new block, never alias storage, because offsets are monotone
  // within a block's lifetime and the block pointer is reloaded.
  for (int attempt = 0; attempt < 4; ++attempt) {
    char* blk = cur_block_.load(std::memory_order_acquire);
    if (blk == nullptr) {
      break;
    }
    size_t size = cur_size_.load(std::memory_order_acquire);
    size_t off = cur_offset_.fetch_add(n, std::memory_order_relaxed);
    if (off + n <= size && blk == cur_block_.load(std::memory_order_acquire)) {
      allocated_.fetch_add(n, std::memory_order_relaxed);
      return blk + off;
    }
  }
  return AllocateSlow(n);
}

char* ConcurrentArena::AllocateSlow(size_t n) {
  MutexLock lock(blocks_mu_);
  // Re-check: another thread may have installed a fresh block already.
  {
    char* blk = cur_block_.load(std::memory_order_acquire);
    if (blk != nullptr) {
      size_t size = cur_size_.load(std::memory_order_acquire);
      size_t off = cur_offset_.fetch_add(n, std::memory_order_relaxed);
      if (off + n <= size) {
        allocated_.fetch_add(n, std::memory_order_relaxed);
        return blk + off;
      }
    }
  }

  // Oversized requests get a dedicated block; the current block stays.
  if (n > block_bytes_ / 2) {
    char* data = static_cast<char*>(malloc(n));
    if (data == nullptr) {
      fprintf(stderr, "flodb: arena out of memory (%zu bytes)\n", n);
      abort();
    }
    blocks_.push_back(Block{data, n});
    reserved_.fetch_add(n, std::memory_order_relaxed);
    allocated_.fetch_add(n, std::memory_order_relaxed);
    return data;
  }

  char* data = static_cast<char*>(malloc(block_bytes_));
  if (data == nullptr) {
    fprintf(stderr, "flodb: arena out of memory (%zu bytes)\n", block_bytes_);
    abort();
  }
  blocks_.push_back(Block{data, block_bytes_});
  reserved_.fetch_add(block_bytes_, std::memory_order_relaxed);

  // Publish order matters: make the new block unreachable via the fast
  // path until its size/offset are consistent. We first invalidate the
  // pointer, then set size and offset, then publish.
  cur_block_.store(nullptr, std::memory_order_release);
  cur_size_.store(block_bytes_, std::memory_order_release);
  cur_offset_.store(n, std::memory_order_release);
  cur_block_.store(data, std::memory_order_release);

  allocated_.fetch_add(n, std::memory_order_relaxed);
  return data;
}

}  // namespace flodb
