// Little-endian fixed-width and varint encoders/decoders.
//
// These are the primitives for every on-disk format in the store (SSTable
// blocks, WAL records, MANIFEST snapshots). Varints use the standard
// 7-bits-per-byte, high-bit-continues encoding.

#ifndef FLODB_COMMON_CODING_H_
#define FLODB_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "flodb/common/slice.h"

namespace flodb {

// -------- fixed-width --------

inline void EncodeFixed32(char* dst, uint32_t value) { memcpy(dst, &value, sizeof(value)); }
inline void EncodeFixed64(char* dst, uint64_t value) { memcpy(dst, &value, sizeof(value)); }

inline uint32_t DecodeFixed32(const char* ptr) {
  uint32_t result;
  memcpy(&result, ptr, sizeof(result));
  return result;
}

inline uint64_t DecodeFixed64(const char* ptr) {
  uint64_t result;
  memcpy(&result, ptr, sizeof(result));
  return result;
}

void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);

// -------- varint --------

// Max encoded sizes.
inline constexpr int kMaxVarint32Bytes = 5;
inline constexpr int kMaxVarint64Bytes = 10;

// Encodes into dst, returns pointer just past the last written byte.
char* EncodeVarint32(char* dst, uint32_t value);
char* EncodeVarint64(char* dst, uint64_t value);

void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);

// Appends varint32 length followed by the bytes of value.
void PutLengthPrefixedSlice(std::string* dst, const Slice& value);

// Decoders return pointer past the parsed value, or nullptr on malformed
// input / truncated buffer.
const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* value);
const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* value);

// Slice-advancing variants: consume the parsed bytes from *input.
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);
bool GetLengthPrefixedSlice(Slice* input, Slice* result);

int VarintLength(uint64_t v);

}  // namespace flodb

#endif  // FLODB_COMMON_CODING_H_
