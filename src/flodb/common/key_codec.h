// Integer <-> ordered byte-string key codec.
//
// Benchmarks and examples address the store with uint64 keys. Encoding
// them big-endian makes lexicographic Slice order equal numeric order,
// which scans and the paper's "neighborhood" partitioning rely on
// (the Membuffer partitions on the top `l` bits of the key; see
// membuffer.h).

#ifndef FLODB_COMMON_KEY_CODEC_H_
#define FLODB_COMMON_KEY_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "flodb/common/slice.h"

namespace flodb {

inline constexpr size_t kEncodedKeyBytes = 8;

inline void EncodeKeyTo(uint64_t key, char* dst) {
  for (int i = 7; i >= 0; --i) {
    dst[i] = static_cast<char>(key & 0xff);
    key >>= 8;
  }
}

inline std::string EncodeKey(uint64_t key) {
  std::string s(kEncodedKeyBytes, '\0');
  EncodeKeyTo(key, s.data());
  return s;
}

// Returns the numeric key; input must be exactly 8 bytes (checked by
// callers in debug builds).
inline uint64_t DecodeKey(const Slice& s) {
  uint64_t v = 0;
  const size_t n = s.size() < 8 ? s.size() : 8;
  for (size_t i = 0; i < n; ++i) {
    v = (v << 8) | static_cast<unsigned char>(s[i]);
  }
  return v;
}

// A reusable stack buffer for hot paths that must not allocate.
struct KeyBuf {
  char data[kEncodedKeyBytes];

  Slice Set(uint64_t key) {
    EncodeKeyTo(key, data);
    return Slice(data, kEncodedKeyBytes);
  }
};

}  // namespace flodb

#endif  // FLODB_COMMON_KEY_CODEC_H_
