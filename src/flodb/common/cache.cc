#include "flodb/common/cache.h"

#include <cassert>
#include <functional>
#include <string_view>
#include <utility>
#include <vector>

#include "flodb/common/hash.h"
#include "flodb/common/synchronization.h"

namespace flodb {

// One cache entry. An entry lives in at most one of its shard's two
// intrusive lists:
//  * lru_    — resident, no outstanding handles (evictable, LRU order);
//  * in_use_ — resident, pinned by at least one handle;
// or in neither (detached): evicted/erased while pinned, kept alive by
// its remaining handles and freed on the last Release.
//
// refs counts the outstanding handles plus one for cache residency, so
// the lists are derivable: in_cache && refs == 1 <=> lru_, in_cache &&
// refs > 1 <=> in_use_.
struct ShardedLruCache::LRUHandle {
  void* value = nullptr;
  void (*deleter)(const Slice&, void*) = nullptr;
  LRUHandle* next = nullptr;
  LRUHandle* prev = nullptr;
  size_t charge = 0;
  uint32_t refs = 0;
  bool in_cache = false;
  std::string key;
};

// Heterogeneous string hashing so Lookup/Erase probe with a
// string_view over the caller's Slice instead of materializing a
// std::string per call (the block-cache Lookup is the hottest read-path
// operation in the store).
struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const { return std::hash<std::string_view>{}(s); }
};

struct ShardedLruCache::Shard {
  mutable SpinLock mu;
  size_t capacity = 0;  // set once at construction, read-only afterwards
  size_t usage GUARDED_BY(mu) = 0;         // charge of resident entries
  size_t pinned_usage GUARDED_BY(mu) = 0;  // charge of entries with outstanding handles
  uint64_t hits GUARDED_BY(mu) = 0;
  uint64_t misses GUARDED_BY(mu) = 0;
  uint64_t evictions GUARDED_BY(mu) = 0;
  std::unordered_map<std::string, LRUHandle*, TransparentStringHash, std::equal_to<>> table
      GUARDED_BY(mu);
  // Dummy heads of the circular lists.
  LRUHandle lru GUARDED_BY(mu);
  LRUHandle in_use GUARDED_BY(mu);

  Shard() {
    lru.next = &lru;
    lru.prev = &lru;
    in_use.next = &in_use;
    in_use.prev = &in_use;
  }

  static void ListRemove(LRUHandle* e) {
    e->next->prev = e->prev;
    e->prev->next = e->next;
    e->next = nullptr;
    e->prev = nullptr;
  }

  static void ListAppend(LRUHandle* list, LRUHandle* e) {
    // Newest entries go just before the dummy head; list->next is oldest.
    e->next = list;
    e->prev = list->prev;
    e->prev->next = e;
    e->next->prev = e;
  }

  // Detaches `e` from the table's perspective (list + residency charge)
  // and drops the cache's own reference. Appends to `garbage` if that was
  // the last reference. REQUIRES: e->in_cache.
  void FinishErase(LRUHandle* e, std::vector<LRUHandle*>* garbage) REQUIRES(mu) {
    assert(e->in_cache);
    ListRemove(e);
    e->in_cache = false;
    usage -= e->charge;
    if (--e->refs == 0) {
      garbage->push_back(e);
    }
  }

  // Evicts oldest unpinned entries until usage fits.
  void EvictLocked(std::vector<LRUHandle*>* garbage) REQUIRES(mu) {
    while (usage > capacity && lru.next != &lru) {
      LRUHandle* oldest = lru.next;
      table.erase(oldest->key);
      FinishErase(oldest, garbage);
      ++evictions;
    }
  }

  // Runs deleters outside the shard lock: a deleter may be arbitrarily
  // expensive (a TableReader teardown purges its blocks from another
  // cache), and holding a spinlock across it would stall every reader on
  // the shard.
  static void RunDeleters(const std::vector<LRUHandle*>& garbage) {
    for (LRUHandle* e : garbage) {
      (*e->deleter)(Slice(e->key), e->value);
      delete e;
    }
  }
};

namespace {

int ClampShardCount(int requested) {
  int shards = 1;
  while (shards * 2 <= requested && shards * 2 <= ShardedLruCache::kNumShards) {
    shards *= 2;
  }
  return shards;
}

}  // namespace

ShardedLruCache::ShardedLruCache(size_t capacity, int num_shards)
    : capacity_(capacity),
      num_shards_(ClampShardCount(num_shards)),
      shards_(new Shard[static_cast<size_t>(num_shards_)]) {
  // Distribute capacity exactly: floor per shard, with the remainder
  // spread one unit each over the first shards, so the shard capacities
  // sum to the configured total (the aggregate bound is never inflated
  // by rounding).
  const size_t shards = static_cast<size_t>(num_shards_);
  const size_t base = capacity / shards;
  const size_t remainder = capacity % shards;
  for (size_t i = 0; i < shards; ++i) {
    shards_[i].capacity = base + (i < remainder ? 1 : 0);
  }
}

ShardedLruCache::~ShardedLruCache() {
  std::vector<LRUHandle*> garbage;
  for (int i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    // No callers may hold handles at destruction time; every resident
    // entry therefore sits in lru_ with only the cache's reference.
    assert(shard.in_use.next == &shard.in_use);
    for (LRUHandle* e = shard.lru.next; e != &shard.lru;) {
      LRUHandle* next = e->next;
      assert(e->refs == 1);
      garbage.push_back(e);
      e = next;
    }
  }
  Shard::RunDeleters(garbage);
  delete[] shards_;
}

size_t ShardedLruCache::ShardOf(const Slice& key) const {
  // Seeded differently from the Membuffer/bloom consumers so shard
  // placement decorrelates from every other hash user of the same key.
  return Hash64(key, /*seed=*/0xcac4eb10cULL) & static_cast<uint64_t>(num_shards_ - 1);
}

ShardedLruCache::Handle* ShardedLruCache::Insert(const Slice& key, void* value, size_t charge,
                                                 void (*deleter)(const Slice&, void*)) {
  auto* e = new LRUHandle();
  e->value = value;
  e->deleter = deleter;
  e->charge = charge;
  e->key.assign(key.data(), key.size());
  e->refs = 1;  // the returned handle

  if (capacity_ == 0) {
    // Pass-through mode: hand the caller a self-owned pinned entry and
    // never retain it. pinned_usage still tracks it so "bytes pinned by
    // in-flight readers" stays observable with the cache disabled.
    Shard& shard = shards_[ShardOf(key)];
    SpinLockHolder guard(shard.mu);
    shard.pinned_usage += charge;
    return reinterpret_cast<Handle*>(e);
  }

  std::vector<LRUHandle*> garbage;
  Shard& shard = shards_[ShardOf(key)];
  {
    SpinLockHolder guard(shard.mu);
    e->refs++;  // the cache's reference
    e->in_cache = true;
    shard.usage += charge;
    shard.pinned_usage += charge;
    Shard::ListAppend(&shard.in_use, e);
    auto [it, inserted] = shard.table.try_emplace(e->key, e);
    if (!inserted) {
      // Replace: the old entry leaves the table; its pinned readers (if
      // any) keep it alive until their Releases.
      shard.FinishErase(it->second, &garbage);
      it->second = e;
    }
    shard.EvictLocked(&garbage);
  }
  Shard::RunDeleters(garbage);
  return reinterpret_cast<Handle*>(e);
}

ShardedLruCache::Handle* ShardedLruCache::Lookup(const Slice& key) {
  Shard& shard = shards_[ShardOf(key)];
  SpinLockHolder guard(shard.mu);
  auto it = shard.table.find(std::string_view(key.data(), key.size()));
  if (it == shard.table.end()) {
    ++shard.misses;
    return nullptr;
  }
  LRUHandle* e = it->second;
  if (e->refs == 1) {
    // First pin: promote from the evictable list.
    Shard::ListRemove(e);
    Shard::ListAppend(&shard.in_use, e);
    shard.pinned_usage += e->charge;
  }
  e->refs++;
  ++shard.hits;
  return reinterpret_cast<Handle*>(e);
}

void* ShardedLruCache::Value(Handle* handle) const {
  return reinterpret_cast<LRUHandle*>(handle)->value;
}

void ShardedLruCache::Release(Handle* handle) {
  LRUHandle* e = reinterpret_cast<LRUHandle*>(handle);
  Shard& shard = shards_[ShardOf(Slice(e->key))];
  std::vector<LRUHandle*> garbage;
  {
    SpinLockHolder guard(shard.mu);
    assert(e->refs > 0);
    e->refs--;
    if (e->refs == 0) {
      // Last handle on a detached (evicted/erased/pass-through) entry.
      shard.pinned_usage -= e->charge;
      garbage.push_back(e);
    } else if (e->in_cache && e->refs == 1) {
      // Last handle on a resident entry: demote to the evictable list,
      // then honor capacity immediately rather than waiting for the next
      // Insert (the table cache pins entries across whole reads; this
      // keeps its bound tight).
      Shard::ListRemove(e);
      Shard::ListAppend(&shard.lru, e);
      shard.pinned_usage -= e->charge;
      shard.EvictLocked(&garbage);
    }
  }
  Shard::RunDeleters(garbage);
}

void ShardedLruCache::Erase(const Slice& key) {
  Shard& shard = shards_[ShardOf(key)];
  std::vector<LRUHandle*> garbage;
  {
    SpinLockHolder guard(shard.mu);
    auto it = shard.table.find(std::string_view(key.data(), key.size()));
    if (it == shard.table.end()) {
      return;
    }
    LRUHandle* e = it->second;
    shard.table.erase(it);
    shard.FinishErase(e, &garbage);
  }
  Shard::RunDeleters(garbage);
}

size_t ShardedLruCache::TotalCharge() const {
  size_t total = 0;
  for (int i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    SpinLockHolder guard(shard.mu);
    total += shard.usage;
  }
  return total;
}

size_t ShardedLruCache::TotalEntries() const {
  size_t total = 0;
  for (int i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    SpinLockHolder guard(shard.mu);
    total += shard.table.size();
  }
  return total;
}

size_t ShardedLruCache::ShardCharge(size_t shard) const {
  Shard& s = shards_[shard];
  SpinLockHolder guard(s.mu);
  return s.usage;
}

ShardedLruCache::Stats ShardedLruCache::GetStats() const {
  Stats stats;
  for (int i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    SpinLockHolder guard(shard.mu);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.evictions += shard.evictions;
    stats.charge += shard.usage;
    stats.pinned_charge += shard.pinned_usage;
    stats.entries += shard.table.size();
  }
  return stats;
}

}  // namespace flodb
