// ShardedLruCache: the read-path cache shared by the disk component.
//
// A charge-based LRU in the LevelDB Cache mold, split into 16 shards by
// key hash so concurrent readers rarely contend on the same lock; each
// shard is a hash table plus two intrusive lists (evictable LRU order vs
// pinned in-use) under one spinlock. Entries are refcounted: Lookup and
// Insert return pinned handles whose values stay valid — even across
// eviction or Erase — until every handle is Released, so a reader is
// never left holding freed block bytes.
//
// Two instantiations serve the read path (DESIGN.md §9):
//  * the block cache — values are decoded SSTable blocks, charged by
//    byte size, keyed (file_number, block_index);
//  * the table cache — values are open TableReaders, charged 1 each,
//    keyed by file number, so the set of open tables is bounded.
//
// A zero-capacity cache degenerates to a pass-through: Lookup always
// misses and Insert hands back a self-owned handle that is freed on
// Release without ever being retained.

#ifndef FLODB_COMMON_CACHE_H_
#define FLODB_COMMON_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "flodb/common/slice.h"

namespace flodb {

class ShardedLruCache {
 public:
  // Opaque pinned-entry token. Every non-null Handle* returned by Insert
  // or Lookup must be passed to Release exactly once.
  struct Handle;

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;   // capacity-pressure removals only (not Erase)
    size_t charge = 0;        // resident charge across all shards
    size_t pinned_charge = 0; // charge of entries with outstanding handles
    size_t entries = 0;       // resident entry count
  };

  static constexpr int kNumShards = 16;

  // `num_shards` rounds down to a power of two in [1, kNumShards].
  // Capacity distributes exactly across shards (floor + spread
  // remainder), so the aggregate bound is never inflated; use fewer
  // shards when capacity is counted in small units (the table cache
  // charges 1 per entry), or shards with a zero slice of a tiny budget
  // would never retain anything.
  explicit ShardedLruCache(size_t capacity, int num_shards = kNumShards);
  ~ShardedLruCache();

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  // Inserts a mapping key -> value with the given charge, replacing any
  // existing entry for the key. `deleter` runs exactly once, when the
  // entry is no longer resident AND no handle pins it. Returns a pinned
  // handle to the inserted entry.
  Handle* Insert(const Slice& key, void* value, size_t charge,
                 void (*deleter)(const Slice& key, void* value));

  // Returns a pinned handle on hit, nullptr on miss.
  Handle* Lookup(const Slice& key);

  // Unpins a handle from Insert/Lookup.
  void Release(Handle* handle);

  // The value of a pinned handle.
  void* Value(Handle* handle) const;

  // Drops the entry (if resident). Pinned handles keep their value alive;
  // the deleter runs after the last Release.
  void Erase(const Slice& key);

  size_t capacity() const { return capacity_; }
  int num_shards() const { return num_shards_; }
  size_t TotalCharge() const;
  size_t TotalEntries() const;
  Stats GetStats() const;

  // Shard routing, exposed for distribution tests and diagnostics.
  size_t ShardOf(const Slice& key) const;
  size_t ShardCharge(size_t shard) const;

 private:
  struct LRUHandle;
  struct Shard;

  const size_t capacity_;
  const int num_shards_;
  Shard* shards_;  // array of num_shards_
};

// RAII wrapper releasing a handle on scope exit (move-only).
class CacheHandleGuard {
 public:
  CacheHandleGuard() = default;
  CacheHandleGuard(ShardedLruCache* cache, ShardedLruCache::Handle* handle)
      : cache_(cache), handle_(handle) {}
  ~CacheHandleGuard() { Reset(); }

  CacheHandleGuard(CacheHandleGuard&& other) noexcept
      : cache_(other.cache_), handle_(other.handle_) {
    other.cache_ = nullptr;
    other.handle_ = nullptr;
  }
  CacheHandleGuard& operator=(CacheHandleGuard&& other) noexcept {
    if (this != &other) {
      Reset();
      cache_ = other.cache_;
      handle_ = other.handle_;
      other.cache_ = nullptr;
      other.handle_ = nullptr;
    }
    return *this;
  }
  CacheHandleGuard(const CacheHandleGuard&) = delete;
  CacheHandleGuard& operator=(const CacheHandleGuard&) = delete;

  void Reset() {
    if (cache_ != nullptr && handle_ != nullptr) {
      cache_->Release(handle_);
    }
    cache_ = nullptr;
    handle_ = nullptr;
  }

  ShardedLruCache::Handle* handle() const { return handle_; }
  void* value() const { return cache_->Value(handle_); }
  explicit operator bool() const { return handle_ != nullptr; }

 private:
  ShardedLruCache* cache_ = nullptr;
  ShardedLruCache::Handle* handle_ = nullptr;
};

}  // namespace flodb

#endif  // FLODB_COMMON_CACHE_H_
