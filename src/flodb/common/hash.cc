#include "flodb/common/hash.h"

#include <cstring>

namespace flodb {

namespace {

constexpr uint64_t kPrime1 = 0x9E3779B185EBCA87ULL;
constexpr uint64_t kPrime2 = 0xC2B2AE3D27D4EB4FULL;
constexpr uint64_t kPrime3 = 0x165667B19E3779F9ULL;
constexpr uint64_t kPrime4 = 0x85EBCA77C2B2AE63ULL;
constexpr uint64_t kPrime5 = 0x27D4EB2F165667C5ULL;

inline uint64_t Rotl64(uint64_t x, int r) { return (x << r) | (x >> (64 - r)); }

inline uint64_t Load64(const char* p) {
  uint64_t v;
  memcpy(&v, p, sizeof(v));
  return v;
}

inline uint32_t Load32(const char* p) {
  uint32_t v;
  memcpy(&v, p, sizeof(v));
  return v;
}

inline uint64_t Round(uint64_t acc, uint64_t input) {
  acc += input * kPrime2;
  acc = Rotl64(acc, 31);
  acc *= kPrime1;
  return acc;
}

inline uint64_t MergeRound(uint64_t acc, uint64_t val) {
  val = Round(0, val);
  acc ^= val;
  acc = acc * kPrime1 + kPrime4;
  return acc;
}

}  // namespace

uint64_t Hash64(const char* data, size_t n, uint64_t seed) {
  const char* p = data;
  const char* end = data + n;
  uint64_t h;

  if (n >= 32) {
    const char* limit = end - 32;
    uint64_t v1 = seed + kPrime1 + kPrime2;
    uint64_t v2 = seed + kPrime2;
    uint64_t v3 = seed + 0;
    uint64_t v4 = seed - kPrime1;
    do {
      v1 = Round(v1, Load64(p));
      p += 8;
      v2 = Round(v2, Load64(p));
      p += 8;
      v3 = Round(v3, Load64(p));
      p += 8;
      v4 = Round(v4, Load64(p));
      p += 8;
    } while (p <= limit);
    h = Rotl64(v1, 1) + Rotl64(v2, 7) + Rotl64(v3, 12) + Rotl64(v4, 18);
    h = MergeRound(h, v1);
    h = MergeRound(h, v2);
    h = MergeRound(h, v3);
    h = MergeRound(h, v4);
  } else {
    h = seed + kPrime5;
  }

  h += static_cast<uint64_t>(n);

  while (p + 8 <= end) {
    h ^= Round(0, Load64(p));
    h = Rotl64(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<uint64_t>(Load32(p)) * kPrime1;
    h = Rotl64(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<unsigned char>(*p) * kPrime5;
    h = Rotl64(h, 11) * kPrime1;
    p++;
  }

  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

uint32_t Hash32(const char* data, size_t n, uint32_t seed) {
  // Murmur-inspired one-pass hash (the LevelDB bloom hash family).
  constexpr uint32_t m = 0xc6a4a793;
  constexpr uint32_t r = 24;
  const char* limit = data + n;
  uint32_t h = seed ^ (static_cast<uint32_t>(n) * m);

  while (data + 4 <= limit) {
    uint32_t w = Load32(data);
    data += 4;
    h += w;
    h *= m;
    h ^= (h >> 16);
  }

  switch (limit - data) {
    case 3:
      h += static_cast<unsigned char>(data[2]) << 16;
      [[fallthrough]];
    case 2:
      h += static_cast<unsigned char>(data[1]) << 8;
      [[fallthrough]];
    case 1:
      h += static_cast<unsigned char>(data[0]);
      h *= m;
      h ^= (h >> r);
      break;
  }
  return h;
}

}  // namespace flodb
