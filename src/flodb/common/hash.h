// Hash functions used across the store.
//
// Hash64 is an xxhash64-style avalanche mixer used by the Membuffer for
// bucket placement; Hash32 is a Murmur-style hash used by bloom filters.
// Both are seeded so independent consumers decorrelate.

#ifndef FLODB_COMMON_HASH_H_
#define FLODB_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>

#include "flodb/common/slice.h"

namespace flodb {

uint64_t Hash64(const char* data, size_t n, uint64_t seed);
uint32_t Hash32(const char* data, size_t n, uint32_t seed);

inline uint64_t Hash64(const Slice& s, uint64_t seed = 0) {
  return Hash64(s.data(), s.size(), seed);
}

inline uint32_t Hash32(const Slice& s, uint32_t seed = 0) {
  return Hash32(s.data(), s.size(), seed);
}

// Finalizer-style mix of a 64-bit integer (splitmix64 finale); useful for
// hashing already-integral keys without touching memory.
inline uint64_t MixU64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace flodb

#endif  // FLODB_COMMON_HASH_H_
