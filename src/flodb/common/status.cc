#include "flodb/common/status.h"

namespace flodb {

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  const char* type = "Unknown";
  switch (rep_->code) {
    case Code::kOk:
      type = "OK";
      break;
    case Code::kNotFound:
      type = "NotFound";
      break;
    case Code::kCorruption:
      type = "Corruption";
      break;
    case Code::kNotSupported:
      type = "NotSupported";
      break;
    case Code::kInvalidArgument:
      type = "InvalidArgument";
      break;
    case Code::kIOError:
      type = "IOError";
      break;
    case Code::kBusy:
      type = "Busy";
      break;
    case Code::kAborted:
      type = "Aborted";
      break;
  }
  std::string result(type);
  if (!rep_->message.empty()) {
    result += ": ";
    result += rep_->message;
  }
  return result;
}

}  // namespace flodb
