// Fast per-thread pseudo-random generators for workloads and skiplist
// level selection. Not cryptographic. xoshiro256** core.

#ifndef FLODB_COMMON_RANDOM_H_
#define FLODB_COMMON_RANDOM_H_

#include <cstdint>

#include "flodb/common/hash.h"

namespace flodb {

class Random64 {
 public:
  explicit Random64(uint64_t seed) {
    // splitmix64 seeding avoids correlated lanes for nearby seeds.
    uint64_t x = seed + 0x9e3779b97f4a7c15ULL;
    for (auto& lane : s_) {
      x = MixU64(x);
      lane = x | 1;  // never all-zero state
      x += 0x9e3779b97f4a7c15ULL;
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  // Returns true with probability num/den.
  bool OneIn(uint64_t den) { return Uniform(den) == 0; }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace flodb

#endif  // FLODB_COMMON_RANDOM_H_
