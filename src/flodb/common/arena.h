// ConcurrentArena: a thread-safe bump allocator.
//
// Memtables and Membuffers allocate nodes, value cells and records from an
// arena and never free them individually; the whole arena is released when
// the component is retired (after an RCU grace period). Allocation is a
// single fetch_add on the current block in the common case; a spinlock is
// taken only to chain a new block.

#ifndef FLODB_COMMON_ARENA_H_
#define FLODB_COMMON_ARENA_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "flodb/common/synchronization.h"

namespace flodb {

class ConcurrentArena {
 public:
  explicit ConcurrentArena(size_t block_bytes = 1u << 20);

  ConcurrentArena(const ConcurrentArena&) = delete;
  ConcurrentArena& operator=(const ConcurrentArena&) = delete;

  ~ConcurrentArena();

  // Returns naturally-aligned (8B) storage for n bytes. Never returns
  // nullptr; aborts on OOM (consistent with the no-exceptions policy).
  char* Allocate(size_t n);

  // Total bytes handed out (approximate; monotone).
  size_t AllocatedBytes() const { return allocated_.load(std::memory_order_relaxed); }

  // Total bytes reserved from the OS.
  size_t ReservedBytes() const { return reserved_.load(std::memory_order_relaxed); }

 private:
  struct Block {
    char* data;
    size_t size;
  };

  char* AllocateSlow(size_t n);

  const size_t block_bytes_;

  // Current block: pointer + atomically bumped offset.
  std::atomic<char*> cur_block_{nullptr};
  std::atomic<size_t> cur_offset_{0};
  std::atomic<size_t> cur_size_{0};

  Mutex blocks_mu_;
  std::vector<Block> blocks_ GUARDED_BY(blocks_mu_);

  std::atomic<size_t> allocated_{0};
  std::atomic<size_t> reserved_{0};
};

}  // namespace flodb

#endif  // FLODB_COMMON_ARENA_H_
