// Capability-annotated synchronization primitives (Clang Thread Safety
// Analysis, DESIGN.md §14).
//
// Every lock in the store is one of the wrappers below, every field a lock
// protects carries GUARDED_BY, and every helper that assumes a caller-held
// lock carries REQUIRES — so the lock discipline that used to live in prose
// is rechecked by the compiler on every build. Under Clang with
// -Wthread-safety the annotations are enforced (the lint-thread-safety CI
// job builds with -Werror=thread-safety); under GCC and other compilers
// they expand to nothing and the wrappers are zero-cost veneers over the
// std primitives.
//
// Runtime backstop: in debug builds (!NDEBUG) Mutex/SharedMutex/SpinLock
// track their holder thread, so AssertHeld() aborts when the static
// analysis was bypassed (e.g. through a NO_THREAD_SAFETY_ANALYSIS escape
// hatch) and the invariant still does not hold dynamically. In release
// builds AssertHeld() compiles to the static assertion only.
//
// Usage conventions (see DESIGN.md §14 for the full lock table):
//   - Scoped holds use MutexLock / ReaderMutexLock / SpinLockHolder.
//   - Flows that must release mid-scope (the WAL group-commit leader, the
//     compaction limiter) call lock()/unlock() directly; the analysis
//     checks the pairing per-branch.
//   - CondVar is external-mutex style: Wait(mu) REQUIRES(mu), so the
//     analysis verifies waiters hold the right lock at every wait site.

#ifndef FLODB_COMMON_SYNCHRONIZATION_H_
#define FLODB_COMMON_SYNCHRONIZATION_H_

#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <thread>

#include "flodb/sync/backoff.h"

// ---------------------------------------------------------------------------
// Thread safety analysis macros (LLVM thread-safety-analysis docs' mutex.h
// mold). No-ops unless compiling with Clang and the capability attributes
// are available.
// ---------------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define FLODB_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef FLODB_THREAD_ANNOTATION
#define FLODB_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

#define CAPABILITY(x) FLODB_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY FLODB_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) FLODB_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) FLODB_THREAD_ANNOTATION(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) FLODB_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) FLODB_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define REQUIRES(...) FLODB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) FLODB_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) FLODB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) FLODB_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) FLODB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) FLODB_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) FLODB_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) FLODB_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) FLODB_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) FLODB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) FLODB_THREAD_ANNOTATION(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) FLODB_THREAD_ANNOTATION(assert_shared_capability(x))
#define RETURN_CAPABILITY(x) FLODB_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS FLODB_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace flodb {

// Debug-build holder tracking shared by the lock wrappers. Thread ids are
// stored relaxed: the lock's own acquire/release ordering already makes the
// store by the holder visible to the next holder, and AssertHeld only
// compares against the *calling* thread's id (a self-store it trivially
// observes), so no stronger ordering is needed.
#ifndef NDEBUG
#define FLODB_SYNC_DEBUG_HOLDER 1
#endif

// An exclusive mutex carrying the "mutex" capability. API mirrors
// std::mutex (lock/unlock/try_lock) so std adapters still work mechanically,
// but annotated code should hold it via MutexLock or explicit
// lock()/unlock() pairs — std::unique_lock is invisible to the analysis.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() {
    mu_.lock();
    DebugSetHolder();
  }

  bool try_lock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    DebugSetHolder();
    return true;
  }

  void unlock() RELEASE() {
    DebugClearHolder();
    mu_.unlock();
  }

  // Dynamic backstop for the static analysis: tells the analyzer the lock
  // is held from here on, and (debug builds) aborts if it is not.
  void AssertHeld() const ASSERT_CAPABILITY(this) {
#ifdef FLODB_SYNC_DEBUG_HOLDER
    assert(holder_.load(std::memory_order_relaxed) == std::this_thread::get_id() &&
           "Mutex::AssertHeld: calling thread does not hold the lock");
#endif
  }

 private:
  friend class CondVar;

  void DebugSetHolder() {
#ifdef FLODB_SYNC_DEBUG_HOLDER
    holder_.store(std::this_thread::get_id(), std::memory_order_relaxed);
#endif
  }
  void DebugClearHolder() {
#ifdef FLODB_SYNC_DEBUG_HOLDER
    assert(holder_.load(std::memory_order_relaxed) == std::this_thread::get_id() &&
           "Mutex::unlock: calling thread does not hold the lock");
    holder_.store(std::thread::id(), std::memory_order_relaxed);
#endif
  }

  std::mutex mu_;
#ifdef FLODB_SYNC_DEBUG_HOLDER
  std::atomic<std::thread::id> holder_{};
#endif
};

// A reader/writer mutex. Exclusive holds are tracked like Mutex; shared
// holds are tracked as a count (any-reader, not per-thread — good enough to
// catch "nobody holds this at all" in debug builds).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() {
    mu_.lock();
#ifdef FLODB_SYNC_DEBUG_HOLDER
    holder_.store(std::this_thread::get_id(), std::memory_order_relaxed);
#endif
  }

  void unlock() RELEASE() {
#ifdef FLODB_SYNC_DEBUG_HOLDER
    assert(holder_.load(std::memory_order_relaxed) == std::this_thread::get_id() &&
           "SharedMutex::unlock: calling thread does not hold the lock");
    holder_.store(std::thread::id(), std::memory_order_relaxed);
#endif
    mu_.unlock();
  }

  void lock_shared() ACQUIRE_SHARED() {
    mu_.lock_shared();
#ifdef FLODB_SYNC_DEBUG_HOLDER
    readers_.fetch_add(1, std::memory_order_relaxed);
#endif
  }

  void unlock_shared() RELEASE_SHARED() {
#ifdef FLODB_SYNC_DEBUG_HOLDER
    assert(readers_.fetch_sub(1, std::memory_order_relaxed) > 0 &&
           "SharedMutex::unlock_shared: no shared hold outstanding");
#endif
    mu_.unlock_shared();
  }

  void AssertHeld() const ASSERT_CAPABILITY(this) {
#ifdef FLODB_SYNC_DEBUG_HOLDER
    assert(holder_.load(std::memory_order_relaxed) == std::this_thread::get_id() &&
           "SharedMutex::AssertHeld: calling thread does not hold the lock exclusively");
#endif
  }

  // Any-reader assertion: some thread (possibly this one) holds a shared or
  // exclusive lock. Cannot prove THIS thread is a reader without per-thread
  // bookkeeping, so it is deliberately the weaker check.
  void AssertReaderHeld() const ASSERT_SHARED_CAPABILITY(this) {
#ifdef FLODB_SYNC_DEBUG_HOLDER
    assert((readers_.load(std::memory_order_relaxed) > 0 ||
            holder_.load(std::memory_order_relaxed) == std::this_thread::get_id()) &&
           "SharedMutex::AssertReaderHeld: lock not held in any mode");
#endif
  }

 private:
  std::shared_mutex mu_;
#ifdef FLODB_SYNC_DEBUG_HOLDER
  std::atomic<std::thread::id> holder_{};
  std::atomic<int> readers_{0};
#endif
};

// Tiny test-and-test-and-set spinlock with exponential backoff (absorbed
// from sync/spinlock.h). Used for per-bucket locking in the Membuffer and
// the cache shards, where critical sections are a handful of loads/stores;
// a futex-based mutex would dominate the cost.
class CAPABILITY("spinlock") SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() ACQUIRE() {
    Backoff backoff;
    while (true) {
      if (!locked_.exchange(true, std::memory_order_acquire)) {
        DebugSetHolder();
        return;
      }
      while (locked_.load(std::memory_order_relaxed)) {
        backoff.Pause();
      }
    }
  }

  bool try_lock() TRY_ACQUIRE(true) {
    if (locked_.exchange(true, std::memory_order_acquire)) return false;
    DebugSetHolder();
    return true;
  }

  void unlock() RELEASE() {
    DebugClearHolder();
    locked_.store(false, std::memory_order_release);
  }

  void AssertHeld() const ASSERT_CAPABILITY(this) {
#ifdef FLODB_SYNC_DEBUG_HOLDER
    assert(holder_.load(std::memory_order_relaxed) == std::this_thread::get_id() &&
           "SpinLock::AssertHeld: calling thread does not hold the lock");
#endif
  }

 private:
  void DebugSetHolder() {
#ifdef FLODB_SYNC_DEBUG_HOLDER
    holder_.store(std::this_thread::get_id(), std::memory_order_relaxed);
#endif
  }
  void DebugClearHolder() {
#ifdef FLODB_SYNC_DEBUG_HOLDER
    assert(holder_.load(std::memory_order_relaxed) == std::this_thread::get_id() &&
           "SpinLock::unlock: calling thread does not hold the lock");
    holder_.store(std::thread::id(), std::memory_order_relaxed);
#endif
  }

  std::atomic<bool> locked_{false};
#ifdef FLODB_SYNC_DEBUG_HOLDER
  std::atomic<std::thread::id> holder_{};
#endif
};

// RAII exclusive hold on a Mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// RAII exclusive hold on a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~WriterMutexLock() RELEASE() { mu_.unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// RAII shared hold on a SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) { mu_.lock_shared(); }
  ~ReaderMutexLock() RELEASE() { mu_.unlock_shared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// RAII hold on a SpinLock.
class SCOPED_CAPABILITY SpinLockHolder {
 public:
  explicit SpinLockHolder(SpinLock& lock) ACQUIRE(lock) : lock_(lock) { lock_.lock(); }
  ~SpinLockHolder() RELEASE() { lock_.unlock(); }
  SpinLockHolder(const SpinLockHolder&) = delete;
  SpinLockHolder& operator=(const SpinLockHolder&) = delete;

 private:
  SpinLock& lock_;
};

// External-mutex condition variable: the mutex is named at every wait site
// (Wait(mu) REQUIRES(mu)), so the analysis checks that waiters hold the
// lock the predicate is guarded by. Built on condition_variable_any; the
// wait path re-enters Mutex::lock/unlock, so debug holder tracking stays
// correct across the block.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    // Escape hatch invariant: wait() releases `mu` for the duration of the
    // block and reacquires before returning, so the caller-visible "held on
    // entry, held on exit" contract (REQUIRES) is preserved; the analysis
    // cannot see through condition_variable_any's internals.
    cv_.wait(mu);
  }

  template <typename Predicate>
  void Await(Mutex& mu, Predicate pred) REQUIRES(mu) {
    while (!pred()) {
      Wait(mu);
    }
  }

  // Returns false on timeout (like condition_variable::wait_for's
  // cv_status::timeout), true if woken by a notify before the deadline.
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout) REQUIRES(mu)
      NO_THREAD_SAFETY_ANALYSIS {
    // Same invariant as Wait: held on entry, held on exit.
    return cv_.wait_for(mu, timeout) == std::cv_status::no_timeout;
  }

  // Returns the predicate's value at exit: true means the condition held
  // (possibly just before the deadline), false means it timed out.
  template <typename Rep, typename Period, typename Predicate>
  bool AwaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout, Predicate pred)
      REQUIRES(mu) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (!pred()) {
      if (WaitUntil(mu, deadline)) return pred();
    }
    return true;
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  // Returns true when the deadline passed.
  template <typename Clock, typename Duration>
  bool WaitUntil(Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline) REQUIRES(mu)
      NO_THREAD_SAFETY_ANALYSIS {
    return cv_.wait_until(mu, deadline) == std::cv_status::timeout;
  }

  std::condition_variable_any cv_;
};

}  // namespace flodb

#endif  // FLODB_COMMON_SYNCHRONIZATION_H_
