// Status: the error-reporting currency of the library (no exceptions).
//
// Mirrors the classic LevelDB/Abseil shape: a cheap OK value plus a coded
// error with a human-readable message. All fallible public APIs return
// Status (or fill an out-parameter and return Status).

#ifndef FLODB_COMMON_STATUS_H_
#define FLODB_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

#include "flodb/common/slice.h"

namespace flodb {

class Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kNotSupported = 3,
    kInvalidArgument = 4,
    kIOError = 5,
    kBusy = 6,
    kAborted = 7,
  };

  Status() = default;  // OK

  static Status OK() { return Status(); }
  static Status NotFound(const Slice& msg = Slice()) { return Status(Code::kNotFound, msg); }
  static Status Corruption(const Slice& msg) { return Status(Code::kCorruption, msg); }
  static Status NotSupported(const Slice& msg) { return Status(Code::kNotSupported, msg); }
  static Status InvalidArgument(const Slice& msg) { return Status(Code::kInvalidArgument, msg); }
  static Status IOError(const Slice& msg) { return Status(Code::kIOError, msg); }
  static Status Busy(const Slice& msg) { return Status(Code::kBusy, msg); }
  static Status Aborted(const Slice& msg) { return Status(Code::kAborted, msg); }

  bool ok() const { return rep_ == nullptr; }
  bool IsNotFound() const { return code() == Code::kNotFound; }
  bool IsCorruption() const { return code() == Code::kCorruption; }
  bool IsIOError() const { return code() == Code::kIOError; }
  bool IsBusy() const { return code() == Code::kBusy; }
  bool IsAborted() const { return code() == Code::kAborted; }
  bool IsInvalidArgument() const { return code() == Code::kInvalidArgument; }
  bool IsNotSupported() const { return code() == Code::kNotSupported; }

  Code code() const { return rep_ == nullptr ? Code::kOk : rep_->code; }

  // "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    Code code;
    std::string message;
  };

  Status(Code code, const Slice& msg)
      : rep_(std::make_shared<Rep>(Rep{code, msg.ToString()})) {}

  // shared_ptr keeps Status copyable and cheap to pass; OK carries nullptr.
  std::shared_ptr<Rep> rep_;
};

}  // namespace flodb

#endif  // FLODB_COMMON_STATUS_H_
