// FloDB user-facing operations: Open/close, Get, batch Write (Algorithm 2
// generalized to WriteBatch group commit), FlushAll and stats. Background
// machinery lives in flodb_background.cc; the scan protocol and the
// streaming iterator in flodb_scan.cc.

#include "flodb/core/flodb.h"

#include <algorithm>
#include <cinttypes>
#include <thread>

#include "flodb/core/memtable_iterator.h"

namespace flodb {

namespace {

constexpr size_t kMinMemtableTarget = 64u << 10;

size_t ComputeMemtableTarget(const FloDbOptions& options) {
  double fraction = options.enable_membuffer ? (1.0 - options.membuffer_fraction) : 1.0;
  if (fraction < 0.05) {
    fraction = 0.05;
  }
  auto target = static_cast<size_t>(static_cast<double>(options.memory_budget_bytes) * fraction);
  return target < kMinMemtableTarget ? kMinMemtableTarget : target;
}

// A batch entry decoded once per Write; slices point into the batch rep.
struct BatchEntryRef {
  Slice key;
  Slice value;
  ValueType type;
};

}  // namespace

FloDB::FloDB(const FloDbOptions& options)
    : options_(options), memtable_target_bytes_(ComputeMemtableTarget(options)) {}

MemBuffer* FloDB::NewMembuffer() const {
  MemBuffer::Options mo;
  mo.capacity_bytes =
      static_cast<size_t>(static_cast<double>(options_.memory_budget_bytes) *
                          options_.membuffer_fraction);
  if (mo.capacity_bytes < (64u << 10)) {
    mo.capacity_bytes = 64u << 10;
  }
  mo.partition_bits = options_.membuffer_partition_bits;
  mo.avg_entry_bytes_hint = options_.membuffer_avg_entry_hint;
  return new MemBuffer(mo);
}

Status FloDB::Open(const FloDbOptions& options, std::unique_ptr<FloDB>* out) {
  if (options.enable_persistence &&
      (options.disk.env == nullptr || options.disk.path.empty())) {
    return Status::InvalidArgument("persistence requires disk.env and disk.path");
  }
  if (options.enable_wal && !options.enable_persistence) {
    return Status::InvalidArgument("WAL requires persistence");
  }
  if (options.membuffer_fraction <= 0.0 || options.membuffer_fraction >= 1.0) {
    return Status::InvalidArgument("membuffer_fraction must be in (0, 1)");
  }
  if (options.memory_budget_bytes == 0) {
    return Status::InvalidArgument("memory_budget_bytes must be positive");
  }
  if (options.drain_threads < 0) {
    // 0 is allowed and clamped to one thread by StartBackgroundThreads;
    // a negative count is a configuration error.
    return Status::InvalidArgument("drain_threads must not be negative");
  }
  if (options.shards < 1) {
    return Status::InvalidArgument("shards must be >= 1");
  }
  if (options.shards > 1) {
    // One FloDB is one shard; the range-partitioned facade lives a level
    // above so this cannot silently ignore the requested parallelism.
    return Status::InvalidArgument("shards > 1 requires ShardedKVStore::Open");
  }

  auto db = std::unique_ptr<FloDB>(new FloDB(options));
  if (options.enable_persistence) {
    Status s = DiskComponent::Open(options.disk, &db->disk_);
    if (!s.ok()) {
      return s;
    }
    db->global_seq_.store(db->disk_->MaxPersistedSeq() + 1, std::memory_order_relaxed);
  }

  db->mtb_.store(new MemTable(db->memtable_target_bytes_), std::memory_order_relaxed);
  if (options.enable_membuffer) {
    db->mbf_.store(db->NewMembuffer(), std::memory_order_relaxed);
  }

  if (options.enable_wal) {
    Status s = db->RecoverFromWal();
    if (!s.ok()) {
      return s;
    }
  }

  db->StartBackgroundThreads();
  *out = std::move(db);
  return Status::OK();
}

FloDB::~FloDB() {
  StopBackgroundThreads();
  if (wal_ != nullptr) {
    wal_->Sync();
    wal_->Close();
  }
  delete mbf_.load(std::memory_order_relaxed);
  delete imm_mbf_.load(std::memory_order_relaxed);
  delete mtb_.load(std::memory_order_relaxed);
  delete imm_mtb_.load(std::memory_order_relaxed);
}

Status FloDB::Write(const WriteOptions& options, WriteBatch* batch) {
  if (batch == nullptr) {
    return Status::InvalidArgument("null write batch");
  }
  if (batch->Empty()) {
    return Status::OK();
  }

  // Decode once up front; every retry round below reuses the refs.
  thread_local std::vector<BatchEntryRef> entries;
  entries.clear();
  uint64_t value_entries = 0;
  Status s = batch->ForEach([&](const Slice& key, const Slice& value, ValueType type) {
    entries.push_back(BatchEntryRef{key, value, type});
    if (type == ValueType::kValue) {
      ++value_entries;
    }
  });
  if (!s.ok()) {
    return s;
  }

  // One WAL record for the whole batch — the group-commit amortization,
  // and the unit of all-or-nothing crash recovery.
  if (options_.enable_wal) {
    std::lock_guard<std::mutex> lock(wal_mu_);
    s = wal_->AddBatch(static_cast<uint32_t>(batch->Count()), Slice(batch->rep()));
    if (s.ok() && options.sync) {
      s = wal_->Sync();
    }
    if (!s.ok()) {
      return s;
    }
    if (options.fill_stats) {
      // Gated like the other batch counters so the amortization ratio
      // (batch_entries / wal_batch_records) stays coherent when a caller
      // suppresses stats.
      wal_batch_records_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  if (options.fill_stats) {
    batch_writes_.fetch_add(1, std::memory_order_relaxed);
    batch_entries_.fetch_add(entries.size(), std::memory_order_relaxed);
    puts_.fetch_add(value_entries, std::memory_order_relaxed);
    deletes_.fetch_add(entries.size() - value_entries, std::memory_order_relaxed);
  }

  // Algorithm 2 (Put), generalized to a batch. Every wait happens OUTSIDE
  // the RCU read section so the background threads' grace periods always
  // terminate; each round runs a SINGLE read-side section covering the
  // Membuffer pass and the Memtable multi-insert of whatever spilled.
  thread_local std::vector<uint32_t> pending;
  thread_local std::vector<uint32_t> spill;
  thread_local std::vector<ConcurrentSkipList::BatchEntry> memtable_batch;
  pending.resize(entries.size());
  for (uint32_t i = 0; i < entries.size(); ++i) {
    pending[i] = i;
  }

  while (true) {
    rcu_.ReadLock();

    spill.clear();
    if (options_.enable_membuffer) {
      MemBuffer* mbf = mbf_.load(std::memory_order_seq_cst);
      for (uint32_t index : pending) {
        const BatchEntryRef& e = entries[index];
        if (mbf->Add(e.key, e.value, e.type) == MemBuffer::AddResult::kFull) {
          spill.push_back(index);
        }
      }
      membuffer_adds_.fetch_add(pending.size() - spill.size(), std::memory_order_relaxed);
    } else {
      spill.assign(pending.begin(), pending.end());
    }

    if (spill.empty()) {
      rcu_.ReadUnlock();
      return Status::OK();
    }

    if (pause_writers_.load(std::memory_order_seq_cst)) {
      rcu_.ReadUnlock();
      // A scan is draining the (old) Membuffer: help, or wait (Alg. 2
      // lines 12-16). Only the still-unapplied entries are retried.
      pending.swap(spill);
      if (!HelpDrainImmMembuffer()) {
        std::this_thread::yield();
      }
      continue;
    }

    MemTable* mtb = mtb_.load(std::memory_order_seq_cst);
    if (mtb->OverTarget()) {
      rcu_.ReadUnlock();
      // Wait for the persist thread to install a fresh Memtable (Alg. 2
      // lines 17-18) — "typically a very short wait".
      pending.swap(spill);
      TriggerPersist();
      std::this_thread::yield();
      continue;
    }

    // Commit the spilled remainder under ONE contiguous seq range,
    // assigned in batch order so last-write-wins holds for duplicate
    // keys inside the batch.
    const uint64_t base = global_seq_.fetch_add(spill.size(), std::memory_order_acq_rel);
    memtable_batch.clear();
    for (size_t j = 0; j < spill.size(); ++j) {
      const BatchEntryRef& e = entries[spill[j]];
      memtable_batch.push_back(
          ConcurrentSkipList::BatchEntry{e.key, e.value, e.type, base + j});
    }
    if (options_.use_multi_insert && memtable_batch.size() > 1) {
      std::sort(memtable_batch.begin(), memtable_batch.end(),
                [](const ConcurrentSkipList::BatchEntry& a,
                   const ConcurrentSkipList::BatchEntry& b) {
                  const int c = a.key.compare(b.key);
                  return c != 0 ? c < 0 : a.seq < b.seq;
                });
      mtb->MultiAdd(memtable_batch);
    } else {
      for (const ConcurrentSkipList::BatchEntry& e : memtable_batch) {
        mtb->Add(e.key, e.value, e.seq, e.type);
      }
    }
    memtable_direct_adds_.fetch_add(memtable_batch.size(), std::memory_order_relaxed);
    const bool now_full = mtb->OverTarget();
    rcu_.ReadUnlock();
    if (now_full) {
      TriggerPersist();
    }
    return Status::OK();
  }
}

Status FloDB::Get(const ReadOptions& options, const Slice& key, std::string* value) {
  if (options.fill_stats) {
    gets_.fetch_add(1, std::memory_order_relaxed);
  }
  RcuReadGuard guard(rcu_);

  // Freshest-first order: MBF, IMM_MBF, MTB, IMM_MTB, DISK (Algorithm 2).
  ValueType type;
  for (MemBuffer* buffer : {mbf_.load(std::memory_order_seq_cst),
                            imm_mbf_.load(std::memory_order_seq_cst)}) {
    if (buffer != nullptr && buffer->Get(key, value, &type)) {
      return type == ValueType::kTombstone ? Status::NotFound() : Status::OK();
    }
  }
  uint64_t seq;
  for (MemTable* table : {mtb_.load(std::memory_order_seq_cst),
                          imm_mtb_.load(std::memory_order_seq_cst)}) {
    if (table != nullptr && table->Get(key, value, &seq, &type)) {
      return type == ValueType::kTombstone ? Status::NotFound() : Status::OK();
    }
  }
  if (disk_ != nullptr) {
    Status s = disk_->Get(key, value, &seq, &type);
    if (s.ok()) {
      return type == ValueType::kTombstone ? Status::NotFound() : Status::OK();
    }
    if (!s.IsNotFound()) {
      return s;
    }
  }
  return Status::NotFound();
}

Status FloDB::FlushAll() {
  // 1. Move everything from the Membuffer into the Memtable.
  if (options_.enable_membuffer) {
    std::lock_guard<std::mutex> master(master_mu_);
    pause_draining_.store(true, std::memory_order_seq_cst);
    pause_writers_.store(true, std::memory_order_seq_cst);
    MemBuffer* old = SwapAndDrainMembufferLocked();
    pause_writers_.store(false, std::memory_order_seq_cst);
    pause_draining_.store(false, std::memory_order_seq_cst);
    CleanupImmMembuffer(old);
  }

  // 2. Persist Memtables until memory is empty.
  while (true) {
    bool empty;
    {
      RcuReadGuard guard(rcu_);
      MemTable* mtb = mtb_.load(std::memory_order_seq_cst);
      empty = (mtb->Count() == 0) && (imm_mtb_.load(std::memory_order_seq_cst) == nullptr);
    }
    if (empty) {
      break;
    }
    force_persist_.store(true, std::memory_order_seq_cst);
    TriggerPersist();
    std::unique_lock<std::mutex> lock(persist_mu_);
    persist_done_cv_.wait_for(lock, std::chrono::milliseconds(10));
  }
  force_persist_.store(false, std::memory_order_seq_cst);

  if (disk_ != nullptr) {
    disk_->WaitForCompactions();
  }
  return Status::OK();
}

size_t FloDB::MembufferLiveEntries() const {
  RcuReadGuard guard(const_cast<Rcu&>(rcu_));
  size_t total = 0;
  MemBuffer* mbf = mbf_.load(std::memory_order_seq_cst);
  if (mbf != nullptr) {
    total += mbf->LiveEntries();
  }
  MemBuffer* imm = imm_mbf_.load(std::memory_order_seq_cst);
  if (imm != nullptr) {
    total += imm->LiveEntries();
  }
  return total;
}

size_t FloDB::MemtableBytes() const {
  RcuReadGuard guard(const_cast<Rcu&>(rcu_));
  return mtb_.load(std::memory_order_seq_cst)->ApproximateBytes();
}

void FloDB::WaitUntilDrained() {
  while (MembufferLiveEntries() > 0 && !stop_.load(std::memory_order_relaxed)) {
    std::this_thread::yield();
  }
}

StoreStats FloDB::GetStats() const {
  StoreStats stats;
  stats.puts = puts_.load(std::memory_order_relaxed);
  stats.gets = gets_.load(std::memory_order_relaxed);
  stats.deletes = deletes_.load(std::memory_order_relaxed);
  stats.scans = scans_.load(std::memory_order_relaxed);
  stats.batch_writes = batch_writes_.load(std::memory_order_relaxed);
  stats.batch_entries = batch_entries_.load(std::memory_order_relaxed);
  stats.wal_batch_records = wal_batch_records_.load(std::memory_order_relaxed);
  stats.iterator_scans = iterator_scans_.load(std::memory_order_relaxed);
  stats.membuffer_adds = membuffer_adds_.load(std::memory_order_relaxed);
  stats.memtable_direct_adds = memtable_direct_adds_.load(std::memory_order_relaxed);
  stats.drained_entries = drained_entries_.load(std::memory_order_relaxed);
  stats.scan_restarts = scan_restarts_.load(std::memory_order_relaxed);
  stats.fallback_scans = fallback_scans_.load(std::memory_order_relaxed);
  stats.master_scans = master_scans_.load(std::memory_order_relaxed);
  stats.piggyback_scans = piggyback_scans_.load(std::memory_order_relaxed);
  stats.membuffer_rotations = membuffer_rotations_.load(std::memory_order_relaxed);
  if (disk_ != nullptr) {
    stats.disk = disk_->GetStats();
  }
  return stats;
}

}  // namespace flodb
