// FloDB user-facing operations: Open/close, Get, batch Write (Algorithm 2
// generalized to WriteBatch group commit), FlushAll and stats. Background
// machinery lives in flodb_background.cc; the scan protocol and the
// streaming iterator in flodb_scan.cc.

#include "flodb/core/flodb.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <thread>

#include "flodb/core/memtable_iterator.h"

namespace flodb {

namespace {

constexpr size_t kMinMemtableTarget = 64u << 10;

size_t ComputeMemtableTarget(const FloDbOptions& options) {
  double fraction = options.enable_membuffer ? (1.0 - options.membuffer_fraction) : 1.0;
  if (fraction < 0.05) {
    fraction = 0.05;
  }
  auto target = static_cast<size_t>(static_cast<double>(options.memory_budget_bytes) * fraction);
  return target < kMinMemtableTarget ? kMinMemtableTarget : target;
}

}  // namespace

FloDB::FloDB(const FloDbOptions& options)
    : options_(options), memtable_target_bytes_(ComputeMemtableTarget(options)) {}

MemBuffer* FloDB::NewMembuffer() const {
  MemBuffer::Options mo;
  mo.capacity_bytes =
      static_cast<size_t>(static_cast<double>(options_.memory_budget_bytes) *
                          options_.membuffer_fraction);
  if (mo.capacity_bytes < (64u << 10)) {
    mo.capacity_bytes = 64u << 10;
  }
  mo.partition_bits = options_.membuffer_partition_bits;
  mo.avg_entry_bytes_hint = options_.membuffer_avg_entry_hint;
  mo.dead_pointer_fn = MakeDeadPointerFn();
  return new MemBuffer(mo);
}

MemTable* FloDB::NewMemTable() const {
  return new MemTable(memtable_target_bytes_, MakeDeadPointerFn());
}

DeadPointerFn FloDB::MakeDeadPointerFn() const {
  if (disk_ == nullptr || !disk_->SeparationEnabled()) {
    return {};
  }
  // Hot-key overwrites replace a pointer entry in place in the memory
  // component; the dead vlog record's bytes would otherwise never be
  // charged to garbage accounting (only flush/compaction dedup charge)
  // and the GC picker could not see them. The disk component outlives
  // every memory structure (destroyed last in ~FloDB), so the raw
  // capture is safe.
  return [disk = disk_.get()](const Slice& pointer_value) {
    disk->ReportVlogGarbage(pointer_value);
  };
}

Status FloDB::Open(const FloDbOptions& options, std::unique_ptr<FloDB>* out) {
  if (options.enable_persistence &&
      (options.disk.env == nullptr || options.disk.path.empty())) {
    return Status::InvalidArgument("persistence requires disk.env and disk.path");
  }
  if (options.enable_wal && !options.enable_persistence) {
    return Status::InvalidArgument("WAL requires persistence");
  }
  if (options.membuffer_fraction <= 0.0 || options.membuffer_fraction >= 1.0) {
    return Status::InvalidArgument("membuffer_fraction must be in (0, 1)");
  }
  if (options.memory_budget_bytes == 0) {
    return Status::InvalidArgument("memory_budget_bytes must be positive");
  }
  if (options.drain_threads < 0) {
    // 0 is allowed and clamped to one thread by StartBackgroundThreads;
    // a negative count is a configuration error.
    return Status::InvalidArgument("drain_threads must not be negative");
  }
  if (options.shards < 1) {
    return Status::InvalidArgument("shards must be >= 1");
  }
  if (options.shards > 1) {
    // One FloDB is one shard; the range-partitioned facade lives a level
    // above so this cannot silently ignore the requested parallelism.
    return Status::InvalidArgument("shards > 1 requires ShardedKVStore::Open");
  }
  if (!options.enable_persistence && options.disk.value_separation_threshold > 0) {
    return Status::InvalidArgument("value separation requires persistence");
  }

  auto db = std::unique_ptr<FloDB>(new FloDB(options));
  if (options.enable_persistence) {
    Status s = DiskComponent::Open(options.disk, &db->disk_);
    if (!s.ok()) {
      return s;
    }
    db->global_seq_.store(db->disk_->MaxPersistedSeq() + 1, std::memory_order_relaxed);
  }

  db->mtb_.store(db->NewMemTable(), std::memory_order_relaxed);
  if (options.enable_membuffer) {
    db->mbf_.store(db->NewMembuffer(), std::memory_order_relaxed);
  }

  if (options.enable_wal) {
    Status s = db->RecoverFromWal();
    if (!s.ok()) {
      return s;
    }
  }

  db->StartBackgroundThreads();
  *out = std::move(db);
  return Status::OK();
}

FloDB::~FloDB() {
  StopBackgroundThreads();
  if (wal_ != nullptr) {
    if (disk_ != nullptr && disk_->SeparationEnabled()) {
      // Sync-ordering invariant: no durable WAL record may reference
      // vlog bytes that did not reach disk (docs/STORAGE.md §10).
      disk_->SyncValueLog();
    }
    wal_->Sync();
    wal_->Close();
  }
  delete mbf_.load(std::memory_order_relaxed);
  delete imm_mbf_.load(std::memory_order_relaxed);
  delete mtb_.load(std::memory_order_relaxed);
  delete imm_mtb_.load(std::memory_order_relaxed);
}

void FloDB::WaitForMemtableHeadroom() {
  // Memtable backpressure happens HERE, before the WAL commit, while
  // this writer holds no apply token: once committed, the apply below
  // must not block (the persist thread's pre-swap drain waits on the
  // token). The hard cap is 2x the Memtable target — the soft
  // OverTarget threshold keeps triggering persists early, and during a
  // persist outage writes stall at the cap instead of growing memory
  // without bound.
  while (true) {
    size_t memtable_bytes;
    {
      RcuReadGuard guard(rcu_);
      memtable_bytes = mtb_.load(std::memory_order_seq_cst)->ApproximateBytes();
    }
    if (memtable_bytes < 2 * memtable_target_bytes_) {
      break;
    }
    TriggerPersist();
    // Timed wait, not a spin: during a persist outage (AddRun retrying
    // on backoff) stalled writers would otherwise peg their cores.
    MutexLock lock(persist_mu_);
    persist_done_cv_.WaitFor(persist_mu_, std::chrono::milliseconds(1));
  }
}

Status FloDB::SeparateLargeValues(WriteBatch* batch, WriteBatch* shadow,
                                  std::vector<uint64_t>* pins, WriteBatch** commit) {
  *commit = batch;
  const int64_t threshold = options_.disk.value_separation_threshold;

  // First pass: most batches carry no large value, and then the original
  // rep commits untouched (and byte-identical to a separation-free build).
  bool any = false;
  Status s = batch->ForEach([&](const Slice&, const Slice& value, ValueType type) {
    any = any ||
          (type == ValueType::kValue && static_cast<int64_t>(value.size()) >= threshold);
  });
  if (!s.ok() || !any) {
    return s;
  }

  // Second pass: rebuild with pointers in place of the large values. The
  // appends happen BEFORE the WAL commit; the group leader syncs the vlog
  // ahead of the WAL so a durable record never references lost bytes. A
  // crash between here and the commit only strands garbage records in the
  // vlog (reclaimed by GC), never a dangling pointer.
  //
  // The per-entry append error is tracked separately from ForEach's own
  // rep-parse status: ForEach returns OK for a well-formed rep even when
  // the lambda bailed early, and letting it overwrite the append error
  // would commit a truncated shadow batch — silently dropping the failed
  // entry and everything after it.
  Status append_error;
  s = batch->ForEach([&](const Slice& key, const Slice& value, ValueType type) {
    if (!append_error.ok()) {
      return;
    }
    if (type == ValueType::kValue && static_cast<int64_t>(value.size()) >= threshold) {
      std::string pointer;
      uint64_t pinned = 0;
      Status as = disk_->AppendToValueLog(key, value, &pointer, &pinned);
      if (!as.ok()) {
        append_error = as;
        return;
      }
      if (std::find(pins->begin(), pins->end(), pinned) == pins->end()) {
        pins->push_back(pinned);
      }
      shadow->PutPointer(key, Slice(pointer));
    } else if (type == ValueType::kTombstone) {
      shadow->Delete(key);
    } else if (type == ValueType::kValuePointer) {
      shadow->PutPointer(key, value);
    } else {
      shadow->Put(key, value);
    }
  });
  if (!s.ok()) {
    return s;
  }
  if (!append_error.ok()) {
    return append_error;
  }
  *commit = shadow;
  return Status::OK();
}

Status FloDB::Write(const WriteOptions& options, WriteBatch* batch) {
  if (batch == nullptr) {
    return Status::InvalidArgument("null write batch");
  }
  if (batch->Empty()) {
    return Status::OK();
  }

  // Value separation: rewrite qualifying values as vlog pointers first,
  // holding a pin on the touched vlog files until the batch lands in the
  // memory component (or fails for good) so GC cannot retire them while
  // the only reference is on this stack.
  WriteBatch shadow;
  std::vector<uint64_t> vlog_pins;
  WriteBatch* commit = batch;
  struct PinRelease {
    FloDB* db;
    std::vector<uint64_t>* pins;
    ~PinRelease() {
      for (uint64_t file : *pins) {
        db->disk_->UnpinVlogFile(file);
      }
    }
  } pin_release{this, &vlog_pins};
  if (disk_ != nullptr && disk_->SeparationEnabled()) {
    Status s = SeparateLargeValues(batch, &shadow, &vlog_pins, &commit);
    if (!s.ok()) {
      return s;
    }
  }

  // One WAL record for the whole batch — the group-commit amortization,
  // and the unit of all-or-nothing crash recovery. WalCommit runs the
  // writer queue: one leader appends every queued record and one Sync
  // covers all the group's sync writers (DESIGN.md §10). On success this
  // writer holds an apply token that the persist thread's pre-swap drain
  // waits on; ApplyBatchToMemory releases it on every path out.
  int token_slot = -1;
  if (options_.enable_wal) {
    // Validate the rep BEFORE logging it: a malformed batch must fail
    // here, not poison the WAL for the next recovery.
    Status s = commit->ForEach([](const Slice&, const Slice&, ValueType) {});
    if (!s.ok()) {
      return s;
    }
    WaitForMemtableHeadroom();
    s = WalCommit(options, commit, &token_slot);
    if (!s.ok()) {
      // This write failed for good; kick the repair path so FUTURE writes
      // can succeed even in configurations without drain threads (the
      // usual healer) — e.g. enable_membuffer = false.
      TryReopenWal();
      return s;
    }
  }
  return ApplyBatchToMemory(options, commit, token_slot);
}

Status FloDB::PrepareBatch(const WriteOptions& options, WriteBatch* batch, uint64_t txn_id,
                           const Slice& participants, int* token_slot) {
  *token_slot = -1;
  if (batch == nullptr || batch->Empty()) {
    return Status::InvalidArgument("cross-shard prepare requires a non-empty batch");
  }
  if (!options_.enable_wal) {
    return Status::InvalidArgument("cross-shard prepare requires enable_wal");
  }
  Status v = batch->ForEach([](const Slice&, const Slice&, ValueType) {});
  if (!v.ok()) {
    return v;
  }
  WaitForMemtableHeadroom();
  Status s = WalCommit(options, batch, token_slot, txn_id, participants);
  if (!s.ok()) {
    TryReopenWal();
  }
  return s;
}

Status FloDB::ApplyPreparedBatch(const WriteOptions& options, WriteBatch* batch,
                                 int token_slot) {
  return ApplyBatchToMemory(options, batch, token_slot);
}

void FloDB::AbandonPrepare(int token_slot) {
  if (token_slot >= 0) {
    inflight_wal_applies_[token_slot].fetch_sub(1, std::memory_order_release);
  }
}

Status FloDB::ApplyBatchToMemory(const WriteOptions& options, WriteBatch* batch,
                                 int token_slot) {
  struct ApplyTokenRelease {
    FloDB* db;
    int slot;
    ~ApplyTokenRelease() {
      if (slot >= 0) {
        db->inflight_wal_applies_[slot].fetch_sub(1, std::memory_order_release);
      }
    }
  } token_release{this, token_slot};

  // Decode once up front; every retry round below reuses the refs.
  thread_local std::vector<BatchEntryRef> entries;
  entries.clear();
  uint64_t value_entries = 0;
  Status s = batch->ForEach([&](const Slice& key, const Slice& value, ValueType type) {
    entries.push_back(BatchEntryRef{key, value, type});
    if (type == ValueType::kValue) {
      ++value_entries;
    }
  });
  if (!s.ok()) {
    return s;
  }

  if (options.fill_stats) {
    batch_writes_.fetch_add(1, std::memory_order_relaxed);
    batch_entries_.fetch_add(entries.size(), std::memory_order_relaxed);
    puts_.fetch_add(value_entries, std::memory_order_relaxed);
    deletes_.fetch_add(entries.size() - value_entries, std::memory_order_relaxed);
  }

  // Algorithm 2 (Put), generalized to a batch. Every wait happens OUTSIDE
  // the RCU read section so the background threads' grace periods always
  // terminate; each round runs a SINGLE read-side section covering the
  // Membuffer pass and the Memtable multi-insert of whatever spilled.
  thread_local std::vector<uint32_t> pending;
  thread_local std::vector<uint32_t> spill;
  thread_local std::vector<ConcurrentSkipList::BatchEntry> memtable_batch;
  pending.resize(entries.size());
  for (uint32_t i = 0; i < entries.size(); ++i) {
    pending[i] = i;
  }

  while (true) {
    rcu_.ReadLock();

    spill.clear();
    if (options_.enable_membuffer) {
      MemBuffer* mbf = mbf_.load(std::memory_order_seq_cst);
      for (uint32_t index : pending) {
        const BatchEntryRef& e = entries[index];
        if (mbf->Add(e.key, e.value, e.type) == MemBuffer::AddResult::kFull) {
          spill.push_back(index);
        }
      }
      membuffer_adds_.fetch_add(pending.size() - spill.size(), std::memory_order_relaxed);
    } else {
      spill.assign(pending.begin(), pending.end());
    }

    if (spill.empty()) {
      rcu_.ReadUnlock();
      return Status::OK();
    }

    if (pause_writers_.load(std::memory_order_seq_cst)) {
      rcu_.ReadUnlock();
      // A scan is draining the (old) Membuffer: help, or wait (Alg. 2
      // lines 12-16). Only the still-unapplied entries are retried.
      pending.swap(spill);
      if (!HelpDrainImmMembuffer()) {
        std::this_thread::yield();
      }
      continue;
    }

    MemTable* mtb = mtb_.load(std::memory_order_seq_cst);
    if (mtb->OverTarget() && token_slot < 0) {
      // Wait for the persist thread to install a fresh Memtable (Alg. 2
      // lines 17-18) — "typically a very short wait". A writer holding a
      // WAL apply token is exempt: the persist thread's pre-swap drain
      // waits for its token, so blocking here would deadlock the pair.
      // The overfill is bounded by one batch per concurrent writer, and
      // the persist it triggers below reclaims it promptly.
      rcu_.ReadUnlock();
      pending.swap(spill);
      TriggerPersist();
      std::this_thread::yield();
      continue;
    }

    // Commit the spilled remainder under ONE contiguous seq range,
    // assigned in batch order so last-write-wins holds for duplicate
    // keys inside the batch.
    const uint64_t base = global_seq_.fetch_add(spill.size(), std::memory_order_acq_rel);
    memtable_batch.clear();
    for (size_t j = 0; j < spill.size(); ++j) {
      const BatchEntryRef& e = entries[spill[j]];
      memtable_batch.push_back(
          ConcurrentSkipList::BatchEntry{e.key, e.value, e.type, base + j});
    }
    if (options_.use_multi_insert && memtable_batch.size() > 1) {
      std::sort(memtable_batch.begin(), memtable_batch.end(),
                [](const ConcurrentSkipList::BatchEntry& a,
                   const ConcurrentSkipList::BatchEntry& b) {
                  const int c = a.key.compare(b.key);
                  return c != 0 ? c < 0 : a.seq < b.seq;
                });
      mtb->MultiAdd(memtable_batch);
    } else {
      for (const ConcurrentSkipList::BatchEntry& e : memtable_batch) {
        mtb->Add(e.key, e.value, e.seq, e.type);
      }
    }
    memtable_direct_adds_.fetch_add(memtable_batch.size(), std::memory_order_relaxed);
    const bool now_full = mtb->OverTarget();
    rcu_.ReadUnlock();
    if (now_full) {
      TriggerPersist();
    }
    return Status::OK();
  }
}

// The group-commit fsync pipeline (DESIGN.md §10), in the LevelDB
// writer-queue mold. Every Write queues a WalWaiter; the queue's front is
// the LEADER. The leader appends the batch record of every queued writer
// (just its own when sync_coalesce is off), issues at most ONE Sync —
// covering every sync writer in the group — then marks the whole group
// done and hands leadership to the next queued writer. Concurrent sync
// writers therefore share one fsync instead of serializing one each,
// while followers never touch the file at all.
Status FloDB::WalCommit(const WriteOptions& options, WriteBatch* batch, int* token_slot,
                        uint64_t txn_id, const Slice& participants) {
  WalWaiter me;
  me.rep = Slice(batch->rep());
  me.count = static_cast<uint32_t>(batch->Count());
  me.sync = options.sync;
  me.fill_stats = options.fill_stats;
  if (txn_id != 0) {
    // Cross-shard prepare: the record carries the txn header, and it is
    // ALWAYS fsync'd regardless of options.sync — the router's commit
    // marker implies every participant's prepare is durable, so a marker
    // must never reach disk ahead of this record.
    me.prepare = true;
    me.txn_id = txn_id;
    me.participants = participants;
    me.sync = true;
  }

  // Explicit lock()/unlock() pairing (not MutexLock): the leader drops
  // wal_mu_ mid-scope for the Append+Sync phase, and the analysis checks
  // the manual pairing on every branch.
  wal_mu_.lock();
  wal_queue_.push_back(&me);
  while (!me.done && wal_queue_.front() != &me) {
    wal_cv_.Wait(wal_mu_);
  }
  if (me.done) {
    // A leader committed this batch as part of its group. `me` is ours
    // alone again (the leader erased it from the queue before setting
    // done under wal_mu_), so its fields are safe to read unlocked.
    wal_mu_.unlock();
    *token_slot = me.token_slot;
    return me.status;
  }

  // Leader: snapshot the group. With coalescing off, take only this
  // writer — that is exactly the pre-group-commit per-writer-fsync
  // behavior (still serialized by queue order).
  const size_t group_size = options_.sync_coalesce ? wal_queue_.size() : 1;
  std::vector<WalWaiter*> group(wal_queue_.begin(),
                                wal_queue_.begin() + static_cast<ptrdiff_t>(group_size));

  // A broken WAL (failed rotation, or an earlier append/sync failure)
  // fails the whole group: appending to a closed or half-written log
  // would fake durability. Repair happens on the next drain cycle.
  Status broken = wal_status_;
  if (broken.ok() && wal_ == nullptr) {
    broken = Status::IOError("WAL is not open");
  }

  size_t appended = 0;
  bool group_has_sync = false;
  Status append_error;
  Status sync_error;
  if (broken.ok()) {
    // IO happens WITHOUT wal_mu_ — followers must be able to enqueue
    // behind a slow fsync, or no group larger than one would ever form.
    // wal_leader_busy_ keeps rotation/repair from swapping the log out
    // from under us; the queue front keeps new arrivals followers.
    WalWriter* wal = wal_.get();
    wal_leader_busy_ = true;
    wal_mu_.unlock();
    for (WalWaiter* w : group) {
      Status s = w->prepare ? wal->AddPrepare(w->txn_id, w->participants, w->count, w->rep)
                            : wal->AddBatch(w->count, w->rep);
      if (!s.ok()) {
        append_error = s;
        break;
      }
      ++appended;
      group_has_sync = group_has_sync || w->sync;
    }
    if (appended > 0 && group_has_sync) {
      // Value-log-before-WAL sync order (docs/STORAGE.md §10): records in
      // this group may hold pointers into vlog bytes still in the OS page
      // cache; the pointers must never outlive their targets across a
      // power cut, so the vlog reaches disk first. No-op when the vlog
      // has no unsynced appends.
      if (disk_ != nullptr && disk_->SeparationEnabled()) {
        sync_error = disk_->SyncValueLog();
      }
      wal_syncs_.fetch_add(1, std::memory_order_relaxed);
      if (sync_error.ok()) {
        sync_error = wal->Sync();
      }
    }
    wal_mu_.lock();
    wal_leader_busy_ = false;
  }
  if (!append_error.ok() || !sync_error.ok()) {
    // Unknown tail state: stop accepting writes until the next drain
    // cycle retires this log and opens a fresh one (TryReopenWal).
    wal_status_ = append_error.ok() ? sync_error : append_error;
    wal_broken_.store(true, std::memory_order_release);
  }

  // Commit results. A writer's record is durable-ordered once appended
  // (and synced, if it asked): those take an apply token in the current
  // epoch's slot — under wal_mu_, so a concurrent rotation either sees
  // the token or has already moved the epoch past us. Sync writers whose
  // fsync failed get the error and do NOT apply; their record may still
  // replay after a crash, which is the usual contract for unacknowledged
  // writes.
  const int slot = static_cast<int>(wal_epoch_ & 1);
  uint64_t committed = 0;
  for (size_t i = 0; i < group.size(); ++i) {
    WalWaiter* w = group[i];
    if (!broken.ok()) {
      w->status = broken;
    } else if (i >= appended) {
      w->status = append_error;
    } else if (w->sync && !sync_error.ok()) {
      w->status = sync_error;
    } else {
      w->status = Status::OK();
      w->token_slot = slot;
      ++committed;
      inflight_wal_applies_[slot].fetch_add(1, std::memory_order_relaxed);
      if (w->fill_stats) {
        // Gated like the other batch counters so the amortization ratio
        // (batch_entries / wal_batch_records) stays coherent when a
        // caller suppresses stats. Prepares count separately: they are
        // transaction machinery, not user batch records.
        (w->prepare ? txn_prepares_ : wal_batch_records_)
            .fetch_add(1, std::memory_order_relaxed);
      }
    }
    w->done = true;
  }
  if (committed > 0) {
    // Only committed writers count: an amortization ratio inflated by
    // failed groups would read as great coalescing during an outage.
    group_commit_groups_.fetch_add(1, std::memory_order_relaxed);
    group_commit_writers_.fetch_add(committed, std::memory_order_relaxed);
  }
  wal_queue_.erase(wal_queue_.begin(), wal_queue_.begin() + static_cast<ptrdiff_t>(group_size));
  wal_mu_.unlock();
  // Wake the group's followers and the next leader.
  wal_cv_.SignalAll();
  *token_slot = me.token_slot;
  return me.status;
}

Status FloDB::Get(const ReadOptions& options, const Slice& key, std::string* value) {
  if (options.fill_stats) {
    gets_.fetch_add(1, std::memory_order_relaxed);
  }

  // A hit may carry a kValuePointer: *value then holds an encoded pointer
  // into a vlog file, resolved through the disk component. Resolution can
  // lose a benign race with vlog GC — the disk Get releases its pinned
  // Version before we resolve, and GC may retire the victim file in that
  // window — so one retry re-reads the (by then rewritten) pointer. A
  // second failure is a real error and surfaces.
  for (int attempt = 0;; ++attempt) {
    ValueType type = ValueType::kValue;
    Status s;
    bool found = false;
    bool resolve_failed = false;
    {
      RcuReadGuard guard(rcu_);

      // Freshest-first order: MBF, IMM_MBF, MTB, IMM_MTB, DISK (Algorithm 2).
      for (MemBuffer* buffer : {mbf_.load(std::memory_order_seq_cst),
                                imm_mbf_.load(std::memory_order_seq_cst)}) {
        if (!found && buffer != nullptr && buffer->Get(key, value, &type)) {
          found = true;
        }
      }
      uint64_t seq;
      for (MemTable* table : {mtb_.load(std::memory_order_seq_cst),
                              imm_mtb_.load(std::memory_order_seq_cst)}) {
        if (!found && table != nullptr && table->Get(key, value, &seq, &type)) {
          found = true;
        }
      }
      if (!found && disk_ != nullptr) {
        s = disk_->Get(key, value, &seq, &type);
        if (s.ok()) {
          found = true;
        } else if (!s.IsNotFound()) {
          return s;
        }
      }
      if (!found) {
        return Status::NotFound();
      }
      if (type == ValueType::kTombstone) {
        return Status::NotFound();
      }
      if (type == ValueType::kValuePointer) {
        const std::string pointer = std::move(*value);
        s = disk_->ResolveValuePointer(Slice(pointer), value);
        resolve_failed = !s.ok();
      }
    }
    if (!resolve_failed || attempt > 0) {
      return s;
    }
  }
}

Status FloDB::FlushAll() {
  // 1. Move everything from the Membuffer into the Memtable.
  if (options_.enable_membuffer) {
    MutexLock master(master_mu_);
    pause_draining_.store(true, std::memory_order_seq_cst);
    pause_writers_.store(true, std::memory_order_seq_cst);
    MemBuffer* old = SwapAndDrainMembufferLocked();
    pause_writers_.store(false, std::memory_order_seq_cst);
    pause_draining_.store(false, std::memory_order_seq_cst);
    CleanupImmMembuffer(old);
  }

  // 2. Persist Memtables until memory is empty. Bail out on shutdown:
  // the persist thread is gone then, so the wait below would never make
  // progress (the vlog GC thread flushes through here and must not hang
  // StopBackgroundThreads).
  while (!stop_.load(std::memory_order_relaxed)) {
    bool empty;
    {
      RcuReadGuard guard(rcu_);
      MemTable* mtb = mtb_.load(std::memory_order_seq_cst);
      empty = (mtb->Count() == 0) && (imm_mtb_.load(std::memory_order_seq_cst) == nullptr);
    }
    if (empty) {
      break;
    }
    force_persist_.store(true, std::memory_order_seq_cst);
    TriggerPersist();
    MutexLock lock(persist_mu_);
    persist_done_cv_.WaitFor(persist_mu_, std::chrono::milliseconds(10));
  }
  force_persist_.store(false, std::memory_order_seq_cst);

  if (disk_ != nullptr) {
    disk_->WaitForCompactions();
  }
  return Status::OK();
}

Status FloDB::CompactRange(const Slice& begin, const Slice& end) {
  // Flush first so the whole range — including entries still in memory —
  // is subject to the compaction.
  Status s = FlushAll();
  if (!s.ok()) {
    return s;
  }
  if (disk_ == nullptr) {
    return Status::OK();
  }
  return disk_->CompactRange(begin, end);
}

Status FloDB::CompactValueLogGarbage(bool* performed, std::vector<uint64_t>* victims_out) {
  if (performed != nullptr) {
    *performed = false;
  }
  if (victims_out != nullptr) {
    victims_out->clear();
  }
  if (disk_ == nullptr || !disk_->SeparationEnabled()) {
    return Status::OK();
  }
  // One round collects EVERY file over the garbage ratio: the table
  // rewrites that relocate pointers dominate GC cost and each table
  // usually references many vlog files, so batching the victims rewrites
  // each table once instead of once per victim.
  std::vector<uint64_t> victims;
  {
    MutexLock lock(vlog_gc_mu_);
    if (!disk_->PickVlogGcVictims(&victims, &vlog_gc_quarantined_)) {
      return Status::OK();
    }
  }
  if (victims_out != nullptr) {
    *victims_out = victims;
  }
  // GC barrier discipline (docs/STORAGE.md §10): wait out write-path pins
  // on the victims, flush memory so no pointer into them hides in a
  // Memtable, then rewrite every on-disk pointer. After CompactVlogFiles
  // the victims are deregistered; the files themselves are unlinked only
  // once no pinned Version references them.
  for (uint64_t victim : victims) {
    disk_->WaitVlogUnpinned(victim);
  }
  Status s = FlushAll();
  if (!s.ok() || stop_.load(std::memory_order_relaxed)) {
    return s;
  }
  uint64_t rewrites = 0;
  s = disk_->CompactVlogFiles(victims, &rewrites);
  if (s.ok() && performed != nullptr) {
    *performed = true;
  }
  return s;
}

size_t FloDB::MembufferLiveEntries() const {
  RcuReadGuard guard(const_cast<Rcu&>(rcu_));
  size_t total = 0;
  MemBuffer* mbf = mbf_.load(std::memory_order_seq_cst);
  if (mbf != nullptr) {
    total += mbf->LiveEntries();
  }
  MemBuffer* imm = imm_mbf_.load(std::memory_order_seq_cst);
  if (imm != nullptr) {
    total += imm->LiveEntries();
  }
  return total;
}

size_t FloDB::MemtableBytes() const {
  RcuReadGuard guard(const_cast<Rcu&>(rcu_));
  return mtb_.load(std::memory_order_seq_cst)->ApproximateBytes();
}

void FloDB::WaitUntilDrained() {
  while (MembufferLiveEntries() > 0 && !stop_.load(std::memory_order_relaxed)) {
    std::this_thread::yield();
  }
}

StoreStats FloDB::GetStats() const {
  StoreStats stats;
  stats.puts = puts_.load(std::memory_order_relaxed);
  stats.gets = gets_.load(std::memory_order_relaxed);
  stats.deletes = deletes_.load(std::memory_order_relaxed);
  stats.scans = scans_.load(std::memory_order_relaxed);
  stats.batch_writes = batch_writes_.load(std::memory_order_relaxed);
  stats.batch_entries = batch_entries_.load(std::memory_order_relaxed);
  stats.wal_batch_records = wal_batch_records_.load(std::memory_order_relaxed);
  stats.iterator_scans = iterator_scans_.load(std::memory_order_relaxed);
  stats.membuffer_adds = membuffer_adds_.load(std::memory_order_relaxed);
  stats.memtable_direct_adds = memtable_direct_adds_.load(std::memory_order_relaxed);
  stats.drained_entries = drained_entries_.load(std::memory_order_relaxed);
  stats.scan_restarts = scan_restarts_.load(std::memory_order_relaxed);
  stats.fallback_scans = fallback_scans_.load(std::memory_order_relaxed);
  stats.master_scans = master_scans_.load(std::memory_order_relaxed);
  stats.piggyback_scans = piggyback_scans_.load(std::memory_order_relaxed);
  stats.membuffer_rotations = membuffer_rotations_.load(std::memory_order_relaxed);
  stats.wal_syncs = wal_syncs_.load(std::memory_order_relaxed);
  stats.group_commit_groups = group_commit_groups_.load(std::memory_order_relaxed);
  stats.group_commit_writers = group_commit_writers_.load(std::memory_order_relaxed);
  stats.persist_failures = persist_failures_.load(std::memory_order_relaxed);
  stats.txn_prepares = txn_prepares_.load(std::memory_order_relaxed);
  stats.orphaned_prepares = orphaned_prepares_.load(std::memory_order_relaxed);
  stats.vlog_gc_failures = vlog_gc_failed_rounds_.load(std::memory_order_relaxed);
  {
    MutexLock lock(vlog_gc_mu_);
    stats.vlog_gc_quarantined = vlog_gc_quarantined_.size();
  }
  if (disk_ != nullptr) {
    stats.disk = disk_->GetStats();
  }
  return stats;
}

}  // namespace flodb
