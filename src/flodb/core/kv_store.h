// KVStore: the user-facing interface implemented by FloDB and by the
// baseline stores (LevelDB-like, HyperLevelDB-like, RocksDB-like), so the
// benchmark harness drives them interchangeably.
//
// Operations mirror the paper (§2.1): Put, Get, Remove (Delete), and
// serializable range Scans.

#ifndef FLODB_CORE_KV_STORE_H_
#define FLODB_CORE_KV_STORE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "flodb/common/slice.h"
#include "flodb/common/status.h"
#include "flodb/disk/disk_component.h"

namespace flodb {

struct StoreStats {
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t deletes = 0;
  uint64_t scans = 0;

  // FloDB-specific (zero for baselines).
  uint64_t membuffer_adds = 0;      // updates completed in the Membuffer
  uint64_t memtable_direct_adds = 0;  // updates that spilled to the Memtable
  uint64_t drained_entries = 0;
  uint64_t scan_restarts = 0;
  uint64_t fallback_scans = 0;
  uint64_t master_scans = 0;
  uint64_t piggyback_scans = 0;
  uint64_t membuffer_rotations = 0;

  DiskComponent::Stats disk;
};

class KVStore {
 public:
  virtual ~KVStore() = default;

  virtual Status Put(const Slice& key, const Slice& value) = 0;
  virtual Status Delete(const Slice& key) = 0;

  // On hit fills *value and returns OK; NotFound for absent or deleted keys.
  virtual Status Get(const Slice& key, std::string* value) = 0;

  // Returns up to `limit` live entries with low_key <= key < high_key in
  // key order (limit 0 = unbounded; empty high_key = unbounded above).
  // Point-in-time semantics: see each implementation's notes.
  virtual Status Scan(const Slice& low_key, const Slice& high_key, size_t limit,
                      std::vector<std::pair<std::string, std::string>>* out) = 0;

  // Pushes all in-memory data to the disk component (if any) and waits for
  // background work to settle. Test/benchmark aid.
  virtual Status FlushAll() = 0;

  virtual StoreStats GetStats() const = 0;
  virtual std::string Name() const = 0;
};

}  // namespace flodb

#endif  // FLODB_CORE_KV_STORE_H_
