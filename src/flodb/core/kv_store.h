// KVStore: the user-facing interface implemented by FloDB and by the
// baseline stores (LevelDB-like, HyperLevelDB-like, RocksDB-like), so the
// benchmark harness drives them interchangeably.
//
// v2 surface (see DESIGN.md §2/§4 for the exact guarantees):
//
//   Write(WriteOptions, WriteBatch*)   — commits a batch of Put/Delete
//       records as one unit: one WAL record, one contiguous sequence
//       range, one pass through the memory component. Put/Delete are thin
//       one-entry-batch wrappers over it.
//   Get(ReadOptions, key, value)       — point lookup.
//   NewScanIterator(ReadOptions, l, h) — pull-based range scan that
//       streams results in bounded chunks instead of materializing the
//       whole range; ReadOptions::snapshot_mode hints the snapshot
//       protocol (FloDB: master vs. piggyback, paper §4.4).
//   Scan(ReadOptions, l, h, limit, out) — the legacy materializing scan,
//       kept as a convenience; implementations may build either entry
//       point on top of the other.

#ifndef FLODB_CORE_KV_STORE_H_
#define FLODB_CORE_KV_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "flodb/common/slice.h"
#include "flodb/common/status.h"
#include "flodb/core/write_batch.h"
#include "flodb/disk/disk_component.h"

namespace flodb {

struct StoreStats {
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t deletes = 0;
  uint64_t scans = 0;

  // Batch ingestion (group commit amortization = batch_entries /
  // batch_writes; one-entry Put/Delete wrappers count as batches of 1).
  uint64_t batch_writes = 0;      // Write() commits
  uint64_t batch_entries = 0;     // entries across those commits
  uint64_t wal_batch_records = 0; // WAL batch records appended
  uint64_t iterator_scans = 0;    // streaming iterators opened

  // Durability pipeline (DESIGN.md §10; zero for stores without a WAL).
  uint64_t wal_syncs = 0;             // fsyncs issued against the WAL
  uint64_t group_commit_groups = 0;   // leader rounds through the writer queue
  uint64_t group_commit_writers = 0;  // writers committed across those rounds
  uint64_t persist_failures = 0;      // failed Memtable->disk persist attempts

  // Cross-shard transactions (DESIGN.md §8; zero for unsharded stores and
  // in legacy per-shard mode).
  uint64_t txn_prepares = 0;          // prepare records durably logged (per shard)
  uint64_t txn_commits = 0;           // cross-shard batches fully committed
  uint64_t txn_aborts = 0;            // cross-shard batches aborted, nothing visible
  uint64_t orphaned_prepares = 0;     // prepares discarded during recovery (no marker)
  uint64_t partial_batch_writes = 0;  // legacy-mode batches that committed partially

  // FloDB-specific (zero for baselines).
  uint64_t membuffer_adds = 0;      // updates completed in the Membuffer
  uint64_t memtable_direct_adds = 0;  // updates that spilled to the Memtable
  uint64_t drained_entries = 0;
  uint64_t scan_restarts = 0;
  uint64_t fallback_scans = 0;
  uint64_t master_scans = 0;
  uint64_t piggyback_scans = 0;
  uint64_t membuffer_rotations = 0;

  // Vlog GC health (zero unless value separation is on). A non-zero
  // quarantine count means some vlog file repeatedly failed collection
  // (likely an unreadable record) and is being skipped — its space will
  // not be reclaimed until the corruption is repaired.
  uint64_t vlog_gc_failures = 0;     // failed GC rounds (cumulative)
  uint64_t vlog_gc_quarantined = 0;  // victims currently quarantined

  DiskComponent::Stats disk;
};

// Snapshot protocol hint for scans (FloDB honors it; baselines, whose
// multi-versioned scans are always snapshot reads, ignore it).
enum class SnapshotMode : uint8_t {
  kAuto,       // store picks: piggyback on a running scan, else master
  kMaster,     // force a fresh master snapshot (linearizable, pays the
               // Membuffer swap + full drain)
  kPiggyback,  // reuse any published snapshot seq (serializable, cheap);
               // falls back to master when none is available
};

struct ReadOptions {
  SnapshotMode snapshot_mode = SnapshotMode::kAuto;

  // Update the store's per-operation counters. Turn off for internal or
  // bookkeeping reads that would skew benchmark stats.
  bool fill_stats = true;

  // Entries a ScanIterator buffers per fetch. The iterator's memory use
  // is bounded by this regardless of range size (the generic chunked
  // iterator fetches one extra entry per resume as exclusive-bound
  // overlap, so its bound is chunk_size + 1). 0 = materialize the whole
  // range in one chunk (legacy Scan behavior).
  size_t scan_chunk_size = 1024;
};

struct WriteOptions {
  // Fsync the WAL before Write returns (group commit makes this
  // affordable: one fsync covers the whole batch, and with
  // FloDbOptions::sync_coalesce every concurrently queued sync writer —
  // see DESIGN.md §10). Only FloDB with enable_wal honors it: the
  // baseline stores have no WAL, so for them sync=true is an explicit
  // no-op and provides NO crash durability.
  bool sync = false;

  // Update the store's per-operation counters.
  bool fill_stats = true;
};

// Pull-based scan cursor. Usage:
//
//   auto it = store->NewScanIterator(opts, low, high);
//   for (; it->Valid(); it->Next()) use(it->key(), it->value());
//   if (!it->status().ok()) ...
//
// The iterator must not outlive the store. Results arrive in strictly
// ascending key order with tombstones elided; each buffered chunk is
// internally consistent, and consecutive chunks never move backwards in
// time (see DESIGN.md §4 for the exact snapshot guarantee).
class ScanIterator {
 public:
  virtual ~ScanIterator() = default;

  virtual bool Valid() const = 0;
  virtual void Next() = 0;

  // REQUIRES Valid(). Slices are valid until the next Next() call.
  virtual Slice key() const = 0;
  virtual Slice value() const = 0;

  // Sequence number of the version this entry carries — the seq assigned
  // when the winning update entered the Memtable (or was persisted).
  // Stores that do not track per-version seqs (the chunked baseline
  // iterator) report 0. REQUIRES Valid().
  virtual uint64_t seq() const { return 0; }

  // Non-OK when the stream terminated on an error (iteration ends early).
  virtual Status status() const = 0;

  // Largest number of entries this iterator ever held in memory at once —
  // the observable "streams without materializing" bound.
  virtual size_t MaxBufferedEntries() const = 0;
};

class KVStore {
 public:
  virtual ~KVStore() = default;

  // ---- v2 core surface ----

  // Commits `batch` (left intact, so callers may retry or reuse it).
  // Entries apply in batch order; last write wins for duplicate keys.
  virtual Status Write(const WriteOptions& options, WriteBatch* batch) = 0;

  // On hit fills *value and returns OK; NotFound for absent or deleted keys.
  virtual Status Get(const ReadOptions& options, const Slice& key, std::string* value) = 0;

  // Returns up to `limit` live entries with low_key <= key < high_key in
  // key order (limit 0 = unbounded; empty high_key = unbounded above).
  virtual Status Scan(const ReadOptions& options, const Slice& low_key, const Slice& high_key,
                      size_t limit,
                      std::vector<std::pair<std::string, std::string>>* out) = 0;

  // Streams [low_key, high_key) without materializing it. The default
  // implementation fetches bounded chunks through Scan(), resuming after
  // the last returned key; FloDB overrides it with a native iterator on
  // the master/piggyback machinery.
  virtual std::unique_ptr<ScanIterator> NewScanIterator(const ReadOptions& options,
                                                        const Slice& low_key,
                                                        const Slice& high_key);

  // ---- convenience wrappers (thin one-entry batches / default options) ----

  Status Put(const Slice& key, const Slice& value) { return Put(WriteOptions(), key, value); }
  Status Put(const WriteOptions& options, const Slice& key, const Slice& value);
  Status Delete(const Slice& key) { return Delete(WriteOptions(), key); }
  Status Delete(const WriteOptions& options, const Slice& key);
  Status Get(const Slice& key, std::string* value) { return Get(ReadOptions(), key, value); }
  Status Scan(const Slice& low_key, const Slice& high_key, size_t limit,
              std::vector<std::pair<std::string, std::string>>* out) {
    return Scan(ReadOptions(), low_key, high_key, limit, out);
  }

  // Pushes all in-memory data to the disk component (if any) and waits for
  // background work to settle. Test/benchmark aid.
  virtual Status FlushAll() = 0;

  // Synchronously compacts every persisted file overlapping
  // [begin, end] (empty Slice = open end) down to the bottommost
  // occupied level. Stores without a disk component treat this as a
  // no-op. FloDB flushes memory first so the whole range is subject to
  // the compaction; ShardedKVStore fans out to every shard.
  virtual Status CompactRange(const Slice& /*begin*/, const Slice& /*end*/) {
    return Status::OK();
  }

  virtual StoreStats GetStats() const = 0;
  virtual std::string Name() const = 0;
};

}  // namespace flodb

#endif  // FLODB_CORE_KV_STORE_H_
