// WriteBatch: an ordered collection of Put/Delete records that
// KVStore::Write commits as one unit — one WAL record, one contiguous
// sequence range, one pass through the memory component. This is the v2
// ingestion primitive that lets group commit amortize the per-operation
// costs FloDB's Membuffer→Memtable pipeline was built to absorb (§3).
//
// Entry encoding (also the body of a WAL batch record, so a batch is
// logged with zero re-encoding):
//
//   count × ( uint8 type | varint32 klen | key | varint32 vlen | value )
//
// Semantics:
//  * Entries are applied in insertion order; for duplicate keys the LAST
//    entry in the batch wins.
//  * A batch is durability-atomic: it becomes one CRC-framed WAL record,
//    so recovery replays it all-or-nothing.
//  * A batch is NOT isolation-atomic: concurrent readers may observe a
//    prefix of a batch while it is being applied (see DESIGN.md §2).
//
// A WriteBatch is reusable: Clear() keeps the allocated capacity, so hot
// paths (including the one-entry Put/Delete wrappers) pay no allocation
// after warm-up. Not thread-safe; one writer thread per batch.

#ifndef FLODB_CORE_WRITE_BATCH_H_
#define FLODB_CORE_WRITE_BATCH_H_

#include <cstdint>
#include <functional>
#include <string>

#include "flodb/common/slice.h"
#include "flodb/common/status.h"
#include "flodb/mem/entry.h"

namespace flodb {

class WriteBatch {
 public:
  WriteBatch() = default;

  // Stages an insert/update of key -> value.
  void Put(const Slice& key, const Slice& value);

  // Stages a deletion of key (a tombstone entry).
  void Delete(const Slice& key);

  // Stages a value-pointer entry: `pointer` is an encoded ValuePointer
  // into a vlog file (see disk/value_log.h). Internal to the value
  // separation write path — user code should call Put with the real value.
  void PutPointer(const Slice& key, const Slice& pointer);

  // Appends every entry of `other` after this batch's entries.
  void Append(const WriteBatch& other);

  // Drops all entries but keeps the allocated capacity.
  void Clear();

  size_t Count() const { return count_; }
  bool Empty() const { return count_ == 0; }
  size_t ApproximateBytes() const { return rep_.size(); }

  // The raw encoded entries — exactly the body of a WAL batch record.
  const std::string& rep() const { return rep_; }

  // Visits every entry in insertion order. The Slices are valid only for
  // the duration of each callback. Returns Corruption if the encoding is
  // malformed (possible only for reps restored from external bytes).
  Status ForEach(
      const std::function<void(const Slice& key, const Slice& value, ValueType type)>& fn) const;

  // Decodes an externally produced rep (e.g. a WAL batch record body) and
  // visits each entry; shared by ForEach and WAL recovery.
  static Status IterateRep(
      const Slice& rep, uint32_t expected_count,
      const std::function<void(const Slice& key, const Slice& value, ValueType type)>& fn);

 private:
  void AppendEntry(const Slice& key, const Slice& value, ValueType type);

  std::string rep_;
  uint32_t count_ = 0;
};

}  // namespace flodb

#endif  // FLODB_CORE_WRITE_BATCH_H_
