// KVStore convenience layer: one-entry-batch Put/Delete wrappers and the
// generic chunked ScanIterator that any implementation inherits.

#include "flodb/core/kv_store.h"

#include <algorithm>

namespace flodb {

namespace {

// Streams a range by fetching bounded chunks through the store's
// materializing Scan. Each fetch resumes AT the last returned key
// (inclusive, asking for one extra entry) and drops the overlap — a
// store-agnostic exclusive-bound emulation that needs no successor-key
// (k + '\0') construction. Each chunk is its own snapshot, taken at
// fetch time — serializable per chunk, never moving backwards
// (DESIGN.md §4).
class ChunkedScanIterator final : public ScanIterator {
 public:
  ChunkedScanIterator(KVStore* store, const ReadOptions& options, const Slice& low_key,
                      const Slice& high_key)
      : store_(store),
        options_(options),
        high_(high_key.ToString()),
        low_(low_key.ToString()),
        chunk_capacity_(options.scan_chunk_size) {
    // Inner fetches are bookkeeping reads; the iterator itself was the
    // user-visible operation.
    options_.fill_stats = false;
    Fetch();
  }

  bool Valid() const override { return pos_ < chunk_.size(); }

  void Next() override {
    ++pos_;
    if (pos_ >= chunk_.size() && !done_) {
      Fetch();
    }
  }

  Slice key() const override { return Slice(chunk_[pos_].first); }
  Slice value() const override { return Slice(chunk_[pos_].second); }
  Status status() const override { return status_; }
  size_t MaxBufferedEntries() const override { return max_buffered_; }

 private:
  void Fetch() {
    chunk_.clear();
    pos_ = 0;
    if (done_) {
      return;
    }
    // +1 entry when resuming: the inclusive low bound re-fetches the last
    // emitted key (unless it was deleted meanwhile), which we drop below.
    const size_t want =
        chunk_capacity_ == 0 ? 0 : chunk_capacity_ + (has_resume_ ? 1 : 0);
    status_ = store_->Scan(options_, Slice(has_resume_ ? resume_key_ : low_), Slice(high_),
                           want, &chunk_);
    if (!status_.ok()) {
      chunk_.clear();
      done_ = true;
      return;
    }
    max_buffered_ = std::max(max_buffered_, chunk_.size());
    if (has_resume_ && !chunk_.empty() && chunk_.front().first == resume_key_) {
      chunk_.erase(chunk_.begin());
    }
    if (chunk_capacity_ == 0) {
      done_ = true;  // whole-range mode: one materializing fetch
    } else if (chunk_.size() > chunk_capacity_) {
      chunk_.resize(chunk_capacity_);  // resume key was deleted: trim the extra
    } else if (chunk_.size() < chunk_capacity_) {
      done_ = true;  // range exhausted
    }
    if (!chunk_.empty()) {
      resume_key_ = chunk_.back().first;
      has_resume_ = true;
    }
  }

  KVStore* const store_;
  ReadOptions options_;
  const std::string high_;
  const std::string low_;
  std::string resume_key_;
  bool has_resume_ = false;
  const size_t chunk_capacity_;

  std::vector<std::pair<std::string, std::string>> chunk_;
  size_t pos_ = 0;
  size_t max_buffered_ = 0;
  bool done_ = false;
  Status status_;
};

}  // namespace

std::unique_ptr<ScanIterator> KVStore::NewScanIterator(const ReadOptions& options,
                                                       const Slice& low_key,
                                                       const Slice& high_key) {
  return std::make_unique<ChunkedScanIterator>(this, options, low_key, high_key);
}

Status KVStore::Put(const WriteOptions& options, const Slice& key, const Slice& value) {
  // Reused per thread so the hot single-put path stays allocation-free
  // after warm-up.
  thread_local WriteBatch batch;
  batch.Clear();
  batch.Put(key, value);
  return Write(options, &batch);
}

Status KVStore::Delete(const WriteOptions& options, const Slice& key) {
  thread_local WriteBatch batch;
  batch.Clear();
  batch.Delete(key);
  return Write(options, &batch);
}

}  // namespace flodb
