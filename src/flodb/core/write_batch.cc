#include "flodb/core/write_batch.h"

#include "flodb/common/coding.h"

namespace flodb {

void WriteBatch::AppendEntry(const Slice& key, const Slice& value, ValueType type) {
  rep_.push_back(static_cast<char>(type));
  PutLengthPrefixedSlice(&rep_, key);
  PutLengthPrefixedSlice(&rep_, value);
  ++count_;
}

void WriteBatch::Put(const Slice& key, const Slice& value) {
  AppendEntry(key, value, ValueType::kValue);
}

void WriteBatch::Delete(const Slice& key) { AppendEntry(key, Slice(), ValueType::kTombstone); }

void WriteBatch::PutPointer(const Slice& key, const Slice& pointer) {
  AppendEntry(key, pointer, ValueType::kValuePointer);
}

void WriteBatch::Append(const WriteBatch& other) {
  rep_.append(other.rep_);
  count_ += other.count_;
}

void WriteBatch::Clear() {
  rep_.clear();
  count_ = 0;
}

Status WriteBatch::ForEach(
    const std::function<void(const Slice& key, const Slice& value, ValueType type)>& fn) const {
  return IterateRep(Slice(rep_), count_, fn);
}

Status WriteBatch::IterateRep(
    const Slice& rep, uint32_t expected_count,
    const std::function<void(const Slice& key, const Slice& value, ValueType type)>& fn) {
  Slice in = rep;
  uint32_t seen = 0;
  while (!in.empty()) {
    const auto type = static_cast<ValueType>(in[0]);
    if (type != ValueType::kValue && type != ValueType::kTombstone &&
        type != ValueType::kValuePointer) {
      return Status::Corruption("bad entry type in write batch");
    }
    in.remove_prefix(1);
    Slice key, value;
    if (!GetLengthPrefixedSlice(&in, &key) || !GetLengthPrefixedSlice(&in, &value)) {
      return Status::Corruption("malformed write batch entry");
    }
    fn(key, value, type);
    ++seen;
  }
  if (seen != expected_count) {
    return Status::Corruption("write batch count mismatch");
  }
  return Status::OK();
}

}  // namespace flodb
