// FloDbOptions: tuning knobs of the two-tier memory component.
//
// Defaults reflect the paper's configuration scaled to test size: the
// memory budget splits 1/4 Membuffer : 3/4 Memtable (§5.1), one drain
// thread, multi-insert draining, scan restart threshold with fallback.

#ifndef FLODB_CORE_OPTIONS_H_
#define FLODB_CORE_OPTIONS_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "flodb/disk/disk_component.h"

namespace flodb {

// Cross-shard transaction recovery context, wired by ShardedKVStore::Open
// into each shard's FloDB::Open before WAL replay. `committed` holds the
// txn ids with a durable commit marker in the router's txn log; a prepare
// record replays iff its id is in this set, otherwise it is an orphan.
// Shards report the highest txn id seen (committed or not) back through
// `max_txn_id_seen` so the router can restart its id counter past every
// id ever issued. Owned by the router; shards only borrow it during Open.
struct CrossShardTxnRecovery {
  std::vector<uint64_t> committed;  // sorted ascending
  uint64_t max_txn_id_seen = 0;

  bool IsCommitted(uint64_t txn_id) const {
    return std::binary_search(committed.begin(), committed.end(), txn_id);
  }
};

struct FloDbOptions {
  // Total in-memory budget (Membuffer + Memtable target).
  size_t memory_budget_bytes = 16u << 20;

  // Fraction of the budget given to the Membuffer (paper: 1/4).
  double membuffer_fraction = 0.25;

  // Disabling the Membuffer degenerates FloDB to the classic single-level
  // memory component ("No HT" variant, Figure 17).
  bool enable_membuffer = true;

  // Drain with skiplist multi-inserts (true) or one insert per entry
  // ("HT, simple insert SL" variant, Figure 17).
  bool use_multi_insert = true;

  int drain_threads = 1;
  size_t drain_batch = 64;

  // `l`: top key bits selecting the Membuffer partition (§4.3).
  int membuffer_partition_bits = 4;
  size_t membuffer_avg_entry_hint = 64;

  // Scan machinery (§4.4).
  int scan_restart_threshold = 3;
  int scan_piggyback_chain_limit = 8;

  // The paper's low-concurrency optimization: a scan that starts while NO
  // other scan is running may still reuse the previous master's sequence
  // number up to this many times, skipping the Membuffer swap + full
  // drain. Such scans are serializable (they may miss updates still
  // sitting in the Membuffer), not linearizable — exactly the piggyback
  // guarantee. 0 (default) disables reuse: every master scan establishes
  // a fresh sequence number and is linearizable w.r.t. updates.
  int scan_master_reuse_limit = 0;

  // Persist immutable Memtables to the disk component. When false they
  // are dropped after the swap — the memory-component-only mode used by
  // Figure 17.
  bool enable_persistence = true;

  // Write-ahead logging for crash durability (§2.1). Serializes log
  // appends; off by default like the paper's benchmarks.
  bool enable_wal = false;

  // Group commit for `WriteOptions::sync` (DESIGN.md §10): the writer
  // queue's leader issues ONE fsync covering every queued sync writer.
  // Off = the pre-group-commit behavior, one fsync per sync writer,
  // serialized — kept as a knob for fig_sync_write's A/B and as an
  // escape hatch. Ignored when enable_wal is false.
  bool sync_coalesce = true;

  // Range-partitioning across independent FloDB instances
  // (ShardedKVStore::Open; DESIGN.md §8). 1 (the default) is exactly
  // today's single-instance behavior. Values < 1 are rejected; a
  // non-power-of-two count rounds UP to the next power of two (the
  // requested parallelism is a floor), capped at 256. Each shard gets
  // memory_budget_bytes / shards, a subdirectory of disk.path, its own
  // WAL, and a slice of the drain/compaction thread budgets (floor of
  // one thread per shard). FloDB::Open itself only accepts shards == 1;
  // open a sharded store through ShardedKVStore::Open.
  int shards = 1;

  // Leading key bytes ignored by the shard router — for key schemas with
  // a constant prefix ("session:...") that would otherwise collapse every
  // key into one shard. 0 keeps routing order-preserving, which lets
  // range scans prune to the shards intersecting their bounds.
  size_t shard_key_prefix_skip = 0;

  // Cross-shard atomicity (DESIGN.md §8). On (the default), a WriteBatch
  // that straddles shards commits via two-phase commit: every touched
  // shard durably logs a prepare record, the router fsyncs a commit
  // marker into its txn log, and only then does the batch become visible
  // — recovery replays it all-or-nothing. Merged scans additionally open
  // all shard cursors under a router-level write fence, so a snapshot
  // never observes half of a cross-shard batch. Off restores the legacy
  // per-shard mode (independent per-shard commits, partial persistence
  // possible after a crash) for A/B comparison and as an escape hatch.
  // Single-shard batches and Put/Delete never pay the 2PC cost in either
  // mode. Only consulted by ShardedKVStore with shards > 1.
  bool cross_shard_atomic = true;

  // Internal (set by ShardedKVStore::Open, ignored otherwise): borrowed
  // pointer to the router's transaction recovery context, consulted by
  // WAL replay to decide the fate of prepare records. With no context,
  // every prepare is conservatively treated as orphaned.
  CrossShardTxnRecovery* txn_recovery = nullptr;

  DiskOptions disk;
};

}  // namespace flodb

#endif  // FLODB_CORE_OPTIONS_H_
