// ShardedKVStore: batch splitting, routed point ops, and the k-way
// merged scan over per-shard streaming iterators. See sharded_store.h
// and DESIGN.md §8 for the semantics.

#include "flodb/core/sharded_store.h"

#include <algorithm>
#include <cstdio>

#include "flodb/common/coding.h"
#include "flodb/disk/env.h"
#include "flodb/disk/merging_iterator.h"

namespace flodb {

namespace {

// The topology manifest ("<path>/SHARDING"): shard count and routing
// prefix skip, written on first open. Reopening with a different
// topology would silently strand durable data in shards the new router
// never consults, so a mismatch refuses to open.
constexpr char kShardingManifest[] = "/SHARDING";

std::string EncodeTopology(int shards, size_t prefix_skip) {
  char buf[64];
  snprintf(buf, sizeof(buf), "shards=%d prefix_skip=%zu\n", shards, prefix_skip);
  return buf;
}

Status CheckOrWriteTopology(Env* env, const std::string& base, int shards, size_t prefix_skip) {
  const std::string path = base + kShardingManifest;
  const std::string expected = EncodeTopology(shards, prefix_skip);
  std::string existing;
  if (ReadFileToString(env, path, &existing).ok()) {
    if (existing != expected) {
      return Status::InvalidArgument("sharding topology mismatch: " + base + " was created with " +
                                     existing + " but was opened with " + expected);
    }
    return Status::OK();
  }
  return WriteStringToFile(env, Slice(expected), path, /*sync=*/true);
}

// Txn-log record payload: uint8 kTxnCommitTag | varint64 txn_id, framed by
// the shared WalWriter/WalReader CRC framing (DESIGN.md §10). The tag
// byte leaves room for future marker kinds (e.g. explicit aborts).
constexpr uint8_t kTxnCommitTag = 1;

// Rebuilds a status with the same code but an annotated message (the
// factory constructors are the only way in).
Status StatusWithCode(Status::Code code, const std::string& msg) {
  switch (code) {
    case Status::Code::kNotFound:
      return Status::NotFound(msg);
    case Status::Code::kCorruption:
      return Status::Corruption(msg);
    case Status::Code::kNotSupported:
      return Status::NotSupported(msg);
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(msg);
    case Status::Code::kBusy:
      return Status::Busy(msg);
    case Status::Code::kAborted:
      return Status::Aborted(msg);
    case Status::Code::kIOError:
    default:
      return Status::IOError(msg);
  }
}

// Presents a per-shard ScanIterator (user-facing: tombstones elided, one
// live version per key) as a disk/Iterator so NewMergingIterator can
// heap-merge shard streams. Keys never collide across shards (routing is
// a function of the key), so the merge degenerates to pure interleaving.
// seq() forwards the shard stream's real per-version seq; type() is
// kValue by construction — a user-facing stream elides tombstones, so
// every entry it emits IS a live value.
class ShardChildIterator final : public Iterator {
 public:
  explicit ShardChildIterator(std::unique_ptr<ScanIterator> child)
      : child_(std::move(child)) {}

  bool Valid() const override { return child_->Valid(); }

  // Already positioned at its low bound by construction.
  void SeekToFirst() override {}

  void Seek(const Slice& target) override {
    // Forward-only: a ScanIterator cannot rewind, and the merge only ever
    // seeks forward (it never does at all in the current facade).
    while (child_->Valid() && child_->key().compare(target) < 0) {
      child_->Next();
    }
  }

  void Next() override { child_->Next(); }

  Slice key() const override { return child_->key(); }
  Slice value() const override { return child_->value(); }
  uint64_t seq() const override { return child_->seq(); }
  ValueType type() const override { return ValueType::kValue; }
  Status status() const override { return child_->status(); }

  size_t MaxBufferedEntries() const { return child_->MaxBufferedEntries(); }

 private:
  std::unique_ptr<ScanIterator> child_;
};

// The cross-shard cursor: per-shard streaming iterators under one k-way
// merge. Memory stays bounded by (consulted shards) x chunk size; the
// per-chunk snapshot guarantees of each shard stream carry over per
// shard (DESIGN.md §8).
class ShardedScanIterator final : public ScanIterator {
 public:
  ShardedScanIterator(std::vector<std::unique_ptr<ScanIterator>> children) {
    std::vector<std::unique_ptr<Iterator>> adapted;
    adapted.reserve(children.size());
    for (auto& child : children) {
      auto adapter = std::make_unique<ShardChildIterator>(std::move(child));
      children_.push_back(adapter.get());
      adapted.push_back(std::move(adapter));
    }
    merged_ = NewMergingIterator(std::move(adapted));
    merged_->SeekToFirst();
  }

  bool Valid() const override { return merged_->Valid(); }
  void Next() override { merged_->Next(); }
  Slice key() const override { return merged_->key(); }
  Slice value() const override { return merged_->value(); }
  uint64_t seq() const override { return merged_->seq(); }
  Status status() const override { return merged_->status(); }

  // The facade's observable bound: the sum of the shard streams' high-water
  // marks (each bounded by its chunk size).
  size_t MaxBufferedEntries() const override {
    size_t total = 0;
    for (const ShardChildIterator* child : children_) {
      total += child->MaxBufferedEntries();
    }
    return total;
  }

 private:
  std::vector<ShardChildIterator*> children_;  // owned by merged_
  std::unique_ptr<Iterator> merged_;
};

}  // namespace

ShardedKVStore::ShardedKVStore(int shards, size_t prefix_skip) : router_(shards, prefix_skip) {
  shards_.reserve(static_cast<size_t>(shards));
}

std::string ShardedKVStore::ShardPath(const std::string& base, int shard) {
  char buf[16];
  snprintf(buf, sizeof(buf), "/shard-%03d", shard);
  return base + buf;
}

std::string ShardedKVStore::TxnLogPath(const std::string& base) { return base + "/txn.log"; }

ShardedKVStore::~ShardedKVStore() {
  if (txn_log_ != nullptr) {
    txn_log_->Sync();
    txn_log_->Close();
  }
}

Status ShardedKVStore::Open(const FloDbOptions& options, std::unique_ptr<ShardedKVStore>* out) {
  if (options.shards < 1) {
    return Status::InvalidArgument("shards must be >= 1");
  }
  if (options.shards > kMaxShards) {
    return Status::InvalidArgument("shards must be <= 256");
  }
  const int n = ShardRouter::RoundUpToPowerOfTwo(options.shards);
  if (options.memory_budget_bytes / static_cast<size_t>(n) == 0) {
    return Status::InvalidArgument("memory_budget_bytes too small for shard count");
  }
  if (options.disk.table_cache_entries == 0) {
    // Checked before the per-shard floor below would paper over it; keep
    // the error identical to the single-instance path's.
    return Status::InvalidArgument("table_cache_entries must be >= 1");
  }

  // Per-shard configuration: an equal slice of the memory budget and of
  // the background-thread budgets (floor of one thread per shard; 0 keeps
  // its meaning — "let FloDB clamp" for drain, "disabled" for compaction).
  FloDbOptions shard_options = options;
  shard_options.shards = 1;
  shard_options.memory_budget_bytes = options.memory_budget_bytes / static_cast<size_t>(n);
  if (options.drain_threads > 0) {
    shard_options.drain_threads = std::max(1, options.drain_threads / n);
  }
  if (options.disk.compaction_threads > 0) {
    shard_options.disk.compaction_threads = std::max(1, options.disk.compaction_threads / n);
    // Every shard keeps >= 1 worker so it can always drain its own L0,
    // but the floor means n shards would otherwise run up to n
    // compactions at once regardless of the configured budget. A shared
    // limiter restores the global bound: workers beyond the pre-split
    // total block before doing any merge I/O.
    if (shard_options.disk.compaction_limiter == nullptr && n > 1) {
      shard_options.disk.compaction_limiter =
          std::make_shared<CompactionThreadLimiter>(options.disk.compaction_threads);
    }
  }
  // Read-path caches split like the memory budget, with floors so a high
  // shard count cannot silently flip caching off (0 keeps meaning
  // "disabled") or strand a shard without table handles.
  if (options.disk.block_cache_bytes > 0) {
    shard_options.disk.block_cache_bytes =
        std::max<size_t>(options.disk.block_cache_bytes / static_cast<size_t>(n), 64u << 10);
  }
  shard_options.disk.table_cache_entries =
      std::max<size_t>(options.disk.table_cache_entries / static_cast<size_t>(n), 1);

  auto store = std::unique_ptr<ShardedKVStore>(
      new ShardedKVStore(n, options.shard_key_prefix_skip));
  store->atomic_mode_ = options.cross_shard_atomic && n > 1;
  store->wal_enabled_ = options.enable_wal;
  if (options.enable_persistence) {
    if (options.disk.env == nullptr || options.disk.path.empty()) {
      return Status::InvalidArgument("persistence requires disk.env and disk.path");
    }
    Status s = options.disk.env->CreateDir(options.disk.path);
    if (!s.ok()) {
      return s;
    }
    s = CheckOrWriteTopology(options.disk.env, options.disk.path, n,
                             options.shard_key_prefix_skip);
    if (!s.ok()) {
      return s;
    }
  }

  // Recovery step 1: read the txn log into the committed-marker set,
  // BEFORE any shard replays its WAL. This runs regardless of the current
  // cross_shard_atomic setting — the knob gates the write path, but
  // markers written under a previous configuration must still decide the
  // fate of prepares sitting in shard WALs, or flipping the knob off
  // would discard acknowledged data. A torn tail record is the normal
  // crash outcome (the marker's transaction was never acknowledged with
  // sync, or the ack raced the crash) and ends the scan; mid-log
  // corruption refuses to open, mirroring the WAL reader's contract.
  uint64_t max_marker_id = 0;
  if (options.enable_persistence && options.enable_wal && n > 1) {
    store->txn_recovery_ = std::make_unique<CrossShardTxnRecovery>();
    const std::string log_path = TxnLogPath(options.disk.path);
    std::unique_ptr<SequentialFile> file;
    if (options.disk.env->NewSequentialFile(log_path, &file).ok()) {
      WalReader reader(std::move(file));
      std::string payload;
      while (reader.ReadRecord(&payload)) {
        Slice in(payload);
        uint64_t txn_id = 0;
        if (in.size() < 2 || static_cast<uint8_t>(in[0]) != kTxnCommitTag) {
          return Status::Corruption("malformed txn-log record");
        }
        in.remove_prefix(1);
        if (!GetVarint64(&in, &txn_id)) {
          return Status::Corruption("malformed txn-log record");
        }
        store->txn_recovery_->committed.push_back(txn_id);
        max_marker_id = std::max(max_marker_id, txn_id);
      }
      if (!reader.status().ok()) {
        return reader.status();
      }
      std::sort(store->txn_recovery_->committed.begin(), store->txn_recovery_->committed.end());
    }
  }

  // Recovery step 2: open (and recover) shards in index order; no shard
  // serves traffic until every WAL has replayed. Each shard borrows the
  // recovery context: prepare records replay iff their txn id has a
  // marker, orphans are discarded and counted. A failure abandons the
  // already-opened shards (their destructors stop cleanly; nothing was
  // modified beyond each shard's own recovery).
  for (int i = 0; i < n; ++i) {
    FloDbOptions per_shard = shard_options;
    if (options.enable_persistence) {
      per_shard.disk.path = ShardPath(options.disk.path, i);
    }
    per_shard.txn_recovery = store->txn_recovery_.get();
    std::unique_ptr<FloDB> shard;
    Status s = FloDB::Open(per_shard, &shard);
    if (!s.ok()) {
      return s;
    }
    store->shards_.push_back(std::move(shard));
  }

  // Recovery step 3: every marker has been consumed (shard recovery
  // replayed-and-persisted or discarded every prepare, and deleted the
  // logs that held them), so the txn log truncates and restarts empty.
  // The id counter resumes past every id ever seen — in a marker or in
  // an orphaned prepare — so ids never repeat across restarts.
  if (store->txn_recovery_ != nullptr) {
    store->next_txn_id_.store(
        std::max(max_marker_id, store->txn_recovery_->max_txn_id_seen) + 1,
        std::memory_order_relaxed);
    std::unique_ptr<WritableFile> file;
    Status s = options.disk.env->NewWritableFile(TxnLogPath(options.disk.path), &file);
    if (!s.ok()) {
      return s;
    }
    // Single-threaded here, but txn_log_ is guarded state; taking the
    // (uncontended) lock keeps the annotation honest.
    MutexLock lock(store->txn_log_mu_);
    store->txn_log_ = std::make_unique<WalWriter>(std::move(file));
  }
  *out = std::move(store);
  return Status::OK();
}

Status ShardedKVStore::Write(const WriteOptions& options, WriteBatch* batch) {
  if (batch == nullptr) {
    return Status::InvalidArgument("null write batch");
  }
  if (batch->Empty()) {
    return Status::OK();
  }
  if (shards_.size() == 1) {
    return shards_[0]->Write(options, batch);
  }

  // First pass: does the batch straddle shards at all? The common cases —
  // one-entry Put/Delete wrappers and locality-aware batches — stay on
  // the zero-copy path.
  int single_shard = -1;
  bool straddles = false;
  Status s = batch->ForEach([&](const Slice& key, const Slice&, ValueType) {
    const int shard = router_.ShardOf(key);
    if (single_shard < 0) {
      single_shard = shard;
    } else if (shard != single_shard) {
      straddles = true;
    }
  });
  if (!s.ok()) {
    return s;
  }
  if (!straddles) {
    return shards_[single_shard]->Write(options, batch);
  }

  // Split by shard, preserving relative entry order inside each split so
  // last-write-wins still holds per key (a key always routes to the same
  // shard). Reused per thread so steady-state splitting is allocation-free.
  thread_local std::vector<WriteBatch> splits;
  if (splits.size() < shards_.size()) {
    splits.resize(shards_.size());
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    splits[i].Clear();
  }
  s = batch->ForEach([&](const Slice& key, const Slice& value, ValueType type) {
    WriteBatch& split = splits[static_cast<size_t>(router_.ShardOf(key))];
    if (type == ValueType::kValue) {
      split.Put(key, value);
    } else {
      split.Delete(key);
    }
  });
  if (!s.ok()) {
    return s;
  }
  cross_shard_writes_.fetch_add(1, std::memory_order_relaxed);

  return atomic_mode_ ? WriteAtomic(options, splits) : WriteLegacy(options, splits);
}

// Two-phase commit over the per-shard WAL machinery (DESIGN.md §8).
// Phase 1 logs a prepare record in every touched shard — always fsync'd,
// so a durable commit marker IMPLIES every participant's prepare is
// durable (presumed abort: recovery discards any prepare without a
// marker). Phase 2 appends the marker to the router's txn log (fsync'd
// before the ack for sync writers). Phase 3 applies every split to
// memory under the shared snapshot fence; nothing is visible before the
// marker exists. Any phase 1/2 failure aborts: the tokens are released
// without applying, the orphaned prepares are discarded by the next
// recovery, and the caller is told nothing of the batch is visible.
Status ShardedKVStore::WriteAtomic(const WriteOptions& options, std::vector<WriteBatch>& splits) {
  const uint64_t txn_id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);

  // The participant shard set, pre-encoded once and shared by reference
  // across every shard's prepare record.
  std::string participants;
  uint32_t nshards = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!splits[i].Empty()) {
      ++nshards;
    }
  }
  PutVarint32(&participants, nshards);
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!splits[i].Empty()) {
      PutVarint32(&participants, static_cast<uint32_t>(i));
    }
  }

  // Phases 1 + 2 only exist with a WAL: without one there is no crash
  // state to keep consistent, and the fence alone provides the scan
  // guarantee.
  std::vector<std::pair<size_t, int>> prepared;  // (shard, apply-token slot)
  prepared.reserve(nshards);
  if (wal_enabled_) {
    Status s;
    for (size_t i = 0; i < shards_.size() && s.ok(); ++i) {
      if (splits[i].Empty()) {
        continue;
      }
      int token_slot = -1;
      s = shards_[i]->PrepareBatch(options, &splits[i], txn_id, Slice(participants),
                                   &token_slot);
      if (s.ok()) {
        prepared.emplace_back(i, token_slot);
      }
    }
    if (s.ok()) {
      s = CommitMarker(txn_id, options.sync);
    }
    if (!s.ok()) {
      // Abort: release every token WITHOUT applying. The prepares stay in
      // their WALs as orphans; with no marker they can never replay, so
      // no shard's slice of this batch is ever visible or durable.
      for (const auto& [shard, token_slot] : prepared) {
        shards_[shard]->AbandonPrepare(token_slot);
      }
      txn_aborts_.fetch_add(1, std::memory_order_relaxed);
      return StatusWithCode(s.code(), "cross-shard transaction aborted, nothing committed: " +
                                          s.ToString());
    }
  }

  // Phase 3: apply to memory. The shared fence spans the WHOLE multi-
  // shard apply, so a consistent merged scan (which takes the fence
  // exclusively while opening its cursors) sees either none or all of
  // this batch. Appliers hold WAL apply tokens and are exempt from
  // Memtable backpressure, so the fence is never held across a blocking
  // wait on the persist thread.
  {
    ReaderMutexLock fence(txn_apply_gate_);
    if (wal_enabled_) {
      for (const auto& [shard, token_slot] : prepared) {
        shards_[shard]->ApplyPreparedBatch(options, &splits[shard], token_slot);
      }
    } else {
      for (size_t i = 0; i < shards_.size(); ++i) {
        if (!splits[i].Empty()) {
          shards_[i]->Write(options, &splits[i]);
        }
      }
    }
  }
  txn_commits_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

// The pre-2PC behavior, kept behind cross_shard_atomic = off: one
// independent group commit per touched shard, in shard order. Atomicity
// is PER SHARD — a crash can persist a strict subset of the touched
// shards, and a runtime failure leaves the earlier shards committed. The
// latter is at least no longer silent: the status names the shards that
// committed and partial_batch_writes counts the occurrences.
Status ShardedKVStore::WriteLegacy(const WriteOptions& options, std::vector<WriteBatch>& splits) {
  std::vector<size_t> committed;
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (splits[i].Empty()) {
      continue;
    }
    Status s = shards_[i]->Write(options, &splits[i]);
    if (!s.ok()) {
      if (committed.empty()) {
        return s;  // clean failure: no shard committed anything
      }
      partial_batch_writes_.fetch_add(1, std::memory_order_relaxed);
      std::string msg = "cross-shard batch partially committed: shard";
      msg += committed.size() > 1 ? "s " : " ";
      for (size_t j = 0; j < committed.size(); ++j) {
        if (j > 0) {
          msg += ",";
        }
        msg += std::to_string(committed[j]);
      }
      msg += " committed before shard " + std::to_string(i) + " failed: " + s.ToString();
      return StatusWithCode(s.code(), msg);
    }
    committed.push_back(i);
  }
  return Status::OK();
}

Status ShardedKVStore::CommitMarker(uint64_t txn_id, bool sync) {
  TxnMarkerWaiter me;
  me.txn_id = txn_id;
  me.sync = sync;

  // Explicit lock()/unlock() pairing (not MutexLock): the leader drops
  // txn_log_mu_ mid-scope for the Append+Sync phase, and the analysis
  // checks the manual pairing on every branch.
  txn_log_mu_.lock();
  txn_log_queue_.push_back(&me);
  while (!me.done && txn_log_queue_.front() != &me) {
    txn_log_cv_.Wait(txn_log_mu_);
  }
  if (me.done) {
    // A leader committed this marker as part of its group; `me` is ours
    // alone again, safe to read unlocked.
    txn_log_mu_.unlock();
    return me.status;
  }

  // Leader: snapshot the whole queue as the group. A broken log fails the
  // group — appending after an unknown-tail failure would fake
  // durability; the log heals at the next Open's truncation.
  std::vector<TxnMarkerWaiter*> group(txn_log_queue_.begin(), txn_log_queue_.end());
  Status broken = txn_log_status_;
  if (broken.ok() && txn_log_ == nullptr) {
    broken = Status::IOError("txn log is not open");
  }

  size_t appended = 0;
  bool group_has_sync = false;
  Status append_error;
  Status sync_error;
  if (broken.ok()) {
    // IO happens WITHOUT txn_log_mu_ (the queue front keeps new arrivals
    // followers), so a group can form behind a slow fsync.
    WalWriter* log = txn_log_.get();
    txn_log_mu_.unlock();
    std::string payload;
    for (TxnMarkerWaiter* w : group) {
      payload.clear();
      payload.push_back(static_cast<char>(kTxnCommitTag));
      PutVarint64(&payload, w->txn_id);
      Status s = log->AddRecord(payload);
      if (!s.ok()) {
        append_error = s;
        break;
      }
      ++appended;
      group_has_sync = group_has_sync || w->sync;
    }
    if (appended > 0 && group_has_sync) {
      sync_error = log->Sync();
    }
    txn_log_mu_.lock();
  }
  if (!append_error.ok() || !sync_error.ok()) {
    txn_log_status_ = append_error.ok() ? sync_error : append_error;
  }

  // Mirror WalCommit's per-writer results: an appended, unsynced marker
  // is an acceptable ack for a sync=false transaction (it may vanish in a
  // crash — together with its prepares, whole); a sync writer whose fsync
  // failed aborts.
  for (size_t i = 0; i < group.size(); ++i) {
    TxnMarkerWaiter* w = group[i];
    if (!broken.ok()) {
      w->status = broken;
    } else if (i >= appended) {
      w->status = append_error;
    } else if (w->sync && !sync_error.ok()) {
      w->status = sync_error;
    } else {
      w->status = Status::OK();
    }
    w->done = true;
  }
  txn_log_queue_.erase(txn_log_queue_.begin(),
                       txn_log_queue_.begin() + static_cast<ptrdiff_t>(group.size()));
  txn_log_mu_.unlock();
  txn_log_cv_.SignalAll();
  return me.status;
}

Status ShardedKVStore::Get(const ReadOptions& options, const Slice& key, std::string* value) {
  return shards_[static_cast<size_t>(router_.ShardOf(key))]->Get(options, key, value);
}

std::unique_ptr<ScanIterator> ShardedKVStore::NewMergedIterator(const ReadOptions& options,
                                                                const Slice& low_key,
                                                                const Slice& high_key) {
  int first = 0;
  int last = 0;
  router_.ShardRange(low_key, high_key, &first, &last);
  std::vector<std::unique_ptr<ScanIterator>> children;
  // Inverted bounds (low > high) give first > last: an empty merge, to
  // match the single-shard behavior of an immediately-exhausted scan.
  if (last >= first) {
    children.reserve(static_cast<size_t>(last - first + 1));
  }

  // Consistent cross-shard snapshot (atomic mode, > 1 consulted shard):
  // hold the write fence exclusively while opening every shard cursor —
  // no cross-shard batch can apply in between, and each cursor fetches
  // its FIRST chunk inside its constructor, so for ranges that fit in one
  // chunk per shard the entire result materializes under the fence.
  // Cursors must take fresh master snapshots: a piggybacked seq predates
  // the fence and could sit on the far side of a just-applied batch.
  // Later chunks refetch outside the fence and may advance per shard —
  // the same per-chunk guarantee as a single FloDB stream (DESIGN.md §4).
  // The explicit kPiggyback hint opts out of the fence entirely (the
  // legacy cheap-and-inconsistent mode).
  ReadOptions child_options = options;
  if (atomic_mode_ && last > first && options.snapshot_mode != SnapshotMode::kPiggyback) {
    child_options.snapshot_mode = SnapshotMode::kMaster;
    WriterMutexLock fence(txn_apply_gate_);
    for (int i = first; i <= last; ++i) {
      children.push_back(
          shards_[static_cast<size_t>(i)]->NewScanIterator(child_options, low_key, high_key));
    }
    return std::make_unique<ShardedScanIterator>(std::move(children));
  }
  for (int i = first; i <= last; ++i) {
    children.push_back(
        shards_[static_cast<size_t>(i)]->NewScanIterator(child_options, low_key, high_key));
  }
  return std::make_unique<ShardedScanIterator>(std::move(children));
}

Status ShardedKVStore::Scan(const ReadOptions& options, const Slice& low_key,
                            const Slice& high_key, size_t limit,
                            std::vector<std::pair<std::string, std::string>>* out) {
  if (shards_.size() == 1) {
    return shards_[0]->Scan(options, low_key, high_key, limit, out);
  }
  out->clear();
  // Collect through the merged stream: per-shard memory stays bounded by
  // the chunk size even though the result vector materializes.
  std::unique_ptr<ScanIterator> iter = NewMergedIterator(options, low_key, high_key);
  for (; iter->Valid(); iter->Next()) {
    out->emplace_back(iter->key().ToString(), iter->value().ToString());
    if (limit != 0 && out->size() >= limit) {
      break;
    }
  }
  return iter->status();
}

std::unique_ptr<ScanIterator> ShardedKVStore::NewScanIterator(const ReadOptions& options,
                                                              const Slice& low_key,
                                                              const Slice& high_key) {
  if (shards_.size() == 1) {
    return shards_[0]->NewScanIterator(options, low_key, high_key);
  }
  return NewMergedIterator(options, low_key, high_key);
}

Status ShardedKVStore::FlushAll() {
  for (auto& shard : shards_) {
    Status s = shard->FlushAll();
    if (!s.ok()) {
      return s;
    }
  }
  return Status::OK();
}

Status ShardedKVStore::CompactRange(const Slice& begin, const Slice& end) {
  // Every shard owns a contiguous key range, so pruning by the router
  // would be possible; an unconditional fan-out keeps this correct under
  // shard_key_prefix_skip (where routing ignores leading bytes and a
  // [begin, end) span does not map to a contiguous shard interval).
  for (auto& shard : shards_) {
    Status s = shard->CompactRange(begin, end);
    if (!s.ok()) {
      return s;
    }
  }
  return Status::OK();
}

StoreStats ShardedKVStore::GetStats() const {
  StoreStats total;
  for (const auto& shard : shards_) {
    const StoreStats s = shard->GetStats();
    total.puts += s.puts;
    total.gets += s.gets;
    total.deletes += s.deletes;
    total.scans += s.scans;
    total.batch_writes += s.batch_writes;
    total.batch_entries += s.batch_entries;
    total.wal_batch_records += s.wal_batch_records;
    total.iterator_scans += s.iterator_scans;
    total.membuffer_adds += s.membuffer_adds;
    total.memtable_direct_adds += s.memtable_direct_adds;
    total.drained_entries += s.drained_entries;
    total.scan_restarts += s.scan_restarts;
    total.fallback_scans += s.fallback_scans;
    total.master_scans += s.master_scans;
    total.piggyback_scans += s.piggyback_scans;
    total.membuffer_rotations += s.membuffer_rotations;
    total.wal_syncs += s.wal_syncs;
    total.group_commit_groups += s.group_commit_groups;
    total.group_commit_writers += s.group_commit_writers;
    total.persist_failures += s.persist_failures;
    total.txn_prepares += s.txn_prepares;
    total.orphaned_prepares += s.orphaned_prepares;
    total.vlog_gc_failures += s.vlog_gc_failures;
    total.vlog_gc_quarantined += s.vlog_gc_quarantined;
    total.disk.bytes_flushed += s.disk.bytes_flushed;
    total.disk.bytes_compacted_in += s.disk.bytes_compacted_in;
    total.disk.bytes_compacted_out += s.disk.bytes_compacted_out;
    total.disk.compactions += s.disk.compactions;
    total.disk.flushes += s.disk.flushes;
    total.disk.seeks_saved_by_bloom += s.disk.seeks_saved_by_bloom;
    total.disk.block_cache_hits += s.disk.block_cache_hits;
    total.disk.block_cache_misses += s.disk.block_cache_misses;
    total.disk.block_cache_evictions += s.disk.block_cache_evictions;
    total.disk.block_cache_bytes += s.disk.block_cache_bytes;
    total.disk.block_cache_pinned_bytes += s.disk.block_cache_pinned_bytes;
    total.disk.table_cache_hits += s.disk.table_cache_hits;
    total.disk.table_cache_misses += s.disk.table_cache_misses;
    total.disk.table_cache_evictions += s.disk.table_cache_evictions;
    total.disk.table_cache_entries += s.disk.table_cache_entries;
    total.disk.vlog_files += s.disk.vlog_files;
    total.disk.vlog_bytes += s.disk.vlog_bytes;
    total.disk.vlog_bytes_written += s.disk.vlog_bytes_written;
    total.disk.vlog_writes += s.disk.vlog_writes;
    total.disk.vlog_reads += s.disk.vlog_reads;
    total.disk.vlog_garbage_bytes += s.disk.vlog_garbage_bytes;
    total.disk.vlog_gc_rewrites += s.disk.vlog_gc_rewrites;
    if (total.disk.files_per_level.size() < s.disk.files_per_level.size()) {
      total.disk.files_per_level.resize(s.disk.files_per_level.size(), 0);
    }
    for (size_t l = 0; l < s.disk.files_per_level.size(); ++l) {
      total.disk.files_per_level[l] += s.disk.files_per_level[l];
    }
  }
  // Router-level transaction counters (not owned by any shard).
  total.txn_commits += txn_commits_.load(std::memory_order_relaxed);
  total.txn_aborts += txn_aborts_.load(std::memory_order_relaxed);
  total.partial_batch_writes += partial_batch_writes_.load(std::memory_order_relaxed);
  return total;
}

std::string ShardedKVStore::Name() const {
  if (shards_.size() == 1) {
    return shards_[0]->Name();
  }
  return "ShardedFloDB(" + std::to_string(shards_.size()) + ")";
}

}  // namespace flodb
