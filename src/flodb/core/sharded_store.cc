// ShardedKVStore: batch splitting, routed point ops, and the k-way
// merged scan over per-shard streaming iterators. See sharded_store.h
// and DESIGN.md §8 for the semantics.

#include "flodb/core/sharded_store.h"

#include <algorithm>
#include <cstdio>

#include "flodb/disk/env.h"
#include "flodb/disk/merging_iterator.h"

namespace flodb {

namespace {

// The topology manifest ("<path>/SHARDING"): shard count and routing
// prefix skip, written on first open. Reopening with a different
// topology would silently strand durable data in shards the new router
// never consults, so a mismatch refuses to open.
constexpr char kShardingManifest[] = "/SHARDING";

std::string EncodeTopology(int shards, size_t prefix_skip) {
  char buf[64];
  snprintf(buf, sizeof(buf), "shards=%d prefix_skip=%zu\n", shards, prefix_skip);
  return buf;
}

Status CheckOrWriteTopology(Env* env, const std::string& base, int shards, size_t prefix_skip) {
  const std::string path = base + kShardingManifest;
  const std::string expected = EncodeTopology(shards, prefix_skip);
  std::string existing;
  if (ReadFileToString(env, path, &existing).ok()) {
    if (existing != expected) {
      return Status::InvalidArgument("sharding topology mismatch: " + base + " was created with " +
                                     existing + " but was opened with " + expected);
    }
    return Status::OK();
  }
  return WriteStringToFile(env, Slice(expected), path, /*sync=*/true);
}

// Presents a per-shard ScanIterator (user-facing: tombstones elided, one
// live version per key) as a disk/Iterator so NewMergingIterator can
// heap-merge shard streams. Keys never collide across shards (routing is
// a function of the key), so the merge degenerates to pure interleaving
// and the synthetic seq/type are never consulted for ordering decisions
// that matter.
class ShardChildIterator final : public Iterator {
 public:
  explicit ShardChildIterator(std::unique_ptr<ScanIterator> child)
      : child_(std::move(child)) {}

  bool Valid() const override { return child_->Valid(); }

  // Already positioned at its low bound by construction.
  void SeekToFirst() override {}

  void Seek(const Slice& target) override {
    // Forward-only: a ScanIterator cannot rewind, and the merge only ever
    // seeks forward (it never does at all in the current facade).
    while (child_->Valid() && child_->key().compare(target) < 0) {
      child_->Next();
    }
  }

  void Next() override { child_->Next(); }

  Slice key() const override { return child_->key(); }
  Slice value() const override { return child_->value(); }
  uint64_t seq() const override { return 0; }
  ValueType type() const override { return ValueType::kValue; }
  Status status() const override { return child_->status(); }

  size_t MaxBufferedEntries() const { return child_->MaxBufferedEntries(); }

 private:
  std::unique_ptr<ScanIterator> child_;
};

// The cross-shard cursor: per-shard streaming iterators under one k-way
// merge. Memory stays bounded by (consulted shards) x chunk size; the
// per-chunk snapshot guarantees of each shard stream carry over per
// shard (DESIGN.md §8).
class ShardedScanIterator final : public ScanIterator {
 public:
  ShardedScanIterator(std::vector<std::unique_ptr<ScanIterator>> children) {
    std::vector<std::unique_ptr<Iterator>> adapted;
    adapted.reserve(children.size());
    for (auto& child : children) {
      auto adapter = std::make_unique<ShardChildIterator>(std::move(child));
      children_.push_back(adapter.get());
      adapted.push_back(std::move(adapter));
    }
    merged_ = NewMergingIterator(std::move(adapted));
    merged_->SeekToFirst();
  }

  bool Valid() const override { return merged_->Valid(); }
  void Next() override { merged_->Next(); }
  Slice key() const override { return merged_->key(); }
  Slice value() const override { return merged_->value(); }
  Status status() const override { return merged_->status(); }

  // The facade's observable bound: the sum of the shard streams' high-water
  // marks (each bounded by its chunk size).
  size_t MaxBufferedEntries() const override {
    size_t total = 0;
    for (const ShardChildIterator* child : children_) {
      total += child->MaxBufferedEntries();
    }
    return total;
  }

 private:
  std::vector<ShardChildIterator*> children_;  // owned by merged_
  std::unique_ptr<Iterator> merged_;
};

}  // namespace

ShardedKVStore::ShardedKVStore(int shards, size_t prefix_skip) : router_(shards, prefix_skip) {
  shards_.reserve(static_cast<size_t>(shards));
}

std::string ShardedKVStore::ShardPath(const std::string& base, int shard) {
  char buf[16];
  snprintf(buf, sizeof(buf), "/shard-%03d", shard);
  return base + buf;
}

Status ShardedKVStore::Open(const FloDbOptions& options, std::unique_ptr<ShardedKVStore>* out) {
  if (options.shards < 1) {
    return Status::InvalidArgument("shards must be >= 1");
  }
  if (options.shards > kMaxShards) {
    return Status::InvalidArgument("shards must be <= 256");
  }
  const int n = ShardRouter::RoundUpToPowerOfTwo(options.shards);
  if (options.memory_budget_bytes / static_cast<size_t>(n) == 0) {
    return Status::InvalidArgument("memory_budget_bytes too small for shard count");
  }
  if (options.disk.table_cache_entries == 0) {
    // Checked before the per-shard floor below would paper over it; keep
    // the error identical to the single-instance path's.
    return Status::InvalidArgument("table_cache_entries must be >= 1");
  }

  // Per-shard configuration: an equal slice of the memory budget and of
  // the background-thread budgets (floor of one thread per shard; 0 keeps
  // its meaning — "let FloDB clamp" for drain, "disabled" for compaction).
  FloDbOptions shard_options = options;
  shard_options.shards = 1;
  shard_options.memory_budget_bytes = options.memory_budget_bytes / static_cast<size_t>(n);
  if (options.drain_threads > 0) {
    shard_options.drain_threads = std::max(1, options.drain_threads / n);
  }
  if (options.disk.compaction_threads > 0) {
    shard_options.disk.compaction_threads = std::max(1, options.disk.compaction_threads / n);
  }
  // Read-path caches split like the memory budget, with floors so a high
  // shard count cannot silently flip caching off (0 keeps meaning
  // "disabled") or strand a shard without table handles.
  if (options.disk.block_cache_bytes > 0) {
    shard_options.disk.block_cache_bytes =
        std::max<size_t>(options.disk.block_cache_bytes / static_cast<size_t>(n), 64u << 10);
  }
  shard_options.disk.table_cache_entries =
      std::max<size_t>(options.disk.table_cache_entries / static_cast<size_t>(n), 1);

  auto store = std::unique_ptr<ShardedKVStore>(
      new ShardedKVStore(n, options.shard_key_prefix_skip));
  if (options.enable_persistence) {
    if (options.disk.env == nullptr || options.disk.path.empty()) {
      return Status::InvalidArgument("persistence requires disk.env and disk.path");
    }
    Status s = options.disk.env->CreateDir(options.disk.path);
    if (!s.ok()) {
      return s;
    }
    s = CheckOrWriteTopology(options.disk.env, options.disk.path, n,
                             options.shard_key_prefix_skip);
    if (!s.ok()) {
      return s;
    }
  }

  // Open (and recover) shards in index order; no shard serves traffic
  // until every WAL has replayed. A failure abandons the already-opened
  // shards (their destructors stop cleanly; nothing was modified beyond
  // each shard's own recovery).
  for (int i = 0; i < n; ++i) {
    FloDbOptions per_shard = shard_options;
    if (options.enable_persistence) {
      per_shard.disk.path = ShardPath(options.disk.path, i);
    }
    std::unique_ptr<FloDB> shard;
    Status s = FloDB::Open(per_shard, &shard);
    if (!s.ok()) {
      return s;
    }
    store->shards_.push_back(std::move(shard));
  }
  *out = std::move(store);
  return Status::OK();
}

Status ShardedKVStore::Write(const WriteOptions& options, WriteBatch* batch) {
  if (batch == nullptr) {
    return Status::InvalidArgument("null write batch");
  }
  if (batch->Empty()) {
    return Status::OK();
  }
  if (shards_.size() == 1) {
    return shards_[0]->Write(options, batch);
  }

  // First pass: does the batch straddle shards at all? The common cases —
  // one-entry Put/Delete wrappers and locality-aware batches — stay on
  // the zero-copy path.
  int single_shard = -1;
  bool straddles = false;
  Status s = batch->ForEach([&](const Slice& key, const Slice&, ValueType) {
    const int shard = router_.ShardOf(key);
    if (single_shard < 0) {
      single_shard = shard;
    } else if (shard != single_shard) {
      straddles = true;
    }
  });
  if (!s.ok()) {
    return s;
  }
  if (!straddles) {
    return shards_[single_shard]->Write(options, batch);
  }

  // Split by shard, preserving relative entry order inside each split so
  // last-write-wins still holds per key (a key always routes to the same
  // shard). Reused per thread so steady-state splitting is allocation-free.
  thread_local std::vector<WriteBatch> splits;
  if (splits.size() < shards_.size()) {
    splits.resize(shards_.size());
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    splits[i].Clear();
  }
  s = batch->ForEach([&](const Slice& key, const Slice& value, ValueType type) {
    WriteBatch& split = splits[static_cast<size_t>(router_.ShardOf(key))];
    if (type == ValueType::kValue) {
      split.Put(key, value);
    } else {
      split.Delete(key);
    }
  });
  if (!s.ok()) {
    return s;
  }
  cross_shard_writes_.fetch_add(1, std::memory_order_relaxed);

  // One group commit per touched shard, in shard order. Atomicity is
  // PER SHARD: a crash can persist a prefix of the touched shards
  // (DESIGN.md §8); within each shard the split replays all-or-nothing.
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (splits[i].Empty()) {
      continue;
    }
    s = shards_[i]->Write(options, &splits[i]);
    if (!s.ok()) {
      return s;
    }
  }
  return Status::OK();
}

Status ShardedKVStore::Get(const ReadOptions& options, const Slice& key, std::string* value) {
  return shards_[static_cast<size_t>(router_.ShardOf(key))]->Get(options, key, value);
}

std::unique_ptr<ScanIterator> ShardedKVStore::NewMergedIterator(const ReadOptions& options,
                                                                const Slice& low_key,
                                                                const Slice& high_key) {
  int first = 0;
  int last = 0;
  router_.ShardRange(low_key, high_key, &first, &last);
  std::vector<std::unique_ptr<ScanIterator>> children;
  // Inverted bounds (low > high) give first > last: an empty merge, to
  // match the single-shard behavior of an immediately-exhausted scan.
  if (last >= first) {
    children.reserve(static_cast<size_t>(last - first + 1));
  }
  for (int i = first; i <= last; ++i) {
    children.push_back(shards_[static_cast<size_t>(i)]->NewScanIterator(options, low_key, high_key));
  }
  return std::make_unique<ShardedScanIterator>(std::move(children));
}

Status ShardedKVStore::Scan(const ReadOptions& options, const Slice& low_key,
                            const Slice& high_key, size_t limit,
                            std::vector<std::pair<std::string, std::string>>* out) {
  if (shards_.size() == 1) {
    return shards_[0]->Scan(options, low_key, high_key, limit, out);
  }
  out->clear();
  // Collect through the merged stream: per-shard memory stays bounded by
  // the chunk size even though the result vector materializes.
  std::unique_ptr<ScanIterator> iter = NewMergedIterator(options, low_key, high_key);
  for (; iter->Valid(); iter->Next()) {
    out->emplace_back(iter->key().ToString(), iter->value().ToString());
    if (limit != 0 && out->size() >= limit) {
      break;
    }
  }
  return iter->status();
}

std::unique_ptr<ScanIterator> ShardedKVStore::NewScanIterator(const ReadOptions& options,
                                                              const Slice& low_key,
                                                              const Slice& high_key) {
  if (shards_.size() == 1) {
    return shards_[0]->NewScanIterator(options, low_key, high_key);
  }
  return NewMergedIterator(options, low_key, high_key);
}

Status ShardedKVStore::FlushAll() {
  for (auto& shard : shards_) {
    Status s = shard->FlushAll();
    if (!s.ok()) {
      return s;
    }
  }
  return Status::OK();
}

StoreStats ShardedKVStore::GetStats() const {
  StoreStats total;
  for (const auto& shard : shards_) {
    const StoreStats s = shard->GetStats();
    total.puts += s.puts;
    total.gets += s.gets;
    total.deletes += s.deletes;
    total.scans += s.scans;
    total.batch_writes += s.batch_writes;
    total.batch_entries += s.batch_entries;
    total.wal_batch_records += s.wal_batch_records;
    total.iterator_scans += s.iterator_scans;
    total.membuffer_adds += s.membuffer_adds;
    total.memtable_direct_adds += s.memtable_direct_adds;
    total.drained_entries += s.drained_entries;
    total.scan_restarts += s.scan_restarts;
    total.fallback_scans += s.fallback_scans;
    total.master_scans += s.master_scans;
    total.piggyback_scans += s.piggyback_scans;
    total.membuffer_rotations += s.membuffer_rotations;
    total.wal_syncs += s.wal_syncs;
    total.group_commit_groups += s.group_commit_groups;
    total.group_commit_writers += s.group_commit_writers;
    total.persist_failures += s.persist_failures;
    total.disk.bytes_flushed += s.disk.bytes_flushed;
    total.disk.bytes_compacted_in += s.disk.bytes_compacted_in;
    total.disk.bytes_compacted_out += s.disk.bytes_compacted_out;
    total.disk.compactions += s.disk.compactions;
    total.disk.flushes += s.disk.flushes;
    total.disk.seeks_saved_by_bloom += s.disk.seeks_saved_by_bloom;
    total.disk.block_cache_hits += s.disk.block_cache_hits;
    total.disk.block_cache_misses += s.disk.block_cache_misses;
    total.disk.block_cache_evictions += s.disk.block_cache_evictions;
    total.disk.block_cache_bytes += s.disk.block_cache_bytes;
    total.disk.block_cache_pinned_bytes += s.disk.block_cache_pinned_bytes;
    total.disk.table_cache_hits += s.disk.table_cache_hits;
    total.disk.table_cache_misses += s.disk.table_cache_misses;
    total.disk.table_cache_evictions += s.disk.table_cache_evictions;
    total.disk.table_cache_entries += s.disk.table_cache_entries;
    if (total.disk.files_per_level.size() < s.disk.files_per_level.size()) {
      total.disk.files_per_level.resize(s.disk.files_per_level.size(), 0);
    }
    for (size_t l = 0; l < s.disk.files_per_level.size(); ++l) {
      total.disk.files_per_level[l] += s.disk.files_per_level[l];
    }
  }
  return total;
}

std::string ShardedKVStore::Name() const {
  if (shards_.size() == 1) {
    return shards_[0]->Name();
  }
  return "ShardedFloDB(" + std::to_string(shards_.size()) + ")";
}

}  // namespace flodb
