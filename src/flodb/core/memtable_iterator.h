// Adapts a MemTable's skiplist iterator to the generic Iterator interface
// so it can participate in merged views (scans, flush-to-disk).

#ifndef FLODB_CORE_MEMTABLE_ITERATOR_H_
#define FLODB_CORE_MEMTABLE_ITERATOR_H_

#include <memory>

#include "flodb/disk/iterator.h"
#include "flodb/mem/memtable.h"

namespace flodb {

class MemTableIterator final : public Iterator {
 public:
  explicit MemTableIterator(const MemTable* table) : iter_(table->NewIterator()) {}

  bool Valid() const override { return iter_.Valid(); }
  void SeekToFirst() override { iter_.SeekToFirst(); }
  void Seek(const Slice& target) override { iter_.Seek(target); }
  void Next() override { iter_.Next(); }

  Slice key() const override { return iter_.key(); }
  Slice value() const override { return iter_.value(); }
  uint64_t seq() const override { return iter_.seq(); }
  ValueType type() const override { return iter_.type(); }

 private:
  ConcurrentSkipList::Iterator iter_;
};

inline std::unique_ptr<Iterator> NewMemTableIterator(const MemTable* table) {
  return std::make_unique<MemTableIterator>(table);
}

}  // namespace flodb

#endif  // FLODB_CORE_MEMTABLE_ITERATOR_H_
