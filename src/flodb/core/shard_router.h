// ShardRouter: deterministic key -> shard mapping for ShardedKVStore.
//
// Routing extracts an 8-byte big-endian prefix of the key (optionally
// skipping a fixed number of leading bytes for schemas with a constant
// key prefix, e.g. "queue:...") and takes its top log2(shards) bits —
// the same top-bits partitioning the Membuffer uses internally (§4.3),
// lifted to whole store instances.
//
// With prefix_skip == 0 the mapping is ORDER-PRESERVING: if k1 < k2
// byte-wise then ShardOf(k1) <= ShardOf(k2) (zero-padding the 8-byte
// prefix is the minimal extension of a shorter key), so every shard owns
// one contiguous key range and range scans can prune to the shards
// intersecting [low, high). With prefix_skip > 0 ranges interleave and
// scans must consult every shard; the k-way merge keeps the output
// globally ordered either way.

#ifndef FLODB_CORE_SHARD_ROUTER_H_
#define FLODB_CORE_SHARD_ROUTER_H_

#include <cstdint>

#include "flodb/common/slice.h"

namespace flodb {

class ShardRouter {
 public:
  // REQUIRES: shards is a power of two in [1, 256] (ShardedKVStore::Open
  // validates and rounds before constructing one).
  ShardRouter(int shards, size_t prefix_skip)
      : shards_(shards), prefix_skip_(prefix_skip), shard_bits_(Log2(shards)) {}

  int shards() const { return shards_; }
  bool order_preserving() const { return prefix_skip_ == 0; }

  int ShardOf(const Slice& key) const {
    if (shard_bits_ == 0) {
      return 0;
    }
    return static_cast<int>(RoutingPrefix(key) >> (64 - shard_bits_));
  }

  // The shards a scan over [low, high) must consult: [first, last], both
  // inclusive. Exact-to-one-shard pruning when order-preserving;
  // otherwise the full range (every shard may hold keys inside the
  // bounds). The shard owning `high` is always included even though the
  // bound is exclusive: short keys zero-pad into the boundary prefix
  // (e.g. "\x40" < "\x40\x00..." yet both route to the same shard), so
  // the boundary shard can legitimately hold keys below `high`.
  void ShardRange(const Slice& low, const Slice& high, int* first, int* last) const {
    if (!order_preserving()) {
      *first = 0;
      *last = shards_ - 1;
      return;
    }
    *first = low.empty() ? 0 : ShardOf(low);
    // An empty high bound means "unbounded above".
    *last = high.empty() ? shards_ - 1 : ShardOf(high);
  }

  static bool IsPowerOfTwo(int v) { return v > 0 && (v & (v - 1)) == 0; }

  // The documented rounding rule: a non-power-of-two shard count rounds
  // UP to the next power of two (so the requested parallelism is a floor,
  // never silently reduced).
  static int RoundUpToPowerOfTwo(int v) {
    int p = 1;
    while (p < v) {
      p <<= 1;
    }
    return p;
  }

 private:
  static int Log2(int v) {
    int bits = 0;
    while ((1 << bits) < v) {
      ++bits;
    }
    return bits;
  }

  // Big-endian uint64 of key bytes [prefix_skip, prefix_skip + 8),
  // zero-padded past the end of the key.
  uint64_t RoutingPrefix(const Slice& key) const {
    uint64_t prefix = 0;
    for (size_t i = 0; i < 8; ++i) {
      const size_t pos = prefix_skip_ + i;
      const uint8_t byte =
          pos < key.size() ? static_cast<uint8_t>(key.data()[pos]) : 0;
      prefix = (prefix << 8) | byte;
    }
    return prefix;
  }

  const int shards_;
  const size_t prefix_skip_;
  const int shard_bits_;
};

}  // namespace flodb

#endif  // FLODB_CORE_SHARD_ROUTER_H_
