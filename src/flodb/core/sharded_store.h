// ShardedKVStore: a KVStore facade that range-partitions the keyspace
// across N independent FloDB instances (DESIGN.md §8).
//
// Each shard is a complete FloDB — its own Membuffer/Memtable pair, WAL,
// drain and persist threads — under a per-shard subdirectory of
// disk.path, so writes to different shards share NO serialization point:
// no common WAL mutex, no common Membuffer, no common drain pipeline.
// The configured memory budget and drain/compaction thread budgets are
// divided across the shards (floor of one thread per shard).
//
//   Write(batch)  -> split by shard, one group commit per touched shard
//                    (per-shard atomicity only — DESIGN.md §8).
//   Get/Put/Del   -> routed to the owning shard.
//   Scan/iterate  -> per-shard streaming iterators merged by a k-way
//                    heap (reusing disk/merging_iterator), preserving
//                    PR 2's bounded-chunk memory ceiling per shard.
//   Open          -> recovers every shard (per-shard WAL replay) before
//                    any shard serves traffic.
//
// shards == 1 is a pure pass-through: every operation forwards to the
// single FloDB untouched, so behavior and stats match a plain instance
// byte for byte (tested by sharded_store_test.cc).

#ifndef FLODB_CORE_SHARDED_STORE_H_
#define FLODB_CORE_SHARDED_STORE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "flodb/core/flodb.h"
#include "flodb/core/kv_store.h"
#include "flodb/core/options.h"
#include "flodb/core/shard_router.h"

namespace flodb {

class ShardedKVStore final : public KVStore {
 public:
  // Hard ceiling on the shard count (beyond it the per-shard budgets
  // degenerate and thread counts explode).
  static constexpr int kMaxShards = 256;

  // Opens (and recovers) options.shards FloDB instances. Rejects
  // shards < 1 or > kMaxShards; rounds a non-power-of-two count up to
  // the next power of two (see FloDbOptions::shards).
  static Status Open(const FloDbOptions& options, std::unique_ptr<ShardedKVStore>* out);
  ~ShardedKVStore() override = default;

  ShardedKVStore(const ShardedKVStore&) = delete;
  ShardedKVStore& operator=(const ShardedKVStore&) = delete;

  using KVStore::Get;
  using KVStore::Scan;

  Status Write(const WriteOptions& options, WriteBatch* batch) override;
  Status Get(const ReadOptions& options, const Slice& key, std::string* value) override;
  Status Scan(const ReadOptions& options, const Slice& low_key, const Slice& high_key,
              size_t limit, std::vector<std::pair<std::string, std::string>>* out) override;
  std::unique_ptr<ScanIterator> NewScanIterator(const ReadOptions& options, const Slice& low_key,
                                                const Slice& high_key) override;
  Status FlushAll() override;

  // Rolled-up stats: the sum over shards. Note that a cross-shard Write
  // counts one batch_write PER TOUCHED SHARD (each shard's group commit
  // is real — its own WAL record and memory-component pass).
  StoreStats GetStats() const override;
  std::string Name() const override;

  // ---- introspection for tests, benchmarks and operators ----
  int NumShards() const { return static_cast<int>(shards_.size()); }
  const ShardRouter& router() const { return router_; }
  int ShardOf(const Slice& key) const { return router_.ShardOf(key); }
  // Per-shard stats (balance/skew diagnostics).
  StoreStats ShardStats(int shard) const { return shards_[shard]->GetStats(); }
  // Write() calls whose batch straddled shards and paid the split pass
  // (the split-rate diagnostic: high values suggest keys could be
  // grouped by locality before committing).
  uint64_t CrossShardWrites() const {
    return cross_shard_writes_.load(std::memory_order_relaxed);
  }
  FloDB* shard(int i) const { return shards_[i].get(); }

  // The subdirectory shard `i` lives in, given the configured base path.
  static std::string ShardPath(const std::string& base, int shard);

 private:
  ShardedKVStore(int shards, size_t prefix_skip);

  std::unique_ptr<ScanIterator> NewMergedIterator(const ReadOptions& options,
                                                  const Slice& low_key, const Slice& high_key);

  const ShardRouter router_;
  std::vector<std::unique_ptr<FloDB>> shards_;

  mutable std::atomic<uint64_t> cross_shard_writes_{0};
};

}  // namespace flodb

#endif  // FLODB_CORE_SHARDED_STORE_H_
