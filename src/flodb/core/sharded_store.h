// ShardedKVStore: a KVStore facade that range-partitions the keyspace
// across N independent FloDB instances (DESIGN.md §8).
//
// Each shard is a complete FloDB — its own Membuffer/Memtable pair, WAL,
// drain and persist threads — under a per-shard subdirectory of
// disk.path, so writes to different shards share NO serialization point:
// no common WAL mutex, no common Membuffer, no common drain pipeline.
// The configured memory budget and drain/compaction thread budgets are
// divided across the shards (floor of one thread per shard).
//
//   Write(batch)  -> split by shard. With cross_shard_atomic (default) a
//                    straddling batch commits via two-phase commit: every
//                    touched shard durably logs a prepare record, the
//                    router fsyncs a commit marker into its txn log, then
//                    the batch applies to memory under a shared fence —
//                    recovery is all-or-nothing per acknowledged batch.
//                    Legacy mode (knob off) keeps independent per-shard
//                    commits and surfaces partial commits in the status.
//                    Single-shard batches take the zero-copy fast path in
//                    both modes: no prepare, no marker, no fence.
//   Get/Put/Del   -> routed to the owning shard.
//   Scan/iterate  -> per-shard streaming iterators merged by a k-way
//                    heap (reusing disk/merging_iterator), preserving
//                    PR 2's bounded-chunk memory ceiling per shard. In
//                    atomic mode multi-shard cursors open under the write
//                    fence with fresh master snapshots, so the initial
//                    chunk of every shard stream sits on one side of any
//                    cross-shard batch (DESIGN.md §8).
//   Open          -> reads the txn log, then recovers every shard
//                    (per-shard WAL replay honoring commit markers)
//                    before any shard serves traffic.
//
// shards == 1 is a pure pass-through: every operation forwards to the
// single FloDB untouched, so behavior and stats match a plain instance
// byte for byte (tested by sharded_store_test.cc).

#ifndef FLODB_CORE_SHARDED_STORE_H_
#define FLODB_CORE_SHARDED_STORE_H_

#include <atomic>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "flodb/common/synchronization.h"
#include "flodb/core/flodb.h"
#include "flodb/core/kv_store.h"
#include "flodb/core/options.h"
#include "flodb/core/shard_router.h"
#include "flodb/disk/wal.h"

namespace flodb {

class ShardedKVStore final : public KVStore {
 public:
  // Hard ceiling on the shard count (beyond it the per-shard budgets
  // degenerate and thread counts explode).
  static constexpr int kMaxShards = 256;

  // Opens (and recovers) options.shards FloDB instances. Rejects
  // shards < 1 or > kMaxShards; rounds a non-power-of-two count up to
  // the next power of two (see FloDbOptions::shards).
  static Status Open(const FloDbOptions& options, std::unique_ptr<ShardedKVStore>* out);
  ~ShardedKVStore() override;

  ShardedKVStore(const ShardedKVStore&) = delete;
  ShardedKVStore& operator=(const ShardedKVStore&) = delete;

  using KVStore::Get;
  using KVStore::Scan;

  Status Write(const WriteOptions& options, WriteBatch* batch) override;
  Status Get(const ReadOptions& options, const Slice& key, std::string* value) override;
  Status Scan(const ReadOptions& options, const Slice& low_key, const Slice& high_key,
              size_t limit, std::vector<std::pair<std::string, std::string>>* out) override;
  std::unique_ptr<ScanIterator> NewScanIterator(const ReadOptions& options, const Slice& low_key,
                                                const Slice& high_key) override;
  Status FlushAll() override;
  Status CompactRange(const Slice& begin, const Slice& end) override;

  // Rolled-up stats: the sum over shards. Note that a cross-shard Write
  // counts one batch_write PER TOUCHED SHARD (each shard's group commit
  // is real — its own WAL record and memory-component pass).
  StoreStats GetStats() const override;
  std::string Name() const override;

  // ---- introspection for tests, benchmarks and operators ----
  int NumShards() const { return static_cast<int>(shards_.size()); }
  const ShardRouter& router() const { return router_; }
  int ShardOf(const Slice& key) const { return router_.ShardOf(key); }
  // Per-shard stats (balance/skew diagnostics).
  StoreStats ShardStats(int shard) const { return shards_[shard]->GetStats(); }
  // Write() calls whose batch straddled shards and paid the split pass
  // (the split-rate diagnostic: high values suggest keys could be
  // grouped by locality before committing).
  uint64_t CrossShardWrites() const {
    return cross_shard_writes_.load(std::memory_order_relaxed);
  }
  FloDB* shard(int i) const { return shards_[i].get(); }
  // True when straddling batches commit through two-phase commit.
  bool AtomicMode() const { return atomic_mode_; }
  // Next cross-shard transaction id to be issued (recovery seeds it past
  // every id ever seen in a marker or prepare).
  uint64_t NextTxnId() const { return next_txn_id_.load(std::memory_order_relaxed); }

  // The subdirectory shard `i` lives in, given the configured base path.
  static std::string ShardPath(const std::string& base, int shard);
  // The router's commit-marker log, given the configured base path.
  static std::string TxnLogPath(const std::string& base);

 private:
  ShardedKVStore(int shards, size_t prefix_skip);

  std::unique_ptr<ScanIterator> NewMergedIterator(const ReadOptions& options,
                                                  const Slice& low_key, const Slice& high_key);

  // Two-phase commit for a straddling batch: per-shard prepares, one
  // durable commit marker, then apply-to-memory under the shared fence.
  // Any prepare/marker failure aborts with NOTHING visible.
  Status WriteAtomic(const WriteOptions& options, std::vector<WriteBatch>& splits);
  // Legacy per-shard commits (cross_shard_atomic = off): independent
  // group commits in shard order; a mid-batch failure reports exactly
  // which shards had already committed.
  Status WriteLegacy(const WriteOptions& options, std::vector<WriteBatch>& splits);

  // Appends (and, for sync, fsyncs) a commit marker through the txn log's
  // group-commit leader queue — the PR 5 WalCommit pattern: the queue
  // front appends every queued marker and issues ONE Sync covering the
  // group's sync writers.
  Status CommitMarker(uint64_t txn_id, bool sync) EXCLUDES(txn_log_mu_);

  // One queued CommitMarker awaiting the leader; lives on the caller's
  // stack.
  struct TxnMarkerWaiter {
    uint64_t txn_id = 0;
    bool sync = false;
    bool done = false;
    Status status;
  };

  const ShardRouter router_;
  std::vector<std::unique_ptr<FloDB>> shards_;

  // Cross-shard transaction state (DESIGN.md §8). The recovery context
  // outlives Open because each shard's options keep a borrowed pointer.
  bool atomic_mode_ = false;  // cross_shard_atomic && shards > 1
  bool wal_enabled_ = false;
  std::unique_ptr<CrossShardTxnRecovery> txn_recovery_;
  std::atomic<uint64_t> next_txn_id_{1};

  // Txn log (commit markers): append-only at runtime, truncated by the
  // next Open once shard recovery has consumed every marker. txn_log_mu_
  // protects the queue, the writer and txn_log_status_; the leader drops
  // the mutex for the Append+Sync phase (queue front keeps arrivals
  // followers).
  Mutex txn_log_mu_;
  CondVar txn_log_cv_;
  std::deque<TxnMarkerWaiter*> txn_log_queue_ GUARDED_BY(txn_log_mu_);
  // Written once by Open (single-threaded) and read by the destructor;
  // the leader reads the pointer under txn_log_mu_ but performs IO on it
  // unlocked — the queue front keeps every arrival a follower, so only
  // one thread touches the writer at a time.
  std::unique_ptr<WalWriter> txn_log_ GUARDED_BY(txn_log_mu_);
  // non-OK: marker log broken, atomic writes fail
  Status txn_log_status_ GUARDED_BY(txn_log_mu_);

  // The snapshot fence: the apply phase of a cross-shard commit holds it
  // shared for the whole multi-shard apply; a consistent merged scan
  // holds it unique while opening every shard cursor (each fetches its
  // first chunk inside), so no cursor set can observe half a batch.
  mutable SharedMutex txn_apply_gate_;

  mutable std::atomic<uint64_t> cross_shard_writes_{0};
  mutable std::atomic<uint64_t> txn_commits_{0};
  mutable std::atomic<uint64_t> txn_aborts_{0};
  mutable std::atomic<uint64_t> partial_batch_writes_{0};
};

}  // namespace flodb

#endif  // FLODB_CORE_SHARDED_STORE_H_
