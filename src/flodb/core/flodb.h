// FloDB: the paper's two-tier LSM memory component on top of the leveled
// disk component.
//
//   Write (batch) -> one WAL record, then one RCU read-side pass: every
//                  entry tries the Membuffer (hash table); spilled
//                  entries multi-insert into the Memtable under one
//                  contiguous seq range. Put/Delete are one-entry batches.
//   Get         -> MBF, IMM_MBF, MTB, IMM_MTB, DISK (freshest-first order)
//   Scan        -> master/piggyback protocol: swap + fully drain the
//                  Membuffer, take a scan seq, then iterate
//                  MTB+IMM_MTB+DISK validating entry seqs; bounded
//                  restarts, then a fallback pass. NewScanIterator
//                  streams the same protocol in bounded chunks.
//   Draining    -> background threads move Membuffer entries into the
//                  Memtable with skiplist multi-inserts.
//   Persisting  -> background thread swaps a full Memtable via RCU and
//                  writes it to the disk component.
//
// Concurrency notes: every user operation runs inside an RCU read-side
// section that pins the component pointers; the background threads swap
// pointers and reclaim after Synchronize(). No user operation ever blocks
// on a global lock.
//
// Consistency: master scans are linearizable with respect to updates;
// piggybacking scans (and piggyback restarts) are serializable (paper
// §4.4 "Correctness"); streaming iterators are serializable per chunk
// (DESIGN.md §4). Get/Put/Delete are linearizable per key, with one
// paper-inherited caveat on racing writers across a Memtable swap
// documented in DESIGN.md §6. Batch commits are durability-atomic but
// not isolation-atomic (DESIGN.md §2).

#ifndef FLODB_CORE_FLODB_H_
#define FLODB_CORE_FLODB_H_

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "flodb/common/synchronization.h"
#include "flodb/core/kv_store.h"
#include "flodb/core/options.h"
#include "flodb/disk/wal.h"
#include "flodb/mem/membuffer.h"
#include "flodb/mem/memtable.h"
#include "flodb/sync/rcu.h"

namespace flodb {

class FloDBScanIterator;
class ShardedKVStore;

class FloDB final : public KVStore {
 public:
  // Opens (and recovers, if WAL/manifest data exists) a FloDB instance.
  static Status Open(const FloDbOptions& options, std::unique_ptr<FloDB>* out);
  ~FloDB() override;

  FloDB(const FloDB&) = delete;
  FloDB& operator=(const FloDB&) = delete;

  // Default-options overloads from the base class stay visible next to
  // the explicit-options overrides below.
  using KVStore::Get;
  using KVStore::Scan;

  Status Write(const WriteOptions& options, WriteBatch* batch) override;
  Status Get(const ReadOptions& options, const Slice& key, std::string* value) override;
  Status Scan(const ReadOptions& options, const Slice& low_key, const Slice& high_key,
              size_t limit, std::vector<std::pair<std::string, std::string>>* out) override;
  std::unique_ptr<ScanIterator> NewScanIterator(const ReadOptions& options, const Slice& low_key,
                                                const Slice& high_key) override;
  Status FlushAll() override EXCLUDES(master_mu_);
  Status CompactRange(const Slice& begin, const Slice& end) override;
  StoreStats GetStats() const override;
  std::string Name() const override { return "FloDB"; }

  // One deterministic round of value-log garbage collection: if some
  // sealed vlog file crossed the garbage-ratio trigger, waits out
  // in-flight write pins, flushes memory (so no pointer into the victim
  // hides in a Memtable) and rewrites the victim's live records. The
  // background GC thread runs exactly this; tests call it directly.
  // *performed (optional) reports whether a victim was collected, and
  // *victim (optional) which vlog file was attempted — filled even on
  // failure so the GC loop can quarantine a victim that keeps failing
  // (e.g. an unreadable record). No-op OK when value separation is
  // disabled.
  Status CompactValueLogGarbage(bool* performed = nullptr,
                                std::vector<uint64_t>* victims_out = nullptr);

  // ---- introspection for tests and benchmarks ----
  uint64_t CurrentSeq() const { return global_seq_.load(std::memory_order_relaxed); }
  size_t MembufferLiveEntries() const;
  size_t MemtableBytes() const;
  const FloDbOptions& options() const { return options_; }

  // Blocks until the Membuffer has (momentarily) fully drained.
  void WaitUntilDrained();

 private:
  friend class FloDBScanIterator;
  // The router drives the shard-side half of cross-shard two-phase commit
  // (PrepareBatch / ApplyPreparedBatch / AbandonPrepare below).
  friend class ShardedKVStore;

  explicit FloDB(const FloDbOptions& options);

  // A batch entry decoded once per Write; slices point into the batch rep.
  struct BatchEntryRef {
    Slice key;
    Slice value;
    ValueType type;
  };

  // One collected scan result: the winning version's key, value and seq
  // (threaded through to ScanIterator::seq()).
  struct ScanEntry {
    std::string key;
    std::string value;
    uint64_t seq = 0;
  };

  // ---- background machinery (flodb_background.cc) ----
  void StartBackgroundThreads();
  void StopBackgroundThreads();
  void DrainLoop();
  void PersistLoop();
  void VlogGcLoop();
  // One unit of cooperative help on the immutable Membuffer; returns true
  // if a chunk was processed.
  bool HelpDrainImmMembuffer();
  // Inserts a collected batch into the Memtable (sort + seq + multi-insert).
  void InsertBatch(std::vector<DrainedEntry>* batch);
  void TriggerPersist();

  // ---- scan machinery (flodb_scan.cc) ----

  // A scan's election result: its snapshot seq and whether it holds the
  // master slot. Masters must EndScan to release the slot.
  struct ScanTicket {
    uint64_t seq = 0;
    bool is_master = false;
  };

  // Master election / piggybacking / seq reuse (Algorithm 3 entry). For
  // masters this performs the Membuffer swap + full drain and publishes
  // the fresh seq for piggybackers.
  ScanTicket BeginScan(SnapshotMode mode) EXCLUDES(scan_mu_);
  void EndScan(const ScanTicket& ticket) EXCLUDES(scan_mu_);
  // Swap + drain + fresh seq + publish — master setup, also used for a
  // full master restart.
  void EstablishMasterSeq(uint64_t* seq) EXCLUDES(master_mu_, scan_mu_);
  // A piggyback restart's fresh seq (no re-drain, §4.4).
  uint64_t FreshScanSeq() {
    return global_seq_.fetch_add(1, std::memory_order_acq_rel);
  }

  // One pass over MTB+IMM_MTB+DISK collecting up to `limit` live entries
  // from `start` (exclusive when `exclusive_start`). Returns true on
  // success, false if a seq violation demands a restart. `validate`
  // disables seq checks for the fallback path. kValuePointer entries are
  // resolved through the value log inside the pass (the disk iterator
  // pins its Version, which keeps the referenced vlog files alive); a
  // resolution failure is a hard error reported through *error with the
  // pass cut short (returning true — no restart would fix it).
  bool ScanPass(const Slice& start, const Slice& high_key, size_t limit, uint64_t scan_seq,
                bool validate, bool exclusive_start, std::vector<ScanEntry>* out,
                Status* error);
  // Liveness fallback: briefly freezes Memtable writers, then runs an
  // unvalidated pass.
  Status FallbackPass(const Slice& start, const Slice& high_key, size_t limit,
                      bool exclusive_start, std::vector<ScanEntry>* out);

  MemBuffer* NewMembuffer() const;
  // A Memtable wired (when value separation is on) to report in-place
  // superseded vlog pointers to the disk component's garbage accounting.
  MemTable* NewMemTable() const;
  // The DeadPointerFn both factories install; null when separation is off.
  DeadPointerFn MakeDeadPointerFn() const;

  // Swaps in a fresh Membuffer, synchronizes, and fully drains the old one
  // (with help from spilling writers). Returns the drained-out buffer,
  // still installed as imm_mbf_; nullptr when the Membuffer is disabled.
  // REQUIRES additionally: pause flags set by the caller.
  MemBuffer* SwapAndDrainMembufferLocked() REQUIRES(master_mu_);
  // Uninstalls and reclaims the immutable Membuffer after a grace period.
  // master_mu_ keeps cleanup serialized against rotations and master scans
  // (every caller is such a flow already).
  void CleanupImmMembuffer(MemBuffer* old) REQUIRES(master_mu_);
  bool HelpDrainChunk(MemBuffer* imm);

  // ---- value separation (DESIGN.md §13) ----

  // If the disk component separates values and `batch` holds one whose
  // size reaches the threshold, appends those values to the value log
  // and rebuilds the batch in *shadow with kValuePointer entries in
  // their place; *commit then points at the shadow (at the original
  // batch otherwise, with no copy made). The touched vlog files are
  // pinned and recorded in *pins — the caller MUST UnpinVlogFile each
  // after the batch reached the memory component (or failed for good),
  // so GC never retires a file whose only reference is still in flight.
  Status SeparateLargeValues(WriteBatch* batch, WriteBatch* shadow,
                             std::vector<uint64_t>* pins, WriteBatch** commit);

  // ---- durability pipeline (DESIGN.md §10) ----

  // One queued Write awaiting the group-commit leader. Lives on the
  // writer's stack; `rep` (and `participants`, for prepares) point into
  // the caller's frame, which outlives the commit.
  struct WalWaiter {
    Slice rep;
    uint32_t count = 0;
    bool sync = false;
    bool fill_stats = true;
    bool done = false;
    bool prepare = false;   // append a prepare record instead of a batch
    uint64_t txn_id = 0;    // prepare only
    Slice participants;     // prepare only: pre-encoded shard set
    int token_slot = -1;  // epoch slot of the apply token taken on success
    Status status;
  };

  // Commits `batch` to the WAL through the writer queue: the leader
  // appends every queued record and issues one Sync for the group's sync
  // writers (per-writer Sync when sync_coalesce is off). On OK the caller
  // holds an apply token in *token_slot and MUST release it (decrement
  // inflight_wal_applies_[slot]) once the batch is applied to memory.
  // With txn_id != 0 the record is a cross-shard PREPARE carrying the
  // participant set; prepares always sync (the router's commit marker
  // must never be durable ahead of a participant's prepare).
  Status WalCommit(const WriteOptions& options, WriteBatch* batch, int* token_slot,
                   uint64_t txn_id = 0, const Slice& participants = Slice()) EXCLUDES(wal_mu_);

  // Blocks while the Memtable is at its hard cap (2x target). Must run
  // BEFORE WalCommit: a writer holding an apply token must not block on
  // the persist thread, which waits on that token.
  void WaitForMemtableHeadroom();

  // Applies a WAL-committed batch to the memory component (Algorithm 2
  // generalized), releasing the apply token in `token_slot` (if >= 0) on
  // every path out. Never blocks on Memtable backpressure when holding a
  // token.
  Status ApplyBatchToMemory(const WriteOptions& options, WriteBatch* batch, int token_slot);

  // ---- cross-shard two-phase commit hooks (ShardedKVStore only) ----

  // Phase 1: durably logs this shard's slice of cross-shard transaction
  // `txn_id` as a prepare record (always fsync'd) WITHOUT applying it to
  // memory. On OK the caller holds an apply token in *token_slot and must
  // finish with exactly one of ApplyPreparedBatch / AbandonPrepare.
  Status PrepareBatch(const WriteOptions& options, WriteBatch* batch, uint64_t txn_id,
                      const Slice& participants, int* token_slot);
  // Phase 3: applies a prepared batch to memory and releases the token.
  Status ApplyPreparedBatch(const WriteOptions& options, WriteBatch* batch, int token_slot);
  // Abort: releases the token without applying. The prepare record stays
  // in the WAL as an orphan; with no commit marker it is discarded by
  // recovery, so the data is never visible.
  void AbandonPrepare(int token_slot);

  // Opens wal-<number> as the live log. On failure the WAL stays broken
  // (wal_ null, wal_status_ set) and writes fail.
  Status OpenWalLocked(uint64_t number) REQUIRES(wal_mu_);

  // Cheap probe called from the background loops: if the WAL is broken
  // (failed rotation / failed append or sync), retire any half-dead
  // writer and try to open a fresh log.
  void TryReopenWal() EXCLUDES(wal_mu_);

  Status RecoverFromWal();
  std::string WalFileName(uint64_t number) const;

  const FloDbOptions options_;
  const size_t memtable_target_bytes_;

  Rcu rcu_;
  std::atomic<uint64_t> global_seq_{1};

  // Component pointers, RCU-protected.
  std::atomic<MemBuffer*> mbf_{nullptr};
  std::atomic<MemBuffer*> imm_mbf_{nullptr};
  std::atomic<MemTable*> mtb_{nullptr};
  std::atomic<MemTable*> imm_mtb_{nullptr};

  std::unique_ptr<DiskComponent> disk_;  // null when persistence disabled

  // Algorithm 2/3 flags.
  std::atomic<bool> pause_writers_{false};
  std::atomic<bool> pause_draining_{false};

  // Helpers may collect from the immutable Membuffer only after the
  // post-swap grace period: a writer that resolved the old buffer before
  // the swap may still be completing an Add into a bucket, and a helper
  // collecting that bucket early would let the write vanish when the
  // buffer is destroyed.
  std::atomic<bool> imm_mbf_drain_ready_{false};

  // Serializes master scans, rotations and fallback scans. A pure
  // critical-section lock: the state it orders (component pointers, pause
  // flags) is atomics published under RCU, so nothing is GUARDED_BY it.
  Mutex master_mu_;

  // Scan coordination (piggybacking).
  Mutex scan_mu_;
  CondVar scan_cv_;
  bool master_busy_ GUARDED_BY(scan_mu_) = false;
  bool published_valid_ GUARDED_BY(scan_mu_) = false;
  uint64_t published_seq_ GUARDED_BY(scan_mu_) = 0;
  int chain_len_ GUARDED_BY(scan_mu_) = 0;
  int reuse_count_ GUARDED_BY(scan_mu_) = 0;
  int running_scans_ GUARDED_BY(scan_mu_) = 0;

  // Persist coordination. The cvs only block/wake; their predicates read
  // atomics (force_persist_, imm_mtb_), so no fields are guarded here.
  Mutex persist_mu_;
  CondVar persist_work_cv_;  // wakes the persist thread
  CondVar persist_done_cv_;  // signals swap completed
  std::atomic<bool> force_persist_{false};

  // WAL (only when options_.enable_wal). wal_mu_ protects the writer
  // queue, the live WalWriter, wal_number_, wal_epoch_, wal_status_ and
  // retired_wals_. The queue's front is the group-commit leader; it does
  // its IO holding wal_mu_, so rotation and appends never interleave.
  // The leader drops wal_mu_ for the Append+Sync phase (so followers can
  // keep enqueueing and form the next group behind a slow fsync) and
  // raises wal_leader_busy_ instead; rotation and repair wait it out.
  Mutex wal_mu_;
  CondVar wal_cv_;
  std::deque<WalWaiter*> wal_queue_ GUARDED_BY(wal_mu_);
  bool wal_leader_busy_ GUARDED_BY(wal_mu_) = false;
  std::unique_ptr<WalWriter> wal_ GUARDED_BY(wal_mu_);
  uint64_t wal_number_ GUARDED_BY(wal_mu_) = 0;
  // Rotations so far; parity picks the token slot.
  uint64_t wal_epoch_ GUARDED_BY(wal_mu_) = 0;
  uint64_t last_wal_repair_nanos_ GUARDED_BY(wal_mu_) = 0;  // TryReopenWal churn backoff
  // Non-OK: WAL broken, Write fails until repaired.
  Status wal_status_ GUARDED_BY(wal_mu_);
  std::atomic<bool> wal_broken_{false};  // lock-free mirror for repair probes

  // Rotated-out logs whose generation has not persisted yet. At each
  // rotation the persist thread moves the accumulated list into
  // pending_wal_deletes_ (everything retired up to that epoch boundary is
  // durable once THIS cycle's AddRun succeeds); a log retired mid-epoch —
  // a broken WAL repaired by TryReopenWal — lands in retired_wals_ AFTER
  // the snapshot and therefore waits for the NEXT cycle, because its
  // records live in the still-unpersisted current Memtable.
  std::vector<uint64_t> retired_wals_ GUARDED_BY(wal_mu_);
  // Thread-confined to the persist thread (moved out of retired_wals_
  // under wal_mu_, then consumed between rotations) — deliberately not
  // lock-guarded, so it carries no capability annotation.
  std::vector<uint64_t> pending_wal_deletes_;

  // Writers that committed to the WAL but have not finished applying to
  // the memory component, by rotation-epoch parity. The persist thread
  // drains the outgoing epoch's slot between rotating the log and
  // swapping Memtables, which bounds every WAL record's landing
  // generation and makes retired-log deletion safe.
  std::atomic<uint64_t> inflight_wal_applies_[2] = {0, 0};

  std::vector<std::thread> drain_threads_;
  std::thread persist_thread_;
  std::thread vlog_gc_thread_;  // started only when separation is enabled
  std::atomic<bool> stop_{false};

  // Vlog GC victims that failed kGcQuarantineThreshold consecutive
  // rounds (e.g. an unreadable record): skipped by the picker so a
  // permanently corrupt file cannot wedge the GC loop into hot-retrying
  // WaitVlogUnpinned + FlushAll + a failing compaction forever. Surfaced
  // via the vlog_gc_quarantined stat.
  mutable Mutex vlog_gc_mu_;
  std::set<uint64_t> vlog_gc_quarantined_ GUARDED_BY(vlog_gc_mu_);
  // victim -> consecutive failures
  std::map<uint64_t, int> vlog_gc_failures_ GUARDED_BY(vlog_gc_mu_);

  // Stats.
  mutable std::atomic<uint64_t> puts_{0}, gets_{0}, deletes_{0}, scans_{0};
  mutable std::atomic<uint64_t> batch_writes_{0}, batch_entries_{0};
  mutable std::atomic<uint64_t> wal_batch_records_{0}, iterator_scans_{0};
  mutable std::atomic<uint64_t> membuffer_adds_{0}, memtable_direct_adds_{0};
  mutable std::atomic<uint64_t> drained_entries_{0};
  mutable std::atomic<uint64_t> scan_restarts_{0}, fallback_scans_{0};
  mutable std::atomic<uint64_t> master_scans_{0}, piggyback_scans_{0};
  mutable std::atomic<uint64_t> membuffer_rotations_{0};
  mutable std::atomic<uint64_t> wal_syncs_{0};
  mutable std::atomic<uint64_t> group_commit_groups_{0}, group_commit_writers_{0};
  mutable std::atomic<uint64_t> persist_failures_{0};
  mutable std::atomic<uint64_t> txn_prepares_{0}, orphaned_prepares_{0};
  mutable std::atomic<uint64_t> vlog_gc_failed_rounds_{0};
};

}  // namespace flodb

#endif  // FLODB_CORE_FLODB_H_
