// FloDB: the paper's two-tier LSM memory component on top of the leveled
// disk component.
//
//   Put/Delete  -> Membuffer (hash table); full bucket -> Memtable
//   Get         -> MBF, IMM_MBF, MTB, IMM_MTB, DISK (freshest-first order)
//   Scan        -> master/piggyback protocol: swap + fully drain the
//                  Membuffer, take a scan seq, then iterate
//                  MTB+IMM_MTB+DISK validating entry seqs; bounded
//                  restarts, then fallbackScan.
//   Draining    -> background threads move Membuffer entries into the
//                  Memtable with skiplist multi-inserts.
//   Persisting  -> background thread swaps a full Memtable via RCU and
//                  writes it to the disk component.
//
// Concurrency notes: every user operation runs inside an RCU read-side
// section that pins the component pointers; the background threads swap
// pointers and reclaim after Synchronize(). No user operation ever blocks
// on a global lock.
//
// Consistency: master scans are linearizable with respect to updates;
// piggybacking scans (and piggyback restarts) are serializable (paper
// §4.4 "Correctness"). Get/Put/Delete are linearizable per key, with one
// paper-inherited caveat on racing writers across a Memtable swap
// documented in DESIGN.md.

#ifndef FLODB_CORE_FLODB_H_
#define FLODB_CORE_FLODB_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "flodb/core/kv_store.h"
#include "flodb/core/options.h"
#include "flodb/disk/wal.h"
#include "flodb/mem/membuffer.h"
#include "flodb/mem/memtable.h"
#include "flodb/sync/rcu.h"

namespace flodb {

class FloDB final : public KVStore {
 public:
  // Opens (and recovers, if WAL/manifest data exists) a FloDB instance.
  static Status Open(const FloDbOptions& options, std::unique_ptr<FloDB>* out);
  ~FloDB() override;

  FloDB(const FloDB&) = delete;
  FloDB& operator=(const FloDB&) = delete;

  Status Put(const Slice& key, const Slice& value) override;
  Status Delete(const Slice& key) override;
  Status Get(const Slice& key, std::string* value) override;
  Status Scan(const Slice& low_key, const Slice& high_key, size_t limit,
              std::vector<std::pair<std::string, std::string>>* out) override;
  Status FlushAll() override;
  StoreStats GetStats() const override;
  std::string Name() const override { return "FloDB"; }

  // ---- introspection for tests and benchmarks ----
  uint64_t CurrentSeq() const { return global_seq_.load(std::memory_order_relaxed); }
  size_t MembufferLiveEntries() const;
  size_t MemtableBytes() const;
  const FloDbOptions& options() const { return options_; }

  // Blocks until the Membuffer has (momentarily) fully drained.
  void WaitUntilDrained();

 private:
  explicit FloDB(const FloDbOptions& options);

  Status Update(const Slice& key, const Slice& value, ValueType type);

  // ---- background machinery (flodb_background.cc) ----
  void StartBackgroundThreads();
  void StopBackgroundThreads();
  void DrainLoop();
  void PersistLoop();
  // One unit of cooperative help on the immutable Membuffer; returns true
  // if a chunk was processed.
  bool HelpDrainImmMembuffer();
  // Inserts a collected batch into the Memtable (sort + seq + multi-insert).
  void InsertBatch(std::vector<DrainedEntry>* batch);
  // Swaps in a fresh Membuffer and fully drains the old one into the
  // Memtable. Caller must hold master_mu_. Used by scans and rotations.
  void RotateAndDrainMembufferLocked();
  void TriggerPersist();

  // ---- scan machinery (flodb_scan.cc) ----
  Status ScanImpl(const Slice& low_key, const Slice& high_key, size_t limit,
                  std::vector<std::pair<std::string, std::string>>* out);
  Status FallbackScan(const Slice& low_key, const Slice& high_key, size_t limit,
                      std::vector<std::pair<std::string, std::string>>* out);
  // One pass over MTB+IMM_MTB+DISK. Returns true on success, false if a
  // seq violation demands a restart. `validate` disables seq checks for
  // the fallback path.
  bool ScanOnce(const Slice& low_key, const Slice& high_key, size_t limit, uint64_t scan_seq,
                bool validate, std::vector<std::pair<std::string, std::string>>* out);

  MemBuffer* NewMembuffer() const;

  // Swaps in a fresh Membuffer, synchronizes, and fully drains the old one
  // (with help from spilling writers). Returns the drained-out buffer,
  // still installed as imm_mbf_; nullptr when the Membuffer is disabled.
  // REQUIRES: master_mu_ held and pause flags set by the caller.
  MemBuffer* SwapAndDrainMembufferLocked();
  // Uninstalls and reclaims the immutable Membuffer after a grace period.
  void CleanupImmMembuffer(MemBuffer* old);
  bool HelpDrainChunk(MemBuffer* imm);

  Status RecoverFromWal();
  std::string WalFileName(uint64_t number) const;

  const FloDbOptions options_;
  const size_t memtable_target_bytes_;

  Rcu rcu_;
  std::atomic<uint64_t> global_seq_{1};

  // Component pointers, RCU-protected.
  std::atomic<MemBuffer*> mbf_{nullptr};
  std::atomic<MemBuffer*> imm_mbf_{nullptr};
  std::atomic<MemTable*> mtb_{nullptr};
  std::atomic<MemTable*> imm_mtb_{nullptr};

  std::unique_ptr<DiskComponent> disk_;  // null when persistence disabled

  // Algorithm 2/3 flags.
  std::atomic<bool> pause_writers_{false};
  std::atomic<bool> pause_draining_{false};

  // Helpers may collect from the immutable Membuffer only after the
  // post-swap grace period: a writer that resolved the old buffer before
  // the swap may still be completing an Add into a bucket, and a helper
  // collecting that bucket early would let the write vanish when the
  // buffer is destroyed.
  std::atomic<bool> imm_mbf_drain_ready_{false};

  // Serializes master scans, rotations and fallback scans.
  std::mutex master_mu_;

  // Scan coordination (piggybacking).
  std::mutex scan_mu_;
  std::condition_variable scan_cv_;
  bool master_busy_ = false;
  bool published_valid_ = false;
  uint64_t published_seq_ = 0;
  int chain_len_ = 0;
  int reuse_count_ = 0;
  int running_scans_ = 0;

  // Persist coordination.
  std::mutex persist_mu_;
  std::condition_variable persist_work_cv_;  // wakes the persist thread
  std::condition_variable persist_done_cv_;  // signals swap completed
  std::atomic<bool> force_persist_{false};

  // WAL (only when options_.enable_wal).
  std::mutex wal_mu_;
  std::unique_ptr<WalWriter> wal_;
  uint64_t wal_number_ = 0;

  std::vector<std::thread> drain_threads_;
  std::thread persist_thread_;
  std::atomic<bool> stop_{false};

  // Stats.
  mutable std::atomic<uint64_t> puts_{0}, gets_{0}, deletes_{0}, scans_{0};
  mutable std::atomic<uint64_t> membuffer_adds_{0}, memtable_direct_adds_{0};
  mutable std::atomic<uint64_t> drained_entries_{0};
  mutable std::atomic<uint64_t> scan_restarts_{0}, fallback_scans_{0};
  mutable std::atomic<uint64_t> master_scans_{0}, piggyback_scans_{0};
  mutable std::atomic<uint64_t> rotations_{0};
};

}  // namespace flodb

#endif  // FLODB_CORE_FLODB_H_
