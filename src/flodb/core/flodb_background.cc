// FloDB background machinery: draining threads (Membuffer -> Memtable,
// Figure 6), the persist thread (Memtable -> disk with RCU switches,
// §4.2), cooperative drain helping, Membuffer rotation, and WAL recovery.

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "flodb/common/clock.h"
#include "flodb/core/flodb.h"
#include "flodb/core/memtable_iterator.h"

namespace flodb {

namespace {

constexpr auto kDrainIdleSleep = std::chrono::microseconds(100);
constexpr size_t kHelpDrainChunkBuckets = 64;

}  // namespace

void FloDB::StartBackgroundThreads() {
  stop_.store(false, std::memory_order_relaxed);
  if (options_.enable_membuffer) {
    for (int i = 0; i < std::max(1, options_.drain_threads); ++i) {
      drain_threads_.emplace_back([this] { DrainLoop(); });
    }
  }
  persist_thread_ = std::thread([this] { PersistLoop(); });
  if (disk_ != nullptr && disk_->SeparationEnabled()) {
    vlog_gc_thread_ = std::thread([this] { VlogGcLoop(); });
  }
}

void FloDB::StopBackgroundThreads() {
  stop_.store(true, std::memory_order_seq_cst);
  TriggerPersist();
  // The GC thread first: its rounds call FlushAll, which needs the
  // persist thread alive to make progress (FlushAll bails on stop_, but
  // an already-running flush finishes fastest with the thread present).
  if (vlog_gc_thread_.joinable()) {
    vlog_gc_thread_.join();
  }
  for (std::thread& t : drain_threads_) {
    t.join();
  }
  drain_threads_.clear();
  if (persist_thread_.joinable()) {
    persist_thread_.join();
  }
}

// Garbage-ratio-triggered vlog GC (DESIGN.md §13). Runs outside
// PersistLoop on purpose: a GC round flushes the memory component, and
// the persist thread cannot wait on itself. Polling is cheap —
// PickVlogGcVictims is a walk over the (small) live-vlog map. A round
// batches every file over the garbage ratio so the pointer-relocating
// table rewrites run once per table, not once per victim.
//
// Failed rounds back off exponentially (10ms doubling to 5s) instead of
// hot-retrying: a round failure usually means the victim is unreadable
// (e.g. a corrupt record), and each retry is expensive — it waits out
// pinned readers and flushes the whole memory component before the
// rewrite fails again. A victim that fails kGcQuarantineAfter rounds in
// a row is quarantined (skipped by the picker) so one broken file cannot
// starve GC of every other file; the quarantine is surfaced through
// StoreStats::vlog_gc_quarantined and lasts until the store reopens.
void FloDB::VlogGcLoop() {
  constexpr auto kGcIdleSleep = std::chrono::milliseconds(10);
  constexpr auto kGcCooldown = std::chrono::milliseconds(500);
  constexpr auto kGcMaxBackoff = std::chrono::milliseconds(5000);
  constexpr int kGcQuarantineAfter = 3;
  auto backoff = kGcIdleSleep;
  // Sleep in short stop_-checked slices so shutdown never waits out a
  // full backoff interval.
  auto interruptible_sleep = [this](std::chrono::milliseconds total) {
    constexpr auto kSlice = std::chrono::milliseconds(10);
    while (total.count() > 0 && !stop_.load(std::memory_order_relaxed)) {
      auto chunk = std::min(total, kSlice);
      std::this_thread::sleep_for(chunk);
      total -= chunk;
    }
  };
  while (!stop_.load(std::memory_order_relaxed)) {
    bool performed = false;
    std::vector<uint64_t> victims;
    Status s = CompactValueLogGarbage(&performed, &victims);
    if (!s.ok()) {
      vlog_gc_failed_rounds_.fetch_add(1, std::memory_order_relaxed);
      // A batched round does not know which victim broke it, so every
      // victim of the failed round takes a strike. An innocent file can
      // only be struck while some broken file stays eligible, and it
      // leaves quarantine at reopen — acceptable collateral for keeping
      // the retry loop bounded.
      size_t newly_quarantined = 0;
      {
        MutexLock lock(vlog_gc_mu_);
        for (uint64_t victim : victims) {
          if (++vlog_gc_failures_[victim] >= kGcQuarantineAfter) {
            vlog_gc_quarantined_.insert(victim);
            vlog_gc_failures_.erase(victim);
            ++newly_quarantined;
          }
        }
      }
      if (newly_quarantined > 0) {
        fprintf(stderr,
                "flodb: vlog GC round failed %d times over %zu file(s), "
                "quarantining %zu of them: %s\n",
                kGcQuarantineAfter, victims.size(), newly_quarantined,
                s.ToString().c_str());
      } else {
        fprintf(stderr, "flodb: vlog GC round failed (will retry): %s\n", s.ToString().c_str());
      }
      interruptible_sleep(backoff);
      backoff = std::min(backoff * 2, kGcMaxBackoff);
      continue;
    }
    backoff = kGcIdleSleep;
    if (performed && !victims.empty()) {
      {
        MutexLock lock(vlog_gc_mu_);
        for (uint64_t victim : victims) {
          vlog_gc_failures_.erase(victim);
        }
      }
      // Cooldown after a productive round. Under sustained overwrite
      // churn, files cross the garbage ratio continuously; back-to-back
      // rounds would relocate the same live records over and over, each
      // relocation at ratio r moving (1-r)/r live bytes per reclaimed
      // byte. Waiting lets garbage concentrate so the next round moves
      // fewer live bytes — transient space traded for write-amp. Manual
      // CompactValueLogGarbage callers (tests, drain loops) are not
      // throttled.
      interruptible_sleep(kGcCooldown);
    }
    if (!performed) {
      std::this_thread::sleep_for(kGcIdleSleep);
    }
  }
}

void FloDB::TriggerPersist() { persist_work_cv_.Signal(); }

// Sorts, stamps sequence numbers, and inserts a collected batch into the
// active Memtable — the step between "mark" and "remove" of the drain
// protocol. Runs in its own RCU section so the Memtable can't be retired
// from under it, and so that a Membuffer switch (scan) synchronizes after
// the whole batch has landed.
void FloDB::InsertBatch(std::vector<DrainedEntry>* batch) {
  if (batch->empty()) {
    return;
  }
  std::sort(batch->begin(), batch->end(),
            [](const DrainedEntry& a, const DrainedEntry& b) { return a.key < b.key; });

  RcuReadGuard guard(rcu_);
  MemTable* mtb = mtb_.load(std::memory_order_seq_cst);
  if (options_.use_multi_insert) {
    std::vector<ConcurrentSkipList::BatchEntry> entries;
    entries.reserve(batch->size());
    for (DrainedEntry& e : *batch) {
      e.seq = global_seq_.fetch_add(1, std::memory_order_acq_rel);
      entries.push_back(ConcurrentSkipList::BatchEntry{Slice(e.key), Slice(e.value), e.type,
                                                       e.seq});
    }
    mtb->MultiAdd(entries);
  } else {
    for (DrainedEntry& e : *batch) {
      e.seq = global_seq_.fetch_add(1, std::memory_order_acq_rel);
      mtb->Add(Slice(e.key), Slice(e.value), e.seq, e.type);
    }
  }
  drained_entries_.fetch_add(batch->size(), std::memory_order_relaxed);
}

void FloDB::DrainLoop() {
  std::vector<DrainedEntry> batch;
  batch.reserve(options_.drain_batch);
  uint64_t empty_passes = 0;

  while (!stop_.load(std::memory_order_relaxed)) {
    // A broken WAL (failed rotation/append/fsync) heals here: each drain
    // cycle retries opening a fresh log so writes resume without waiting
    // for the next Memtable swap. Lock-free no-op when healthy.
    TryReopenWal();

    if (pause_draining_.load(std::memory_order_seq_cst)) {
      std::this_thread::sleep_for(kDrainIdleSleep);
      continue;
    }

    // Orphaned-record pressure (in-place updates with changing sizes):
    // rotate the whole buffer. Checked BEFORE Memtable backpressure —
    // rotation bounds Membuffer memory and must not be starved by a
    // persistently full Memtable.
    bool pressure;
    {
      RcuReadGuard guard(rcu_);
      MemBuffer* mbf = mbf_.load(std::memory_order_seq_cst);
      pressure = mbf != nullptr && mbf->UnderMemoryPressure();
    }
    if (pressure) {
      if (master_mu_.try_lock()) {
        pause_draining_.store(true, std::memory_order_seq_cst);
        pause_writers_.store(true, std::memory_order_seq_cst);
        MemBuffer* old = SwapAndDrainMembufferLocked();
        pause_writers_.store(false, std::memory_order_seq_cst);
        pause_draining_.store(false, std::memory_order_seq_cst);
        CleanupImmMembuffer(old);
        membuffer_rotations_.fetch_add(1, std::memory_order_relaxed);
        master_mu_.unlock();
      }
      continue;
    }

    // Respect Memtable backpressure: draining into a full Memtable would
    // defeat the persist throttle.
    bool memtable_full;
    {
      RcuReadGuard guard(rcu_);
      memtable_full = mtb_.load(std::memory_order_seq_cst)->OverTarget();
    }
    if (memtable_full) {
      TriggerPersist();
      std::this_thread::sleep_for(kDrainIdleSleep);
      continue;
    }

    size_t collected = 0;
    {
      RcuReadGuard guard(rcu_);
      MemBuffer* mbf = mbf_.load(std::memory_order_seq_cst);
      if (mbf != nullptr) {
        const uint64_t partition = mbf->ClaimPartition();
        collected = mbf->CollectAndMark(partition, options_.drain_batch, &batch);
        if (collected > 0) {
          InsertBatch(&batch);
          mbf->FinishDrain(batch);
        }
      }
    }

    batch.clear();
    if (collected == 0) {
      // Nothing drainable in that partition; back off a little once the
      // whole table looks empty, but stay eager: "draining is a
      // continuously ongoing process" (§4.2).
      if (++empty_passes > 2 * (uint64_t{1} << options_.membuffer_partition_bits)) {
        std::this_thread::sleep_for(kDrainIdleSleep);
        empty_passes = 0;
      }
    } else {
      empty_passes = 0;
    }
  }
}

bool FloDB::HelpDrainChunk(MemBuffer* imm) {
  uint64_t begin, end;
  if (!imm->ClaimBucketRange(kHelpDrainChunkBuckets, &begin, &end)) {
    return false;
  }
  std::vector<DrainedEntry> batch;
  imm->CollectRange(begin, end, &batch);
  InsertBatch(&batch);
  imm->MarkBucketsDone(end - begin);
  return true;
}

bool FloDB::HelpDrainImmMembuffer() {
  RcuReadGuard guard(rcu_);
  if (!imm_mbf_drain_ready_.load(std::memory_order_seq_cst)) {
    return false;  // grace period still running: buckets may still mutate
  }
  MemBuffer* imm = imm_mbf_.load(std::memory_order_seq_cst);
  if (imm == nullptr || imm->FullyDrained()) {
    return false;
  }
  return HelpDrainChunk(imm);
}

MemBuffer* FloDB::SwapAndDrainMembufferLocked() {
  if (!options_.enable_membuffer) {
    return nullptr;
  }
  MemBuffer* old = mbf_.load(std::memory_order_seq_cst);
  imm_mbf_.store(old, std::memory_order_seq_cst);
  mbf_.store(NewMembuffer(), std::memory_order_seq_cst);
  // Wait for writers mid-Add on the old buffer (and mid-Add Memtable
  // writers whose seq must precede the scan seq) — the MemBufferRCUWait /
  // MemTableRCUWait pair of Algorithm 3, collapsed into one domain.
  rcu_.Synchronize();
  // The old buffer is now immutable; helpers may collect from it.
  imm_mbf_drain_ready_.store(true, std::memory_order_seq_cst);
  // Drain it completely. Spilling writers help via HelpDrainImmMembuffer.
  while (!old->FullyDrained()) {
    if (!HelpDrainChunk(old)) {
      // All chunks claimed; wait for helpers to finish inserting.
      std::this_thread::yield();
    }
  }
  return old;
}

void FloDB::CleanupImmMembuffer(MemBuffer* old) {
  if (old == nullptr) {
    return;
  }
  imm_mbf_drain_ready_.store(false, std::memory_order_seq_cst);
  imm_mbf_.store(nullptr, std::memory_order_seq_cst);
  // Readers (Gets, helpers) may still hold the pointer: grace period.
  rcu_.Synchronize();
  delete old;
}

void FloDB::PersistLoop() {
  while (true) {
    {
      MutexLock lock(persist_mu_);
      // The predicate reads only atomics, so the lambda needs no guarded
      // state (Clang analyzes lambdas as unannotated functions).
      persist_work_cv_.Await(persist_mu_, [&] {
        if (stop_.load(std::memory_order_relaxed)) {
          return true;
        }
        if (imm_mtb_.load(std::memory_order_seq_cst) != nullptr) {
          return true;  // a failed persist is pending retry below
        }
        MemTable* mtb = mtb_.load(std::memory_order_seq_cst);
        return mtb->OverTarget() ||
               (force_persist_.load(std::memory_order_seq_cst) && mtb->Count() > 0);
      });
    }
    if (stop_.load(std::memory_order_relaxed)) {
      return;
    }

    MemTable* old = imm_mtb_.load(std::memory_order_seq_cst);
    if (old == nullptr) {
      // ---- begin a new persist cycle ----
      // 1. Rotate the WAL FIRST — the epoch boundary. Rotating before the
      //    Memtable swap means a record appended to the NEW log can at
      //    worst land in the OLD Memtable (which is about to persist, so
      //    replaying it after a crash is a benign duplicate); the reverse
      //    order would let old-log records land in the new, unpersisted
      //    Memtable and be lost when the old log is deleted.
      int drain_slot = -1;
      if (options_.enable_wal) {
        MutexLock lock(wal_mu_);
        // A group-commit leader may be mid-Append/Sync with wal_mu_
        // dropped; swapping the log under it would tear the stream. The
        // wait loop is explicit: wal_leader_busy_ is guarded state, so it
        // must be read in this (annotated) scope, not in a lambda.
        while (wal_leader_busy_) {
          wal_cv_.Wait(wal_mu_);
        }
        if (wal_ != nullptr) {
          // Best-effort: an unsynced tail holds only sync=false acks,
          // which are allowed to be lost; AddRun below is what makes the
          // generation durable.
          wal_->Sync();
          wal_->Close();
          retired_wals_.push_back(wal_number_);
          wal_.reset();
        }
        drain_slot = static_cast<int>(wal_epoch_ & 1);
        ++wal_epoch_;  // writers from here on take the other token slot
        // Epoch-boundary snapshot: every log retired up to HERE holds
        // records of generations at or before the one this cycle
        // persists, so they become deletable when its AddRun succeeds.
        // Logs retired after this point (mid-epoch breaks) stay in
        // retired_wals_ for the next cycle — their records live in the
        // new, unpersisted generation.
        pending_wal_deletes_.insert(pending_wal_deletes_.end(), retired_wals_.begin(),
                                    retired_wals_.end());
        retired_wals_.clear();
        Status s = OpenWalLocked(wal_number_ + 1);
        if (!s.ok()) {
          // Satellite fix #1: the old behavior installed nothing and let
          // later writes append to the closed writer. Now the WAL is
          // marked broken (OpenWalLocked), Write fails with IOError, and
          // the next drain cycle retries the rotation (TryReopenWal).
          fprintf(stderr, "flodb: cannot rotate WAL (writes fail until repaired): %s\n",
                  s.ToString().c_str());
        }
      }

      // 2. Drain the outgoing epoch's writers: everyone acked against the
      //    retired log finishes applying BEFORE the swap, so every record
      //    in a retired log lives in a generation at or before the one we
      //    are about to persist. (Writers holding these tokens are exempt
      //    from Memtable backpressure, so this wait is bounded.)
      if (drain_slot >= 0) {
        while (inflight_wal_applies_[drain_slot].load(std::memory_order_acquire) != 0) {
          if (stop_.load(std::memory_order_relaxed)) {
            return;
          }
          std::this_thread::yield();
        }
      }

      // 3. Drain the Membuffer into the outgoing Memtable. An acked
      //    record's entry may still be Membuffer-resident — the apply
      //    token only covers its landing in the MEMORY COMPONENT, and
      //    the background drain moves it to the Memtable later, possibly
      //    into a generation AFTER the one whose persist deletes its
      //    log. Forcing the drain here (the FlushAll pattern) pins every
      //    pre-rotation entry into the generation this cycle persists,
      //    which is what makes the retired-log deletion below sound.
      //    WAL-less mode skips this and keeps the paper's fully
      //    decoupled persist.
      if (options_.enable_wal && options_.enable_membuffer) {
        MutexLock master(master_mu_);
        pause_draining_.store(true, std::memory_order_seq_cst);
        pause_writers_.store(true, std::memory_order_seq_cst);
        MemBuffer* old_mbf = SwapAndDrainMembufferLocked();
        pause_writers_.store(false, std::memory_order_seq_cst);
        pause_draining_.store(false, std::memory_order_seq_cst);
        CleanupImmMembuffer(old_mbf);
      }

      // 4. Switch Memtables: an RCU pointer swap that blocks no one
      //    (§4.2).
      old = mtb_.load(std::memory_order_seq_cst);
      imm_mtb_.store(old, std::memory_order_seq_cst);
      mtb_.store(NewMemTable(), std::memory_order_seq_cst);
      persist_done_cv_.SignalAll();

      // Grace period #1: all pending updates to `old` have completed
      // before we copy it to disk.
      rcu_.Synchronize();
    }
    // else: retrying a previously failed AddRun; `old` stayed installed
    // as imm_mtb_ (still serving reads) and its WAL was retained.

    Status persist_status;
    if (disk_ != nullptr) {
      MemTableIterator iter(old);
      persist_status = disk_->AddRun(&iter);
    }
    // else: memory-component-only mode (Figure 17) — drop the data.

    const bool aborted = persist_status.IsAborted();  // shutdown mid-stall
    if (!persist_status.ok() && !aborted) {
      // Satellite fix #2: a failed persist used to delete the old WAL
      // anyway, dropping acknowledged data. Now the Memtable stays
      // installed (readable) for a retry, and every retired log survives
      // for recovery.
      persist_failures_.fetch_add(1, std::memory_order_relaxed);
      fprintf(stderr, "flodb: persist failed (will retry; WAL retained): %s\n",
              persist_status.ToString().c_str());
      MutexLock lock(persist_mu_);
      persist_work_cv_.AwaitFor(persist_mu_, std::chrono::milliseconds(10),
                                [&] { return stop_.load(std::memory_order_relaxed); });
      continue;
    }

    imm_mtb_.store(nullptr, std::memory_order_seq_cst);
    persist_done_cv_.SignalAll();

    // Grace period #2: no reader still sees the immutable Memtable.
    rcu_.Synchronize();
    delete old;

    if (options_.enable_wal && !aborted) {
      // Every record in a log snapshotted at this cycle's rotation
      // reached a generation that has now persisted (the pre-swap epoch
      // drain is what guarantees this). On Aborted the data never hit
      // disk: keep the logs for the next recovery.
      for (uint64_t number : pending_wal_deletes_) {
        options_.disk.env->RemoveFile(WalFileName(number));
      }
      pending_wal_deletes_.clear();
    }
  }
}

Status FloDB::OpenWalLocked(uint64_t number) {
  std::unique_ptr<WritableFile> file;
  Status s = options_.disk.env->NewWritableFile(WalFileName(number), &file);
  if (!s.ok()) {
    wal_status_ = s;
    wal_broken_.store(true, std::memory_order_release);
    return s;
  }
  wal_number_ = number;
  wal_ = std::make_unique<WalWriter>(std::move(file));
  wal_status_ = Status::OK();
  wal_broken_.store(false, std::memory_order_release);
  return Status::OK();
}

void FloDB::TryReopenWal() {
  if (!options_.enable_wal || !wal_broken_.load(std::memory_order_acquire)) {
    return;
  }
  MutexLock lock(wal_mu_);
  while (wal_leader_busy_) {
    wal_cv_.Wait(wal_mu_);
  }
  if (!wal_broken_.load(std::memory_order_acquire)) {
    return;  // lost the race to another repairer
  }
  // Backoff: during a sustained fsync outage every failed write probes
  // here, and each "successful" repair mints a fresh log whose first
  // fsync breaks it again — without a floor that is one wal-*.log per
  // failed write. One attempt per 50ms bounds the churn while keeping
  // recovery sub-second once the device heals.
  constexpr uint64_t kRepairBackoffNanos = 50ull * 1000 * 1000;
  const uint64_t now = NowNanos();
  if (now - last_wal_repair_nanos_ < kRepairBackoffNanos) {
    return;
  }
  last_wal_repair_nanos_ = now;
  if (wal_ != nullptr) {
    // Broken mid-stream (failed append or fsync): retire the damaged log
    // — its synced prefix still matters for recovery — and start fresh.
    wal_->Close();
    retired_wals_.push_back(wal_number_);
    wal_.reset();
  }
  OpenWalLocked(wal_number_ + 1);
}

std::string FloDB::WalFileName(uint64_t number) const {
  char buf[32];
  snprintf(buf, sizeof(buf), "/wal-%06llu.log", static_cast<unsigned long long>(number));
  return options_.disk.path + buf;
}

Status FloDB::RecoverFromWal() {
  Env* env = options_.disk.env;
  env->CreateDir(options_.disk.path);

  std::vector<std::string> children;
  env->GetChildren(options_.disk.path, &children);
  std::vector<uint64_t> wal_numbers;
  for (const std::string& name : children) {
    uint64_t number;
    if (sscanf(name.c_str(), "wal-%" SCNu64 ".log", &number) == 1) {
      wal_numbers.push_back(number);
    }
  }
  std::sort(wal_numbers.begin(), wal_numbers.end());

  uint64_t replayed = 0;
  MemTable* mtb = mtb_.load(std::memory_order_relaxed);
  for (uint64_t number : wal_numbers) {
    std::unique_ptr<SequentialFile> file;
    Status s = env->NewSequentialFile(WalFileName(number), &file);
    if (!s.ok()) {
      return s;
    }
    WalReader reader(std::move(file));
    s = reader.ReplayUpdates(
        [&](const Slice& key, const Slice& value, ValueType type) {
          if (type == ValueType::kValuePointer && disk_ != nullptr) {
            // A pointer record can outlive its vlog bytes only for a
            // write that was never durably acked (sync writers get the
            // vlog fsync'd before the WAL record — docs/STORAGE.md §10),
            // e.g. when OS writeback persisted the WAL page but not the
            // vlog page before a power cut. Losing such a write is
            // legal; replaying a dangling pointer is not. Verify and
            // drop the strays (CRC framing catches torn targets).
            std::string resolved;
            if (!disk_->ResolveValuePointer(value, &resolved).ok()) {
              return;
            }
          }
          const uint64_t seq = global_seq_.fetch_add(1, std::memory_order_relaxed);
          mtb->Add(key, value, seq, type);
          ++replayed;
        },
        [&](uint64_t txn_id, const std::vector<uint32_t>& /*participants*/,
            uint32_t /*count*/, const Slice& /*entries*/) {
          // Prepare records replay (at their WAL position) only when the
          // router vouches for a durable commit marker. A missing marker
          // means the transaction was never acknowledged: the prepare is
          // an orphan and is discarded whole. A marker whose prepare is
          // MISSING here is also fine — that shard slice already
          // persisted to the disk component and its log was deleted.
          CrossShardTxnRecovery* ctx = options_.txn_recovery;
          if (ctx != nullptr && txn_id > ctx->max_txn_id_seen) {
            ctx->max_txn_id_seen = txn_id;
          }
          const bool committed = ctx != nullptr && ctx->IsCommitted(txn_id);
          if (!committed) {
            orphaned_prepares_.fetch_add(1, std::memory_order_relaxed);
          }
          return committed;
        });
    if (!s.ok()) {
      return s;  // mid-log corruption: refuse to open on damaged state
    }
  }

  // Make the recovered state durable, then retire the old logs.
  if (replayed > 0 && disk_ != nullptr) {
    MemTableIterator iter(mtb);
    Status s = disk_->AddRun(&iter);
    if (!s.ok()) {
      return s;
    }
    mtb_.store(NewMemTable(), std::memory_order_relaxed);
    delete mtb;
  }
  for (uint64_t number : wal_numbers) {
    env->RemoveFile(WalFileName(number));
  }

  MutexLock lock(wal_mu_);
  return OpenWalLocked(wal_numbers.empty() ? 1 : wal_numbers.back() + 1);
}

}  // namespace flodb
