// FloDB background machinery: draining threads (Membuffer -> Memtable,
// Figure 6), the persist thread (Memtable -> disk with RCU switches,
// §4.2), cooperative drain helping, Membuffer rotation, and WAL recovery.

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "flodb/core/flodb.h"
#include "flodb/core/memtable_iterator.h"

namespace flodb {

namespace {

constexpr auto kDrainIdleSleep = std::chrono::microseconds(100);
constexpr size_t kHelpDrainChunkBuckets = 64;

}  // namespace

void FloDB::StartBackgroundThreads() {
  stop_.store(false, std::memory_order_relaxed);
  if (options_.enable_membuffer) {
    for (int i = 0; i < std::max(1, options_.drain_threads); ++i) {
      drain_threads_.emplace_back([this] { DrainLoop(); });
    }
  }
  persist_thread_ = std::thread([this] { PersistLoop(); });
}

void FloDB::StopBackgroundThreads() {
  stop_.store(true, std::memory_order_seq_cst);
  TriggerPersist();
  for (std::thread& t : drain_threads_) {
    t.join();
  }
  drain_threads_.clear();
  if (persist_thread_.joinable()) {
    persist_thread_.join();
  }
}

void FloDB::TriggerPersist() { persist_work_cv_.notify_one(); }

// Sorts, stamps sequence numbers, and inserts a collected batch into the
// active Memtable — the step between "mark" and "remove" of the drain
// protocol. Runs in its own RCU section so the Memtable can't be retired
// from under it, and so that a Membuffer switch (scan) synchronizes after
// the whole batch has landed.
void FloDB::InsertBatch(std::vector<DrainedEntry>* batch) {
  if (batch->empty()) {
    return;
  }
  std::sort(batch->begin(), batch->end(),
            [](const DrainedEntry& a, const DrainedEntry& b) { return a.key < b.key; });

  RcuReadGuard guard(rcu_);
  MemTable* mtb = mtb_.load(std::memory_order_seq_cst);
  if (options_.use_multi_insert) {
    std::vector<ConcurrentSkipList::BatchEntry> entries;
    entries.reserve(batch->size());
    for (DrainedEntry& e : *batch) {
      e.seq = global_seq_.fetch_add(1, std::memory_order_acq_rel);
      entries.push_back(ConcurrentSkipList::BatchEntry{Slice(e.key), Slice(e.value), e.type,
                                                       e.seq});
    }
    mtb->MultiAdd(entries);
  } else {
    for (DrainedEntry& e : *batch) {
      e.seq = global_seq_.fetch_add(1, std::memory_order_acq_rel);
      mtb->Add(Slice(e.key), Slice(e.value), e.seq, e.type);
    }
  }
  drained_entries_.fetch_add(batch->size(), std::memory_order_relaxed);
}

void FloDB::DrainLoop() {
  std::vector<DrainedEntry> batch;
  batch.reserve(options_.drain_batch);
  uint64_t empty_passes = 0;

  while (!stop_.load(std::memory_order_relaxed)) {
    if (pause_draining_.load(std::memory_order_seq_cst)) {
      std::this_thread::sleep_for(kDrainIdleSleep);
      continue;
    }

    // Orphaned-record pressure (in-place updates with changing sizes):
    // rotate the whole buffer. Checked BEFORE Memtable backpressure —
    // rotation bounds Membuffer memory and must not be starved by a
    // persistently full Memtable.
    bool pressure;
    {
      RcuReadGuard guard(rcu_);
      MemBuffer* mbf = mbf_.load(std::memory_order_seq_cst);
      pressure = mbf != nullptr && mbf->UnderMemoryPressure();
    }
    if (pressure) {
      std::unique_lock<std::mutex> master(master_mu_, std::try_to_lock);
      if (master.owns_lock()) {
        pause_draining_.store(true, std::memory_order_seq_cst);
        pause_writers_.store(true, std::memory_order_seq_cst);
        MemBuffer* old = SwapAndDrainMembufferLocked();
        pause_writers_.store(false, std::memory_order_seq_cst);
        pause_draining_.store(false, std::memory_order_seq_cst);
        CleanupImmMembuffer(old);
        membuffer_rotations_.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }

    // Respect Memtable backpressure: draining into a full Memtable would
    // defeat the persist throttle.
    bool memtable_full;
    {
      RcuReadGuard guard(rcu_);
      memtable_full = mtb_.load(std::memory_order_seq_cst)->OverTarget();
    }
    if (memtable_full) {
      TriggerPersist();
      std::this_thread::sleep_for(kDrainIdleSleep);
      continue;
    }

    size_t collected = 0;
    {
      RcuReadGuard guard(rcu_);
      MemBuffer* mbf = mbf_.load(std::memory_order_seq_cst);
      if (mbf != nullptr) {
        const uint64_t partition = mbf->ClaimPartition();
        collected = mbf->CollectAndMark(partition, options_.drain_batch, &batch);
        if (collected > 0) {
          InsertBatch(&batch);
          mbf->FinishDrain(batch);
        }
      }
    }

    batch.clear();
    if (collected == 0) {
      // Nothing drainable in that partition; back off a little once the
      // whole table looks empty, but stay eager: "draining is a
      // continuously ongoing process" (§4.2).
      if (++empty_passes > 2 * (uint64_t{1} << options_.membuffer_partition_bits)) {
        std::this_thread::sleep_for(kDrainIdleSleep);
        empty_passes = 0;
      }
    } else {
      empty_passes = 0;
    }
  }
}

bool FloDB::HelpDrainChunk(MemBuffer* imm) {
  uint64_t begin, end;
  if (!imm->ClaimBucketRange(kHelpDrainChunkBuckets, &begin, &end)) {
    return false;
  }
  std::vector<DrainedEntry> batch;
  imm->CollectRange(begin, end, &batch);
  InsertBatch(&batch);
  imm->MarkBucketsDone(end - begin);
  return true;
}

bool FloDB::HelpDrainImmMembuffer() {
  RcuReadGuard guard(rcu_);
  if (!imm_mbf_drain_ready_.load(std::memory_order_seq_cst)) {
    return false;  // grace period still running: buckets may still mutate
  }
  MemBuffer* imm = imm_mbf_.load(std::memory_order_seq_cst);
  if (imm == nullptr || imm->FullyDrained()) {
    return false;
  }
  return HelpDrainChunk(imm);
}

MemBuffer* FloDB::SwapAndDrainMembufferLocked() {
  if (!options_.enable_membuffer) {
    return nullptr;
  }
  MemBuffer* old = mbf_.load(std::memory_order_seq_cst);
  imm_mbf_.store(old, std::memory_order_seq_cst);
  mbf_.store(NewMembuffer(), std::memory_order_seq_cst);
  // Wait for writers mid-Add on the old buffer (and mid-Add Memtable
  // writers whose seq must precede the scan seq) — the MemBufferRCUWait /
  // MemTableRCUWait pair of Algorithm 3, collapsed into one domain.
  rcu_.Synchronize();
  // The old buffer is now immutable; helpers may collect from it.
  imm_mbf_drain_ready_.store(true, std::memory_order_seq_cst);
  // Drain it completely. Spilling writers help via HelpDrainImmMembuffer.
  while (!old->FullyDrained()) {
    if (!HelpDrainChunk(old)) {
      // All chunks claimed; wait for helpers to finish inserting.
      std::this_thread::yield();
    }
  }
  return old;
}

void FloDB::CleanupImmMembuffer(MemBuffer* old) {
  if (old == nullptr) {
    return;
  }
  imm_mbf_drain_ready_.store(false, std::memory_order_seq_cst);
  imm_mbf_.store(nullptr, std::memory_order_seq_cst);
  // Readers (Gets, helpers) may still hold the pointer: grace period.
  rcu_.Synchronize();
  delete old;
}

void FloDB::PersistLoop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(persist_mu_);
      persist_work_cv_.wait(lock, [&] {
        if (stop_.load(std::memory_order_relaxed)) {
          return true;
        }
        if (imm_mtb_.load(std::memory_order_seq_cst) != nullptr) {
          return false;  // previous persist still in flight
        }
        MemTable* mtb = mtb_.load(std::memory_order_seq_cst);
        return mtb->OverTarget() ||
               (force_persist_.load(std::memory_order_seq_cst) && mtb->Count() > 0);
      });
    }
    if (stop_.load(std::memory_order_relaxed)) {
      return;
    }

    // Switch Memtables: an RCU pointer swap that blocks no one (§4.2).
    MemTable* old = mtb_.load(std::memory_order_seq_cst);
    imm_mtb_.store(old, std::memory_order_seq_cst);
    mtb_.store(new MemTable(memtable_target_bytes_), std::memory_order_seq_cst);

    // Rotate the WAL so the old log can be dropped once `old` is durable.
    uint64_t old_wal = 0;
    if (options_.enable_wal) {
      std::lock_guard<std::mutex> lock(wal_mu_);
      wal_->Sync();
      wal_->Close();
      old_wal = wal_number_;
      ++wal_number_;
      std::unique_ptr<WritableFile> file;
      Status s = options_.disk.env->NewWritableFile(WalFileName(wal_number_), &file);
      if (s.ok()) {
        wal_ = std::make_unique<WalWriter>(std::move(file));
      } else {
        fprintf(stderr, "flodb: cannot rotate WAL: %s\n", s.ToString().c_str());
      }
    }
    persist_done_cv_.notify_all();

    // Grace period #1: all pending updates to `old` have completed before
    // we copy it to disk.
    rcu_.Synchronize();

    if (disk_ != nullptr) {
      MemTableIterator iter(old);
      Status s = disk_->AddRun(&iter);
      if (!s.ok() && !s.IsAborted()) {
        fprintf(stderr, "flodb: persist failed: %s\n", s.ToString().c_str());
      }
    }
    // else: memory-component-only mode (Figure 17) — drop the data.

    imm_mtb_.store(nullptr, std::memory_order_seq_cst);
    persist_done_cv_.notify_all();

    // Grace period #2: no reader still sees the immutable Memtable.
    rcu_.Synchronize();
    delete old;

    if (options_.enable_wal && old_wal != 0) {
      options_.disk.env->RemoveFile(WalFileName(old_wal));
    }
  }
}

std::string FloDB::WalFileName(uint64_t number) const {
  char buf[32];
  snprintf(buf, sizeof(buf), "/wal-%06llu.log", static_cast<unsigned long long>(number));
  return options_.disk.path + buf;
}

Status FloDB::RecoverFromWal() {
  Env* env = options_.disk.env;
  env->CreateDir(options_.disk.path);

  std::vector<std::string> children;
  env->GetChildren(options_.disk.path, &children);
  std::vector<uint64_t> wal_numbers;
  for (const std::string& name : children) {
    uint64_t number;
    if (sscanf(name.c_str(), "wal-%" SCNu64 ".log", &number) == 1) {
      wal_numbers.push_back(number);
    }
  }
  std::sort(wal_numbers.begin(), wal_numbers.end());

  uint64_t replayed = 0;
  MemTable* mtb = mtb_.load(std::memory_order_relaxed);
  for (uint64_t number : wal_numbers) {
    std::unique_ptr<SequentialFile> file;
    Status s = env->NewSequentialFile(WalFileName(number), &file);
    if (!s.ok()) {
      return s;
    }
    WalReader reader(std::move(file));
    s = reader.ReplayUpdates([&](const Slice& key, const Slice& value, ValueType type) {
      const uint64_t seq = global_seq_.fetch_add(1, std::memory_order_relaxed);
      mtb->Add(key, value, seq, type);
      ++replayed;
    });
    if (!s.ok()) {
      return s;  // mid-log corruption: refuse to open on damaged state
    }
  }

  // Make the recovered state durable, then retire the old logs.
  if (replayed > 0 && disk_ != nullptr) {
    MemTableIterator iter(mtb);
    Status s = disk_->AddRun(&iter);
    if (!s.ok()) {
      return s;
    }
    mtb_.store(new MemTable(memtable_target_bytes_), std::memory_order_relaxed);
    delete mtb;
  }
  for (uint64_t number : wal_numbers) {
    env->RemoveFile(WalFileName(number));
  }

  wal_number_ = wal_numbers.empty() ? 1 : wal_numbers.back() + 1;
  std::unique_ptr<WritableFile> file;
  Status s = env->NewWritableFile(WalFileName(wal_number_), &file);
  if (!s.ok()) {
    return s;
  }
  wal_ = std::make_unique<WalWriter>(std::move(file));
  return Status::OK();
}

}  // namespace flodb
