// FloDB scan protocol (Algorithm 3, §4.4) and the v2 streaming iterator.
//
// Master scan: pause draining and Memtable writers, swap in a fresh
// Membuffer, fully drain the old one (writers help), take a scan sequence
// number, release everyone, publish the number for piggybackers, then
// iterate Memtable + immutable Memtable + disk validating per-entry
// sequence numbers. An entry newer than the scan number means an in-place
// update raced the scan: restart; after `scan_restart_threshold` restarts
// fall back to a pass that briefly blocks Memtable writers (liveness).
//
// Piggybacking scan: a scan that begins while another scan runs reuses the
// published sequence number (no re-drain); chains are bounded by
// `scan_piggyback_chain_limit`. Piggyback restarts take a fresh sequence
// number without re-draining. Master scans are linearizable w.r.t.
// updates (linearization point: the Membuffer pointer swap); piggybacked
// scans are serializable.
//
// Streaming iterators (NewScanIterator) run the same protocol in bounded
// chunks: the election happens once at open (honoring the snapshot_mode
// hint), each fetch collects up to scan_chunk_size live entries resuming
// just past the last emitted key, and a seq violation restarts only the
// current chunk with a fresh seq — serializable per chunk, never moving
// backwards in time (DESIGN.md §4). Iterators release the master slot as
// soon as their seq is established so a long-lived stream never blocks
// other scans. The legacy vector Scan is a single-chunk iterator, which
// preserves its original semantics exactly (including the re-drain on
// master restarts, possible only before anything was emitted).

#include "flodb/core/flodb.h"

#include <algorithm>

#include "flodb/core/memtable_iterator.h"
#include "flodb/disk/merging_iterator.h"

namespace flodb {

bool FloDB::ScanPass(const Slice& start, const Slice& high_key, size_t limit, uint64_t scan_seq,
                     bool validate, bool exclusive_start, std::vector<ScanEntry>* out,
                     Status* error) {
  out->clear();
  *error = Status::OK();
  // The RCU section pins both Memtables for the whole pass; the disk
  // iterator pins its own Version internally.
  RcuReadGuard guard(rcu_);
  std::vector<std::unique_ptr<Iterator>> children;
  MemTable* mtb = mtb_.load(std::memory_order_seq_cst);
  children.push_back(NewMemTableIterator(mtb));
  MemTable* imm = imm_mtb_.load(std::memory_order_seq_cst);
  if (imm != nullptr) {
    children.push_back(NewMemTableIterator(imm));
  }
  if (disk_ != nullptr) {
    children.push_back(disk_->NewIterator());
  }
  std::unique_ptr<Iterator> merged = NewMergingIterator(std::move(children));

  std::string last_key;
  bool has_last = false;
  if (exclusive_start) {
    // Seeding the dedup state with the resume key skips every remaining
    // version of it.
    last_key.assign(start.data(), start.size());
    has_last = true;
  }
  for (merged->Seek(start); merged->Valid(); merged->Next()) {
    if (!high_key.empty() && merged->key().compare(high_key) >= 0) {
      break;
    }
    if (validate && merged->seq() > scan_seq) {
      // A value in our range was written after the scan began; the old
      // value is gone (in-place update), so the snapshot is broken.
      return false;
    }
    if (has_last && merged->key() == Slice(last_key)) {
      continue;  // older version of an already-emitted user key
    }
    last_key.assign(merged->key().data(), merged->key().size());
    has_last = true;
    if (merged->type() == ValueType::kTombstone) {
      continue;
    }
    std::string value;
    if (merged->type() == ValueType::kValuePointer) {
      // Safe against GC here: the disk iterator's pinned Version keeps
      // its referenced vlog files alive (file GC unions vlog refs over
      // EVERY pinned version), and in-memory pointers cannot lose their
      // target while this RCU section blocks the persist grace period.
      Status rs = disk_ != nullptr
                      ? disk_->ResolveValuePointer(merged->value(), &value)
                      : Status::Corruption("value pointer without a disk component");
      if (!rs.ok()) {
        *error = rs;
        return true;
      }
    } else {
      value = merged->value().ToString();
    }
    out->push_back(ScanEntry{last_key, std::move(value), merged->seq()});
    if (limit != 0 && out->size() >= limit) {
      break;
    }
  }
  return true;
}

Status FloDB::FallbackPass(const Slice& start, const Slice& high_key, size_t limit,
                           bool exclusive_start, std::vector<ScanEntry>* out) {
  fallback_scans_.fetch_add(1, std::memory_order_relaxed);
  MutexLock master(master_mu_);
  pause_writers_.store(true, std::memory_order_seq_cst);
  pause_draining_.store(true, std::memory_order_seq_cst);
  // In-flight Memtable writes complete; afterwards the Memtable is frozen
  // for the duration (writers park in the Membuffer or spin).
  rcu_.Synchronize();
  const uint64_t seq = FreshScanSeq();
  Status error;
  ScanPass(start, high_key, limit, seq, /*validate=*/false, exclusive_start, out, &error);
  pause_writers_.store(false, std::memory_order_seq_cst);
  pause_draining_.store(false, std::memory_order_seq_cst);
  return error;
}

void FloDB::EstablishMasterSeq(uint64_t* seq) {
  {
    MutexLock master(master_mu_);
    pause_draining_.store(true, std::memory_order_seq_cst);
    pause_writers_.store(true, std::memory_order_seq_cst);
    MemBuffer* old = SwapAndDrainMembufferLocked();
    *seq = FreshScanSeq();
    pause_writers_.store(false, std::memory_order_seq_cst);
    pause_draining_.store(false, std::memory_order_seq_cst);
    {
      MutexLock lock(scan_mu_);
      published_seq_ = *seq;
      published_valid_ = true;
      chain_len_ = 0;
      reuse_count_ = 0;
    }
    scan_cv_.SignalAll();
    CleanupImmMembuffer(old);
  }
}

FloDB::ScanTicket FloDB::BeginScan(SnapshotMode mode) {
  ScanTicket ticket;
  {
    MutexLock lock(scan_mu_);
    while (true) {
      if (mode != SnapshotMode::kMaster && published_valid_) {
        // Piggyback: another scan is running and its chain has budget.
        if (running_scans_ > 0 && chain_len_ < options_.scan_piggyback_chain_limit) {
          ticket.seq = published_seq_;
          ++chain_len_;
          ++running_scans_;
          piggyback_scans_.fetch_add(1, std::memory_order_relaxed);
          return ticket;
        }
        // Low-concurrency reuse (§4.4 optimization): no scan running, but
        // a recent master seq with remaining budget — skip the full
        // drain. The kPiggyback hint accepts the (serializable) reused
        // seq unconditionally.
        if (reuse_count_ < options_.scan_master_reuse_limit ||
            mode == SnapshotMode::kPiggyback) {
          ticket.seq = published_seq_;
          ++reuse_count_;
          ++running_scans_;
          piggyback_scans_.fetch_add(1, std::memory_order_relaxed);
          return ticket;
        }
      }
      if (!master_busy_) {
        master_busy_ = true;
        ticket.is_master = true;
        ++running_scans_;
        master_scans_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      scan_cv_.Wait(scan_mu_);
    }
  }
  EstablishMasterSeq(&ticket.seq);
  return ticket;
}

void FloDB::EndScan(const ScanTicket& ticket) {
  {
    MutexLock lock(scan_mu_);
    --running_scans_;
    if (ticket.is_master) {
      master_busy_ = false;
    }
    if (running_scans_ == 0 && options_.scan_master_reuse_limit == 0) {
      // Strict mode: sequence numbers don't outlive the chain. With reuse
      // enabled the seq stays published until its reuse budget runs out.
      published_valid_ = false;
    }
  }
  scan_cv_.SignalAll();
}

// The streaming cursor over the master/piggyback machinery. One election
// at construction; each FetchChunk is one validated pass resuming after
// the last emitted key. `hold_ticket` keeps the election slot for the
// cursor's lifetime — used by the legacy single-chunk Scan so concurrent
// vector scans still piggyback on each other exactly as before.
class FloDBScanIterator final : public ScanIterator {
 public:
  FloDBScanIterator(FloDB* db, const ReadOptions& options, const Slice& low_key,
                    const Slice& high_key, size_t chunk_capacity, bool hold_ticket)
      : db_(db),
        low_(low_key.ToString()),
        high_(high_key.ToString()),
        chunk_capacity_(chunk_capacity),
        ticket_(db->BeginScan(options.snapshot_mode)),
        holding_(hold_ticket) {
    if (!hold_ticket) {
      // Streaming iterators release the election slot once their seq is
      // established, so a long-lived cursor never blocks other scans;
      // restarts then always take the piggyback form.
      db_->EndScan(ticket_);
    }
    FetchChunk();
  }

  ~FloDBScanIterator() override {
    if (holding_) {
      db_->EndScan(ticket_);
    }
  }

  FloDBScanIterator(const FloDBScanIterator&) = delete;
  FloDBScanIterator& operator=(const FloDBScanIterator&) = delete;

  bool Valid() const override { return pos_ < chunk_.size(); }

  void Next() override {
    ++pos_;
    if (pos_ >= chunk_.size() && !finished_) {
      FetchChunk();
    }
  }

  Slice key() const override { return Slice(chunk_[pos_].key); }
  Slice value() const override { return Slice(chunk_[pos_].value); }
  uint64_t seq() const override { return chunk_[pos_].seq; }
  Status status() const override { return status_; }
  size_t MaxBufferedEntries() const override { return max_buffered_; }

  // Legacy Scan support: hands the (single) buffered chunk to the caller.
  void TakeChunk(std::vector<std::pair<std::string, std::string>>* out) {
    out->clear();
    out->reserve(chunk_.size());
    for (FloDB::ScanEntry& e : chunk_) {
      out->emplace_back(std::move(e.key), std::move(e.value));
    }
    chunk_.clear();
    pos_ = 0;
    finished_ = true;
  }

 private:
  void FetchChunk() {
    chunk_.clear();
    pos_ = 0;
    const Slice start = has_resume_ ? Slice(resume_key_) : Slice(low_);
    int restarts = 0;
    Status pass_error;
    while (true) {
      if (db_->ScanPass(start, Slice(high_), chunk_capacity_, ticket_.seq, /*validate=*/true,
                        has_resume_, &chunk_, &pass_error)) {
        if (!pass_error.ok()) {
          // A vlog resolution failed mid-pass: cut the stream here with
          // the error; restarting cannot fix an unreadable target.
          chunk_.clear();
          status_ = pass_error;
          finished_ = true;
        }
        break;
      }
      db_->scan_restarts_.fetch_add(1, std::memory_order_relaxed);
      if (++restarts >= db_->options_.scan_restart_threshold) {
        status_ = db_->FallbackPass(start, Slice(high_), chunk_capacity_, has_resume_, &chunk_);
        break;
      }
      if (holding_ && ticket_.is_master && !emitted_any_) {
        // Nothing handed out yet: a full master restart (re-drain + fresh
        // seq) re-establishes linearizability — the legacy behavior.
        db_->EstablishMasterSeq(&ticket_.seq);
      } else {
        // Piggyback restart: fresh seq, no re-drain (§4.4). The snapshot
        // advances for the remaining range only.
        ticket_.seq = db_->FreshScanSeq();
      }
    }
    max_buffered_ = std::max(max_buffered_, chunk_.size());
    if (chunk_capacity_ == 0 || chunk_.size() < chunk_capacity_) {
      finished_ = true;  // range exhausted (or whole-range mode)
    }
    if (!chunk_.empty()) {
      emitted_any_ = true;
      resume_key_ = chunk_.back().key;
      has_resume_ = true;
    }
  }

  FloDB* const db_;
  const std::string low_;
  const std::string high_;
  const size_t chunk_capacity_;  // 0 = whole range in one chunk

  FloDB::ScanTicket ticket_;
  const bool holding_;

  std::vector<FloDB::ScanEntry> chunk_;
  size_t pos_ = 0;
  std::string resume_key_;
  bool has_resume_ = false;
  bool emitted_any_ = false;
  bool finished_ = false;
  size_t max_buffered_ = 0;
  Status status_;
};

Status FloDB::Scan(const ReadOptions& options, const Slice& low_key, const Slice& high_key,
                   size_t limit, std::vector<std::pair<std::string, std::string>>* out) {
  if (options.fill_stats) {
    scans_.fetch_add(1, std::memory_order_relaxed);
  }
  // A single-chunk iterator sized by `limit` (0 = whole range): the whole
  // result comes from one validated pass, so the original restart and
  // piggyback semantics are preserved verbatim.
  FloDBScanIterator iter(this, options, low_key, high_key, /*chunk_capacity=*/limit,
                         /*hold_ticket=*/true);
  iter.TakeChunk(out);
  return iter.status();
}

std::unique_ptr<ScanIterator> FloDB::NewScanIterator(const ReadOptions& options,
                                                     const Slice& low_key,
                                                     const Slice& high_key) {
  if (options.fill_stats) {
    iterator_scans_.fetch_add(1, std::memory_order_relaxed);
  }
  return std::make_unique<FloDBScanIterator>(this, options, low_key, high_key,
                                             options.scan_chunk_size, /*hold_ticket=*/false);
}

}  // namespace flodb
