// FloDB scan protocol (Algorithm 3, §4.4).
//
// Master scan: pause draining and Memtable writers, swap in a fresh
// Membuffer, fully drain the old one (writers help), take a scan sequence
// number, release everyone, publish the number for piggybackers, then
// iterate Memtable + immutable Memtable + disk validating per-entry
// sequence numbers. An entry newer than the scan number means an in-place
// update raced the scan: restart; after `scan_restart_threshold` restarts
// fall back to a scan that briefly blocks Memtable writers (liveness).
//
// Piggybacking scan: a scan that begins while another scan runs reuses the
// published sequence number (no re-drain); chains are bounded by
// `scan_piggyback_chain_limit`. Piggyback restarts take a fresh sequence
// number without re-draining. Master scans are linearizable w.r.t.
// updates (linearization point: the Membuffer pointer swap); piggybacked
// scans are serializable.

#include "flodb/core/flodb.h"
#include "flodb/core/memtable_iterator.h"
#include "flodb/disk/merging_iterator.h"

namespace flodb {

bool FloDB::ScanOnce(const Slice& low_key, const Slice& high_key, size_t limit,
                     uint64_t scan_seq, bool validate,
                     std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  // The RCU section pins both Memtables for the whole iteration; the disk
  // iterator pins its own Version internally.
  RcuReadGuard guard(rcu_);
  std::vector<std::unique_ptr<Iterator>> children;
  MemTable* mtb = mtb_.load(std::memory_order_seq_cst);
  children.push_back(NewMemTableIterator(mtb));
  MemTable* imm = imm_mtb_.load(std::memory_order_seq_cst);
  if (imm != nullptr) {
    children.push_back(NewMemTableIterator(imm));
  }
  if (disk_ != nullptr) {
    children.push_back(disk_->NewIterator());
  }
  std::unique_ptr<Iterator> merged = NewMergingIterator(std::move(children));

  std::string last_key;
  bool has_last = false;
  for (merged->Seek(low_key); merged->Valid(); merged->Next()) {
    if (!high_key.empty() && merged->key().compare(high_key) >= 0) {
      break;
    }
    if (validate && merged->seq() > scan_seq) {
      // A value in our range was written after the scan began; the old
      // value is gone (in-place update), so the snapshot is broken.
      return false;
    }
    if (has_last && merged->key() == Slice(last_key)) {
      continue;  // older version of an already-emitted user key
    }
    last_key.assign(merged->key().data(), merged->key().size());
    has_last = true;
    if (merged->type() == ValueType::kTombstone) {
      continue;
    }
    out->emplace_back(last_key, merged->value().ToString());
    if (limit != 0 && out->size() >= limit) {
      break;
    }
  }
  return true;
}

Status FloDB::FallbackScan(const Slice& low_key, const Slice& high_key, size_t limit,
                           std::vector<std::pair<std::string, std::string>>* out) {
  fallback_scans_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> master(master_mu_);
  pause_writers_.store(true, std::memory_order_seq_cst);
  pause_draining_.store(true, std::memory_order_seq_cst);
  // In-flight Memtable writes complete; afterwards the Memtable is frozen
  // for the duration (writers park in the Membuffer or spin).
  rcu_.Synchronize();
  const uint64_t seq = global_seq_.fetch_add(1, std::memory_order_acq_rel);
  ScanOnce(low_key, high_key, limit, seq, /*validate=*/false, out);
  pause_writers_.store(false, std::memory_order_seq_cst);
  pause_draining_.store(false, std::memory_order_seq_cst);
  return Status::OK();
}

Status FloDB::ScanImpl(const Slice& low_key, const Slice& high_key, size_t limit,
                       std::vector<std::pair<std::string, std::string>>* out) {
  uint64_t scan_seq = 0;
  bool is_master = false;

  // Master election / piggybacking / master seq reuse.
  {
    std::unique_lock<std::mutex> lock(scan_mu_);
    while (true) {
      // Piggyback: another scan is running and its chain has budget.
      if (published_valid_ && running_scans_ > 0 &&
          chain_len_ < options_.scan_piggyback_chain_limit) {
        scan_seq = published_seq_;
        ++chain_len_;
        ++running_scans_;
        piggyback_scans_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      // Low-concurrency reuse (§4.4 optimization): no scan running, but a
      // recent master seq with remaining budget — skip the full drain.
      if (published_valid_ && reuse_count_ < options_.scan_master_reuse_limit) {
        scan_seq = published_seq_;
        ++reuse_count_;
        ++running_scans_;
        piggyback_scans_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      if (!master_busy_) {
        master_busy_ = true;
        is_master = true;
        ++running_scans_;
        master_scans_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      scan_cv_.wait(lock);
    }
  }

  auto master_setup = [&] {
    std::lock_guard<std::mutex> master(master_mu_);
    pause_draining_.store(true, std::memory_order_seq_cst);
    pause_writers_.store(true, std::memory_order_seq_cst);
    MemBuffer* old = SwapAndDrainMembufferLocked();
    scan_seq = global_seq_.fetch_add(1, std::memory_order_acq_rel);
    pause_writers_.store(false, std::memory_order_seq_cst);
    pause_draining_.store(false, std::memory_order_seq_cst);
    {
      std::lock_guard<std::mutex> lock(scan_mu_);
      published_seq_ = scan_seq;
      published_valid_ = true;
      chain_len_ = 0;
      reuse_count_ = 0;
    }
    scan_cv_.notify_all();
    CleanupImmMembuffer(old);
  };

  if (is_master) {
    master_setup();
  }

  Status result;
  int restarts = 0;
  while (true) {
    if (ScanOnce(low_key, high_key, limit, scan_seq, /*validate=*/true, out)) {
      break;
    }
    scan_restarts_.fetch_add(1, std::memory_order_relaxed);
    if (++restarts >= options_.scan_restart_threshold) {
      result = FallbackScan(low_key, high_key, limit, out);
      break;
    }
    if (is_master) {
      master_setup();  // full restart: re-drain and take a fresh seq
    } else {
      // Piggyback restart: fresh seq, no re-drain (§4.4).
      scan_seq = global_seq_.fetch_add(1, std::memory_order_acq_rel);
    }
  }

  {
    std::lock_guard<std::mutex> lock(scan_mu_);
    --running_scans_;
    if (is_master) {
      master_busy_ = false;
    }
    if (running_scans_ == 0 && options_.scan_master_reuse_limit == 0) {
      // Strict mode: sequence numbers don't outlive the chain. With reuse
      // enabled the seq stays published until its reuse budget runs out.
      published_valid_ = false;
    }
  }
  scan_cv_.notify_all();
  return result;
}

}  // namespace flodb
