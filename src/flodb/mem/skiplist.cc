#include "flodb/mem/skiplist.h"

#include <cassert>
#include <cstring>

namespace flodb {

// Node layout in the arena:
//   [Node header][next[0..top_level] atomics][key bytes]
// The flexible parts live directly after the header so one allocation
// covers the whole node; nodes are immutable after linking except for the
// cell pointer and the next[] links.
struct ConcurrentSkipList::Node {
  std::atomic<ValueCell*> cell;
  uint32_t key_size;
  int32_t top_level;  // highest valid index into next[]

  std::atomic<Node*>* next_array() {
    return reinterpret_cast<std::atomic<Node*>*>(reinterpret_cast<char*>(this) + sizeof(Node));
  }
  const std::atomic<Node*>* next_array() const {
    return reinterpret_cast<const std::atomic<Node*>*>(reinterpret_cast<const char*>(this) +
                                                       sizeof(Node));
  }

  std::atomic<Node*>& next(int level) { return next_array()[level]; }
  const std::atomic<Node*>& next(int level) const { return next_array()[level]; }

  Slice key() const {
    const char* base = reinterpret_cast<const char*>(this) + sizeof(Node) +
                       static_cast<size_t>(top_level + 1) * sizeof(std::atomic<Node*>);
    return Slice(base, key_size);
  }

  char* mutable_key_base() {
    return reinterpret_cast<char*>(this) + sizeof(Node) +
           static_cast<size_t>(top_level + 1) * sizeof(std::atomic<Node*>);
  }
};

ConcurrentSkipList::ConcurrentSkipList(ConcurrentArena* arena, uint64_t level_seed,
                                       KeyComparator cmp, DeadPointerFn dead_pointer_fn)
    : arena_(arena),
      cmp_(cmp),
      dead_pointer_fn_(std::move(dead_pointer_fn)),
      level_seed_(level_seed) {
  head_ = MakeNode(Slice(), nullptr, kMaxLevel - 1);
  for (int i = 0; i < kMaxLevel; ++i) {
    head_->next(i).store(nullptr, std::memory_order_relaxed);
  }
}

ValueCell* ConcurrentSkipList::MakeCell(const Slice& value, uint64_t seq, ValueType type) {
  char* mem = arena_->Allocate(sizeof(ValueCell) + value.size());
  auto* cell = new (mem) ValueCell;
  cell->seq = seq;
  cell->value_size = static_cast<uint32_t>(value.size());
  cell->type = type;
  memcpy(mem + sizeof(ValueCell), value.data(), value.size());
  return cell;
}

ConcurrentSkipList::Node* ConcurrentSkipList::MakeNode(const Slice& key, ValueCell* cell,
                                                       int top_level) {
  const size_t bytes = sizeof(Node) +
                       static_cast<size_t>(top_level + 1) * sizeof(std::atomic<Node*>) +
                       key.size();
  char* mem = arena_->Allocate(bytes);
  auto* node = new (mem) Node;
  node->cell.store(cell, std::memory_order_relaxed);
  node->key_size = static_cast<uint32_t>(key.size());
  node->top_level = top_level;
  memcpy(node->mutable_key_base(), key.data(), key.size());
  return node;
}

int ConcurrentSkipList::RandomLevel() {
  // Geometric with p = 1/4, like LevelDB. The seed is a per-list atomic
  // advanced with a relaxed fetch_add: contention here only perturbs the
  // distribution, never correctness.
  uint64_t s = level_seed_.fetch_add(0x9e3779b97f4a7c15ULL, std::memory_order_relaxed);
  uint64_t r = MixU64(s);
  int level = 0;
  while (level < kMaxLevel - 1 && (r & 3) == 0) {
    ++level;
    r >>= 2;
  }
  return level;
}

bool ConcurrentSkipList::FindFromPreds(const Slice& key, Node** preds, Node** succs) const {
  Node* pred = head_;
  for (int level = kMaxLevel - 1; level >= 0; --level) {
    // Multi-insert path reuse (Algorithm 1 lines 5-8): jump directly to
    // the predecessor recorded for the previous (smaller) key if it is
    // further along than our current position. Stored predecessors are
    // always behind `key` because batches are sorted ascending and nodes
    // are never unlinked.
    Node* hint = preds[level];
    if (hint != head_ && hint != pred) {
      if (pred == head_ || Compare(hint->key(), pred->key()) > 0) {
        pred = hint;
      }
    }
    Node* curr = pred->next(level).load(std::memory_order_acquire);
    while (curr != nullptr && Compare(curr->key(), key) < 0) {
      pred = curr;
      curr = curr->next(level).load(std::memory_order_acquire);
    }
    preds[level] = pred;
    succs[level] = curr;
  }
  return succs[0] != nullptr && succs[0]->key() == key;
}

void ConcurrentSkipList::UpdateCellMaxSeq(Node* node, ValueCell* cell) {
  ValueCell* cur = node->cell.load(std::memory_order_acquire);
  while (cur == nullptr || cell->seq > cur->seq) {
    if (node->cell.compare_exchange_weak(cur, cell, std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
      // The displaced cell will never reach a flush iterator; if it was
      // a vlog pointer, this supersede IS its record's death — report it
      // so the garbage is not invisible to GC (cells are arena-backed
      // and stay readable here).
      if (cur != nullptr && cur->type == ValueType::kValuePointer && dead_pointer_fn_) {
        dead_pointer_fn_(cur->value());
      }
      return;
    }
    // cur reloaded by the failed CAS; loop re-checks the seq rule.
  }
  // The new cell lost the max-seq race and is dropped on the floor; a
  // stale drained copy of a pointer dies here carrying its record's
  // garbage liability (the fresher in-buffer version skipped the charge).
  if (cell->type == ValueType::kValuePointer && dead_pointer_fn_) {
    dead_pointer_fn_(cell->value());
  }
}

bool ConcurrentSkipList::InsertWithPreds(const Slice& key, const Slice& value, uint64_t seq,
                                         ValueType type, Node** preds, Node** succs) {
  ValueCell* cell = MakeCell(value, seq, type);
  bytes_.fetch_add(sizeof(ValueCell) + value.size(), std::memory_order_relaxed);

  Node* node = nullptr;  // lazily created; reused across CAS retries
  while (true) {
    if (FindFromPreds(key, preds, succs)) {
      // Key exists: in-place update keeping the highest sequence number
      // (the SWAP of Algorithm 1 line 28, strengthened to max-seq so
      // racing drains can never roll a key back; see DESIGN.md §5).
      UpdateCellMaxSeq(succs[0], cell);
      return false;
    }
    if (node == nullptr) {
      node = MakeNode(key, cell, RandomLevel());
    }
    for (int lvl = 0; lvl <= node->top_level; ++lvl) {
      node->next(lvl).store(succs[lvl], std::memory_order_relaxed);
    }
    Node* expected = succs[0];
    if (!preds[0]->next(0).compare_exchange_strong(expected, node, std::memory_order_release,
                                                   std::memory_order_relaxed)) {
      continue;  // level-0 race; re-find and retry (may turn into update)
    }
    // Node is linked (visible) once level 0 CAS succeeds. Link the tower.
    for (int lvl = 1; lvl <= node->top_level; ++lvl) {
      while (true) {
        Node* expect = succs[lvl];
        if (node->next(lvl).load(std::memory_order_relaxed) != expect) {
          node->next(lvl).store(expect, std::memory_order_relaxed);
        }
        if (preds[lvl]->next(lvl).compare_exchange_strong(
                expect, node, std::memory_order_release, std::memory_order_relaxed)) {
          break;
        }
        FindFromPreds(key, preds, succs);
      }
    }
    count_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(sizeof(Node) +
                         static_cast<size_t>(node->top_level + 1) * sizeof(std::atomic<Node*>) +
                         key.size(),
                     std::memory_order_relaxed);
    return true;
  }
}

bool ConcurrentSkipList::Insert(const Slice& key, const Slice& value, uint64_t seq,
                                ValueType type) {
  Node* preds[kMaxLevel];
  Node* succs[kMaxLevel];
  for (int i = 0; i < kMaxLevel; ++i) {
    preds[i] = head_;
  }
  return InsertWithPreds(key, value, seq, type, preds, succs);
}

size_t ConcurrentSkipList::MultiInsert(std::span<const BatchEntry> entries) {
  Node* preds[kMaxLevel];
  Node* succs[kMaxLevel];
  for (int i = 0; i < kMaxLevel; ++i) {
    preds[i] = head_;
  }
  size_t linked = 0;
#ifndef NDEBUG
  for (size_t i = 1; i < entries.size(); ++i) {
    assert(Compare(entries[i - 1].key, entries[i].key) <= 0 && "batch must be sorted");
  }
#endif
  for (const BatchEntry& e : entries) {
    if (InsertWithPreds(e.key, e.value, e.seq, e.type, preds, succs)) {
      ++linked;
    }
  }
  return linked;
}

bool ConcurrentSkipList::Get(const Slice& key, std::string* value, uint64_t* seq,
                             ValueType* type) const {
  const Node* node = head_;
  for (int level = kMaxLevel - 1; level >= 0; --level) {
    const Node* curr = node->next(level).load(std::memory_order_acquire);
    while (curr != nullptr && Compare(curr->key(), key) < 0) {
      node = curr;
      curr = curr->next(level).load(std::memory_order_acquire);
    }
    if (level == 0) {
      node = curr;
    }
  }
  if (node == nullptr || node->key() != key) {
    return false;
  }
  const ValueCell* cell = node->cell.load(std::memory_order_acquire);
  if (value != nullptr) {
    value->assign(cell->value().data(), cell->value().size());
  }
  if (seq != nullptr) {
    *seq = cell->seq;
  }
  if (type != nullptr) {
    *type = cell->type;
  }
  return true;
}

void ConcurrentSkipList::Iterator::SeekToFirst() {
  node_ = list_->head_->next(0).load(std::memory_order_acquire);
  LoadCell();
}

void ConcurrentSkipList::Iterator::Seek(const Slice& target) {
  const Node* pred = list_->head_;
  for (int level = kMaxLevel - 1; level >= 0; --level) {
    const Node* curr = pred->next(level).load(std::memory_order_acquire);
    while (curr != nullptr && list_->Compare(curr->key(), target) < 0) {
      pred = curr;
      curr = curr->next(level).load(std::memory_order_acquire);
    }
    if (level == 0) {
      node_ = curr;
    }
  }
  LoadCell();
}

void ConcurrentSkipList::Iterator::Next() {
  node_ = node_->next(0).load(std::memory_order_acquire);
  LoadCell();
}

Slice ConcurrentSkipList::Iterator::key() const { return node_->key(); }

void ConcurrentSkipList::Iterator::LoadCell() {
  cell_ = (node_ != nullptr) ? node_->cell.load(std::memory_order_acquire) : nullptr;
}

}  // namespace flodb
