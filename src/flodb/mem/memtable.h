// MemTable: FloDB's bottom in-memory level — a ConcurrentSkipList plus
// ownership of its arena and size accounting against a target size.
//
// A MemTable passes through three phases: ACTIVE (writers and drainers
// insert), IMMUTABLE (swapped out via RCU; persist thread is writing it to
// disk; still readable), RETIRED (after the post-persist grace period the
// whole object, arena included, is freed).

#ifndef FLODB_MEM_MEMTABLE_H_
#define FLODB_MEM_MEMTABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "flodb/common/arena.h"
#include "flodb/common/slice.h"
#include "flodb/mem/entry.h"
#include "flodb/mem/skiplist.h"

namespace flodb {

class MemTable {
 public:
  // `dead_pointer_fn` (optional) observes kValuePointer entries whose
  // in-memory version is superseded in place — the vlog garbage
  // accounting hook (see mem/skiplist.h).
  explicit MemTable(size_t target_bytes, DeadPointerFn dead_pointer_fn = {})
      : target_bytes_(target_bytes),
        arena_(256u << 10),
        list_(&arena_, 0x5eed, nullptr, std::move(dead_pointer_fn)) {}

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  // Single insert/update (direct writer path, Algorithm 2 line 20).
  void Add(const Slice& key, const Slice& value, uint64_t seq, ValueType type) {
    list_.Insert(key, value, seq, type);
  }

  // Drain path: sorted batch via the skiplist multi-insert.
  void MultiAdd(std::span<const ConcurrentSkipList::BatchEntry> entries) {
    list_.MultiInsert(entries);
  }

  bool Get(const Slice& key, std::string* value, uint64_t* seq, ValueType* type) const {
    return list_.Get(key, value, seq, type);
  }

  ConcurrentSkipList::Iterator NewIterator() const {
    return ConcurrentSkipList::Iterator(&list_);
  }

  size_t ApproximateBytes() const { return arena_.AllocatedBytes(); }
  size_t Count() const { return list_.Count(); }
  size_t TargetBytes() const { return target_bytes_; }
  bool OverTarget() const { return ApproximateBytes() >= target_bytes_; }

 private:
  const size_t target_bytes_;
  ConcurrentArena arena_;
  ConcurrentSkipList list_;
};

}  // namespace flodb

#endif  // FLODB_MEM_MEMTABLE_H_
