// ConcurrentSkipList: CAS-linked, insertion-only concurrent skiplist with
// the paper's novel multi-insert operation (Algorithm 1) and in-place
// value updates carrying per-entry sequence numbers.
//
// Deliberate restrictions, straight from the paper (§4.3 "Concurrency"):
// nodes are never unlinked — FloDB retires whole Memtables after they are
// persisted, so the skiplist needs no deletion marks, which is exactly
// what makes multi-insert's path reuse safe.
//
// In-place updates: each node owns an atomic pointer to an immutable
// ValueCell {seq, type, value}. An update allocates a new cell and CASes
// it in only if its sequence number is higher, so concurrent drains and
// direct writers can race without ever regressing a key to older data.
//
// Multi-insert: inserts a sorted batch reusing the predecessor array
// between consecutive keys (FindFromPreds). The closer together the keys,
// the fewer hops re-traversed — the paper's "neighborhood effect" (Fig 8).

#ifndef FLODB_MEM_SKIPLIST_H_
#define FLODB_MEM_SKIPLIST_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <utility>

#include "flodb/common/arena.h"
#include "flodb/common/random.h"
#include "flodb/common/slice.h"
#include "flodb/mem/entry.h"

namespace flodb {

// Immutable once published; allocated from the skiplist's arena.
struct ValueCell {
  uint64_t seq;
  uint32_t value_size;
  ValueType type;
  // value bytes follow the struct

  Slice value() const { return Slice(reinterpret_cast<const char*>(this + 1), value_size); }
};

class ConcurrentSkipList {
 public:
  static constexpr int kMaxLevel = 16;

  // Three-way key order; nullptr (the default) is raw bytewise
  // Slice::compare. A custom comparator must be a total order that agrees
  // with byte equality (cmp(a, b) == 0 iff a and b are byte-identical) —
  // the baseline stores use this to compare (user_key, ~seq) internal
  // keys as two parts, which raw bytes get wrong for variable-length
  // user keys ("x" vs "x\0y").
  using KeyComparator = int (*)(const Slice& a, const Slice& b);

  // One entry of a multi-insert batch. Keys need not be owned beyond the
  // call; bytes are copied into the arena.
  struct BatchEntry {
    Slice key;
    Slice value;
    ValueType type;
    uint64_t seq;
  };

  struct Node;

  // `dead_pointer_fn` (optional) observes kValuePointer cells displaced
  // by the max-seq update rule; see DeadPointerFn above. Baselines and
  // internal-key users leave it unset.
  explicit ConcurrentSkipList(ConcurrentArena* arena, uint64_t level_seed = 0x5eed,
                              KeyComparator cmp = nullptr, DeadPointerFn dead_pointer_fn = {});

  ConcurrentSkipList(const ConcurrentSkipList&) = delete;
  ConcurrentSkipList& operator=(const ConcurrentSkipList&) = delete;

  // Inserts or updates one entry. Returns true if a new node was linked,
  // false if an existing node's value cell was updated (or the update lost
  // to a concurrent higher-seq value, which is equivalent for callers).
  bool Insert(const Slice& key, const Slice& value, uint64_t seq, ValueType type);

  // Inserts a batch. `entries` MUST be sorted by key ascending (duplicate
  // keys allowed; later entries overwrite via the seq rule). Returns the
  // number of newly linked nodes.
  size_t MultiInsert(std::span<const BatchEntry> entries);

  // Point lookup. On hit fills *value/*seq/*type and returns true.
  bool Get(const Slice& key, std::string* value, uint64_t* seq, ValueType* type) const;

  // Number of linked nodes / approximate arena bytes consumed by this list.
  size_t Count() const { return count_.load(std::memory_order_relaxed); }
  size_t ApproximateBytes() const { return bytes_.load(std::memory_order_relaxed); }

  // Forward iterator over the level-0 list. Safe under concurrent inserts;
  // reflects some linearizable prefix of them. The skiplist must outlive
  // the iterator.
  class Iterator {
   public:
    explicit Iterator(const ConcurrentSkipList* list) : list_(list) {}

    bool Valid() const { return node_ != nullptr; }
    void SeekToFirst();
    void Seek(const Slice& target);  // first node with key >= target
    void Next();

    Slice key() const;
    // Reads the node's current cell once; value/seq/type are mutually
    // consistent for that read.
    Slice value() const { return cell_->value(); }
    uint64_t seq() const { return cell_->seq; }
    ValueType type() const { return cell_->type; }

   private:
    void LoadCell();

    const ConcurrentSkipList* list_;
    const Node* node_ = nullptr;
    const ValueCell* cell_ = nullptr;
  };

  struct Stats {
    uint64_t multi_insert_calls = 0;
    uint64_t multi_insert_entries = 0;
    uint64_t find_hops = 0;  // level-0 + tower hops walked by finds
  };

 private:
  friend class Iterator;

  int Compare(const Slice& a, const Slice& b) const {
    return cmp_ != nullptr ? cmp_(a, b) : a.compare(b);
  }

  ValueCell* MakeCell(const Slice& value, uint64_t seq, ValueType type);
  Node* MakeNode(const Slice& key, ValueCell* cell, int top_level);
  int RandomLevel();

  // Algorithm 1, FindFromPreds. preds/succs are arrays of kMaxLevel
  // pointers; preds may carry hints from a previous call with a smaller
  // key (multi-insert path reuse). Returns true iff an exact match was
  // found; succs[0] is then the matching node.
  bool FindFromPreds(const Slice& key, Node** preds, Node** succs) const;

  // Inserts one entry given (possibly hinted) preds/succs arrays.
  bool InsertWithPreds(const Slice& key, const Slice& value, uint64_t seq, ValueType type,
                       Node** preds, Node** succs);

  // CAS loop: install cell if its seq is higher than the current one.
  // Reports the losing kValuePointer cell (displaced or rejected) to
  // dead_pointer_fn_.
  void UpdateCellMaxSeq(Node* node, ValueCell* cell);

  ConcurrentArena* const arena_;
  const KeyComparator cmp_;
  const DeadPointerFn dead_pointer_fn_;
  Node* head_;
  std::atomic<size_t> count_{0};
  std::atomic<size_t> bytes_{0};
  std::atomic<uint64_t> level_seed_;
};

}  // namespace flodb

#endif  // FLODB_MEM_SKIPLIST_H_
