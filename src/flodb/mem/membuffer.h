// MemBuffer: FloDB's top in-memory level (paper §4.1, §4.3).
//
// A partitioned concurrent hash table in the CLHT [21] style: cache-line-
// sized buckets of a fixed number of slots, guarded by a per-bucket
// spinlock. A put whose target bucket is full is REJECTED — that is the
// paper's admission mechanism: the writer then inserts directly into the
// Memtable (Algorithm 2 line 20).
//
// Partitioning (the "neighborhood" scheme of §4.3): the top `l` bits of
// the key select a partition; the remaining bits are hashed to a bucket
// inside the partition. Because keys are encoded big-endian, a partition
// covers a contiguous key range, so a drain batch collected from one
// partition lands in a small skiplist neighborhood — maximizing
// multi-insert path reuse (Figure 8).
//
// Drain protocol (Figure 6): a background drainer, under the bucket lock,
// (1) copies an entry and MARKS its slot, (2) multi-inserts the copies
// into the Memtable with fresh sequence numbers, then (3) re-locks and
// REMOVES each slot — but only if its version is unchanged. A concurrent
// in-place update bumps the slot version, so the (now stale) drained copy
// is simply superseded: the newer value stays in the buffer and is
// drained later with a higher sequence number; the Memtable's max-seq
// update rule makes the order of arrivals irrelevant.

#ifndef FLODB_MEM_MEMBUFFER_H_
#define FLODB_MEM_MEMBUFFER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "flodb/common/arena.h"
#include "flodb/common/slice.h"
#include "flodb/mem/entry.h"
#include "flodb/common/synchronization.h"

namespace flodb {

class MemBuffer {
 public:
  static constexpr int kSlotsPerBucket = 4;

  struct Options {
    // Soft capacity; combined with bucket fullness to reject puts.
    size_t capacity_bytes = 32u << 20;
    // `l` in the paper: number of most-significant key bits that select
    // the partition. 2^l partitions.
    int partition_bits = 4;
    // Expected entry footprint, used only to size the bucket array.
    size_t avg_entry_bytes_hint = 64;
    // Optional: observes a kValuePointer entry whose value is replaced
    // in place by Add — the dead vlog record would otherwise be
    // invisible to GC (its entry never reaches a flush or compaction
    // dedup). Skipped when a drained copy of exactly that value is in
    // flight to the Memtable: the copy carries the liability and is
    // charged there when superseded (see mem/skiplist.h DeadPointerFn).
    DeadPointerFn dead_pointer_fn;
  };

  enum class AddResult {
    kAdded,    // new key installed
    kUpdated,  // existing key's value replaced in place
    kFull,     // target bucket (or the buffer) is full: caller must go to
               // the Memtable (Algorithm 2 line 20)
  };

  explicit MemBuffer(const Options& options);
  ~MemBuffer();

  MemBuffer(const MemBuffer&) = delete;
  MemBuffer& operator=(const MemBuffer&) = delete;

  AddResult Add(const Slice& key, const Slice& value, ValueType type);

  // Point lookup; returns true on hit and fills *value/*type.
  bool Get(const Slice& key, std::string* value, ValueType* type) const;

  // ---- background drain support (incremental, mutable buffer) ----

  // Claims the next partition to drain (round-robin across drainers).
  uint64_t ClaimPartition() {
    return drain_partition_cursor_.fetch_add(1, std::memory_order_relaxed) % num_partitions_;
  }

  // Collects up to max_entries unmarked entries from `partition`, marking
  // their slots. Appends to *out (key/value copied). Returns the number
  // collected; 0 means the partition had nothing drainable.
  size_t CollectAndMark(uint64_t partition, size_t max_entries, std::vector<DrainedEntry>* out);

  // Completes a drain batch: removes each slot whose version is unchanged
  // since CollectAndMark, otherwise just clears the mark (the entry was
  // concurrently updated and must be drained again later).
  void FinishDrain(const std::vector<DrainedEntry>& entries);

  // ---- full drain support (immutable buffer; scans, rotations) ----
  // Helpers repeatedly claim disjoint bucket ranges, copy out all entries
  // (no marking: the buffer is immutable for writers by then), insert them
  // into the Memtable, then report completion. The buffer itself is
  // destroyed afterwards, so slots are never removed.

  // Returns false when all buckets have been claimed.
  bool ClaimBucketRange(size_t chunk, uint64_t* begin, uint64_t* end);

  // Copies all live entries of buckets [begin, end) into *out.
  void CollectRange(uint64_t begin, uint64_t end, std::vector<DrainedEntry>* out) const;

  // Marks `n` buckets as fully processed (drained into the Memtable).
  void MarkBucketsDone(uint64_t n) { buckets_done_.fetch_add(n, std::memory_order_acq_rel); }
  bool FullyDrained() const {
    return buckets_done_.load(std::memory_order_acquire) >= num_buckets_;
  }

  // ---- introspection ----

  size_t LiveEntries() const { return live_entries_.load(std::memory_order_relaxed); }
  size_t LiveBytes() const { return live_bytes_.load(std::memory_order_relaxed); }
  size_t CapacityBytes() const { return options_.capacity_bytes; }
  uint64_t NumBuckets() const { return num_buckets_; }
  uint64_t NumPartitions() const { return num_partitions_; }

  // Arena growth beyond this factor of capacity signals that in-place
  // updates with changing sizes have orphaned too much memory; the owner
  // should rotate the buffer (FloDB core does).
  bool UnderMemoryPressure() const {
    return arena_.AllocatedBytes() > 4 * options_.capacity_bytes + (1u << 20);
  }

  // Visits every live entry (test/debug; takes bucket locks one at a time).
  void ForEach(const std::function<void(const Slice& key, const Slice& value, ValueType type)>&
                   fn) const;

 private:
  struct Record {
    uint32_t key_size;
    uint32_t value_size;
    ValueType type;
    // key bytes then value bytes follow

    Slice key() const {
      return Slice(reinterpret_cast<const char*>(this + 1), key_size);
    }
    Slice value() const {
      return Slice(reinterpret_cast<const char*>(this + 1) + key_size, value_size);
    }
    char* mutable_value() { return reinterpret_cast<char*>(this + 1) + key_size; }
  };

  struct Slot {
    Record* rec = nullptr;
    uint32_t version = 0;
  };

  struct alignas(64) Bucket {
    mutable SpinLock lock;
    uint8_t marked_mask GUARDED_BY(lock) = 0;  // bit i set => slots[i] is being drained
    // Bit i set => slots[i] is UNCHANGED since its in-flight drained
    // copy was taken (subset of marked_mask; cleared by the first
    // in-place update). Distinguishes "the old value is the copy in
    // flight" (garbage liability travels with the copy) from "the old
    // value exists nowhere else" (charge it here) — without it, a
    // second overwrite during one drain window would leak its
    // predecessor's vlog record.
    uint8_t fresh_mask GUARDED_BY(lock) = 0;
    Slot slots[kSlotsPerBucket] GUARDED_BY(lock);
  };

  Record* MakeRecord(const Slice& key, const Slice& value, ValueType type);
  uint64_t BucketIndexFor(const Slice& key) const;
  static uint64_t PartitionOf(const Slice& key, int partition_bits);

  const Options options_;
  uint64_t num_partitions_;
  uint64_t buckets_per_partition_;
  uint64_t num_buckets_;
  std::vector<Bucket> buckets_;
  mutable ConcurrentArena arena_;

  std::atomic<size_t> live_entries_{0};
  std::atomic<size_t> live_bytes_{0};
  std::atomic<uint64_t> drain_partition_cursor_{0};

  // Full-drain bookkeeping.
  std::atomic<uint64_t> claim_cursor_{0};
  std::atomic<uint64_t> buckets_done_{0};
};

}  // namespace flodb

#endif  // FLODB_MEM_MEMBUFFER_H_
