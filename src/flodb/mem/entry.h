// Shared in-memory entry types.
//
// A Delete is a Put of a tombstone (paper §3.2), so every entry carries a
// ValueType. Sequence numbers are assigned by a single global atomic
// counter when an entry reaches the Memtable (directly, or via draining)
// and travel with the entry onto disk; scans validate against them
// (paper §4.4, Algorithm 3).

#ifndef FLODB_MEM_ENTRY_H_
#define FLODB_MEM_ENTRY_H_

#include <cstdint>
#include <functional>
#include <string>

#include "flodb/common/slice.h"

namespace flodb {

// Invoked with the encoded ValuePointer of a kValuePointer entry the
// moment its last in-memory holder is superseded (an in-place update or
// a lost max-seq race). FloDB wires this to the disk component's vlog
// garbage accounting so hot-key overwrites that die in memory — and
// therefore never reach a flush or compaction dedup — still make the
// dead vlog record's bytes visible to the GC victim picker.
using DeadPointerFn = std::function<void(const Slice& pointer_value)>;

enum class ValueType : uint8_t {
  kValue = 0,
  kTombstone = 1,
  // 2 and 3 are reserved: legacy single-update WAL records start with the
  // ValueType byte, so those values would collide with kWalBatchRecordTag
  // and kWalPrepareRecordTag (see disk/wal.h).
  //
  // The entry's value is an encoded ValuePointer into a *.vlog file, not
  // the user value (value separation, see disk/value_log.h and
  // docs/STORAGE.md). Resolved back to the user value at read time.
  kValuePointer = 4,
};

// An entry buffered for a drain batch: owned copies of the key/value made
// while holding the source bucket lock, plus the slot coordinates needed
// to complete the remove-after-insert step of the drain protocol.
struct DrainedEntry {
  std::string key;
  std::string value;
  ValueType type = ValueType::kValue;
  uint64_t seq = 0;  // assigned just before Memtable insertion

  // Slot coordinates in the source Membuffer (mark/remove protocol).
  uint64_t bucket = 0;
  int slot = 0;
  uint32_t version = 0;
};

}  // namespace flodb

#endif  // FLODB_MEM_ENTRY_H_
