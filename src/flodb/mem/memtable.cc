#include "flodb/mem/memtable.h"

// MemTable is header-only today; this translation unit anchors the library
// target and is the placement for future out-of-line members.

namespace flodb {}  // namespace flodb
