#include "flodb/mem/membuffer.h"

#include <bit>
#include <cstring>

#include "flodb/common/hash.h"
#include "flodb/common/key_codec.h"

namespace flodb {

namespace {

uint64_t RoundUpPow2(uint64_t v) {
  if (v < 2) {
    return 2;
  }
  return std::bit_ceil(v);
}

size_t EntryFootprint(const Slice& key, const Slice& value) {
  // Record header + slot share of the bucket; used for capacity accounting.
  return key.size() + value.size() + 32;
}

}  // namespace

MemBuffer::MemBuffer(const Options& options) : options_(options) {
  num_partitions_ = uint64_t{1} << options_.partition_bits;
  const uint64_t want_slots =
      options_.capacity_bytes / (options_.avg_entry_bytes_hint > 0 ? options_.avg_entry_bytes_hint
                                                                   : 64);
  uint64_t want_buckets = RoundUpPow2(want_slots / kSlotsPerBucket + 1);
  if (want_buckets < num_partitions_) {
    want_buckets = num_partitions_;
  }
  num_buckets_ = want_buckets;
  buckets_per_partition_ = num_buckets_ / num_partitions_;
  buckets_ = std::vector<Bucket>(num_buckets_);
}

MemBuffer::~MemBuffer() = default;

MemBuffer::Record* MemBuffer::MakeRecord(const Slice& key, const Slice& value, ValueType type) {
  char* mem = arena_.Allocate(sizeof(Record) + key.size() + value.size());
  auto* rec = new (mem) Record;
  rec->key_size = static_cast<uint32_t>(key.size());
  rec->value_size = static_cast<uint32_t>(value.size());
  rec->type = type;
  memcpy(mem + sizeof(Record), key.data(), key.size());
  memcpy(mem + sizeof(Record) + key.size(), value.data(), value.size());
  return rec;
}

uint64_t MemBuffer::PartitionOf(const Slice& key, int partition_bits) {
  if (partition_bits <= 0) {
    return 0;  // single partition; >> 64 would be undefined
  }
  // Big-endian keys: the numeric top bits are the first key bytes, so a
  // partition is a contiguous key range (the neighborhood property).
  return DecodeKey(key) >> (64 - partition_bits);
}

uint64_t MemBuffer::BucketIndexFor(const Slice& key) const {
  const uint64_t partition = PartitionOf(key, options_.partition_bits);
  const uint64_t h = Hash64(key, /*seed=*/0x5f10db);
  return partition * buckets_per_partition_ + (h & (buckets_per_partition_ - 1));
}

MemBuffer::AddResult MemBuffer::Add(const Slice& key, const Slice& value, ValueType type) {
  Bucket& bucket = buckets_[BucketIndexFor(key)];
  SpinLockHolder guard(bucket.lock);

  int free_slot = -1;
  for (int i = 0; i < kSlotsPerBucket; ++i) {
    Slot& slot = bucket.slots[i];
    if (slot.rec == nullptr) {
      if (free_slot < 0) {
        free_slot = i;
      }
      continue;
    }
    if (slot.rec->key() == key) {
      // In-place update. Equal-size values are overwritten in the
      // existing record (readers also hold the bucket lock, so this is
      // race-free and allocation-free — the common case for fixed-size
      // workloads). Size changes allocate a fresh record.
      //
      // A replaced vlog pointer dies right here UNLESS a drained copy of
      // exactly this value is in flight to the Memtable (marked AND
      // unchanged since marking): then the copy carries the garbage
      // liability and is charged when it is superseded or compacted away
      // downstream. Charging both would double-count the record.
      const uint8_t bit = static_cast<uint8_t>(1u << i);
      if (slot.rec->type == ValueType::kValuePointer && options_.dead_pointer_fn &&
          (bucket.fresh_mask & bit) == 0) {
        options_.dead_pointer_fn(slot.rec->value());
      }
      bucket.fresh_mask &= static_cast<uint8_t>(~bit);
      const size_t old_footprint = EntryFootprint(key, slot.rec->value());
      if (slot.rec->value_size == value.size()) {
        memcpy(slot.rec->mutable_value(), value.data(), value.size());
        slot.rec->type = type;
      } else {
        slot.rec = MakeRecord(key, value, type);
        live_bytes_.fetch_add(EntryFootprint(key, value), std::memory_order_relaxed);
        live_bytes_.fetch_sub(old_footprint, std::memory_order_relaxed);
      }
      slot.version++;  // invalidates any in-flight drained copy
      return AddResult::kUpdated;
    }
  }
  // A present key was updated in place above — NEVER rejected, even at
  // capacity. Rejecting an update of a buffered key would let its newer
  // value spill to the Memtable with a sequence number OLDER than the one
  // the (stale) buffered copy later gets at drain time, resurrecting the
  // old value. New keys, in contrast, may be bounced to the Memtable.
  if (free_slot < 0 ||
      live_bytes_.load(std::memory_order_relaxed) >= options_.capacity_bytes) {
    return AddResult::kFull;
  }
  Slot& slot = bucket.slots[free_slot];
  slot.rec = MakeRecord(key, value, type);
  slot.version++;
  bucket.marked_mask &= static_cast<uint8_t>(~(1u << free_slot));
  bucket.fresh_mask &= static_cast<uint8_t>(~(1u << free_slot));
  live_entries_.fetch_add(1, std::memory_order_relaxed);
  live_bytes_.fetch_add(EntryFootprint(key, value), std::memory_order_relaxed);
  return AddResult::kAdded;
}

bool MemBuffer::Get(const Slice& key, std::string* value, ValueType* type) const {
  const Bucket& bucket = buckets_[BucketIndexFor(key)];
  SpinLockHolder guard(bucket.lock);
  for (const Slot& slot : bucket.slots) {
    if (slot.rec != nullptr && slot.rec->key() == key) {
      if (value != nullptr) {
        value->assign(slot.rec->value().data(), slot.rec->value().size());
      }
      if (type != nullptr) {
        *type = slot.rec->type;
      }
      return true;
    }
  }
  return false;
}

size_t MemBuffer::CollectAndMark(uint64_t partition, size_t max_entries,
                                 std::vector<DrainedEntry>* out) {
  const uint64_t begin = partition * buckets_per_partition_;
  const uint64_t end = begin + buckets_per_partition_;
  size_t collected = 0;
  for (uint64_t b = begin; b < end && collected < max_entries; ++b) {
    Bucket& bucket = buckets_[b];
    SpinLockHolder guard(bucket.lock);
    for (int i = 0; i < kSlotsPerBucket && collected < max_entries; ++i) {
      Slot& slot = bucket.slots[i];
      const uint8_t bit = static_cast<uint8_t>(1u << i);
      if (slot.rec == nullptr || (bucket.marked_mask & bit) != 0) {
        continue;
      }
      bucket.marked_mask |= bit;
      bucket.fresh_mask |= bit;  // copy below matches the slot exactly
      DrainedEntry e;
      e.key = slot.rec->key().ToString();
      e.value = slot.rec->value().ToString();
      e.type = slot.rec->type;
      e.bucket = b;
      e.slot = i;
      e.version = slot.version;
      out->push_back(std::move(e));
      ++collected;
    }
  }
  return collected;
}

void MemBuffer::FinishDrain(const std::vector<DrainedEntry>& entries) {
  for (const DrainedEntry& e : entries) {
    Bucket& bucket = buckets_[e.bucket];
    SpinLockHolder guard(bucket.lock);
    Slot& slot = bucket.slots[e.slot];
    const uint8_t bit = static_cast<uint8_t>(1u << e.slot);
    bucket.marked_mask &= static_cast<uint8_t>(~bit);
    bucket.fresh_mask &= static_cast<uint8_t>(~bit);
    if (slot.rec != nullptr && slot.version == e.version) {
      live_bytes_.fetch_sub(EntryFootprint(slot.rec->key(), slot.rec->value()),
                            std::memory_order_relaxed);
      live_entries_.fetch_sub(1, std::memory_order_relaxed);
      slot.rec = nullptr;
    }
    // else: concurrently updated — leave the (fresher) entry for a later
    // drain pass. The stale copy already inserted in the Memtable is
    // harmless: its sequence number is older than the one the fresh value
    // will get, and lookups hit the Membuffer first anyway.
  }
}

bool MemBuffer::ClaimBucketRange(size_t chunk, uint64_t* begin, uint64_t* end) {
  const uint64_t b = claim_cursor_.fetch_add(chunk, std::memory_order_relaxed);
  if (b >= num_buckets_) {
    return false;
  }
  *begin = b;
  *end = b + chunk < num_buckets_ ? b + chunk : num_buckets_;
  return true;
}

void MemBuffer::CollectRange(uint64_t begin, uint64_t end, std::vector<DrainedEntry>* out) const {
  for (uint64_t b = begin; b < end; ++b) {
    const Bucket& bucket = buckets_[b];
    SpinLockHolder guard(bucket.lock);
    for (int i = 0; i < kSlotsPerBucket; ++i) {
      const Slot& slot = bucket.slots[i];
      if (slot.rec == nullptr) {
        continue;
      }
      DrainedEntry e;
      e.key = slot.rec->key().ToString();
      e.value = slot.rec->value().ToString();
      e.type = slot.rec->type;
      e.bucket = b;
      e.slot = i;
      e.version = slot.version;
      out->push_back(std::move(e));
    }
  }
}

void MemBuffer::ForEach(
    const std::function<void(const Slice& key, const Slice& value, ValueType type)>& fn) const {
  for (uint64_t b = 0; b < num_buckets_; ++b) {
    const Bucket& bucket = buckets_[b];
    SpinLockHolder guard(bucket.lock);
    for (const Slot& slot : bucket.slots) {
      if (slot.rec != nullptr) {
        fn(slot.rec->key(), slot.rec->value(), slot.rec->type);
      }
    }
  }
}

}  // namespace flodb
