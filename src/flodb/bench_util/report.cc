#include "flodb/bench_util/report.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace flodb::bench {

double EnvDouble(const char* name, double def) {
  const char* v = getenv(name);
  return (v == nullptr || *v == '\0') ? def : atof(v);
}

int64_t EnvInt(const char* name, int64_t def) {
  const char* v = getenv(name);
  return (v == nullptr || *v == '\0') ? def : atoll(v);
}

Report::Report(std::string figure_id, std::string title) : figure_id_(std::move(figure_id)) {
  printf("\n== %s: %s ==\n", figure_id_.c_str(), title.c_str());
}

void Report::Header(const std::vector<std::string>& columns) {
  widths_.clear();
  for (const std::string& c : columns) {
    widths_.push_back(c.size() < 12 ? 12 : c.size() + 2);
  }
  for (size_t i = 0; i < columns.size(); ++i) {
    printf("%-*s", static_cast<int>(widths_[i]), columns[i].c_str());
  }
  printf("\n");
  size_t total = 0;
  for (size_t w : widths_) {
    total += w;
  }
  for (size_t i = 0; i < total; ++i) {
    putchar('-');
  }
  printf("\n");
}

void Report::Row(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    const size_t w = i < widths_.size() ? widths_[i] : 12;
    printf("%-*s", static_cast<int>(w), cells[i].c_str());
  }
  printf("\n");
  fflush(stdout);
}

void Report::Csv(const std::vector<std::string>& cells) {
  printf("CSV,%s", figure_id_.c_str());
  for (const std::string& c : cells) {
    printf(",%s", c.c_str());
  }
  printf("\n");
  fflush(stdout);
}

std::string Report::Fmt(double v, int precision) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace flodb::bench
