#include "flodb/bench_util/report.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace flodb::bench {

double EnvDouble(const char* name, double def) {
  const char* v = getenv(name);
  return (v == nullptr || *v == '\0') ? def : atof(v);
}

int64_t EnvInt(const char* name, int64_t def) {
  const char* v = getenv(name);
  return (v == nullptr || *v == '\0') ? def : atoll(v);
}

std::string JsonPathFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg == "--json" && i + 1 < argc) {
      return argv[i + 1];
    }
    if (arg.rfind("--json=", 0) == 0) {
      return arg.substr(strlen("--json="));
    }
  }
  const char* env = getenv("FLODB_BENCH_JSON");
  return env != nullptr ? env : "";
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

Report::Report(std::string figure_id, std::string title) : figure_id_(std::move(figure_id)) {
  printf("\n== %s: %s ==\n", figure_id_.c_str(), title.c_str());
}

void Report::Header(const std::vector<std::string>& columns) {
  widths_.clear();
  for (const std::string& c : columns) {
    widths_.push_back(c.size() < 12 ? 12 : c.size() + 2);
  }
  for (size_t i = 0; i < columns.size(); ++i) {
    printf("%-*s", static_cast<int>(widths_[i]), columns[i].c_str());
  }
  printf("\n");
  size_t total = 0;
  for (size_t w : widths_) {
    total += w;
  }
  for (size_t i = 0; i < total; ++i) {
    putchar('-');
  }
  printf("\n");
}

void Report::Row(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    const size_t w = i < widths_.size() ? widths_[i] : 12;
    printf("%-*s", static_cast<int>(w), cells[i].c_str());
  }
  printf("\n");
  fflush(stdout);
}

void Report::Csv(const std::vector<std::string>& cells) {
  printf("CSV,%s", figure_id_.c_str());
  for (const std::string& c : cells) {
    printf(",%s", c.c_str());
  }
  printf("\n");
  fflush(stdout);
}

void Report::JsonRow(const std::vector<std::pair<std::string, std::string>>& strings,
                     const std::vector<std::pair<std::string, double>>& numbers) {
  std::string row = "{";
  bool first = true;
  for (const auto& [key, value] : strings) {
    if (!first) {
      row += ", ";
    }
    first = false;
    row += "\"" + JsonEscape(key) + "\": \"" + JsonEscape(value) + "\"";
  }
  for (const auto& [key, value] : numbers) {
    if (!first) {
      row += ", ";
    }
    first = false;
    char buf[64];
    snprintf(buf, sizeof(buf), "%.6g", value);
    row += "\"" + JsonEscape(key) + "\": " + buf;
  }
  row += "}";
  json_rows_.push_back(std::move(row));
}

bool Report::WriteJson(const std::string& path) const {
  if (path.empty()) {
    return true;
  }
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "report: cannot write %s\n", path.c_str());
    return false;
  }
  fprintf(f, "{\"figure\": \"%s\", \"rows\": [\n", JsonEscape(figure_id_).c_str());
  for (size_t i = 0; i < json_rows_.size(); ++i) {
    fprintf(f, "  %s%s\n", json_rows_[i].c_str(), i + 1 < json_rows_.size() ? "," : "");
  }
  fprintf(f, "]}\n");
  fclose(f);
  printf("# wrote %zu JSON rows to %s\n", json_rows_.size(), path.c_str());
  return true;
}

std::string Report::Fmt(double v, int precision) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace flodb::bench
