// Reservoir-sampled latency recorder; cheap enough for the hot path and
// merges across threads to report medians/percentiles (Figures 3/4).

#ifndef FLODB_BENCH_UTIL_LATENCY_H_
#define FLODB_BENCH_UTIL_LATENCY_H_

#include <cstdint>
#include <vector>

#include "flodb/common/random.h"

namespace flodb::bench {

class LatencyRecorder {
 public:
  explicit LatencyRecorder(size_t capacity = 1 << 16) : rng_(0x1a7e) {
    samples_.reserve(capacity);
    capacity_ = capacity;
  }

  void Record(uint64_t nanos) {
    ++count_;
    if (samples_.size() < capacity_) {
      samples_.push_back(nanos);
      return;
    }
    // Reservoir sampling keeps a uniform sample of the full stream.
    const uint64_t slot = rng_.Uniform(count_);
    if (slot < capacity_) {
      samples_[slot] = nanos;
    }
  }

  void Merge(const LatencyRecorder& other);

  // p in [0, 100]; returns 0 if no samples. Sorts lazily.
  uint64_t PercentileNanos(double p);

  uint64_t Count() const { return count_; }

 private:
  size_t capacity_;
  uint64_t count_ = 0;
  std::vector<uint64_t> samples_;
  Random64 rng_;
};

}  // namespace flodb::bench

#endif  // FLODB_BENCH_UTIL_LATENCY_H_
