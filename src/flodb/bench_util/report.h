// Figure-style output helpers: every bench binary prints a human-readable
// table plus machine-readable CSV rows tagged with the figure id, so
// results can be diffed against the paper's curves. With a JSON sink
// attached (`--json out.json` on the bench command line, or the
// FLODB_BENCH_JSON environment variable), the same data also lands in a
// {"figure": ..., "rows": [...]} file for CI perf tracking
// (ci/check_bench_regression.py consumes it).

#ifndef FLODB_BENCH_UTIL_REPORT_H_
#define FLODB_BENCH_UTIL_REPORT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace flodb::bench {

// Reads an environment override (benchmark scaling knobs), or `def`.
double EnvDouble(const char* name, double def);
int64_t EnvInt(const char* name, int64_t def);

// The output path of a `--json <path>` / `--json=<path>` command-line
// flag, falling back to the FLODB_BENCH_JSON environment variable; empty
// when neither is present.
std::string JsonPathFromArgs(int argc, char** argv);

// Prints "== <figure>: <title> ==" and remembers the figure id for rows.
class Report {
 public:
  Report(std::string figure_id, std::string title);

  // Human-readable aligned columns.
  void Header(const std::vector<std::string>& columns);
  void Row(const std::vector<std::string>& cells);

  // CSV line: "<figure_id>,<cells...>".
  void Csv(const std::vector<std::string>& cells);

  // Buffers one machine-readable row. Strings are JSON-escaped; numbers
  // are emitted as-is.
  void JsonRow(const std::vector<std::pair<std::string, std::string>>& strings,
               const std::vector<std::pair<std::string, double>>& numbers);

  // Writes {"figure": <id>, "rows": [<JsonRow>...]} to `path`. Returns
  // false (with a message on stderr) if the file cannot be written. A
  // no-op returning true when `path` is empty.
  bool WriteJson(const std::string& path) const;

  static std::string Fmt(double v, int precision = 3);

 private:
  std::string figure_id_;
  std::vector<size_t> widths_;
  std::vector<std::string> json_rows_;
};

}  // namespace flodb::bench

#endif  // FLODB_BENCH_UTIL_REPORT_H_
