// Figure-style output helpers: every bench binary prints a human-readable
// table plus machine-readable CSV rows tagged with the figure id, so
// results can be diffed against the paper's curves.

#ifndef FLODB_BENCH_UTIL_REPORT_H_
#define FLODB_BENCH_UTIL_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace flodb::bench {

// Reads an environment override (benchmark scaling knobs), or `def`.
double EnvDouble(const char* name, double def);
int64_t EnvInt(const char* name, int64_t def);

// Prints "== <figure>: <title> ==" and remembers the figure id for rows.
class Report {
 public:
  Report(std::string figure_id, std::string title);

  // Human-readable aligned columns.
  void Header(const std::vector<std::string>& columns);
  void Row(const std::vector<std::string>& cells);

  // CSV line: "<figure_id>,<cells...>".
  void Csv(const std::vector<std::string>& cells);

  static std::string Fmt(double v, int precision = 3);

 private:
  std::string figure_id_;
  std::vector<size_t> widths_;
};

}  // namespace flodb::bench

#endif  // FLODB_BENCH_UTIL_REPORT_H_
