// Workload generation for the evaluation harness (§5.1/§5.2):
// uniform or hotspot-skewed key draws over a fixed key space, operation
// mixes (reads / inserts / deletes / scans), deterministic values, and the
// database initialization recipes the paper uses (random-order half-load
// for mixed workloads, sorted full load for read-only).

#ifndef FLODB_BENCH_UTIL_WORKLOAD_H_
#define FLODB_BENCH_UTIL_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <string>

#include "flodb/common/random.h"
#include "flodb/common/slice.h"
#include "flodb/core/kv_store.h"

namespace flodb::bench {

enum class OpType { kGet, kPut, kDelete, kScan, kBatchPut };

// Key-draw distribution over [0, key_space).
enum class KeyDistribution {
  kUniform,
  // Two-level hotspot: `hot_access_fraction` of draws land in the first
  // `hot_key_fraction` of the key space (paper §5.4: 98% of ops on 2%).
  kHotspot,
  // YCSB-style scrambled zipfian: ranks follow a zipfian(theta) law and
  // are then hashed over the key space, so the hot set is scattered
  // instead of key-adjacent (the realistic shape for cache studies).
  kZipfian,
};

struct WorkloadSpec {
  // Operation mix; fractions must sum to ~1.
  double get_fraction = 0.0;
  double put_fraction = 0.0;
  double delete_fraction = 0.0;
  double scan_fraction = 0.0;
  // Batched writes: each op commits `batch_entries` Puts of random keys
  // through one KVStore::Write (group commit amortization).
  double batch_put_fraction = 0.0;
  size_t batch_entries = 64;

  uint64_t key_space = 100'000;
  size_t value_bytes = 64;   // paper: 256B values, 8B keys (scaled here)
  size_t scan_length = 100;  // keys per scan (Figure 13: 100)

  // Key distribution. `skewed` is the legacy hotspot switch kept for the
  // figure benches; when set it overrides `distribution` with kHotspot.
  KeyDistribution distribution = KeyDistribution::kUniform;
  bool skewed = false;
  double hot_key_fraction = 0.02;
  double hot_access_fraction = 0.98;
  double zipfian_theta = 0.99;  // YCSB default skew

  uint64_t seed = 42;
};

// Zipfian rank generator over [0, n) after Gray et al. / YCSB: rank 0 is
// the hottest. Construction is O(n) (zeta sum); Next() is O(1).
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta);

  uint64_t Next(Random64& rng) const;

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double threshold2_;  // cumulative probability of the two hottest ranks
};

// Per-thread generator (no shared state, deterministic per (seed, thread)).
class WorkloadGenerator {
 public:
  WorkloadGenerator(const WorkloadSpec& spec, int thread_id);

  OpType NextOp();
  uint64_t NextKey();

  // A value buffer permuted per call (cheap, avoids memset per op).
  Slice NextValue();

 private:
  const WorkloadSpec spec_;
  const KeyDistribution distribution_;
  Random64 rng_;
  std::unique_ptr<ZipfianGenerator> zipf_;  // only for kZipfian
  std::string value_buf_;
  uint64_t value_salt_ = 0;
};

// Deterministic value contents for key k (tests verify round-trips).
std::string ValueForKey(uint64_t key, size_t value_bytes);

// Maps a dense logical key in [0, key_space) onto the full 64-bit domain,
// preserving order and uniform spacing. The paper's datasets use random
// 8-byte keys over the whole domain; dense 0..N keys would all share the
// same top bits and collapse into one Membuffer partition. All benchmark
// paths (loads, gets, scans) must go through this mapping.
inline uint64_t SpreadKey(uint64_t key, uint64_t key_space) {
  const uint64_t stride = key_space > 0 ? (~uint64_t{0}) / key_space : 1;
  return key * stride;
}

// Inserts `count` keys drawn as a pseudo-random permutation of
// [0, key_space) — the paper's "inserted in random order" initialization.
// Loads commit through WriteBatches of kLoadBatchEntries for amortized
// ingestion; the resulting store state is identical to per-key Puts.
Status LoadRandomOrder(KVStore* store, uint64_t count, uint64_t key_space, size_t value_bytes);

// Inserts keys 0..count-1 in ascending order — the paper's sequential
// initialization for the read-only experiment (optimal on-disk layout).
Status LoadSequential(KVStore* store, uint64_t count, size_t value_bytes);

inline constexpr size_t kLoadBatchEntries = 256;

}  // namespace flodb::bench

#endif  // FLODB_BENCH_UTIL_WORKLOAD_H_
