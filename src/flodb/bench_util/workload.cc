#include "flodb/bench_util/workload.h"

#include "flodb/common/key_codec.h"

namespace flodb::bench {

WorkloadGenerator::WorkloadGenerator(const WorkloadSpec& spec, int thread_id)
    : spec_(spec), rng_(spec.seed * 0x9e3779b9u + static_cast<uint64_t>(thread_id) * 7919u + 1) {
  value_buf_.resize(spec_.value_bytes);
  for (size_t i = 0; i < value_buf_.size(); ++i) {
    value_buf_[i] = static_cast<char>('a' + (i + static_cast<size_t>(thread_id)) % 26);
  }
}

OpType WorkloadGenerator::NextOp() {
  const double r = rng_.NextDouble();
  double threshold = spec_.get_fraction;
  if (r < threshold) {
    return OpType::kGet;
  }
  threshold += spec_.put_fraction;
  if (r < threshold) {
    return OpType::kPut;
  }
  threshold += spec_.delete_fraction;
  if (r < threshold) {
    return OpType::kDelete;
  }
  threshold += spec_.batch_put_fraction;
  if (r < threshold) {
    return OpType::kBatchPut;
  }
  return OpType::kScan;
}

uint64_t WorkloadGenerator::NextKey() {
  if (!spec_.skewed) {
    return rng_.Uniform(spec_.key_space);
  }
  const auto hot_keys =
      static_cast<uint64_t>(static_cast<double>(spec_.key_space) * spec_.hot_key_fraction);
  if (rng_.NextDouble() < spec_.hot_access_fraction && hot_keys > 0) {
    return rng_.Uniform(hot_keys);
  }
  const uint64_t cold = spec_.key_space - hot_keys;
  return cold == 0 ? rng_.Uniform(spec_.key_space) : hot_keys + rng_.Uniform(cold);
}

Slice WorkloadGenerator::NextValue() {
  // Perturb a few bytes so repeated writes differ without a full rewrite.
  if (!value_buf_.empty()) {
    value_salt_ = MixU64(value_salt_ + 1);
    value_buf_[value_salt_ % value_buf_.size()] =
        static_cast<char>('A' + (value_salt_ % 26));
  }
  return Slice(value_buf_);
}

std::string ValueForKey(uint64_t key, size_t value_bytes) {
  std::string value(value_bytes, '\0');
  uint64_t state = MixU64(key + 0x5eedf00d);
  for (size_t i = 0; i < value_bytes; ++i) {
    value[i] = static_cast<char>('a' + (state % 26));
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
  }
  return value;
}

namespace {

// Multiplicative permutation of [0, n): i -> i * prime mod n with prime
// coprime to n; close enough to random order for layout purposes.
uint64_t Permute(uint64_t i, uint64_t n) {
  constexpr uint64_t kPrime = 2654435761u;  // Knuth's multiplicative hash
  return (i * kPrime + 0x1234567) % n;
}

}  // namespace

Status LoadRandomOrder(KVStore* store, uint64_t count, uint64_t key_space, size_t value_bytes) {
  KeyBuf key_buf;
  WriteBatch batch;
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t key = SpreadKey(Permute(i, key_space), key_space);
    batch.Put(key_buf.Set(key), ValueForKey(key, value_bytes));
    if (batch.Count() >= kLoadBatchEntries || i + 1 == count) {
      Status s = store->Write(WriteOptions(), &batch);
      if (!s.ok()) {
        return s;
      }
      batch.Clear();
    }
  }
  return Status::OK();
}

Status LoadSequential(KVStore* store, uint64_t count, size_t value_bytes) {
  KeyBuf key_buf;
  WriteBatch batch;
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t key = SpreadKey(i, count);
    batch.Put(key_buf.Set(key), ValueForKey(key, value_bytes));
    if (batch.Count() >= kLoadBatchEntries || i + 1 == count) {
      Status s = store->Write(WriteOptions(), &batch);
      if (!s.ok()) {
        return s;
      }
      batch.Clear();
    }
  }
  return Status::OK();
}

}  // namespace flodb::bench
