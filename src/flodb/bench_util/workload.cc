#include "flodb/bench_util/workload.h"

#include <cmath>
#include <map>
#include <utility>

#include "flodb/common/hash.h"
#include "flodb/common/key_codec.h"
#include "flodb/common/synchronization.h"

namespace flodb::bench {

namespace {

// Memoized across generators: the O(n) harmonic sum otherwise runs per
// worker thread INSIDE the driver's measured wall-clock window, which
// would deflate zipfian throughput columns relative to uniform ones at
// large key spaces.
double Zeta(uint64_t n, double theta) {
  static Mutex mu;
  static std::map<std::pair<uint64_t, double>, double> memo;
  const std::pair<uint64_t, double> key(n, theta);
  {
    MutexLock lock(mu);
    auto it = memo.find(key);
    if (it != memo.end()) {
      return it->second;
    }
  }
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  MutexLock lock(mu);
  memo.emplace(key, sum);
  return sum;
}

}  // namespace

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta)
    : n_(n == 0 ? 1 : n), theta_(theta) {
  zetan_ = Zeta(n_, theta_);
  const double zeta2 = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) / (1.0 - zeta2 / zetan_);
  threshold2_ = 1.0 + std::pow(0.5, theta_);
}

uint64_t ZipfianGenerator::Next(Random64& rng) const {
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < threshold2_) {
    return 1;
  }
  auto rank = static_cast<uint64_t>(static_cast<double>(n_) *
                                    std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

WorkloadGenerator::WorkloadGenerator(const WorkloadSpec& spec, int thread_id)
    : spec_(spec),
      distribution_(spec.skewed ? KeyDistribution::kHotspot : spec.distribution),
      rng_(spec.seed * 0x9e3779b9u + static_cast<uint64_t>(thread_id) * 7919u + 1) {
  if (distribution_ == KeyDistribution::kZipfian) {
    zipf_ = std::make_unique<ZipfianGenerator>(spec_.key_space, spec_.zipfian_theta);
  }
  value_buf_.resize(spec_.value_bytes);
  for (size_t i = 0; i < value_buf_.size(); ++i) {
    value_buf_[i] = static_cast<char>('a' + (i + static_cast<size_t>(thread_id)) % 26);
  }
}

OpType WorkloadGenerator::NextOp() {
  const double r = rng_.NextDouble();
  double threshold = spec_.get_fraction;
  if (r < threshold) {
    return OpType::kGet;
  }
  threshold += spec_.put_fraction;
  if (r < threshold) {
    return OpType::kPut;
  }
  threshold += spec_.delete_fraction;
  if (r < threshold) {
    return OpType::kDelete;
  }
  threshold += spec_.batch_put_fraction;
  if (r < threshold) {
    return OpType::kBatchPut;
  }
  return OpType::kScan;
}

uint64_t WorkloadGenerator::NextKey() {
  switch (distribution_) {
    case KeyDistribution::kUniform:
      return rng_.Uniform(spec_.key_space);
    case KeyDistribution::kZipfian: {
      // Scramble the rank so hot keys scatter over the key space instead
      // of clustering at its low end (YCSB's "scrambled zipfian").
      const uint64_t rank = zipf_->Next(rng_);
      return MixU64(rank) % spec_.key_space;
    }
    case KeyDistribution::kHotspot:
      break;
  }
  const auto hot_keys =
      static_cast<uint64_t>(static_cast<double>(spec_.key_space) * spec_.hot_key_fraction);
  if (rng_.NextDouble() < spec_.hot_access_fraction && hot_keys > 0) {
    return rng_.Uniform(hot_keys);
  }
  const uint64_t cold = spec_.key_space - hot_keys;
  return cold == 0 ? rng_.Uniform(spec_.key_space) : hot_keys + rng_.Uniform(cold);
}

Slice WorkloadGenerator::NextValue() {
  // Perturb a few bytes so repeated writes differ without a full rewrite.
  if (!value_buf_.empty()) {
    value_salt_ = MixU64(value_salt_ + 1);
    value_buf_[value_salt_ % value_buf_.size()] =
        static_cast<char>('A' + (value_salt_ % 26));
  }
  return Slice(value_buf_);
}

std::string ValueForKey(uint64_t key, size_t value_bytes) {
  std::string value(value_bytes, '\0');
  uint64_t state = MixU64(key + 0x5eedf00d);
  for (size_t i = 0; i < value_bytes; ++i) {
    value[i] = static_cast<char>('a' + (state % 26));
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
  }
  return value;
}

namespace {

// Multiplicative permutation of [0, n): i -> i * prime mod n with prime
// coprime to n; close enough to random order for layout purposes.
uint64_t Permute(uint64_t i, uint64_t n) {
  constexpr uint64_t kPrime = 2654435761u;  // Knuth's multiplicative hash
  return (i * kPrime + 0x1234567) % n;
}

}  // namespace

Status LoadRandomOrder(KVStore* store, uint64_t count, uint64_t key_space, size_t value_bytes) {
  KeyBuf key_buf;
  WriteBatch batch;
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t key = SpreadKey(Permute(i, key_space), key_space);
    batch.Put(key_buf.Set(key), ValueForKey(key, value_bytes));
    if (batch.Count() >= kLoadBatchEntries || i + 1 == count) {
      Status s = store->Write(WriteOptions(), &batch);
      if (!s.ok()) {
        return s;
      }
      batch.Clear();
    }
  }
  return Status::OK();
}

Status LoadSequential(KVStore* store, uint64_t count, size_t value_bytes) {
  KeyBuf key_buf;
  WriteBatch batch;
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t key = SpreadKey(i, count);
    batch.Put(key_buf.Set(key), ValueForKey(key, value_bytes));
    if (batch.Count() >= kLoadBatchEntries || i + 1 == count) {
      Status s = store->Write(WriteOptions(), &batch);
      if (!s.ok()) {
        return s;
      }
      batch.Clear();
    }
  }
  return Status::OK();
}

}  // namespace flodb::bench
