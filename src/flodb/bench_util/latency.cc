#include "flodb/bench_util/latency.h"

#include <algorithm>

namespace flodb::bench {

void LatencyRecorder::Merge(const LatencyRecorder& other) {
  count_ += other.count_;
  for (uint64_t sample : other.samples_) {
    if (samples_.size() < capacity_) {
      samples_.push_back(sample);
    } else {
      const uint64_t slot = rng_.Uniform(samples_.size() * 2);
      if (slot < samples_.size()) {
        samples_[slot] = sample;
      }
    }
  }
}

uint64_t LatencyRecorder::PercentileNanos(double p) {
  if (samples_.empty()) {
    return 0;
  }
  std::sort(samples_.begin(), samples_.end());
  double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
  if (rank < 0) {
    rank = 0;
  }
  return samples_[static_cast<size_t>(rank)];
}

}  // namespace flodb::bench
