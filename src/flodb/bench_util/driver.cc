#include "flodb/bench_util/driver.h"

#include <atomic>
#include <thread>

#include "flodb/common/clock.h"
#include "flodb/common/key_codec.h"

namespace flodb::bench {

namespace {

struct ThreadTotals {
  uint64_t gets = 0, puts = 0, deletes = 0, scans = 0, batch_commits = 0, keys = 0;
  LatencyRecorder read_lat;
  LatencyRecorder write_lat;
};

void WorkerLoop(KVStore* store, const WorkloadSpec& spec, int thread_id,
                const DriverOptions& options, std::atomic<bool>* stop, ThreadTotals* totals) {
  const double seconds = options.seconds;
  const uint64_t ops_limit = options.ops_per_thread;
  const bool record_latency = options.record_latency;
  WorkloadGenerator gen(spec, thread_id);
  KeyBuf key_buf;
  KeyBuf high_buf;
  std::string value;
  std::vector<std::pair<std::string, std::string>> scan_out;
  WriteBatch batch;
  const uint64_t deadline = NowNanos() + static_cast<uint64_t>(seconds * 1e9);

  uint64_t check = 0;
  while (true) {
    ++check;
    if (ops_limit != 0) {
      if (check > ops_limit) {
        break;
      }
    } else if ((check & 0x3f) == 0 &&
               (NowNanos() >= deadline || stop->load(std::memory_order_relaxed))) {
      break;
    }
    const OpType op = gen.NextOp();
    const uint64_t logical_key = gen.NextKey();
    const uint64_t key = SpreadKey(logical_key, spec.key_space);
    const uint64_t t0 = record_latency ? NowNanos() : 0;
    switch (op) {
      case OpType::kGet:
        store->Get(options.read_options, key_buf.Set(key), &value);
        ++totals->gets;
        ++totals->keys;
        if (record_latency) {
          totals->read_lat.Record(NowNanos() - t0);
        }
        break;
      case OpType::kPut:
        store->Put(options.write_options, key_buf.Set(key), gen.NextValue());
        ++totals->puts;
        ++totals->keys;
        if (record_latency) {
          totals->write_lat.Record(NowNanos() - t0);
        }
        break;
      case OpType::kDelete:
        store->Delete(options.write_options, key_buf.Set(key));
        ++totals->deletes;
        ++totals->keys;
        if (record_latency) {
          totals->write_lat.Record(NowNanos() - t0);
        }
        break;
      case OpType::kBatchPut: {
        // One group commit of `batch_entries` random-key Puts; the first
        // key reuses this op's draw so mixes stay comparable.
        batch.Clear();
        batch.Put(key_buf.Set(key), gen.NextValue());
        for (size_t e = 1; e < spec.batch_entries; ++e) {
          const uint64_t k = SpreadKey(gen.NextKey(), spec.key_space);
          batch.Put(key_buf.Set(k), gen.NextValue());
        }
        store->Write(options.write_options, &batch);
        ++totals->batch_commits;
        totals->puts += batch.Count();
        totals->keys += batch.Count();
        if (record_latency) {
          totals->write_lat.Record(NowNanos() - t0);
        }
        break;
      }
      case OpType::kScan: {
        const uint64_t high = SpreadKey(logical_key + spec.scan_length, spec.key_space);
        store->Scan(options.read_options, key_buf.Set(key),
                    high_buf.Set(high < key ? UINT64_MAX : high), spec.scan_length, &scan_out);
        ++totals->scans;
        // Key-throughput accounting as in Golan-Gueta et al. (§5.2).
        totals->keys += spec.scan_length;
        break;
      }
    }
  }
}

}  // namespace

DriverResult RunWorkload(KVStore* store, const WorkloadSpec& spec, const DriverOptions& options) {
  std::vector<ThreadTotals> totals(static_cast<size_t>(options.threads));
  std::vector<std::thread> threads;
  std::atomic<bool> stop{false};

  const uint64_t start = NowNanos();
  for (int t = 0; t < options.threads; ++t) {
    const WorkloadSpec& thread_spec =
        (options.two_role && t == 0) ? options.writer_spec : spec;
    threads.emplace_back([&, t, &thread_spec = thread_spec] {
      WorkerLoop(store, thread_spec, t, options, &stop, &totals[static_cast<size_t>(t)]);
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const double elapsed = SecondsSince(start);

  DriverResult result;
  result.elapsed_seconds = elapsed;
  LatencyRecorder reads, writes;
  for (ThreadTotals& t : totals) {
    result.gets += t.gets;
    result.puts += t.puts;
    result.deletes += t.deletes;
    result.scans += t.scans;
    result.batch_commits += t.batch_commits;
    result.keys_accessed += t.keys;
    reads.Merge(t.read_lat);
    writes.Merge(t.write_lat);
  }
  result.ops = result.gets + result.puts + result.deletes + result.scans;
  if (options.record_latency) {
    result.read_p50 = reads.PercentileNanos(50);
    result.read_p99 = reads.PercentileNanos(99);
    result.write_p50 = writes.PercentileNanos(50);
    result.write_p99 = writes.PercentileNanos(99);
  }
  return result;
}

}  // namespace flodb::bench
