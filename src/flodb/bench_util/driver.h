// ThroughputDriver: runs N threads against a KVStore for a fixed duration
// and aggregates throughput / per-op-type latency — the engine behind
// every system-level figure (9-16).

#ifndef FLODB_BENCH_UTIL_DRIVER_H_
#define FLODB_BENCH_UTIL_DRIVER_H_

#include <cstdint>
#include <vector>

#include "flodb/bench_util/latency.h"
#include "flodb/bench_util/workload.h"
#include "flodb/core/kv_store.h"

namespace flodb::bench {

struct DriverOptions {
  int threads = 1;
  double seconds = 2.0;
  bool record_latency = false;
  // Figure 12 shape: thread 0 uses `writer_spec`, the rest use the main
  // spec (set `two_role` true).
  bool two_role = false;
  WorkloadSpec writer_spec;
  // Burst mode (Figures 15/17): when non-zero each thread performs exactly
  // this many operations instead of running for `seconds`.
  uint64_t ops_per_thread = 0;
  // Per-operation options threaded to the store (sync WAL commits,
  // snapshot-mode hints, stat suppression).
  WriteOptions write_options;
  ReadOptions read_options;
};

struct DriverResult {
  uint64_t ops = 0;
  uint64_t gets = 0;
  uint64_t puts = 0;        // includes entries committed via batch ops
  uint64_t deletes = 0;
  uint64_t scans = 0;
  uint64_t batch_commits = 0;  // KVStore::Write calls from kBatchPut ops
  uint64_t keys_accessed = 0;  // scans count scan_length keys (§5.2)
  double elapsed_seconds = 0;

  double MopsPerSec() const {
    return elapsed_seconds > 0 ? static_cast<double>(ops) / elapsed_seconds / 1e6 : 0;
  }
  double MkeysPerSec() const {
    return elapsed_seconds > 0 ? static_cast<double>(keys_accessed) / elapsed_seconds / 1e6 : 0;
  }
  double WriteMopsPerSec() const {
    return elapsed_seconds > 0 ? static_cast<double>(puts + deletes) / elapsed_seconds / 1e6 : 0;
  }
  double ScanMopsPerSec() const {
    return elapsed_seconds > 0 ? static_cast<double>(scans) / elapsed_seconds / 1e6 : 0;
  }

  // Populated when record_latency is set (nanoseconds).
  uint64_t read_p50 = 0, read_p99 = 0;
  uint64_t write_p50 = 0, write_p99 = 0;
};

DriverResult RunWorkload(KVStore* store, const WorkloadSpec& spec, const DriverOptions& options);

}  // namespace flodb::bench

#endif  // FLODB_BENCH_UTIL_DRIVER_H_
