// ByteBuffer: the per-connection read/write ring used by the network
// layer (DESIGN.md §11). A contiguous byte queue with a consumed prefix:
// readers see [ReadPtr, ReadPtr + Readable), writers append at the tail.
// The consumed prefix is reclaimed by sliding the live region to the
// front — but ONLY inside EnsureWritable/Append, never inside Consume, so
// zero-copy Slices handed out by the RESP parser stay valid for the whole
// parse-dispatch cycle of a read burst (no appends happen mid-burst).
//
// Not thread-safe; each connection is pinned to one event-loop worker.

#ifndef FLODB_NET_BYTE_BUFFER_H_
#define FLODB_NET_BYTE_BUFFER_H_

#include <cstddef>
#include <cstring>
#include <string_view>
#include <vector>

namespace flodb {

class ByteBuffer {
 public:
  explicit ByteBuffer(size_t initial_capacity = 4096) { buf_.resize(initial_capacity); }

  // ---- read side ----
  const char* ReadPtr() const { return buf_.data() + read_; }
  size_t Readable() const { return write_ - read_; }
  bool Empty() const { return read_ == write_; }

  // Advances the read cursor without moving memory (pointers into the
  // readable region stay valid until the next EnsureWritable/Append).
  void Consume(size_t n) {
    read_ += n;
    if (read_ == write_) {
      read_ = write_ = 0;  // cheap full reset, no memmove
    }
  }

  // ---- write side ----

  // Returns a pointer to at least `n` contiguous writable bytes, sliding
  // the live region to the front (and growing the backing store) as
  // needed. Invalidates previously returned read pointers.
  char* EnsureWritable(size_t n) {
    if (buf_.size() - write_ < n) {
      Compact();
      if (buf_.size() - write_ < n) {
        size_t want = write_ + n;
        size_t cap = buf_.size() < 64 ? 64 : buf_.size();
        while (cap < want) cap *= 2;
        buf_.resize(cap);
      }
    }
    return buf_.data() + write_;
  }
  void CommitWrite(size_t n) { write_ += n; }

  void Append(const void* data, size_t n) {
    std::memcpy(EnsureWritable(n), data, n);
    write_ += n;
  }
  void Append(std::string_view s) { Append(s.data(), s.size()); }

  size_t Capacity() const { return buf_.size(); }

 private:
  void Compact() {
    if (read_ > 0) {
      std::memmove(buf_.data(), buf_.data() + read_, write_ - read_);
      write_ -= read_;
      read_ = 0;
    }
  }

  std::vector<char> buf_;
  size_t read_ = 0;   // first unconsumed byte
  size_t write_ = 0;  // first free byte
};

}  // namespace flodb

#endif  // FLODB_NET_BYTE_BUFFER_H_
