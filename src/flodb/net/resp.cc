#include "flodb/net/resp.h"

#include <cstdio>

namespace flodb {
namespace {

// Parses a decimal integer terminated by CRLF starting at data[pos].
// Returns false while the line is incomplete; a malformed line (no
// digits, junk before CR, value over `cap`) sets *bad.
bool ParseCrlfInt(const char* data, size_t len, size_t pos, int64_t cap, int64_t* value,
                  size_t* next, bool* bad) {
  *bad = false;
  size_t i = pos;
  bool negative = false;
  if (i < len && (data[i] == '-' || data[i] == '+')) {
    negative = data[i] == '-';
    ++i;
  }
  int64_t v = 0;
  size_t digits = 0;
  while (i < len && data[i] >= '0' && data[i] <= '9') {
    v = v * 10 + (data[i] - '0');
    ++digits;
    if (digits > 12 || v > cap) {  // 12 digits > any sane frame header
      *bad = true;
      return false;
    }
    ++i;
  }
  if (i + 1 >= len) {
    // Could still be mid-number or awaiting CRLF — but only if what we
    // saw so far is a valid prefix.
    if (digits == 0 && i == len) {
      return false;  // nothing after the type byte yet
    }
    if (i < len && data[i] != '\r') {
      *bad = true;
      return false;
    }
    return false;
  }
  if (digits == 0 || data[i] != '\r' || data[i + 1] != '\n') {
    *bad = true;
    return false;
  }
  *value = negative ? -v : v;
  *next = i + 2;
  return true;
}

}  // namespace

RespParse RespParser::Next(const char* data, size_t len, RespCommand* cmd, size_t* consumed,
                           std::string* error) {
  cmd->args.clear();
  *consumed = 0;
  if (len < min_frame_bytes_) {
    return RespParse::kNeedMore;  // promised bytes still in flight
  }
  min_frame_bytes_ = 0;

  size_t pos = 0;
  // Skip empty inline lines (bare CRLF / LF), as Redis does.
  while (pos < len && (data[pos] == '\r' || data[pos] == '\n')) {
    ++pos;
  }
  if (pos == len) {
    *consumed = pos;
    return RespParse::kNeedMore;
  }

  if (data[pos] != '*') {
    // Inline command: one line, arguments split on spaces/tabs.
    size_t eol = pos;
    while (eol < len && data[eol] != '\n') {
      ++eol;
    }
    if (eol == len) {
      if (len - pos > limits_.max_inline_bytes) {
        *error = "Protocol error: too big inline request";
        return RespParse::kError;
      }
      return RespParse::kNeedMore;
    }
    size_t line_end = eol > pos && data[eol - 1] == '\r' ? eol - 1 : eol;
    if (line_end - pos > limits_.max_inline_bytes) {
      *error = "Protocol error: too big inline request";
      return RespParse::kError;
    }
    size_t i = pos;
    while (i < line_end) {
      while (i < line_end && (data[i] == ' ' || data[i] == '\t')) {
        ++i;
      }
      size_t start = i;
      while (i < line_end && data[i] != ' ' && data[i] != '\t') {
        ++i;
      }
      if (i > start) {
        cmd->args.emplace_back(data + start, i - start);
      }
    }
    *consumed = eol + 1;
    if (cmd->args.empty()) {
      return RespParse::kNeedMore;  // whitespace-only line; consumed & skipped
    }
    return RespParse::kCommand;
  }

  // Multibulk: *<argc>\r\n then argc × ($<len>\r\n<payload>\r\n).
  int64_t argc = 0;
  size_t next = 0;
  bool bad = false;
  if (!ParseCrlfInt(data, len, pos + 1, static_cast<int64_t>(limits_.max_args), &argc, &next,
                    &bad)) {
    if (bad) {
      *error = "Protocol error: invalid multibulk length";
      return RespParse::kError;
    }
    return RespParse::kNeedMore;
  }
  if (argc < 0) {
    *error = "Protocol error: invalid multibulk length";
    return RespParse::kError;
  }
  pos = next;
  cmd->args.reserve(static_cast<size_t>(argc));
  for (int64_t i = 0; i < argc; ++i) {
    if (pos == len) {
      return RespParse::kNeedMore;
    }
    if (data[pos] != '$') {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "Protocol error: expected '$', got '%c'", data[pos]);
      *error = buf;
      return RespParse::kError;
    }
    int64_t blen = 0;
    if (!ParseCrlfInt(data, len, pos + 1, static_cast<int64_t>(limits_.max_bulk_bytes), &blen,
                      &next, &bad)) {
      if (bad) {
        *error = "Protocol error: invalid bulk length";
        return RespParse::kError;
      }
      return RespParse::kNeedMore;
    }
    if (blen < 0) {
      *error = "Protocol error: invalid bulk length";
      return RespParse::kError;
    }
    pos = next;
    const size_t need = static_cast<size_t>(blen) + 2;
    if (len - pos < need) {
      cmd->args.clear();
      return NeedAtLeast(pos + need);
    }
    if (data[pos + blen] != '\r' || data[pos + blen + 1] != '\n') {
      *error = "Protocol error: bulk payload not CRLF-terminated";
      return RespParse::kError;
    }
    cmd->args.emplace_back(data + pos, static_cast<size_t>(blen));
    pos += need;
  }
  *consumed = pos;
  return RespParse::kCommand;
}

void RespAppendSimple(std::string* out, std::string_view s) {
  out->push_back('+');
  out->append(s);
  out->append("\r\n");
}

void RespAppendError(std::string* out, std::string_view msg) {
  out->push_back('-');
  out->append(msg);
  out->append("\r\n");
}

void RespAppendInteger(std::string* out, int64_t v) {
  char buf[32];
  int n = std::snprintf(buf, sizeof(buf), ":%lld\r\n", static_cast<long long>(v));
  out->append(buf, static_cast<size_t>(n));
}

void RespAppendBulk(std::string* out, std::string_view s) {
  char buf[32];
  int n = std::snprintf(buf, sizeof(buf), "$%zu\r\n", s.size());
  out->append(buf, static_cast<size_t>(n));
  out->append(s);
  out->append("\r\n");
}

void RespAppendNil(std::string* out) { out->append("$-1\r\n"); }

void RespAppendArrayHeader(std::string* out, size_t n) {
  char buf[32];
  int len = std::snprintf(buf, sizeof(buf), "*%zu\r\n", n);
  out->append(buf, static_cast<size_t>(len));
}

}  // namespace flodb
