#include "flodb/net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <unordered_map>

#include "flodb/core/write_batch.h"
#include "flodb/net/byte_buffer.h"

namespace flodb {

namespace {

constexpr int kMaxEpollEvents = 64;
// Bounded blocking drain per worker during Shutdown().
constexpr int kDrainTimeoutMs = 5000;

std::string UpperVerb(const Slice& s) {
  std::string verb(s.data(), s.size());
  for (char& c : verb) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return verb;
}

void AppendWrongArity(std::string* out, const std::string& verb) {
  std::string msg = "ERR wrong number of arguments for '" + verb + "' command";
  RespAppendError(out, msg);
}

}  // namespace

// One client connection; owned by (and only ever touched from) a single
// worker thread.
struct Server::Connection {
  int fd = -1;
  ByteBuffer in{16 << 10};
  ByteBuffer out{16 << 10};
  RespParser parser;

  // The fold target: write commands staged since the last commit point.
  WriteBatch pending;
  // One buffered RESP reply per staged write command, emitted in order
  // after the batch commits (replaced by -ERR on commit failure).
  std::vector<std::string> pending_replies;
  // Burst-local view of keys the pending batch writes, so DEL existence
  // checks see earlier writes of the same burst before they commit.
  std::unordered_map<std::string, bool> pending_present;  // true = live value

  std::string scratch;  // reply build area, reused across commands

  bool close_after_flush = false;  // emitted a fatal error / QUIT
  bool peer_eof = false;

  explicit Connection(const RespLimits& limits) : parser(limits) {}
};

struct Server::Worker {
  int epoll_fd = -1;
  int wake_fd = -1;
  std::thread thread;

  Mutex mu;
  std::vector<int> incoming GUARDED_BY(mu);  // accepted fds awaiting registration
  bool stop GUARDED_BY(mu) = false;

  std::unordered_map<int, std::unique_ptr<Connection>> conns;
};

Server::Server(const ServerOptions& options, KVStore* store) : options_(options), store_(store) {}

Status Server::Start(const ServerOptions& options, KVStore* store,
                     std::unique_ptr<Server>* out) {
  out->reset();
  if (store == nullptr) {
    return Status::InvalidArgument("server: store is required");
  }
  if (options.port < 0 || options.port > 65535) {
    return Status::InvalidArgument("server: port out of range");
  }
  if (options.workers < 0) {
    return Status::InvalidArgument("server: workers must be >= 0");
  }
  std::unique_ptr<Server> server(new Server(options, store));

  int workers = options.workers;
  if (workers == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    workers = static_cast<int>(hw / 2);
    if (workers < 1) workers = 1;
    if (workers > 8) workers = 8;
  }

  Status s = server->Listen();
  if (!s.ok()) {
    return s;
  }

  for (int i = 0; i < workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->epoll_fd = epoll_create1(EPOLL_CLOEXEC);
    worker->wake_fd = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (worker->epoll_fd < 0 || worker->wake_fd < 0) {
      return Status::IOError("server: epoll_create1/eventfd failed");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = worker->wake_fd;
    if (epoll_ctl(worker->epoll_fd, EPOLL_CTL_ADD, worker->wake_fd, &ev) != 0) {
      return Status::IOError("server: epoll_ctl(wake_fd) failed");
    }
    server->workers_.push_back(std::move(worker));
  }
  server->acceptor_wake_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (server->acceptor_wake_fd_ < 0) {
    return Status::IOError("server: eventfd failed");
  }

  for (auto& worker : server->workers_) {
    Worker* w = worker.get();
    w->thread = std::thread([server_ptr = server.get(), w] { server_ptr->WorkerLoop(w); });
  }
  server->acceptor_thread_ =
      std::thread([server_ptr = server.get()] { server_ptr->AcceptorLoop(); });

  *out = std::move(server);
  return Status::OK();
}

Server::~Server() {
  Shutdown();
  for (auto& worker : workers_) {
    if (worker->epoll_fd >= 0) close(worker->epoll_fd);
    if (worker->wake_fd >= 0) close(worker->wake_fd);
  }
  if (acceptor_wake_fd_ >= 0) close(acceptor_wake_fd_);
}

Status Server::Listen() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IOError("server: socket() failed");
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("server: bad bind address: " + options_.bind_address);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Status::IOError("server: bind(" + options_.bind_address + ":" +
                           std::to_string(options_.port) + ") failed: " + strerror(errno));
  }
  if (listen(listen_fd_, options_.listen_backlog) != 0) {
    return Status::IOError(std::string("server: listen() failed: ") + strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return Status::IOError("server: getsockname() failed");
  }
  port_ = ntohs(bound.sin_port);
  return Status::OK();
}

void Server::AcceptorLoop() {
  int epfd = epoll_create1(EPOLL_CLOEXEC);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  epoll_ctl(epfd, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = acceptor_wake_fd_;
  epoll_ctl(epfd, EPOLL_CTL_ADD, acceptor_wake_fd_, &ev);

  size_t next_worker = 0;
  epoll_event events[kMaxEpollEvents];
  while (!stop_accepting_.load(std::memory_order_acquire)) {
    int n = epoll_wait(epfd, events, kMaxEpollEvents, -1);
    if (n < 0 && errno != EINTR) {
      break;
    }
    for (int i = 0; i < n; ++i) {
      if (events[i].data.fd == acceptor_wake_fd_) {
        uint64_t tick;
        while (read(acceptor_wake_fd_, &tick, sizeof(tick)) > 0) {
        }
        continue;
      }
      // Level-triggered accept: drain the backlog.
      for (;;) {
        int fd = accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
          break;  // EAGAIN or transient error; epoll will re-arm
        }
        const uint64_t active = stats_.connections_accepted.load(std::memory_order_relaxed) -
                                stats_.connections_closed.load(std::memory_order_relaxed);
        if (active >= static_cast<uint64_t>(options_.max_connections)) {
          stats_.connections_rejected.fetch_add(1, std::memory_order_relaxed);
          close(fd);
          continue;
        }
        if (options_.tcp_nodelay) {
          int one = 1;
          setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        }
        stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
        Worker* w = workers_[next_worker++ % workers_.size()].get();
        {
          MutexLock lock(w->mu);
          w->incoming.push_back(fd);
        }
        uint64_t one64 = 1;
        ssize_t ignored = write(w->wake_fd, &one64, sizeof(one64));
        (void)ignored;
      }
    }
  }
  close(epfd);
}

void Server::AdoptIncoming(Worker* worker) {
  std::vector<int> fds;
  {
    MutexLock lock(worker->mu);
    fds.swap(worker->incoming);
  }
  for (int fd : fds) {
    auto conn = std::make_unique<Connection>(options_.limits);
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
    ev.data.fd = fd;
    if (epoll_ctl(worker->epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      close(fd);
      stats_.connections_closed.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    worker->conns.emplace(fd, std::move(conn));
  }
}

void Server::WorkerLoop(Worker* worker) {
  epoll_event events[kMaxEpollEvents];
  for (;;) {
    int n = epoll_wait(worker->epoll_fd, events, kMaxEpollEvents, -1);
    if (n < 0 && errno != EINTR) {
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == worker->wake_fd) {
        uint64_t tick;
        while (read(worker->wake_fd, &tick, sizeof(tick)) > 0) {
        }
        AdoptIncoming(worker);
        continue;
      }
      auto it = worker->conns.find(fd);
      if (it == worker->conns.end()) {
        continue;  // closed earlier in this batch of events
      }
      Connection* conn = it->second.get();
      const uint32_t mask = events[i].events;
      if (mask & (EPOLLERR | EPOLLHUP)) {
        CloseConnection(worker, conn);
        continue;
      }
      if (mask & (EPOLLIN | EPOLLRDHUP)) {
        HandleReadable(worker, conn);
        if (worker->conns.find(fd) == worker->conns.end()) {
          continue;  // closed during processing
        }
      }
      if (mask & EPOLLOUT) {
        FlushOutput(worker, conn);
      }
    }
    bool stop;
    {
      MutexLock lock(worker->mu);
      stop = worker->stop;
    }
    if (stop) {
      DrainWorker(worker);
      return;
    }
  }
}

void Server::HandleReadable(Worker* worker, Connection* conn) {
  // Edge-triggered: read until EAGAIN (or EOF) so no edge is lost.
  for (;;) {
    char* dst = conn->in.EnsureWritable(64 << 10);
    ssize_t n = recv(conn->fd, dst, 64 << 10, 0);
    if (n > 0) {
      conn->in.CommitWrite(static_cast<size_t>(n));
      stats_.bytes_in.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
      continue;
    }
    if (n == 0) {
      conn->peer_eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    }
    if (errno == EINTR) {
      continue;
    }
    CloseConnection(worker, conn);
    return;
  }
  ProcessInput(conn);
  FlushOutput(worker, conn);
  // FlushOutput may already have closed (fatal send error / close_after_flush).
  if (worker->conns.find(conn->fd) == worker->conns.end()) {
    return;
  }
  if (conn->peer_eof) {
    CloseConnection(worker, conn);
  }
}

void Server::FlushOutput(Worker* worker, Connection* conn) {
  while (!conn->out.Empty()) {
    ssize_t n = send(conn->fd, conn->out.ReadPtr(), conn->out.Readable(), MSG_NOSIGNAL);
    if (n > 0) {
      stats_.bytes_out.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
      conn->out.Consume(static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return;  // EPOLLOUT edge will resume the flush
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    CloseConnection(worker, conn);
    return;
  }
  if (conn->close_after_flush) {
    CloseConnection(worker, conn);
  }
}

void Server::CloseConnection(Worker* worker, Connection* conn) {
  const int fd = conn->fd;
  epoll_ctl(worker->epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  close(fd);
  worker->conns.erase(fd);
  stats_.connections_closed.fetch_add(1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Command processing
// ---------------------------------------------------------------------------

void Server::ProcessInput(Connection* conn) {
  RespCommand cmd;
  for (;;) {
    size_t consumed = 0;
    std::string error;
    const RespParse result =
        conn->parser.Next(conn->in.ReadPtr(), conn->in.Readable(), &cmd, &consumed, &error);
    if (result == RespParse::kNeedMore) {
      conn->in.Consume(consumed);  // skipped blank inline lines, if any
      if (consumed == 0) {
        break;
      }
      continue;
    }
    if (result == RespParse::kError) {
      // The staged writes were complete, valid commands — commit them and
      // emit their replies before the fatal error, then close: there is
      // no way to resynchronize a corrupt frame stream.
      CommitPending(conn);
      stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      conn->scratch.clear();
      RespAppendError(&conn->scratch, "ERR " + error);
      conn->out.Append(conn->scratch);
      conn->close_after_flush = true;
      break;
    }
    if (cmd.args.empty()) {  // "*0\r\n": legal, meaningless — ignore like Redis
      conn->in.Consume(consumed);
      continue;
    }
    DispatchCommand(conn, cmd);
    conn->in.Consume(consumed);
    stats_.commands_processed.fetch_add(1, std::memory_order_relaxed);
    if (conn->close_after_flush) {
      break;  // QUIT: stop parsing, drain what we owe
    }
  }
  // End of the read burst: everything parseable is dispatched, so the
  // folded batch commits now — this is the network->group-commit batching
  // boundary.
  CommitPending(conn);
}

void Server::CommitPending(Connection* conn) {
  if (conn->pending.Empty()) {
    return;
  }
  WriteOptions wo;
  wo.sync = options_.sync_writes;
  const Status s = store_->Write(wo, &conn->pending);
  stats_.pipelined_batches.fetch_add(1, std::memory_order_relaxed);
  stats_.batched_write_commands.fetch_add(conn->pending_replies.size(),
                                          std::memory_order_relaxed);
  if (s.ok()) {
    for (const std::string& reply : conn->pending_replies) {
      conn->out.Append(reply);
    }
  } else {
    conn->scratch.clear();
    RespAppendError(&conn->scratch, "ERR write failed: " + s.ToString());
    for (size_t i = 0; i < conn->pending_replies.size(); ++i) {
      conn->out.Append(conn->scratch);
    }
  }
  conn->pending.Clear();
  conn->pending_replies.clear();
  conn->pending_present.clear();
}

void Server::DispatchCommand(Connection* conn, const RespCommand& cmd) {
  const std::string verb = UpperVerb(cmd.args[0]);
  // Local reply buffer: CommitPending (called below) builds its error
  // replies in conn->scratch, so the two must not alias.
  std::string reply;

  // ---- write commands: stage into the pending fold batch ----
  if (verb == "SET") {
    if (cmd.args.size() != 3) {
      CommitPending(conn);
      AppendWrongArity(&reply, verb);
      conn->out.Append(reply);
      return;
    }
    conn->pending.Put(cmd.args[1], cmd.args[2]);
    conn->pending_present[cmd.args[1].ToString()] = true;
    conn->pending_replies.emplace_back("+OK\r\n");
    return;
  }
  if (verb == "MSET") {
    if (cmd.args.size() < 3 || cmd.args.size() % 2 != 1) {
      CommitPending(conn);
      AppendWrongArity(&reply, verb);
      conn->out.Append(reply);
      return;
    }
    for (size_t i = 1; i + 1 < cmd.args.size(); i += 2) {
      conn->pending.Put(cmd.args[i], cmd.args[i + 1]);
      conn->pending_present[cmd.args[i].ToString()] = true;
    }
    conn->pending_replies.emplace_back("+OK\r\n");
    return;
  }
  if (verb == "DEL") {
    if (cmd.args.size() < 2) {
      CommitPending(conn);
      AppendWrongArity(&reply, verb);
      conn->out.Append(reply);
      return;
    }
    // Redis semantics: reply with how many of the keys existed. Earlier
    // writes of this burst are still uncommitted, so consult the
    // burst-local overlay before the store.
    int64_t removed = 0;
    ReadOptions ro;
    ro.fill_stats = false;
    std::string ignored;
    for (size_t i = 1; i < cmd.args.size(); ++i) {
      std::string key = cmd.args[i].ToString();
      auto it = conn->pending_present.find(key);
      const bool exists = it != conn->pending_present.end()
                              ? it->second
                              : store_->Get(ro, cmd.args[i], &ignored).ok();
      if (exists) {
        ++removed;
      }
      conn->pending.Delete(cmd.args[i]);
      conn->pending_present[std::move(key)] = false;
    }
    RespAppendInteger(&reply, removed);
    conn->pending_replies.push_back(reply);
    return;
  }

  // ---- everything else reads (or is stateless): the staged writes must
  // be visible first, and replies must stay in command order ----
  CommitPending(conn);

  if (verb == "GET") {
    if (cmd.args.size() != 2) {
      AppendWrongArity(&reply, verb);
    } else {
      std::string value;
      const Status s = store_->Get(ReadOptions(), cmd.args[1], &value);
      if (s.ok()) {
        RespAppendBulk(&reply, value);
      } else if (s.IsNotFound()) {
        RespAppendNil(&reply);
      } else {
        RespAppendError(&reply, "ERR get failed: " + s.ToString());
      }
    }
  } else if (verb == "MGET") {
    if (cmd.args.size() < 2) {
      AppendWrongArity(&reply, verb);
    } else {
      RespAppendArrayHeader(&reply, cmd.args.size() - 1);
      std::string value;
      for (size_t i = 1; i < cmd.args.size(); ++i) {
        if (store_->Get(ReadOptions(), cmd.args[i], &value).ok()) {
          RespAppendBulk(&reply, value);
        } else {
          RespAppendNil(&reply);
        }
      }
    }
  } else if (verb == "SCAN") {
    // SCAN <low> <high> [COUNT n] — a range scan [low, high) over the
    // store's streaming iterator (an empty <high> is unbounded), replying
    // with a flat key,value,... array. This is deliberately FloDB's
    // range-scan surface behind a SCAN-shaped verb, not Redis's
    // cursor-based keyspace walk.
    size_t count = 0;
    bool ok = cmd.args.size() == 3 || cmd.args.size() == 5;
    if (ok && cmd.args.size() == 5) {
      if (UpperVerb(cmd.args[3]) == "COUNT") {
        count = static_cast<size_t>(strtoull(cmd.args[4].ToString().c_str(), nullptr, 10));
      } else {
        ok = false;
      }
    }
    if (!ok) {
      AppendWrongArity(&reply, verb);
    } else {
      if (count == 0 || count > options_.scan_max_entries) {
        count = options_.scan_max_entries;
      }
      auto it = store_->NewScanIterator(ReadOptions(), cmd.args[1], cmd.args[2]);
      std::vector<std::pair<std::string, std::string>> rows;
      for (; it->Valid() && rows.size() < count; it->Next()) {
        rows.emplace_back(it->key().ToString(), it->value().ToString());
      }
      if (!it->status().ok()) {
        RespAppendError(&reply, "ERR scan failed: " + it->status().ToString());
      } else {
        RespAppendArrayHeader(&reply, rows.size() * 2);
        for (const auto& [key, value] : rows) {
          RespAppendBulk(&reply, key);
          RespAppendBulk(&reply, value);
        }
      }
    }
  } else if (verb == "PING") {
    if (cmd.args.size() == 1) {
      RespAppendSimple(&reply, "PONG");
    } else if (cmd.args.size() == 2) {
      RespAppendBulk(&reply, std::string_view(cmd.args[1].data(), cmd.args[1].size()));
    } else {
      AppendWrongArity(&reply, verb);
    }
  } else if (verb == "ECHO") {
    if (cmd.args.size() != 2) {
      AppendWrongArity(&reply, verb);
    } else {
      RespAppendBulk(&reply, std::string_view(cmd.args[1].data(), cmd.args[1].size()));
    }
  } else if (verb == "INFO") {
    RespAppendBulk(&reply, BuildInfoReply());
  } else if (verb == "COMMAND") {
    // redis-cli probes COMMAND/COMMAND DOCS on connect; an empty array
    // keeps it happy without implementing introspection.
    RespAppendArrayHeader(&reply, 0);
  } else if (verb == "QUIT") {
    RespAppendSimple(&reply, "OK");
    conn->close_after_flush = true;
  } else {
    RespAppendError(&reply, "ERR unknown command '" + verb + "'");
  }
  conn->out.Append(reply);
}

std::string Server::BuildInfoReply() const {
  const ServerStats server = GetStats();
  const StoreStats store = store_->GetStats();
  std::string info;
  auto line = [&info](const char* key, uint64_t value) {
    info += key;
    info += ':';
    info += std::to_string(value);
    info += "\r\n";
  };
  info += "# Server\r\n";
  info += "store_name:" + store_->Name() + "\r\n";
  line("tcp_port", static_cast<uint64_t>(port_));
  line("worker_threads", workers_.size());
  line("sync_writes", options_.sync_writes ? 1 : 0);
  info += "# Clients\r\n";
  line("connected_clients", server.ConnectionsActive());
  line("connections_accepted", server.connections_accepted);
  line("connections_rejected", server.connections_rejected);
  info += "# Stats\r\n";
  line("commands_processed", server.commands_processed);
  line("pipelined_batches", server.pipelined_batches);
  line("batched_write_commands", server.batched_write_commands);
  line("protocol_errors", server.protocol_errors);
  line("bytes_in", server.bytes_in);
  line("bytes_out", server.bytes_out);
  info += "# Store\r\n";
  line("puts", store.puts);
  line("gets", store.gets);
  line("deletes", store.deletes);
  line("scans", store.scans);
  line("batch_writes", store.batch_writes);
  line("batch_entries", store.batch_entries);
  line("wal_syncs", store.wal_syncs);
  line("group_commit_groups", store.group_commit_groups);
  line("group_commit_writers", store.group_commit_writers);
  line("membuffer_adds", store.membuffer_adds);
  line("memtable_direct_adds", store.memtable_direct_adds);
  line("membuffer_rotations", store.membuffer_rotations);
  line("txn_commits", store.txn_commits);
  line("block_cache_hits", store.disk.block_cache_hits);
  line("block_cache_misses", store.disk.block_cache_misses);
  return info;
}

// ---------------------------------------------------------------------------
// Shutdown / drain
// ---------------------------------------------------------------------------

void Server::DrainWorker(Worker* worker) {
  // Commit pending batches of complete, already-received commands and
  // flush every buffered reply with a bounded blocking drain, so each
  // connection either got its acknowledgement or never will — nothing is
  // acked without having been committed.
  for (auto& [fd, conn] : worker->conns) {
    ProcessInput(conn.get());
    int waited_ms = 0;
    while (!conn->out.Empty() && waited_ms < kDrainTimeoutMs) {
      ssize_t n = send(fd, conn->out.ReadPtr(), conn->out.Readable(), MSG_NOSIGNAL);
      if (n > 0) {
        stats_.bytes_out.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
        conn->out.Consume(static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        pollfd pfd{fd, POLLOUT, 0};
        const int step_ms = 50;
        poll(&pfd, 1, step_ms);
        waited_ms += step_ms;
        continue;
      }
      if (n < 0 && errno == EINTR) {
        continue;
      }
      break;  // peer gone; their loss
    }
    close(fd);
    stats_.connections_closed.fetch_add(1, std::memory_order_relaxed);
  }
  worker->conns.clear();
  // Accepted-but-unregistered stragglers.
  std::vector<int> fds;
  {
    MutexLock lock(worker->mu);
    fds.swap(worker->incoming);
  }
  for (int fd : fds) {
    close(fd);
    stats_.connections_closed.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::Shutdown() {
  bool expected = false;
  if (!shut_down_.compare_exchange_strong(expected, true)) {
    return;
  }
  // 1. Stop accepting: no new connections can arrive after this joins.
  stop_accepting_.store(true, std::memory_order_release);
  if (acceptor_wake_fd_ >= 0) {
    uint64_t one = 1;
    ssize_t ignored = write(acceptor_wake_fd_, &one, sizeof(one));
    (void)ignored;
  }
  if (acceptor_thread_.joinable()) {
    acceptor_thread_.join();
  }
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  // 2. Drain the workers (each commits + flushes + closes its own
  // connections inside its loop thread, then exits).
  for (auto& worker : workers_) {
    {
      MutexLock lock(worker->mu);
      worker->stop = true;
    }
    uint64_t one = 1;
    ssize_t ignored = write(worker->wake_fd, &one, sizeof(one));
    (void)ignored;
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) {
      worker->thread.join();
    }
  }
}

ServerStats Server::GetStats() const {
  ServerStats s;
  s.connections_accepted = stats_.connections_accepted.load(std::memory_order_relaxed);
  s.connections_closed = stats_.connections_closed.load(std::memory_order_relaxed);
  s.connections_rejected = stats_.connections_rejected.load(std::memory_order_relaxed);
  s.commands_processed = stats_.commands_processed.load(std::memory_order_relaxed);
  s.pipelined_batches = stats_.pipelined_batches.load(std::memory_order_relaxed);
  s.batched_write_commands = stats_.batched_write_commands.load(std::memory_order_relaxed);
  s.protocol_errors = stats_.protocol_errors.load(std::memory_order_relaxed);
  s.bytes_in = stats_.bytes_in.load(std::memory_order_relaxed);
  s.bytes_out = stats_.bytes_out.load(std::memory_order_relaxed);
  return s;
}

}  // namespace flodb
