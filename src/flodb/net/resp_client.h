// RespClient: a small blocking RESP2 client for flodb-cli, the loopback
// tests and fig_server_qps. Supports pipelining explicitly: queue N
// commands, Flush() them in one write, then ReadReply() N times.
//
// Not thread-safe; one connection per thread.

#ifndef FLODB_NET_RESP_CLIENT_H_
#define FLODB_NET_RESP_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "flodb/common/status.h"
#include "flodb/net/byte_buffer.h"

namespace flodb {

// One decoded RESP reply (arrays recurse).
struct RespReply {
  enum class Type : uint8_t { kSimple, kError, kInteger, kBulk, kNil, kArray };
  Type type = Type::kNil;
  std::string str;     // kSimple / kError / kBulk payload
  int64_t integer = 0;
  std::vector<RespReply> elements;  // kArray

  bool IsOk() const { return type == Type::kSimple && str == "OK"; }
};

class RespClient {
 public:
  RespClient() = default;
  ~RespClient() { Close(); }

  RespClient(const RespClient&) = delete;
  RespClient& operator=(const RespClient&) = delete;

  RespClient(RespClient&& other) noexcept
      : fd_(other.fd_), send_(std::move(other.send_)), recv_(std::move(other.recv_)) {
    other.fd_ = -1;
  }
  RespClient& operator=(RespClient&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      send_ = std::move(other.send_);
      recv_ = std::move(other.recv_);
      other.fd_ = -1;
    }
    return *this;
  }

  Status Connect(const std::string& host, int port);
  void Close();
  bool Connected() const { return fd_ >= 0; }

  // Encodes `args` as a RESP multibulk command into the send buffer
  // (nothing hits the wire until Flush).
  void QueueCommand(const std::vector<std::string>& args);
  // Writes the whole send buffer (the pipelined burst) to the socket.
  Status Flush();
  // Blocking-reads one reply off the socket.
  Status ReadReply(RespReply* out);

  // Convenience round trip: queue + flush + read one reply.
  Status Command(const std::vector<std::string>& args, RespReply* out);

 private:
  Status FillBuffer();  // one blocking recv into recv_

  int fd_ = -1;
  std::string send_;
  ByteBuffer recv_{16 << 10};
};

}  // namespace flodb

#endif  // FLODB_NET_RESP_CLIENT_H_
