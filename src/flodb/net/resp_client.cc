#include "flodb/net/resp_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace flodb {

namespace {

// Attempts to decode one reply at data[pos]. Returns true on success
// (with *next past the reply); false = incomplete, need more bytes.
// Malformed data sets *bad.
bool DecodeReply(const char* data, size_t len, size_t pos, RespReply* out, size_t* next,
                 bool* bad) {
  if (pos >= len) {
    return false;
  }
  // Find the CRLF terminating the header line.
  size_t eol = pos;
  while (eol + 1 < len && !(data[eol] == '\r' && data[eol + 1] == '\n')) {
    ++eol;
  }
  if (eol + 1 >= len) {
    return false;
  }
  const char type = data[pos];
  const std::string line(data + pos + 1, eol - pos - 1);
  const size_t after = eol + 2;
  switch (type) {
    case '+':
      out->type = RespReply::Type::kSimple;
      out->str = line;
      *next = after;
      return true;
    case '-':
      out->type = RespReply::Type::kError;
      out->str = line;
      *next = after;
      return true;
    case ':':
      out->type = RespReply::Type::kInteger;
      out->integer = strtoll(line.c_str(), nullptr, 10);
      *next = after;
      return true;
    case '$': {
      const long long blen = strtoll(line.c_str(), nullptr, 10);
      if (blen < 0) {
        out->type = RespReply::Type::kNil;
        *next = after;
        return true;
      }
      if (len - after < static_cast<size_t>(blen) + 2) {
        return false;
      }
      out->type = RespReply::Type::kBulk;
      out->str.assign(data + after, static_cast<size_t>(blen));
      *next = after + static_cast<size_t>(blen) + 2;
      return true;
    }
    case '*': {
      const long long count = strtoll(line.c_str(), nullptr, 10);
      if (count < 0) {
        out->type = RespReply::Type::kNil;
        *next = after;
        return true;
      }
      out->type = RespReply::Type::kArray;
      out->elements.assign(static_cast<size_t>(count), RespReply());
      size_t p = after;
      for (long long i = 0; i < count; ++i) {
        if (!DecodeReply(data, len, p, &out->elements[static_cast<size_t>(i)], &p, bad)) {
          return false;
        }
      }
      *next = p;
      return true;
    }
    default:
      *bad = true;
      return false;
  }
}

}  // namespace

Status RespClient::Connect(const std::string& host, int port) {
  Close();
  fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return Status::IOError("client: socket() failed");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("client: bad host address: " + host);
  }
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = strerror(errno);
    Close();
    return Status::IOError("client: connect(" + host + ":" + std::to_string(port) +
                           ") failed: " + err);
  }
  int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::OK();
}

void RespClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  send_.clear();
  recv_ = ByteBuffer(16 << 10);
}

void RespClient::QueueCommand(const std::vector<std::string>& args) {
  char buf[32];
  int n = std::snprintf(buf, sizeof(buf), "*%zu\r\n", args.size());
  send_.append(buf, static_cast<size_t>(n));
  for (const std::string& arg : args) {
    n = std::snprintf(buf, sizeof(buf), "$%zu\r\n", arg.size());
    send_.append(buf, static_cast<size_t>(n));
    send_.append(arg);
    send_.append("\r\n");
  }
}

Status RespClient::Flush() {
  size_t off = 0;
  while (off < send_.size()) {
    ssize_t n = send(fd_, send_.data() + off, send_.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::IOError(std::string("client: send failed: ") + strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  send_.clear();
  return Status::OK();
}

Status RespClient::FillBuffer() {
  char* dst = recv_.EnsureWritable(64 << 10);
  ssize_t n = recv(fd_, dst, 64 << 10, 0);
  if (n > 0) {
    recv_.CommitWrite(static_cast<size_t>(n));
    return Status::OK();
  }
  if (n == 0) {
    return Status::IOError("client: connection closed by server");
  }
  if (errno == EINTR) {
    return Status::OK();
  }
  return Status::IOError(std::string("client: recv failed: ") + strerror(errno));
}

Status RespClient::ReadReply(RespReply* out) {
  if (fd_ < 0) {
    return Status::IOError("client: not connected");
  }
  for (;;) {
    *out = RespReply();
    size_t next = 0;
    bool bad = false;
    if (DecodeReply(recv_.ReadPtr(), recv_.Readable(), 0, out, &next, &bad)) {
      recv_.Consume(next);
      return Status::OK();
    }
    if (bad) {
      return Status::Corruption("client: malformed reply from server");
    }
    Status s = FillBuffer();
    if (!s.ok()) {
      return s;
    }
  }
}

Status RespClient::Command(const std::vector<std::string>& args, RespReply* out) {
  QueueCommand(args);
  Status s = Flush();
  if (!s.ok()) {
    return s;
  }
  return ReadReply(out);
}

}  // namespace flodb
