// Server: the RESP2-speaking network front-end over any KVStore
// (DESIGN.md §11).
//
// Threading model: one acceptor thread plus N worker threads, each worker
// owning an edge-triggered epoll instance. Accepted connections are
// pinned round-robin to a worker for life, so per-connection state (read
// and write buffers, parser, pending batch) is touched by exactly one
// thread and needs no locks; only the shared KVStore — already fully
// thread-safe — is called concurrently.
//
// Pipelining: every write command (SET/MSET/DEL) parsed out of one read
// burst folds into a single WriteBatch, committed when the burst's
// parseable bytes run out OR when a read command (GET/MGET/SCAN/...)
// needs the writes visible first. A pipelining client therefore turns N
// network commands into one group commit — network batching compounding
// with the WAL group-commit pipeline (DESIGN.md §10). Replies always go
// out in command order: write replies are buffered until their batch
// commits.
//
// Shutdown/drain: Shutdown() (the SIGTERM path in flodb-server) stops
// accepting, lets every worker commit the pending batches of complete,
// already-received commands, flushes buffered replies with a bounded
// blocking drain, closes connections, then returns — so the caller can
// close the store knowing every acknowledged write reached it.

#ifndef FLODB_NET_SERVER_H_
#define FLODB_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "flodb/common/status.h"
#include "flodb/common/synchronization.h"
#include "flodb/core/kv_store.h"
#include "flodb/net/resp.h"

namespace flodb {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  // TCP port; 0 binds an ephemeral port (tests/benchmarks), read it back
  // via Server::port().
  int port = 6399;
  // Worker event loops; 0 = auto (half the hardware threads, clamped to
  // [1, 8]). The acceptor thread is separate.
  int workers = 0;
  // WriteOptions::sync for every server-issued commit. With the WAL on,
  // an acknowledged write is then fsync-durable — group commit keeps it
  // affordable because one fsync covers a whole pipelined batch AND every
  // concurrently queued connection (DESIGN.md §10).
  bool sync_writes = false;
  // Upper bound on concurrently open connections; excess accepts are
  // closed immediately (counted in ServerStats::connections_rejected).
  int max_connections = 10000;
  // Entries a SCAN command may return (COUNT is clamped to this).
  size_t scan_max_entries = 1000;
  // Protocol frame ceilings (oversized frames are protocol errors).
  RespLimits limits;
  int listen_backlog = 511;
  bool tcp_nodelay = true;
};

// Server-level counters, reported by GetStats() and the INFO command
// (which also rolls in the store's StoreStats).
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t connections_rejected = 0;
  uint64_t commands_processed = 0;
  // WriteBatch commits the server issued: write commands from one read
  // burst fold into one commit, so pipelined_batches < write commands
  // whenever clients actually pipeline.
  uint64_t pipelined_batches = 0;
  // Write commands folded into those commits (fold factor =
  // batched_write_commands / pipelined_batches).
  uint64_t batched_write_commands = 0;
  uint64_t protocol_errors = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;

  uint64_t ConnectionsActive() const { return connections_accepted - connections_closed; }
};

class Server {
 public:
  // Binds, listens and spawns the acceptor + worker threads. `store` is
  // borrowed and must outlive the server (Shutdown() before closing it).
  static Status Start(const ServerOptions& options, KVStore* store, std::unique_ptr<Server>* out);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Graceful drain (idempotent, thread-safe): stop accepting, commit
  // pending batches, flush buffered replies, close connections, join all
  // threads. After it returns the store can be closed safely.
  void Shutdown();

  // The bound port (resolves 0 = ephemeral).
  int port() const { return port_; }
  ServerStats GetStats() const;

 private:
  struct Connection;
  struct Worker;

  explicit Server(const ServerOptions& options, KVStore* store);

  Status Listen();
  void AcceptorLoop();
  void WorkerLoop(Worker* worker);
  void AdoptIncoming(Worker* worker);
  void DrainWorker(Worker* worker);

  // I/O per connection (single-threaded within the owning worker).
  void HandleReadable(Worker* worker, Connection* conn);
  void FlushOutput(Worker* worker, Connection* conn);
  void CloseConnection(Worker* worker, Connection* conn);

  // Command processing.
  void ProcessInput(Connection* conn);
  void DispatchCommand(Connection* conn, const RespCommand& cmd);
  void CommitPending(Connection* conn);
  std::string BuildInfoReply() const;

  const ServerOptions options_;
  KVStore* const store_;
  int listen_fd_ = -1;
  int port_ = 0;
  int acceptor_wake_fd_ = -1;
  std::thread acceptor_thread_;
  std::atomic<bool> stop_accepting_{false};
  std::atomic<bool> shut_down_{false};
  std::vector<std::unique_ptr<Worker>> workers_;

  // Counters (relaxed; read-mostly reporting).
  struct AtomicStats {
    std::atomic<uint64_t> connections_accepted{0};
    std::atomic<uint64_t> connections_closed{0};
    std::atomic<uint64_t> connections_rejected{0};
    std::atomic<uint64_t> commands_processed{0};
    std::atomic<uint64_t> pipelined_batches{0};
    std::atomic<uint64_t> batched_write_commands{0};
    std::atomic<uint64_t> protocol_errors{0};
    std::atomic<uint64_t> bytes_in{0};
    std::atomic<uint64_t> bytes_out{0};
  };
  mutable AtomicStats stats_;
};

}  // namespace flodb

#endif  // FLODB_NET_SERVER_H_
