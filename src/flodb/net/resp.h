// RESP2 wire protocol: an incremental, zero-copy request parser plus
// reply encoders (DESIGN.md §11).
//
// The parser consumes client *commands* — RESP multibulk arrays
// ("*2\r\n$3\r\nGET\r\n$1\r\nk\r\n") and the inline form ("GET k\r\n") —
// directly out of the connection's read buffer. On success the returned
// RespCommand's argument Slices POINT INTO that buffer: no bytes are
// copied until the command handler decides what to keep. A frame that has
// not fully arrived yet parses to kNeedMore with nothing consumed, so
// partial reads simply retry after the next read burst (the parser keeps
// a "bytes still missing" hint to short-circuit the re-scan of a large
// half-arrived bulk). Malformed or oversized frames parse to kError; the
// server replies -ERR and closes, because resynchronizing a corrupt
// binary stream is guesswork (same policy as Redis).
//
// Reply encoders append RESP2-encoded values to a std::string, which the
// connection then moves into its write buffer.

#ifndef FLODB_NET_RESP_H_
#define FLODB_NET_RESP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "flodb/common/slice.h"

namespace flodb {

// Frame-size ceilings. Oversized frames are protocol errors: they
// protect the server from a single connection ballooning its read buffer
// (e.g. a "$2147483647" bulk header) rather than limiting real payloads.
struct RespLimits {
  size_t max_bulk_bytes = 64u << 20;  // one argument's payload
  size_t max_args = 1u << 20;         // arguments per command
  size_t max_inline_bytes = 64u << 10;
};

// One parsed command; args[0] is the verb. Slices alias the read buffer
// and stay valid until bytes are appended to (or compacted out of) it.
struct RespCommand {
  std::vector<Slice> args;
};

enum class RespParse : uint8_t {
  kCommand,   // *cmd filled; *consumed bytes belong to this frame
  kNeedMore,  // incomplete frame; nothing consumed, retry after more bytes
  kError,     // malformed/oversized frame; *error filled, connection dead
};

class RespParser {
 public:
  explicit RespParser(const RespLimits& limits = RespLimits()) : limits_(limits) {}

  // Parses one command from data[0, len). Empty inline lines (bare CRLF)
  // are skipped and reported in *consumed like Redis. On kCommand,
  // *consumed covers the frame (caller consumes it from the buffer after
  // dispatch); cmd->args alias `data`.
  RespParse Next(const char* data, size_t len, RespCommand* cmd, size_t* consumed,
                 std::string* error);

 private:
  RespParse NeedAtLeast(size_t total) {
    min_frame_bytes_ = total;
    return RespParse::kNeedMore;
  }

  RespLimits limits_;
  // Re-scan short-circuit: a frame whose headers already promised
  // `min_frame_bytes_` total bytes cannot complete before they arrive.
  size_t min_frame_bytes_ = 0;
};

// ---- reply encoders ----

void RespAppendSimple(std::string* out, std::string_view s);   // +s\r\n
void RespAppendError(std::string* out, std::string_view msg);  // -msg\r\n
void RespAppendInteger(std::string* out, int64_t v);           // :v\r\n
void RespAppendBulk(std::string* out, std::string_view s);     // $len\r\ns\r\n
void RespAppendNil(std::string* out);                          // $-1\r\n
void RespAppendArrayHeader(std::string* out, size_t n);        // *n\r\n

}  // namespace flodb

#endif  // FLODB_NET_RESP_H_
