#include "flodb/disk/compaction.h"

#include <algorithm>
#include <cassert>

namespace flodb {

CompactionPicker::CompactionPicker(const CompactionConfig& config)
    : config_(config), cursor_(static_cast<size_t>(config.num_levels)) {}

uint64_t CompactionPicker::MaxBytesForLevel(int level) const {
  assert(level >= 1);
  uint64_t max_bytes = config_.l1_max_bytes;
  for (int l = 1; l < level; ++l) {
    max_bytes *= static_cast<uint64_t>(config_.level_size_multiplier);
  }
  return max_bytes;
}

double CompactionPicker::LevelScore(const Version& v, int level) const {
  if (level >= config_.num_levels - 1) {
    return 0.0;  // bottom level has nowhere to compact into
  }
  if (level == 0) {
    return static_cast<double>(v.LevelFiles(0).size()) /
           static_cast<double>(config_.l0_compaction_trigger);
  }
  return static_cast<double>(v.LevelBytes(level)) / static_cast<double>(MaxBytesForLevel(level));
}

bool CompactionPicker::NeedsCompaction(const Version& v) const {
  for (int level = 0; level < config_.num_levels - 1; ++level) {
    if (LevelScore(v, level) >= 1.0) {
      return true;
    }
  }
  return false;
}

bool CompactionPicker::Pick(const Version& v, const std::vector<bool>& level_busy,
                            CompactionJob* job) {
  // Highest score wins: the level furthest over target shrinks first, so
  // sustained churn cannot starve a deep level while L0 trickles. Ties
  // (and the common case of one over-target level) fall out naturally.
  int best_level = -1;
  double best_score = 0.0;
  for (int level = 0; level < config_.num_levels - 1; ++level) {
    if (level_busy[level] || level_busy[level + 1]) {
      continue;  // input or output level already owned by a running job
    }
    const double score = LevelScore(v, level);
    if (score >= 1.0 && score > best_score) {
      best_score = score;
      best_level = level;
    }
  }
  if (best_level < 0) {
    return false;
  }

  if (best_level == 0) {
    // L0 files overlap, so every L0 file joins the job (a partial pick
    // could write an older version of a key below a newer one).
    job->level = 0;
    job->inputs_lo = v.LevelFiles(0);
    std::string smallest, largest;
    for (const FileMetaData& f : job->inputs_lo) {
      if (smallest.empty() || Slice(f.smallest).compare(Slice(smallest)) < 0) {
        smallest = f.smallest;
      }
      if (largest.empty() || Slice(f.largest).compare(Slice(largest)) > 0) {
        largest = f.largest;
      }
    }
    job->inputs_hi = v.OverlappingFiles(1, Slice(smallest), Slice(largest));
    job->drop_tombstones = v.IsBottommostForRange(1, Slice(smallest), Slice(largest));
    return true;
  }

  const auto& files = v.LevelFiles(best_level);
  assert(!files.empty());
  // Round-robin across the key space (LevelDB's compact_pointer): resume
  // past the last compacted range, wrapping to the start.
  const FileMetaData* pick = nullptr;
  for (const FileMetaData& f : files) {
    if (cursor_[best_level].empty() ||
        Slice(f.smallest).compare(Slice(cursor_[best_level])) > 0) {
      pick = &f;
      break;
    }
  }
  if (pick == nullptr) {
    pick = &files[0];  // wrapped around
  }
  cursor_[best_level] = pick->largest;
  job->level = best_level;
  job->inputs_lo = {*pick};
  job->inputs_hi =
      v.OverlappingFiles(best_level + 1, Slice(pick->smallest), Slice(pick->largest));
  job->drop_tombstones =
      v.IsBottommostForRange(best_level + 1, Slice(pick->smallest), Slice(pick->largest));
  return true;
}

CompactionThreadLimiter::CompactionThreadLimiter(int max_concurrent)
    : max_(std::max(1, max_concurrent)) {}

void CompactionThreadLimiter::Acquire() {
  MutexLock lock(mu_);
  // Explicit loop: the predicate reads guarded state (in_use_), so it
  // must run in this annotated scope rather than inside a lambda.
  while (in_use_ >= max_) {
    cv_.Wait(mu_);
  }
  ++in_use_;
}

void CompactionThreadLimiter::Release() {
  {
    MutexLock lock(mu_);
    assert(in_use_ > 0);
    --in_use_;
  }
  cv_.Signal();
}

int CompactionThreadLimiter::InUse() const {
  MutexLock lock(mu_);
  return in_use_;
}

int BloomBitsForLevel(const std::vector<int>& per_level, int default_bits, int level) {
  if (!per_level.empty()) {
    const size_t i = std::min(static_cast<size_t>(level), per_level.size() - 1);
    return per_level[i];
  }
  if (level <= 1) {
    return default_bits + 2;
  }
  if (level <= 3) {
    return default_bits;
  }
  return std::max(5, default_bits - 4);
}

}  // namespace flodb
