#include "flodb/disk/version.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "flodb/common/coding.h"
#include "flodb/disk/crc32c.h"

namespace flodb {

namespace {

std::string CurrentFileName(const std::string& dbname) { return dbname + "/CURRENT"; }

std::string ManifestFileName(const std::string& dbname, uint64_t number) {
  char buf[32];
  snprintf(buf, sizeof(buf), "/MANIFEST-%06llu", static_cast<unsigned long long>(number));
  return dbname + buf;
}

}  // namespace

uint64_t Version::LevelBytes(int level) const {
  uint64_t total = 0;
  for (const FileMetaData& f : levels_[level]) {
    total += f.file_size;
  }
  return total;
}

int Version::NumFiles() const {
  int total = 0;
  for (const auto& level : levels_) {
    total += static_cast<int>(level.size());
  }
  return total;
}

std::vector<FileMetaData> Version::OverlappingFiles(int level, const Slice& begin,
                                                    const Slice& end) const {
  std::vector<FileMetaData> result;
  for (const FileMetaData& f : levels_[level]) {
    if (f.OverlapsRange(begin, end)) {
      result.push_back(f);
    }
  }
  return result;
}

bool Version::IsBottommostForRange(int level, const Slice& begin, const Slice& end) const {
  for (int l = level + 1; l < NumLevels(); ++l) {
    if (!OverlappingFiles(l, begin, end).empty()) {
      return false;
    }
  }
  return true;
}

VersionSet::VersionSet(Env* env, std::string dbname, int num_levels)
    : env_(env), dbname_(std::move(dbname)), num_levels_(num_levels) {
  current_ = std::make_shared<Version>(num_levels_);
  registry_.emplace_back(current_);
}

void VersionSet::RegisterVersionLocked(const std::shared_ptr<const Version>& v) {
  mu_.AssertHeld();
  registry_.erase(std::remove_if(registry_.begin(), registry_.end(),
                                 [](const std::weak_ptr<const Version>& w) { return w.expired(); }),
                  registry_.end());
  registry_.emplace_back(v);
}

std::string VersionSet::TableFileName(uint64_t number) const {
  char buf[32];
  snprintf(buf, sizeof(buf), "/%06llu.sst", static_cast<unsigned long long>(number));
  return dbname_ + buf;
}

std::shared_ptr<const Version> VersionSet::Current() const {
  MutexLock lock(mu_);
  return current_;
}

Status VersionSet::Recover() {
  env_->CreateDir(dbname_);
  std::string current_contents;
  Status s = ReadFileToString(env_, CurrentFileName(dbname_), &current_contents);
  if (!s.ok()) {
    // Fresh database: persist an empty snapshot so CURRENT exists.
    MutexLock lock(mu_);
    return WriteSnapshot(*current_);
  }
  // Strip trailing newline.
  while (!current_contents.empty() && current_contents.back() == '\n') {
    current_contents.pop_back();
  }
  // Resume manifest numbering from CURRENT. Restarting at zero would make
  // the next snapshot reuse the number of (or a number below) the live
  // manifest — a failed write then deletes the only manifest on disk.
  const std::string kPrefix = "MANIFEST-";
  if (current_contents.compare(0, kPrefix.size(), kPrefix) != 0) {
    return Status::Corruption("CURRENT does not name a manifest");
  }
  const uint64_t live_manifest = static_cast<uint64_t>(
      strtoull(current_contents.c_str() + kPrefix.size(), nullptr, 10));
  if (live_manifest == 0) {
    return Status::Corruption("CURRENT names an invalid manifest number");
  }
  std::shared_ptr<Version> v;
  s = LoadSnapshot(dbname_ + "/" + current_contents, &v);
  if (!s.ok()) {
    return s;
  }
  MutexLock lock(mu_);
  manifest_number_ = live_manifest;
  current_manifest_number_ = live_manifest;
  current_ = std::move(v);
  RegisterVersionLocked(current_);
  return Status::OK();
}

// Snapshot format:
//   fixed64 next_file_number | fixed32 num_levels
//   per level: fixed32 count, then per file:
//     fixed64 number | fixed64 size | fixed64 entries
//     | fixed64 smallest_seq | fixed64 largest_seq
//     | lp smallest | lp largest
//   optional vlog extension (only when vlog state exists, so a store that
//   never separates values writes the byte-identical legacy format):
//     fixed32 vlog_count | vlog_count x (fixed64 number | fixed64 garbage)
//     fixed32 ref_count  | ref_count x (fixed64 sst_number | fixed32 n
//                                       | n x fixed64 vlog_number)
//   fixed32 masked crc of everything above
Status VersionSet::WriteSnapshot(const Version& v) {
  mu_.AssertHeld();
  std::string data;
  PutFixed64(&data, next_file_number_.load(std::memory_order_relaxed));
  PutFixed32(&data, static_cast<uint32_t>(num_levels_));
  bool has_vlog_refs = false;
  for (int level = 0; level < num_levels_; ++level) {
    const auto& files = v.LevelFiles(level);
    PutFixed32(&data, static_cast<uint32_t>(files.size()));
    for (const FileMetaData& f : files) {
      PutFixed64(&data, f.number);
      PutFixed64(&data, f.file_size);
      PutFixed64(&data, f.entries);
      PutFixed64(&data, f.smallest_seq);
      PutFixed64(&data, f.largest_seq);
      PutLengthPrefixedSlice(&data, Slice(f.smallest));
      PutLengthPrefixedSlice(&data, Slice(f.largest));
      has_vlog_refs = has_vlog_refs || !f.vlog_refs.empty();
    }
  }
  if (!v.vlogs_.empty() || has_vlog_refs) {
    PutFixed32(&data, static_cast<uint32_t>(v.vlogs_.size()));
    for (const auto& [number, garbage] : v.vlogs_) {
      PutFixed64(&data, number);
      PutFixed64(&data, garbage);
    }
    uint32_t ref_count = 0;
    for (int level = 0; level < num_levels_; ++level) {
      for (const FileMetaData& f : v.LevelFiles(level)) {
        ref_count += f.vlog_refs.empty() ? 0 : 1;
      }
    }
    PutFixed32(&data, ref_count);
    for (int level = 0; level < num_levels_; ++level) {
      for (const FileMetaData& f : v.LevelFiles(level)) {
        if (f.vlog_refs.empty()) {
          continue;
        }
        PutFixed64(&data, f.number);
        PutFixed32(&data, static_cast<uint32_t>(f.vlog_refs.size()));
        for (uint64_t ref : f.vlog_refs) {
          PutFixed64(&data, ref);
        }
      }
    }
  }
  PutFixed32(&data, crc32c::Mask(crc32c::Value(data.data(), data.size())));

  const uint64_t number = ++manifest_number_;
  const std::string fname = ManifestFileName(dbname_, number);
  Status s = WriteStringToFile(env_, Slice(data), fname, /*sync=*/true);
  if (!s.ok()) {
    return s;
  }
  // Repoint CURRENT atomically: write a temp file, sync it, rename over
  // CURRENT (::rename is atomic on POSIX). Rewriting CURRENT in place
  // would truncate it first, so a crash mid-write loses BOTH versions.
  const std::string manifest_basename = fname.substr(dbname_.size() + 1);
  const std::string tmp = CurrentFileName(dbname_) + ".tmp";
  s = WriteStringToFile(env_, Slice(manifest_basename + "\n"), tmp, /*sync=*/true);
  if (s.ok()) {
    s = env_->RenameFile(tmp, CurrentFileName(dbname_));
  }
  if (!s.ok()) {
    // CURRENT still points at the old manifest; drop the orphan snapshot
    // (never the live one — `number` was allocated above the resume
    // point) so a later retry starts clean.
    env_->RemoveFile(tmp);
    env_->RemoveFile(fname);
    return s;
  }
  // Drop the previously live manifest. Numbers are not always
  // consecutive (a failed snapshot write burns one), so track the actual
  // predecessor instead of assuming number - 1; open-time GC sweeps any
  // strays a crash leaves behind.
  const uint64_t old_manifest = current_manifest_number_;
  current_manifest_number_ = number;
  if (old_manifest > 0 && old_manifest != number) {
    env_->RemoveFile(ManifestFileName(dbname_, old_manifest));
  }
  return Status::OK();
}

Status VersionSet::LoadSnapshot(const std::string& manifest_file, std::shared_ptr<Version>* out) {
  std::string data;
  Status s = ReadFileToString(env_, manifest_file, &data);
  if (!s.ok()) {
    return s;
  }
  if (data.size() < 4) {
    return Status::Corruption("manifest too small");
  }
  const uint32_t stored_crc = crc32c::Unmask(DecodeFixed32(data.data() + data.size() - 4));
  const uint32_t actual_crc = crc32c::Value(data.data(), data.size() - 4);
  if (stored_crc != actual_crc) {
    return Status::Corruption("manifest checksum mismatch");
  }
  Slice in(data.data(), data.size() - 4);
  if (in.size() < 12) {
    return Status::Corruption("manifest truncated");
  }
  next_file_number_.store(DecodeFixed64(in.data()), std::memory_order_relaxed);
  in.remove_prefix(8);
  const uint32_t levels = DecodeFixed32(in.data());
  in.remove_prefix(4);
  if (levels != static_cast<uint32_t>(num_levels_)) {
    return Status::Corruption("manifest level-count mismatch");
  }
  auto v = std::make_shared<Version>(num_levels_);
  for (uint32_t level = 0; level < levels; ++level) {
    if (in.size() < 4) {
      return Status::Corruption("manifest truncated");
    }
    const uint32_t count = DecodeFixed32(in.data());
    in.remove_prefix(4);
    for (uint32_t i = 0; i < count; ++i) {
      if (in.size() < 40) {
        return Status::Corruption("manifest truncated");
      }
      FileMetaData f;
      f.number = DecodeFixed64(in.data());
      f.file_size = DecodeFixed64(in.data() + 8);
      f.entries = DecodeFixed64(in.data() + 16);
      f.smallest_seq = DecodeFixed64(in.data() + 24);
      f.largest_seq = DecodeFixed64(in.data() + 32);
      in.remove_prefix(40);
      Slice smallest, largest;
      if (!GetLengthPrefixedSlice(&in, &smallest) || !GetLengthPrefixedSlice(&in, &largest)) {
        return Status::Corruption("manifest truncated key");
      }
      f.smallest = smallest.ToString();
      f.largest = largest.ToString();
      // Level files are stored in key order; trust but keep sorted anyway.
      v->levels_[level].push_back(std::move(f));
    }
  }
  for (auto& level_files : v->levels_) {
    std::sort(level_files.begin(), level_files.end(),
              [](const FileMetaData& a, const FileMetaData& b) {
                return Slice(a.smallest).compare(Slice(b.smallest)) < 0;
              });
  }
  // Optional vlog extension (§ docs/STORAGE.md): present iff bytes remain
  // before the CRC. Legacy manifests (and stores that never separate
  // values) end exactly at the levels section.
  if (!in.empty()) {
    if (in.size() < 4) {
      return Status::Corruption("manifest vlog section truncated");
    }
    const uint32_t vlog_count = DecodeFixed32(in.data());
    in.remove_prefix(4);
    for (uint32_t i = 0; i < vlog_count; ++i) {
      if (in.size() < 16) {
        return Status::Corruption("manifest vlog section truncated");
      }
      const uint64_t number = DecodeFixed64(in.data());
      const uint64_t garbage = DecodeFixed64(in.data() + 8);
      in.remove_prefix(16);
      v->vlogs_[number] = garbage;
    }
    if (in.size() < 4) {
      return Status::Corruption("manifest vlog ref section truncated");
    }
    const uint32_t ref_count = DecodeFixed32(in.data());
    in.remove_prefix(4);
    std::map<uint64_t, FileMetaData*> by_number;
    for (auto& level_files : v->levels_) {
      for (FileMetaData& f : level_files) {
        by_number[f.number] = &f;
      }
    }
    for (uint32_t i = 0; i < ref_count; ++i) {
      if (in.size() < 12) {
        return Status::Corruption("manifest vlog ref section truncated");
      }
      const uint64_t sst = DecodeFixed64(in.data());
      const uint32_t n = DecodeFixed32(in.data() + 8);
      in.remove_prefix(12);
      if (in.size() < static_cast<size_t>(n) * 8) {
        return Status::Corruption("manifest vlog ref section truncated");
      }
      auto it = by_number.find(sst);
      for (uint32_t j = 0; j < n; ++j) {
        const uint64_t ref = DecodeFixed64(in.data());
        in.remove_prefix(8);
        if (it != by_number.end()) {
          it->second->vlog_refs.push_back(ref);
        }
      }
      if (it == by_number.end()) {
        return Status::Corruption("manifest vlog ref names unknown table");
      }
    }
    if (!in.empty()) {
      return Status::Corruption("manifest trailing bytes after vlog section");
    }
  }
  *out = std::move(v);
  return Status::OK();
}

Status VersionSet::LogAndApply(const VersionEdit& edit) {
  MutexLock lock(mu_);
  auto next = std::make_shared<Version>(num_levels_);
  next->levels_ = current_->levels_;
  next->vlogs_ = current_->vlogs_;
  for (uint64_t number : edit.added_vlogs) {
    next->vlogs_.emplace(number, 0);
  }
  for (uint64_t number : edit.deleted_vlogs) {
    next->vlogs_.erase(number);
  }
  for (const auto& [number, bytes] : edit.vlog_garbage) {
    auto it = next->vlogs_.find(number);
    if (it != next->vlogs_.end()) {
      it->second += bytes;
    }
  }
  for (const auto& [level, number] : edit.deleted) {
    auto& files = next->levels_[level];
    files.erase(std::remove_if(files.begin(), files.end(),
                               [n = number](const FileMetaData& f) { return f.number == n; }),
                files.end());
  }
  for (const auto& [level, meta] : edit.added) {
    assert(level >= 0 && level < num_levels_);
    next->levels_[level].push_back(meta);
  }
  // Keep levels >= 1 ordered by smallest key (disjoint ranges); keep L0
  // ordered by file number (flush order) for debuggability.
  for (int level = 1; level < num_levels_; ++level) {
    auto& files = next->levels_[level];
    std::sort(files.begin(), files.end(), [](const FileMetaData& a, const FileMetaData& b) {
      return Slice(a.smallest).compare(Slice(b.smallest)) < 0;
    });
  }
  {
    auto& l0 = next->levels_[0];
    std::sort(l0.begin(), l0.end(),
              [](const FileMetaData& a, const FileMetaData& b) { return a.number < b.number; });
  }
  Status s = WriteSnapshot(*next);
  if (!s.ok()) {
    return s;
  }
  current_ = std::move(next);
  RegisterVersionLocked(current_);
  return Status::OK();
}

uint64_t VersionSet::CurrentManifestNumber() const {
  MutexLock lock(mu_);
  return current_manifest_number_;
}

uint64_t VersionSet::MaxPersistedSeq() const {
  MutexLock lock(mu_);
  uint64_t max_seq = 0;
  for (int level = 0; level < num_levels_; ++level) {
    for (const FileMetaData& f : current_->LevelFiles(level)) {
      if (f.largest_seq > max_seq) {
        max_seq = f.largest_seq;
      }
    }
  }
  return max_seq;
}

std::set<uint64_t> VersionSet::LiveFileNumbers() const {
  MutexLock lock(mu_);
  std::set<uint64_t> live;
  for (int level = 0; level < num_levels_; ++level) {
    for (const FileMetaData& f : current_->LevelFiles(level)) {
      live.insert(f.number);
    }
  }
  return live;
}

std::set<uint64_t> VersionSet::AllLiveFileNumbers() const {
  MutexLock lock(mu_);
  std::set<uint64_t> live;
  for (const std::weak_ptr<const Version>& w : registry_) {
    std::shared_ptr<const Version> v = w.lock();
    if (v == nullptr) {
      continue;
    }
    for (int level = 0; level < v->NumLevels(); ++level) {
      for (const FileMetaData& f : v->LevelFiles(level)) {
        live.insert(f.number);
      }
    }
  }
  return live;
}

std::set<uint64_t> VersionSet::AllLiveVlogNumbers() const {
  MutexLock lock(mu_);
  std::set<uint64_t> live;
  for (const std::weak_ptr<const Version>& w : registry_) {
    std::shared_ptr<const Version> v = w.lock();
    if (v == nullptr) {
      continue;
    }
    for (const auto& [number, garbage] : v->vlogs_) {
      live.insert(number);
    }
  }
  return live;
}

}  // namespace flodb
