// TableReader: opens an SSTable, pins its index and bloom filter in
// memory, and serves point lookups and iteration.
//
// Data blocks go through an optional shared block cache keyed by
// (cache_id, block_index): a hit skips the Env read, the CRC pass and
// the copy; a miss inserts the verified block, charged by its byte size.
// Readers hold pinned cache handles (BlockRef) while parsing, so a block
// can never be freed under them by eviction or file deletion. On
// destruction a reader purges every block it may have cached — deleting
// a compacted-away table therefore drops its blocks immediately instead
// of letting them squat in the cache until LRU pressure finds them.

#ifndef FLODB_DISK_TABLE_READER_H_
#define FLODB_DISK_TABLE_READER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "flodb/common/cache.h"
#include "flodb/common/slice.h"
#include "flodb/common/status.h"
#include "flodb/disk/bloom.h"
#include "flodb/disk/env.h"
#include "flodb/disk/iterator.h"

namespace flodb {

class TableReader {
 public:
  struct Options {
    // Shared block cache; nullptr reads every block straight from Env.
    ShardedLruCache* block_cache = nullptr;
    // Namespaces this file's blocks in the shared cache. The disk
    // component passes the file number (unique, never reused).
    uint64_t cache_id = 0;
  };

  // A read block: either a pinned cache entry or a locally owned copy.
  // data() stays valid until the ref is reset/destroyed, regardless of
  // concurrent cache eviction or Erase.
  class BlockRef {
   public:
    BlockRef() = default;
    ~BlockRef() = default;
    // Neither movable nor copyable: data_ may point into owned_, whose
    // small-string storage would relocate on a move.
    BlockRef(const BlockRef&) = delete;
    BlockRef& operator=(const BlockRef&) = delete;

    Slice data() const { return data_; }
    void Reset() {
      pin_.Reset();
      owned_.clear();
      data_ = Slice();
    }

   private:
    friend class TableReader;
    Slice data_;
    std::string owned_;     // backing storage when uncached
    CacheHandleGuard pin_;  // backing pin when cached
  };

  // Takes ownership of file. On success *reader is ready for lookups.
  static Status Open(std::unique_ptr<RandomAccessFile> file, uint64_t file_size,
                     const Options& options, std::unique_ptr<TableReader>* reader);
  static Status Open(std::unique_ptr<RandomAccessFile> file, uint64_t file_size,
                     std::unique_ptr<TableReader>* reader) {
    return Open(std::move(file), file_size, Options(), reader);
  }

  ~TableReader();

  // Point lookup. Returns OK + outputs on hit, NotFound otherwise.
  Status Get(const Slice& key, std::string* value, uint64_t* seq, ValueType* type) const;

  // Iterates all entries in key order. `fill_cache` false serves hits
  // from the block cache but never inserts misses — for one-shot bulk
  // reads (compaction inputs) that would otherwise flush the hot set
  // out of the cache with blocks about to be deleted anyway.
  std::unique_ptr<Iterator> NewIterator(bool fill_cache = true) const;

  uint64_t NumEntries() const { return num_entries_; }
  size_t NumBlocks() const { return index_.size(); }

  // The shared cache key of this reader's block `block_index`. `buf` must
  // hold kBlockCacheKeySize bytes. Exposed for tests.
  static constexpr size_t kBlockCacheKeySize = 16;
  static Slice BlockCacheKey(uint64_t cache_id, uint64_t block_index, char* buf);

 private:
  struct IndexEntry {
    std::string last_key;
    uint64_t offset;
    uint64_t size;  // payload size, excluding CRC
  };

  class Iter;

  TableReader() = default;

  // Reads the (CRC-verified) block at index position `i`, through the
  // block cache when one is attached. `fill_cache` false skips the
  // insert on a miss (hits are still served).
  Status ReadBlock(size_t i, BlockRef* out, bool fill_cache = true) const;

  // Reads and CRC-verifies the block at index position `i` into *out,
  // bypassing the cache.
  Status ReadBlockFromFile(size_t i, std::string* out) const;

  // First block whose last_key >= key; index_.size() if none.
  size_t FindBlock(const Slice& key) const;

  Options cache_options_;
  std::unique_ptr<RandomAccessFile> file_;
  std::vector<IndexEntry> index_;
  std::string filter_;
  BloomFilter bloom_;
  uint64_t num_entries_ = 0;
};

// Parses one entry at `p` (bounded by limit). Returns the position past
// the entry or nullptr on corruption. Exposed for reuse by the iterator
// and tests.
const char* ParseTableEntry(const char* p, const char* limit, Slice* key, uint64_t* seq,
                            ValueType* type, Slice* value);

}  // namespace flodb

#endif  // FLODB_DISK_TABLE_READER_H_
