// TableReader: opens an SSTable, pins its index and bloom filter in
// memory, and serves point lookups and iteration.

#ifndef FLODB_DISK_TABLE_READER_H_
#define FLODB_DISK_TABLE_READER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "flodb/common/slice.h"
#include "flodb/common/status.h"
#include "flodb/disk/bloom.h"
#include "flodb/disk/env.h"
#include "flodb/disk/iterator.h"

namespace flodb {

class TableReader {
 public:
  // Takes ownership of file. On success *reader is ready for lookups.
  static Status Open(std::unique_ptr<RandomAccessFile> file, uint64_t file_size,
                     std::unique_ptr<TableReader>* reader);

  // Point lookup. Returns OK + outputs on hit, NotFound otherwise.
  Status Get(const Slice& key, std::string* value, uint64_t* seq, ValueType* type) const;

  // Iterates all entries in key order.
  std::unique_ptr<Iterator> NewIterator() const;

  uint64_t NumEntries() const { return num_entries_; }

 private:
  struct IndexEntry {
    std::string last_key;
    uint64_t offset;
    uint64_t size;  // payload size, excluding CRC
  };

  class Iter;

  TableReader() = default;

  // Reads and CRC-verifies the block at index position `i` into *out.
  Status ReadBlock(size_t i, std::string* out) const;

  // First block whose last_key >= key; index_.size() if none.
  size_t FindBlock(const Slice& key) const;

  std::unique_ptr<RandomAccessFile> file_;
  std::vector<IndexEntry> index_;
  std::string filter_;
  BloomFilter bloom_;
  uint64_t num_entries_ = 0;
};

// Parses one entry at `p` (bounded by limit). Returns the position past
// the entry or nullptr on corruption. Exposed for reuse by the iterator
// and tests.
const char* ParseTableEntry(const char* p, const char* limit, Slice* key, uint64_t* seq,
                            ValueType* type, Slice* value);

}  // namespace flodb

#endif  // FLODB_DISK_TABLE_READER_H_
