#include "flodb/disk/merging_iterator.h"

namespace flodb {

namespace {

class MergingIterator final : public Iterator {
 public:
  explicit MergingIterator(std::vector<std::unique_ptr<Iterator>> children)
      : children_(std::move(children)) {}

  bool Valid() const override { return current_ != nullptr; }

  void SeekToFirst() override {
    for (auto& child : children_) {
      child->SeekToFirst();
    }
    FindSmallest();
  }

  void Seek(const Slice& target) override {
    for (auto& child : children_) {
      child->Seek(target);
    }
    FindSmallest();
  }

  void Next() override {
    current_->Next();
    FindSmallest();
  }

  Slice key() const override { return current_->key(); }
  Slice value() const override { return current_->value(); }
  uint64_t seq() const override { return current_->seq(); }
  ValueType type() const override { return current_->type(); }

  Status status() const override {
    for (const auto& child : children_) {
      Status s = child->status();
      if (!s.ok()) {
        return s;
      }
    }
    return Status::OK();
  }

 private:
  // Linear scan over children: child counts are small (memtables + L0
  // files + one run per level), and a heap's constant overhead dominates
  // at those sizes.
  void FindSmallest() {
    Iterator* best = nullptr;
    for (auto& child : children_) {
      if (!child->Valid()) {
        continue;
      }
      if (best == nullptr) {
        best = child.get();
        continue;
      }
      const int cmp = child->key().compare(best->key());
      if (cmp < 0 || (cmp == 0 && child->seq() > best->seq())) {
        best = child.get();
      }
    }
    current_ = best;
  }

  std::vector<std::unique_ptr<Iterator>> children_;
  Iterator* current_ = nullptr;
};

}  // namespace

std::unique_ptr<Iterator> NewMergingIterator(std::vector<std::unique_ptr<Iterator>> children) {
  return std::make_unique<MergingIterator>(std::move(children));
}

void SkipEntriesWithKey(Iterator* iter, const Slice& user_key) {
  // user_key may point into the iterator's current entry; copy it first
  // because Next() invalidates that storage.
  const std::string pinned(user_key.data(), user_key.size());
  while (iter->Valid() && iter->key() == Slice(pinned)) {
    iter->Next();
  }
}

}  // namespace flodb
