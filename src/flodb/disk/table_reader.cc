#include "flodb/disk/table_reader.h"

#include <cstring>

#include "flodb/common/coding.h"
#include "flodb/disk/crc32c.h"
#include "flodb/disk/table_format.h"

namespace flodb {

namespace {

void DeleteCachedBlock(const Slice& /*key*/, void* value) {
  delete static_cast<std::string*>(value);
}

}  // namespace

const char* ParseTableEntry(const char* p, const char* limit, Slice* key, uint64_t* seq,
                            ValueType* type, Slice* value) {
  uint32_t klen;
  p = GetVarint32Ptr(p, limit, &klen);
  if (p == nullptr || static_cast<size_t>(limit - p) < klen) {
    return nullptr;
  }
  *key = Slice(p, klen);
  p += klen;
  p = GetVarint64Ptr(p, limit, seq);
  if (p == nullptr || p >= limit) {
    return nullptr;
  }
  *type = static_cast<ValueType>(*p);
  p++;
  uint32_t vlen;
  p = GetVarint32Ptr(p, limit, &vlen);
  if (p == nullptr || static_cast<size_t>(limit - p) < vlen) {
    return nullptr;
  }
  *value = Slice(p, vlen);
  return p + vlen;
}

Slice TableReader::BlockCacheKey(uint64_t cache_id, uint64_t block_index, char* buf) {
  EncodeFixed64(buf, cache_id);
  EncodeFixed64(buf + 8, block_index);
  return Slice(buf, kBlockCacheKeySize);
}

Status TableReader::Open(std::unique_ptr<RandomAccessFile> file, uint64_t file_size,
                         const Options& options, std::unique_ptr<TableReader>* reader) {
  if (file_size < kFooterSize) {
    return Status::Corruption("table file too small");
  }
  char footer_buf[kFooterSize];
  Slice footer;
  Status s = file->Read(file_size - kFooterSize, kFooterSize, &footer, footer_buf);
  if (!s.ok()) {
    return s;
  }
  if (footer.size() != kFooterSize) {
    return Status::Corruption("truncated table footer");
  }
  const char* f = footer.data();
  const uint64_t index_offset = DecodeFixed64(f);
  const uint64_t index_size = DecodeFixed64(f + 8);
  const uint64_t filter_offset = DecodeFixed64(f + 16);
  const uint64_t filter_size = DecodeFixed64(f + 24);
  const uint64_t entry_count = DecodeFixed64(f + 32);
  const uint64_t magic = DecodeFixed64(f + 40);
  if (magic != kTableMagic) {
    return Status::Corruption("bad table magic");
  }
  if (index_offset + index_size > file_size || filter_offset + filter_size > file_size) {
    return Status::Corruption("table footer offsets out of range");
  }

  auto table = std::unique_ptr<TableReader>(new TableReader());
  table->cache_options_ = options;
  table->num_entries_ = entry_count;

  // Load filter.
  table->filter_.resize(filter_size);
  if (filter_size > 0) {
    Slice result;
    s = file->Read(filter_offset, filter_size, &result, table->filter_.data());
    if (!s.ok()) {
      return s;
    }
    if (result.size() != filter_size) {
      return Status::Corruption("truncated filter block");
    }
    if (result.data() != table->filter_.data()) {
      memcpy(table->filter_.data(), result.data(), filter_size);
    }
  }

  // Load index.
  std::string index_data(index_size, '\0');
  if (index_size > 0) {
    Slice result;
    s = file->Read(index_offset, index_size, &result, index_data.data());
    if (!s.ok()) {
      return s;
    }
    if (result.size() != index_size) {
      return Status::Corruption("truncated index block");
    }
    if (result.data() != index_data.data()) {
      memcpy(index_data.data(), result.data(), index_size);
    }
  }
  Slice in(index_data);
  while (!in.empty()) {
    uint32_t klen;
    if (!GetVarint32(&in, &klen) || in.size() < klen + 16) {
      return Status::Corruption("malformed index entry");
    }
    IndexEntry e;
    e.last_key.assign(in.data(), klen);
    in.remove_prefix(klen);
    e.offset = DecodeFixed64(in.data());
    e.size = DecodeFixed64(in.data() + 8);
    in.remove_prefix(16);
    table->index_.push_back(std::move(e));
  }

  table->file_ = std::move(file);
  *reader = std::move(table);
  return Status::OK();
}

TableReader::~TableReader() {
  // Purge this file's blocks so a deleted table's bytes leave the shared
  // cache with the reader instead of lingering until LRU pressure. Keys
  // never read are simply absent — Erase of a missing key is a cheap
  // no-op. Blocks still pinned by in-flight readers survive until their
  // BlockRefs drop (refcount), they just become unreachable.
  if (cache_options_.block_cache != nullptr) {
    char buf[kBlockCacheKeySize];
    for (size_t i = 0; i < index_.size(); ++i) {
      cache_options_.block_cache->Erase(BlockCacheKey(cache_options_.cache_id, i, buf));
    }
  }
}

Status TableReader::ReadBlockFromFile(size_t i, std::string* out) const {
  const IndexEntry& e = index_[i];
  out->resize(e.size + kBlockCrcSize);
  Slice result;
  Status s = file_->Read(e.offset, e.size + kBlockCrcSize, &result, out->data());
  if (!s.ok()) {
    return s;
  }
  if (result.size() != e.size + kBlockCrcSize) {
    return Status::Corruption("truncated data block");
  }
  if (result.data() != out->data()) {
    memcpy(out->data(), result.data(), result.size());
  }
  const uint32_t stored = crc32c::Unmask(DecodeFixed32(out->data() + e.size));
  const uint32_t actual = crc32c::Value(out->data(), e.size);
  if (stored != actual) {
    return Status::Corruption("data block checksum mismatch");
  }
  out->resize(e.size);
  return Status::OK();
}

Status TableReader::ReadBlock(size_t i, BlockRef* out, bool fill_cache) const {
  out->Reset();
  ShardedLruCache* cache = cache_options_.block_cache;
  ShardedLruCache::Handle* handle = nullptr;
  if (cache != nullptr) {
    char buf[kBlockCacheKeySize];
    const Slice key = BlockCacheKey(cache_options_.cache_id, i, buf);
    handle = cache->Lookup(key);
    if (handle == nullptr && fill_cache) {
      auto block = std::make_unique<std::string>();
      Status s = ReadBlockFromFile(i, block.get());
      if (!s.ok()) {
        return s;
      }
      // Two racing misses both insert; the second replaces the first,
      // whose pinned readers stay valid via their handles. Charge the
      // block's payload bytes.
      handle = cache->Insert(key, block.get(), block->size(), &DeleteCachedBlock);
      block.release();  // owned by the cache entry now
    }
  }
  if (handle != nullptr) {
    out->pin_ = CacheHandleGuard(cache, handle);
    out->data_ = Slice(*static_cast<const std::string*>(cache->Value(handle)));
    return Status::OK();
  }
  // No cache attached, or a no-fill miss: local copy.
  Status s = ReadBlockFromFile(i, &out->owned_);
  if (!s.ok()) {
    return s;
  }
  out->data_ = Slice(out->owned_);
  return Status::OK();
}

size_t TableReader::FindBlock(const Slice& key) const {
  // Binary search for the first block whose last_key >= key.
  size_t lo = 0;
  size_t hi = index_.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (Slice(index_[mid].last_key).compare(key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Status TableReader::Get(const Slice& key, std::string* value, uint64_t* seq,
                        ValueType* type) const {
  if (!filter_.empty() && !bloom_.KeyMayMatch(key, Slice(filter_))) {
    return Status::NotFound();
  }
  const size_t block = FindBlock(key);
  if (block >= index_.size()) {
    return Status::NotFound();
  }
  BlockRef ref;
  Status s = ReadBlock(block, &ref);
  if (!s.ok()) {
    return s;
  }
  const char* p = ref.data().data();
  const char* limit = p + ref.data().size();
  while (p < limit) {
    Slice k, v;
    uint64_t entry_seq;
    ValueType entry_type;
    p = ParseTableEntry(p, limit, &k, &entry_seq, &entry_type, &v);
    if (p == nullptr) {
      return Status::Corruption("malformed table entry");
    }
    const int cmp = k.compare(key);
    if (cmp == 0) {
      if (value != nullptr) {
        value->assign(v.data(), v.size());
      }
      if (seq != nullptr) {
        *seq = entry_seq;
      }
      if (type != nullptr) {
        *type = entry_type;
      }
      return Status::OK();
    }
    if (cmp > 0) {
      break;  // sorted: key not present
    }
  }
  return Status::NotFound();
}

// Iterates blocks sequentially, parsing entries in place. Holds a pinned
// ref on the current block, so eviction under the iterator is safe.
class TableReader::Iter final : public Iterator {
 public:
  Iter(const TableReader* table, bool fill_cache) : table_(table), fill_cache_(fill_cache) {}

  bool Valid() const override { return valid_; }

  void SeekToFirst() override {
    block_index_ = 0;
    LoadBlockAndScanTo(Slice());
  }

  void Seek(const Slice& target) override {
    block_index_ = table_->FindBlock(target);
    LoadBlockAndScanTo(target);
  }

  void Next() override {
    ParseOne();
    if (!valid_ && status_.ok()) {
      // Block exhausted; advance to the next block.
      ++block_index_;
      LoadBlockAndScanTo(Slice());
    }
  }

  Slice key() const override { return key_; }
  Slice value() const override { return value_; }
  uint64_t seq() const override { return seq_; }
  ValueType type() const override { return type_; }
  Status status() const override { return status_; }

 private:
  // Loads block_index_ and positions at the first entry with key >= target
  // (empty target = first entry). Walks forward across blocks if needed.
  void LoadBlockAndScanTo(const Slice& target) {
    valid_ = false;
    while (block_index_ < table_->index_.size()) {
      status_ = table_->ReadBlock(block_index_, &block_, fill_cache_);
      if (!status_.ok()) {
        return;
      }
      pos_ = block_.data().data();
      limit_ = pos_ + block_.data().size();
      ParseOne();
      while (valid_ && !target.empty() && key_.compare(target) < 0) {
        ParseOne();
      }
      if (valid_) {
        return;
      }
      ++block_index_;
    }
  }

  void ParseOne() {
    if (pos_ == nullptr || pos_ >= limit_) {
      valid_ = false;
      return;
    }
    pos_ = ParseTableEntry(pos_, limit_, &key_, &seq_, &type_, &value_);
    if (pos_ == nullptr) {
      valid_ = false;
      status_ = Status::Corruption("malformed table entry in iterator");
      return;
    }
    valid_ = true;
  }

  const TableReader* const table_;
  const bool fill_cache_;
  size_t block_index_ = 0;
  BlockRef block_;
  const char* pos_ = nullptr;
  const char* limit_ = nullptr;
  bool valid_ = false;
  Slice key_, value_;
  uint64_t seq_ = 0;
  ValueType type_ = ValueType::kValue;
  Status status_;
};

std::unique_ptr<Iterator> TableReader::NewIterator(bool fill_cache) const {
  return std::make_unique<Iter>(this, fill_cache);
}

}  // namespace flodb
