// MemEnv: an in-memory filesystem implementing Env.
//
// Files are shared_ptr<string> blobs, so a reader that opened a file keeps
// its data alive even after RemoveFile — mirroring POSIX unlink semantics,
// which the disk component's garbage collection relies on.

#ifndef FLODB_DISK_MEM_ENV_H_
#define FLODB_DISK_MEM_ENV_H_

#include <map>
#include <memory>
#include <string>

#include "flodb/common/synchronization.h"
#include "flodb/disk/env.h"

namespace flodb {

class MemEnv final : public Env {
 public:
  MemEnv() = default;

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override;
  Status NewRandomAccessFile(const std::string& fname,
                             std::unique_ptr<RandomAccessFile>* result) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;

  bool FileExists(const std::string& fname) override;
  Status GetChildren(const std::string& dir, std::vector<std::string>* result) override;
  Status RemoveFile(const std::string& fname) override;
  Status CreateDir(const std::string& dirname) override;
  Status GetFileSize(const std::string& fname, uint64_t* file_size) override;
  Status RenameFile(const std::string& src, const std::string& target) override;

  // Sum of the sizes of all current files (tests and benchmarks).
  uint64_t TotalBytes();

 private:
  using FileRef = std::shared_ptr<std::string>;

  Mutex mu_;
  std::map<std::string, FileRef> files_ GUARDED_BY(mu_);
};

}  // namespace flodb

#endif  // FLODB_DISK_MEM_ENV_H_
