// Bloom filter for SSTables: reduces disk reads for point lookups that
// miss a file (most lookups in the paper's 300GB dataset go to disk, so
// filters carry the read path).

#ifndef FLODB_DISK_BLOOM_H_
#define FLODB_DISK_BLOOM_H_

#include <string>
#include <vector>

#include "flodb/common/slice.h"

namespace flodb {

class BloomFilter {
 public:
  explicit BloomFilter(int bits_per_key = 10);

  // Builds the filter over `keys`, appending the bits to *dst.
  void CreateFilter(const std::vector<Slice>& keys, std::string* dst) const;

  // May return false positives, never false negatives for keys passed to
  // CreateFilter with the same bits_per_key.
  bool KeyMayMatch(const Slice& key, const Slice& filter) const;

 private:
  int bits_per_key_;
  int k_;  // number of probes
};

}  // namespace flodb

#endif  // FLODB_DISK_BLOOM_H_
