#include "flodb/disk/value_log.h"

#include <cinttypes>
#include <cstdio>

#include "flodb/common/coding.h"
#include "flodb/disk/crc32c.h"

namespace flodb {

namespace {
constexpr size_t kVlogHeaderSize = 8;  // fixed32 masked_crc | fixed32 length
}  // namespace

void EncodeValuePointer(std::string* dst, const ValuePointer& ptr) {
  PutVarint64(dst, ptr.file_number);
  PutVarint64(dst, ptr.offset);
  PutVarint32(dst, ptr.length);
}

bool DecodeValuePointer(Slice in, ValuePointer* ptr) {
  return GetVarint64(&in, &ptr->file_number) && GetVarint64(&in, &ptr->offset) &&
         GetVarint32(&in, &ptr->length) && in.empty();
}

std::string VlogFileName(const std::string& dbpath, uint64_t number) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/%06" PRIu64 ".vlog", number);
  return dbpath + buf;
}

ValueLog::ValueLog(Env* env, std::string dbpath, uint64_t file_target_bytes,
                   std::function<uint64_t()> alloc_number,
                   std::function<Status(uint64_t)> register_file)
    : env_(env),
      dbpath_(std::move(dbpath)),
      file_target_bytes_(file_target_bytes),
      alloc_number_(std::move(alloc_number)),
      register_file_(std::move(register_file)) {}

ValueLog::~ValueLog() {
  MutexLock lock(mu_);
  if (active_ != nullptr) {
    active_->Close();
  }
}

Status ValueLog::RotateLocked() {
  mu_.AssertHeld();
  if (active_ != nullptr) {
    if (dirty_) {
      Status s = active_->Sync();
      if (!s.ok()) {
        return s;
      }
      dirty_ = false;
    }
    Status s = active_->Close();
    active_.reset();
    if (!s.ok()) {
      return s;
    }
  }
  const uint64_t number = alloc_number_();
  const std::string fname = VlogFileName(dbpath_, number);
  std::unique_ptr<WritableFile> file;
  Status s = env_->NewWritableFile(fname, &file);
  if (!s.ok()) {
    return s;
  }
  // Register before serving appends: a crash after this point finds the
  // file in the MANIFEST (or, if the registration itself was torn, no
  // WAL record can reference the file yet — appends have not started).
  s = register_file_(number);
  if (!s.ok()) {
    file->Close();
    env_->RemoveFile(fname);
    return s;
  }
  active_ = std::move(file);
  active_number_ = number;
  active_size_ = 0;
  return Status::OK();
}

Status ValueLog::Append(const Slice& key, const Slice& value, ValuePointer* ptr, bool pin) {
  std::string payload;
  payload.reserve(kMaxVarint32Bytes + key.size() + value.size());
  PutVarint32(&payload, static_cast<uint32_t>(key.size()));
  payload.append(key.data(), key.size());
  payload.append(value.data(), value.size());

  std::string record;
  record.reserve(kVlogHeaderSize + payload.size());
  PutFixed32(&record, crc32c::Mask(crc32c::Value(payload.data(), payload.size())));
  PutFixed32(&record, static_cast<uint32_t>(payload.size()));
  record.append(payload);

  MutexLock lock(mu_);
  if (active_ == nullptr || active_size_ >= file_target_bytes_) {
    Status s = RotateLocked();
    if (!s.ok()) {
      return s;
    }
  }
  Status s = active_->Append(record);
  if (s.ok()) {
    // Readers go through RandomAccessFile handles; flush so the bytes are
    // visible past the WritableFile's userspace buffer (not an fsync).
    s = active_->Flush();
  }
  if (!s.ok()) {
    RetireBrokenActiveLocked();
    return s;
  }
  ptr->file_number = active_number_;
  ptr->offset = active_size_;
  ptr->length = static_cast<uint32_t>(record.size());
  active_size_ += record.size();
  dirty_ = true;
  if (pin) {
    ++pins_[active_number_];
  }
  bytes_appended_.fetch_add(record.size(), std::memory_order_relaxed);
  records_appended_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

// A failed Append/Flush leaves the file's physical
// length unknown — a partial physical write can put the real file length
// ahead of active_size_, so a later successful append would get a
// ValuePointer whose offset no longer matches the on-disk record (a
// durably acked write that fails CRC on read). Never append to such a
// file again: sync what did land (earlier records may already be
// referenced by a WAL group that has not committed yet), remember a sync
// failure so the next Sync() fails that group, and drop the writer — the
// next Append rotates to a fresh file. The torn tail is unreferenced and
// framed out by CRC on any scan.
void ValueLog::RetireBrokenActiveLocked() {
  mu_.AssertHeld();
  if (active_ == nullptr) {
    return;
  }
  if (dirty_) {
    Status s = active_->Sync();
    if (s.ok()) {
      dirty_ = false;
    } else if (sticky_sync_error_.ok()) {
      sticky_sync_error_ = s;
    }
  }
  active_->Close();
  active_.reset();
}

Status ValueLog::Sync() {
  MutexLock lock(mu_);
  if (!sticky_sync_error_.ok()) {
    // A retired broken file still holds unsynced records; the group
    // commit covering them must fail (a false durability ack is the one
    // outcome this path may never produce). Report once: later groups
    // only reference post-rotation appends.
    Status s = sticky_sync_error_;
    sticky_sync_error_ = Status::OK();
    if (active_ != nullptr && dirty_ && active_->Sync().ok()) {
      dirty_ = false;
    }
    return s;
  }
  if (active_ == nullptr || !dirty_) {
    return Status::OK();
  }
  Status s = active_->Sync();
  if (s.ok()) {
    dirty_ = false;
  }
  return s;
}

Status ValueLog::ReaderForLocked(uint64_t file_number, std::shared_ptr<RandomAccessFile>* reader) {
  auto it = readers_.find(file_number);
  if (it != readers_.end()) {
    *reader = it->second;
    return Status::OK();
  }
  std::unique_ptr<RandomAccessFile> file;
  Status s = env_->NewRandomAccessFile(VlogFileName(dbpath_, file_number), &file);
  if (!s.ok()) {
    return s;
  }
  auto shared = std::shared_ptr<RandomAccessFile>(std::move(file));
  readers_[file_number] = shared;
  *reader = std::move(shared);
  return Status::OK();
}

Status ValueLog::ReadRecord(RandomAccessFile* file, const ValuePointer& ptr, std::string* value) {
  if (ptr.length < kVlogHeaderSize) {
    return Status::Corruption("value pointer length too small");
  }
  std::string scratch(ptr.length, '\0');
  Slice record;
  Status s = file->Read(ptr.offset, ptr.length, &record, scratch.data());
  if (!s.ok()) {
    return s;
  }
  if (record.size() < ptr.length) {
    return Status::Corruption("short vlog read");
  }
  const uint32_t expected_crc = crc32c::Unmask(DecodeFixed32(record.data()));
  const uint32_t length = DecodeFixed32(record.data() + 4);
  if (length != ptr.length - kVlogHeaderSize) {
    return Status::Corruption("vlog record length mismatch");
  }
  Slice payload(record.data() + kVlogHeaderSize, length);
  if (crc32c::Value(payload.data(), payload.size()) != expected_crc) {
    return Status::Corruption("vlog record checksum mismatch");
  }
  uint32_t klen = 0;
  if (!GetVarint32(&payload, &klen) || payload.size() < klen) {
    return Status::Corruption("malformed vlog record");
  }
  payload.remove_prefix(klen);
  value->assign(payload.data(), payload.size());
  records_read_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status ValueLog::Read(const ValuePointer& ptr, std::string* value) {
  std::shared_ptr<RandomAccessFile> reader;
  // Explicit lock()/unlock() pairing (not MutexLock): sealed-file reads
  // drop the mutex before the IO, and the analysis checks the manual
  // pairing on every branch.
  mu_.lock();
  Status s = ReaderForLocked(ptr.file_number, &reader);
  if (!s.ok()) {
    mu_.unlock();
    return s;
  }
  if (ptr.file_number == active_number_ && active_ != nullptr) {
    // Active-file reads stay under the lock: a concurrent append may
    // reallocate the MemEnv backing store a zero-copy reader aliases.
    s = ReadRecord(reader.get(), ptr, value);
    mu_.unlock();
    return s;
  }
  mu_.unlock();
  return ReadRecord(reader.get(), ptr, value);
}

void ValueLog::Unpin(uint64_t file_number) {
  MutexLock lock(mu_);
  auto it = pins_.find(file_number);
  if (it != pins_.end() && --it->second <= 0) {
    pins_.erase(it);
    pin_cv_.SignalAll();
  }
}

void ValueLog::WaitUnpinned(uint64_t file_number) {
  MutexLock lock(mu_);
  // Explicit loop: the predicate reads guarded state (pins_), so it must
  // run in this annotated scope rather than inside a lambda.
  while (pins_.find(file_number) != pins_.end()) {
    pin_cv_.Wait(mu_);
  }
}

void ValueLog::EvictReader(uint64_t file_number) {
  MutexLock lock(mu_);
  readers_.erase(file_number);
}

uint64_t ValueLog::ActiveFileNumber() {
  MutexLock lock(mu_);
  return active_ != nullptr ? active_number_ : 0;
}

Status ValueLog::ScanFile(
    Env* env, const std::string& fname, uint64_t file_number,
    const std::function<void(const Slice& key, const Slice& value, const ValuePointer& ptr)>& fn) {
  std::unique_ptr<SequentialFile> file;
  Status s = env->NewSequentialFile(fname, &file);
  if (!s.ok()) {
    return s;
  }
  uint64_t offset = 0;
  std::string payload;
  while (true) {
    char header[kVlogHeaderSize];
    Slice h;
    s = file->Read(sizeof(header), &h, header);
    if (!s.ok() || h.size() < sizeof(header)) {
      return Status::OK();  // clean EOF or truncated tail header
    }
    const uint32_t expected_crc = crc32c::Unmask(DecodeFixed32(h.data()));
    const uint32_t length = DecodeFixed32(h.data() + 4);
    payload.resize(length);
    Slice body;
    s = file->Read(length, &body, payload.data());
    if (!s.ok() || body.size() < length) {
      return Status::OK();  // torn tail record
    }
    if (crc32c::Value(body.data(), body.size()) != expected_crc) {
      return Status::OK();  // torn tail record (CRC framing)
    }
    Slice in(body.data(), body.size());
    uint32_t klen = 0;
    if (!GetVarint32(&in, &klen) || in.size() < klen) {
      return Status::Corruption("malformed vlog record payload");
    }
    Slice key(in.data(), klen);
    in.remove_prefix(klen);
    ValuePointer ptr;
    ptr.file_number = file_number;
    ptr.offset = offset;
    ptr.length = kVlogHeaderSize + length;
    fn(key, in, ptr);
    offset += kVlogHeaderSize + length;
  }
}

}  // namespace flodb
