// Env: the storage abstraction under the disk component.
//
// Three implementations ship:
//  * PosixEnv      — real files (production path),
//  * MemEnv        — an in-memory filesystem (tests; removes I/O noise),
//  * ThrottledEnv  — wraps another Env and caps write bandwidth with a
//                    token bucket, standing in for the paper's SSD: the
//                    persistence-throughput ceiling in Figures 9/17 is the
//                    bucket rate.

#ifndef FLODB_DISK_ENV_H_
#define FLODB_DISK_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "flodb/common/slice.h"
#include "flodb/common/status.h"

namespace flodb {

class SequentialFile {
 public:
  virtual ~SequentialFile() = default;
  // Reads up to n bytes. *result points into scratch (or internal storage).
  virtual Status Read(size_t n, Slice* result, char* scratch) = 0;
  virtual Status Skip(uint64_t n) = 0;
};

class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;
  virtual Status Read(uint64_t offset, size_t n, Slice* result, char* scratch) const = 0;
};

class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(const Slice& data) = 0;
  virtual Status Flush() = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  virtual Status NewSequentialFile(const std::string& fname,
                                   std::unique_ptr<SequentialFile>* result) = 0;
  virtual Status NewRandomAccessFile(const std::string& fname,
                                     std::unique_ptr<RandomAccessFile>* result) = 0;
  virtual Status NewWritableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* result) = 0;

  virtual bool FileExists(const std::string& fname) = 0;
  virtual Status GetChildren(const std::string& dir, std::vector<std::string>* result) = 0;
  virtual Status RemoveFile(const std::string& fname) = 0;
  virtual Status CreateDir(const std::string& dirname) = 0;
  virtual Status GetFileSize(const std::string& fname, uint64_t* file_size) = 0;
  virtual Status RenameFile(const std::string& src, const std::string& target) = 0;
};

// Process-wide PosixEnv singleton.
Env* GetPosixEnv();

// Convenience helpers built on the interface.
Status WriteStringToFile(Env* env, const Slice& data, const std::string& fname, bool sync);
Status ReadFileToString(Env* env, const std::string& fname, std::string* data);

}  // namespace flodb

#endif  // FLODB_DISK_ENV_H_
