#include "flodb/disk/mem_env.h"

#include <cstring>

namespace flodb {

namespace {

class MemSequentialFile final : public SequentialFile {
 public:
  explicit MemSequentialFile(std::shared_ptr<std::string> data) : data_(std::move(data)) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    const size_t available = data_->size() - pos_;
    if (n > available) {
      n = available;
    }
    memcpy(scratch, data_->data() + pos_, n);
    *result = Slice(scratch, n);
    pos_ += n;
    return Status::OK();
  }

  Status Skip(uint64_t n) override {
    const size_t available = data_->size() - pos_;
    pos_ += (n > available) ? available : static_cast<size_t>(n);
    return Status::OK();
  }

 private:
  std::shared_ptr<std::string> data_;
  size_t pos_ = 0;
};

class MemRandomAccessFile final : public RandomAccessFile {
 public:
  explicit MemRandomAccessFile(std::shared_ptr<std::string> data) : data_(std::move(data)) {}

  Status Read(uint64_t offset, size_t n, Slice* result, char* /*scratch*/) const override {
    if (offset >= data_->size()) {
      *result = Slice();
      return Status::OK();
    }
    const size_t available = data_->size() - static_cast<size_t>(offset);
    if (n > available) {
      n = available;
    }
    // Point straight into the blob: zero-copy and the shared_ptr keeps it
    // alive for the file's lifetime.
    *result = Slice(data_->data() + offset, n);
    return Status::OK();
  }

 private:
  std::shared_ptr<std::string> data_;
};

class MemWritableFile final : public WritableFile {
 public:
  explicit MemWritableFile(std::shared_ptr<std::string> data) : data_(std::move(data)) {}

  Status Append(const Slice& slice) override {
    data_->append(slice.data(), slice.size());
    return Status::OK();
  }
  Status Flush() override { return Status::OK(); }
  Status Sync() override { return Status::OK(); }
  Status Close() override { return Status::OK(); }

 private:
  std::shared_ptr<std::string> data_;
};

}  // namespace

Status MemEnv::NewSequentialFile(const std::string& fname,
                                 std::unique_ptr<SequentialFile>* result) {
  MutexLock lock(mu_);
  auto it = files_.find(fname);
  if (it == files_.end()) {
    return Status::NotFound(fname);
  }
  result->reset(new MemSequentialFile(it->second));
  return Status::OK();
}

Status MemEnv::NewRandomAccessFile(const std::string& fname,
                                   std::unique_ptr<RandomAccessFile>* result) {
  MutexLock lock(mu_);
  auto it = files_.find(fname);
  if (it == files_.end()) {
    return Status::NotFound(fname);
  }
  result->reset(new MemRandomAccessFile(it->second));
  return Status::OK();
}

Status MemEnv::NewWritableFile(const std::string& fname,
                               std::unique_ptr<WritableFile>* result) {
  MutexLock lock(mu_);
  auto file = std::make_shared<std::string>();
  files_[fname] = file;
  result->reset(new MemWritableFile(std::move(file)));
  return Status::OK();
}

bool MemEnv::FileExists(const std::string& fname) {
  MutexLock lock(mu_);
  return files_.count(fname) != 0;
}

Status MemEnv::GetChildren(const std::string& dir, std::vector<std::string>* result) {
  result->clear();
  std::string prefix = dir;
  if (!prefix.empty() && prefix.back() != '/') {
    prefix += '/';
  }
  MutexLock lock(mu_);
  for (const auto& [name, data] : files_) {
    if (name.size() > prefix.size() && name.compare(0, prefix.size(), prefix) == 0) {
      std::string child = name.substr(prefix.size());
      if (child.find('/') == std::string::npos) {
        result->push_back(std::move(child));
      }
    }
  }
  return Status::OK();
}

Status MemEnv::RemoveFile(const std::string& fname) {
  MutexLock lock(mu_);
  if (files_.erase(fname) == 0) {
    return Status::NotFound(fname);
  }
  return Status::OK();
}

Status MemEnv::CreateDir(const std::string& /*dirname*/) { return Status::OK(); }

Status MemEnv::GetFileSize(const std::string& fname, uint64_t* file_size) {
  MutexLock lock(mu_);
  auto it = files_.find(fname);
  if (it == files_.end()) {
    *file_size = 0;
    return Status::NotFound(fname);
  }
  *file_size = it->second->size();
  return Status::OK();
}

Status MemEnv::RenameFile(const std::string& src, const std::string& target) {
  MutexLock lock(mu_);
  auto it = files_.find(src);
  if (it == files_.end()) {
    return Status::NotFound(src);
  }
  files_[target] = it->second;
  files_.erase(it);
  return Status::OK();
}

uint64_t MemEnv::TotalBytes() {
  MutexLock lock(mu_);
  uint64_t total = 0;
  for (const auto& [name, data] : files_) {
    total += data->size();
  }
  return total;
}

}  // namespace flodb
