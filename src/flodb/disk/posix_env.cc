// PosixEnv: Env over the host filesystem with buffered writes and
// pread-based random access.

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "flodb/disk/env.h"

namespace flodb {

namespace {

Status PosixError(const std::string& context, int err) {
  std::string msg = context + ": " + strerror(err);
  if (err == ENOENT) {
    return Status::NotFound(msg);
  }
  return Status::IOError(msg);
}

class PosixSequentialFile final : public SequentialFile {
 public:
  PosixSequentialFile(std::string fname, int fd) : fname_(std::move(fname)), fd_(fd) {}
  ~PosixSequentialFile() override { ::close(fd_); }

  Status Read(size_t n, Slice* result, char* scratch) override {
    while (true) {
      ssize_t r = ::read(fd_, scratch, n);
      if (r < 0) {
        if (errno == EINTR) {
          continue;
        }
        return PosixError(fname_, errno);
      }
      *result = Slice(scratch, static_cast<size_t>(r));
      return Status::OK();
    }
  }

  Status Skip(uint64_t n) override {
    if (::lseek(fd_, static_cast<off_t>(n), SEEK_CUR) == -1) {
      return PosixError(fname_, errno);
    }
    return Status::OK();
  }

 private:
  const std::string fname_;
  const int fd_;
};

class PosixRandomAccessFile final : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string fname, int fd) : fname_(std::move(fname)), fd_(fd) {}
  ~PosixRandomAccessFile() override { ::close(fd_); }

  Status Read(uint64_t offset, size_t n, Slice* result, char* scratch) const override {
    ssize_t r = ::pread(fd_, scratch, n, static_cast<off_t>(offset));
    if (r < 0) {
      return PosixError(fname_, errno);
    }
    *result = Slice(scratch, static_cast<size_t>(r));
    return Status::OK();
  }

 private:
  const std::string fname_;
  const int fd_;
};

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(std::string fname, int fd) : fname_(std::move(fname)), fd_(fd) {
    buffer_.reserve(kBufferSize);
  }

  ~PosixWritableFile() override {
    if (fd_ >= 0) {
      Close();
    }
  }

  Status Append(const Slice& data) override {
    if (buffer_.size() + data.size() <= kBufferSize) {
      buffer_.append(data.data(), data.size());
      return Status::OK();
    }
    Status s = FlushBuffer();
    if (!s.ok()) {
      return s;
    }
    if (data.size() <= kBufferSize) {
      buffer_.append(data.data(), data.size());
      return Status::OK();
    }
    return WriteRaw(data.data(), data.size());
  }

  Status Flush() override { return FlushBuffer(); }

  Status Sync() override {
    Status s = FlushBuffer();
    if (!s.ok()) {
      return s;
    }
    if (::fdatasync(fd_) != 0) {
      return PosixError(fname_, errno);
    }
    return Status::OK();
  }

  Status Close() override {
    Status s = FlushBuffer();
    if (::close(fd_) != 0 && s.ok()) {
      s = PosixError(fname_, errno);
    }
    fd_ = -1;
    return s;
  }

 private:
  static constexpr size_t kBufferSize = 64 << 10;

  Status FlushBuffer() {
    Status s = buffer_.empty() ? Status::OK() : WriteRaw(buffer_.data(), buffer_.size());
    buffer_.clear();
    return s;
  }

  Status WriteRaw(const char* data, size_t n) {
    while (n > 0) {
      ssize_t w = ::write(fd_, data, n);
      if (w < 0) {
        if (errno == EINTR) {
          continue;
        }
        return PosixError(fname_, errno);
      }
      data += w;
      n -= static_cast<size_t>(w);
    }
    return Status::OK();
  }

  const std::string fname_;
  int fd_;
  std::string buffer_;
};

class PosixEnv final : public Env {
 public:
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    int fd = ::open(fname.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      return PosixError(fname, errno);
    }
    result->reset(new PosixSequentialFile(fname, fd));
    return Status::OK();
  }

  Status NewRandomAccessFile(const std::string& fname,
                             std::unique_ptr<RandomAccessFile>* result) override {
    int fd = ::open(fname.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      return PosixError(fname, errno);
    }
    result->reset(new PosixRandomAccessFile(fname, fd));
    return Status::OK();
  }

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    int fd = ::open(fname.c_str(), O_TRUNC | O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) {
      return PosixError(fname, errno);
    }
    result->reset(new PosixWritableFile(fname, fd));
    return Status::OK();
  }

  bool FileExists(const std::string& fname) override { return ::access(fname.c_str(), F_OK) == 0; }

  Status GetChildren(const std::string& dir, std::vector<std::string>* result) override {
    result->clear();
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) {
      return PosixError(dir, errno);
    }
    struct dirent* entry;
    while ((entry = ::readdir(d)) != nullptr) {
      std::string name = entry->d_name;
      if (name != "." && name != "..") {
        result->push_back(std::move(name));
      }
    }
    ::closedir(d);
    return Status::OK();
  }

  Status RemoveFile(const std::string& fname) override {
    if (::unlink(fname.c_str()) != 0) {
      return PosixError(fname, errno);
    }
    return Status::OK();
  }

  Status CreateDir(const std::string& dirname) override {
    if (::mkdir(dirname.c_str(), 0755) != 0 && errno != EEXIST) {
      return PosixError(dirname, errno);
    }
    return Status::OK();
  }

  Status GetFileSize(const std::string& fname, uint64_t* file_size) override {
    struct stat sbuf;
    if (::stat(fname.c_str(), &sbuf) != 0) {
      *file_size = 0;
      return PosixError(fname, errno);
    }
    *file_size = static_cast<uint64_t>(sbuf.st_size);
    return Status::OK();
  }

  Status RenameFile(const std::string& src, const std::string& target) override {
    if (::rename(src.c_str(), target.c_str()) != 0) {
      return PosixError(src, errno);
    }
    return Status::OK();
  }
};

}  // namespace

Env* GetPosixEnv() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

}  // namespace flodb
