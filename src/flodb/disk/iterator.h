// Iterator: the traversal interface shared by memtable adapters, SSTables
// and merged views. Entries expose (key, seq, type, value); seq is the
// global sequence number assigned when the entry entered the Memtable
// (scans validate against it — Algorithm 3 line 21).

#ifndef FLODB_DISK_ITERATOR_H_
#define FLODB_DISK_ITERATOR_H_

#include <cstdint>

#include "flodb/common/slice.h"
#include "flodb/common/status.h"
#include "flodb/mem/entry.h"

namespace flodb {

class Iterator {
 public:
  Iterator() = default;
  virtual ~Iterator() = default;

  Iterator(const Iterator&) = delete;
  Iterator& operator=(const Iterator&) = delete;

  virtual bool Valid() const = 0;
  virtual void SeekToFirst() = 0;
  // Positions at the first entry with key >= target.
  virtual void Seek(const Slice& target) = 0;
  virtual void Next() = 0;

  // REQUIRES: Valid(). Slices remain valid until the next mutation of the
  // iterator position.
  virtual Slice key() const = 0;
  virtual Slice value() const = 0;
  virtual uint64_t seq() const = 0;
  virtual ValueType type() const = 0;

  virtual Status status() const { return Status::OK(); }
};

}  // namespace flodb

#endif  // FLODB_DISK_ITERATOR_H_
