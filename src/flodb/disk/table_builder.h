// TableBuilder: streams sorted entries into the SSTable format described
// in table_format.h. Used by the persist thread (Memtable flush) and by
// compactions.

#ifndef FLODB_DISK_TABLE_BUILDER_H_
#define FLODB_DISK_TABLE_BUILDER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "flodb/common/slice.h"
#include "flodb/common/status.h"
#include "flodb/disk/bloom.h"
#include "flodb/disk/env.h"
#include "flodb/mem/entry.h"

namespace flodb {

class TableBuilder {
 public:
  struct Options {
    size_t block_bytes = 4096;
    int bloom_bits_per_key = 10;
  };

  // Does not take ownership of file; caller closes it after Finish.
  TableBuilder(const Options& options, WritableFile* file);
  ~TableBuilder();

  TableBuilder(const TableBuilder&) = delete;
  TableBuilder& operator=(const TableBuilder&) = delete;

  // Keys must arrive in strictly increasing order.
  void Add(const Slice& key, uint64_t seq, ValueType type, const Slice& value);

  // Writes filter, index and footer. No Adds may follow.
  Status Finish();

  Status status() const { return status_; }
  uint64_t NumEntries() const { return num_entries_; }
  // Bytes written so far (after Finish: the final file size).
  uint64_t FileSize() const { return offset_; }

  Slice smallest_key() const { return Slice(smallest_key_); }
  Slice largest_key() const { return Slice(largest_key_); }
  uint64_t smallest_seq() const { return smallest_seq_; }
  uint64_t largest_seq() const { return largest_seq_; }

 private:
  void FlushBlock();

  const Options options_;
  WritableFile* const file_;
  Status status_;

  std::string block_buf_;
  std::string index_buf_;
  std::string last_key_in_block_;

  // All keys of the file, pinned for the bloom filter build.
  std::vector<std::string> keys_;

  uint64_t offset_ = 0;
  uint64_t num_entries_ = 0;
  std::string smallest_key_;
  std::string largest_key_;
  uint64_t smallest_seq_ = ~0ull;
  uint64_t largest_seq_ = 0;
  bool finished_ = false;
};

}  // namespace flodb

#endif  // FLODB_DISK_TABLE_BUILDER_H_
