// Version / VersionSet: the leveled file metadata of the disk component.
//
// A Version is an immutable snapshot of the file hierarchy: level 0 holds
// possibly-overlapping flushed Memtables (searched newest-first by max
// sequence number); levels >= 1 hold sorted, non-overlapping runs.
// Readers pin a Version with a shared_ptr and are never blocked by
// flushes or compactions, which install fresh Versions.
//
// Every installed Version is persisted as a full MANIFEST snapshot
// (rewrite-on-change; simple and crash-safe at this scale) with a CURRENT
// pointer file, giving cheap recovery.

#ifndef FLODB_DISK_VERSION_H_
#define FLODB_DISK_VERSION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "flodb/common/slice.h"
#include "flodb/common/synchronization.h"
#include "flodb/common/status.h"
#include "flodb/disk/env.h"

namespace flodb {

struct FileMetaData {
  uint64_t number = 0;
  uint64_t file_size = 0;
  uint64_t entries = 0;
  std::string smallest;  // smallest user key
  std::string largest;   // largest user key
  uint64_t smallest_seq = 0;
  uint64_t largest_seq = 0;

  // Vlog file numbers referenced by kValuePointer entries in this table
  // (sorted, unique). Pins those vlogs: a vlog file may only be deleted
  // once no live version holds a table referencing it.
  std::vector<uint64_t> vlog_refs;

  bool OverlapsRange(const Slice& begin, const Slice& end) const {
    // Empty bounds = unbounded.
    if (!end.empty() && Slice(smallest).compare(end) > 0) {
      return false;
    }
    if (!begin.empty() && Slice(largest).compare(begin) < 0) {
      return false;
    }
    return true;
  }

  bool ContainsKey(const Slice& key) const {
    return Slice(smallest).compare(key) <= 0 && Slice(largest).compare(key) >= 0;
  }
};

class Version {
 public:
  explicit Version(int num_levels) : levels_(num_levels) {}

  const std::vector<FileMetaData>& LevelFiles(int level) const { return levels_[level]; }
  int NumLevels() const { return static_cast<int>(levels_.size()); }

  uint64_t LevelBytes(int level) const;
  int NumFiles() const;

  // All files at `level` overlapping [begin, end] (empty Slice = open end).
  std::vector<FileMetaData> OverlappingFiles(int level, const Slice& begin,
                                             const Slice& end) const;

  // True if no file in levels (level, NumLevels) overlaps [begin, end]:
  // tombstones compacted into `level` can then be dropped.
  bool IsBottommostForRange(int level, const Slice& begin, const Slice& end) const;

  // Live vlog files: number -> bytes known dead (records whose pointer
  // entry was dropped by flush/compaction dedup). The GC picker divides
  // garbage by file size to choose victims.
  const std::map<uint64_t, uint64_t>& VlogFiles() const { return vlogs_; }

 private:
  friend class VersionSet;
  std::vector<std::vector<FileMetaData>> levels_;
  std::map<uint64_t, uint64_t> vlogs_;  // vlog number -> garbage bytes
};

struct VersionEdit {
  std::vector<std::pair<int, FileMetaData>> added;
  std::vector<std::pair<int, uint64_t>> deleted;  // (level, file number)

  // Vlog file lifecycle: registration (at creation, before any append is
  // served), deletion (after GC rewrote every live reference), and
  // garbage accounting deltas (bytes of records whose pointer entries
  // were dropped).
  std::vector<uint64_t> added_vlogs;
  std::vector<uint64_t> deleted_vlogs;
  std::vector<std::pair<uint64_t, uint64_t>> vlog_garbage;  // (vlog number, +bytes)
};

class VersionSet {
 public:
  VersionSet(Env* env, std::string dbname, int num_levels);

  // Loads CURRENT/MANIFEST if present; otherwise starts empty and writes
  // an initial manifest.
  Status Recover();

  // Applies edit to the current version, persists the new manifest and
  // installs the result. Thread-safe.
  Status LogAndApply(const VersionEdit& edit);

  std::shared_ptr<const Version> Current() const;

  uint64_t NewFileNumber() { return next_file_number_.fetch_add(1, std::memory_order_relaxed); }

  // Raises the file-number counter to at least `n`. Open calls this with
  // one past the highest .sst found on disk: a crashed compaction's
  // orphan outputs are numbered above the recovered manifest's counter,
  // and without the bump they would (a) sit behind the GC barrier
  // forever and (b) collide with numbers handed out after reopen.
  void EnsureFileNumberAtLeast(uint64_t n) {
    uint64_t cur = next_file_number_.load(std::memory_order_relaxed);
    while (cur < n &&
           !next_file_number_.compare_exchange_weak(cur, n, std::memory_order_relaxed)) {
    }
  }

  // The next number NewFileNumber would hand out. File GC uses this as a
  // barrier: a file numbered >= the barrier was born after the GC's
  // liveness snapshot and must not be touched.
  uint64_t PeekFileNumber() const { return next_file_number_.load(std::memory_order_acquire); }

  // Recovery needs to seed the sequence counter past everything on disk.
  uint64_t MaxPersistedSeq() const;

  // File numbers referenced by the current version.
  std::set<uint64_t> LiveFileNumbers() const;

  // File numbers referenced by ANY version still pinned by a reader
  // (union over the live-version registry). Garbage collection must use
  // this set: a scan holding an old Version may still open its files.
  std::set<uint64_t> AllLiveFileNumbers() const;

  // Same union for vlog files. Every version that registered a vlog keeps
  // it in its vlogs map, so a pinned version resolving pointers into a
  // GC'd vlog keeps the file on disk until the version is released.
  std::set<uint64_t> AllLiveVlogNumbers() const;

  std::string TableFileName(uint64_t number) const;
  std::string DbPath() const { return dbname_; }

  // Number of the manifest CURRENT points at. File GC keeps this one and
  // reclaims lower-numbered MANIFEST files left behind by crashed or
  // failed snapshot writes.
  uint64_t CurrentManifestNumber() const;

 private:
  // Persists `v` as a fresh manifest and repoints CURRENT. Bumps
  // manifest_number_/current_manifest_number_, hence the lock.
  Status WriteSnapshot(const Version& v) REQUIRES(mu_);
  Status LoadSnapshot(const std::string& manifest_file, std::shared_ptr<Version>* out);

  Env* const env_;
  const std::string dbname_;
  const int num_levels_;

  // Registers a version for AllLiveFileNumbers and prunes expired
  // entries.
  void RegisterVersionLocked(const std::shared_ptr<const Version>& v) REQUIRES(mu_);

  mutable Mutex mu_;
  std::shared_ptr<const Version> current_ GUARDED_BY(mu_);
  std::vector<std::weak_ptr<const Version>> registry_ GUARDED_BY(mu_);
  std::atomic<uint64_t> next_file_number_{1};
  // last number handed to a snapshot write
  uint64_t manifest_number_ GUARDED_BY(mu_) = 0;
  // the one CURRENT points at
  uint64_t current_manifest_number_ GUARDED_BY(mu_) = 0;
};

}  // namespace flodb

#endif  // FLODB_DISK_VERSION_H_
