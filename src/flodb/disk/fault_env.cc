#include "flodb/disk/fault_env.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace flodb {

// Forwards writes to the base file while reporting every append and sync
// to the owning env, which decides what actually happens (full write,
// torn prefix, injected error) and keeps the durability bookkeeping.
class FaultInjectionWritableFile final : public WritableFile {
 public:
  FaultInjectionWritableFile(FaultInjectionEnv* env, std::string fname,
                             std::unique_ptr<WritableFile> base)
      : env_(env), fname_(std::move(fname)), base_(std::move(base)) {}

  Status Append(const Slice& data) override {
    size_t allowed = data.size();
    {
      MutexLock lock(env_->mu_);
      ++env_->append_count_;
      const bool matches = env_->fail_append_substr_.empty() ||
                           fname_.find(env_->fail_append_substr_) != std::string::npos;
      if (matches) {
        if (env_->appends_broken_) {
          return Status::IOError("injected append failure (latched)");
        }
        if (env_->appends_until_fail_ == 0) {
          env_->appends_broken_ = true;
          // A torn write puts half the data on the device before dying —
          // the classic mid-record power cut.
          allowed = env_->torn_append_ ? data.size() / 2 : 0;
        } else if (env_->appends_until_fail_ > 0) {
          --env_->appends_until_fail_;
        }
      }
    }
    if (allowed < data.size()) {
      if (allowed > 0) {
        Status s = base_->Append(Slice(data.data(), allowed));
        if (s.ok()) {
          MutexLock lock(env_->mu_);
          env_->files_[fname_].size += allowed;
        }
      }
      return Status::IOError("injected append failure");
    }
    Status s = base_->Append(data);
    if (s.ok()) {
      MutexLock lock(env_->mu_);
      env_->files_[fname_].size += data.size();
    }
    return s;
  }

  Status Flush() override { return base_->Flush(); }

  Status Sync() override {
    int delay_micros;
    uint64_t size_at_sync;
    {
      MutexLock lock(env_->mu_);
      ++env_->sync_count_;
      delay_micros = env_->sync_delay_micros_;
      if (env_->fail_syncs_) {
        return Status::IOError("injected sync failure");
      }
      // Snapshot NOW (LevelDB's pos_at_last_sync): bytes appended while
      // the sync is in flight are not covered by it and must stay
      // droppable.
      size_at_sync = env_->files_[fname_].size;
    }
    if (delay_micros > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(delay_micros));
    }
    Status s = base_->Sync();
    if (s.ok()) {
      MutexLock lock(env_->mu_);
      FaultInjectionEnv::FileState& state = env_->files_[fname_];
      state.synced = std::max(state.synced, size_at_sync);
    }
    return s;
  }

  Status Close() override { return base_->Close(); }

 private:
  FaultInjectionEnv* const env_;
  const std::string fname_;
  std::unique_ptr<WritableFile> base_;
};

Status FaultInjectionEnv::NewWritableFile(const std::string& fname,
                                          std::unique_ptr<WritableFile>* result) {
  {
    MutexLock lock(mu_);
    if (fail_new_writable_ && (fail_new_writable_substr_.empty() ||
                               fname.find(fail_new_writable_substr_) != std::string::npos)) {
      return Status::IOError("injected NewWritableFile failure: " + fname);
    }
  }
  std::unique_ptr<WritableFile> base_file;
  Status s = base_->NewWritableFile(fname, &base_file);
  if (!s.ok()) {
    return s;
  }
  {
    // Creation truncates, so tracking restarts at zero; nothing of this
    // file is durable until its first Sync.
    MutexLock lock(mu_);
    files_[fname] = FileState{};
  }
  *result = std::make_unique<FaultInjectionWritableFile>(this, fname, std::move(base_file));
  return Status::OK();
}

Status FaultInjectionEnv::RemoveFile(const std::string& fname) {
  Status s = base_->RemoveFile(fname);
  if (s.ok()) {
    MutexLock lock(mu_);
    files_.erase(fname);
  }
  return s;
}

Status FaultInjectionEnv::RenameFile(const std::string& src, const std::string& target) {
  Status s = base_->RenameFile(src, target);
  if (s.ok()) {
    MutexLock lock(mu_);
    auto it = files_.find(src);
    if (it != files_.end()) {
      files_[target] = it->second;
      files_.erase(it);
    }
  }
  return s;
}

Status FaultInjectionEnv::DropUnsyncedFileData() {
  std::map<std::string, FileState> snapshot;
  {
    MutexLock lock(mu_);
    snapshot = files_;
  }
  for (auto& [fname, state] : snapshot) {
    if (state.synced == state.size) {
      continue;  // fully durable
    }
    if (state.synced == 0) {
      // Never synced since creation: after a power cut the file may not
      // exist at all — model the worst case.
      base_->RemoveFile(fname);
      MutexLock lock(mu_);
      files_.erase(fname);
      continue;
    }
    std::string data;
    Status s = ReadFileToString(base_, fname, &data);
    if (!s.ok()) {
      return s;
    }
    if (data.size() > state.synced) {
      data.resize(state.synced);
    }
    s = WriteStringToFile(base_, Slice(data), fname, /*sync=*/false);
    if (!s.ok()) {
      return s;
    }
    MutexLock lock(mu_);
    files_[fname].size = state.synced;
    files_[fname].synced = state.synced;
  }
  return Status::OK();
}

void FaultInjectionEnv::FailNewWritableFiles(bool enabled, const std::string& substr) {
  MutexLock lock(mu_);
  fail_new_writable_ = enabled;
  fail_new_writable_substr_ = substr;
}

void FaultInjectionEnv::FailAppendAfter(uint64_t n, bool torn, const std::string& substr) {
  MutexLock lock(mu_);
  appends_until_fail_ = static_cast<int64_t>(n);
  fail_append_substr_ = substr;
  torn_append_ = torn;
  appends_broken_ = false;
}

void FaultInjectionEnv::FailSyncs(bool enabled) {
  MutexLock lock(mu_);
  fail_syncs_ = enabled;
}

void FaultInjectionEnv::SetSyncDelayMicros(int micros) {
  MutexLock lock(mu_);
  sync_delay_micros_ = micros;
}

void FaultInjectionEnv::ClearFaults() {
  MutexLock lock(mu_);
  fail_new_writable_ = false;
  fail_new_writable_substr_.clear();
  appends_until_fail_ = -1;
  fail_append_substr_.clear();
  torn_append_ = false;
  appends_broken_ = false;
  fail_syncs_ = false;
}

uint64_t FaultInjectionEnv::sync_count() const {
  MutexLock lock(mu_);
  return sync_count_;
}

uint64_t FaultInjectionEnv::append_count() const {
  MutexLock lock(mu_);
  return append_count_;
}

}  // namespace flodb
