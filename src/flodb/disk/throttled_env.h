// ThrottledEnv: wraps another Env and meters WritableFile::Append through
// a shared token bucket.
//
// This is the reproduction's stand-in for the paper's SSD: the end-to-end
// write throughput of every store is ultimately bounded by how fast the
// memory component can be persisted (paper §5.2, the dashed "average
// persistence throughput" line in Figure 9). Capping append bandwidth
// reproduces that ceiling deterministically at laptop scale.

#ifndef FLODB_DISK_THROTTLED_ENV_H_
#define FLODB_DISK_THROTTLED_ENV_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "flodb/common/synchronization.h"
#include "flodb/disk/env.h"

namespace flodb {

class TokenBucket {
 public:
  // rate_bytes_per_sec == 0 disables throttling.
  explicit TokenBucket(uint64_t rate_bytes_per_sec);

  // Blocks until n bytes of budget are available, then consumes them.
  void Consume(uint64_t n);

  uint64_t rate() const { return rate_; }
  uint64_t TotalConsumed() const { return consumed_.load(std::memory_order_relaxed); }

 private:
  const uint64_t rate_;
  Mutex mu_;
  double tokens_ GUARDED_BY(mu_) = 0;
  uint64_t last_refill_nanos_ GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> consumed_{0};
};

class ThrottledEnv final : public Env {
 public:
  // Does not take ownership of base.
  ThrottledEnv(Env* base, uint64_t write_bytes_per_sec);

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    return base_->NewSequentialFile(fname, result);
  }
  Status NewRandomAccessFile(const std::string& fname,
                             std::unique_ptr<RandomAccessFile>* result) override {
    return base_->NewRandomAccessFile(fname, result);
  }
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;

  bool FileExists(const std::string& fname) override { return base_->FileExists(fname); }
  Status GetChildren(const std::string& dir, std::vector<std::string>* result) override {
    return base_->GetChildren(dir, result);
  }
  Status RemoveFile(const std::string& fname) override { return base_->RemoveFile(fname); }
  Status CreateDir(const std::string& dirname) override { return base_->CreateDir(dirname); }
  Status GetFileSize(const std::string& fname, uint64_t* file_size) override {
    return base_->GetFileSize(fname, file_size);
  }
  Status RenameFile(const std::string& src, const std::string& target) override {
    return base_->RenameFile(src, target);
  }

  uint64_t TotalBytesWritten() const { return bucket_.TotalConsumed(); }
  uint64_t WriteRate() const { return bucket_.rate(); }

 private:
  Env* const base_;
  TokenBucket bucket_;
};

}  // namespace flodb

#endif  // FLODB_DISK_THROTTLED_ENV_H_
