// On-disk SSTable layout (this library's own format):
//
//   file := data_block*  filter_block  index_block  footer
//
//   data_block  := entry*  fixed32 masked_crc      (target block_bytes)
//   entry       := varint32 klen | key bytes
//                | varint64 seq  | uint8 type
//                | varint32 vlen | value bytes
//   filter_block:= bloom bits over all keys (see bloom.h)
//   index_block := { varint32 last_klen | last_key
//                  | fixed64 offset | fixed64 payload_size }*
//   footer (fixed 48 bytes):
//     fixed64 index_offset  | fixed64 index_size
//     fixed64 filter_offset | fixed64 filter_size
//     fixed64 entry_count   | fixed64 magic
//
// Entries are sorted by key, keys unique within a file. Every entry keeps
// its Memtable sequence number: scans re-validate against it and merged
// views resolve duplicate user keys across files by highest seq.

#ifndef FLODB_DISK_TABLE_FORMAT_H_
#define FLODB_DISK_TABLE_FORMAT_H_

#include <cstdint>

namespace flodb {

inline constexpr uint64_t kTableMagic = 0xf10db7ab1e5eed01ull;
inline constexpr size_t kFooterSize = 6 * 8;
inline constexpr size_t kBlockCrcSize = 4;

}  // namespace flodb

#endif  // FLODB_DISK_TABLE_FORMAT_H_
