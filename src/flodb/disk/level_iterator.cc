#include "flodb/disk/level_iterator.h"

#include <utility>

namespace flodb {

namespace {

class LevelIterator final : public Iterator {
 public:
  LevelIterator(std::vector<FileMetaData> files, TableOpener opener, bool fill_cache)
      : files_(std::move(files)), opener_(std::move(opener)), fill_cache_(fill_cache) {}

  bool Valid() const override { return iter_ != nullptr && iter_->Valid(); }

  void SeekToFirst() override {
    index_ = 0;
    if (!OpenCurrent()) {
      return;
    }
    iter_->SeekToFirst();
    SkipEmptyFilesForward();
  }

  void Seek(const Slice& target) override {
    // First file whose largest key is >= target: with disjoint sorted
    // ranges it is the only file that can contain the target, and every
    // later file is entirely past it.
    size_t lo = 0, hi = files_.size();
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (Slice(files_[mid].largest).compare(target) < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    index_ = lo;
    if (!OpenCurrent()) {
      return;
    }
    iter_->Seek(target);
    SkipEmptyFilesForward();
  }

  void Next() override {
    iter_->Next();
    SkipEmptyFilesForward();
  }

  Slice key() const override { return iter_->key(); }
  Slice value() const override { return iter_->value(); }
  uint64_t seq() const override { return iter_->seq(); }
  ValueType type() const override { return iter_->type(); }

  Status status() const override {
    if (!status_.ok()) {
      return status_;
    }
    return iter_ != nullptr ? iter_->status() : Status::OK();
  }

 private:
  // Opens files_[index_]; false when past the end or on open failure
  // (which latches status_ and invalidates the iterator).
  bool OpenCurrent() {
    iter_.reset();
    table_.reset();
    if (index_ >= files_.size()) {
      return false;
    }
    table_ = opener_(files_[index_].number, files_[index_].file_size);
    if (table_ == nullptr) {
      status_ = Status::IOError("cannot open table file for level iterator");
      return false;
    }
    iter_ = table_->NewIterator(fill_cache_);
    return true;
  }

  // Advances to the next file while the current position is exhausted.
  void SkipEmptyFilesForward() {
    while (iter_ != nullptr && !iter_->Valid()) {
      if (!iter_->status().ok()) {
        status_ = iter_->status();
        iter_.reset();
        return;
      }
      ++index_;
      if (!OpenCurrent()) {
        return;
      }
      iter_->SeekToFirst();
    }
  }

  const std::vector<FileMetaData> files_;
  const TableOpener opener_;
  const bool fill_cache_;

  size_t index_ = 0;
  std::shared_ptr<TableReader> table_;  // pins the open table (and its blocks)
  std::unique_ptr<Iterator> iter_;
  Status status_;
};

}  // namespace

std::unique_ptr<Iterator> NewLevelIterator(std::vector<FileMetaData> files, TableOpener opener,
                                           bool fill_cache) {
  return std::make_unique<LevelIterator>(std::move(files), std::move(opener), fill_cache);
}

}  // namespace flodb
