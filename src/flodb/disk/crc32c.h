// CRC32C (Castagnoli). Table-driven software implementation used to
// checksum SSTable blocks, WAL records and MANIFEST snapshots.

#ifndef FLODB_DISK_CRC32C_H_
#define FLODB_DISK_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace flodb::crc32c {

// CRC of data[0, n); `init_crc` chains partial computations (pass the
// previous Value result to extend).
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

inline uint32_t Value(const char* data, size_t n) { return Extend(0, data, n); }

// Stored CRCs are masked (rotated + offset) so that computing the CRC of a
// string that embeds its own CRC is not degenerate (same scheme LevelDB
// uses).
inline constexpr uint32_t kMaskDelta = 0xa282ead8ul;

inline uint32_t Mask(uint32_t crc) { return ((crc >> 15) | (crc << 17)) + kMaskDelta; }

inline uint32_t Unmask(uint32_t masked) {
  uint32_t rot = masked - kMaskDelta;
  return ((rot >> 17) | (rot << 15));
}

}  // namespace flodb::crc32c

#endif  // FLODB_DISK_CRC32C_H_
