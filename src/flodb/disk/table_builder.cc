#include "flodb/disk/table_builder.h"

#include <cassert>

#include "flodb/common/coding.h"
#include "flodb/disk/crc32c.h"
#include "flodb/disk/table_format.h"

namespace flodb {

TableBuilder::TableBuilder(const Options& options, WritableFile* file)
    : options_(options), file_(file) {
  block_buf_.reserve(options_.block_bytes + 256);
}

TableBuilder::~TableBuilder() = default;

void TableBuilder::Add(const Slice& key, uint64_t seq, ValueType type, const Slice& value) {
  if (!status_.ok()) {
    return;
  }
  assert(!finished_);
  assert(num_entries_ == 0 || key.compare(Slice(largest_key_)) > 0);

  if (num_entries_ == 0) {
    smallest_key_.assign(key.data(), key.size());
  }
  largest_key_.assign(key.data(), key.size());
  if (seq < smallest_seq_) {
    smallest_seq_ = seq;
  }
  if (seq > largest_seq_) {
    largest_seq_ = seq;
  }

  PutVarint32(&block_buf_, static_cast<uint32_t>(key.size()));
  block_buf_.append(key.data(), key.size());
  PutVarint64(&block_buf_, seq);
  block_buf_.push_back(static_cast<char>(type));
  PutVarint32(&block_buf_, static_cast<uint32_t>(value.size()));
  block_buf_.append(value.data(), value.size());

  last_key_in_block_.assign(key.data(), key.size());
  keys_.emplace_back(key.data(), key.size());
  ++num_entries_;

  if (block_buf_.size() >= options_.block_bytes) {
    FlushBlock();
  }
}

void TableBuilder::FlushBlock() {
  if (block_buf_.empty() || !status_.ok()) {
    return;
  }
  // Index entry: last key of the block, offset, payload size (sans CRC).
  PutVarint32(&index_buf_, static_cast<uint32_t>(last_key_in_block_.size()));
  index_buf_.append(last_key_in_block_);
  PutFixed64(&index_buf_, offset_);
  PutFixed64(&index_buf_, block_buf_.size());

  const uint32_t crc = crc32c::Mask(crc32c::Value(block_buf_.data(), block_buf_.size()));
  PutFixed32(&block_buf_, crc);

  status_ = file_->Append(block_buf_);
  offset_ += block_buf_.size();
  block_buf_.clear();
}

Status TableBuilder::Finish() {
  assert(!finished_);
  finished_ = true;
  FlushBlock();
  if (!status_.ok()) {
    return status_;
  }

  // Filter block.
  const uint64_t filter_offset = offset_;
  std::string filter;
  {
    BloomFilter bloom(options_.bloom_bits_per_key);
    std::vector<Slice> key_slices;
    key_slices.reserve(keys_.size());
    for (const std::string& k : keys_) {
      key_slices.emplace_back(k);
    }
    bloom.CreateFilter(key_slices, &filter);
  }
  status_ = file_->Append(filter);
  if (!status_.ok()) {
    return status_;
  }
  offset_ += filter.size();

  // Index block.
  const uint64_t index_offset = offset_;
  status_ = file_->Append(index_buf_);
  if (!status_.ok()) {
    return status_;
  }
  offset_ += index_buf_.size();

  // Footer.
  std::string footer;
  PutFixed64(&footer, index_offset);
  PutFixed64(&footer, index_buf_.size());
  PutFixed64(&footer, filter_offset);
  PutFixed64(&footer, filter.size());
  PutFixed64(&footer, num_entries_);
  PutFixed64(&footer, kTableMagic);
  assert(footer.size() == kFooterSize);
  status_ = file_->Append(footer);
  if (status_.ok()) {
    offset_ += footer.size();
  }
  return status_;
}

}  // namespace flodb
