// Value log for WiscKey-style value separation: values at or above
// DiskOptions::value_separation_threshold are appended to CRC-framed
// *.vlog files and the LSM stores a ValuePointer behind a
// ValueType::kValuePointer entry, so compaction moves pointers, not
// payloads (docs/STORAGE.md §10 is the normative byte contract).
//
// Record framing (offsets/lengths in ValuePointer cover the whole
// framed record, header included):
//
//   record  := fixed32 masked_crc | fixed32 length | payload[length]
//   payload := varint32 klen | key | value
//
// The key rides along so a vlog file is self-describing: GC and repair
// can scan a file and know which LSM entry each record belongs to.
//
// Durability contract: a vlog file is registered in the MANIFEST before
// any append to it is served, and Sync() must complete before a WAL
// sync covering records that reference the appended bytes (the
// WalCommit leader and AddRun/compaction enforce this). A crash can
// therefore leave garbage tails in a vlog (framed out by CRC) but never
// a durable pointer at bytes that did not reach disk.
//
// Concurrency: appends and reads of the *active* file serialize on one
// mutex (MemEnv readers alias the writer's backing string, which may
// reallocate on append); sealed files are immutable and are read
// outside the lock. Short-lived per-file pins protect the window
// between a write-path append and its application to the memory
// component, so GC never drops a file whose only reference is still
// in flight.

#ifndef FLODB_DISK_VALUE_LOG_H_
#define FLODB_DISK_VALUE_LOG_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "flodb/common/slice.h"
#include "flodb/common/status.h"
#include "flodb/common/synchronization.h"
#include "flodb/disk/env.h"

namespace flodb {

// The value stored behind a ValueType::kValuePointer entry: an encoded
// reference to one framed record in a vlog file.
struct ValuePointer {
  uint64_t file_number = 0;  // *.vlog file that holds the record
  uint64_t offset = 0;       // byte offset of the record header
  uint32_t length = 0;       // whole framed record (header + payload)
};

// varint64 file_number | varint64 offset | varint32 length
void EncodeValuePointer(std::string* dst, const ValuePointer& ptr);
bool DecodeValuePointer(Slice in, ValuePointer* ptr);

// "<dbpath>/NNNNNN.vlog" — numbered from the same counter as .sst files.
std::string VlogFileName(const std::string& dbpath, uint64_t number);

class ValueLog {
 public:
  // `alloc_number` mints a fresh file number (shared with the .sst /
  // MANIFEST counter); `register_file` durably records a new vlog file
  // in the MANIFEST *before* any append to it is served, so a
  // referenced file can never be swept as an orphan.
  ValueLog(Env* env, std::string dbpath, uint64_t file_target_bytes,
           std::function<uint64_t()> alloc_number, std::function<Status(uint64_t)> register_file);
  ~ValueLog();

  // Appends one framed record and fills *ptr. With `pin` the target file
  // is pinned until Unpin(ptr->file_number) — used by the write path to
  // cover the append→memory-apply window. Rotates to a fresh file once
  // the active one reaches file_target_bytes.
  Status Append(const Slice& key, const Slice& value, ValuePointer* ptr, bool pin);

  // Reads the record at *ptr, verifies its CRC and returns the value.
  Status Read(const ValuePointer& ptr, std::string* value);

  // Fsyncs unsynced appends on the active file (no-op when clean).
  // Sealed files are synced at rotation and never written again.
  Status Sync();

  void Unpin(uint64_t file_number);
  void WaitUnpinned(uint64_t file_number);

  // Drops a cached read handle (called after the file is unlinked).
  void EvictReader(uint64_t file_number);

  uint64_t ActiveFileNumber();

  uint64_t BytesAppended() const { return bytes_appended_.load(std::memory_order_relaxed); }
  uint64_t RecordsAppended() const { return records_appended_.load(std::memory_order_relaxed); }
  uint64_t RecordsRead() const { return records_read_.load(std::memory_order_relaxed); }

  // Scans a vlog file from the start, invoking fn per well-formed record.
  // Stops cleanly at a truncated or CRC-failing record (the normal crash
  // tail); `fn` sees the same ValuePointer a resolver would use.
  static Status ScanFile(
      Env* env, const std::string& fname, uint64_t file_number,
      const std::function<void(const Slice& key, const Slice& value, const ValuePointer& ptr)>& fn);

 private:
  Status RotateLocked() REQUIRES(mu_);
  // Seals and drops the active writer after a failed Append/Flush left
  // its physical length unknown; the next Append opens a fresh file.
  void RetireBrokenActiveLocked() REQUIRES(mu_);
  Status ReaderForLocked(uint64_t file_number, std::shared_ptr<RandomAccessFile>* reader)
      REQUIRES(mu_);
  Status ReadRecord(RandomAccessFile* file, const ValuePointer& ptr, std::string* value);

  Env* const env_;
  const std::string dbpath_;
  const uint64_t file_target_bytes_;
  const std::function<uint64_t()> alloc_number_;
  const std::function<Status(uint64_t)> register_file_;

  Mutex mu_;
  CondVar pin_cv_;
  std::unique_ptr<WritableFile> active_ GUARDED_BY(mu_);
  uint64_t active_number_ GUARDED_BY(mu_) = 0;
  uint64_t active_size_ GUARDED_BY(mu_) = 0;
  bool dirty_ GUARDED_BY(mu_) = false;  // active_ has appends not yet fsync'd
  // Set when a broken active file was retired with unsynced records
  // still unsyncable; the next Sync() reports it so the covering group
  // commit fails instead of falsely acking durability.
  Status sticky_sync_error_ GUARDED_BY(mu_);
  std::map<uint64_t, int> pins_ GUARDED_BY(mu_);
  std::map<uint64_t, std::shared_ptr<RandomAccessFile>> readers_ GUARDED_BY(mu_);

  std::atomic<uint64_t> bytes_appended_{0};
  std::atomic<uint64_t> records_appended_{0};
  std::atomic<uint64_t> records_read_{0};
};

}  // namespace flodb

#endif  // FLODB_DISK_VALUE_LOG_H_
