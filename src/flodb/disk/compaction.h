// Compaction policy for the leveled disk component, split out from the
// scheduler so picking is unit-testable without threads or table files.
//
// Three pieces:
//  * CompactionPicker — score-based level selection (RocksDB style): each
//    level scores size-over-target (L0 scores file-count-over-trigger)
//    and the eligible level with the highest score >= 1.0 compacts into
//    the level below, round-robining across its key space;
//  * CompactionThreadLimiter — a counting semaphore shared across shards
//    so the total number of RUNNING compactions is bounded by the
//    configured thread budget even when every shard keeps its own worker;
//  * BloomBitsForLevel — per-level filter sizing (hot upper levels get
//    more bits per key, cold bottom levels fewer — FlashMap's tuned
//    per-level filters).

#ifndef FLODB_DISK_COMPACTION_H_
#define FLODB_DISK_COMPACTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "flodb/common/synchronization.h"
#include "flodb/disk/version.h"

namespace flodb {

// Shape of the level hierarchy; mirrors the matching DiskOptions fields.
struct CompactionConfig {
  int num_levels = 7;
  int l0_compaction_trigger = 4;   // L0 file count worth score 1.0
  uint64_t l1_max_bytes = 8ull << 20;
  int level_size_multiplier = 10;  // target(L) = l1_max_bytes * mult^(L-1)
};

// One unit of compaction work: merge `inputs_lo` (files at `level`) with
// `inputs_hi` (overlapping files at `output_level`) into `output_level`
// (level + 1 when left at -1; manual jobs — CompactRange, vlog GC — may
// rewrite a level in place).
struct CompactionJob {
  int level = -1;
  int output_level = -1;  // -1 = level + 1
  std::vector<FileMetaData> inputs_lo;
  std::vector<FileMetaData> inputs_hi;
  bool drop_tombstones = false;  // true when the output is bottommost for the range

  // Vlog GC: kValuePointer entries into these files are resolved and
  // re-appended to the active vlog so the victims lose their last
  // references (see DiskComponent::CompactVlogFiles).
  std::vector<uint64_t> rewrite_vlogs;
};

class CompactionPicker {
 public:
  explicit CompactionPicker(const CompactionConfig& config);

  uint64_t MaxBytesForLevel(int level) const;

  // L0: files / l0_compaction_trigger. L1+: bytes / MaxBytesForLevel.
  // The bottom level never compacts further and always scores 0.
  double LevelScore(const Version& v, int level) const;

  // True if any level scores >= 1.0.
  bool NeedsCompaction(const Version& v) const;

  // Fills *job from the eligible level with the highest score >= 1.0;
  // `level_busy` masks levels with a running compaction (a job occupies
  // both its input and output level). Not thread-safe: the caller
  // serializes (the disk component holds its scheduling mutex, which
  // also protects the round-robin cursors mutated here).
  bool Pick(const Version& v, const std::vector<bool>& level_busy, CompactionJob* job);

 private:
  const CompactionConfig config_;
  std::vector<std::string> cursor_;  // round-robin largest-key per level
};

// Counting semaphore bounding concurrently RUNNING compactions across
// DiskComponent instances (one per shard). Each shard keeps at least one
// worker thread so it can always make progress once it holds a slot;
// workers block in Acquire before doing I/O, so the global I/O
// parallelism never exceeds the configured budget.
class CompactionThreadLimiter {
 public:
  explicit CompactionThreadLimiter(int max_concurrent);

  void Acquire() EXCLUDES(mu_);
  void Release() EXCLUDES(mu_);

  int max_concurrent() const { return max_; }
  int InUse() const EXCLUDES(mu_);

 private:
  const int max_;
  mutable Mutex mu_;
  CondVar cv_;
  int in_use_ GUARDED_BY(mu_) = 0;
};

// Bloom bits per key for a level. A non-empty `per_level` vector is
// authoritative (levels past its end reuse its last entry). An empty
// vector derives a ladder from `default_bits`: L0/L1 get default+2 (every
// point read probes them), L2/L3 get the default, deeper cold levels get
// max(5, default-4) — their files are large, rarely probed, and filter
// bytes there crowd the table cache.
int BloomBitsForLevel(const std::vector<int>& per_level, int default_bits, int level);

}  // namespace flodb

#endif  // FLODB_DISK_COMPACTION_H_
