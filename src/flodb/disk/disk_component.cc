#include "flodb/disk/disk_component.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "flodb/common/coding.h"
#include "flodb/disk/level_iterator.h"
#include "flodb/disk/merging_iterator.h"
#include "flodb/disk/table_builder.h"

namespace flodb {

namespace {

CompactionConfig MakeCompactionConfig(const DiskOptions& options) {
  CompactionConfig config;
  config.num_levels = options.num_levels;
  config.l0_compaction_trigger = options.l0_compaction_trigger;
  config.l1_max_bytes = options.l1_max_bytes;
  config.level_size_multiplier = options.level_size_multiplier;
  return config;
}

}  // namespace

DiskComponent::DiskComponent(const DiskOptions& options)
    : options_(options),
      level_busy_(options.num_levels, false),
      picker_(MakeCompactionConfig(options)) {}

// RAII registration of an output file number in pending_outputs_.
struct DiskComponent::PendingOutput {
  PendingOutput(DiskComponent* dc, uint64_t number) : dc_(dc), number_(number) {
    MutexLock lock(dc_->pending_mu_);
    dc_->pending_outputs_.insert(number_);
  }
  ~PendingOutput() { Release(); }
  void Release() {
    if (dc_ != nullptr) {
      MutexLock lock(dc_->pending_mu_);
      dc_->pending_outputs_.erase(number_);
      dc_ = nullptr;
    }
  }
  PendingOutput(const PendingOutput&) = delete;
  PendingOutput& operator=(const PendingOutput&) = delete;

 private:
  DiskComponent* dc_;
  uint64_t number_;
};

Status DiskComponent::Open(const DiskOptions& options, std::unique_ptr<DiskComponent>* out) {
  if (options.env == nullptr || options.path.empty()) {
    return Status::InvalidArgument("DiskOptions requires env and path");
  }
  if (options.table_cache_entries == 0) {
    // Without any open-table reuse every Get would reopen (and re-read
    // the index + bloom filter of) its file; reject the footgun instead
    // of silently crawling. block_cache_bytes == 0 stays valid: it only
    // turns off block caching.
    return Status::InvalidArgument("table_cache_entries must be >= 1");
  }
  for (const int bits : options.bloom_bits_per_level) {
    if (bits < 1) {
      // A zero entry would silently disable the filter for a level and
      // turn every miss into a table read; require an explicit >= 1.
      return Status::InvalidArgument("bloom_bits_per_level entries must be >= 1");
    }
  }
  if (options.value_separation_threshold < 0) {
    return Status::InvalidArgument("value_separation_threshold must be >= 0");
  }
  if (!(options.vlog_gc_garbage_ratio > 0.0) || options.vlog_gc_garbage_ratio > 1.0) {
    return Status::InvalidArgument("vlog_gc_garbage_ratio must be in (0, 1]");
  }
  auto dc = std::unique_ptr<DiskComponent>(new DiskComponent(options));
  if (options.block_cache_bytes > 0) {
    dc->block_cache_ = std::make_unique<ShardedLruCache>(options.block_cache_bytes);
  }
  // Entry-charged cache: cap the shard count by the entry budget so no
  // shard ends up with a zero slice of a small open-table bound.
  dc->table_cache_ = std::make_unique<ShardedLruCache>(
      options.table_cache_entries,
      static_cast<int>(std::min<size_t>(options.table_cache_entries, ShardedLruCache::kNumShards)));
  dc->versions_ =
      std::make_unique<VersionSet>(options.env, options.path, options.num_levels);
  Status s = dc->versions_->Recover();
  if (!s.ok()) {
    return s;
  }
  // A crash mid-compaction leaves orphan outputs (.sst files never
  // installed in a version) and possibly a stale manifest; sweep them
  // before background work starts. The counter bump moves orphans below
  // the GC barrier so the sweep can touch them.
  dc->options_.env->RemoveFile(options.path + "/CURRENT.tmp");
  {
    std::vector<std::string> children;
    if (dc->options_.env->GetChildren(options.path, &children).ok()) {
      uint64_t max_number = 0;
      for (const std::string& name : children) {
        const bool is_sst = name.size() >= 5 && name.substr(name.size() - 4) == ".sst";
        const bool is_vlog = name.size() >= 6 && name.substr(name.size() - 5) == ".vlog";
        if (is_sst || is_vlog) {
          max_number = std::max(
              max_number, static_cast<uint64_t>(strtoull(name.c_str(), nullptr, 10)));
        }
      }
      dc->versions_->EnsureFileNumberAtLeast(max_number + 1);
    }
  }
  // Value log: enabled by the threshold, and kept alive for reads/GC even
  // at threshold 0 when the recovered version already owns vlog files
  // (separation turned off on a previously separated store).
  if (options.value_separation_threshold > 0 ||
      !dc->versions_->Current()->VlogFiles().empty()) {
    DiskComponent* raw = dc.get();
    dc->value_log_ = std::make_unique<ValueLog>(
        options.env, options.path, options.vlog_file_target_bytes,
        [raw] {
          // Shield the number from a sweep racing the creation→register
          // window (same pending-outputs discipline as .sst outputs).
          const uint64_t number = raw->versions_->NewFileNumber();
          MutexLock lock(raw->pending_mu_);
          raw->pending_outputs_.insert(number);
          return number;
        },
        [raw](uint64_t number) {
          VersionEdit edit;
          edit.added_vlogs.push_back(number);
          Status status = raw->versions_->LogAndApply(edit);
          MutexLock lock(raw->pending_mu_);
          raw->pending_outputs_.erase(number);
          return status;
        });
    // A vlog registered in the MANIFEST but missing on disk was lost
    // before any append to it was synced (registration precedes appends;
    // vlog sync precedes any WAL sync or table install referencing it),
    // so nothing durable points into it: deregister.
    VersionEdit edit;
    for (const auto& [number, garbage] : dc->versions_->Current()->VlogFiles()) {
      if (!options.env->FileExists(VlogFileName(options.path, number))) {
        edit.deleted_vlogs.push_back(number);
      }
    }
    if (!edit.deleted_vlogs.empty()) {
      s = dc->versions_->LogAndApply(edit);
      if (!s.ok()) {
        return s;
      }
    }
  }
  dc->RemoveObsoleteFiles();
  for (int i = 0; i < options.compaction_threads; ++i) {
    dc->workers_.emplace_back([raw = dc.get()] { raw->BackgroundWork(); });
  }
  *out = std::move(dc);
  return Status::OK();
}

DiskComponent::~DiskComponent() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.SignalAll();
  for (std::thread& t : workers_) {
    t.join();
  }
}

namespace {

// Table-cache values are heap shared_ptrs so pinned readers (iterators,
// compactions) outlive eviction; the cache entry holds one strong ref.
void DeleteTableEntry(const Slice& /*key*/, void* value) {
  delete static_cast<std::shared_ptr<TableReader>*>(value);
}

Slice TableCacheKey(uint64_t number, char* buf /*8 bytes*/) {
  EncodeFixed64(buf, number);
  return Slice(buf, 8);
}

}  // namespace

std::shared_ptr<TableReader> DiskComponent::GetTable(uint64_t number, uint64_t file_size) const {
  char buf[8];
  const Slice key = TableCacheKey(number, buf);
  if (ShardedLruCache::Handle* handle = table_cache_->Lookup(key)) {
    std::shared_ptr<TableReader> table =
        *static_cast<std::shared_ptr<TableReader>*>(table_cache_->Value(handle));
    table_cache_->Release(handle);
    return table;
  }
  std::unique_ptr<RandomAccessFile> file;
  Status s = options_.env->NewRandomAccessFile(versions_->TableFileName(number), &file);
  if (!s.ok()) {
    return nullptr;
  }
  TableReader::Options reader_options;
  reader_options.block_cache = block_cache_.get();
  reader_options.cache_id = number;  // file numbers are never reused
  std::unique_ptr<TableReader> reader;
  s = TableReader::Open(std::move(file), file_size, reader_options, &reader);
  if (!s.ok()) {
    return nullptr;
  }
  // Two threads can race the same miss and both insert; the loser's
  // entry is replaced and its reader torn down once unpinned (a benign
  // transient: the torn-down duplicate also purges the file's shared
  // block keys, costing at most a few warm blocks).
  auto* holder = new std::shared_ptr<TableReader>(std::move(reader));
  std::shared_ptr<TableReader> table = *holder;
  ShardedLruCache::Handle* handle =
      table_cache_->Insert(key, holder, /*charge=*/1, &DeleteTableEntry);
  table_cache_->Release(handle);
  return table;
}

Status DiskComponent::AddRun(Iterator* iter) {
  // Backpressure: writers stall while L0 is saturated, like LevelDB's
  // level-0 stop trigger. (The persist thread calling us is the "writer"
  // here; user writers block on Memtable room upstream.)
  {
    MutexLock lock(mu_);
    // Explicit loop: the predicate reads guarded state (stop_), so it
    // must run in this annotated scope rather than inside a lambda.
    while (!stop_ && static_cast<int>(versions_->Current()->LevelFiles(0).size()) >=
                         options_.l0_stall_trigger) {
      idle_cv_.Wait(mu_);
    }
    if (stop_) {
      return Status::Aborted("shutting down");
    }
  }

  const uint64_t number = versions_->NewFileNumber();
  PendingOutput pending(this, number);  // shield from GC until installed
  const std::string fname = versions_->TableFileName(number);
  std::unique_ptr<WritableFile> file;
  Status s = options_.env->NewWritableFile(fname, &file);
  if (!s.ok()) {
    return s;
  }
  TableBuilder::Options builder_options;
  builder_options.block_bytes = options_.block_bytes;
  builder_options.bloom_bits_per_key = BloomBits(/*level=*/0);
  TableBuilder builder(builder_options, file.get());

  std::string last_key;
  bool has_last = false;
  std::set<uint64_t> vlog_refs;
  std::map<uint64_t, uint64_t> vlog_garbage;  // vlog number -> dead bytes
  auto vlog_pointer = [](const Slice& value, ValuePointer* ptr) {
    return DecodeValuePointer(value, ptr);
  };
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    // First occurrence of a user key is the freshest (children are merged
    // key-asc/seq-desc); drop the rest.
    if (has_last && iter->key() == Slice(last_key)) {
      ValuePointer ptr;
      if (iter->type() == ValueType::kValuePointer && vlog_pointer(iter->value(), &ptr)) {
        vlog_garbage[ptr.file_number] += ptr.length;  // record died with its entry
      }
      continue;
    }
    last_key.assign(iter->key().data(), iter->key().size());
    has_last = true;
    ValuePointer ptr;
    if (iter->type() == ValueType::kValuePointer && vlog_pointer(iter->value(), &ptr)) {
      vlog_refs.insert(ptr.file_number);
    }
    builder.Add(iter->key(), iter->seq(), iter->type(), iter->value());
  }
  if (!iter->status().ok()) {
    builder.Finish();
    file->Close();
    options_.env->RemoveFile(fname);
    return iter->status();
  }
  if (builder.NumEntries() == 0) {
    builder.Finish();
    file->Close();
    options_.env->RemoveFile(fname);
    return Status::OK();  // nothing to persist
  }
  s = builder.Finish();
  if (s.ok()) {
    s = file->Sync();
  }
  if (s.ok()) {
    s = file->Close();
  }
  if (s.ok() && value_log_ != nullptr && !vlog_refs.empty()) {
    // An installed table must never reference unsynced vlog bytes (the
    // no-WAL / sync=false paths reach here with the vlog still dirty).
    s = value_log_->Sync();
  }
  if (!s.ok()) {
    options_.env->RemoveFile(fname);
    return s;
  }

  FileMetaData meta;
  meta.number = number;
  meta.file_size = builder.FileSize();
  meta.entries = builder.NumEntries();
  meta.smallest = builder.smallest_key().ToString();
  meta.largest = builder.largest_key().ToString();
  meta.smallest_seq = builder.smallest_seq();
  meta.largest_seq = builder.largest_seq();
  meta.vlog_refs.assign(vlog_refs.begin(), vlog_refs.end());

  // Fold garbage observed in the memory component into this flush's
  // edit: the flush is the generation boundary — the WAL records that
  // could replay (and re-derive) those deaths are deleted once this
  // cycle completes, so this is the earliest point the counts may
  // persist without double-counting across a crash. (Deaths staged
  // while the table was being built belong to the next generation and
  // fold one flush early — a bounded, benign over-count on crash.)
  std::map<uint64_t, uint64_t> staged;
  {
    MutexLock lock(reported_garbage_mu_);
    staged.swap(reported_garbage_);
  }
  for (const auto& [vlog_number, bytes] : staged) {
    vlog_garbage[vlog_number] += bytes;
  }

  VersionEdit edit;
  edit.added.emplace_back(0, std::move(meta));
  for (const auto& [vlog_number, bytes] : vlog_garbage) {
    edit.vlog_garbage.emplace_back(vlog_number, bytes);
  }
  s = versions_->LogAndApply(edit);
  if (!s.ok()) {
    // Re-stage so the observed garbage is not lost; a later flush or the
    // live GC picker still sees it.
    MutexLock lock(reported_garbage_mu_);
    for (const auto& [vlog_number, bytes] : staged) {
      reported_garbage_[vlog_number] += bytes;
    }
    return s;
  }
  bytes_flushed_.fetch_add(builder.FileSize(), std::memory_order_relaxed);
  flushes_.fetch_add(1, std::memory_order_relaxed);
  work_cv_.SignalAll();
  return Status::OK();
}

Status DiskComponent::Get(const Slice& key, std::string* value, uint64_t* seq,
                          ValueType* type) const {
  std::shared_ptr<const Version> version = versions_->Current();

  // Level 0: overlapping files; consult in decreasing max-seq order so the
  // first hit is the freshest version of the key.
  std::vector<const FileMetaData*> l0;
  for (const FileMetaData& f : version->LevelFiles(0)) {
    if (f.ContainsKey(key)) {
      l0.push_back(&f);
    }
  }
  std::sort(l0.begin(), l0.end(), [](const FileMetaData* a, const FileMetaData* b) {
    return a->largest_seq > b->largest_seq;
  });
  for (const FileMetaData* f : l0) {
    std::shared_ptr<TableReader> table = GetTable(f->number, f->file_size);
    if (table == nullptr) {
      return Status::IOError("cannot open table file");
    }
    Status s = table->Get(key, value, seq, type);
    if (!s.IsNotFound()) {
      return s;  // hit or error
    }
  }

  // Levels >= 1: at most one file per level can contain the key.
  for (int level = 1; level < version->NumLevels(); ++level) {
    const auto& files = version->LevelFiles(level);
    // Binary search: files sorted by smallest key, ranges disjoint.
    size_t lo = 0, hi = files.size();
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (Slice(files[mid].largest).compare(key) < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo == files.size() || !files[lo].ContainsKey(key)) {
      continue;
    }
    std::shared_ptr<TableReader> table = GetTable(files[lo].number, files[lo].file_size);
    if (table == nullptr) {
      return Status::IOError("cannot open table file");
    }
    Status s = table->Get(key, value, seq, type);
    if (!s.IsNotFound()) {
      return s;
    }
  }
  return Status::NotFound();
}

namespace {

// Pins the Version (and the TableReaders) backing a merged iterator.
class VersionPinnedIterator final : public Iterator {
 public:
  VersionPinnedIterator(std::unique_ptr<Iterator> base, std::shared_ptr<const Version> version,
                        std::vector<std::shared_ptr<TableReader>> tables)
      : base_(std::move(base)), version_(std::move(version)), tables_(std::move(tables)) {}

  bool Valid() const override { return base_->Valid(); }
  void SeekToFirst() override { base_->SeekToFirst(); }
  void Seek(const Slice& target) override { base_->Seek(target); }
  void Next() override { base_->Next(); }
  Slice key() const override { return base_->key(); }
  Slice value() const override { return base_->value(); }
  uint64_t seq() const override { return base_->seq(); }
  ValueType type() const override { return base_->type(); }
  Status status() const override { return base_->status(); }

 private:
  std::unique_ptr<Iterator> base_;
  std::shared_ptr<const Version> version_;
  std::vector<std::shared_ptr<TableReader>> tables_;
};

}  // namespace

std::unique_ptr<Iterator> DiskComponent::NewIterator() const {
  std::shared_ptr<const Version> version = versions_->Current();
  std::vector<std::unique_ptr<Iterator>> children;
  std::vector<std::shared_ptr<TableReader>> tables;
  // L0 files overlap: each needs its own merge child.
  for (const FileMetaData& f : version->LevelFiles(0)) {
    std::shared_ptr<TableReader> table = GetTable(f.number, f.file_size);
    if (table == nullptr) {
      continue;  // surfaced via status of other children in practice
    }
    children.push_back(table->NewIterator());
    tables.push_back(std::move(table));
  }
  // Levels >= 1 are disjoint and sorted: one lazy concatenating child per
  // level keeps the merge heap O(L0 + levels) wide instead of O(files),
  // and a Seek opens only the one file per level that can hold the
  // target.
  TableOpener opener = [this](uint64_t number, uint64_t file_size) {
    return GetTable(number, file_size);
  };
  for (int level = 1; level < version->NumLevels(); ++level) {
    if (!version->LevelFiles(level).empty()) {
      children.push_back(NewLevelIterator(version->LevelFiles(level), opener));
    }
  }
  return std::make_unique<VersionPinnedIterator>(NewMergingIterator(std::move(children)),
                                                 std::move(version), std::move(tables));
}

bool DiskComponent::PickCompactionLocked(CompactionJob* job) {
  mu_.AssertHeld();
  std::shared_ptr<const Version> v = versions_->Current();
  if (!picker_.Pick(*v, level_busy_, job)) {
    return false;
  }
  level_busy_[job->level] = true;
  level_busy_[job->level + 1] = true;
  return true;
}

Status DiskComponent::DoCompaction(const CompactionJob& job) {
  std::vector<std::unique_ptr<Iterator>> children;
  std::vector<std::shared_ptr<TableReader>> pinned;
  uint64_t in_bytes = 0;
  for (const auto* inputs : {&job.inputs_lo, &job.inputs_hi}) {
    for (const FileMetaData& f : *inputs) {
      std::shared_ptr<TableReader> table = GetTable(f.number, f.file_size);
      if (table == nullptr) {
        return Status::IOError("compaction input missing");
      }
      // No-fill: a compaction streams every input block exactly once and
      // then deletes the files — inserting them would flush the readers'
      // hot set out of the shared cache for nothing. Blocks user reads
      // already cached are still served from the cache.
      children.push_back(table->NewIterator(/*fill_cache=*/false));
      pinned.push_back(std::move(table));
      in_bytes += f.file_size;
    }
  }
  std::unique_ptr<Iterator> merged = NewMergingIterator(std::move(children));

  VersionEdit edit;
  const int out_level = job.output_level >= 0 ? job.output_level : job.level + 1;
  uint64_t out_bytes = 0;
  const std::set<uint64_t> gc_vlogs(job.rewrite_vlogs.begin(), job.rewrite_vlogs.end());
  std::set<uint64_t> output_refs;                 // vlogs referenced by the current output
  std::map<uint64_t, uint64_t> vlog_garbage;      // vlog number -> dead bytes
  bool vlog_needs_sync = false;                   // fresh GC appends before install
  auto account_dropped_pointer = [&](const Slice& value, ValueType type) {
    ValuePointer ptr;
    if (type == ValueType::kValuePointer && DecodeValuePointer(value, &ptr)) {
      vlog_garbage[ptr.file_number] += ptr.length;
    }
  };

  std::unique_ptr<WritableFile> file;
  std::unique_ptr<TableBuilder> builder;
  uint64_t out_number = 0;
  std::vector<std::unique_ptr<PendingOutput>> pending;  // GC shields, held past install
  TableBuilder::Options builder_options;
  builder_options.block_bytes = options_.block_bytes;
  builder_options.bloom_bits_per_key = BloomBits(out_level);

  auto finish_output = [&]() -> Status {
    if (builder == nullptr) {
      return Status::OK();
    }
    Status s = builder->Finish();
    if (s.ok()) {
      s = file->Sync();
    }
    if (s.ok()) {
      s = file->Close();
    }
    if (!s.ok()) {
      return s;
    }
    FileMetaData meta;
    meta.number = out_number;
    meta.file_size = builder->FileSize();
    meta.entries = builder->NumEntries();
    meta.smallest = builder->smallest_key().ToString();
    meta.largest = builder->largest_key().ToString();
    meta.smallest_seq = builder->smallest_seq();
    meta.largest_seq = builder->largest_seq();
    meta.vlog_refs.assign(output_refs.begin(), output_refs.end());
    output_refs.clear();
    out_bytes += meta.file_size;
    edit.added.emplace_back(out_level, std::move(meta));
    builder.reset();
    file.reset();
    return Status::OK();
  };

  std::string last_key;
  bool has_last = false;
  std::string gc_value, gc_pointer;
  Status s;
  for (merged->SeekToFirst(); merged->Valid(); merged->Next()) {
    if (has_last && merged->key() == Slice(last_key)) {
      account_dropped_pointer(merged->value(), merged->type());
      continue;  // older version of the same user key
    }
    last_key.assign(merged->key().data(), merged->key().size());
    has_last = true;
    if (job.drop_tombstones && merged->type() == ValueType::kTombstone) {
      continue;  // no deeper level can hold this key: tombstone retires
    }
    Slice value = merged->value();
    ValuePointer ptr;
    if (merged->type() == ValueType::kValuePointer) {
      if (!DecodeValuePointer(value, &ptr)) {
        return Status::Corruption("bad value pointer in compaction input");
      }
      if (gc_vlogs.count(ptr.file_number) != 0) {
        // Vlog GC: move the live record out of the victim so the file
        // loses its last references and can be retired.
        s = value_log_->Read(ptr, &gc_value);
        if (!s.ok()) {
          return s;
        }
        ValuePointer moved;
        s = value_log_->Append(merged->key(), gc_value, &moved, /*pin=*/false);
        if (!s.ok()) {
          return s;
        }
        gc_pointer.clear();
        EncodeValuePointer(&gc_pointer, moved);
        value = Slice(gc_pointer);
        ptr = moved;
        vlog_needs_sync = true;
        vlog_gc_rewrites_.fetch_add(1, std::memory_order_relaxed);
      }
      output_refs.insert(ptr.file_number);
    }
    if (builder == nullptr) {
      out_number = versions_->NewFileNumber();
      pending.push_back(std::make_unique<PendingOutput>(this, out_number));
      s = options_.env->NewWritableFile(versions_->TableFileName(out_number), &file);
      if (!s.ok()) {
        return s;
      }
      builder = std::make_unique<TableBuilder>(builder_options, file.get());
    }
    builder->Add(merged->key(), merged->seq(), merged->type(), value);
    if (builder->FileSize() + options_.block_bytes >= options_.sstable_target_bytes) {
      s = finish_output();
      if (!s.ok()) {
        return s;
      }
    }
  }
  if (!merged->status().ok()) {
    return merged->status();
  }
  s = finish_output();
  if (!s.ok()) {
    return s;
  }
  if (vlog_needs_sync) {
    // The outputs reference freshly appended vlog bytes; they must be
    // durable before the manifest installs tables pointing at them.
    s = value_log_->Sync();
    if (!s.ok()) {
      return s;
    }
  }

  for (const FileMetaData& f : job.inputs_lo) {
    edit.deleted.emplace_back(job.level, f.number);
  }
  for (const FileMetaData& f : job.inputs_hi) {
    edit.deleted.emplace_back(out_level, f.number);
  }
  for (const auto& [vlog_number, bytes] : vlog_garbage) {
    edit.vlog_garbage.emplace_back(vlog_number, bytes);
  }
  s = versions_->LogAndApply(edit);
  if (!s.ok()) {
    return s;
  }
  bytes_compacted_in_.fetch_add(in_bytes, std::memory_order_relaxed);
  bytes_compacted_out_.fetch_add(out_bytes, std::memory_order_relaxed);
  compactions_.fetch_add(1, std::memory_order_relaxed);
  RemoveObsoleteFiles();
  return Status::OK();
}

void DiskComponent::RemoveObsoleteFiles() {
  // Barrier BEFORE the liveness snapshot: any file allocated from here on
  // (a concurrent flush/compaction output) is younger than `live` and
  // might be installed between our snapshot and the directory listing —
  // it must never be considered obsolete.
  const uint64_t barrier = versions_->PeekFileNumber();
  std::set<uint64_t> live = versions_->AllLiveFileNumbers();
  std::set<uint64_t> live_vlogs = versions_->AllLiveVlogNumbers();
  {
    MutexLock lock(pending_mu_);
    live.insert(pending_outputs_.begin(), pending_outputs_.end());
    live_vlogs.insert(pending_outputs_.begin(), pending_outputs_.end());
  }
  const uint64_t live_manifest = versions_->CurrentManifestNumber();
  std::vector<std::string> children;
  if (!options_.env->GetChildren(options_.path, &children).ok()) {
    return;
  }
  for (const std::string& name : children) {
    if (name.size() >= 5 && name.substr(name.size() - 4) == ".sst") {
      const uint64_t number = static_cast<uint64_t>(strtoull(name.c_str(), nullptr, 10));
      if (number >= barrier || live.count(number) != 0) {
        continue;
      }
      options_.env->RemoveFile(options_.path + "/" + name);
      // Dropping the table handle tears down its reader (once unpinned),
      // which purges the file's blocks from the block cache.
      char buf[8];
      table_cache_->Erase(TableCacheKey(number, buf));
    } else if (name.size() >= 6 && name.substr(name.size() - 5) == ".vlog") {
      // Same barrier discipline as .sst: orphans of a crashed rotation or
      // a GC'd victim go once no pinned version can resolve into them.
      const uint64_t number = static_cast<uint64_t>(strtoull(name.c_str(), nullptr, 10));
      if (number >= barrier || live_vlogs.count(number) != 0) {
        continue;
      }
      options_.env->RemoveFile(options_.path + "/" + name);
      if (value_log_ != nullptr) {
        value_log_->EvictReader(number);
      }
    } else if (name.rfind("MANIFEST-", 0) == 0) {
      // Failed or crashed snapshot writes strand manifests below the one
      // CURRENT points at. Higher numbers are never touched: one may be
      // a concurrent LogAndApply mid-write.
      const uint64_t number =
          static_cast<uint64_t>(strtoull(name.c_str() + strlen("MANIFEST-"), nullptr, 10));
      if (number < live_manifest) {
        options_.env->RemoveFile(options_.path + "/" + name);
      }
    }
  }
}

void DiskComponent::BackgroundWork() {
  // Explicit lock()/unlock() pairing (not MutexLock): each iteration
  // drops mu_ around the merge I/O, and the analysis checks the manual
  // pairing on every branch.
  mu_.lock();
  while (true) {
    CompactionJob job;
    while (!stop_ && !PickCompactionLocked(&job)) {
      work_cv_.Wait(mu_);
    }
    if (stop_) {
      mu_.unlock();
      return;
    }
    ++active_compactions_;
    mu_.unlock();
    // The cross-shard bound is taken OUTSIDE mu_ (blocking with the
    // scheduling lock held would freeze AddRun's stall check) and only
    // around the I/O: picking is cheap, merging is not.
    if (options_.compaction_limiter != nullptr) {
      options_.compaction_limiter->Acquire();
    }
    Status s = DoCompaction(job);
    if (options_.compaction_limiter != nullptr) {
      options_.compaction_limiter->Release();
    }
    if (!s.ok()) {
      fprintf(stderr, "flodb: compaction failed: %s\n", s.ToString().c_str());
      // Back off: a transient I/O failure retries; a persistent one must
      // not melt into a busy loop.
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    mu_.lock();
    --active_compactions_;
    level_busy_[job.level] = false;
    level_busy_[job.level + 1] = false;
    idle_cv_.SignalAll();
    work_cv_.SignalAll();  // follow-up compactions may now be possible
  }
}

void DiskComponent::WaitForCompactions() {
  if (options_.compaction_threads == 0) {
    return;
  }
  {
    MutexLock lock(mu_);
    work_cv_.SignalAll();
    // Explicit loop: the predicate reads guarded state (stop_,
    // active_compactions_, picker_), so it must run in this annotated
    // scope rather than inside a lambda.
    while (!stop_ &&
           (active_compactions_ != 0 || picker_.NeedsCompaction(*versions_->Current()))) {
      idle_cv_.Wait(mu_);
    }
  }
  // Concurrent GC passes can leave a file obsoleted by the final
  // compaction on disk; a quiescent sweep reclaims it.
  RemoveObsoleteFiles();
}

Status DiskComponent::CompactOnce(bool* did_work) {
  CompactionJob job;
  {
    MutexLock lock(mu_);
    if (!PickCompactionLocked(&job)) {
      if (did_work != nullptr) {
        *did_work = false;
      }
      return Status::OK();
    }
    ++active_compactions_;
  }
  Status s = DoCompaction(job);
  {
    MutexLock lock(mu_);
    --active_compactions_;
    level_busy_[job.level] = false;
    level_busy_[job.level + 1] = false;
  }
  idle_cv_.SignalAll();
  if (did_work != nullptr) {
    *did_work = true;
  }
  return s;
}

Status DiskComponent::RunManualCompaction(
    const std::function<bool(const Version&, CompactionJob*)>& build, bool* did_work) {
  *did_work = false;
  CompactionJob job;
  int out_level = -1;
  {
    MutexLock lock(mu_);
    // Manual jobs are rare (tests, ops, vlog GC): the simple and correct
    // serialization is to wait out every running compaction, then build
    // the job against the then-current version with the lock held so no
    // background pick can consume the same inputs. Explicit loop: the
    // predicate reads guarded state.
    while (!stop_ && active_compactions_ != 0) {
      idle_cv_.Wait(mu_);
    }
    if (stop_) {
      return Status::Aborted("shutting down");
    }
    std::shared_ptr<const Version> v = versions_->Current();
    if (!build(*v, &job)) {
      return Status::OK();
    }
    out_level = job.output_level >= 0 ? job.output_level : job.level + 1;
    level_busy_[job.level] = true;
    level_busy_[out_level] = true;
    ++active_compactions_;
  }
  Status s = DoCompaction(job);
  {
    MutexLock lock(mu_);
    --active_compactions_;
    level_busy_[job.level] = false;
    level_busy_[out_level] = false;
  }
  idle_cv_.SignalAll();
  work_cv_.SignalAll();
  *did_work = true;
  return s;
}

Status DiskComponent::CompactRange(const Slice& begin, const Slice& end) {
  for (int level = 0; level + 1 < options_.num_levels; ++level) {
    bool did_work = false;
    Status s = RunManualCompaction(
        [&](const Version& v, CompactionJob* job) {
          std::vector<FileMetaData> inputs = v.OverlappingFiles(level, begin, end);
          if (inputs.empty()) {
            return false;
          }
          auto span_of = [](const std::vector<FileMetaData>& files, std::string* lo,
                            std::string* hi) {
            *lo = files[0].smallest;
            *hi = files[0].largest;
            for (const FileMetaData& f : files) {
              if (Slice(f.smallest).compare(Slice(*lo)) < 0) {
                *lo = f.smallest;
              }
              if (Slice(f.largest).compare(Slice(*hi)) > 0) {
                *hi = f.largest;
              }
            }
          };
          std::string span_lo, span_hi;
          span_of(inputs, &span_lo, &span_hi);
          if (level == 0) {
            // L0 files overlap: expand to a fixpoint so no L0 file sharing
            // a key with the chosen set stays behind — an older version
            // left above data pushed to L1 would shadow it.
            while (true) {
              std::vector<FileMetaData> wider =
                  v.OverlappingFiles(0, Slice(span_lo), Slice(span_hi));
              if (wider.size() == inputs.size()) {
                break;
              }
              inputs = std::move(wider);
              span_of(inputs, &span_lo, &span_hi);
            }
          }
          job->level = level;
          job->inputs_lo = std::move(inputs);
          job->inputs_hi = v.OverlappingFiles(level + 1, Slice(span_lo), Slice(span_hi));
          job->drop_tombstones =
              v.IsBottommostForRange(level + 1, Slice(span_lo), Slice(span_hi));
          return true;
        },
        &did_work);
    if (!s.ok()) {
      return s;
    }
  }
  RemoveObsoleteFiles();
  return Status::OK();
}

Status DiskComponent::AppendToValueLog(const Slice& key, const Slice& value,
                                       std::string* pointer_value, uint64_t* pinned_file) {
  if (value_log_ == nullptr) {
    return Status::NotSupported("value separation disabled");
  }
  ValuePointer ptr;
  Status s = value_log_->Append(key, value, &ptr, /*pin=*/true);
  if (!s.ok()) {
    return s;
  }
  pointer_value->clear();
  EncodeValuePointer(pointer_value, ptr);
  *pinned_file = ptr.file_number;
  return Status::OK();
}

void DiskComponent::UnpinVlogFile(uint64_t file_number) {
  if (value_log_ != nullptr) {
    value_log_->Unpin(file_number);
  }
}

Status DiskComponent::SyncValueLog() {
  return value_log_ != nullptr ? value_log_->Sync() : Status::OK();
}

Status DiskComponent::ResolveValuePointer(const Slice& pointer_value, std::string* value) const {
  if (value_log_ == nullptr) {
    return Status::Corruption("value pointer entry but no value log");
  }
  ValuePointer ptr;
  if (!DecodeValuePointer(pointer_value, &ptr)) {
    return Status::Corruption("malformed value pointer");
  }
  return value_log_->Read(ptr, value);
}

void DiskComponent::ReportVlogGarbage(const Slice& pointer_value) {
  if (value_log_ == nullptr) {
    return;
  }
  ValuePointer ptr;
  if (!DecodeValuePointer(pointer_value, &ptr)) {
    return;
  }
  MutexLock lock(reported_garbage_mu_);
  reported_garbage_[ptr.file_number] += ptr.length;
}

bool DiskComponent::PickVlogGcVictims(std::vector<uint64_t>* victims,
                                      const std::set<uint64_t>* skip) const {
  victims->clear();
  if (value_log_ == nullptr) {
    return false;
  }
  const uint64_t active = value_log_->ActiveFileNumber();
  std::shared_ptr<const Version> v = versions_->Current();
  for (const auto& [number, garbage] : v->VlogFiles()) {
    if (number == active || (skip != nullptr && skip->count(number) != 0)) {
      continue;  // the active file is still growing; never a victim
    }
    uint64_t staged = 0;
    {
      MutexLock lock(reported_garbage_mu_);
      auto it = reported_garbage_.find(number);
      staged = it != reported_garbage_.end() ? it->second : 0;
    }
    if (garbage + staged == 0) {
      continue;
    }
    uint64_t size = 0;
    if (!options_.env->GetFileSize(VlogFileName(options_.path, number), &size).ok() ||
        size == 0) {
      continue;
    }
    if (static_cast<double>(garbage + staged) >=
        options_.vlog_gc_garbage_ratio * static_cast<double>(size)) {
      victims->push_back(number);
    }
  }
  return !victims->empty();
}

void DiskComponent::WaitVlogUnpinned(uint64_t victim) {
  if (value_log_ != nullptr) {
    value_log_->WaitUnpinned(victim);
  }
}

Status DiskComponent::CompactVlogFiles(const std::vector<uint64_t>& victims,
                                       uint64_t* rewrites) {
  if (value_log_ == nullptr) {
    return Status::NotSupported("value separation disabled");
  }
  if (victims.empty()) {
    return Status::OK();
  }
  const uint64_t before = vlog_gc_rewrites_.load(std::memory_order_relaxed);
  // Rewrite every table still referencing any victim, level by level,
  // until the current version holds no reference. In-place jobs: only the
  // pointers move, the level shape stays. Batching all victims into one
  // pass matters for write amplification: a table's values are scattered
  // across many vlog files, so per-victim passes would rewrite the same
  // table once per victim instead of once total.
  const auto references_victim = [&victims](const FileMetaData& f) {
    for (uint64_t victim : victims) {
      if (std::binary_search(f.vlog_refs.begin(), f.vlog_refs.end(), victim)) {
        return true;
      }
    }
    return false;
  };
  while (true) {
    bool did_work = false;
    Status s = RunManualCompaction(
        [&](const Version& v, CompactionJob* job) {
          for (int level = 0; level < v.NumLevels(); ++level) {
            std::vector<FileMetaData> inputs;
            for (const FileMetaData& f : v.LevelFiles(level)) {
              if (references_victim(f)) {
                inputs.push_back(f);
              }
            }
            if (inputs.empty()) {
              continue;
            }
            if (level == 0) {
              // An in-place merge of an L0 *subset* could surface a stale
              // version: the merged output spans its inputs' seq ranges,
              // breaking the newest-first search order against files left
              // out. Take the whole level instead — L0 is small by
              // construction (stall trigger).
              inputs = v.LevelFiles(0);
            }
            job->level = level;
            job->output_level = level;
            job->inputs_lo = std::move(inputs);
            job->rewrite_vlogs = victims;
            return true;
          }
          return false;
        },
        &did_work);
    if (!s.ok()) {
      return s;
    }
    if (!did_work) {
      break;
    }
  }
  // No current table references the victims; deregister them in one edit.
  // The unlink happens in RemoveObsoleteFiles once every pinned older
  // version (a long scan, say) is released — the GC barrier discipline.
  VersionEdit edit;
  edit.deleted_vlogs = victims;
  Status s = versions_->LogAndApply(edit);
  if (!s.ok()) {
    return s;
  }
  {
    // The files are gone from the version; staged garbage for them is moot
    // (and must not fold into a later edit naming a dead file).
    MutexLock lock(reported_garbage_mu_);
    for (uint64_t victim : victims) {
      reported_garbage_.erase(victim);
    }
  }
  if (rewrites != nullptr) {
    *rewrites = vlog_gc_rewrites_.load(std::memory_order_relaxed) - before;
  }
  RemoveObsoleteFiles();
  return Status::OK();
}

DiskComponent::Stats DiskComponent::GetStats() const {
  Stats stats;
  std::shared_ptr<const Version> v = versions_->Current();
  for (int level = 0; level < v->NumLevels(); ++level) {
    stats.files_per_level.push_back(static_cast<int>(v->LevelFiles(level).size()));
    stats.bytes_per_level.push_back(v->LevelBytes(level));
  }
  stats.bytes_flushed = bytes_flushed_.load(std::memory_order_relaxed);
  stats.bytes_compacted_in = bytes_compacted_in_.load(std::memory_order_relaxed);
  stats.bytes_compacted_out = bytes_compacted_out_.load(std::memory_order_relaxed);
  stats.compactions = compactions_.load(std::memory_order_relaxed);
  stats.flushes = flushes_.load(std::memory_order_relaxed);
  stats.seeks_saved_by_bloom = bloom_skips_.load(std::memory_order_relaxed);
  for (const auto& [number, garbage] : v->VlogFiles()) {
    ++stats.vlog_files;
    stats.vlog_garbage_bytes += garbage;
    {
      MutexLock lock(reported_garbage_mu_);
      auto it = reported_garbage_.find(number);
      if (it != reported_garbage_.end()) {
        stats.vlog_garbage_bytes += it->second;
      }
    }
    uint64_t size = 0;
    if (options_.env->GetFileSize(VlogFileName(options_.path, number), &size).ok()) {
      stats.vlog_bytes += size;
    }
  }
  if (value_log_ != nullptr) {
    stats.vlog_bytes_written = value_log_->BytesAppended();
    stats.vlog_writes = value_log_->RecordsAppended();
    stats.vlog_reads = value_log_->RecordsRead();
  }
  stats.vlog_gc_rewrites = vlog_gc_rewrites_.load(std::memory_order_relaxed);
  if (block_cache_ != nullptr) {
    const ShardedLruCache::Stats cache = block_cache_->GetStats();
    stats.block_cache_hits = cache.hits;
    stats.block_cache_misses = cache.misses;
    stats.block_cache_evictions = cache.evictions;
    stats.block_cache_bytes = cache.charge;
    stats.block_cache_pinned_bytes = cache.pinned_charge;
  }
  {
    const ShardedLruCache::Stats cache = table_cache_->GetStats();
    stats.table_cache_hits = cache.hits;
    stats.table_cache_misses = cache.misses;
    stats.table_cache_evictions = cache.evictions;
    stats.table_cache_entries = cache.entries;
  }
  return stats;
}

}  // namespace flodb
