#include "flodb/disk/throttled_env.h"

#include <thread>

#include "flodb/common/clock.h"

namespace flodb {

TokenBucket::TokenBucket(uint64_t rate_bytes_per_sec) : rate_(rate_bytes_per_sec) {
  last_refill_nanos_ = NowNanos();
  // Allow a modest burst so small appends don't serialize on the clock.
  tokens_ = static_cast<double>(rate_) / 100.0;
}

void TokenBucket::Consume(uint64_t n) {
  if (rate_ == 0) {
    consumed_.fetch_add(n, std::memory_order_relaxed);
    return;
  }
  // Explicit lock()/unlock() pairing (not MutexLock): the refill loop
  // drops the mutex around its sleep, and the analysis checks the manual
  // pairing on every branch.
  mu_.lock();
  while (true) {
    const uint64_t now = NowNanos();
    const double elapsed_sec = static_cast<double>(now - last_refill_nanos_) * 1e-9;
    last_refill_nanos_ = now;
    tokens_ += elapsed_sec * static_cast<double>(rate_);
    const double cap = static_cast<double>(rate_) / 10.0;  // 100ms of burst
    if (tokens_ > cap) {
      tokens_ = cap;
    }
    if (tokens_ >= static_cast<double>(n)) {
      tokens_ -= static_cast<double>(n);
      consumed_.fetch_add(n, std::memory_order_relaxed);
      mu_.unlock();
      return;
    }
    // Sleep just long enough for the deficit to refill.
    const double deficit = static_cast<double>(n) - tokens_;
    const double wait_sec = deficit / static_cast<double>(rate_);
    mu_.unlock();
    std::this_thread::sleep_for(std::chrono::duration<double>(wait_sec));
    mu_.lock();
  }
}

namespace {

class ThrottledWritableFile final : public WritableFile {
 public:
  ThrottledWritableFile(std::unique_ptr<WritableFile> base, TokenBucket* bucket)
      : base_(std::move(base)), bucket_(bucket) {}

  Status Append(const Slice& data) override {
    bucket_->Consume(data.size());
    return base_->Append(data);
  }
  Status Flush() override { return base_->Flush(); }
  Status Sync() override { return base_->Sync(); }
  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  TokenBucket* bucket_;
};

}  // namespace

ThrottledEnv::ThrottledEnv(Env* base, uint64_t write_bytes_per_sec)
    : base_(base), bucket_(write_bytes_per_sec) {}

Status ThrottledEnv::NewWritableFile(const std::string& fname,
                                     std::unique_ptr<WritableFile>* result) {
  std::unique_ptr<WritableFile> base_file;
  Status s = base_->NewWritableFile(fname, &base_file);
  if (!s.ok()) {
    return s;
  }
  result->reset(new ThrottledWritableFile(std::move(base_file), &bucket_));
  return Status::OK();
}

}  // namespace flodb
