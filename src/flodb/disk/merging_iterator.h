// MergingIterator: k-way merge over child iterators, ordered by
// (key ascending, seq descending). For a key present in several children
// the freshest (highest-seq) entry surfaces first; callers that want one
// entry per user key skip subsequent equal keys (see SkipToNextUserKey).
//
// Used by compactions (merge input files) and by scans (Memtable +
// immutable Memtable + disk levels).

#ifndef FLODB_DISK_MERGING_ITERATOR_H_
#define FLODB_DISK_MERGING_ITERATOR_H_

#include <memory>
#include <vector>

#include "flodb/disk/iterator.h"

namespace flodb {

// Takes ownership of the children.
std::unique_ptr<Iterator> NewMergingIterator(std::vector<std::unique_ptr<Iterator>> children);

// Advances `iter` past every remaining entry whose key equals `user_key`.
void SkipEntriesWithKey(Iterator* iter, const Slice& user_key);

}  // namespace flodb

#endif  // FLODB_DISK_MERGING_ITERATOR_H_
