// DiskComponent: the persistent LSM layer shared by FloDB and every
// baseline (the paper treats it as an orthogonal black box, §3.1).
//
// Structure follows LevelDB's: level 0 holds whole flushed Memtables
// (overlapping; searched by max-seq order), levels >= 1 hold disjoint
// sorted runs; background thread(s) merge levels when size triggers fire.
// RocksDB-style multithreaded compaction is the `compaction_threads`
// knob (§2.2).

#ifndef FLODB_DISK_DISK_COMPONENT_H_
#define FLODB_DISK_DISK_COMPONENT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "flodb/common/cache.h"
#include "flodb/common/slice.h"
#include "flodb/common/status.h"
#include "flodb/disk/compaction.h"
#include "flodb/disk/env.h"
#include "flodb/disk/iterator.h"
#include "flodb/disk/table_reader.h"
#include "flodb/disk/version.h"

namespace flodb {

struct DiskOptions {
  Env* env = nullptr;     // required; not owned
  std::string path;       // required; directory for all files

  size_t sstable_target_bytes = 2u << 20;  // output rolling size (compactions)
  size_t block_bytes = 4096;
  int bloom_bits_per_key = 10;

  // Per-level bloom sizing. Empty (default) derives a ladder from
  // bloom_bits_per_key: L0/L1 get +2 bits (every point read probes
  // them), L2/L3 the default, L4+ max(5, default-4). A non-empty vector
  // is authoritative per level (entries must be >= 1; levels past its
  // end reuse the last entry). See BloomBitsForLevel in compaction.h.
  std::vector<int> bloom_bits_per_level;

  // Shared LRU block cache over decoded data blocks, keyed
  // (file_number, block_index) and charged by byte size. 0 disables
  // caching: every block read goes to the Env.
  size_t block_cache_bytes = 8u << 20;

  // Bound on concurrently open TableReaders (an LRU over table handles;
  // each holds its file, index and bloom filter pinned). Evicting a
  // table also drops its cached blocks. Must be >= 1.
  size_t table_cache_entries = 64;

  int num_levels = 7;
  int l0_compaction_trigger = 4;   // L0 file count that triggers L0->L1
  int l0_stall_trigger = 12;       // AddRun blocks above this many L0 files
  uint64_t l1_max_bytes = 8ull << 20;
  int level_size_multiplier = 10;

  int compaction_threads = 1;      // 0 disables background compaction

  // Optional shared bound on concurrently RUNNING compactions across
  // DiskComponent instances. ShardedKVStore installs one sized to the
  // pre-split compaction_threads total, so 8 shards with a budget of 2
  // still run at most 2 compactions at once even though every shard
  // keeps its own worker thread. Null = no cross-instance bound.
  std::shared_ptr<CompactionThreadLimiter> compaction_limiter;
};

class DiskComponent {
 public:
  static Status Open(const DiskOptions& options, std::unique_ptr<DiskComponent>* out);
  ~DiskComponent();

  DiskComponent(const DiskComponent&) = delete;
  DiskComponent& operator=(const DiskComponent&) = delete;

  // Writes the (key-ascending, per-key-deduplicated-by-first-wins) run
  // produced by `iter` as one L0 file and installs it. Blocks while L0 is
  // over the stall trigger (write backpressure, as in LevelDB/RocksDB).
  Status AddRun(Iterator* iter);

  // Point lookup across all levels; freshest version wins.
  Status Get(const Slice& key, std::string* value, uint64_t* seq, ValueType* type) const;

  // Merged scan: one child per L0 file plus ONE lazy concatenating
  // iterator per deeper level (levels are disjoint, so a Seek opens only
  // the file containing the target). Duplicate user keys surface
  // freshest first (callers skip the rest). Pins the current Version for
  // its lifetime.
  std::unique_ptr<Iterator> NewIterator() const;

  // Blocks until no compaction is needed or running.
  void WaitForCompactions();

  // Synchronously picks and runs ONE compaction job; *did_work reports
  // whether a job was available. For deterministic tests (run with
  // compaction_threads == 0 so no background worker races the caller).
  Status CompactOnce(bool* did_work);

  uint64_t MaxPersistedSeq() const { return versions_->MaxPersistedSeq(); }

  // The pinned current version — level shape for tests and diagnostics.
  std::shared_ptr<const Version> CurrentVersion() const { return versions_->Current(); }

  struct Stats {
    std::vector<int> files_per_level;
    std::vector<uint64_t> bytes_per_level;  // sums to the space on disk
    uint64_t bytes_flushed = 0;
    uint64_t bytes_compacted_in = 0;
    uint64_t bytes_compacted_out = 0;
    uint64_t compactions = 0;
    uint64_t flushes = 0;
    uint64_t seeks_saved_by_bloom = 0;

    // Read-path caches (zero when the block cache is disabled).
    uint64_t block_cache_hits = 0;
    uint64_t block_cache_misses = 0;
    uint64_t block_cache_evictions = 0;
    uint64_t block_cache_bytes = 0;         // resident charge
    uint64_t block_cache_pinned_bytes = 0;  // pinned by in-flight readers
    uint64_t table_cache_hits = 0;
    uint64_t table_cache_misses = 0;
    uint64_t table_cache_evictions = 0;
    uint64_t table_cache_entries = 0;  // currently open tables

    // Hit fraction over all block-cache probes (0 when none happened).
    double BlockCacheHitRate() const {
      const uint64_t probes = block_cache_hits + block_cache_misses;
      return probes == 0 ? 0.0
                         : static_cast<double>(block_cache_hits) / static_cast<double>(probes);
    }
  };
  Stats GetStats() const;

  const DiskOptions& options() const { return options_; }

  // The shared read-path caches (block cache null when disabled).
  // Exposed for tests and diagnostics.
  ShardedLruCache* block_cache() const { return block_cache_.get(); }
  ShardedLruCache* table_cache() const { return table_cache_.get(); }

 private:
  explicit DiskComponent(const DiskOptions& options);

  std::shared_ptr<TableReader> GetTable(uint64_t number, uint64_t file_size) const;

  int BloomBits(int level) const {
    return BloomBitsForLevel(options_.bloom_bits_per_level, options_.bloom_bits_per_key, level);
  }

  // REQUIRES: mu_ held. Returns true, fills *job and marks both job
  // levels busy if work is available.
  bool PickCompactionLocked(CompactionJob* job);
  Status DoCompaction(const CompactionJob& job);
  void BackgroundWork();
  void RemoveObsoleteFiles();

  const DiskOptions options_;
  std::unique_ptr<VersionSet> versions_;

  // Declaration order is a destruction-order contract: evicting the last
  // table handles (in ~table_cache_) runs TableReader destructors, which
  // purge their blocks from block_cache_ — so the block cache must be
  // destroyed AFTER (declared before) the table cache.
  std::unique_ptr<ShardedLruCache> block_cache_;  // null when disabled
  std::unique_ptr<ShardedLruCache> table_cache_;  // bounded open-table LRU

  // Output files being written but not yet installed in a Version. File
  // GC must skip them — without this, RemoveObsoleteFiles racing with a
  // flush/compaction would unlink a file between its creation and its
  // LogAndApply (the classic pending-outputs race).
  std::mutex pending_mu_;
  std::set<uint64_t> pending_outputs_;

  struct PendingOutput;

  mutable std::mutex mu_;  // guards compaction scheduling state below
  std::condition_variable work_cv_;   // new work available
  std::condition_variable idle_cv_;   // compaction finished / L0 shrank
  std::vector<bool> level_busy_;
  CompactionPicker picker_;  // cursors guarded by mu_
  int active_compactions_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;

  // Stats (relaxed counters).
  std::atomic<uint64_t> bytes_flushed_{0};
  std::atomic<uint64_t> bytes_compacted_in_{0};
  std::atomic<uint64_t> bytes_compacted_out_{0};
  std::atomic<uint64_t> compactions_{0};
  std::atomic<uint64_t> flushes_{0};
  mutable std::atomic<uint64_t> bloom_skips_{0};
};

}  // namespace flodb

#endif  // FLODB_DISK_DISK_COMPONENT_H_
