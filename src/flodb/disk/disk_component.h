// DiskComponent: the persistent LSM layer shared by FloDB and every
// baseline (the paper treats it as an orthogonal black box, §3.1).
//
// Structure follows LevelDB's: level 0 holds whole flushed Memtables
// (overlapping; searched by max-seq order), levels >= 1 hold disjoint
// sorted runs; background thread(s) merge levels when size triggers fire.
// RocksDB-style multithreaded compaction is the `compaction_threads`
// knob (§2.2).

#ifndef FLODB_DISK_DISK_COMPONENT_H_
#define FLODB_DISK_DISK_COMPONENT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "flodb/common/cache.h"
#include "flodb/common/slice.h"
#include "flodb/common/status.h"
#include "flodb/common/synchronization.h"
#include "flodb/disk/compaction.h"
#include "flodb/disk/env.h"
#include "flodb/disk/iterator.h"
#include "flodb/disk/table_reader.h"
#include "flodb/disk/value_log.h"
#include "flodb/disk/version.h"

namespace flodb {

struct DiskOptions {
  Env* env = nullptr;     // required; not owned
  std::string path;       // required; directory for all files

  size_t sstable_target_bytes = 2u << 20;  // output rolling size (compactions)
  size_t block_bytes = 4096;
  int bloom_bits_per_key = 10;

  // Per-level bloom sizing. Empty (default) derives a ladder from
  // bloom_bits_per_key: L0/L1 get +2 bits (every point read probes
  // them), L2/L3 the default, L4+ max(5, default-4). A non-empty vector
  // is authoritative per level (entries must be >= 1; levels past its
  // end reuse the last entry). See BloomBitsForLevel in compaction.h.
  std::vector<int> bloom_bits_per_level;

  // Shared LRU block cache over decoded data blocks, keyed
  // (file_number, block_index) and charged by byte size. 0 disables
  // caching: every block read goes to the Env.
  size_t block_cache_bytes = 8u << 20;

  // Bound on concurrently open TableReaders (an LRU over table handles;
  // each holds its file, index and bloom filter pinned). Evicting a
  // table also drops its cached blocks. Must be >= 1.
  size_t table_cache_entries = 64;

  int num_levels = 7;
  int l0_compaction_trigger = 4;   // L0 file count that triggers L0->L1
  int l0_stall_trigger = 12;       // AddRun blocks above this many L0 files
  uint64_t l1_max_bytes = 8ull << 20;
  int level_size_multiplier = 10;

  int compaction_threads = 1;      // 0 disables background compaction

  // Value separation (WiscKey-style): values >= this many bytes are
  // appended to *.vlog files and the LSM stores a ValuePointer, so
  // compaction moves pointers instead of payloads. 0 (default) disables
  // separation entirely — the on-disk format is then byte-identical to a
  // build without the feature. Negative values are rejected at Open.
  int64_t value_separation_threshold = 0;

  // A sealed vlog file becomes a GC victim once its dead bytes exceed
  // this fraction of its size. Must be in (0, 1]; checked at Open.
  double vlog_gc_garbage_ratio = 0.5;

  // Active vlog file rotates (seals) at this size.
  uint64_t vlog_file_target_bytes = 64ull << 20;

  // Optional shared bound on concurrently RUNNING compactions across
  // DiskComponent instances. ShardedKVStore installs one sized to the
  // pre-split compaction_threads total, so 8 shards with a budget of 2
  // still run at most 2 compactions at once even though every shard
  // keeps its own worker thread. Null = no cross-instance bound.
  std::shared_ptr<CompactionThreadLimiter> compaction_limiter;
};

class DiskComponent {
 public:
  static Status Open(const DiskOptions& options, std::unique_ptr<DiskComponent>* out);
  ~DiskComponent();

  DiskComponent(const DiskComponent&) = delete;
  DiskComponent& operator=(const DiskComponent&) = delete;

  // Writes the (key-ascending, per-key-deduplicated-by-first-wins) run
  // produced by `iter` as one L0 file and installs it. Blocks while L0 is
  // over the stall trigger (write backpressure, as in LevelDB/RocksDB).
  Status AddRun(Iterator* iter);

  // Point lookup across all levels; freshest version wins.
  Status Get(const Slice& key, std::string* value, uint64_t* seq, ValueType* type) const;

  // Merged scan: one child per L0 file plus ONE lazy concatenating
  // iterator per deeper level (levels are disjoint, so a Seek opens only
  // the file containing the target). Duplicate user keys surface
  // freshest first (callers skip the rest). Pins the current Version for
  // its lifetime.
  std::unique_ptr<Iterator> NewIterator() const;

  // Blocks until no compaction is needed or running.
  void WaitForCompactions();

  // Synchronously picks and runs ONE compaction job; *did_work reports
  // whether a job was available. For deterministic tests (run with
  // compaction_threads == 0 so no background worker races the caller).
  Status CompactOnce(bool* did_work);

  // Compacts every file overlapping [begin, end] (empty Slice = open end)
  // down to the bottommost occupied level, synchronously. Tombstones and
  // shadowed versions in the range are dropped where safe.
  Status CompactRange(const Slice& begin, const Slice& end);

  // --- Value separation surface (no-ops / NotSupported unless
  // value_separation_threshold > 0). ---

  bool SeparationEnabled() const { return value_log_ != nullptr; }

  // Appends `value` to the active vlog and fills *pointer_value with the
  // encoded ValuePointer (the bytes a kValuePointer entry stores). Pins
  // the target file (*pinned_file) until UnpinVlogFile: the write path
  // holds the pin from append to memory-apply so GC never retires a file
  // whose only reference is still in flight.
  Status AppendToValueLog(const Slice& key, const Slice& value, std::string* pointer_value,
                          uint64_t* pinned_file);
  void UnpinVlogFile(uint64_t file_number);

  // Fsyncs unsynced vlog appends. The WAL group-commit leader calls this
  // before syncing the WAL, so no durable WAL record can reference vlog
  // bytes that did not reach disk.
  Status SyncValueLog();

  // Resolves an encoded ValuePointer back to the user value.
  Status ResolveValuePointer(const Slice& pointer_value, std::string* value) const;

  // Records that the vlog record behind `pointer_value` died in the
  // memory component (a hot key's pointer was replaced in place in the
  // Membuffer or Memtable), so its entry will never reach a flush or
  // compaction dedup. Staged in memory and folded into the next flush's
  // VersionEdit — the flush is the generation boundary after which the
  // WAL records that could replay (and re-derive) these deaths are
  // deleted, so persisting the counts earlier would double-count across
  // a crash. No-op when separation is disabled or the pointer is
  // malformed.
  void ReportVlogGarbage(const Slice& pointer_value);

  // Fills *victims with every sealed vlog file whose garbage fraction
  // reached vlog_gc_garbage_ratio; true if any. Staged (not yet flushed)
  // garbage from ReportVlogGarbage counts toward the trigger. Files in
  // `skip` (GC quarantine, may be null) are never picked. All eligible
  // victims are returned at once because a table typically references
  // many vlog files: collecting them in one CompactVlogFiles pass
  // rewrites each referencing table once instead of once per victim.
  bool PickVlogGcVictims(std::vector<uint64_t>* victims,
                         const std::set<uint64_t>* skip = nullptr) const;

  // Blocks until no write-path pin on `victim` remains. The GC driver
  // calls this for each victim, then flushes the memory component, then
  // CompactVlogFiles — after which nothing in memory or on disk
  // references the victims.
  void WaitVlogUnpinned(uint64_t victim);

  // Rewrites every live pointer into any of `victims` (in-place
  // compactions that re-append the values to the active vlog),
  // deregisters the victims and unlinks them once no pinned version
  // references them. *rewrites counts records moved.
  Status CompactVlogFiles(const std::vector<uint64_t>& victims, uint64_t* rewrites);

  uint64_t MaxPersistedSeq() const { return versions_->MaxPersistedSeq(); }

  // The pinned current version — level shape for tests and diagnostics.
  std::shared_ptr<const Version> CurrentVersion() const { return versions_->Current(); }

  struct Stats {
    std::vector<int> files_per_level;
    std::vector<uint64_t> bytes_per_level;  // sums to the space on disk
    uint64_t bytes_flushed = 0;
    uint64_t bytes_compacted_in = 0;
    uint64_t bytes_compacted_out = 0;
    uint64_t compactions = 0;
    uint64_t flushes = 0;
    uint64_t seeks_saved_by_bloom = 0;

    // Value separation (all zero when disabled).
    uint64_t vlog_files = 0;          // live vlog files
    uint64_t vlog_bytes = 0;          // bytes in live vlog files
    uint64_t vlog_bytes_written = 0;  // total bytes ever appended (write amp)
    uint64_t vlog_writes = 0;         // records appended (incl. GC rewrites)
    uint64_t vlog_reads = 0;          // pointer resolutions served
    uint64_t vlog_garbage_bytes = 0;  // known-dead bytes across live files
    uint64_t vlog_gc_rewrites = 0;    // records moved by vlog GC

    // Read-path caches (zero when the block cache is disabled).
    uint64_t block_cache_hits = 0;
    uint64_t block_cache_misses = 0;
    uint64_t block_cache_evictions = 0;
    uint64_t block_cache_bytes = 0;         // resident charge
    uint64_t block_cache_pinned_bytes = 0;  // pinned by in-flight readers
    uint64_t table_cache_hits = 0;
    uint64_t table_cache_misses = 0;
    uint64_t table_cache_evictions = 0;
    uint64_t table_cache_entries = 0;  // currently open tables

    // Hit fraction over all block-cache probes (0 when none happened).
    double BlockCacheHitRate() const {
      const uint64_t probes = block_cache_hits + block_cache_misses;
      return probes == 0 ? 0.0
                         : static_cast<double>(block_cache_hits) / static_cast<double>(probes);
    }
  };
  Stats GetStats() const;

  const DiskOptions& options() const { return options_; }

  // The shared read-path caches (block cache null when disabled).
  // Exposed for tests and diagnostics.
  ShardedLruCache* block_cache() const { return block_cache_.get(); }
  ShardedLruCache* table_cache() const { return table_cache_.get(); }

 private:
  explicit DiskComponent(const DiskOptions& options);

  std::shared_ptr<TableReader> GetTable(uint64_t number, uint64_t file_size) const;

  int BloomBits(int level) const {
    return BloomBitsForLevel(options_.bloom_bits_per_level, options_.bloom_bits_per_key, level);
  }

  // Returns true, fills *job and marks both job levels busy if work is
  // available.
  bool PickCompactionLocked(CompactionJob* job) REQUIRES(mu_);
  Status DoCompaction(const CompactionJob& job);
  // Runs a manual job synchronously. Waits for every background
  // compaction to finish, then calls `build` under the scheduling mutex
  // against the then-current version (so the chosen inputs cannot be
  // consumed by a racing job); `build` returning false means no work.
  Status RunManualCompaction(const std::function<bool(const Version&, CompactionJob*)>& build,
                             bool* did_work);
  void BackgroundWork();
  void RemoveObsoleteFiles();

  const DiskOptions options_;
  std::unique_ptr<VersionSet> versions_;
  std::unique_ptr<ValueLog> value_log_;  // null unless separation enabled

  // Declaration order is a destruction-order contract: evicting the last
  // table handles (in ~table_cache_) runs TableReader destructors, which
  // purge their blocks from block_cache_ — so the block cache must be
  // destroyed AFTER (declared before) the table cache.
  std::unique_ptr<ShardedLruCache> block_cache_;  // null when disabled
  std::unique_ptr<ShardedLruCache> table_cache_;  // bounded open-table LRU

  // Output files being written but not yet installed in a Version. File
  // GC must skip them — without this, RemoveObsoleteFiles racing with a
  // flush/compaction would unlink a file between its creation and its
  // LogAndApply (the classic pending-outputs race).
  Mutex pending_mu_;
  std::set<uint64_t> pending_outputs_ GUARDED_BY(pending_mu_);

  // Vlog garbage observed in the memory component (ReportVlogGarbage),
  // staged until the next successful flush folds it into that flush's
  // VersionEdit. The GC picker and stats read it live so idle periods
  // still see the garbage.
  mutable Mutex reported_garbage_mu_;
  // vlog number -> bytes
  std::map<uint64_t, uint64_t> reported_garbage_ GUARDED_BY(reported_garbage_mu_);

  struct PendingOutput;

  mutable Mutex mu_;  // guards compaction scheduling state below
  CondVar work_cv_;   // new work available
  CondVar idle_cv_;   // compaction finished / L0 shrank
  std::vector<bool> level_busy_ GUARDED_BY(mu_);
  CompactionPicker picker_ GUARDED_BY(mu_);  // its round-robin cursors mutate under mu_
  int active_compactions_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;

  // Stats (relaxed counters).
  std::atomic<uint64_t> bytes_flushed_{0};
  std::atomic<uint64_t> bytes_compacted_in_{0};
  std::atomic<uint64_t> bytes_compacted_out_{0};
  std::atomic<uint64_t> compactions_{0};
  std::atomic<uint64_t> flushes_{0};
  mutable std::atomic<uint64_t> bloom_skips_{0};
  std::atomic<uint64_t> vlog_gc_rewrites_{0};
};

}  // namespace flodb

#endif  // FLODB_DISK_DISK_COMPONENT_H_
