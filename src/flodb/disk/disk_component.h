// DiskComponent: the persistent LSM layer shared by FloDB and every
// baseline (the paper treats it as an orthogonal black box, §3.1).
//
// Structure follows LevelDB's: level 0 holds whole flushed Memtables
// (overlapping; searched by max-seq order), levels >= 1 hold disjoint
// sorted runs; background thread(s) merge levels when size triggers fire.
// RocksDB-style multithreaded compaction is the `compaction_threads`
// knob (§2.2).

#ifndef FLODB_DISK_DISK_COMPONENT_H_
#define FLODB_DISK_DISK_COMPONENT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "flodb/common/cache.h"
#include "flodb/common/slice.h"
#include "flodb/common/status.h"
#include "flodb/disk/env.h"
#include "flodb/disk/iterator.h"
#include "flodb/disk/table_reader.h"
#include "flodb/disk/version.h"

namespace flodb {

struct DiskOptions {
  Env* env = nullptr;     // required; not owned
  std::string path;       // required; directory for all files

  size_t sstable_target_bytes = 2u << 20;  // output rolling size (compactions)
  size_t block_bytes = 4096;
  int bloom_bits_per_key = 10;

  // Shared LRU block cache over decoded data blocks, keyed
  // (file_number, block_index) and charged by byte size. 0 disables
  // caching: every block read goes to the Env.
  size_t block_cache_bytes = 8u << 20;

  // Bound on concurrently open TableReaders (an LRU over table handles;
  // each holds its file, index and bloom filter pinned). Evicting a
  // table also drops its cached blocks. Must be >= 1.
  size_t table_cache_entries = 64;

  int num_levels = 7;
  int l0_compaction_trigger = 4;   // L0 file count that triggers L0->L1
  int l0_stall_trigger = 12;       // AddRun blocks above this many L0 files
  uint64_t l1_max_bytes = 8ull << 20;
  int level_size_multiplier = 10;

  int compaction_threads = 1;      // 0 disables background compaction
};

class DiskComponent {
 public:
  static Status Open(const DiskOptions& options, std::unique_ptr<DiskComponent>* out);
  ~DiskComponent();

  DiskComponent(const DiskComponent&) = delete;
  DiskComponent& operator=(const DiskComponent&) = delete;

  // Writes the (key-ascending, per-key-deduplicated-by-first-wins) run
  // produced by `iter` as one L0 file and installs it. Blocks while L0 is
  // over the stall trigger (write backpressure, as in LevelDB/RocksDB).
  Status AddRun(Iterator* iter);

  // Point lookup across all levels; freshest version wins.
  Status Get(const Slice& key, std::string* value, uint64_t* seq, ValueType* type) const;

  // Merged iterator over every file; duplicate user keys surface freshest
  // first (callers skip the rest). Pins the current Version for its
  // lifetime.
  std::unique_ptr<Iterator> NewIterator() const;

  // Blocks until no compaction is needed or running.
  void WaitForCompactions();

  uint64_t MaxPersistedSeq() const { return versions_->MaxPersistedSeq(); }

  struct Stats {
    std::vector<int> files_per_level;
    uint64_t bytes_flushed = 0;
    uint64_t bytes_compacted_in = 0;
    uint64_t bytes_compacted_out = 0;
    uint64_t compactions = 0;
    uint64_t flushes = 0;
    uint64_t seeks_saved_by_bloom = 0;

    // Read-path caches (zero when the block cache is disabled).
    uint64_t block_cache_hits = 0;
    uint64_t block_cache_misses = 0;
    uint64_t block_cache_evictions = 0;
    uint64_t block_cache_bytes = 0;         // resident charge
    uint64_t block_cache_pinned_bytes = 0;  // pinned by in-flight readers
    uint64_t table_cache_hits = 0;
    uint64_t table_cache_misses = 0;
    uint64_t table_cache_evictions = 0;
    uint64_t table_cache_entries = 0;  // currently open tables

    // Hit fraction over all block-cache probes (0 when none happened).
    double BlockCacheHitRate() const {
      const uint64_t probes = block_cache_hits + block_cache_misses;
      return probes == 0 ? 0.0
                         : static_cast<double>(block_cache_hits) / static_cast<double>(probes);
    }
  };
  Stats GetStats() const;

  const DiskOptions& options() const { return options_; }

  // The shared read-path caches (block cache null when disabled).
  // Exposed for tests and diagnostics.
  ShardedLruCache* block_cache() const { return block_cache_.get(); }
  ShardedLruCache* table_cache() const { return table_cache_.get(); }

 private:
  struct CompactionJob {
    int level = -1;  // inputs: `level` and `level + 1`; outputs: level + 1
    std::vector<FileMetaData> inputs_lo;
    std::vector<FileMetaData> inputs_hi;
    bool drop_tombstones = false;
  };

  explicit DiskComponent(const DiskOptions& options);

  std::shared_ptr<TableReader> GetTable(uint64_t number, uint64_t file_size) const;

  uint64_t MaxBytesForLevel(int level) const;
  bool NeedsCompaction(const Version& v, int* out_level) const;

  // REQUIRES: mu_ held. Returns true and fills *job if work is available.
  bool PickCompaction(CompactionJob* job);
  Status DoCompaction(const CompactionJob& job);
  void BackgroundWork();
  void RemoveObsoleteFiles();

  const DiskOptions options_;
  std::unique_ptr<VersionSet> versions_;

  // Declaration order is a destruction-order contract: evicting the last
  // table handles (in ~table_cache_) runs TableReader destructors, which
  // purge their blocks from block_cache_ — so the block cache must be
  // destroyed AFTER (declared before) the table cache.
  std::unique_ptr<ShardedLruCache> block_cache_;  // null when disabled
  std::unique_ptr<ShardedLruCache> table_cache_;  // bounded open-table LRU

  // Output files being written but not yet installed in a Version. File
  // GC must skip them — without this, RemoveObsoleteFiles racing with a
  // flush/compaction would unlink a file between its creation and its
  // LogAndApply (the classic pending-outputs race).
  std::mutex pending_mu_;
  std::set<uint64_t> pending_outputs_;

  struct PendingOutput;

  mutable std::mutex mu_;  // guards compaction scheduling state below
  std::condition_variable work_cv_;   // new work available
  std::condition_variable idle_cv_;   // compaction finished / L0 shrank
  std::vector<bool> level_busy_;
  std::vector<std::string> compact_cursor_;  // round-robin key per level
  int active_compactions_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;

  // Stats (relaxed counters).
  std::atomic<uint64_t> bytes_flushed_{0};
  std::atomic<uint64_t> bytes_compacted_in_{0};
  std::atomic<uint64_t> bytes_compacted_out_{0};
  std::atomic<uint64_t> compactions_{0};
  std::atomic<uint64_t> flushes_{0};
  mutable std::atomic<uint64_t> bloom_skips_{0};
};

}  // namespace flodb

#endif  // FLODB_DISK_DISK_COMPONENT_H_
