// LevelIterator: a lazy concatenating iterator over one sorted level
// (L1+: files key-ordered with disjoint ranges). At most one table is
// open at a time; Seek binary-searches the file list and opens only the
// file that can contain the target. Replaces the old
// one-merging-child-per-file scheme, which opened EVERY file in every
// level up front and paid a heap comparison per file per step.

#ifndef FLODB_DISK_LEVEL_ITERATOR_H_
#define FLODB_DISK_LEVEL_ITERATOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "flodb/disk/iterator.h"
#include "flodb/disk/table_reader.h"
#include "flodb/disk/version.h"

namespace flodb {

// Opens (usually via the table cache) the reader for a file; returns
// nullptr on failure. Must stay callable for the iterator's lifetime.
using TableOpener = std::function<std::shared_ptr<TableReader>(uint64_t number,
                                                               uint64_t file_size)>;

// REQUIRES: `files` sorted by smallest key with disjoint ranges (a level
// >= 1 of a Version). The iterator pins the currently open table only;
// callers pin the Version so the files stay live.
std::unique_ptr<Iterator> NewLevelIterator(std::vector<FileMetaData> files, TableOpener opener,
                                           bool fill_cache = true);

}  // namespace flodb

#endif  // FLODB_DISK_LEVEL_ITERATOR_H_
