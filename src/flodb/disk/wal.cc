#include "flodb/disk/wal.h"

#include "flodb/common/coding.h"
#include "flodb/core/write_batch.h"
#include "flodb/disk/crc32c.h"

namespace flodb {

Status WalWriter::AddRecord(const Slice& payload) {
  scratch_.clear();
  PutFixed32(&scratch_, crc32c::Mask(crc32c::Value(payload.data(), payload.size())));
  PutFixed32(&scratch_, static_cast<uint32_t>(payload.size()));
  scratch_.append(payload.data(), payload.size());
  return file_->Append(scratch_);
}

Status WalWriter::AddUpdate(const Slice& key, const Slice& value, ValueType type) {
  std::string payload;
  payload.reserve(key.size() + value.size() + 12);
  payload.push_back(static_cast<char>(type));
  PutLengthPrefixedSlice(&payload, key);
  PutLengthPrefixedSlice(&payload, value);
  return AddRecord(payload);
}

Status WalWriter::AddBatch(uint32_t count, const Slice& entries) {
  std::string payload;
  payload.reserve(entries.size() + 1 + kMaxVarint32Bytes);
  payload.push_back(static_cast<char>(kWalBatchRecordTag));
  PutVarint32(&payload, count);
  payload.append(entries.data(), entries.size());
  return AddRecord(payload);
}

Status WalWriter::AddPrepare(uint64_t txn_id, const Slice& participants, uint32_t count,
                             const Slice& entries) {
  std::string payload;
  payload.reserve(entries.size() + participants.size() + 1 + kMaxVarint64Bytes +
                  kMaxVarint32Bytes);
  payload.push_back(static_cast<char>(kWalPrepareRecordTag));
  PutVarint64(&payload, txn_id);
  payload.append(participants.data(), participants.size());
  PutVarint32(&payload, count);
  payload.append(entries.data(), entries.size());
  return AddRecord(payload);
}

bool WalReader::ReadRecord(std::string* payload) {
  char header[8];
  Slice h;
  status_ = file_->Read(sizeof(header), &h, header);
  if (!status_.ok() || h.size() < sizeof(header)) {
    return false;  // clean EOF or truncated header => end of usable log
  }
  const uint32_t expected_crc = crc32c::Unmask(DecodeFixed32(h.data()));
  const uint32_t length = DecodeFixed32(h.data() + 4);
  payload->resize(length);
  Slice body;
  status_ = file_->Read(length, &body, payload->data());
  if (!status_.ok()) {
    return false;
  }
  if (body.size() < length) {
    // Truncated tail: the record was being written when we crashed.
    return false;
  }
  if (body.data() != payload->data()) {
    payload->assign(body.data(), body.size());
  }
  const uint32_t actual_crc = crc32c::Value(payload->data(), payload->size());
  if (actual_crc != expected_crc) {
    status_ = Status::Corruption("WAL record checksum mismatch");
    return false;
  }
  return true;
}

Status WalReader::ReplayUpdates(
    const std::function<void(const Slice& key, const Slice& value, ValueType type)>& fn,
    const PrepareFn& prepare_fn) {
  std::string payload;
  std::vector<uint32_t> participants;
  while (ReadRecord(&payload)) {
    Slice in(payload);
    if (in.empty()) {
      return Status::Corruption("empty WAL record");
    }
    // One decoder for all record kinds: a batch body is exactly
    // WriteBatch::rep(), a legacy single-update record is exactly a
    // one-entry rep, and a prepare record wraps a rep in a txn header.
    if (static_cast<uint8_t>(in[0]) == kWalBatchRecordTag) {
      in.remove_prefix(1);
      uint32_t count = 0;
      if (!GetVarint32(&in, &count)) {
        return Status::Corruption("malformed WAL batch header");
      }
      Status s = WriteBatch::IterateRep(in, count, fn);
      if (!s.ok()) {
        return Status::Corruption("malformed WAL batch record");
      }
    } else if (static_cast<uint8_t>(in[0]) == kWalPrepareRecordTag) {
      in.remove_prefix(1);
      uint64_t txn_id = 0;
      uint32_t nshards = 0;
      if (!GetVarint64(&in, &txn_id) || !GetVarint32(&in, &nshards) || nshards > (1u << 16)) {
        return Status::Corruption("malformed WAL prepare header");
      }
      participants.clear();
      participants.reserve(nshards);
      for (uint32_t i = 0; i < nshards; ++i) {
        uint32_t shard = 0;
        if (!GetVarint32(&in, &shard)) {
          return Status::Corruption("malformed WAL prepare participant list");
        }
        participants.push_back(shard);
      }
      uint32_t count = 0;
      if (!GetVarint32(&in, &count)) {
        return Status::Corruption("malformed WAL prepare header");
      }
      // Replay only when the caller vouches for a durable commit marker;
      // an orphaned prepare (no marker) is discarded whole.
      if (prepare_fn && prepare_fn(txn_id, participants, count, in)) {
        Status s = WriteBatch::IterateRep(in, count, fn);
        if (!s.ok()) {
          return Status::Corruption("malformed WAL prepare record");
        }
      }
    } else {
      Status s = WriteBatch::IterateRep(in, 1, fn);
      if (!s.ok()) {
        return Status::Corruption("malformed WAL update record");
      }
    }
  }
  return status_;
}

}  // namespace flodb
