// Write-ahead log: CRC-framed records appended before updates are applied
// to the memory component, so acknowledged writes survive a crash
// (paper §2.1: "updates are appended to an on-disk commit-log before
// being applied to the in-memory component").
//
// Record framing: fixed32 masked_crc | fixed32 length | payload.
// Payload (one record per logical write):
//   uint8 type | varint32 klen | key | varint32 vlen | value
// The reader stops cleanly at a truncated/corrupt tail (normal crash
// outcome) and reports genuine mid-log corruption as an error.

#ifndef FLODB_DISK_WAL_H_
#define FLODB_DISK_WAL_H_

#include <functional>
#include <memory>
#include <string>

#include "flodb/common/slice.h"
#include "flodb/common/status.h"
#include "flodb/disk/env.h"
#include "flodb/mem/entry.h"

namespace flodb {

class WalWriter {
 public:
  // Takes ownership of the file.
  explicit WalWriter(std::unique_ptr<WritableFile> file) : file_(std::move(file)) {}

  // Appends one framed record; thread-compatible (callers serialize).
  Status AddRecord(const Slice& payload);

  // Appends a key/value update record.
  Status AddUpdate(const Slice& key, const Slice& value, ValueType type);

  Status Sync() { return file_->Sync(); }
  Status Close() { return file_->Close(); }

 private:
  std::unique_ptr<WritableFile> file_;
  std::string scratch_;
};

class WalReader {
 public:
  explicit WalReader(std::unique_ptr<SequentialFile> file) : file_(std::move(file)) {}

  // Reads the next record into *payload (valid until next call). Returns
  // false at end of log (clean end or truncated tail).
  bool ReadRecord(std::string* payload);

  // Non-OK if mid-log corruption was detected (distinct from a truncated
  // tail, which is expected after a crash).
  Status status() const { return status_; }

  // Replays every well-formed update record through fn.
  Status ReplayUpdates(
      const std::function<void(const Slice& key, const Slice& value, ValueType type)>& fn);

 private:
  std::unique_ptr<SequentialFile> file_;
  Status status_;
};

}  // namespace flodb

#endif  // FLODB_DISK_WAL_H_
