// Write-ahead log: CRC-framed records appended before updates are applied
// to the memory component, so acknowledged writes survive a crash
// (paper §2.1: "updates are appended to an on-disk commit-log before
// being applied to the in-memory component").
//
// Record framing: fixed32 masked_crc | fixed32 length | payload.
// Two payload kinds, distinguished by the first byte:
//
//   legacy single update (tag == ValueType, 0 or 1):
//     uint8 type | varint32 klen | key | varint32 vlen | value
//
//   batch record (tag == kWalBatchRecordTag), one per KVStore::Write —
//   the group-commit unit; its body is exactly WriteBatch::rep():
//     uint8 2 | varint32 count | count × (uint8 type | klen | key | vlen | value)
//
// Because the CRC covers the whole payload, a batch is durability-atomic:
// recovery replays it entirely or not at all. The reader stops cleanly at
// a truncated/corrupt tail (normal crash outcome) and reports genuine
// mid-log corruption as an error.

#ifndef FLODB_DISK_WAL_H_
#define FLODB_DISK_WAL_H_

#include <functional>
#include <memory>
#include <string>

#include "flodb/common/slice.h"
#include "flodb/common/status.h"
#include "flodb/disk/env.h"
#include "flodb/mem/entry.h"

namespace flodb {

// First payload byte of a batch record. Legacy single-update records
// start with the ValueType byte (0 or 1), so 2 is unambiguous.
inline constexpr uint8_t kWalBatchRecordTag = 2;

class WalWriter {
 public:
  // Takes ownership of the file.
  explicit WalWriter(std::unique_ptr<WritableFile> file) : file_(std::move(file)) {}

  // Appends one framed record; thread-compatible (callers serialize).
  Status AddRecord(const Slice& payload);

  // Appends a legacy single key/value update record.
  Status AddUpdate(const Slice& key, const Slice& value, ValueType type);

  // Appends ONE framed batch record holding `count` updates encoded as in
  // WriteBatch::rep() — the whole batch commits or recovers as a unit.
  Status AddBatch(uint32_t count, const Slice& entries);

  Status Sync() { return file_->Sync(); }
  Status Close() { return file_->Close(); }

 private:
  std::unique_ptr<WritableFile> file_;
  std::string scratch_;
};

class WalReader {
 public:
  explicit WalReader(std::unique_ptr<SequentialFile> file) : file_(std::move(file)) {}

  // Reads the next record into *payload (valid until next call). Returns
  // false at end of log (clean end or truncated tail).
  bool ReadRecord(std::string* payload);

  // Non-OK if mid-log corruption was detected (distinct from a truncated
  // tail, which is expected after a crash).
  Status status() const { return status_; }

  // Replays every well-formed update through fn, expanding batch records
  // in order. A truncated tail record is dropped whole — a half-written
  // batch never partially replays.
  Status ReplayUpdates(
      const std::function<void(const Slice& key, const Slice& value, ValueType type)>& fn);

 private:
  std::unique_ptr<SequentialFile> file_;
  Status status_;
};

}  // namespace flodb

#endif  // FLODB_DISK_WAL_H_
