// Write-ahead log: CRC-framed records appended before updates are applied
// to the memory component, so acknowledged writes survive a crash
// (paper §2.1: "updates are appended to an on-disk commit-log before
// being applied to the in-memory component").
//
// Record framing: fixed32 masked_crc | fixed32 length | payload.
// Two payload kinds, distinguished by the first byte:
//
//   legacy single update (tag == ValueType, 0 or 1):
//     uint8 type | varint32 klen | key | varint32 vlen | value
//
//   batch record (tag == kWalBatchRecordTag), one per KVStore::Write —
//   the group-commit unit; its body is exactly WriteBatch::rep():
//     uint8 2 | varint32 count | count × (uint8 type | klen | key | vlen | value)
//
//   prepare record (tag == kWalPrepareRecordTag), one per shard touched by
//   a cross-shard transaction — phase 1 of the router's two-phase commit.
//   Carries the transaction id and the participant shard set so recovery
//   can match it against the router's commit-marker log:
//     uint8 3 | varint64 txn_id | varint32 nshards | nshards × varint32 shard
//            | varint32 count | count × (uint8 type | klen | key | vlen | value)
//
// Because the CRC covers the whole payload, a batch is durability-atomic:
// recovery replays it entirely or not at all. A prepare record is only
// replayed when the caller confirms its transaction committed (a durable
// commit marker exists); otherwise it is an orphan and is skipped. The
// reader stops cleanly at a truncated/corrupt tail (normal crash outcome)
// and reports genuine mid-log corruption as an error.

#ifndef FLODB_DISK_WAL_H_
#define FLODB_DISK_WAL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "flodb/common/slice.h"
#include "flodb/common/status.h"
#include "flodb/disk/env.h"
#include "flodb/mem/entry.h"

namespace flodb {

// First payload byte of a batch record. Legacy single-update records
// start with the ValueType byte (0 or 1), so 2 is unambiguous.
inline constexpr uint8_t kWalBatchRecordTag = 2;

// First payload byte of a cross-shard transaction prepare record.
inline constexpr uint8_t kWalPrepareRecordTag = 3;

class WalWriter {
 public:
  // Takes ownership of the file.
  explicit WalWriter(std::unique_ptr<WritableFile> file) : file_(std::move(file)) {}

  // Appends one framed record; thread-compatible (callers serialize).
  Status AddRecord(const Slice& payload);

  // Appends a legacy single key/value update record.
  Status AddUpdate(const Slice& key, const Slice& value, ValueType type);

  // Appends ONE framed batch record holding `count` updates encoded as in
  // WriteBatch::rep() — the whole batch commits or recovers as a unit.
  Status AddBatch(uint32_t count, const Slice& entries);

  // Appends ONE framed prepare record for a cross-shard transaction:
  // this shard's slice of the batch plus the txn id and participant set.
  // `participants` is pre-encoded as varint32 nshards | nshards × varint32
  // shard index (shared across all shards of the transaction).
  Status AddPrepare(uint64_t txn_id, const Slice& participants, uint32_t count,
                    const Slice& entries);

  Status Sync() { return file_->Sync(); }
  Status Close() { return file_->Close(); }

 private:
  std::unique_ptr<WritableFile> file_;
  std::string scratch_;
};

class WalReader {
 public:
  explicit WalReader(std::unique_ptr<SequentialFile> file) : file_(std::move(file)) {}

  // Reads the next record into *payload (valid until next call). Returns
  // false at end of log (clean end or truncated tail).
  bool ReadRecord(std::string* payload);

  // Non-OK if mid-log corruption was detected (distinct from a truncated
  // tail, which is expected after a crash).
  Status status() const { return status_; }

  // Decides the fate of a prepare record met during replay: receives the
  // txn id, the decoded participant shard set and this shard's entry
  // payload; returns true to replay the entries (the transaction has a
  // durable commit marker) or false to skip them (orphaned prepare).
  using PrepareFn = std::function<bool(uint64_t txn_id,
                                       const std::vector<uint32_t>& participants, uint32_t count,
                                       const Slice& entries)>;

  // Replays every well-formed update through fn, expanding batch records
  // in order. A truncated tail record is dropped whole — a half-written
  // batch never partially replays. Prepare records are offered to
  // prepare_fn (at their log position, preserving WAL order); with no
  // prepare_fn they are conservatively skipped as orphans.
  Status ReplayUpdates(
      const std::function<void(const Slice& key, const Slice& value, ValueType type)>& fn,
      const PrepareFn& prepare_fn = nullptr);

 private:
  std::unique_ptr<SequentialFile> file_;
  Status status_;
};

}  // namespace flodb

#endif  // FLODB_DISK_WAL_H_
