// FaultInjectionEnv: wraps any Env and injects storage faults, in the
// LevelDB fault-injection-test mold. The durability test matrix
// (tests/fault_injection_test.cc) is built on it, and fig_sync_write uses
// its sync delay + counters to give fsync a realistic cost over MemEnv.
//
// Two capability groups:
//  * crash simulation — every byte appended through the wrapper is
//    tracked against the prefix guaranteed durable by Sync;
//    DropUnsyncedFileData() truncates each file back to that prefix
//    (removing files that were never synced at all), exactly what a
//    power loss leaves behind;
//  * fault knobs — fail NewWritableFile (optionally only for paths
//    containing a substring, e.g. "wal-" or ".sst"), fail the Nth append
//    (optionally writing a torn prefix first), fail fsyncs, and delay
//    fsyncs to emulate a real device.
//
// Only files created through this Env are tracked; pre-existing files
// are passed through untouched. Intended for tests and benchmarks, so
// simplicity beats speed: one mutex guards all bookkeeping.

#ifndef FLODB_DISK_FAULT_ENV_H_
#define FLODB_DISK_FAULT_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "flodb/common/synchronization.h"
#include "flodb/disk/env.h"

namespace flodb {

class FaultInjectionEnv final : public Env {
 public:
  // Does not take ownership of base.
  explicit FaultInjectionEnv(Env* base) : base_(base) {}

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    return base_->NewSequentialFile(fname, result);
  }
  Status NewRandomAccessFile(const std::string& fname,
                             std::unique_ptr<RandomAccessFile>* result) override {
    return base_->NewRandomAccessFile(fname, result);
  }
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;

  bool FileExists(const std::string& fname) override { return base_->FileExists(fname); }
  Status GetChildren(const std::string& dir, std::vector<std::string>* result) override {
    return base_->GetChildren(dir, result);
  }
  Status RemoveFile(const std::string& fname) override;
  Status CreateDir(const std::string& dirname) override { return base_->CreateDir(dirname); }
  Status GetFileSize(const std::string& fname, uint64_t* file_size) override {
    return base_->GetFileSize(fname, file_size);
  }
  Status RenameFile(const std::string& src, const std::string& target) override;

  // ---- crash simulation ----

  // Truncates every tracked file to its last-synced prefix; files never
  // synced since creation are removed entirely. Call with the store torn
  // down (no files open) — this is "the machine lost power here".
  Status DropUnsyncedFileData();

  // ---- fault knobs ----

  // When enabled, NewWritableFile fails for paths containing `substr`
  // (every path when `substr` is empty).
  void FailNewWritableFiles(bool enabled, const std::string& substr = std::string());

  // The next `n` appends succeed; the one after fails — writing a torn
  // prefix of its data first when `torn` — and every later append fails
  // too until ClearFaults(). With a non-empty `substr`, only appends to
  // files whose path contains it count toward `n` or fail (other files
  // keep working) — the knob behind the cross-shard crash matrix, which
  // must hit ONE shard's WAL or just the router's txn log.
  void FailAppendAfter(uint64_t n, bool torn, const std::string& substr = std::string());

  // When enabled, every Sync fails (and durability bookkeeping freezes).
  void FailSyncs(bool enabled);

  // Sleep injected into every Sync — a stand-in for real fsync latency,
  // which MemEnv otherwise makes free (group commit would look pointless).
  void SetSyncDelayMicros(int micros);

  void ClearFaults();

  // ---- counters ----
  uint64_t sync_count() const;
  uint64_t append_count() const;

 private:
  friend class FaultInjectionWritableFile;

  struct FileState {
    uint64_t size = 0;    // bytes appended through the wrapper
    uint64_t synced = 0;  // prefix guaranteed durable
  };

  Env* const base_;
  mutable Mutex mu_;
  std::map<std::string, FileState> files_ GUARDED_BY(mu_);

  bool fail_new_writable_ GUARDED_BY(mu_) = false;
  std::string fail_new_writable_substr_ GUARDED_BY(mu_);
  // -1 = disabled; 0 = next append fires
  int64_t appends_until_fail_ GUARDED_BY(mu_) = -1;
  // non-empty: only matching paths count
  std::string fail_append_substr_ GUARDED_BY(mu_);
  bool torn_append_ GUARDED_BY(mu_) = false;
  // latched once the Nth append fired
  bool appends_broken_ GUARDED_BY(mu_) = false;
  bool fail_syncs_ GUARDED_BY(mu_) = false;
  int sync_delay_micros_ GUARDED_BY(mu_) = 0;
  uint64_t sync_count_ GUARDED_BY(mu_) = 0;
  uint64_t append_count_ GUARDED_BY(mu_) = 0;
};

}  // namespace flodb

#endif  // FLODB_DISK_FAULT_ENV_H_
