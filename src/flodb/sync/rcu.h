// Epoch-based RCU (read-copy-update) domain.
//
// FloDB switches memory components (Membuffer on scans, Memtable on
// persists) with an RCU pointer swap that never blocks readers or writers
// (paper §4.2): the switcher installs a new component pointer, then calls
// Synchronize() to wait until every operation that might still be using
// the old pointer has finished, and only then reclaims it.
//
// Model: readers (here: *all* user operations, including writers into the
// memory components — "readers" in the RCU sense) wrap component access in
// a ReadGuard. Each registered thread owns a cache-line-sized slot holding
// the global epoch it entered at (0 = quiescent). Synchronize() bumps the
// global epoch and waits for all slots to be quiescent or to have entered
// at the new epoch.
//
// Threads register lazily on first guard and release their slot at thread
// exit, so short-lived benchmark threads recycle slots.

#ifndef FLODB_SYNC_RCU_H_
#define FLODB_SYNC_RCU_H_

#include <atomic>
#include <cstdint>

namespace flodb {

class Rcu {
 public:
  static constexpr int kMaxThreads = 512;

  Rcu();
  ~Rcu();

  Rcu(const Rcu&) = delete;
  Rcu& operator=(const Rcu&) = delete;

  // Enters a read-side critical section. Reentrant (nesting is counted).
  void ReadLock();
  void ReadUnlock();

  // Blocks until every read-side section that was active when this call
  // began has exited. Sections beginning after the call are not waited on.
  void Synchronize();

  // True if the calling thread currently holds a read lock on this domain
  // (debug aid for assertions).
  bool InReadSection() const;

 private:
  struct alignas(64) Slot {
    // 0 = quiescent; otherwise the epoch at section entry.
    std::atomic<uint64_t> epoch{0};
    std::atomic<bool> in_use{false};
  };

  struct ThreadState;

  Slot* AcquireSlot();
  ThreadState& LocalState();

  const uint64_t id_;  // unique per live Rcu instance (see registry in rcu.cc)
  std::atomic<uint64_t> global_epoch_{1};
  Slot slots_[kMaxThreads];
  std::atomic<int> high_water_{0};  // slots [0, high_water_) may be in use
};

// RAII read-side guard.
class RcuReadGuard {
 public:
  explicit RcuReadGuard(Rcu& rcu) : rcu_(rcu) { rcu_.ReadLock(); }
  ~RcuReadGuard() { rcu_.ReadUnlock(); }
  RcuReadGuard(const RcuReadGuard&) = delete;
  RcuReadGuard& operator=(const RcuReadGuard&) = delete;

 private:
  Rcu& rcu_;
};

}  // namespace flodb

#endif  // FLODB_SYNC_RCU_H_
