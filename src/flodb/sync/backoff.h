// Exponential backoff helper for spin loops: a few pause instructions,
// then yields, so single-core machines (and oversubscribed ones) make
// progress instead of burning a quantum.

#ifndef FLODB_SYNC_BACKOFF_H_
#define FLODB_SYNC_BACKOFF_H_

#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace flodb {

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

class Backoff {
 public:
  void Pause() {
    if (spins_ < kMaxSpins) {
      for (int i = 0; i < (1 << spins_); ++i) {
        CpuRelax();
      }
      ++spins_;
    } else {
      std::this_thread::yield();
    }
  }

  void Reset() { spins_ = 0; }

 private:
  static constexpr int kMaxSpins = 6;
  int spins_ = 0;
};

}  // namespace flodb

#endif  // FLODB_SYNC_BACKOFF_H_
