// Tiny test-and-test-and-set spinlock with exponential backoff.
//
// Used for per-bucket locking in the Membuffer where critical sections are
// a handful of loads/stores; a futex-based mutex would dominate the cost.

#ifndef FLODB_SYNC_SPINLOCK_H_
#define FLODB_SYNC_SPINLOCK_H_

#include <atomic>

#include "flodb/sync/backoff.h"

namespace flodb {

class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() {
    Backoff backoff;
    while (true) {
      if (!locked_.exchange(true, std::memory_order_acquire)) {
        return;
      }
      while (locked_.load(std::memory_order_relaxed)) {
        backoff.Pause();
      }
    }
  }

  bool try_lock() { return !locked_.exchange(true, std::memory_order_acquire); }

  void unlock() { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

// RAII guard (std::lock_guard works too; this one is header-only cheap).
class SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock& lock) : lock_(lock) { lock_.lock(); }
  ~SpinLockGuard() { lock_.unlock(); }
  SpinLockGuard(const SpinLockGuard&) = delete;
  SpinLockGuard& operator=(const SpinLockGuard&) = delete;

 private:
  SpinLock& lock_;
};

}  // namespace flodb

#endif  // FLODB_SYNC_SPINLOCK_H_
